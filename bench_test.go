package prord

// One benchmark per table and figure of the paper's evaluation (§5),
// plus ablation benches for the design choices DESIGN.md calls out.
// Each bench regenerates its artifact end-to-end (workload synthesis,
// log mining, cluster simulation) at a reduced trace scale and reports
// the headline quantity as a custom metric, so `go test -bench=.`
// doubles as a quick reproduction run. For full-scale tables use
// cmd/prord-sim.

import (
	"testing"

	"prord/internal/cluster"
	"prord/internal/experiment"
	"prord/internal/mining"
	"prord/internal/policy"
	"prord/internal/trace"
)

// benchOptions keeps bench iterations short while preserving the paper's
// shapes (scale 0.15 is the smallest workload where the mining products
// have enough training data to matter).
func benchOptions() experiment.Options {
	opt := experiment.DefaultOptions()
	opt.Scale = 0.15
	return opt
}

func BenchmarkTable1Params(b *testing.B) {
	r := experiment.NewRunner(benchOptions())
	for i := 0; i < b.N; i++ {
		if _, err := r.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Dispatches(b *testing.B) {
	r := experiment.NewRunner(benchOptions())
	var reduction float64
	for i := 0; i < b.N; i++ {
		tab, err := r.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		lard := tab.MustGet("CS-Trace", "LARD")
		prord := tab.MustGet("CS-Trace", "PRORD")
		reduction = 1 - prord/lard
	}
	b.ReportMetric(100*reduction, "%dispatch-reduction-cs")
}

func BenchmarkFig7Throughput(b *testing.B) {
	r := experiment.NewRunner(benchOptions())
	var gain float64
	for i := 0; i < b.N; i++ {
		tab, err := r.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		lard := tab.MustGet("CS-Trace", "LARD")
		prord := tab.MustGet("CS-Trace", "PRORD")
		gain = 100 * (prord - lard) / lard
	}
	b.ReportMetric(gain, "%prord-vs-lard-cs")
}

func BenchmarkFig8MemorySweep(b *testing.B) {
	r := experiment.NewRunner(benchOptions())
	var lowMemRatio float64
	for i := 0; i < b.N; i++ {
		tab, err := r.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		lowMemRatio = tab.MustGet("10%", "PRORD") / tab.MustGet("10%", "LARD")
	}
	b.ReportMetric(lowMemRatio, "prord/lard@10%mem")
}

func BenchmarkFig9Ablation(b *testing.B) {
	r := experiment.NewRunner(benchOptions())
	var prordGain float64
	for i := 0; i < b.N; i++ {
		tab, err := r.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		lard := tab.MustGet("LARD", "throughput")
		prordGain = 100 * (tab.MustGet("PRORD", "throughput") - lard) / lard
	}
	b.ReportMetric(prordGain, "%prord-vs-lard")
}

func BenchmarkScaleBackends(b *testing.B) {
	r := experiment.NewRunner(benchOptions())
	var worst float64
	for i := 0; i < b.N; i++ {
		tab, err := r.Scale()
		if err != nil {
			b.Fatal(err)
		}
		worst = tab.MustGet("6", "ratio")
		for _, n := range []string{"8", "12", "16"} {
			if v := tab.MustGet(n, "ratio"); v < worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "min-prord/lard-ratio")
}

func BenchmarkResponseTime(b *testing.B) {
	r := experiment.NewRunner(benchOptions())
	var prordMs float64
	for i := 0; i < b.N; i++ {
		tab, err := r.ResponseTime()
		if err != nil {
			b.Fatal(err)
		}
		prordMs = tab.MustGet("CS-Trace", "PRORD")
	}
	b.ReportMetric(prordMs, "prord-mean-resp-ms-cs")
}

func BenchmarkHitRate(b *testing.B) {
	r := experiment.NewRunner(benchOptions())
	var boost float64
	for i := 0; i < b.N; i++ {
		tab, err := r.HitRate()
		if err != nil {
			b.Fatal(err)
		}
		boost = tab.MustGet("CS-Trace", "PRORD") - tab.MustGet("CS-Trace", "LARD")
	}
	b.ReportMetric(100*boost, "%hit-rate-boost-cs")
}

// --- Ablation benches (design choices) ---

func BenchmarkAblationOrder(b *testing.B) {
	r := experiment.NewRunner(benchOptions())
	var contexts float64
	for i := 0; i < b.N; i++ {
		tab, err := r.AblationOrder()
		if err != nil {
			b.Fatal(err)
		}
		contexts = tab.MustGet("3", "contexts")
	}
	b.ReportMetric(contexts, "order-3-contexts")
}

func BenchmarkAblationThreshold(b *testing.B) {
	r := experiment.NewRunner(benchOptions())
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationThreshold(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCache(b *testing.B) {
	r := experiment.NewRunner(benchOptions())
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationCache(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictorComparison(b *testing.B) {
	r := experiment.NewRunner(benchOptions())
	var acc float64
	for i := 0; i < b.N; i++ {
		tab, err := r.PredictorComparison()
		if err != nil {
			b.Fatal(err)
		}
		acc = tab.MustGet("Synthetic", "Order-2")
	}
	b.ReportMetric(acc, "order-2-accuracy")
}

// --- Micro benches for the hot substrates ---

func benchWorkload(b *testing.B) (*trace.Trace, *mining.Miner) {
	b.Helper()
	_, full, err := trace.GeneratePreset(trace.PresetSynthetic, 0.1, 42)
	if err != nil {
		b.Fatal(err)
	}
	train, eval := full.Split(0.4)
	return eval, mining.Mine(train, mining.DefaultOptions())
}

func BenchmarkSimulatedRequestsPRORD(b *testing.B) {
	// Cost of one fully simulated request under PRORD (all features on).
	simulated := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eval2, miner := benchWorkload(b)
		pol := policy.NewPRORD(policy.Thresholds{})
		cl, err := cluster.New(cluster.Config{
			Params:   benchParams(eval2.TotalFileBytes()),
			Policy:   pol,
			Features: cluster.AllFeatures(),
			Miner:    miner,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := cl.Run(eval2); err != nil {
			b.Fatal(err)
		}
		simulated += len(eval2.Requests)
	}
	b.ReportMetric(float64(simulated)/float64(b.Elapsed().Seconds()), "sim-req/s")
}

func BenchmarkTraceGeneration(b *testing.B) {
	var requests int
	for i := 0; i < b.N; i++ {
		_, tr, err := trace.GeneratePreset(trace.PresetSynthetic, 0.1, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		requests = len(tr.Requests)
	}
	b.ReportMetric(float64(requests), "requests/trace")
}

func BenchmarkMining(b *testing.B) {
	_, full, err := trace.GeneratePreset(trace.PresetSynthetic, 0.1, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.Mine(full, mining.DefaultOptions())
	}
}

func benchParams(dataset int64) cluster.Params {
	p := cluster.DefaultParams()
	p.Backends = 8
	total := 0.3 * float64(dataset) / 8
	p.AppMemory = int64(total * 0.64)
	p.PinnedMemory = int64(total * 0.36)
	return p
}
