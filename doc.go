// Package prord is a reproduction of "A PROactive Request Distribution
// (PRORD) Using Web Log Mining in a Cluster-Based Web Server" (Lee,
// Vageesan, Yum, Kim — ICPP 2006).
//
// PRORD is a request-distribution policy for distributor-based web
// clusters. It extends LARD (locality-aware request distribution) with
// three mining-driven mechanisms: bundle-aware forwarding of embedded
// objects at the front-end, popularity-driven replication of hot files
// across backend memories, and navigation-pattern prefetching at the
// backends.
//
// The root package is the public facade. It exposes:
//
//   - RunExperiment / Experiments — regenerate every table and figure of
//     the paper's evaluation on the built-in cluster simulator.
//   - Compare — run an ad-hoc policy comparison on one workload.
//   - WriteSyntheticTrace / MineLog — generate Common Log Format traces
//     statistically matched to the paper's workloads, and run the web-log
//     miner over any CLF stream.
//
// The substrates live under internal/: the discrete-event simulator
// (internal/sim), the cluster model (internal/cluster), distribution
// policies (internal/policy), web-log mining (internal/mining),
// replication (internal/replicate), caches (internal/cache), workload
// generation (internal/trace) and a real HTTP/1.1 front-end distributor
// (internal/httpfront) driven by the same policies.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package prord
