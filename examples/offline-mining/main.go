// Offline-mining workflow: the paper's deployment model is a batch
// mining pass over yesterday's access logs feeding today's distributor
// ("the extracted information from web log file is made available for
// the distributor at the front-end", §1). This example runs the whole
// pipeline: export a log in Common Log Format, mine it, persist the
// model, reload it, and show the decisions the distributor would make
// with it.
//
//	go run ./examples/offline-mining
package main

import (
	"bytes"
	"fmt"
	"log"

	"prord"
	"prord/internal/mining"
	"prord/internal/trace"
)

func main() {
	// 1. "Yesterday's" access log, in CLF.
	var logFile bytes.Buffer
	n, err := prord.WriteSyntheticTrace(&logFile, "cs", 0.1, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. exported %d requests of CLF access log (%d KB)\n",
		n, logFile.Len()>>10)

	// 2. Batch mining pass, persisted as JSON (what `logmine -o` does).
	var modelFile bytes.Buffer
	if err := prord.SaveModel(&modelFile, bytes.NewReader(logFile.Bytes()), 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. mined and saved the model (%d KB of JSON)\n", modelFile.Len()>>10)

	// 3. The distributor loads the model at startup (what
	//    `prord-server -model` does) — no logs needed at runtime.
	miner, err := mining.Load(&modelFile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. loaded: %s\n\n", miner.Summary())

	// 4. What the model buys the distributor, on a fresh user session.
	site, _, err := trace.GeneratePreset(trace.PresetCS, 0.01, 99)
	if err != nil {
		log.Fatal(err)
	}
	page := site.Pages[0]
	fmt.Printf("a user opens %s:\n", page.Path)

	if objs := miner.Bundles.Objects(page.Path); len(objs) > 0 {
		fmt.Printf("  bundle forwarding: %d embedded objects will follow the\n", len(objs))
		fmt.Printf("  page to its backend without dispatches (e.g. %s)\n", objs[0])
	}
	if pred, ok := miner.Model.Predict([]string{page.Path}); ok {
		action := "below the prefetch threshold — no action"
		if miner.ShouldPrefetch(pred) {
			action = "above the threshold — prefetched into backend memory"
		}
		fmt.Printf("  navigation model: next page %s (confidence %.2f), %s\n",
			pred.Page, pred.Confidence, action)
	}
	top := miner.Ranker.Top(3)
	fmt.Printf("  replication (Algorithm 3) keeps the hot head on many backends: %v\n", top)
}
