// WorldCup flash-crowd scenario: a small, very hot site under heavy load
// — the regime where memory is scarce relative to traffic and the paper's
// Fig. 8 claim matters ("PRORD is more consistent in preserving the
// locality of the files than LARD").
//
// The example sweeps the fraction of the site that fits in cluster
// memory and reports LARD vs PRORD throughput, then shows the hit-rate
// picture at the paper's 30% operating point.
//
//	go run ./examples/worldcup
package main

import (
	"fmt"
	"log"

	"prord"
)

func main() {
	opt := prord.DefaultOptions()
	// WorldCup has only ~3,800 files, so short runs are dominated by the
	// cold-cache warmup where every policy is equally disk-bound; use
	// enough requests for the warm regime to show.
	opt.Scale = 0.1 // ~90k WorldCup requests

	fmt.Println("memory sweep on the WorldCup-98-like trace (LARD vs PRORD)...")
	fmt.Printf("%-8s %10s %10s %12s\n", "memory", "LARD", "PRORD", "PRORD/LARD")
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.5} {
		o := opt
		o.MemoryFraction = frac
		var lard, prordThr float64
		rows, err := prord.Compare("worldcup", []string{"LARD", "PRORD"}, o)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			if r.Policy == "LARD" {
				lard = r.Throughput
			} else {
				prordThr = r.Throughput
			}
		}
		fmt.Printf("%-8s %10.0f %10.0f %11.2fx\n",
			fmt.Sprintf("%.0f%%", 100*frac), lard, prordThr, prordThr/lard)
	}

	fmt.Println("\nfull policy comparison at the paper's 30% memory point:")
	rows, err := prord.Compare("worldcup", nil, opt)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-16s %8.0f req/s  hit %.3f  handoffs %d  replications %d\n",
			r.Policy, r.Throughput, r.HitRate, r.Handoffs, r.Replications)
	}
}
