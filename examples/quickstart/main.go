// Quickstart: compare the paper's four distribution policies on the
// synthetic workload and print the headline PRORD-vs-LARD numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"prord"
)

func main() {
	opt := prord.DefaultOptions()
	opt.Scale = 0.2 // 6,000 requests: a few seconds of simulation

	fmt.Println("simulating WRR / LARD / Ext-LARD-PHTTP / PRORD on the synthetic trace...")
	rows, err := prord.Compare("synthetic", nil, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-16s %12s %14s %10s %12s %10s\n",
		"policy", "req/s", "mean response", "hit rate", "dispatches", "prefetch")
	var lard, prordThr float64
	for _, r := range rows {
		fmt.Printf("%-16s %12.0f %14v %10.3f %12d %10d\n",
			r.Policy, r.Throughput, r.MeanResponse, r.HitRate, r.Dispatches, r.Prefetches)
		switch r.Policy {
		case "LARD":
			lard = r.Throughput
		case "PRORD":
			prordThr = r.Throughput
		}
	}
	if lard > 0 {
		fmt.Printf("\nPRORD over LARD: %+.1f%% (the paper reports 10-45%%)\n",
			100*(prordThr-lard)/lard)
	}

	fmt.Println("\nregenerating Fig. 6 (frequency of dispatches)...")
	rep, err := prord.RunExperiment("fig6", opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
}
