// University-site scenario: the paper's motivating example (§3.1) — a
// department web site whose users fall into groups (current students,
// prospective students, faculty, staff, others) with distinctive
// navigation patterns.
//
// The example mines a CS-department-like access log, shows what the miner
// learns (user categorization accuracy, bundle quality, prediction
// accuracy), then reruns Fig. 9's per-enhancement ablation on the same
// workload.
//
//	go run ./examples/university-site
package main

import (
	"fmt"
	"log"

	"prord"
	"prord/internal/mining"
	"prord/internal/trace"
)

func main() {
	// Generate the CS-department workload and mine its training prefix —
	// the same pipeline the simulator uses, shown step by step.
	site, full, err := trace.GeneratePreset(trace.PresetCS, 0.2, 7)
	if err != nil {
		log.Fatal(err)
	}
	train, eval := full.Split(0.4)
	miner := mining.Mine(train, mining.DefaultOptions())

	stats := full.Stats()
	fmt.Printf("workload: %d requests, %d files, %d sessions, %.0f%% embedded objects\n",
		stats.Requests, stats.Files, stats.Sessions, 100*stats.EmbeddedFrac)
	fmt.Printf("miner:    %s\n\n", miner.Summary())

	// User categorization (§3.1): how well do the first pages of a visit
	// identify the visitor's group?
	if miner.Categorizer != nil {
		for _, k := range []int{1, 2, 4} {
			acc := miner.Categorizer.Accuracy(eval, k)
			fmt.Printf("categorization accuracy from first %d page(s): %.2f (chance %.2f)\n",
				k, acc, 1/float64(miner.Categorizer.Groups()))
		}
	}

	// Bundle mining quality against the generator's ground truth (§3.2).
	precision, recall := miner.Bundles.Score(site.Bundles())
	fmt.Printf("bundle mining: precision %.2f, recall %.2f\n", precision, recall)

	// Next-page prediction (Algorithm 2's input).
	pred, ok := miner.Model.Predict([]string{site.Pages[0].Path})
	if ok {
		fmt.Printf("after %s the model predicts %s (confidence %.2f)\n",
			site.Pages[0].Path, pred.Page, pred.Confidence)
	}

	// Fig. 9: which enhancement buys what on this site?
	fmt.Println("\nrerunning Fig. 9 (individual enhancements, CS trace)...")
	opt := prord.DefaultOptions()
	opt.Scale = 0.2
	rep, err := prord.RunExperiment("fig9", opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
}
