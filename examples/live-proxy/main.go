// Live-proxy: a real HTTP/1.1 PRORD cluster on localhost. Three demo
// backend servers (in-memory cache + simulated disk latency) sit behind
// the PRORD front-end distributor; a scripted client then browses the
// site the way a user would — pages followed by their embedded objects —
// and the example prints which backend served each request, whether it
// was a memory hit, and the distributor's counters.
//
//	go run ./examples/live-proxy
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"time"

	"prord/internal/httpfront"
	"prord/internal/mining"
	"prord/internal/trace"
)

func main() {
	// Build a small site and train the miner on a synthetic trace of it.
	site, tr, err := trace.GeneratePreset(trace.PresetSynthetic, 0.05, 11)
	if err != nil {
		log.Fatal(err)
	}
	miner := mining.Mine(tr, mining.DefaultOptions())
	files := site.FileTable()

	// Three demo backends with 10 ms simulated disk latency.
	var urls []*url.URL
	var backends []*httpfront.DemoBackend
	for i := 0; i < 3; i++ {
		b := httpfront.NewDemoBackend(fmt.Sprintf("backend-%d", i), files,
			2<<20, 10*time.Millisecond)
		backends = append(backends, b)
		srv := httptest.NewServer(b)
		defer srv.Close()
		u, err := url.Parse(srv.URL)
		if err != nil {
			log.Fatal(err)
		}
		urls = append(urls, u)
	}

	dist, err := httpfront.New(httpfront.Config{
		Backends: urls,
		Miner:    miner,
		Prefetch: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dist.Close()
	front := httptest.NewServer(dist)
	defer front.Close()
	fmt.Printf("front-end: %s (3 backends, PRORD policy)\n\n", front.URL)

	// Browse: walk the dominant-link path from the first page, fetching
	// each page's embedded objects like a browser would. One http.Client
	// with keep-alive = one persistent connection = one PRORD session.
	client := &http.Client{}
	defer client.CloseIdleConnections()
	page := 0
	for step := 0; step < 5; step++ {
		p := &site.Pages[page]
		fetch(client, front.URL, p.Path)
		for _, obj := range p.Embedded {
			fetch(client, front.URL, obj.Path)
		}
		if len(p.Links) == 0 {
			break
		}
		page = p.Links[0]
	}

	// Give background prefetches a moment, then browse the same path on a
	// new connection: prefetched and cached pages should be hits.
	time.Sleep(200 * time.Millisecond)
	fmt.Println("\nsecond visitor on the same path:")
	client2 := &http.Client{}
	defer client2.CloseIdleConnections()
	page = 0
	for step := 0; step < 5; step++ {
		p := &site.Pages[page]
		fetch(client2, front.URL, p.Path)
		if len(p.Links) == 0 {
			break
		}
		page = p.Links[0]
	}

	s := dist.Stats()
	fmt.Printf("\ndistributor: %d requests, %d dispatches, %d direct forwards, %d prefetch hints\n",
		s.Requests, s.Dispatches, s.DirectForwards, s.Prefetches)
	for i, b := range backends {
		st := b.Stats()
		fmt.Printf("backend-%d:   served %d (hits %d, misses %d), prefetch warms %d\n",
			i, st.Served, st.Hits, st.Misses, st.Prefetches)
	}
}

func fetch(client *http.Client, base, path string) {
	resp, err := client.Get(base + path)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("  GET %-28s -> backend %s  cache %-4s\n",
		path, resp.Header.Get(httpfront.BackendHeader), resp.Header.Get(httpfront.CacheStateHeader))
}
