package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// printFuncs are the fmt functions that write straight to standard
// output.
var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

// NoPrint forbids writing to standard output from internal library
// packages: fmt.Print*, the print/println builtins, and fmt.Fprint* aimed
// directly at os.Stdout/os.Stderr. Library results flow through returned
// values, io.Writer parameters or metrics; terminal output belongs to
// cmd/ and examples/. Intentional exceptions (a logger implementation)
// are documented with //lint:ignore noprint <reason>. A per-package
// pass on the Program-backed engine: printing is flagged at the call
// site itself, so reachability facts would not change the verdict.
var NoPrint = &Analyzer{
	Name: "noprint",
	Doc:  "forbid fmt.Print*/println and direct os.Stdout writes in internal library code",
	Run: func(pass *Pass) {
		if !strings.Contains(pass.Pkg.Path, "/internal/") {
			return
		}
		pass.walkFiles(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name != "print" && fun.Name != "println" {
					return true
				}
				// The builtins resolve to *types.Builtin; a user-defined
				// function of the same name shadows them and is fine.
				if _, isBuiltin := pass.Pkg.Info.Uses[fun].(*types.Builtin); isBuiltin {
					pass.Reportf(call.Pos(),
						"builtin %s writes to stderr from library code; return values or accept an io.Writer instead", fun.Name)
				}
			case *ast.SelectorExpr:
				pkgPath, ok := packageOf(pass, fun)
				if !ok || pkgPath != "fmt" {
					return true
				}
				name := fun.Sel.Name
				if printFuncs[name] {
					pass.Reportf(call.Pos(),
						"fmt.%s writes to stdout from library code; return values or accept an io.Writer instead", name)
					return true
				}
				if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
					if w, ok := call.Args[0].(*ast.SelectorExpr); ok {
						if wp, ok := packageOf(pass, w); ok && wp == "os" &&
							(w.Sel.Name == "Stdout" || w.Sel.Name == "Stderr") {
							pass.Reportf(call.Pos(),
								"fmt.%s(os.%s, ...) hardcodes terminal output in library code; accept an io.Writer instead",
								name, w.Sel.Name)
						}
					}
				}
			}
			return true
		})
	},
}
