package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// randExemptSuffix marks the one package allowed to touch math/rand: the
// seeded wrapper everything else must go through.
const randExemptSuffix = "internal/randutil"

// globalRandFuncs are the math/rand top-level functions backed by the
// shared global source. Using them breaks replayability: the draw order
// depends on every other caller in the process. Constructors like
// rand.New and rand.NewSource are allowed — they are how a seeded stream
// is built.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// NoRand forbids the global math/rand source outside internal/randutil.
// It is a per-package pass on the Program-backed engine: pure AST
// pattern, no call-graph facts needed (a helper wrapping rand.Intn is
// itself flagged wherever it lives, so reachability adds nothing).
var NoRand = &Analyzer{
	Name: "norand",
	Doc:  "forbid global math/rand top-level functions outside internal/randutil",
	Run: func(pass *Pass) {
		if strings.HasSuffix(pass.Pkg.Path, randExemptSuffix) {
			return
		}
		pass.walkFiles(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := packageOf(pass, sel)
			if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
				return true
			}
			if globalRandFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"%s.%s draws from the global math/rand source; use a seeded internal/randutil.Source so runs are replayable",
					importBase(pkgPath), sel.Sel.Name)
			}
			return true
		})
	},
}

// packageOf reports the import path of sel's receiver if it is a package
// name (e.g. rand in rand.Intn).
func packageOf(pass *Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := pass.Pkg.Info.Uses[id]
	pn, ok := obj.(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

func importBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base := path[i+1:]
		if base == "v2" { // math/rand/v2 is still referred to as rand
			return "rand"
		}
		return base
	}
	return path
}
