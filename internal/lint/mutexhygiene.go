package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MutexHygiene enforces two locking invariants:
//
//  1. A function that calls mu.Lock() (or mu.RLock()) must also call the
//     matching Unlock — directly or via defer — on the same mutex
//     expression. A lock with no unlock anywhere in the function is
//     almost always a leaked critical section.
//
//  2. An exported method on a type that embeds a sync.Mutex/RWMutex must
//     not write the type's fields without taking that lock: exported
//     methods are the concurrent API surface, and an unlocked write
//     there is a data race waiting for the race detector.
//
// Unexported methods are exempt from (2): by convention they run with
// the lock already held by their exported callers.
//
// Rule (2) is call-graph aware: an exported method that delegates
// locking to a helper (directly or transitively, via the Program's
// effect summaries) counts as locked — only methods on no path to a
// receiver-mutex acquisition are flagged.
var MutexHygiene = &Analyzer{
	Name: "mutexhygiene",
	Doc:  "flag Lock() without matching Unlock, and unlocked field writes in exported methods of mutex-holding types",
	Run:  runMutexHygiene,
}

func runMutexHygiene(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockPairing(pass, fn.Body)
					checkExportedMethodWrites(pass, fn)
				}
			case *ast.FuncLit:
				if fn.Body != nil {
					checkLockPairing(pass, fn.Body)
				}
			}
			return true
		})
	}
}

// lockCall is one Lock/Unlock-family call on a mutex-typed receiver.
type lockCall struct {
	recv   string // canonical receiver expression, e.g. "d.mu"
	method string // Lock, Unlock, RLock, RUnlock
	read   bool   // RLock/RUnlock
	pos    ast.Node
}

// mutexCalls collects the Lock-family calls in body, skipping nested
// function literals (their defers belong to them, so they are analyzed
// as their own scope).
func mutexCalls(pass *Pass, body *ast.BlockStmt) (calls []lockCall, deferred []lockCall) {
	collect := func(n ast.Node, isDefer bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		m := sel.Sel.Name
		if m != "Lock" && m != "Unlock" && m != "RLock" && m != "RUnlock" {
			return
		}
		if !isMutexExpr(pass, sel.X) {
			return
		}
		lc := lockCall{
			recv:   types.ExprString(sel.X),
			method: m,
			read:   strings.HasPrefix(m, "R"),
			pos:    sel,
		}
		if isDefer {
			deferred = append(deferred, lc)
		} else {
			calls = append(calls, lc)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// Look inside the deferred call, including the common
			// defer func() { mu.Unlock() }() wrapper.
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					collect(m, true)
					return true
				})
			} else {
				collect(x.Call, true)
			}
			return false
		case *ast.CallExpr:
			collect(x, false)
		}
		return true
	})
	return calls, deferred
}

// checkLockPairing reports mutexes locked in body with no matching
// unlock in the same function.
func checkLockPairing(pass *Pass, body *ast.BlockStmt) {
	calls, deferred := mutexCalls(pass, body)
	type key struct {
		recv string
		read bool
	}
	type tally struct {
		locks   int
		unlocks int
		first   ast.Node
	}
	tallies := map[key]*tally{}
	bump := func(lc lockCall) {
		k := key{lc.recv, lc.read}
		t := tallies[k]
		if t == nil {
			t = &tally{}
			tallies[k] = t
		}
		if strings.HasSuffix(lc.method, "Unlock") {
			t.unlocks++
		} else {
			t.locks++
			if t.first == nil {
				t.first = lc.pos
			}
		}
	}
	for _, lc := range calls {
		bump(lc)
	}
	for _, lc := range deferred {
		bump(lc)
	}
	for k, t := range tallies {
		if t.locks > 0 && t.unlocks == 0 {
			verb := "Lock"
			unlock := "Unlock"
			if k.read {
				verb, unlock = "RLock", "RUnlock"
			}
			pass.Reportf(t.first.Pos(),
				"%s.%s() has no matching %s.%s() in this function; unlock on every path (prefer defer %s.%s())",
				k.recv, verb, k.recv, unlock, k.recv, unlock)
		}
	}
}

// isMutexExpr reports whether e's type is sync.Mutex, sync.RWMutex or a
// pointer to one.
func isMutexExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isMutexType(tv.Type)
}

func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkExportedMethodWrites applies rule (2): exported methods of
// mutex-holding types must lock before writing receiver fields.
func checkExportedMethodWrites(pass *Pass, fn *ast.FuncDecl) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || !fn.Name.IsExported() {
		return
	}
	recvField := fn.Recv.List[0]
	if len(recvField.Names) == 0 {
		return
	}
	recvIdent := recvField.Names[0]
	recvObj := pass.Pkg.Info.Defs[recvIdent]
	if recvObj == nil {
		return
	}
	mutexFields := mutexFieldsOf(recvObj.Type())
	if len(mutexFields) == 0 {
		return
	}

	// Does the method lock any of the receiver's mutexes?
	calls, deferred := mutexCalls(pass, fn.Body)
	locked := false
	for _, lc := range append(calls, deferred...) {
		for _, mf := range mutexFields {
			if lc.recv == recvIdent.Name+"."+mf || lc.recv == recvIdent.Name {
				locked = true
			}
		}
	}
	// Or does a callee lock them on the method's behalf? The Program's
	// fixed-point effect summaries answer transitively: a delegating
	// wrapper around a locking helper is locked, not a violation.
	if !locked && pass.Prog != nil {
		if f, ok := pass.Pkg.Info.Defs[fn.Name].(*types.Func); ok && f != nil {
			if node := pass.Prog.Graph.ByFunc[f]; node != nil {
				if facts := pass.Prog.Facts(node); facts != nil {
					recvType := namedTypeName(recvObj.Type())
					for _, mf := range mutexFields {
						for _, class := range facts.acquires {
							if strings.HasSuffix(class.key, "."+recvType+"."+mf) {
								locked = true
							}
						}
					}
				}
			}
		}
	}
	if locked {
		return
	}

	// Find direct writes to receiver fields (other than the mutexes).
	report := func(n ast.Node, fieldExpr ast.Expr) {
		pass.Reportf(n.Pos(),
			"exported method %s writes %s without holding %s.%s; take the lock or document with //lint:ignore mutexhygiene <reason>",
			fn.Name.Name, types.ExprString(fieldExpr), recvIdent.Name, mutexFields[0])
	}
	isRecvFieldWrite := func(e ast.Expr) (ast.Expr, bool) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return nil, false
		}
		base := baseIdent(sel.X)
		if base == nil || pass.Pkg.Info.ObjectOf(base) != recvObj {
			return nil, false
		}
		for _, mf := range mutexFields {
			if sel.Sel.Name == mf {
				return nil, false
			}
		}
		return e, true
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				if e, ok := isRecvFieldWrite(lhs); ok {
					report(stmt, e)
					return false
				}
			}
		case *ast.IncDecStmt:
			if e, ok := isRecvFieldWrite(stmt.X); ok {
				report(stmt, e)
				return false
			}
		}
		return true
	})
}

// namedTypeName returns the name of t's named type (dereferencing a
// pointer receiver), or "" when t is unnamed.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// mutexFieldsOf returns the names of sync.Mutex/RWMutex fields of t's
// underlying struct (dereferencing a pointer receiver).
func mutexFieldsOf(t types.Type) []string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var fields []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isMutexType(f.Type()) {
			fields = append(fields, f.Name())
		}
	}
	return fields
}
