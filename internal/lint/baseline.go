package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A baseline grandfathers known findings so CI gates only on new ones.
// The file is committed; `make lint-baseline` regenerates it
// deliberately (never in CI). Entries match findings on
// (analyzer, module-relative file, message) with multiset semantics —
// line numbers are excluded on purpose so unrelated edits that shift a
// grandfathered finding do not break the gate, while any change to the
// finding's message (or a second occurrence) does.

// A BaselineEntry identifies one grandfathered finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative, forward slashes
	Message  string `json:"message"`
	// Line records where the finding was when the baseline was written.
	// It is informational only and not part of the match key.
	Line int `json:"line,omitempty"`
}

// A Baseline is the committed set of grandfathered findings.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s has unsupported version %d (want 1)", path, b.Version)
	}
	return &b, nil
}

// NewBaseline builds a baseline from the current findings, relativized
// to root.
func NewBaseline(findings []Finding, root string) *Baseline {
	b := &Baseline{Version: 1, Findings: []BaselineEntry{}}
	for _, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{
			Analyzer: f.Analyzer,
			File:     moduleRelative(root, f.File),
			Message:  f.Message,
			Line:     f.Line,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Line != c.Line {
			return a.Line < c.Line
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// Write serializes the baseline to path.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func baselineKey(analyzer, relFile, message string) string {
	return analyzer + "\x00" + relFile + "\x00" + message
}

// Apply splits findings into those not covered by the baseline (which
// gate the run) and reports how many baseline entries went unused
// (candidates for `make lint-baseline`). Matching is multiset: each
// entry absorbs at most one finding.
func (b *Baseline) Apply(findings []Finding, root string) (fresh []Finding, unusedEntries int) {
	budget := map[string]int{}
	for _, e := range b.Findings {
		budget[baselineKey(e.Analyzer, e.File, e.Message)]++
	}
	for _, f := range findings {
		k := baselineKey(f.Analyzer, moduleRelative(root, f.File), f.Message)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	for _, left := range budget {
		unusedEntries += left
	}
	return fresh, unusedEntries
}
