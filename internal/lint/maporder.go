package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for range` over a map when the loop body feeds an
// order-sensitive sink — appending to a slice declared outside the loop,
// or writing output — and the collected data is not sorted afterwards.
// Go randomizes map iteration order, so such loops make results, figures
// and serialized artifacts differ between identical runs.
//
// Order-insensitive uses (summing counters, filling another map, finding
// a minimum) are not flagged, and the collect-then-sort idiom
// (append keys, sort, iterate the slice) is recognized as safe.
//
// MapOrder stays a per-package pass on the Program-backed engine: both
// the sink and the sort live in one function body, so call-graph facts
// would not sharpen it.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration feeding order-sensitive output unless sorted afterwards",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		// Examine each function body so the sorted-afterwards exemption
		// can look at the statements that follow the loop.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
}

// checkMapRanges inspects one function body (including nested blocks; the
// walk of nested function literals happens at the caller) for map-range
// loops with unsorted order-sensitive sinks.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		sink, sinkKind := findOrderSink(pass, rs)
		if sink == nil {
			return true
		}
		if sinkKind == sinkAppend && sortedAfterwards(pass, body, rs, sink) {
			return true
		}
		switch sinkKind {
		case sinkAppend:
			pass.Reportf(rs.Pos(),
				"map iteration appends to %s in nondeterministic order; sort the keys first (or sort %s before use)",
				types.ExprString(sink), types.ExprString(sink))
		case sinkWrite:
			pass.Reportf(rs.Pos(),
				"map iteration emits output in nondeterministic order; collect the keys, sort them, then iterate the slice")
		}
		return true
	})
}

type sinkType int

const (
	sinkNone sinkType = iota
	sinkAppend
	sinkWrite
)

// writeMethods are output-stream methods whose call order is observable.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// findOrderSink scans a map-range body for the first order-sensitive
// sink: an append to a variable declared outside the loop, a fmt print
// call, or a stream write to an outer writer.
func findOrderSink(pass *Pass, rs *ast.RangeStmt) (ast.Expr, sinkType) {
	info := pass.Pkg.Info
	var sink ast.Expr
	kind := sinkNone
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if kind != sinkNone {
			return false
		}
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || i >= len(stmt.Lhs) {
					continue
				}
				lhs := stmt.Lhs[i]
				if base := baseIdent(lhs); base != nil && declaredOutside(info, base, rs) {
					sink, kind = lhs, sinkAppend
					return false
				}
			}
		case *ast.CallExpr:
			if sel, ok := stmt.Fun.(*ast.SelectorExpr); ok {
				if pkgPath, ok := packageOf(pass, sel); ok && pkgPath == "fmt" {
					name := sel.Sel.Name
					if len(name) >= 5 && (name[:5] == "Print" || name[:6] == "Fprint") {
						sink, kind = stmt.Fun, sinkWrite
						return false
					}
				}
				if writeMethods[sel.Sel.Name] {
					if base := baseIdent(sel.X); base != nil && declaredOutside(info, base, rs) {
						sink, kind = stmt.Fun, sinkWrite
						return false
					}
				}
			}
		}
		return true
	})
	return sink, kind
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// baseIdent returns the root identifier of an expression chain
// (cj.Vocabulary -> cj, out -> out).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether id's object is declared outside the
// range statement (so appends accumulate across iterations).
func declaredOutside(info *types.Info, id *ast.Ident, rs *ast.RangeStmt) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// sortedAfterwards reports whether the append target is passed to a
// sort.* or slices.Sort* call elsewhere in the same function body — the
// collect-then-sort idiom.
func sortedAfterwards(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, target ast.Expr) bool {
	info := pass.Pkg.Info
	targetStr := types.ExprString(target)
	targetObj := info.ObjectOf(baseIdent(target))
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		if n != nil && n.Pos() >= rs.Pos() && n.End() <= rs.End() {
			return false // the loop itself
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, ok := packageOf(pass, sel)
		if !ok || (pkgPath != "sort" && pkgPath != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) != targetStr {
				continue
			}
			if base := baseIdent(arg); base != nil && info.ObjectOf(base) == targetObj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
