package lint

// StaleIgnore reports //lint:ignore directives that no longer suppress
// anything, so the suppression inventory cannot rot: when the finding a
// directive was written for is fixed, the directive must be deleted in
// the same change, or it silently grandfathers the next regression at
// that site.
//
// The check is implemented inside the engine's Run rather than as a
// standalone pass (Run below is nil): only the suppression machinery
// knows which directives matched a finding this run. A directive is
// stale only when it matched nothing AND every analyzer it names was
// enabled in this run — a directive for a disabled analyzer had no
// chance to fire, and "all" requires the full suite, so partial
// -enable/-disable runs never produce false stales.
var StaleIgnore = &Analyzer{
	Name:         "staleignore",
	Doc:          "report //lint:ignore directives that no longer suppress any finding",
	WholeProgram: true,
	Run:          nil, // engine-special: evaluated by Run after suppression matching
}
