package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("prord/internal/sim").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset positions every file in the loader's shared file set.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package (possibly incomplete if the
	// sources had type errors; see TypeErrors).
	Types *types.Package
	// Info holds the resolved types, uses and definitions.
	Info *types.Info
	// TypeErrors are soft type-checking errors. Analysis proceeds on the
	// partial information; go build remains the authority on validity.
	TypeErrors []error
}

// A Loader parses and type-checks packages of one module from source.
// Imports within the module are resolved recursively from the module
// tree; all other imports (the standard library) go through the
// go/importer source importer. No export data or go command is needed.
type Loader struct {
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package // keyed by import path
	loading    map[string]bool     // import-cycle guard
}

// NewLoader returns a Loader rooted at the module containing dir. It
// locates go.mod by walking upward and reads the module path from it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleDir:  modDir,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// ModuleDir returns the root directory of the loaded module.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// findModule walks up from dir to the enclosing go.mod and parses its
// module path.
func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Expand resolves package patterns to directories. Supported forms:
// "./..." and "dir/..." (recursive), plain directories, and
// module-rooted import paths. Directories without non-test Go files are
// skipped in recursive walks but are an error when named directly.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "all", pat == "...":
			pat = "./..."
			fallthrough
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			if root == "." || root == "" {
				root = l.moduleDir
			}
			root = l.resolveDir(root)
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			d := l.resolveDir(pat)
			if !hasGoFiles(d) {
				return nil, fmt.Errorf("lint: no Go files in %s", pat)
			}
			add(d)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// resolveDir maps a pattern root to a directory: an existing path is used
// as-is; otherwise a module-rooted import path is tried.
func (l *Loader) resolveDir(root string) string {
	if fi, err := os.Stat(root); err == nil && fi.IsDir() {
		return root
	}
	if root == l.modulePath {
		return l.moduleDir
	}
	if rest, ok := strings.CutPrefix(root, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleDir, filepath.FromSlash(rest))
	}
	return root
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the package in dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(l.importPathFor(abs), abs)
}

// importPathFor derives the import path of a directory inside the module.
func (l *Loader) importPathFor(absDir string) string {
	rel, err := filepath.Rel(l.moduleDir, absDir)
	if err != nil || rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// load parses and checks one package, memoized by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var fileNames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		fileNames = append(fileNames, name)
	}
	sort.Strings(fileNames)
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	// Check never aborts on soft errors (they accumulate via conf.Error);
	// the partial Info is enough for analysis.
	tpkg, _ := conf.Check(path, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-local paths load from the
// module tree, everything else from the standard library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rest := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		pkg, err := l.load(path, filepath.Join(l.moduleDir, filepath.FromSlash(rest)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load expands patterns and returns the analyzed packages in a stable
// order.
func Load(patterns []string) ([]*Package, error) {
	pkgs, _, err := LoadWithRoot(patterns)
	return pkgs, err
}

// LoadWithRoot is Load plus the module root directory the packages were
// resolved against — the base SARIF URIs and baseline entries are
// relativized to.
func LoadWithRoot(patterns []string) ([]*Package, string, error) {
	start := "."
	if len(patterns) > 0 && !strings.Contains(patterns[0], "...") {
		if fi, err := os.Stat(patterns[0]); err == nil && fi.IsDir() {
			start = patterns[0]
		}
	}
	l, err := NewLoader(start)
	if err != nil {
		return nil, "", err
	}
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, "", err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, "", fmt.Errorf("lint: loading %s: %w", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, l.ModuleDir(), nil
}
