package lint

import (
	"fmt"
	"sort"
)

// LockOrder is the interprocedural concurrency analyzer: it verifies
// the dispatch core's documented lock hierarchy and flags blocking
// operations reached while any lock is held.
//
// The hierarchy (see lockHierarchy in lockset.go and DESIGN.md):
//
//	Core.wrMu (10) → Core.trackMu (20) → Core.ovMu (30) → leaves
//	sessionShard.mu (90)  fileShard.mu (91)  recordEmitter.mu (92)
//	targetStripe.mu (93)  WRR.mu (94)  Pool.mu (95)  Updater.mu (96)
//	Detector.mu (97)  raceWriter.mu (98)  hedgedAttempt.mu (99)
//
// wrMu is the snapshot writer mutex: the routing read path itself
// acquires no Core-level lock (policy inputs come from an atomic
// snapshot load), so only snapshot publishers ever hold it.
//
// Three ordering rules apply at every acquisition — direct, or
// transitively through a synchronous callee:
//
//  1. Acquiring a class already held is flagged: either a self-deadlock
//     on the same mutex or a second stripe of a striped table, whose
//     relative order is not statically checkable.
//  2. Nothing may be acquired while a leaf class is held.
//  3. Two ranked classes must be acquired in ascending rank.
//
// Unranked lock pairs (two mutexes outside the hierarchy table) are
// not ordered against each other — the analyzer under-approximates
// rather than inventing an order.
//
// Independently of rank, any potentially blocking operation — channel
// send/receive, select without a default case, range over a channel,
// time.Sleep, WaitGroup/Cond Wait, net dial/listen/read/write,
// net/http round trips — is flagged when the lockset is non-empty,
// including when the block happens inside a callee.
var LockOrder = &Analyzer{
	Name:         "lockorder",
	Doc:          "verify the dispatch lock hierarchy and flag blocking calls made while holding a lock (interprocedural)",
	WholeProgram: true,
	Run:          runLockOrder,
}

func runLockOrder(pass *Pass) {
	prog := pass.Prog
	for _, n := range prog.Graph.Nodes() {
		w := prog.Walk(n)
		// Direct ordering violations at acquisition sites.
		for _, op := range w.lockOps {
			for _, h := range op.held {
				if msg := lockOrderViolation(h.class, op.class); msg != "" {
					pass.Reportf(op.pos, "%s", msg)
				}
			}
		}
		// Direct blocking operations under a non-empty lockset.
		for _, op := range w.blockOps {
			if len(op.held) == 0 {
				continue
			}
			pass.Reportf(op.pos,
				"%s while holding %s; a blocked goroutine keeps the lock and stalls every other acquirer",
				op.what, heldNames(op.held))
		}
		// Call sites: charge the callee's transitive effects against the
		// caller's lockset. Only synchronous calls are recorded (deferred
		// calls run at exit, go statements on a fresh goroutine).
		for _, site := range w.calls {
			if len(site.held) == 0 {
				continue
			}
			reported := map[string]bool{}
			for _, callee := range site.edge.Callees {
				f := prog.Facts(callee)
				if f == nil {
					continue
				}
				if f.blocks != "" {
					msg := fmt.Sprintf(
						"call to %s may block (%s%s) while holding %s; release the lock before blocking",
						callee.Name(), f.blocks, viaSuffix(f.blocksVia), heldNames(site.held))
					if !reported[msg] {
						reported[msg] = true
						pass.Reportf(site.edge.Pos, "%s", msg)
					}
				}
				for _, acq := range sortedClasses(f.acquires) {
					for _, h := range site.held {
						v := lockOrderViolation(h.class, acq)
						if v == "" {
							continue
						}
						msg := fmt.Sprintf("call to %s%s: %s",
							callee.Name(), viaSuffix(f.acquiresVia[acq.key]), v)
						if !reported[msg] {
							reported[msg] = true
							pass.Reportf(site.edge.Pos, "%s", msg)
						}
					}
				}
			}
		}
	}
}

// lockOrderViolation reports why acquiring acq while held is held
// breaks the hierarchy ("" when it does not).
func lockOrderViolation(held, acq lockClass) string {
	switch {
	case held.key == acq.key:
		return fmt.Sprintf(
			"%s acquired while an instance of %s is already held (self-deadlock, or two stripes whose order is not statically checkable)",
			acq.display, held.display)
	case held.leaf:
		return fmt.Sprintf(
			"%s acquired while holding %s, a leaf of the lock hierarchy; nothing may be acquired under a shard lock",
			acq.display, held.display)
	case held.ranked && acq.ranked && acq.rank <= held.rank:
		return fmt.Sprintf(
			"lock order inversion: %s (rank %d) acquired while holding %s (rank %d); the documented order is wrMu → trackMu → ovMu → leaves",
			acq.display, acq.rank, held.display, held.rank)
	}
	return ""
}

func heldNames(held []heldLock) string {
	s := ""
	for i, h := range held {
		if i > 0 {
			s += ", "
		}
		s += h.class.display
	}
	return s
}

func viaSuffix(via string) string {
	if via == "" {
		return ""
	}
	return " via " + via
}

// sortedClasses returns the acquire set in deterministic key order.
func sortedClasses(m map[string]lockClass) []lockClass {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lockClass, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}
