package lint

import (
	"go/ast"
	"strings"
)

// simulatedTimePackages are the package-path suffixes where every clock
// read must come from the simulated clock: their results are part of the
// reproducibility contract, and a wall-clock read makes two runs of the
// same seed diverge.
var simulatedTimePackages = []string{
	"internal/sim",
	"internal/cluster",
	"internal/policy",
	"internal/replicate",
}

// wallClockFuncs are the time package functions that read or wait on the
// wall (or process monotonic) clock. Pure constructors and conversions
// (time.Duration, time.Millisecond, d.Seconds(), ...) are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

// NoWallClock forbids wall-clock reads in simulation and policy code.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "forbid time.Now/Since/Sleep (and friends) in simulated-time packages",
	Run: func(pass *Pass) {
		covered := false
		for _, suffix := range simulatedTimePackages {
			if strings.HasSuffix(pass.Pkg.Path, suffix) {
				covered = true
				break
			}
		}
		if !covered {
			return
		}
		pass.walkFiles(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := packageOf(pass, sel)
			if !ok || pkgPath != "time" {
				return true
			}
			if wallClockFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock; simulation/policy code must use the simulated clock for replayable results",
					sel.Sel.Name)
			}
			return true
		})
	},
}
