package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// simulatedTimePackages are the package-path suffixes where every clock
// read must come from the simulated clock: their results are part of the
// reproducibility contract, and a wall-clock read makes two runs of the
// same seed diverge. internal/health is covered too — its circuit
// breaker takes the current time as an argument so the same transition
// sequence replays identically under test clocks.
var simulatedTimePackages = []string{
	"internal/sim",
	"internal/cluster",
	"internal/dispatch",
	"internal/policy",
	"internal/replicate",
	"internal/health",
	"internal/overload",
}

// wallClockAllowedFiles carves per-file allowances out of covered
// packages, keyed by package-path suffix then file base name. The health
// prober is the one legitimate timer user in internal/health: it must
// wait real time between probes, while its jitter is drawn from a seeded
// randutil.Source so the schedule stays reproducible.
var wallClockAllowedFiles = map[string]map[string]bool{
	"internal/health": {"prober.go": true},
}

// wallClockFuncs are the time package functions that read or wait on the
// wall (or process monotonic) clock. Pure constructors and conversions
// (time.Duration, time.Millisecond, d.Seconds(), ...) are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

// NoWallClock forbids wall-clock reads in simulation and policy code.
// It is the fast, file-scoped rule; clockflow generalizes it over the
// call graph (any function *reachable* from the dispatch core, with no
// per-file allowances). The two are complementary: nowallclock covers
// packages like internal/sim and internal/policy that are not clockflow
// roots, while clockflow closes the hole where a covered package
// launders a clock read through a helper in an uncovered one.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "forbid time.Now/Since/Sleep (and friends) in simulated-time packages",
	Run: func(pass *Pass) {
		covered := ""
		for _, suffix := range simulatedTimePackages {
			if strings.HasSuffix(pass.Pkg.Path, suffix) {
				covered = suffix
				break
			}
		}
		if covered == "" {
			return
		}
		allowed := wallClockAllowedFiles[covered]
		pass.walkFiles(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := packageOf(pass, sel)
			if !ok || pkgPath != "time" {
				return true
			}
			if !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			file := filepath.Base(pass.Pkg.Fset.Position(sel.Pos()).Filename)
			if allowed[file] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock; simulation/policy code must use the simulated clock for replayable results",
				sel.Sel.Name)
			return true
		})
	},
}
