// Package lint is a stdlib-only static-analysis engine for the PRORD
// repository. It enforces the determinism and concurrency invariants the
// compiler cannot see: seeded randomness only (norand), simulated time in
// simulation code (nowallclock), order-insensitive map iteration in
// aggregation paths (maporder), lock/unlock pairing and locked access to
// shared state (mutexhygiene), no stray printing from library code
// (noprint), the dispatch lock hierarchy and blocking-under-lock freedom
// (lockorder), injected-clock discipline along every call path reachable
// from the dispatch core (clockflow), and a rot-free suppression
// inventory (staleignore).
//
// The engine is built on go/parser, go/types and go/importer alone — no
// module dependencies — and is exposed as the prordlint command. Since
// the interprocedural analyzers landed, every Run first builds a Program
// (callgraph.go): a type-resolved static call graph over all loaded
// packages, plus per-function lock/blocking effect summaries computed to
// a fixed point (lockset.go). Per-package analyzers receive the Program
// alongside their package; whole-program analyzers run once over it.
//
// Findings can be suppressed in source with a directive on the offending
// line or the line above it:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; a directive without one is itself reported,
// and a directive that no longer suppresses anything is reported by
// staleignore.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package, or over
// the whole program.
type Analyzer struct {
	// Name identifies the analyzer in findings, flags and suppression
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-line description shown by prordlint -list.
	Doc string
	// WholeProgram marks analyzers that run once over the Program
	// (Pass.Pkg is nil) instead of once per package.
	WholeProgram bool
	// Run inspects the package (or program) via pass and reports
	// findings. A nil Run marks an engine-special analyzer evaluated
	// inside Run itself (staleignore).
	Run func(pass *Pass)
}

// A Finding is one rule violation at a source position.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
}

// A Pass carries one analyzer's view of the analysis.
type Pass struct {
	Analyzer *Analyzer
	// Pkg is the package under analysis; nil for whole-program
	// analyzers, which see every package through Prog.
	Pkg *Package
	// Prog is the whole-module view: packages, call graph, and the
	// lazily computed lock/blocking fact tables.
	Prog     *Program
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	var fset *token.FileSet
	if p.Pkg != nil {
		fset = p.Pkg.Fset
	} else {
		fset = p.Prog.Fset
	}
	position := fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoRand,
		NoWallClock,
		MapOrder,
		MutexHygiene,
		NoPrint,
		LockOrder,
		ClockFlow,
		StaleIgnore,
	}
}

// Run applies the given analyzers to the packages and returns the
// surviving findings (suppressed ones removed, malformed suppression
// directives added, stale directives reported when staleignore is
// enabled) sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	prog := BuildProgram(pkgs)

	// Suppressions are collected across every package up front: a
	// whole-program analyzer can report into any file, so matching must
	// not be scoped to the package being iterated.
	sup := collectSuppressions(pkgs)
	findings := append([]Finding(nil), sup.malformed...)

	var raw []Finding
	staleEnabled := false
	for _, a := range analyzers {
		if a.Name == StaleIgnore.Name {
			staleEnabled = true
		}
		if a.Run == nil {
			continue
		}
		if a.WholeProgram {
			a.Run(&Pass{Analyzer: a, Prog: prog, findings: &raw})
			continue
		}
		for _, pkg := range pkgs {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Prog: prog, findings: &raw})
		}
	}
	for _, f := range raw {
		if !sup.matches(f) {
			findings = append(findings, f)
		}
	}

	// staleignore: a directive that matched nothing is dead weight —
	// unless an analyzer it names was disabled this run, in which case
	// it never had the chance to fire. Stale-directive findings are
	// meta-findings about the suppression inventory itself and are not
	// themselves suppressible (remove the directive instead).
	if staleEnabled {
		enabled := map[string]bool{}
		for _, a := range analyzers {
			enabled[a.Name] = true
		}
		allEnabled := len(analyzers) == len(Analyzers())
		for _, d := range sup.directives {
			if d.used > 0 {
				continue
			}
			covered := true
			for name := range d.analyzers {
				if name == "all" {
					covered = covered && allEnabled
				} else if !enabled[name] {
					covered = false
				}
			}
			if !covered {
				continue
			}
			findings = append(findings, Finding{
				Analyzer: StaleIgnore.Name,
				File:     d.file,
				Line:     d.line,
				Column:   d.column,
				Message: fmt.Sprintf(
					"//lint:ignore %s suppresses nothing; the finding it was written for is gone — delete the directive",
					d.names),
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int // the line the directive suppresses
	column    int
	names     string // the analyzer list as written, for diagnostics
	analyzers map[string]bool
	used      int // findings this directive suppressed in the run
}

type suppressions struct {
	directives []*ignoreDirective
	malformed  []Finding
}

const ignorePrefix = "//lint:ignore"

// collectSuppressions parses every //lint:ignore directive in the given
// packages. A directive suppresses matching findings on its own line
// (for trailing comments) and on the line below it (for directives
// placed above the offending statement).
func collectSuppressions(pkgs []*Package) suppressions {
	var s suppressions
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						s.malformed = append(s.malformed, Finding{
							Analyzer: "lint",
							File:     pos.Filename,
							Line:     pos.Line,
							Column:   pos.Column,
							Message:  "malformed directive: need //lint:ignore <analyzer> <reason>",
						})
						continue
					}
					names := map[string]bool{}
					for _, n := range strings.Split(fields[0], ",") {
						names[n] = true
					}
					s.directives = append(s.directives, &ignoreDirective{
						file:      pos.Filename,
						line:      pos.Line,
						column:    pos.Column,
						names:     fields[0],
						analyzers: names,
					})
				}
			}
		}
	}
	return s
}

// matches reports whether f is suppressed, marking the matching
// directive as used (staleignore's input).
func (s suppressions) matches(f Finding) bool {
	for _, d := range s.directives {
		if d.file != f.File {
			continue
		}
		if d.line != f.Line && d.line != f.Line-1 {
			continue
		}
		if d.analyzers[f.Analyzer] || d.analyzers["all"] {
			d.used++
			return true
		}
	}
	return false
}

// walkFiles applies fn to every node of every file in the pass's package.
func (p *Pass) walkFiles(fn func(n ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
