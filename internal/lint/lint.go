// Package lint is a stdlib-only static-analysis engine for the PRORD
// repository. It enforces the determinism and concurrency invariants the
// compiler cannot see: seeded randomness only (norand), simulated time in
// simulation code (nowallclock), order-insensitive map iteration in
// aggregation paths (maporder), lock/unlock pairing and locked access to
// shared state (mutexhygiene), and no stray printing from library code
// (noprint).
//
// The engine is built on go/parser, go/types and go/importer alone — no
// module dependencies — and is exposed as the prordlint command. Findings
// can be suppressed in source with a directive on the offending line or
// the line above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in findings, flags and suppression
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-line description shown by prordlint -list.
	Doc string
	// Run inspects the package via pass and reports findings.
	Run func(pass *Pass)
}

// A Finding is one rule violation at a source position.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoRand,
		NoWallClock,
		MapOrder,
		MutexHygiene,
		NoPrint,
	}
}

// Run applies the given analyzers to the packages and returns the
// surviving findings (suppressed ones removed, malformed suppression
// directives added) sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		findings = append(findings, sup.malformed...)
		var raw []Finding
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, findings: &raw}
			a.Run(pass)
		}
		for _, f := range raw {
			if !sup.matches(f) {
				findings = append(findings, f)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int // the line the directive suppresses
	analyzers map[string]bool
}

type suppressions struct {
	directives []ignoreDirective
	malformed  []Finding
}

const ignorePrefix = "//lint:ignore"

// collectSuppressions parses every //lint:ignore directive in the
// package. A directive suppresses matching findings on its own line (for
// trailing comments) and on the line below it (for directives placed
// above the offending statement).
func collectSuppressions(pkg *Package) suppressions {
	var s suppressions
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Finding{
						Analyzer: "lint",
						File:     pos.Filename,
						Line:     pos.Line,
						Column:   pos.Column,
						Message:  "malformed directive: need //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(fields[0], ",") {
					names[n] = true
				}
				s.directives = append(s.directives, ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: names,
				})
			}
		}
	}
	return s
}

func (s suppressions) matches(f Finding) bool {
	for _, d := range s.directives {
		if d.file != f.File {
			continue
		}
		if d.line != f.Line && d.line != f.Line-1 {
			continue
		}
		if d.analyzers[f.Analyzer] || d.analyzers["all"] {
			return true
		}
	}
	return false
}

// walkFiles applies fn to every node of every file in the pass's package.
func (p *Pass) walkFiles(fn func(n ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
