package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// checkFixture parses and type-checks one testdata file under an
// arbitrary import path (so package-scoped rules can be exercised both
// inside and outside their scope).
func checkFixture(t *testing.T, fixture, pkgPath string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	path := filepath.Join("testdata", fixture)
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", fixture, err)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, _ := conf.Check(pkgPath, fset, []*ast.File{f}, info)
	if len(typeErrs) > 0 {
		t.Fatalf("fixture %s has type errors (the test would be meaningless): %v", fixture, typeErrs)
	}
	return &Package{Path: pkgPath, Dir: "testdata", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

var wantRe = regexp.MustCompile(`// want ([a-z]+)`)

// wantedFindings reads the `// want <analyzer>` markers out of a fixture.
func wantedFindings(t *testing.T, fixture string) map[int]string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", fixture))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{}
	for i, line := range strings.Split(string(data), "\n") {
		if m := wantRe.FindStringSubmatch(line); m != nil {
			want[i+1] = m[1]
		}
	}
	return want
}

// gotFindings reduces findings to line -> analyzer for comparison.
func gotFindings(findings []Finding) map[int]string {
	got := map[int]string{}
	for _, f := range findings {
		got[f.Line] = f.Analyzer
	}
	return got
}

func TestAnalyzersOnFixtures(t *testing.T) {
	cases := []struct {
		name      string
		fixture   string
		pkgPath   string
		analyzers []*Analyzer
		// wantNone overrides the fixture's want markers: the package
		// path puts it out of the analyzer's scope.
		wantNone bool
	}{
		{name: "norand", fixture: "norand.go", pkgPath: "prord/internal/trace", analyzers: []*Analyzer{NoRand}},
		{name: "norand-exempt-in-randutil", fixture: "norand.go", pkgPath: "prord/internal/randutil", analyzers: []*Analyzer{NoRand}, wantNone: true},
		{name: "nowallclock", fixture: "nowallclock.go", pkgPath: "prord/internal/sim", analyzers: []*Analyzer{NoWallClock}},
		{name: "nowallclock-cluster", fixture: "nowallclock.go", pkgPath: "prord/internal/cluster", analyzers: []*Analyzer{NoWallClock}},
		{name: "nowallclock-exempt-elsewhere", fixture: "nowallclock.go", pkgPath: "prord/internal/httpfront", analyzers: []*Analyzer{NoWallClock}, wantNone: true},
		{name: "nowallclock-health", fixture: "nowallclock.go", pkgPath: "prord/internal/health", analyzers: []*Analyzer{NoWallClock}},
		{name: "nowallclock-health-prober-allowed", fixture: "prober.go", pkgPath: "prord/internal/health", analyzers: []*Analyzer{NoWallClock}, wantNone: true},
		{name: "nowallclock-prober-name-no-allowance-elsewhere", fixture: "prober.go", pkgPath: "prord/internal/sim", analyzers: []*Analyzer{NoWallClock}},
		{name: "maporder", fixture: "maporder.go", pkgPath: "prord/internal/experiment", analyzers: []*Analyzer{MapOrder}},
		{name: "mutexhygiene", fixture: "mutexhygiene.go", pkgPath: "prord/internal/httpfront", analyzers: []*Analyzer{MutexHygiene}},
		{name: "noprint", fixture: "noprint.go", pkgPath: "prord/internal/mining", analyzers: []*Analyzer{NoPrint}},
		{name: "noprint-exempt-in-cmd", fixture: "noprint.go", pkgPath: "prord/cmd/foo", analyzers: []*Analyzer{NoPrint}, wantNone: true},
		{name: "lockorder-inversion", fixture: "lockorder/inversion.go", pkgPath: "prord/internal/dispatch", analyzers: []*Analyzer{LockOrder}},
		{name: "lockorder-unranked-elsewhere", fixture: "lockorder/inversion.go", pkgPath: "prord/internal/other", analyzers: []*Analyzer{LockOrder}, wantNone: true},
		{name: "lockorder-blocking", fixture: "lockorder/blocking.go", pkgPath: "prord/internal/dispatch", analyzers: []*Analyzer{LockOrder}},
		{name: "lockorder-blocking-rank-independent", fixture: "lockorder/blocking.go", pkgPath: "prord/internal/other", analyzers: []*Analyzer{LockOrder}},
		{name: "lockorder-stripe", fixture: "lockorder/stripe.go", pkgPath: "prord/internal/dispatch", analyzers: []*Analyzer{LockOrder}},
		{name: "lockorder-stripe-rank-independent", fixture: "lockorder/stripe.go", pkgPath: "prord/internal/other", analyzers: []*Analyzer{LockOrder}},
		{name: "lockorder-clean", fixture: "lockorder/clean.go", pkgPath: "prord/internal/dispatch", analyzers: []*Analyzer{LockOrder}},
		{name: "lockorder-detectorleaf", fixture: "lockorder/detectorleaf.go", pkgPath: "prord/internal/health", analyzers: []*Analyzer{LockOrder}},
		{name: "lockorder-hedgeleaf", fixture: "lockorder/hedgeleaf.go", pkgPath: "prord/internal/httpfront", analyzers: []*Analyzer{LockOrder}},
		{name: "lockorder-hedgeleaf-unranked-elsewhere", fixture: "lockorder/hedgeleaf.go", pkgPath: "prord/internal/other", analyzers: []*Analyzer{LockOrder}, wantNone: true},
		{name: "lockorder-fleetleaf", fixture: "lockorder/fleetleaf.go", pkgPath: "prord/internal/fleet", analyzers: []*Analyzer{LockOrder}},
		{name: "clockflow-indirect", fixture: "clockflow/indirect.go", pkgPath: "prord/internal/dispatch", analyzers: []*Analyzer{ClockFlow}},
		{name: "clockflow-out-of-scope", fixture: "clockflow/indirect.go", pkgPath: "prord/internal/webmining", analyzers: []*Analyzer{ClockFlow}, wantNone: true},
		{name: "staleignore", fixture: "staleignore/stale.go", pkgPath: "prord/internal/mining", analyzers: []*Analyzer{NoPrint, StaleIgnore}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := checkFixture(t, tc.fixture, tc.pkgPath)
			findings := Run([]*Package{pkg}, tc.analyzers)
			want := wantedFindings(t, tc.fixture)
			if tc.wantNone {
				want = map[int]string{}
			}
			got := gotFindings(findings)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("findings mismatch\n got: %v\nwant: %v\nfull: %v", got, want, findings)
			}
		})
	}
}

// TestLockOrderExactFindings pins the acceptance fixtures down to
// exactly one finding per seeded violation — not merely "a finding on
// the right line": duplicate reports for one bug would drown real runs.
func TestLockOrderExactFindings(t *testing.T) {
	cases := []struct {
		fixture string
		want    int
	}{
		{"lockorder/inversion.go", 3}, // direct, via-callee, rank inversion
		{"lockorder/blocking.go", 2},  // direct send, send via helper
		{"lockorder/stripe.go", 1},
		{"lockorder/clean.go", 0},
	}
	for _, tc := range cases {
		pkg := checkFixture(t, tc.fixture, "prord/internal/dispatch")
		findings := Run([]*Package{pkg}, []*Analyzer{LockOrder})
		if len(findings) != tc.want {
			t.Errorf("%s: want exactly %d lockorder finding(s), got %d: %v",
				tc.fixture, tc.want, len(findings), findings)
		}
	}
}

// TestEffectSummariesPropagate checks the fixed point directly: the
// caller of a locking, blocking helper inherits both effects.
func TestEffectSummariesPropagate(t *testing.T) {
	pkg := checkFixture(t, "lockorder/blocking.go", "prord/internal/dispatch")
	prog := BuildProgram([]*Package{pkg})
	var helper, caller *Node
	for _, n := range prog.Graph.Nodes() {
		switch n.Name() {
		case "push":
			helper = n
		case "fileShard.sendViaHelper":
			caller = n
		}
	}
	if helper == nil || caller == nil {
		t.Fatalf("graph missing expected nodes (have %d nodes)", len(prog.Graph.Nodes()))
	}
	if f := prog.Facts(helper); f.blocks == "" {
		t.Errorf("push: want blocks set, got %+v", f)
	}
	cf := prog.Facts(caller)
	if cf.blocks == "" || cf.blocksVia != "push" {
		t.Errorf("sendViaHelper: want blocking inherited via push, got blocks=%q via=%q", cf.blocks, cf.blocksVia)
	}
	if len(cf.acquires) == 0 {
		t.Errorf("sendViaHelper: want its own mu acquisition in the summary, got %+v", cf.acquires)
	}
}

func TestSuppressionDirectives(t *testing.T) {
	pkg := checkFixture(t, "suppress.go", "prord/internal/mining")
	findings := Run([]*Package{pkg}, []*Analyzer{NoPrint})

	var lines []int
	byAnalyzer := map[string]int{}
	for _, f := range findings {
		lines = append(lines, f.Line)
		byAnalyzer[f.Analyzer]++
	}
	// The two directives in suppressed() must remove their findings; the
	// wrong-analyzer directive must not; the reason-less directive is
	// itself reported as malformed and suppresses nothing.
	if byAnalyzer["noprint"] != 2 {
		t.Errorf("want 2 surviving noprint findings, got %d (%v)", byAnalyzer["noprint"], findings)
	}
	if byAnalyzer["lint"] != 1 {
		t.Errorf("want 1 malformed-directive finding, got %d (%v)", byAnalyzer["lint"], findings)
	}
	for _, f := range findings {
		if f.Line <= 8 {
			t.Errorf("finding on suppressed line %d: %v", f.Line, f)
		}
	}
	_ = lines
}

func TestFindingsAreSorted(t *testing.T) {
	pkg := checkFixture(t, "noprint.go", "prord/internal/mining")
	a := Run([]*Package{pkg}, Analyzers())
	b := Run([]*Package{pkg}, Analyzers())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Run is not deterministic across invocations")
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Line > a[i].Line {
			t.Fatalf("findings not sorted by line: %v", a)
		}
	}
}

func TestLoaderResolvesModulePackages(t *testing.T) {
	pkgs, err := Load([]string{"prord/internal/randutil"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "prord/internal/randutil" {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
	if len(pkgs[0].TypeErrors) > 0 {
		t.Fatalf("type errors loading randutil: %v", pkgs[0].TypeErrors)
	}
	if len(pkgs[0].Files) == 0 {
		t.Fatal("no files loaded")
	}
}

// TestRepoIsClean lints the whole module with every analyzer: the tree
// must stay free of determinism and concurrency findings. This is the
// same gate CI applies via `go run ./cmd/prordlint ./...`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint skipped in -short mode")
	}
	pkgs, err := Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkgs, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
