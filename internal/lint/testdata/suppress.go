package fixture

import "fmt"

func suppressed() {
	//lint:ignore noprint demo output is intentional here
	fmt.Println("above-line directive")
	fmt.Println("same-line directive") //lint:ignore noprint trailing form
}

func notSuppressed() {
	//lint:ignore norand wrong analyzer named
	fmt.Println("still flagged")
	//lint:ignore noprint
	fmt.Println("reason-less directive suppresses nothing")
}
