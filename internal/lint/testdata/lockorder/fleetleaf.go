// lockorder fixture: the fleet layer's mutexes are all leaves of the
// hierarchy. The merger's watermark mutex is the contract-critical one
// — Apply callbacks must run outside it, so acquiring anything (or
// blocking) while it is held is exactly the deadlock the rank guards
// against. The leaf ranks only apply under prord/internal/fleet.
package fleet

import "sync"

type Merger struct {
	mu   sync.Mutex
	seen map[int]uint64
}

type Exchanger struct {
	mu     sync.Mutex
	latest map[int]int
}

// mergeThenPublish is the clean shape: the digest board and watermark
// table are taken one after the other, never nested, and the callback
// runs after both leaves are released.
func (m *Merger) mergeThenPublish(ex *Exchanger, apply func(int)) {
	ex.mu.Lock()
	d := ex.latest[0]
	ex.mu.Unlock()
	m.mu.Lock()
	m.seen[0] = uint64(d)
	m.mu.Unlock()
	apply(d)
}

// badNest reads the digest board while the watermark leaf is held.
func (m *Merger) badNest(ex *Exchanger) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ex.mu.Lock() // want lockorder
	m.seen[0] = uint64(ex.latest[0])
	ex.mu.Unlock()
}

// badApply blocks on a channel send while the watermark leaf is held —
// the shape the "callbacks run outside the lock" contract forbids.
func (m *Merger) badApply(ch chan uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch <- m.seen[0] // want lockorder
}
