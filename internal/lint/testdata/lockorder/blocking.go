// lockorder fixture: blocking operations under a held lock. Blocking
// rules are rank-independent — any non-empty lockset counts — so the
// findings here do not depend on the fixture's import path.
package dispatch

import "sync"

type fileShard struct {
	mu sync.Mutex
	ch chan int
}

// sendUnderLock performs a blocking channel send while holding the
// shard lock: if no receiver is ready, every other acquirer stalls.
func (f *fileShard) sendUnderLock(v int) {
	f.mu.Lock()
	f.ch <- v // want lockorder
	f.mu.Unlock()
}

// sendViaHelper reaches the same send through a callee; the effect
// summary propagates "may block" to this call site.
func (f *fileShard) sendViaHelper(v int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	push(f.ch, v) // want lockorder
}

func push(ch chan int, v int) {
	ch <- v
}

// tryEnqueue is the sanctioned shape: a select with a default case is
// a non-blocking attempt and is fine under the lock.
func (f *fileShard) tryEnqueue(v int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case f.ch <- v:
		return true
	default:
		return false
	}
}

// recvUnlocked blocks only after the lock is released.
func (f *fileShard) recvUnlocked() int {
	f.mu.Lock()
	f.mu.Unlock()
	return <-f.ch
}
