// lockorder fixture: the gray-failure detector's state mutex is a leaf
// of the hierarchy — its evaluation only sorts in-memory buffers, so
// nothing may be acquired and nothing may block while it is held. The
// leaf rank only applies under prord/internal/health.
package health

import "sync"

type Detector struct {
	mu       sync.Mutex
	backends []int
}

type sideTable struct {
	mu sync.Mutex
	n  int
}

// observeThenRank is the clean shape: the detector mutex is innermost
// and everything under it is plain computation.
func (d *Detector) observeThenRank(side *sideTable) {
	side.mu.Lock()
	side.n++
	side.mu.Unlock()
	d.mu.Lock()
	d.backends = append(d.backends, side.n)
	d.mu.Unlock()
}

// badNest acquires another mutex while the detector leaf is held.
func (d *Detector) badNest(side *sideTable) {
	d.mu.Lock()
	defer d.mu.Unlock()
	side.mu.Lock() // want lockorder
	side.n++
	side.mu.Unlock()
}

// badNotify blocks on a channel send while the detector leaf is held.
func (d *Detector) badNotify(ch chan int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ch <- len(d.backends) // want lockorder
}
