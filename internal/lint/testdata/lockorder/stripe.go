// lockorder fixture: same-class (stripe) nesting. Two locks of one
// class — two stripes of a striped table — have no statically checkable
// relative order, so nesting them flags under any import path.
package dispatch

import "sync"

type stripedTable struct {
	shards [8]tableShard
}

type tableShard struct {
	mu sync.Mutex
	n  int
}

// badStripe holds one stripe while taking another of the same class.
func (t *stripedTable) badStripe(i, j int) {
	a, b := &t.shards[i], &t.shards[j]
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want lockorder
	b.n++
	b.mu.Unlock()
}
