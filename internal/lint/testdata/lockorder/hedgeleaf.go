// lockorder fixture: the hedge race's bookkeeping mutexes are leaves —
// raceWriter.mu arbitrates the client writer, hedgedAttempt.mu guards
// the primary/backup handshake, and the proxy work runs outside both.
// Nesting one under the other (either order) flags under
// prord/internal/httpfront, where both classes are ranked leaves.
package httpfront

import "sync"

type raceWriter struct {
	mu    sync.Mutex
	owner int
}

type hedgedAttempt struct {
	race raceWriter

	mu          sync.Mutex
	primaryDone bool
	launched    bool
}

// claim is the clean shape: each leaf is taken alone, innermost.
func (h *hedgedAttempt) claim(id int) bool {
	h.mu.Lock()
	h.primaryDone = true
	h.mu.Unlock()
	h.race.mu.Lock()
	defer h.race.mu.Unlock()
	if h.race.owner == 0 {
		h.race.owner = id
	}
	return h.race.owner == id
}

// badClaimUnderHandshake holds the handshake mutex across the writer
// arbitration — a leaf acquired under a leaf.
func (h *hedgedAttempt) badClaimUnderHandshake() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.launched {
		h.race.mu.Lock() // want lockorder
		h.race.owner = 1
		h.race.mu.Unlock()
	}
}

// badHandshakeUnderClaim is the inverse nesting; leaf rules are
// direction-independent.
func (h *hedgedAttempt) badHandshakeUnderClaim() {
	h.race.mu.Lock()
	defer h.race.mu.Unlock()
	h.mu.Lock() // want lockorder
	h.launched = true
	h.mu.Unlock()
}
