// lockorder fixture: shard→writer lock inversions. Type-checked under
// the import path prord/internal/dispatch so the ranked hierarchy
// (Core.wrMu 10, Core.trackMu 20, Core.ovMu 30, sessionShard.mu leaf)
// applies to these mirror types.
package dispatch

import "sync"

type Core struct {
	wrMu    sync.Mutex
	trackMu sync.Mutex
	ovMu    sync.Mutex
}

type sessionShard struct {
	mu sync.Mutex
	n  int
}

// badDirect takes the writer lock while holding a shard leaf.
func (c *Core) badDirect(sh *sessionShard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.wrMu.Lock() // want lockorder
	c.wrMu.Unlock()
}

// badIndirect reaches the same inversion through a callee: the caller
// holds the leaf, the helper acquires wrMu.
func (c *Core) badIndirect(sh *sessionShard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.publishSnapshot() // want lockorder
}

func (c *Core) publishSnapshot() {
	c.wrMu.Lock()
	defer c.wrMu.Unlock()
}

// badRank inverts two ranked non-leaf classes (ovMu 30 → trackMu 20).
func (c *Core) badRank() {
	c.ovMu.Lock()
	defer c.ovMu.Unlock()
	c.trackMu.Lock() // want lockorder
	c.trackMu.Unlock()
}
