// lockorder fixture: shard→policy lock inversions. Type-checked under
// the import path prord/internal/dispatch so the ranked hierarchy
// (Core.polMu 10, Core.trackMu 20, Core.ovMu 30, sessionShard.mu leaf)
// applies to these mirror types.
package dispatch

import "sync"

type Core struct {
	polMu   sync.Mutex
	trackMu sync.Mutex
	ovMu    sync.Mutex
}

type sessionShard struct {
	mu sync.Mutex
	n  int
}

// badDirect takes the policy lock while holding a shard leaf.
func (c *Core) badDirect(sh *sessionShard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.polMu.Lock() // want lockorder
	c.polMu.Unlock()
}

// badIndirect reaches the same inversion through a callee: the caller
// holds the leaf, the helper acquires polMu.
func (c *Core) badIndirect(sh *sessionShard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.reloadPolicy() // want lockorder
}

func (c *Core) reloadPolicy() {
	c.polMu.Lock()
	defer c.polMu.Unlock()
}

// badRank inverts two ranked non-leaf classes (ovMu 30 → trackMu 20).
func (c *Core) badRank() {
	c.ovMu.Lock()
	defer c.ovMu.Unlock()
	c.trackMu.Lock() // want lockorder
	c.trackMu.Unlock()
}

