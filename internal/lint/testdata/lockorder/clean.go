// lockorder fixture: a clean hierarchy. Every acquisition follows the
// documented order (wrMu → trackMu → ovMu → shard leaves) and no
// blocking operation happens under a lock; the analyzer must stay
// silent on this file.
package dispatch

import "sync"

type Core struct {
	wrMu    sync.Mutex
	trackMu sync.Mutex
	ovMu    sync.Mutex
	sess    sessionShard
}

type sessionShard struct {
	mu sync.Mutex
	n  int
}

// route nests in documented order: wrMu, then ovMu, then a shard leaf
// taken and released as the innermost lock.
func (c *Core) route() {
	c.wrMu.Lock()
	defer c.wrMu.Unlock()
	c.ovMu.Lock()
	c.ovMu.Unlock()
	c.sess.mu.Lock()
	c.sess.n++
	c.sess.mu.Unlock()
}

// sequential takes ranked locks against rank order but never nested —
// ordering rules only apply to locks held simultaneously.
func (c *Core) sequential() {
	c.trackMu.Lock()
	c.trackMu.Unlock()
	c.wrMu.Lock()
	c.wrMu.Unlock()
}

// helperAfterRelease calls a leaf-taking helper only after releasing
// everything, so the effect summary has nothing to flag.
func (c *Core) helperAfterRelease() {
	c.wrMu.Lock()
	c.wrMu.Unlock()
	c.touchShard()
}

func (c *Core) touchShard() {
	c.sess.mu.Lock()
	defer c.sess.mu.Unlock()
	c.sess.n++
}

// earlyUnlockBranch exercises the terminating-branch heuristic: the
// error arm unlocks and returns, the fall-through path still holds the
// lock and releases it at the end.
func (c *Core) earlyUnlockBranch(bad bool) {
	c.wrMu.Lock()
	if bad {
		c.wrMu.Unlock()
		return
	}
	c.wrMu.Unlock()
}
