// clockflow fixture: a wall-clock read laundered through helpers. The
// file type-checks under prord/internal/dispatch, making Entry a root;
// the read two hops away must still be found via the call graph (the
// hole the file-scoped nowallclock allowances cannot close).
package dispatch

import "time"

// Entry is a dispatch entry point.
func Entry() int64 {
	return stampVia()
}

func stampVia() int64 {
	return stamp().UnixNano()
}

func stamp() time.Time {
	return time.Now() // want clockflow
}
