// staleignore fixture: one directive still earning its keep, one left
// behind after the finding it suppressed was fixed.
package mining

import "fmt"

func emit() {
	// This directive matches the Println below and is NOT stale.
	//lint:ignore noprint demo output is intentional in this fixture
	fmt.Println("kept")

	// The print this directive suppressed was deleted; the directive
	// was not. staleignore reports it.
	//lint:ignore noprint the println below was removed long ago // want staleignore
	_ = len("fixed")
}
