package fixture

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

type holder struct {
	names []string
}

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want maporder
		out = append(out, k)
	}
	return out
}

func badFieldAppend(m map[string]int, h *holder) {
	for k := range m { // want maporder
		h.names = append(h.names, k)
	}
}

func badPrint(m map[string]int) {
	for k, v := range m { // want maporder
		fmt.Printf("%s=%d\n", k, v)
	}
}

func badWriter(m map[string]int, w io.Writer) {
	for k := range m { // want maporder
		fmt.Fprintln(w, k)
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want maporder
		b.WriteString(k)
	}
	return b.String()
}

func goodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort: allowed
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m { // sorted via sort.Slice: allowed
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func goodCommutative(m map[string]int) int {
	total := 0
	for _, v := range m { // summing is order-insensitive: allowed
		total += v
	}
	return total
}

func goodInnerAppend(m map[string][]string) map[string]int {
	counts := map[string]int{}
	for k, vs := range m { // append target lives inside the loop: allowed
		var dedup []string
		seen := map[string]bool{}
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				dedup = append(dedup, v)
			}
		}
		counts[k] = len(dedup)
	}
	return counts
}

func goodSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs { // ranging a slice: allowed
		out = append(out, x)
	}
	return out
}
