package fixture

import (
	"math/rand"
	mrand "math/rand"
)

func useGlobals() {
	_ = rand.Intn(10)      // want norand
	_ = rand.Int63()       // want norand
	_ = rand.Float64()     // want norand
	_ = rand.Perm(4)       // want norand
	rand.Shuffle(3, nil)   // want norand
	_ = mrand.ExpFloat64() // want norand
	f := rand.Intn         // want norand
	_ = f
}

func seededIsFine() {
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(10)                    // method on a seeded *rand.Rand: allowed
	_ = r.Float64()                   // allowed
	z := rand.NewZipf(r, 1.1, 1, 100) // constructor: allowed
	_ = z
}
