package fixture

import "time"

func readsWallClock() time.Duration {
	start := time.Now()            // want nowallclock
	time.Sleep(time.Millisecond)   // want nowallclock
	<-time.After(time.Millisecond) // want nowallclock
	return time.Since(start)       // want nowallclock
}

func pureTimeIsFine() time.Duration {
	d := 5 * time.Second
	d += time.Duration(3) * time.Millisecond
	_ = d.Seconds()
	return d
}
