package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type rwcounter struct {
	mu sync.RWMutex
	n  int
}

func leakLock(c *counter) {
	c.mu.Lock() // want mutexhygiene
	c.n++
}

func leakRLock(c *rwcounter) int {
	c.mu.RLock() // want mutexhygiene
	return c.n
}

func pairedDefer(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func pairedDirect(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.mu.Lock()
	c.n--
	c.mu.Unlock()
}

func pairedRW(c *rwcounter) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

func deferredClosureUnlock(c *counter) {
	c.mu.Lock()
	defer func() {
		c.n = 0
		c.mu.Unlock()
	}()
	c.n++
}

// Inc locks before writing: allowed.
func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Reset writes c.n with no lock: the exported API must synchronize.
func (c *counter) Reset() {
	c.n = 0 // want mutexhygiene
}

// Bump is also unlocked, via IncDecStmt.
func (c *counter) Bump() {
	c.n++ // want mutexhygiene
}

// read is unexported: assumed to run with the lock held by its caller.
func (c *counter) read() int {
	return c.n
}

// reset is unexported: writes without locking are the caller's business.
func (c *counter) reset() {
	c.n = 0
}

// Peek only reads; the write rule does not apply.
func (c *counter) Peek() int {
	return c.n
}
