package fixture

import "time"

// This fixture is named prober.go on purpose: internal/health carries a
// per-file wall-clock allowance for its prober (the jittered probe loop
// must wait real time), so under prord/internal/health nothing below is
// reported, while any other covered package still flags every call.

func jitteredTimerLoop(stop <-chan struct{}) {
	t := time.NewTimer(time.Millisecond) // want nowallclock
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			t.Reset(time.Millisecond)
		}
	}
}

func readsClock() time.Time {
	return time.Now() // want nowallclock
}
