// Package sarifdemo gives the cmd/prordlint golden test a stable
// finding: its import path contains /internal/, so the Println below
// trips noprint, and the SARIF output for it is byte-for-byte
// deterministic (URIs are module-root-relative).
package sarifdemo

import "fmt"

// Emit prints from library code; noprint flags it.
func Emit() {
	fmt.Println("sarif golden fixture")
}
