package fixture

import (
	"fmt"
	"io"
	"os"
)

func chatty() {
	fmt.Println("hello")          // want noprint
	fmt.Printf("%d\n", 1)         // want noprint
	fmt.Print("x")                // want noprint
	println("debug")              // want noprint
	fmt.Fprintf(os.Stdout, "y\n") // want noprint
	fmt.Fprintln(os.Stderr, "z")  // want noprint
}

func quiet(w io.Writer) string {
	fmt.Fprintf(w, "to a writer is fine\n")
	return fmt.Sprintf("sprintf is fine")
}
