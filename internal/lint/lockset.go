package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes lock effects over the call graph: which lock
// classes a function may acquire (directly or through callees) and
// whether it may block. lockorder consumes both tables.
//
// A lock class is the static identity of a mutex: the struct field it
// lives in ("dispatch.Core.polMu", "dispatch.sessionShard.mu"), a
// package-level variable, or a local declaration. Two stripes of one
// striped table share a class — exactly what the stripe-order rule
// needs, since stripe indices are not statically known.
//
// The held-set walk is an approximation, tuned to under-report:
//
//   - Statements are processed in source order with branch structure:
//     an if/else arm that terminates (return, panic, break, continue)
//     does not leak its lock changes into the fall-through path, so
//     the common "if bad { mu.Unlock(); return }" shape keeps the lock
//     held afterwards.
//   - Branch merges union the surviving arms (may-held).
//   - defer mu.Unlock() — including the func(){ mu.Unlock() }()
//     wrapper — leaves the lock held for the rest of the body, which
//     is precisely how the code behaves.
//   - Loop bodies are analyzed once with the entry set; locks are
//     assumed balanced across iterations (mutexhygiene owns pairing).

// A lockClass identifies one mutex statically.
type lockClass struct {
	// key is the stable identity: "pkgpath.Type.field" for struct
	// fields, "pkgpath.var" for package-level mutexes, "local@pos" for
	// locals.
	key string
	// display is the short human name ("Core.polMu", "sh.mu").
	display string
	// rank orders the class in the configured hierarchy; 0 = unranked.
	rank int
	// leaf marks a terminal class: nothing may be acquired under it.
	leaf bool
	// ranked reports whether the class appears in the hierarchy table.
	ranked bool
}

// rankDef is one configured hierarchy entry.
type rankDef struct {
	pkgSuffix string // import-path suffix owning the type
	typeName  string
	fieldName string
	rank      int
	leaf      bool
}

// lockHierarchy is the dispatch core's documented lock order: the
// snapshot writer mutex first (the read path takes no lock at all —
// policy inputs come from an atomic snapshot load, so the old polMu
// is gone), then the tracker and overload locks, with the
// session/file shard stripes as leaves — nothing is ever acquired
// while a shard stripe is held, and a second stripe of either shard
// class is never taken (stripe order is not statically checkable, so
// nesting same-class stripes is flagged outright). The record
// emitter's mutex, the striped policy target tables, the WRR rotor
// and the incremental mining updater are leaves for the same reason:
// each guards a few fields and calls nothing while held. The gray
// layer adds three more leaves: the latency-outlier detector's state
// mutex (its evaluation sorts in-memory buffers only) and the hedge
// race's two bookkeeping mutexes (writer arbitration and the
// primary/backup handshake — the proxy work runs outside them). The
// fleet layer adds five more leaves: the ownership ring's membership
// writer (readers are lock-free off an atomic snapshot), the gossip
// digest board, the merger's watermark table (Apply callbacks run
// outside it by contract), the pending-delta buffer, and the live
// adapter's per-peer health-verdict mutex (the union mask the core
// reads is published through an atomic pointer).
var lockHierarchy = []rankDef{
	{"internal/autoscale", "Controller", "mu", 5, false},
	{"internal/dispatch", "Core", "wrMu", 10, false},
	{"internal/dispatch", "Core", "trackMu", 20, false},
	{"internal/dispatch", "Core", "ovMu", 30, false},
	{"internal/dispatch", "sessionShard", "mu", 90, true},
	{"internal/dispatch", "fileShard", "mu", 91, true},
	{"internal/dispatch", "recordEmitter", "mu", 92, true},
	{"internal/policy", "targetStripe", "mu", 93, true},
	{"internal/policy", "WRR", "mu", 94, true},
	{"internal/mining", "Updater", "mu", 96, true},
	{"internal/autoscale", "Pool", "mu", 95, true},
	{"internal/health", "Detector", "mu", 97, true},
	{"internal/httpfront", "raceWriter", "mu", 98, true},
	{"internal/httpfront", "hedgedAttempt", "mu", 99, true},
	{"internal/fleet", "Ring", "mu", 100, true},
	{"internal/fleet", "Exchanger", "mu", 101, true},
	{"internal/fleet", "Merger", "mu", 102, true},
	{"internal/fleet", "Buffer", "mu", 103, true},
	{"internal/httpfront", "fleetState", "healthMu", 104, true},
}

// classifyLock maps the receiver of a Lock/Unlock call to its class.
func classifyLock(pkg *Package, recv ast.Expr) lockClass {
	recv = unparen(recv)
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		field := sel.Sel.Name
		ownerType := ""
		ownerPkg := ""
		if tv, ok := pkg.Info.Types[sel.X]; ok && tv.Type != nil {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				ownerType = named.Obj().Name()
				if named.Obj().Pkg() != nil {
					ownerPkg = named.Obj().Pkg().Path()
				}
			}
		}
		if ownerType != "" {
			c := lockClass{
				key:     ownerPkg + "." + ownerType + "." + field,
				display: ownerType + "." + field,
			}
			for _, def := range lockHierarchy {
				if def.typeName == ownerType && def.fieldName == field &&
					strings.HasSuffix(ownerPkg, def.pkgSuffix) {
					c.rank, c.leaf, c.ranked = def.rank, def.leaf, true
					break
				}
			}
			return c
		}
	}
	// Plain identifier (package-level or local mutex) or anything else:
	// identity by declaring object when resolvable, else by expression.
	if id := baseIdent(recv); id != nil {
		if obj := pkg.Info.ObjectOf(id); obj != nil {
			if obj.Parent() == pkg.Types.Scope() {
				return lockClass{key: pkg.Path + "." + obj.Name(), display: obj.Name()}
			}
			return lockClass{
				key:     fmt.Sprintf("local@%d.%s", obj.Pos(), obj.Name()),
				display: types.ExprString(recv),
			}
		}
	}
	s := types.ExprString(recv)
	return lockClass{key: "expr." + s, display: s}
}

// heldLock is one entry of the walker's lockset.
type heldLock struct {
	class lockClass
	pos   token.Pos // acquisition site
}

// lockOp is one acquisition with the set held just before it.
type lockOp struct {
	class lockClass
	pos   token.Pos
	held  []heldLock
}

// blockOp is one potentially blocking operation.
type blockOp struct {
	what string // "channel send", "time.Sleep", ...
	pos  token.Pos
	held []heldLock
}

// callSite is one resolved module-internal call with the set held at
// the site. Only CallEdge sites matter for lock propagation: deferred
// calls run at exit and go statements run on a fresh goroutine.
type callSite struct {
	edge *Edge
	held []heldLock
}

// walkResult is the per-function output of the held-set walk.
type walkResult struct {
	lockOps  []lockOp
	blockOps []blockOp
	calls    []callSite
	// acquires is the local may-acquire set (before propagation).
	acquires map[string]lockClass
	// blocksLocal is the first local blocking op, if any.
	blocksLocal *blockOp
}

// funcFacts is a function's transitive effect summary.
type funcFacts struct {
	// acquires maps class key -> class for every lock the function or
	// a (synchronous) callee may acquire.
	acquires map[string]lockClass
	// acquiresVia names the callee that contributed a class ("" when
	// acquired directly).
	acquiresVia map[string]string
	// blocks describes the first blocking operation reachable on the
	// function's own goroutine ("" when none).
	blocks string
	// blocksVia names the callee the blocking op is reached through.
	blocksVia string
}

// ensureFacts computes the walk results and the fixed-point effect
// summaries once per Program.
func (p *Program) ensureFacts() {
	if p.facts != nil {
		return
	}
	p.facts = map[*Node]*funcFacts{}
	p.walks = map[*Node]*walkResult{}
	for _, n := range p.Graph.Nodes() {
		w := walkNode(n)
		p.walks[n] = w
		f := &funcFacts{acquires: map[string]lockClass{}, acquiresVia: map[string]string{}}
		for k, c := range w.acquires {
			f.acquires[k] = c
		}
		if w.blocksLocal != nil {
			f.blocks = w.blocksLocal.what
		}
		p.facts[n] = f
	}
	// Fixed point: propagate effects caller-ward over synchronous call
	// edges until nothing changes. The module is small; a simple sweep
	// loop converges in a handful of rounds.
	for changed := true; changed; {
		changed = false
		for _, n := range p.Graph.Nodes() {
			nf := p.facts[n]
			for _, e := range n.Edges {
				if e.Kind != CallEdge {
					continue
				}
				for _, callee := range e.Callees {
					cf := p.facts[callee]
					if cf == nil {
						continue
					}
					for k, c := range cf.acquires {
						if _, ok := nf.acquires[k]; !ok {
							nf.acquires[k] = c
							nf.acquiresVia[k] = callee.Name()
							changed = true
						}
					}
					if nf.blocks == "" && cf.blocks != "" {
						nf.blocks = cf.blocks
						nf.blocksVia = callee.Name()
						changed = true
					}
				}
			}
		}
	}
}

// Facts returns a node's effect summary (nil for unknown nodes).
func (p *Program) Facts(n *Node) *funcFacts { p.ensureFacts(); return p.facts[n] }

// Walk returns a node's held-set walk result.
func (p *Program) Walk(n *Node) *walkResult { p.ensureFacts(); return p.walks[n] }

// --- the held-set walker ---

type walker struct {
	pkg *Package
	// edgeByCall finds the node's resolved edge for a call expression.
	edgeByCall map[*ast.CallExpr]*Edge
	res        *walkResult
}

func walkNode(n *Node) *walkResult {
	w := &walker{
		pkg:        n.Pkg,
		edgeByCall: map[*ast.CallExpr]*Edge{},
		res:        &walkResult{acquires: map[string]lockClass{}},
	}
	for _, e := range n.Edges {
		if e.Call != nil {
			w.edgeByCall[e.Call] = e
		}
	}
	held, _ := w.stmts(n.Body.List, nil)
	_ = held
	return w.res
}

func snapshot(held []heldLock) []heldLock {
	if len(held) == 0 {
		return nil
	}
	out := make([]heldLock, len(held))
	copy(out, held)
	return out
}

// stmts processes a statement list with the entry lockset and returns
// the fall-through set plus whether the list always terminates.
func (w *walker) stmts(list []ast.Stmt, held []heldLock) ([]heldLock, bool) {
	for _, s := range list {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *walker) stmt(s ast.Stmt, held []heldLock) ([]heldLock, bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		return w.expr(st.X, held), false
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			held = w.expr(e, held)
		}
		for _, e := range st.Lhs {
			held = w.expr(e, held)
		}
		return held, false
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						held = w.expr(e, held)
					}
				}
			}
		}
		return held, false
	case *ast.SendStmt:
		held = w.expr(st.Chan, held)
		held = w.expr(st.Value, held)
		w.block("channel send", st.Arrow, held)
		return held, false
	case *ast.IncDecStmt:
		return w.expr(st.X, held), false
	case *ast.DeferStmt:
		return w.deferStmt(st, held), false
	case *ast.GoStmt:
		// Arguments evaluate on this goroutine; the callee runs on its
		// own with an empty lockset, so nothing propagates.
		for _, a := range st.Call.Args {
			held = w.expr(a, held)
		}
		return held, false
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			held = w.expr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave the straight-line path; treat like a
		// terminator so the arm's lock changes stay local to it.
		return held, true
	case *ast.BlockStmt:
		return w.stmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		held = w.expr(st.Cond, held)
		thenHeld, thenTerm := w.stmts(st.Body.List, snapshot(held))
		elseHeld, elseTerm := snapshot(held), false
		if st.Else != nil {
			elseHeld, elseTerm = w.stmt(st.Else, snapshot(held))
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return mergeHeld(thenHeld, elseHeld), false
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		if st.Cond != nil {
			held = w.expr(st.Cond, held)
		}
		w.stmts(st.Body.List, snapshot(held))
		return held, false
	case *ast.RangeStmt:
		held = w.expr(st.X, held)
		if tv, ok := w.pkg.Info.Types[st.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.block("range over channel", st.For, held)
			}
		}
		w.stmts(st.Body.List, snapshot(held))
		return held, false
	case *ast.SwitchStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		if st.Tag != nil {
			held = w.expr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e, snapshot(held))
				}
				w.stmts(cc.Body, snapshot(held))
			}
		}
		return held, false
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held, _ = w.stmt(st.Init, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, snapshot(held))
			}
		}
		return held, false
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.block("select with no default case", st.Select, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				// The comm operations themselves are accounted to the
				// select (non-blocking attempts when a default exists),
				// but their operand expressions and bodies still run.
				w.stmts(cc.Body, snapshot(held))
			}
		}
		return held, false
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, held)
	}
	return held, false
}

// deferStmt handles deferred unlocks: defer mu.Unlock() and the
// defer func(){ mu.Unlock() }() wrapper keep the lock held for the
// remainder of the body (the walker never removes it), which matches
// runtime behavior. Other deferred calls are analyzed as their own
// nodes with an empty entry set.
func (w *walker) deferStmt(st *ast.DeferStmt, held []heldLock) []heldLock {
	for _, a := range st.Call.Args {
		held = w.expr(a, held)
	}
	return held
}

// expr walks one expression, updating the lockset at mutex calls and
// recording blocking operations and resolved call sites.
func (w *walker) expr(e ast.Expr, held []heldLock) []heldLock {
	switch x := e.(type) {
	case nil:
		return held
	case *ast.CallExpr:
		// Evaluate arguments first (they run before the call).
		for _, a := range x.Args {
			held = w.expr(a, held)
		}
		if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
			m := sel.Sel.Name
			if (m == "Lock" || m == "RLock" || m == "Unlock" || m == "RUnlock" || m == "TryLock" || m == "TryRLock") &&
				isMutexExpr2(w.pkg, sel.X) {
				held = w.expr(sel.X, held)
				class := classifyLock(w.pkg, sel.X)
				switch m {
				case "Lock", "RLock":
					w.res.lockOps = append(w.res.lockOps, lockOp{class: class, pos: sel.Pos(), held: snapshot(held)})
					w.res.acquires[class.key] = class
					held = append(snapshot(held), heldLock{class: class, pos: sel.Pos()})
				case "Unlock", "RUnlock":
					held = releaseLock(held, class)
				}
				return held
			}
			held = w.expr(sel.X, held)
		} else {
			held = w.expr(x.Fun, held)
		}
		if what, blocking := blockingStdlibCall(w.pkg, x); blocking {
			w.block(what, x.Pos(), held)
			return held
		}
		if edge, ok := w.edgeByCall[x]; ok && edge.Kind == CallEdge && len(edge.Callees) > 0 {
			w.res.calls = append(w.res.calls, callSite{edge: edge, held: snapshot(held)})
		}
		return held
	case *ast.UnaryExpr:
		held = w.expr(x.X, held)
		if x.Op == token.ARROW {
			w.block("channel receive", x.OpPos, held)
		}
		return held
	case *ast.BinaryExpr:
		held = w.expr(x.X, held)
		return w.expr(x.Y, held)
	case *ast.ParenExpr:
		return w.expr(x.X, held)
	case *ast.SelectorExpr:
		return w.expr(x.X, held)
	case *ast.IndexExpr:
		held = w.expr(x.X, held)
		return w.expr(x.Index, held)
	case *ast.SliceExpr:
		held = w.expr(x.X, held)
		held = w.expr(x.Low, held)
		held = w.expr(x.High, held)
		return w.expr(x.Max, held)
	case *ast.StarExpr:
		return w.expr(x.X, held)
	case *ast.TypeAssertExpr:
		return w.expr(x.X, held)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			held = w.expr(el, held)
		}
		return held
	case *ast.KeyValueExpr:
		held = w.expr(x.Key, held)
		return w.expr(x.Value, held)
	case *ast.FuncLit:
		return held // its body is a separate node
	}
	return held
}

func (w *walker) block(what string, pos token.Pos, held []heldLock) {
	op := blockOp{what: what, pos: pos, held: snapshot(held)}
	w.res.blockOps = append(w.res.blockOps, op)
	if w.res.blocksLocal == nil {
		w.res.blocksLocal = &op
	}
}

// releaseLock removes the most recent entry of class from the set.
func releaseLock(held []heldLock, class lockClass) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].class.key == class.key {
			out := make([]heldLock, 0, len(held)-1)
			out = append(out, held[:i]...)
			out = append(out, held[i+1:]...)
			return out
		}
	}
	return held
}

// mergeHeld unions two may-held sets, deduplicated by class.
func mergeHeld(a, b []heldLock) []heldLock {
	out := snapshot(a)
	seen := map[string]bool{}
	for _, h := range a {
		seen[h.class.key] = true
	}
	for _, h := range b {
		if !seen[h.class.key] {
			seen[h.class.key] = true
			out = append(out, h)
		}
	}
	return out
}

// isMutexExpr2 reports whether e's type is sync.Mutex/RWMutex or a
// pointer to one (package-level twin of the Pass-based helper).
func isMutexExpr2(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isMutexType(tv.Type)
}

// --- blocking stdlib calls ---

// blockingNetFuncs are package-level net functions that wait on the
// network.
var blockingNetFuncs = []string{"Dial", "Listen", "Lookup"}

// blockingHTTPFuncs are package-level net/http functions that perform
// round trips or serve.
var blockingHTTPFuncs = map[string]bool{
	"Get": true, "Post": true, "Head": true, "PostForm": true,
	"ListenAndServe": true, "ListenAndServeTLS": true, "Serve": true, "ServeTLS": true,
}

// blockingHTTPMethods block on types in net/http / net/http/httputil.
var blockingHTTPMethods = map[string]bool{
	"Do": true, "RoundTrip": true, "ListenAndServe": true, "ListenAndServeTLS": true,
	"Serve": true, "ServeTLS": true, "Shutdown": true, "ServeHTTP": true,
}

// blockingNetMethods block on types in net (conns, listeners).
var blockingNetMethods = map[string]bool{
	"Read": true, "Write": true, "Accept": true, "ReadFrom": true, "WriteTo": true,
}

// blockingStdlibCall reports whether call is a known-blocking standard
// library operation and names it. The list is deliberately explicit:
// constructors and pure helpers in net/http (NewRequest, StatusText,
// Header methods) do not block and are not listed.
func blockingStdlibCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Package-level functions: time.Sleep, net.Dial*/Listen*/Lookup*,
	// http.Get/Serve/...
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
			path, name := pn.Imported().Path(), sel.Sel.Name
			switch path {
			case "time":
				if name == "Sleep" {
					return "time.Sleep", true
				}
			case "net":
				for _, prefix := range blockingNetFuncs {
					if strings.HasPrefix(name, prefix) {
						return "net." + name, true
					}
				}
			case "net/http":
				if blockingHTTPFuncs[name] {
					return "http." + name, true
				}
			}
			return "", false
		}
	}
	// Methods: resolve the receiver's defining package.
	selection, ok := pkg.Info.Selections[sel]
	if !ok {
		return "", false
	}
	f, ok := selection.Obj().(*types.Func)
	if !ok || f.Pkg() == nil {
		return "", false
	}
	name := f.Name()
	switch f.Pkg().Path() {
	case "sync":
		if name == "Wait" {
			return "sync " + recvTypeName(f) + ".Wait", true
		}
	case "net/http", "net/http/httputil":
		if blockingHTTPMethods[name] {
			return recvTypeName(f) + "." + name, true
		}
	case "net":
		if blockingNetMethods[name] {
			return recvTypeName(f) + "." + name, true
		}
	}
	return "", false
}

func recvTypeName(f *types.Func) string {
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return f.Pkg().Name()
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return f.Pkg().Name()
}
