package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, minimal but valid: one run, one rule per
// analyzer, one result per finding. File URIs are relativized to the
// module root so the log is stable across checkouts — which also makes
// the cmd/prordlint golden test deterministic.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// moduleRelative rewrites an absolute finding path relative to the
// module root, with forward slashes. Paths outside the root (or an
// empty root) pass through unchanged.
func moduleRelative(root, file string) string {
	if root == "" {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(root, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}

// WriteSARIF serializes findings as a SARIF 2.1.0 log. analyzers
// populates the rule table (every analyzer that ran, findings or not);
// root relativizes file URIs.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer, root string) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	// "lint" is the engine's own rule id for malformed directives.
	rules = append(rules, sarifRule{ID: "lint", ShortDescription: sarifMessage{Text: "malformed //lint:ignore directive"}})

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: moduleRelative(root, f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "prordlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
