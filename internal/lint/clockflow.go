package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// clockflowRootPackages are the package-path suffixes whose functions
// are treated as entry points: everything they can reach — in any
// module package, through any edge kind, including goroutines and
// stored closures — must obtain time from the injected clock.
//
// This is the call-graph generalization of nowallclock: that analyzer
// scans a fixed package list file by file, so a covered package could
// launder a wall-clock read through a helper in an uncovered package
// (or through a per-file allowance). clockflow closes those holes by
// following reachability instead of file location. The one legitimate
// wall-clock user (the health prober's inter-probe timer) carries a
// line-level //lint:ignore clockflow directive with its justification.
var clockflowRootPackages = []string{
	"internal/dispatch",
	"internal/cluster",
	"internal/overload",
	"internal/health",
	"internal/autoscale",
	"internal/fleet",
}

// ClockFlow forbids wall-clock reads anywhere reachable from the
// dispatch core's entry packages.
var ClockFlow = &Analyzer{
	Name:         "clockflow",
	Doc:          "forbid wall-clock reads in any function reachable from dispatch/cluster/overload/health/autoscale/fleet entry points (interprocedural)",
	WholeProgram: true,
	Run:          runClockFlow,
}

func runClockFlow(pass *Pass) {
	prog := pass.Prog

	isRoot := func(n *Node) bool {
		for _, suffix := range clockflowRootPackages {
			if strings.HasSuffix(n.Pkg.Path, suffix) {
				return true
			}
		}
		return false
	}

	// BFS from every root function over all edge kinds: a deferred call,
	// a spawned goroutine and a stored closure all execute on behalf of
	// the core, so a wall-clock read in any of them still breaks replay.
	pred := map[*Node]*Node{}
	reached := map[*Node]bool{}
	var queue []*Node
	for _, n := range prog.Graph.Nodes() {
		if isRoot(n) {
			reached[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Edges {
			for _, callee := range e.Callees {
				if !reached[callee] {
					reached[callee] = true
					pred[callee] = n
					queue = append(queue, callee)
				}
			}
		}
	}

	for _, n := range prog.Graph.Nodes() {
		if !reached[n] {
			continue
		}
		chain := witnessChain(n, pred)
		ast.Inspect(n.Body, func(x ast.Node) bool {
			if _, isLit := x.(*ast.FuncLit); isLit {
				return false // the literal is its own (possibly reached) node
			}
			sel, ok := x.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := packagePathOf(n.Pkg, sel)
			if !ok || pkgPath != "time" || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock on a path reachable from the dispatch core (%s); obtain time from the injected clock",
				sel.Sel.Name, chain)
			return true
		})
	}
}

// witnessChain renders the BFS path root → ... → n for the diagnostic.
func witnessChain(n *Node, pred map[*Node]*Node) string {
	var names []string
	for at := n; at != nil; at = pred[at] {
		names = append(names, at.Name())
		if len(names) >= 6 { // keep diagnostics readable on deep chains
			names = append(names, "…")
			break
		}
	}
	s := ""
	for i := len(names) - 1; i >= 0; i-- {
		if s != "" {
			s += " → "
		}
		s += names[i]
	}
	return s
}

// packagePathOf is packageOf without a Pass: the import path of sel's
// receiver if it names an imported package.
func packagePathOf(pkg *Package, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path(), true
	}
	return "", false
}
