package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the Program: the whole-module view the call-graph
// analyzers (lockorder, clockflow) and the fact-aware ports of the
// original analyzers run against. It stays stdlib-only: the graph is
// resolved from go/types information alone.
//
// Resolution is deliberately static and bounded:
//
//   - Direct calls (pkg.F(), x.Method() on a concrete receiver) resolve
//     to exactly one callee.
//   - Calls through an interface declared in this module resolve to the
//     method set of every module type implementing it — bounded by
//     maxIfaceImpls; past the bound the call is treated as opaque
//     rather than exploding the graph.
//   - Interfaces declared outside the module (io.Writer, error,
//     http.Handler, ...) are opaque: their implementation sets are
//     open-ended and resolving them drags unrelated packages into
//     reachability.
//   - Function values (callbacks, stored closures) are opaque. A
//     function literal still becomes its own node, with an edge from
//     the enclosing function whose kind records how it runs: called
//     in place, deferred, launched with go, or merely referenced.
//
// Opaque calls are treated as neither locking nor blocking — the
// engine under-approximates rather than flooding CI with guesses.

// maxIfaceImpls bounds method-set resolution for one interface method.
// An interface with more module implementations than this is treated
// as opaque.
const maxIfaceImpls = 16

// EdgeKind says how a call site transfers control.
type EdgeKind int

const (
	// CallEdge is a plain synchronous call: the callee runs on the
	// caller's goroutine with the caller's locks held.
	CallEdge EdgeKind = iota
	// DeferEdge is a deferred call: same goroutine, but at function
	// exit, so the caller's mid-body lockset does not apply.
	DeferEdge
	// GoEdge launches the callee on a new goroutine: locks held by the
	// caller are not held by the callee.
	GoEdge
	// RefEdge records a function literal that is referenced (stored,
	// passed as a callback) without being called in place.
	RefEdge
)

// A Node is one analyzable function: a declared function or method, or
// a function literal.
type Node struct {
	// Func is the declared function's object; nil for literals.
	Func *types.Func
	// Decl is the declaration; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Pkg is the package the body lives in.
	Pkg *Package
	// Body is the function body (never nil for graph nodes).
	Body *ast.BlockStmt
	// Edges are the node's resolved outgoing call sites, in source
	// order.
	Edges []*Edge
}

// Name returns a human-readable identifier for diagnostics:
// "Core.Route", "shardOf", or "func@file:line" for literals.
func (n *Node) Name() string {
	if n.Func != nil {
		if recv := n.Func.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + n.Func.Name()
			}
		}
		return n.Func.Name()
	}
	pos := n.Pkg.Fset.Position(n.Lit.Pos())
	return "func literal at line " + itoa(pos.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// An Edge is one call site with its resolved targets.
type Edge struct {
	Kind EdgeKind
	// Pos is the call position.
	Pos token.Pos
	// Call is the call expression (nil for RefEdge literals).
	Call *ast.CallExpr
	// Callees are the resolved module-internal targets. Empty means the
	// call is opaque (stdlib, function value, over-wide interface).
	Callees []*Node
}

// CallGraph is the module's static call graph.
type CallGraph struct {
	// ByFunc maps a declared function object to its node.
	ByFunc map[*types.Func]*Node
	// nodes is every node (declared + literals) in deterministic order:
	// package path, then position.
	nodes []*Node
}

// Nodes returns every node in deterministic order.
func (g *CallGraph) Nodes() []*Node { return g.nodes }

// A Program is the whole-module analysis view shared by every
// analyzer in one Run: the packages, the call graph, and (computed on
// first use) the per-function lock/blocking fact tables.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Graph *CallGraph

	// modulePrefix is the first import-path segment of the analyzed
	// packages ("prord"); interfaces outside it are opaque.
	modulePrefix string

	facts map[*Node]*funcFacts // lazily built by ensureFacts
	walks map[*Node]*walkResult
}

// BuildProgram constructs the module view for one Run. Packages should
// share a FileSet (they do when produced by one Loader; fixture tests
// pass a single package).
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{Pkgs: pkgs}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
		if i := strings.IndexByte(pkgs[0].Path, '/'); i > 0 {
			prog.modulePrefix = pkgs[0].Path[:i]
		} else {
			prog.modulePrefix = pkgs[0].Path
		}
	}
	b := &graphBuilder{
		prog:  prog,
		graph: &CallGraph{ByFunc: map[*types.Func]*Node{}},
		impls: map[string][]*types.Func{},
	}
	b.build()
	prog.Graph = b.graph
	return prog
}

// PackageOf returns the analyzed package a node belongs to.
func (p *Program) PackageOf(n *Node) *Package { return n.Pkg }

type graphBuilder struct {
	prog  *Program
	graph *CallGraph
	impls map[string][]*types.Func // iface cache: key -> concrete methods
}

func (b *graphBuilder) build() {
	// Pass 1: a node per declared function with a body.
	for _, pkg := range b.prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				node := &Node{Func: fn, Decl: fd, Pkg: pkg, Body: fd.Body}
				if fn != nil {
					b.graph.ByFunc[fn] = node
				}
				b.graph.nodes = append(b.graph.nodes, node)
			}
		}
	}
	// Pass 2: edges, creating literal nodes as they are found. Literal
	// nodes are appended during the walk, and their own edges resolved
	// in turn (the slice grows while we iterate).
	for i := 0; i < len(b.graph.nodes); i++ {
		b.edges(b.graph.nodes[i])
	}
	sort.SliceStable(b.graph.nodes, func(i, j int) bool {
		a, c := b.graph.nodes[i], b.graph.nodes[j]
		if a.Pkg.Path != c.Pkg.Path {
			return a.Pkg.Path < c.Pkg.Path
		}
		return a.Body.Pos() < c.Body.Pos()
	})
}

// edges walks one node's body, resolving call sites. Function literals
// become child nodes; their bodies are not walked as part of the
// parent (each literal is its own scope).
func (b *graphBuilder) edges(n *Node) {
	// claimed marks calls consumed by a go/defer statement so the
	// generic CallExpr case does not double-count them, and literals
	// consumed as a call's Fun so they are not re-recorded as RefEdges.
	claimed := map[ast.Node]EdgeKind{}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.GoStmt:
			claimed[s.Call] = GoEdge
		case *ast.DeferStmt:
			claimed[s.Call] = DeferEdge
		case *ast.CallExpr:
			kind, ok := claimed[s]
			if !ok {
				kind = CallEdge
			}
			if lit, isLit := unparen(s.Fun).(*ast.FuncLit); isLit {
				child := b.litNode(n, lit)
				n.Edges = append(n.Edges, &Edge{Kind: kind, Pos: s.Pos(), Call: s, Callees: []*Node{child}})
				claimed[lit] = kind
				return true
			}
			callees := b.resolve(n.Pkg, s)
			n.Edges = append(n.Edges, &Edge{Kind: kind, Pos: s.Pos(), Call: s, Callees: callees})
		case *ast.FuncLit:
			if _, consumed := claimed[s]; !consumed {
				child := b.litNode(n, s)
				n.Edges = append(n.Edges, &Edge{Kind: RefEdge, Pos: s.Pos(), Callees: []*Node{child}})
			}
			return false // the literal's body belongs to its own node
		}
		return true
	})
}

// litNode creates (and registers) the node for one function literal.
func (b *graphBuilder) litNode(parent *Node, lit *ast.FuncLit) *Node {
	child := &Node{Lit: lit, Pkg: parent.Pkg, Body: lit.Body}
	b.graph.nodes = append(b.graph.nodes, child)
	return child
}

// resolve maps one call expression to its module-internal targets.
func (b *graphBuilder) resolve(pkg *Package, call *ast.CallExpr) []*Node {
	// A conversion (T(x)) parses as a call; skip it.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return b.nodesFor(f)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return b.ifaceTargets(sel.Recv(), f)
			}
			return b.nodesFor(f)
		}
		// Package-qualified function (pkg.F) or method expression.
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return b.nodesFor(f)
		}
	}
	return nil
}

func (b *graphBuilder) nodesFor(f *types.Func) []*Node {
	if f == nil {
		return nil
	}
	if origin := f.Origin(); origin != nil {
		f = origin
	}
	if n, ok := b.graph.ByFunc[f]; ok {
		return []*Node{n}
	}
	return nil
}

// ifaceTargets implements bounded method-set resolution: a call on an
// interface declared in this module resolves to the matching method of
// every module type implementing it, capped at maxIfaceImpls.
func (b *graphBuilder) ifaceTargets(recv types.Type, m *types.Func) []*Node {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	if m.Pkg() == nil || !b.inModule(m.Pkg().Path()) {
		return nil // interface declared outside the module: opaque
	}
	key := types.TypeString(recv, nil) + "." + m.Name()
	concrete, cached := b.impls[key]
	if !cached {
		concrete = b.findImpls(iface, m.Name())
		b.impls[key] = concrete
	}
	var out []*Node
	for _, f := range concrete {
		out = append(out, b.nodesFor(f)...)
	}
	return out
}

// findImpls scans the analyzed packages for named non-interface types
// implementing iface and returns their name methods.
func (b *graphBuilder) findImpls(iface *types.Interface, name string) []*types.Func {
	var out []*types.Func
	for _, pkg := range b.prog.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, tname := range scope.Names() {
			tn, ok := scope.Lookup(tname).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if ok && types.IsInterface(named) {
				continue
			}
			if !ok {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, tn.Pkg(), name)
			if f, ok := obj.(*types.Func); ok {
				out = append(out, f)
				if len(out) > maxIfaceImpls {
					return nil // over the bound: opaque
				}
			}
		}
	}
	return out
}

func (b *graphBuilder) inModule(path string) bool {
	return path == b.prog.modulePrefix || strings.HasPrefix(path, b.prog.modulePrefix+"/")
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
