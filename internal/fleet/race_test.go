package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRingChurnRace hammers lock-free Owner lookups while membership
// churns: the `make race-fleet` storm for the ring's RCU publish path.
func TestRingChurnRace(t *testing.T) {
	r, err := NewRing([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("client-%d-%d", g, i%512)
				owner, epoch := r.OwnerEpoch(key)
				if owner < 0 || epoch == 0 {
					t.Errorf("invalid lookup: owner=%d epoch=%d", owner, epoch)
					return
				}
			}
		}(g)
	}
	sets := [][]int{{0, 1}, {0, 1, 2, 3}, {1, 2, 3}, {0, 2}, {0, 1, 2, 3, 4, 5}}
	for i := 0; i < 400; i++ {
		if err := r.SetMembers(sets[i%len(sets)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := r.Epoch(); got != 401 {
		t.Fatalf("epoch = %d, want 401 after 400 SetMembers", got)
	}
}

// TestGossipChurnRace runs concurrent publishers, note-ers and mergers
// over one Exchanger: the `make race-fleet` gossip-merge churn storm.
// Each merging replica checks the watermark invariant under the race —
// no (replica, Seq) digest is ever applied twice.
func TestGossipChurnRace(t *testing.T) {
	const replicas = 4
	ex := NewExchanger()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Publishers: each replica drains its buffer into digests.
	for rep := 0; rep < replicas; rep++ {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			buf := NewBuffer(0)
			at := t0
			for seq := uint64(1); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < 8; i++ {
					// Paths are unique per (replica, seq, i) so a merger can
					// detect a double-applied digest exactly.
					buf.NoteLocality(i%2, fmt.Sprintf("/r%d/s%d/f%d.html", rep, seq, i))
					buf.NoteRank(fmt.Sprintf("/r%d/f%d.html", rep, i))
				}
				loc, ranks := buf.Drain()
				at = at.Add(time.Millisecond)
				ex.Publish(Digest{
					Replica: rep, Seq: seq,
					Locality: loc, LocalityAt: at,
					Ranks: ranks, RanksAt: at,
					Degraded: []bool{seq%3 == 0, false}, HealthAt: at,
				})
			}
		}(rep)
	}

	// Mergers: each replica merges everyone's digests and checks the
	// apply-once watermark.
	errs := make(chan error, replicas)
	for rep := 0; rep < replicas; rep++ {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			m := NewMerger(rep, Bounds{Locality: time.Hour, Ranks: time.Hour, Health: time.Hour})
			seen := make(map[string]bool)
			now := t0
			for {
				select {
				case <-stop:
					return
				default:
				}
				now = now.Add(time.Millisecond)
				m.Merge(now, ex.Digests(), Apply{
					// Apply callbacks run on the merging goroutine only, so
					// seen needs no lock; the unique per-(replica,seq) paths
					// make a double-applied digest visible here.
					Locality: func(d LocalityDelta) {
						key := fmt.Sprintf("%d|%s", d.Server, d.Path)
						if seen[key] {
							select {
							case errs <- fmt.Errorf("merger %d applied %s twice", rep, key):
							default:
							}
							return
						}
						seen[key] = true
					},
					Ranks:  func(string) {},
					Health: func(int, []bool, []bool) {},
				})
			}
		}(rep)
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
