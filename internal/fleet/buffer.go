package fleet

import "sync"

// Buffer accumulates one replica's outbound gossip deltas between
// digest publishes: the locality learnings and rank observations its
// own routing produced. The front-end notes into it on the serving
// path, the gossip loop drains it per tick, and both sides stay cheap —
// the mutex is a leaf (ranked in the prordlint lockorder hierarchy)
// held only for an append or a slice swap, never across a call.
//
// The buffer is bounded: past the cap, the oldest deltas drop first.
// Dropping is safe for both fields — locality is a hint and ranks are
// statistical — and the cap turns a stalled gossip loop into bounded
// memory instead of unbounded growth.
type Buffer struct {
	mu    sync.Mutex
	loc   []LocalityDelta
	ranks []string
	cap   int
}

// defaultBufferCap bounds each field's pending deltas per publish
// interval. At gossip's default 250ms tick this absorbs ~16k decisions
// per second per field before dropping.
const defaultBufferCap = 4096

// NewBuffer builds a buffer; cap <= 0 selects the default bound.
func NewBuffer(cap int) *Buffer {
	if cap <= 0 {
		cap = defaultBufferCap
	}
	return &Buffer{cap: cap}
}

// NoteLocality records one locality learning: this replica routed path
// to backend server.
func (b *Buffer) NoteLocality(server int, path string) {
	b.mu.Lock()
	if len(b.loc) >= b.cap {
		b.loc = b.loc[1:]
	}
	b.loc = append(b.loc, LocalityDelta{Server: server, Path: path})
	b.mu.Unlock()
}

// NoteRank records one served path for the peers' rank folds.
func (b *Buffer) NoteRank(path string) {
	b.mu.Lock()
	if len(b.ranks) >= b.cap {
		b.ranks = b.ranks[1:]
	}
	b.ranks = append(b.ranks, path)
	b.mu.Unlock()
}

// Drain takes and clears the pending deltas.
func (b *Buffer) Drain() (loc []LocalityDelta, ranks []string) {
	b.mu.Lock()
	loc, b.loc = b.loc, nil
	ranks, b.ranks = b.ranks, nil
	b.mu.Unlock()
	return loc, ranks
}

// Pending returns the buffered delta counts.
func (b *Buffer) Pending() (loc, ranks int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.loc), len(b.ranks)
}
