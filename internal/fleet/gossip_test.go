package fleet

import (
	"fmt"
	"testing"
	"time"
)

// t0 is the virtual origin every gossip test advances from; the package
// is clock-injected, so tests never read the wall clock.
var t0 = time.Time{}.Add(time.Hour)

func digestAt(replica int, seq uint64, at time.Time) Digest {
	return Digest{
		Replica:    replica,
		Seq:        seq,
		Locality:   []LocalityDelta{{Server: replica, Path: fmt.Sprintf("/p%d.html", seq)}},
		LocalityAt: at,
		Ranks:      []string{fmt.Sprintf("/p%d.html", seq)},
		RanksAt:    at,
		Degraded:   []bool{false, replica == 1},
		HealthAt:   at,
	}
}

func TestBoundsDefaults(t *testing.T) {
	b := Bounds{}.WithDefaults()
	if b.Locality != 5*time.Second || b.Ranks != 30*time.Second || b.Health != 2*time.Second {
		t.Fatalf("unexpected defaults: %+v", b)
	}
	keep := Bounds{Locality: time.Second, Ranks: time.Minute, Health: 100 * time.Millisecond}
	if got := keep.WithDefaults(); got != keep {
		t.Fatalf("explicit bounds changed by WithDefaults: %+v", got)
	}
}

func TestExchangerSupersedes(t *testing.T) {
	ex := NewExchanger()
	ex.Publish(digestAt(0, 1, t0))
	ex.Publish(digestAt(0, 3, t0))
	ex.Publish(digestAt(0, 2, t0)) // out of order: dropped
	ex.Publish(digestAt(2, 1, t0))
	ex.Publish(digestAt(1, 1, t0))
	ds := ex.Digests()
	if len(ds) != 3 {
		t.Fatalf("got %d digests, want 3", len(ds))
	}
	for i, want := range []int{0, 1, 2} {
		if ds[i].Replica != want {
			t.Fatalf("digest order %v not ascending by replica", ds)
		}
	}
	if ds[0].Seq != 3 {
		t.Fatalf("replica 0's digest Seq = %d, want the superseding 3", ds[0].Seq)
	}
}

func TestMergerWatermarkAndSelfSkip(t *testing.T) {
	m := NewMerger(0, Bounds{})
	var locs, ranks int
	ap := Apply{
		Locality: func(LocalityDelta) { locs++ },
		Ranks:    func(string) { ranks++ },
	}
	ds := []Digest{digestAt(0, 1, t0), digestAt(1, 1, t0)}
	st := m.Merge(t0, ds, ap)
	if st.Applied != 1 || st.Skipped != 1 {
		t.Fatalf("first merge: %+v, want 1 applied (peer) and 1 skipped (self)", st)
	}
	if locs != 1 || ranks != 1 {
		t.Fatalf("callbacks saw locs=%d ranks=%d, want 1/1", locs, ranks)
	}
	// Replaying the same digests must apply nothing: the watermark holds.
	st = m.Merge(t0, ds, ap)
	if st.Applied != 0 || st.Skipped != 2 || locs != 1 || ranks != 1 {
		t.Fatalf("replay merged again: %+v locs=%d ranks=%d", st, locs, ranks)
	}
	// A newer Seq from the peer applies once more.
	st = m.Merge(t0, []Digest{digestAt(1, 2, t0)}, ap)
	if st.Applied != 1 || locs != 2 {
		t.Fatalf("fresh Seq not applied: %+v locs=%d", st, locs)
	}
}

func TestMergerStalenessBounds(t *testing.T) {
	b := Bounds{Locality: time.Second, Ranks: 10 * time.Second, Health: 500 * time.Millisecond}
	m := NewMerger(0, b)
	var locs, ranks, healths int
	ap := Apply{
		Locality: func(LocalityDelta) { locs++ },
		Ranks:    func(string) { ranks++ },
		Health:   func(int, []bool, []bool) { healths++ },
	}
	// Published 2s ago: locality and health out of bounds, ranks in.
	st := m.Merge(t0.Add(2*time.Second), []Digest{digestAt(1, 1, t0)}, ap)
	if st.StaleFields != 2 {
		t.Fatalf("StaleFields = %d, want 2 (locality, health)", st.StaleFields)
	}
	if locs != 0 || healths != 0 || ranks != 1 {
		t.Fatalf("stale fields applied: locs=%d healths=%d ranks=%d", locs, healths, ranks)
	}
	stale := m.Staleness(t0.Add(3 * time.Second))
	if stale["ranks"] != 3*time.Second {
		t.Fatalf("ranks staleness = %v, want 3s", stale["ranks"])
	}
	if stale["locality"] != 0 || stale["health"] != 0 {
		t.Fatalf("never-applied fields should report zero staleness: %v", stale)
	}
}

// TestMergerDeterministicOrder pins the merge order — ascending replica
// id, publish order within a digest — that makes two replicas holding
// the same digest set converge to the same state.
func TestMergerDeterministicOrder(t *testing.T) {
	mergeOrder := func(ds []Digest) []string {
		m := NewMerger(9, Bounds{})
		var got []string
		m.Merge(t0, ds, Apply{Locality: func(d LocalityDelta) { got = append(got, d.Path) }})
		return got
	}
	a := Digest{Replica: 2, Seq: 1, LocalityAt: t0,
		Locality: []LocalityDelta{{0, "/c.html"}, {0, "/d.html"}}}
	b := Digest{Replica: 1, Seq: 1, LocalityAt: t0,
		Locality: []LocalityDelta{{0, "/a.html"}, {0, "/b.html"}}}
	// The Exchanger sorts ascending; feed Merge that order both times.
	ex := NewExchanger()
	ex.Publish(a)
	ex.Publish(b)
	first := mergeOrder(ex.Digests())
	ex2 := NewExchanger()
	ex2.Publish(b)
	ex2.Publish(a)
	second := mergeOrder(ex2.Digests())
	want := []string{"/a.html", "/b.html", "/c.html", "/d.html"}
	for i := range want {
		if first[i] != want[i] || second[i] != want[i] {
			t.Fatalf("merge order not deterministic: %v vs %v, want %v", first, second, want)
		}
	}
}

func TestBufferDrainAndCap(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.NoteLocality(i, fmt.Sprintf("/f%d", i))
		b.NoteRank(fmt.Sprintf("/f%d", i))
	}
	if nl, nr := b.Pending(); nl != 3 || nr != 3 {
		t.Fatalf("Pending = %d/%d, want cap 3/3", nl, nr)
	}
	loc, ranks := b.Drain()
	if len(loc) != 3 || loc[0].Path != "/f2" || loc[2].Path != "/f4" {
		t.Fatalf("drop-oldest violated: %v", loc)
	}
	if len(ranks) != 3 || ranks[0] != "/f2" {
		t.Fatalf("drop-oldest violated for ranks: %v", ranks)
	}
	if nl, nr := b.Pending(); nl != 0 || nr != 0 {
		t.Fatalf("buffer not empty after Drain: %d/%d", nl, nr)
	}
}
