// Package fleet turns one PRORD distributor into a fleet of them: N
// front-end replicas sharing one backend pool. It owns the two
// mechanisms the topology needs and nothing else — both transport-free
// and clock-injected, in the style of internal/dispatch:
//
//   - Ring: a consistent-hash ring over session keys that makes session
//     ownership explicit. Each session has exactly one owning replica;
//     a request landing elsewhere is forwarded one hop (the adapters'
//     job) or, after a membership change, re-bound. Reads are lock-free
//     (one atomic snapshot load, binary search); membership changes are
//     rare copy-update-publish writes, exactly like the dispatch core's
//     decision snapshots.
//
//   - Gossip: a digest-exchange layer (Digest, Exchanger, Merger,
//     Buffer) that reconciles the shared state a ring cannot partition —
//     optimistic locality learnings, replication-rank observations and
//     breaker/Degraded health verdicts — between replicas, with
//     per-field staleness bounds and a deterministic merge order.
//
// No method in this package reads the wall clock; callers pass now in
// (the clockflow analyzer enforces this, same as for the dispatch
// core), so the simulator can drive a fleet on virtual time.
package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// defaultVnodes is the virtual-node count per replica. 64 points per
// member keeps the ownership split within a few percent of even for
// small fleets while SetMembers stays cheap (it runs on membership
// changes, not requests).
const defaultVnodes = 64

// point is one virtual node on the ring.
type point struct {
	hash    uint32
	replica int
}

// ringSnapshot is one immutable published ring state. Owner loads it
// with a single atomic pointer read; SetMembers builds a fresh one and
// publishes it (RCU), so lookups never block on membership changes.
type ringSnapshot struct {
	// epoch counts publishes, starting at 1 for the ring New builds.
	epoch   uint64
	members []int
	// points is sorted by hash; ties broken by ascending replica id so
	// the ring is a pure function of the member set.
	points []point
	// single short-circuits the k=1 fleet: every key is owned by the
	// sole member, bit-identical to having no ring at all. -1 otherwise.
	single int
}

// Ring assigns every session key an owning replica by consistent
// hashing. Safe for concurrent use: Owner and Epoch are lock-free;
// SetMembers serializes writers under mu (ranked in the prordlint
// lockorder hierarchy) and publishes atomically.
type Ring struct {
	mu   sync.Mutex // serializes membership writers
	snap atomic.Pointer[ringSnapshot]
}

// NewRing builds a ring over the given replica ids (deduplicated,
// order-insensitive). At least one member is required.
func NewRing(members []int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one member")
	}
	r := &Ring{}
	r.snap.Store(buildRing(1, members))
	return r, nil
}

// SetMembers publishes a new member set and bumps the ring epoch.
// Lookups in flight keep the snapshot they loaded; sessions whose owner
// moved re-bind on their next touch (dispatch.Core.NoteFleetForward).
func (r *Ring) SetMembers(members []int) error {
	if len(members) == 0 {
		return fmt.Errorf("fleet: ring needs at least one member")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.snap.Load()
	r.snap.Store(buildRing(cur.epoch+1, members))
	return nil
}

// Owner returns the replica owning key. Lock-free.
func (r *Ring) Owner(key string) int {
	s := r.snap.Load()
	if s.single >= 0 {
		return s.single
	}
	h := hashKey(key)
	// First point clockwise from h; wrap to the first point.
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].hash >= h })
	if i == len(s.points) {
		i = 0
	}
	return s.points[i].replica
}

// OwnerEpoch returns the owner plus the epoch of the ring state that
// produced it, so callers can detect membership changes between two
// lookups. Lock-free.
func (r *Ring) OwnerEpoch(key string) (owner int, epoch uint64) {
	s := r.snap.Load()
	if s.single >= 0 {
		return s.single, s.epoch
	}
	h := hashKey(key)
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].hash >= h })
	if i == len(s.points) {
		i = 0
	}
	return s.points[i].replica, s.epoch
}

// Epoch returns the published ring state's epoch: 1 after NewRing, +1
// per SetMembers. Lock-free.
func (r *Ring) Epoch() uint64 { return r.snap.Load().epoch }

// Members returns the current member set, ascending. Lock-free; the
// slice is a copy.
func (r *Ring) Members() []int {
	s := r.snap.Load()
	out := make([]int, len(s.members))
	copy(out, s.members)
	return out
}

// Size returns the current member count. Lock-free.
func (r *Ring) Size() int { return len(r.snap.Load().members) }

// buildRing assembles an immutable snapshot for a member set.
func buildRing(epoch uint64, members []int) *ringSnapshot {
	uniq := make([]int, 0, len(members))
	seen := make(map[int]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Ints(uniq)
	s := &ringSnapshot{epoch: epoch, members: uniq, single: -1}
	if len(uniq) == 1 {
		s.single = uniq[0]
		return s
	}
	s.points = make([]point, 0, len(uniq)*defaultVnodes)
	for _, m := range uniq {
		for v := 0; v < defaultVnodes; v++ {
			s.points = append(s.points, point{hash: vnodeHash(m, v), replica: m})
		}
	}
	sort.Slice(s.points, func(i, j int) bool {
		if s.points[i].hash != s.points[j].hash {
			return s.points[i].hash < s.points[j].hash
		}
		return s.points[i].replica < s.points[j].replica
	})
	return s
}

// hashKey hashes a session key onto the ring. The FNV-1a loop is
// inlined for the same reason dispatch.shardOf inlines it: hash/fnv's
// hasher interface allocates, and Owner runs on every request when a
// fleet is configured. Same polynomial, same constants as fnv.New32a.
func hashKey(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// vnodeHash hashes one (replica, vnode) pair to a ring position, by
// feeding the FNV-1a stream the replica id and vnode index a byte at a
// time (little-endian, fixed width) so the layout is a pure function of
// the pair, not of any string formatting.
func vnodeHash(replica, vnode int) uint32 {
	h := uint32(2166136261)
	for _, v := range [2]uint32{uint32(replica), uint32(vnode)} {
		for b := 0; b < 4; b++ {
			h ^= (v >> (8 * b)) & 0xff
			h *= 16777619
		}
	}
	return h
}
