package fleet

import (
	"fmt"
	"testing"
)

func TestRingNeedsMembers(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Fatal("NewRing(nil) should fail")
	}
	r, err := NewRing([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetMembers(nil); err == nil {
		t.Fatal("SetMembers(nil) should fail")
	}
}

func TestRingSingleMember(t *testing.T) {
	r, err := NewRing([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := r.Owner(fmt.Sprintf("session-%d", i)); got != 3 {
			t.Fatalf("k=1 ring: Owner = %d, want 3", got)
		}
	}
	if e := r.Epoch(); e != 1 {
		t.Fatalf("Epoch = %d, want 1", e)
	}
	if s := r.Size(); s != 1 {
		t.Fatalf("Size = %d, want 1", s)
	}
}

func TestRingDeterministic(t *testing.T) {
	a, _ := NewRing([]int{0, 1, 2, 3})
	b, _ := NewRing([]int{3, 1, 0, 2, 2}) // order and dups must not matter
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("client-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings over the same member set disagree on %q: %d vs %d",
				key, a.Owner(key), b.Owner(key))
		}
	}
	m := b.Members()
	want := []int{0, 1, 2, 3}
	if len(m) != len(want) {
		t.Fatalf("Members = %v, want %v", m, want)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("Members = %v, want %v", m, want)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, _ := NewRing([]int{0, 1, 2, 3})
	counts := make(map[int]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("10.0.%d.%d:%d", i%256, i/256, 30000+i))]++
	}
	for rep, c := range counts {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("replica %d owns %.1f%% of keys; vnode spread too skewed (%v)",
				rep, 100*frac, counts)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d replicas own keys: %v", len(counts), counts)
	}
}

// TestRingMinimalDisruption checks the consistent-hashing property the
// handoff bound relies on: removing one member only moves the keys it
// owned; every other key keeps its owner.
func TestRingMinimalDisruption(t *testing.T) {
	before, _ := NewRing([]int{0, 1, 2, 3})
	after, _ := NewRing([]int{0, 1, 3})
	moved, kept := 0, 0
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("client-%d", i)
		was, is := before.Owner(key), after.Owner(key)
		if was == 2 {
			if is == 2 {
				t.Fatalf("key %q still owned by removed replica 2", key)
			}
			moved++
			continue
		}
		if was != is {
			t.Fatalf("key %q moved %d -> %d though its owner stayed in the ring", key, was, is)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split: moved=%d kept=%d", moved, kept)
	}
}

func TestRingEpochAdvances(t *testing.T) {
	r, _ := NewRing([]int{0, 1})
	if r.Epoch() != 1 {
		t.Fatalf("initial epoch = %d, want 1", r.Epoch())
	}
	if err := r.SetMembers([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 2 {
		t.Fatalf("epoch after SetMembers = %d, want 2", r.Epoch())
	}
	owner, epoch := r.OwnerEpoch("client-1")
	if epoch != 2 {
		t.Fatalf("OwnerEpoch epoch = %d, want 2", epoch)
	}
	if owner != r.Owner("client-1") {
		t.Fatalf("OwnerEpoch owner %d != Owner %d", owner, r.Owner("client-1"))
	}
}
