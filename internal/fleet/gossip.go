package fleet

import (
	"sort"
	"sync"
	"time"
)

// Field identifies one gossiped shared-state field. The three fields
// are exactly the state a session-ownership ring cannot partition:
// which backend holds which file (locality), which files are popular
// (replication ranks) and which backends are misbehaving (health
// verdicts).
type Field int

const (
	// FieldLocality carries optimistic locality learnings: replica R
	// routed path P to backend B, so B now holds P hot.
	FieldLocality Field = iota
	// FieldRanks carries served-path observations for the popularity
	// rank table's incremental folds.
	FieldRanks
	// FieldHealth carries per-backend breaker and Degraded verdicts.
	FieldHealth
	numFields
)

// String returns the field's lower-case name.
func (f Field) String() string {
	switch f {
	case FieldLocality:
		return "locality"
	case FieldRanks:
		return "ranks"
	case FieldHealth:
		return "health"
	}
	return "unknown"
}

// Bounds are the per-field staleness bounds: a peer's field older than
// its bound at merge time is ignored rather than applied. The bounds
// encode how wrong each field may safely be — locality is a routing
// hint (a miss costs one disk read), ranks converge slowly anyway, and
// health verdicts go stale dangerously fast (a recovered backend must
// not stay excluded on old gossip).
type Bounds struct {
	// Locality bounds locality-delta age. Default 5s.
	Locality time.Duration
	// Ranks bounds rank-observation age. Default 30s.
	Ranks time.Duration
	// Health bounds breaker/Degraded verdict age. Default 2s.
	Health time.Duration
}

// WithDefaults returns the bounds with zero fields defaulted.
func (b Bounds) WithDefaults() Bounds {
	if b.Locality <= 0 {
		b.Locality = 5 * time.Second
	}
	if b.Ranks <= 0 {
		b.Ranks = 30 * time.Second
	}
	if b.Health <= 0 {
		b.Health = 2 * time.Second
	}
	return b
}

// bound returns one field's staleness bound.
func (b Bounds) bound(f Field) time.Duration {
	switch f {
	case FieldLocality:
		return b.Locality
	case FieldRanks:
		return b.Ranks
	case FieldHealth:
		return b.Health
	}
	return 0
}

// LocalityDelta is one optimistic locality learning: the publishing
// replica routed Path to backend Server, so Server holds it hot.
type LocalityDelta struct {
	Server int
	Path   string
}

// Digest is one replica's published state snapshot: the deltas it
// accumulated since its previous publish plus its current health
// verdicts. Seq is the replica's publish counter; a receiver applies
// each Seq at most once (the Merger's watermark), so deltas never
// double-apply. A skipped Seq loses that publish's deltas — gossip is
// best-effort within the staleness bounds, and every field tolerates
// loss: locality is a hint, ranks are statistical, health is
// re-published whole on every digest.
type Digest struct {
	// Replica is the publishing replica's id.
	Replica int
	// Seq is the publisher's digest counter, strictly increasing.
	Seq uint64
	// Locality holds the optimistic locality deltas since the previous
	// publish, in routing order.
	Locality []LocalityDelta
	// LocalityAt stamps the Locality field's freshness.
	LocalityAt time.Time
	// Ranks holds the served paths observed since the previous publish.
	Ranks []string
	// RanksAt stamps the Ranks field's freshness.
	RanksAt time.Time
	// Degraded and BreakerOpen are the publisher's current per-backend
	// verdicts (full state, not deltas: verdicts flap, so the latest
	// publish always supersedes).
	Degraded    []bool
	BreakerOpen []bool
	// HealthAt stamps the health verdicts' freshness.
	HealthAt time.Time
}

// Exchanger is the in-process digest mesh: every replica publishes its
// latest digest and reads every other replica's. It stands in for a
// network gossip transport — the merge semantics (Merger) are
// transport-agnostic, so swapping this for UDP datagrams or an HTTP
// exchange endpoint later changes no reconciliation logic. The mutex
// is a leaf (ranked in the prordlint lockorder hierarchy): Publish and
// Digests copy in and out under it and never call anything.
type Exchanger struct {
	mu     sync.Mutex
	latest map[int]Digest
}

// NewExchanger builds an empty mesh.
func NewExchanger() *Exchanger {
	return &Exchanger{latest: make(map[int]Digest)}
}

// Publish stores a replica's newest digest, superseding its previous
// one. Digests arriving out of order (Seq lower than the stored one)
// are dropped.
func (e *Exchanger) Publish(d Digest) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, ok := e.latest[d.Replica]; ok && cur.Seq >= d.Seq {
		return
	}
	e.latest[d.Replica] = d
}

// Digests returns every replica's latest digest in ascending replica-id
// order — the deterministic merge order Merger relies on.
func (e *Exchanger) Digests() []Digest {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Digest, 0, len(e.latest))
	for _, d := range e.latest {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Replica < out[j].Replica })
	return out
}

// Apply receives the merged remote state. Merger invokes the callbacks
// with no fleet lock held, so they may take the dispatch core's leaf
// locks (NoteRemoteLocality, ObserveRank) without adding edges to the
// lock hierarchy.
type Apply struct {
	// Locality receives each fresh locality delta, in publish order
	// within a digest and ascending replica order across digests.
	Locality func(d LocalityDelta)
	// Ranks receives each fresh served-path observation, same order.
	Ranks func(path string)
	// Health receives one peer's current verdicts (slices are the
	// digest's own; treat as read-only).
	Health func(replica int, degraded, breakerOpen []bool)
}

// MergeStats summarizes one merge pass.
type MergeStats struct {
	// Applied counts digests with at least one field applied.
	Applied int
	// Skipped counts digests dropped by the Seq watermark (already
	// applied, or the merger's own replica).
	Skipped int
	// StaleFields counts fields dropped by their staleness bound.
	StaleFields int
	// Locality, Ranks count individual deltas applied.
	Locality, Ranks int
}

// Merger reconciles peers' digests into local state, exactly once per
// (replica, Seq) and only within the staleness bounds. Merge order is
// deterministic — ascending replica id — so two replicas holding the
// same digest set reach the same merged state. The mutex is a leaf
// guarding only the watermark and freshness tables; the Apply
// callbacks run outside it.
type Merger struct {
	self   int
	bounds Bounds

	mu     sync.Mutex
	seen   map[int]uint64               // replica -> last applied Seq
	lastAt map[int][numFields]time.Time // replica -> freshness per applied field
}

// NewMerger builds a merger for the replica with id self; digests
// published by self are skipped (local state is already current).
func NewMerger(self int, bounds Bounds) *Merger {
	return &Merger{
		self:   self,
		bounds: bounds.WithDefaults(),
		seen:   make(map[int]uint64),
		lastAt: make(map[int][numFields]time.Time),
	}
}

// Merge applies every fresh, in-bounds digest field through ap and
// advances the watermarks. Safe for concurrent use, though gossip loops
// conventionally call it from one goroutine per replica.
func (m *Merger) Merge(now time.Time, digests []Digest, ap Apply) MergeStats {
	var st MergeStats
	// Watermark pass under the leaf lock: pick the digests to apply and
	// advance seen/lastAt. The callbacks run after release so they may
	// take dispatch-core leaf locks freely.
	m.mu.Lock()
	fresh := make([]Digest, 0, len(digests))
	for _, d := range digests {
		if d.Replica == m.self || m.seen[d.Replica] >= d.Seq {
			st.Skipped++
			continue
		}
		m.seen[d.Replica] = d.Seq
		at := m.lastAt[d.Replica]
		keep := d
		if now.Sub(d.LocalityAt) > m.bounds.bound(FieldLocality) {
			keep.Locality = nil
			st.StaleFields++
		} else {
			at[FieldLocality] = d.LocalityAt
		}
		if now.Sub(d.RanksAt) > m.bounds.bound(FieldRanks) {
			keep.Ranks = nil
			st.StaleFields++
		} else {
			at[FieldRanks] = d.RanksAt
		}
		if now.Sub(d.HealthAt) > m.bounds.bound(FieldHealth) {
			keep.Degraded, keep.BreakerOpen = nil, nil
			st.StaleFields++
		} else {
			at[FieldHealth] = d.HealthAt
		}
		m.lastAt[d.Replica] = at
		fresh = append(fresh, keep)
	}
	m.mu.Unlock()

	for _, d := range fresh {
		applied := false
		if ap.Locality != nil {
			for _, dl := range d.Locality {
				ap.Locality(dl)
				st.Locality++
				applied = true
			}
		}
		if ap.Ranks != nil {
			for _, p := range d.Ranks {
				ap.Ranks(p)
				st.Ranks++
				applied = true
			}
		}
		if ap.Health != nil && (d.Degraded != nil || d.BreakerOpen != nil) {
			ap.Health(d.Replica, d.Degraded, d.BreakerOpen)
			applied = true
		}
		if applied {
			st.Applied++
		}
	}
	return st
}

// Staleness returns, per field, the age of the oldest applied peer
// state (zero with no peers applied yet) — the /_prord/cluster fleet
// block's per-field staleness figures.
func (m *Merger) Staleness(now time.Time) map[string]time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]time.Duration, int(numFields))
	for f := Field(0); f < numFields; f++ {
		var worst time.Duration
		for _, at := range m.lastAt {
			if at[f].IsZero() {
				continue
			}
			if age := now.Sub(at[f]); age > worst {
				worst = age
			}
		}
		out[f.String()] = worst
	}
	return out
}
