package trace

import (
	"math"
	"sort"
	"time"
)

// Analysis is a statistical characterization of a workload — the numbers
// a log-mining paper reports about its traces (request/file counts,
// popularity skew, session structure) and that our generators are
// calibrated against.
type Analysis struct {
	// Stats are the basic counts.
	Stats Stats
	// ZipfTheta is the fitted Zipf popularity exponent (log-log linear
	// regression of request count on rank). Real web traces run ~0.6-1.2.
	ZipfTheta float64
	// ZipfR2 is the regression fit quality in [0, 1].
	ZipfR2 float64
	// TopDecileShare is the fraction of requests going to the most
	// popular 10% of files.
	TopDecileShare float64
	// MeanPagesPerSession counts main pages (embedded objects excluded).
	MeanPagesPerSession float64
	// MaxSessionRequests is the largest session, in requests.
	MaxSessionRequests int
	// MeanSessionGap is the mean time between consecutive session starts.
	MeanSessionGap time.Duration
	// DynamicFrac is the fraction of requests for generated content.
	DynamicFrac float64
}

// Analyze computes the workload characterization of tr.
func Analyze(tr *Trace) *Analysis {
	a := &Analysis{Stats: tr.Stats()}
	if len(tr.Requests) == 0 {
		return a
	}

	// Popularity counts sorted descending.
	counts := make(map[string]int)
	var dynamic int
	for i := range tr.Requests {
		r := &tr.Requests[i]
		counts[r.Path]++
		if r.Dynamic || IsDynamicPath(r.Path) {
			dynamic++
		}
	}
	a.DynamicFrac = float64(dynamic) / float64(len(tr.Requests))

	sorted := make([]int, 0, len(counts))
	for _, c := range counts {
		sorted = append(sorted, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))

	// Top-decile share.
	decile := len(sorted) / 10
	if decile < 1 {
		decile = 1
	}
	var top, total int
	for i, c := range sorted {
		total += c
		if i < decile {
			top += c
		}
	}
	if total > 0 {
		a.TopDecileShare = float64(top) / float64(total)
	}

	// Zipf fit: least squares on (log rank, log count). Rank-1 ties and
	// the flat tail are both informative; use every point.
	if len(sorted) >= 3 {
		var sx, sy, sxx, sxy float64
		n := float64(len(sorted))
		for i, c := range sorted {
			x := math.Log(float64(i + 1))
			y := math.Log(float64(c))
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		denom := n*sxx - sx*sx
		if denom > 0 {
			slope := (n*sxy - sx*sy) / denom
			a.ZipfTheta = -slope
			// R^2.
			meanY := sy / n
			var ssTot, ssRes float64
			intercept := (sy - slope*sx) / n
			for i, c := range sorted {
				x := math.Log(float64(i + 1))
				y := math.Log(float64(c))
				fit := intercept + slope*x
				ssRes += (y - fit) * (y - fit)
				ssTot += (y - meanY) * (y - meanY)
			}
			if ssTot > 0 {
				a.ZipfR2 = 1 - ssRes/ssTot
			}
		}
	}

	// Session structure.
	sessions := tr.Sessions()
	var pages int
	var starts []time.Duration
	for _, idxs := range sessions {
		if len(idxs) > a.MaxSessionRequests {
			a.MaxSessionRequests = len(idxs)
		}
		starts = append(starts, tr.Requests[idxs[0]].Time)
		for _, i := range idxs {
			if !tr.Requests[i].Embedded {
				pages++
			}
		}
	}
	if len(sessions) > 0 {
		a.MeanPagesPerSession = float64(pages) / float64(len(sessions))
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	if len(starts) > 1 {
		a.MeanSessionGap = (starts[len(starts)-1] - starts[0]) / time.Duration(len(starts)-1)
	}
	return a
}
