// Package trace models web workloads for the PRORD cluster simulator: a
// request stream organized into persistent-connection sessions over a set
// of files, plus generators that synthesize traces statistically matched
// to the ones the paper evaluates on (Texas A&M CS department logs,
// WorldCup-98 logs and a fully synthetic trace) and converters to and from
// the Common Log Format.
package trace

import (
	"fmt"
	"sort"
	"time"
)

// Request is one HTTP request in a trace.
type Request struct {
	// Time is the request's arrival offset from the start of the trace.
	Time time.Duration
	// Session identifies the persistent HTTP/1.1 connection that carries
	// the request. Requests within a session are ordered by Time.
	Session int
	// Client is the client host name, stable across a client's sessions.
	Client string
	// Path is the requested URL path and identifies the file.
	Path string
	// Size is the response size in bytes.
	Size int64
	// Embedded reports whether this request fetches an object embedded in
	// a previously requested main page (image, applet, stylesheet...).
	Embedded bool
	// Parent is the path of the main page this object is embedded in.
	// Empty for main-page requests.
	Parent string
	// Group is the ground-truth user category of the session's user, or
	// -1 when unknown (e.g. traces loaded from real logs).
	Group int
	// Dynamic reports that the response is generated per request (CGI,
	// ...) and therefore uncacheable. The paper's §6 names dynamic
	// content as planned future work; the simulator supports it.
	Dynamic bool
}

// Trace is a complete workload: an ordered request stream plus the file
// population it references.
type Trace struct {
	Name     string
	Requests []Request
	Files    map[string]int64 // path -> size in bytes
}

// Stats summarizes a trace; it is what we calibrate generators against.
type Stats struct {
	Requests     int
	Files        int
	Sessions     int
	TotalBytes   int64
	MeanFileSize int64
	Duration     time.Duration
	EmbeddedFrac float64
}

// Stats computes summary statistics for t.
func (t *Trace) Stats() Stats {
	var s Stats
	s.Requests = len(t.Requests)
	s.Files = len(t.Files)
	sessions := make(map[int]struct{})
	var embedded int
	for i := range t.Requests {
		r := &t.Requests[i]
		sessions[r.Session] = struct{}{}
		s.TotalBytes += r.Size
		if r.Embedded {
			embedded++
		}
	}
	s.Sessions = len(sessions)
	if len(t.Requests) > 0 {
		s.Duration = t.Requests[len(t.Requests)-1].Time - t.Requests[0].Time
		s.EmbeddedFrac = float64(embedded) / float64(len(t.Requests))
	}
	var fileBytes int64
	for _, sz := range t.Files {
		fileBytes += sz
	}
	if len(t.Files) > 0 {
		s.MeanFileSize = fileBytes / int64(len(t.Files))
	}
	return s
}

// TotalFileBytes returns the summed size of all distinct files — the size
// of the whole web site's data set.
func (t *Trace) TotalFileBytes() int64 {
	var total int64
	for _, sz := range t.Files {
		total += sz
	}
	return total
}

// Split partitions the trace at the given fraction of requests into a
// training prefix (for offline log mining) and an evaluation suffix. The
// file table is shared. frac is clamped to [0, 1].
func (t *Trace) Split(frac float64) (train, eval *Trace) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	cut := int(frac * float64(len(t.Requests)))
	train = &Trace{Name: t.Name + "/train", Requests: t.Requests[:cut], Files: t.Files}
	eval = &Trace{Name: t.Name + "/eval", Requests: t.Requests[cut:], Files: t.Files}
	return train, eval
}

// SortByTime orders the requests by arrival time, keeping the relative
// order of simultaneous requests stable.
func (t *Trace) SortByTime() {
	sort.SliceStable(t.Requests, func(i, j int) bool {
		return t.Requests[i].Time < t.Requests[j].Time
	})
}

// Validate checks internal consistency: requests sorted by time, every
// request's path present in the file table with a matching size, and
// sessions non-negative.
func (t *Trace) Validate() error {
	var last time.Duration
	for i := range t.Requests {
		r := &t.Requests[i]
		if r.Time < last {
			return fmt.Errorf("trace %s: request %d out of order (%v < %v)", t.Name, i, r.Time, last)
		}
		last = r.Time
		sz, ok := t.Files[r.Path]
		if !ok {
			return fmt.Errorf("trace %s: request %d path %q not in file table", t.Name, i, r.Path)
		}
		if sz != r.Size {
			return fmt.Errorf("trace %s: request %d size %d != file table %d", t.Name, i, r.Size, sz)
		}
		if r.Session < 0 {
			return fmt.Errorf("trace %s: request %d negative session", t.Name, i)
		}
		if r.Embedded && r.Parent == "" {
			return fmt.Errorf("trace %s: request %d embedded without parent", t.Name, i)
		}
	}
	return nil
}

// Sessions groups request indices by session id, each slice ordered by
// arrival time.
func (t *Trace) Sessions() map[int][]int {
	m := make(map[int][]int)
	for i := range t.Requests {
		s := t.Requests[i].Session
		m[s] = append(m[s], i)
	}
	return m
}

// PopularityRanking returns the distinct paths ordered by descending
// request count (ties broken by path for determinism).
func (t *Trace) PopularityRanking() []string {
	counts := make(map[string]int)
	for i := range t.Requests {
		counts[t.Requests[i].Path]++
	}
	paths := make([]string, 0, len(counts))
	for p := range counts {
		paths = append(paths, p)
	}
	sort.Slice(paths, func(i, j int) bool {
		if counts[paths[i]] != counts[paths[j]] {
			return counts[paths[i]] > counts[paths[j]]
		}
		return paths[i] < paths[j]
	})
	return paths
}
