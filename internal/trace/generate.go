package trace

import (
	"fmt"
	"time"

	"prord/internal/randutil"
)

// TraceConfig controls synthetic trace generation over a Site.
type TraceConfig struct {
	// Requests is the approximate total number of requests to generate
	// (generation stops at the first session boundary past this count).
	Requests int
	// SessionRate is the mean number of new sessions (persistent
	// connections) arriving per second, Poisson distributed.
	SessionRate float64
	// MeanPagesPerSession is the mean session length in main pages
	// (geometric).
	MeanPagesPerSession float64
	// MeanThinkTime is the mean pause between a page (and its embedded
	// objects) completing and the next page request on the session.
	MeanThinkTime time.Duration
	// EmbeddedGap is the mean gap between consecutive embedded-object
	// requests issued by the browser after a main page. The paper notes
	// "the interval between request and following request is short".
	EmbeddedGap time.Duration
	// Determinism is the probability a session follows its group's
	// dominant link from the current page rather than picking uniformly
	// among all links; it controls how predictable navigation is.
	Determinism float64
	// Clients is the size of the client host population.
	Clients int
	// GroupWeights optionally biases how often each user group occurs; if
	// nil, groups are equally likely. Length must equal len(site.Groups).
	GroupWeights []float64
}

// DefaultTraceConfig returns a workable default matched to the paper's
// synthetic trace scale (30,000 requests).
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{
		Requests:            30000,
		SessionRate:         20,
		MeanPagesPerSession: 8,
		MeanThinkTime:       2 * time.Second,
		EmbeddedGap:         30 * time.Millisecond,
		Determinism:         0.65,
		Clients:             400,
	}
}

func (c TraceConfig) validate(site *Site) error {
	if c.Requests <= 0 {
		return fmt.Errorf("trace: TraceConfig.Requests must be positive, got %d", c.Requests)
	}
	if c.SessionRate <= 0 {
		return fmt.Errorf("trace: TraceConfig.SessionRate must be positive")
	}
	if c.MeanPagesPerSession < 1 {
		return fmt.Errorf("trace: TraceConfig.MeanPagesPerSession must be >= 1")
	}
	if c.Determinism < 0 || c.Determinism > 1 {
		return fmt.Errorf("trace: TraceConfig.Determinism must be in [0,1]")
	}
	if c.Clients <= 0 {
		return fmt.Errorf("trace: TraceConfig.Clients must be positive")
	}
	if c.GroupWeights != nil && len(c.GroupWeights) != len(site.Groups) {
		return fmt.Errorf("trace: GroupWeights length %d != groups %d", len(c.GroupWeights), len(site.Groups))
	}
	return nil
}

// Generate synthesizes a trace by simulating user sessions walking the
// site graph. Sessions arrive as a Poisson process; each session belongs
// to a user group, starts at one of the group's entry pages and performs a
// mostly-deterministic walk (per Determinism) over the hyperlink graph,
// requesting each page followed by its embedded objects.
func Generate(name string, site *Site, cfg TraceConfig, rng *randutil.Source) (*Trace, error) {
	if err := cfg.validate(site); err != nil {
		return nil, err
	}
	t := &Trace{Name: name, Files: site.FileTable()}

	// Entry pages per group: the first (most popular by construction)
	// pages of each group's section.
	entries := make([][]int, len(site.Groups))
	for i := range site.Pages {
		g := site.Pages[i].Group
		if len(entries[g]) < 3 {
			entries[g] = append(entries[g], i)
		}
	}

	weights := cfg.GroupWeights
	if weights == nil {
		weights = make([]float64, len(site.Groups))
		for i := range weights {
			weights[i] = 1
		}
	}

	var now time.Duration // session arrival clock
	session := 0
	for len(t.Requests) < cfg.Requests {
		now += time.Duration(rng.Exp(float64(time.Second) / cfg.SessionRate))
		g := rng.WeightedChoice(weights)
		client := fmt.Sprintf("c%d", rng.Intn(cfg.Clients))
		genSession(t, site, cfg, rng, session, client, g, entries[g], now)
		session++
	}
	t.SortByTime()
	return t, nil
}

// genSession appends the requests of one session starting at time start.
func genSession(t *Trace, site *Site, cfg TraceConfig, rng *randutil.Source,
	session int, client string, group int, entry []int, start time.Duration) {

	pages := 1
	for rng.Float64() < 1-1/cfg.MeanPagesPerSession {
		pages++
	}
	prev := -1
	cur := entry[rng.Intn(len(entry))]
	now := start
	for p := 0; p < pages; p++ {
		page := &site.Pages[cur]
		t.Requests = append(t.Requests, Request{
			Time: now, Session: session, Client: client,
			Path: page.Path, Size: page.Size, Group: group,
			Dynamic: page.Dynamic,
		})
		for _, o := range page.Embedded {
			now += time.Duration(rng.Exp(float64(cfg.EmbeddedGap)))
			t.Requests = append(t.Requests, Request{
				Time: now, Session: session, Client: client,
				Path: o.Path, Size: o.Size, Group: group,
				Embedded: true, Parent: page.Path,
			})
		}
		if len(page.Links) == 0 {
			break
		}
		// The dominant link depends on how the page was reached (Fig. 3's
		// premise: where a user goes from page D depends on whether they
		// came via A or via B); otherwise a uniform choice.
		next := cur
		if rng.Float64() < cfg.Determinism {
			next = page.Links[dominantLink(prev, cur, len(page.Links))]
		} else {
			next = page.Links[rng.Intn(len(page.Links))]
		}
		prev, cur = cur, next
		now += time.Duration(rng.Exp(float64(cfg.MeanThinkTime)))
	}
}

// dominantLink picks the deterministic preferred out-link for the
// (previous page, current page) pair.
func dominantLink(prev, cur, nLinks int) int {
	// A small integer hash; any fixed mixing works, it just has to
	// depend on both hops.
	h := uint64(prev+1)*0x9E3779B97F4A7C15 + uint64(cur+1)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	return int(h % uint64(nLinks))
}

// Preset identifies one of the workloads from the paper's evaluation.
type Preset int

const (
	// PresetCS mirrors the Texas A&M CS department trace: 27,000 requests
	// over 4,700 files averaging 12 KB.
	PresetCS Preset = iota
	// PresetWorldCup mirrors the Soccer World Cup 1998 trace: 897,498
	// requests over 3,809 files. Scale it down with the scale argument
	// for quick runs.
	PresetWorldCup
	// PresetSynthetic mirrors the paper's synthetic trace: 30,000
	// requests over 3,000 files averaging 10 KB.
	PresetSynthetic
)

// String returns the preset's display name used in tables.
func (p Preset) String() string {
	switch p {
	case PresetCS:
		return "CS-Trace"
	case PresetWorldCup:
		return "WorldCup98"
	case PresetSynthetic:
		return "Synthetic"
	default:
		return fmt.Sprintf("Preset(%d)", int(p))
	}
}

// PresetConfigs returns the site and trace configuration for a preset,
// scaled by scale (1.0 = the paper's published request count; smaller
// values shrink the request count proportionally while keeping the file
// population intact).
func PresetConfigs(p Preset, scale float64) (SiteConfig, TraceConfig, error) {
	if scale <= 0 {
		return SiteConfig{}, TraceConfig{}, fmt.Errorf("trace: scale must be positive, got %v", scale)
	}
	sc := DefaultSiteConfig()
	tc := DefaultTraceConfig()
	switch p {
	case PresetCS:
		// 4,700 files, ~4 objects/page -> ~940 pages; 27,000 requests,
		// mean file size 12 KB.
		sc.Pages = 940
		sc.Groups = 5 // students, prospective, faculty, staff, other
		sc.MeanEmbedded = 4
		sc.MeanPageKB = 14
		sc.MeanObjectKB = 10
		tc.Requests = int(27000 * scale)
		tc.SessionRate = 15
	case PresetWorldCup:
		// 3,809 files; flash-crowd traffic: few groups, shallow site,
		// very hot head. 897,498 requests at scale 1.
		sc.Pages = 950
		sc.Groups = 3
		sc.MeanEmbedded = 3
		sc.MeanPageKB = 8
		sc.MeanObjectKB = 6
		sc.PopTheta = 1.1
		tc.Requests = int(897498 * scale)
		tc.SessionRate = 120
		tc.MeanThinkTime = time.Second
		// Flash-crowd visits are short and concentrated: check the score
		// page, maybe one more, leave.
		tc.MeanPagesPerSession = 4
		tc.Determinism = 0.75
	case PresetSynthetic:
		// 3,000 files, 30,000 requests, 10 KB mean.
		sc.Pages = 600
		sc.Groups = 4
		sc.MeanEmbedded = 4
		sc.MeanPageKB = 12
		sc.MeanObjectKB = 9
		tc.Requests = int(30000 * scale)
		tc.SessionRate = 25
	default:
		return SiteConfig{}, TraceConfig{}, fmt.Errorf("trace: unknown preset %d", int(p))
	}
	if tc.Requests < 100 {
		tc.Requests = 100
	}
	return sc, tc, nil
}

// GeneratePreset builds the site and trace for one of the paper's
// workloads at the given scale, from a single seed.
func GeneratePreset(p Preset, scale float64, seed int64) (*Site, *Trace, error) {
	sc, tc, err := PresetConfigs(p, scale)
	if err != nil {
		return nil, nil, err
	}
	rng := randutil.New(seed)
	site, err := GenerateSite(sc, rng)
	if err != nil {
		return nil, nil, err
	}
	tr, err := Generate(p.String(), site, tc, rng)
	if err != nil {
		return nil, nil, err
	}
	return site, tr, nil
}
