package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"prord/internal/clf"
)

func TestCLFRoundTrip(t *testing.T) {
	_, tr := smallTrace(t, 21)
	var buf bytes.Buffer
	if err := WriteCLF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCLF("back", &buf, DefaultSessionizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(tr.Requests) {
		t.Fatalf("round trip: %d requests, want %d", len(back.Requests), len(tr.Requests))
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	// Request paths and order should survive.
	for i := range tr.Requests {
		if back.Requests[i].Path != tr.Requests[i].Path {
			t.Fatalf("request %d path %q != %q", i, back.Requests[i].Path, tr.Requests[i].Path)
		}
	}
	// Every requested file must be in the imported table with its true
	// size (unrequested files are legitimately absent).
	for i := range tr.Requests {
		r := &tr.Requests[i]
		if got, ok := back.Files[r.Path]; !ok || got != r.Size {
			t.Fatalf("file %s: imported size %d (present=%v), want %d", r.Path, got, ok, r.Size)
		}
	}
}

func TestIsEmbeddedPath(t *testing.T) {
	if !IsEmbeddedPath("/a/b/x.GIF") || !IsEmbeddedPath("/s.css") {
		t.Fatal("extension detection should be case-insensitive and cover css")
	}
	if IsEmbeddedPath("/index.html") || IsEmbeddedPath("/noext") {
		t.Fatal("pages must not be classified as embedded")
	}
}

func TestFromCLFSessionTimeout(t *testing.T) {
	base := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	mk := func(host, path string, at time.Duration, size int64) clf.Entry {
		return clf.Entry{Host: host, Time: base.Add(at), Method: "GET",
			Path: path, Proto: "HTTP/1.1", Status: 200, Bytes: size}
	}
	entries := []clf.Entry{
		mk("h1", "/a.html", 0, 100),
		mk("h1", "/b.html", time.Minute, 100),
		mk("h1", "/c.html", 2*time.Hour, 100), // beyond timeout: new session
		mk("h2", "/a.html", time.Second, 100),
	}
	tr := FromCLF("t", entries, SessionizeOptions{Timeout: 30 * time.Minute, EmbedWindow: 10 * time.Second})
	sess := tr.Sessions()
	if len(sess) != 3 {
		t.Fatalf("sessions = %d, want 3 (h1 split by timeout + h2)", len(sess))
	}
}

func TestFromCLFEmbeddedAttribution(t *testing.T) {
	base := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	entries := []clf.Entry{
		{Host: "h", Time: base, Method: "GET", Path: "/page.html", Proto: "HTTP/1.1", Status: 200, Bytes: 500},
		{Host: "h", Time: base.Add(time.Second), Method: "GET", Path: "/img.gif", Proto: "HTTP/1.1", Status: 200, Bytes: 50},
		{Host: "h", Time: base.Add(time.Minute), Method: "GET", Path: "/late.gif", Proto: "HTTP/1.1", Status: 200, Bytes: 50},
	}
	tr := FromCLF("t", entries, DefaultSessionizeOptions())
	if !tr.Requests[1].Embedded || tr.Requests[1].Parent != "/page.html" {
		t.Fatalf("img.gif should attach to /page.html: %+v", tr.Requests[1])
	}
	if tr.Requests[2].Embedded {
		t.Fatalf("late.gif outside window should not be embedded: %+v", tr.Requests[2])
	}
}

func TestFromCLFFiltersErrorsAndNonGET(t *testing.T) {
	base := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	entries := []clf.Entry{
		{Host: "h", Time: base, Method: "GET", Path: "/ok.html", Proto: "HTTP/1.1", Status: 200, Bytes: 10},
		{Host: "h", Time: base, Method: "POST", Path: "/form", Proto: "HTTP/1.1", Status: 200, Bytes: 10},
		{Host: "h", Time: base, Method: "GET", Path: "/missing", Proto: "HTTP/1.1", Status: 404, Bytes: 10},
	}
	tr := FromCLF("t", entries, DefaultSessionizeOptions())
	if len(tr.Requests) != 1 || tr.Requests[0].Path != "/ok.html" {
		t.Fatalf("only the 200 GET should survive, got %+v", tr.Requests)
	}
}

func TestFromCLFEmpty(t *testing.T) {
	tr := FromCLF("t", nil, SessionizeOptions{})
	if len(tr.Requests) != 0 || len(tr.Files) != 0 {
		t.Fatal("empty input should yield empty trace")
	}
}

func TestFromCLFGroupUnknown(t *testing.T) {
	base := time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)
	entries := []clf.Entry{
		{Host: "h", Time: base, Method: "GET", Path: "/x.html", Proto: "HTTP/1.1", Status: 200, Bytes: 10},
	}
	tr := FromCLF("t", entries, DefaultSessionizeOptions())
	if tr.Requests[0].Group != -1 {
		t.Fatalf("imported trace group = %d, want -1", tr.Requests[0].Group)
	}
}

func TestWriteCLFFormat(t *testing.T) {
	_, tr := smallTrace(t, 23)
	var buf bytes.Buffer
	if err := WriteCLF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(tr.Requests) {
		t.Fatalf("CLF lines = %d, want %d", len(lines), len(tr.Requests))
	}
	if _, err := clf.Parse(lines[0]); err != nil {
		t.Fatalf("first exported line unparseable: %v", err)
	}
}

func TestReadCLFSkipped(t *testing.T) {
	_, tr := smallTrace(t, 23)
	var buf bytes.Buffer
	if err := WriteCLF(&buf, tr); err != nil {
		t.Fatal(err)
	}
	// Interleave garbage the parser must drop without failing the stream.
	dirty := "not a log line\n" + buf.String() + "also : not [parseable\n"
	back, skipped, err := ReadCLFSkipped("dirty", strings.NewReader(dirty), DefaultSessionizeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	if len(back.Requests) != len(tr.Requests) {
		t.Errorf("parsed %d requests, want %d", len(back.Requests), len(tr.Requests))
	}
	// Clean stream: zero skipped, and ReadCLF agrees with ReadCLFSkipped.
	_, skipped, err = ReadCLFSkipped("clean", bytes.NewReader(buf.Bytes()), DefaultSessionizeOptions())
	if err != nil || skipped != 0 {
		t.Errorf("clean stream: skipped = %d, err = %v; want 0, nil", skipped, err)
	}
}
