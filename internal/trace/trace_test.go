package trace

import (
	"testing"
	"time"

	"prord/internal/randutil"
)

func smallSite(t *testing.T, seed int64) *Site {
	t.Helper()
	cfg := DefaultSiteConfig()
	cfg.Pages = 100
	cfg.Groups = 4
	site, err := GenerateSite(cfg, randutil.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func smallTrace(t *testing.T, seed int64) (*Site, *Trace) {
	t.Helper()
	site := smallSite(t, seed)
	cfg := DefaultTraceConfig()
	cfg.Requests = 2000
	tr, err := Generate("test", site, cfg, randutil.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return site, tr
}

func TestGenerateSiteShape(t *testing.T) {
	site := smallSite(t, 1)
	if len(site.Pages) != 100 {
		t.Fatalf("pages = %d, want 100", len(site.Pages))
	}
	if len(site.Groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(site.Groups))
	}
	for i := range site.Pages {
		p := &site.Pages[i]
		if p.Size <= 0 {
			t.Fatalf("page %d non-positive size", i)
		}
		if p.Group < 0 || p.Group >= 4 {
			t.Fatalf("page %d group %d out of range", i, p.Group)
		}
		for _, l := range p.Links {
			if l < 0 || l >= len(site.Pages) || l == i {
				t.Fatalf("page %d has invalid link %d", i, l)
			}
		}
		for _, o := range p.Embedded {
			if o.Size <= 0 {
				t.Fatalf("page %d object %s non-positive size", i, o.Path)
			}
		}
	}
}

func TestGenerateSiteDeterministic(t *testing.T) {
	a := smallSite(t, 42)
	b := smallSite(t, 42)
	if a.NumFiles() != b.NumFiles() || a.TotalBytes() != b.TotalBytes() {
		t.Fatal("same seed should produce identical sites")
	}
	for i := range a.Pages {
		if a.Pages[i].Path != b.Pages[i].Path || a.Pages[i].Size != b.Pages[i].Size {
			t.Fatalf("page %d differs between same-seed sites", i)
		}
	}
}

func TestGenerateSiteValidation(t *testing.T) {
	bad := []SiteConfig{
		{},
		{Pages: 10, Groups: 0, LinksPerPage: 2, MeanPageKB: 1, MeanObjectKB: 1},
		{Pages: 10, Groups: 20, LinksPerPage: 2, MeanPageKB: 1, MeanObjectKB: 1},
		{Pages: 10, Groups: 2, LinksPerPage: 0, MeanPageKB: 1, MeanObjectKB: 1},
		{Pages: 10, Groups: 2, LinksPerPage: 2, MeanPageKB: 0, MeanObjectKB: 1},
	}
	for i, cfg := range bad {
		if _, err := GenerateSite(cfg, randutil.New(1)); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestGenerateTraceValid(t *testing.T) {
	_, tr := smallTrace(t, 7)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) < 2000 {
		t.Fatalf("requests = %d, want >= 2000", len(tr.Requests))
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	_, a := smallTrace(t, 7)
	_, b := smallTrace(t, 7)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("same-seed traces differ in length")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs between same-seed traces", i)
		}
	}
}

func TestEmbeddedRequestsFollowParent(t *testing.T) {
	_, tr := smallTrace(t, 3)
	lastPage := make(map[int]string)
	for i := range tr.Requests {
		r := &tr.Requests[i]
		if r.Embedded {
			if r.Parent != lastPage[r.Session] {
				t.Fatalf("request %d embedded parent %q but session last page %q",
					i, r.Parent, lastPage[r.Session])
			}
		} else {
			lastPage[r.Session] = r.Path
		}
	}
}

func TestSessionsAreConsistent(t *testing.T) {
	_, tr := smallTrace(t, 3)
	client := make(map[int]string)
	group := make(map[int]int)
	for i := range tr.Requests {
		r := &tr.Requests[i]
		if c, ok := client[r.Session]; ok && c != r.Client {
			t.Fatalf("session %d has two clients", r.Session)
		}
		if g, ok := group[r.Session]; ok && g != r.Group {
			t.Fatalf("session %d has two groups", r.Session)
		}
		client[r.Session] = r.Client
		group[r.Session] = r.Group
	}
	sess := tr.Sessions()
	if len(sess) != len(client) {
		t.Fatalf("Sessions() found %d sessions, want %d", len(sess), len(client))
	}
	for id, idxs := range sess {
		for j := 1; j < len(idxs); j++ {
			if tr.Requests[idxs[j-1]].Time > tr.Requests[idxs[j]].Time {
				t.Fatalf("session %d indices out of time order", id)
			}
		}
	}
}

func TestPopularityIsSkewed(t *testing.T) {
	_, tr := smallTrace(t, 5)
	ranking := tr.PopularityRanking()
	counts := make(map[string]int)
	for i := range tr.Requests {
		counts[tr.Requests[i].Path]++
	}
	if len(ranking) < 10 {
		t.Fatalf("too few distinct paths: %d", len(ranking))
	}
	top := counts[ranking[0]]
	median := counts[ranking[len(ranking)/2]]
	if top < 4*median {
		t.Fatalf("popularity not skewed: top=%d median=%d", top, median)
	}
	for i := 1; i < len(ranking); i++ {
		if counts[ranking[i-1]] < counts[ranking[i]] {
			t.Fatal("ranking not sorted by descending count")
		}
	}
}

func TestSplit(t *testing.T) {
	_, tr := smallTrace(t, 9)
	train, eval := tr.Split(0.3)
	if len(train.Requests)+len(eval.Requests) != len(tr.Requests) {
		t.Fatal("split loses requests")
	}
	want := int(0.3 * float64(len(tr.Requests)))
	if len(train.Requests) != want {
		t.Fatalf("train size = %d, want %d", len(train.Requests), want)
	}
	// Clamping.
	tr0, _ := tr.Split(-1)
	if len(tr0.Requests) != 0 {
		t.Fatal("Split(-1) should clamp to empty train")
	}
	_, ev1 := tr.Split(2)
	if len(ev1.Requests) != 0 {
		t.Fatal("Split(2) should clamp to empty eval")
	}
}

func TestStats(t *testing.T) {
	_, tr := smallTrace(t, 11)
	s := tr.Stats()
	if s.Requests != len(tr.Requests) {
		t.Fatal("Stats.Requests mismatch")
	}
	if s.Files != len(tr.Files) {
		t.Fatal("Stats.Files mismatch")
	}
	if s.Sessions <= 0 || s.MeanFileSize <= 0 || s.Duration <= 0 {
		t.Fatalf("degenerate stats: %+v", s)
	}
	if s.EmbeddedFrac <= 0.3 || s.EmbeddedFrac >= 0.95 {
		t.Fatalf("embedded fraction %v outside plausible band", s.EmbeddedFrac)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	_, tr := smallTrace(t, 13)
	// Out of order.
	bad := &Trace{Name: "x", Files: tr.Files, Requests: append([]Request(nil), tr.Requests...)}
	bad.Requests[0].Time = bad.Requests[len(bad.Requests)-1].Time + time.Hour
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate should reject out-of-order requests")
	}
	// Unknown file.
	bad2 := &Trace{Name: "x", Files: tr.Files, Requests: []Request{{Path: "/nope", Size: 1}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("Validate should reject unknown path")
	}
	// Size mismatch.
	bad3 := &Trace{Name: "x", Files: tr.Files,
		Requests: []Request{{Path: tr.Requests[0].Path, Size: tr.Requests[0].Size + 1}}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("Validate should reject size mismatch")
	}
	// Embedded without parent.
	bad4 := &Trace{Name: "x", Files: tr.Files,
		Requests: []Request{{Path: tr.Requests[0].Path, Size: tr.Requests[0].Size, Embedded: true}}}
	if err := bad4.Validate(); err == nil {
		t.Fatal("Validate should reject embedded request without parent")
	}
}

func TestPresetStatsMatchPaper(t *testing.T) {
	cases := []struct {
		preset    Preset
		scale     float64
		wantFiles int   // paper's file count
		fileTol   int   // tolerance
		wantReqs  int   // paper's request count (scaled)
		meanLowKB int64 // acceptable mean file size band
		meanHiKB  int64
	}{
		{PresetCS, 0.2, 4700, 1200, 5400, 5, 25},
		{PresetWorldCup, 0.01, 3809, 1100, 8974, 3, 20},
		{PresetSynthetic, 0.2, 3000, 900, 6000, 4, 22},
	}
	for _, c := range cases {
		_, tr, err := GeneratePreset(c.preset, c.scale, 1234)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", c.preset, err)
		}
		s := tr.Stats()
		if s.Files < c.wantFiles-c.fileTol || s.Files > c.wantFiles+c.fileTol {
			t.Errorf("%v: files = %d, want %d±%d", c.preset, s.Files, c.wantFiles, c.fileTol)
		}
		if s.Requests < c.wantReqs {
			t.Errorf("%v: requests = %d, want >= %d", c.preset, s.Requests, c.wantReqs)
		}
		meanKB := s.MeanFileSize / 1024
		if meanKB < c.meanLowKB || meanKB > c.meanHiKB {
			t.Errorf("%v: mean file size %d KB outside [%d, %d]", c.preset, meanKB, c.meanLowKB, c.meanHiKB)
		}
	}
}

func TestPresetErrors(t *testing.T) {
	if _, _, err := GeneratePreset(Preset(99), 1, 1); err == nil {
		t.Fatal("unknown preset should error")
	}
	if _, _, err := GeneratePreset(PresetCS, 0, 1); err == nil {
		t.Fatal("zero scale should error")
	}
}

func TestBundlesGroundTruth(t *testing.T) {
	site := smallSite(t, 17)
	b := site.Bundles()
	if len(b) != len(site.Pages) {
		t.Fatalf("bundles = %d, want %d", len(b), len(site.Pages))
	}
	for i := range site.Pages {
		p := &site.Pages[i]
		if len(b[p.Path]) != len(p.Embedded) {
			t.Fatalf("bundle size mismatch for %s", p.Path)
		}
	}
}

func TestTotalFileBytes(t *testing.T) {
	site, tr := smallTrace(t, 19)
	if tr.TotalFileBytes() != site.TotalBytes() {
		t.Fatalf("TotalFileBytes %d != site TotalBytes %d", tr.TotalFileBytes(), site.TotalBytes())
	}
}
