package trace

import (
	"testing"
	"time"
)

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(&Trace{Files: map[string]int64{}})
	if a.Stats.Requests != 0 || a.ZipfTheta != 0 {
		t.Fatalf("empty analysis should be zeroed: %+v", a)
	}
}

func TestAnalyzeSyntheticWorkload(t *testing.T) {
	_, tr, err := GeneratePreset(PresetSynthetic, 0.3, 33)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(tr)
	if a.Stats.Requests != len(tr.Requests) {
		t.Fatal("stats mismatch")
	}
	// The generator is Zipf-flavored: the fit should land in the broad
	// web-trace band with a decent fit quality.
	if a.ZipfTheta < 0.3 || a.ZipfTheta > 2.0 {
		t.Fatalf("ZipfTheta = %v outside the plausible band", a.ZipfTheta)
	}
	if a.ZipfR2 < 0.5 {
		t.Fatalf("ZipfR2 = %v, popularity should be roughly power-law", a.ZipfR2)
	}
	// Heavy-headed: the top decile carries a majority of traffic.
	if a.TopDecileShare < 0.4 {
		t.Fatalf("TopDecileShare = %v, want a hot head", a.TopDecileShare)
	}
	if a.MeanPagesPerSession < 2 {
		t.Fatalf("MeanPagesPerSession = %v too low", a.MeanPagesPerSession)
	}
	if a.MaxSessionRequests <= 0 || a.MeanSessionGap <= 0 {
		t.Fatalf("session structure degenerate: %+v", a)
	}
	if a.DynamicFrac != 0 {
		t.Fatalf("static preset should have no dynamic traffic: %v", a.DynamicFrac)
	}
}

func TestAnalyzeFlashCrowdIsMoreSkewed(t *testing.T) {
	_, wc, err := GeneratePreset(PresetWorldCup, 0.01, 33)
	if err != nil {
		t.Fatal(err)
	}
	_, cs, err := GeneratePreset(PresetCS, 0.3, 33)
	if err != nil {
		t.Fatal(err)
	}
	aw, ac := Analyze(wc), Analyze(cs)
	if aw.TopDecileShare <= ac.TopDecileShare {
		t.Fatalf("WorldCup head share %v should exceed CS %v",
			aw.TopDecileShare, ac.TopDecileShare)
	}
}

func TestAnalyzeDynamicFraction(t *testing.T) {
	tr := &Trace{
		Files: map[string]int64{"/a.html": 10, "/b.cgi": 10},
		Requests: []Request{
			{Path: "/a.html", Size: 10},
			{Path: "/b.cgi", Size: 10, Dynamic: true},
			{Path: "/b.cgi", Size: 10, Dynamic: true},
			{Path: "/a.html", Size: 10},
		},
	}
	a := Analyze(tr)
	if a.DynamicFrac != 0.5 {
		t.Fatalf("DynamicFrac = %v, want 0.5", a.DynamicFrac)
	}
}

func TestAnalyzeUniformTraceHasLowTheta(t *testing.T) {
	// Perfectly uniform popularity: theta near 0.
	tr := &Trace{Files: map[string]int64{}}
	for f := 0; f < 50; f++ {
		path := "/f" + string(rune('a'+f%26)) + string(rune('a'+f/26))
		tr.Files[path] = 100
		for k := 0; k < 4; k++ {
			tr.Requests = append(tr.Requests, Request{
				Time: time.Duration(f*4+k) * time.Second,
				Path: path, Size: 100, Session: f,
			})
		}
	}
	a := Analyze(tr)
	if a.ZipfTheta > 0.1 {
		t.Fatalf("uniform trace theta = %v, want ~0", a.ZipfTheta)
	}
}
