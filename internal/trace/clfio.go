package trace

import (
	"io"
	"path"
	"sort"
	"strings"
	"time"

	"prord/internal/clf"
)

// clfEpoch anchors trace offsets to wall-clock timestamps when exporting.
var clfEpoch = time.Date(2006, 7, 1, 0, 0, 0, 0, time.UTC)

// WriteCLF exports t as a Common Log Format stream.
func WriteCLF(w io.Writer, t *Trace) error {
	cw := clf.NewWriter(w)
	for i := range t.Requests {
		r := &t.Requests[i]
		e := clf.Entry{
			Host:   r.Client,
			Time:   clfEpoch.Add(r.Time),
			Method: "GET",
			Path:   r.Path,
			Proto:  "HTTP/1.1",
			Status: 200,
			Bytes:  r.Size,
		}
		if err := cw.Write(e); err != nil {
			return err
		}
	}
	return cw.Flush()
}

// embeddedExtensions lists object suffixes treated as embedded content
// when sessionizing real logs where the site structure is unknown.
var embeddedExtensions = map[string]bool{
	".gif": true, ".jpg": true, ".jpeg": true, ".png": true, ".ico": true,
	".css": true, ".js": true, ".class": true, ".swf": true, ".bmp": true,
	".mp3": true, ".wav": true, ".avi": true, ".mpg": true,
}

// IsEmbeddedPath reports whether p looks like an embedded object rather
// than a main page, judged by its file extension.
func IsEmbeddedPath(p string) bool {
	return embeddedExtensions[strings.ToLower(path.Ext(p))]
}

// dynamicExtensions lists suffixes treated as generated-per-request
// content when the ground-truth Dynamic flag is unavailable.
var dynamicExtensions = map[string]bool{
	".cgi": true, ".php": true, ".asp": true, ".jsp": true, ".pl": true,
}

// IsDynamicPath reports whether p looks like dynamically generated
// (uncacheable) content, judged by its extension.
func IsDynamicPath(p string) bool {
	return dynamicExtensions[strings.ToLower(path.Ext(p))]
}

// SessionizeOptions controls CLF import.
type SessionizeOptions struct {
	// Timeout ends a client's session after this much idle time; a new
	// request then opens a new session (new persistent connection).
	Timeout time.Duration
	// EmbedWindow attributes an embedded-looking request to the client's
	// most recent main page if it arrives within this window.
	EmbedWindow time.Duration
}

// DefaultSessionizeOptions mirrors common web-usage-mining practice
// (30-minute session timeout) with a short embedded-object window.
func DefaultSessionizeOptions() SessionizeOptions {
	return SessionizeOptions{Timeout: 30 * time.Minute, EmbedWindow: 10 * time.Second}
}

// FromCLF builds a trace from parsed log entries: it sessionizes per
// client host with the given idle timeout, classifies embedded objects by
// extension and recency, sizes the file table from the largest observed
// response per path, and rebases times to a zero origin.
func FromCLF(name string, entries []clf.Entry, opt SessionizeOptions) *Trace {
	if opt.Timeout <= 0 {
		opt.Timeout = DefaultSessionizeOptions().Timeout
	}
	if opt.EmbedWindow <= 0 {
		opt.EmbedWindow = DefaultSessionizeOptions().EmbedWindow
	}
	sorted := make([]clf.Entry, len(entries))
	copy(sorted, entries)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })

	t := &Trace{Name: name, Files: make(map[string]int64)}
	if len(sorted) == 0 {
		return t
	}
	origin := sorted[0].Time

	type clientState struct {
		session  int
		lastSeen time.Time
		lastPage string
		pageSeen time.Time
	}
	clients := make(map[string]*clientState)
	nextSession := 0

	for _, e := range sorted {
		if e.Method != "GET" || e.Status >= 400 {
			continue
		}
		size := e.Bytes
		if size < 0 {
			size = 0
		}
		cs, ok := clients[e.Host]
		if !ok || e.Time.Sub(cs.lastSeen) > opt.Timeout {
			cs = &clientState{session: nextSession}
			nextSession++
			clients[e.Host] = cs
		}
		cs.lastSeen = e.Time

		r := Request{
			Time:    e.Time.Sub(origin),
			Session: cs.session,
			Client:  e.Host,
			Path:    e.Path,
			Size:    size,
			Group:   -1,
			Dynamic: IsDynamicPath(e.Path),
		}
		if IsEmbeddedPath(e.Path) && cs.lastPage != "" &&
			e.Time.Sub(cs.pageSeen) <= opt.EmbedWindow {
			r.Embedded = true
			r.Parent = cs.lastPage
		} else if !IsEmbeddedPath(e.Path) {
			cs.lastPage = e.Path
			cs.pageSeen = e.Time
		}
		if size > t.Files[e.Path] {
			t.Files[e.Path] = size
		}
		t.Requests = append(t.Requests, r)
	}
	// The file table records the max response size per path; requests must
	// agree with the table for Validate, so rewrite sizes.
	for i := range t.Requests {
		t.Requests[i].Size = t.Files[t.Requests[i].Path]
	}
	return t
}

// ReadCLF reads a whole CLF stream and sessionizes it into a trace.
func ReadCLF(name string, r io.Reader, opt SessionizeOptions) (*Trace, error) {
	t, _, err := ReadCLFSkipped(name, r, opt)
	return t, err
}

// ReadCLFSkipped is ReadCLF plus the parser's malformed-line count: the
// reader drops lines it cannot parse rather than failing the stream, and
// callers validating log quality need to know how many it dropped.
func ReadCLFSkipped(name string, r io.Reader, opt SessionizeOptions) (*Trace, int, error) {
	cr := clf.NewReader(r)
	entries, err := cr.ReadAll()
	if err != nil {
		return nil, cr.Skipped(), err
	}
	return FromCLF(name, entries, opt), cr.Skipped(), nil
}
