package trace

import (
	"fmt"

	"prord/internal/randutil"
)

// Object is an embedded object (image, applet, stylesheet, ...) belonging
// to a main page. The page and its objects form a "bundle" in the paper's
// terminology (§3.2).
type Object struct {
	Path string
	Size int64
}

// Page is one HTML page of a modeled web site.
type Page struct {
	Path     string
	Size     int64
	Group    int      // primary user group this page belongs to
	Links    []int    // indices of pages reachable from this page
	Embedded []Object // objects the page embeds
	// Dynamic marks a generated page (CGI): its response is uncacheable
	// and costs server CPU per request.
	Dynamic bool
}

// Site is a generated web site: pages organized into user-group sections
// with a hyperlink graph, used as ground truth by the trace generator.
// Real sites decompose the same way ("a university website will cater to
// current students, prospective students, faculty..." — §3.1).
type Site struct {
	Pages  []Page
	Groups []string // group names; Page.Group indexes this
}

// SiteConfig controls synthetic site generation.
type SiteConfig struct {
	Pages          int     // number of HTML pages
	Groups         int     // number of user-group sections
	MeanEmbedded   float64 // mean embedded objects per page
	MaxEmbedded    int     // cap on embedded objects per page
	MeanPageKB     float64 // mean page size in KB (Pareto-tailed)
	MaxPageKB      float64 // largest page size in KB
	MeanObjectKB   float64 // mean embedded object size in KB
	MaxObjectKB    float64 // largest object size in KB
	LinksPerPage   int     // out-links per page
	IntraGroupProb float64 // probability a link stays within the group
	PopTheta       float64 // Zipf exponent used to bias link targets
	// DynamicFraction is the fraction of pages generated per request
	// (CGI-style, uncacheable). 0 reproduces the paper's static-only
	// evaluation; the "dynamic" experiment sweeps it (§6 future work).
	DynamicFraction float64
}

// DefaultSiteConfig returns a site shaped like a mid-size department site.
func DefaultSiteConfig() SiteConfig {
	return SiteConfig{
		Pages:          800,
		Groups:         5,
		MeanEmbedded:   4,
		MaxEmbedded:    12,
		MeanPageKB:     10,
		MaxPageKB:      500,
		MeanObjectKB:   8,
		MaxObjectKB:    200,
		LinksPerPage:   6,
		IntraGroupProb: 0.85,
		PopTheta:       0.8,
	}
}

func (c SiteConfig) validate() error {
	if c.Pages <= 0 {
		return fmt.Errorf("trace: SiteConfig.Pages must be positive, got %d", c.Pages)
	}
	if c.Groups <= 0 || c.Groups > c.Pages {
		return fmt.Errorf("trace: SiteConfig.Groups must be in [1, Pages], got %d", c.Groups)
	}
	if c.LinksPerPage <= 0 {
		return fmt.Errorf("trace: SiteConfig.LinksPerPage must be positive, got %d", c.LinksPerPage)
	}
	if c.MeanPageKB <= 0 || c.MeanObjectKB <= 0 {
		return fmt.Errorf("trace: mean sizes must be positive")
	}
	if c.DynamicFraction < 0 || c.DynamicFraction > 1 {
		return fmt.Errorf("trace: DynamicFraction must be in [0,1], got %v", c.DynamicFraction)
	}
	return nil
}

// paretoShape converts a desired mean on [xmin, xmax] into a bounded-Pareto
// draw; we keep a fixed shape and scale xmin so the mean is approximately
// right, which preserves the heavy tail observed in web file sizes.
func sizeDraw(rng *randutil.Source, meanKB, maxKB float64) int64 {
	const alpha = 1.3 // classic web file-size tail index
	// For unbounded Pareto the mean is xmin*alpha/(alpha-1); solve for xmin.
	xmin := meanKB * (alpha - 1) / alpha
	if xmin < 0.1 {
		xmin = 0.1
	}
	if maxKB < xmin {
		maxKB = xmin
	}
	kb := rng.Pareto(alpha, xmin, maxKB)
	b := int64(kb * 1024)
	if b < 64 {
		b = 64
	}
	return b
}

// GenerateSite builds a deterministic synthetic site from cfg and rng.
func GenerateSite(cfg SiteConfig, rng *randutil.Source) (*Site, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	site := &Site{Pages: make([]Page, cfg.Pages)}
	for g := 0; g < cfg.Groups; g++ {
		site.Groups = append(site.Groups, fmt.Sprintf("g%d", g))
	}

	// Assign pages round-robin to groups so every group has pages, then
	// index pages per group for link construction.
	perGroup := make([][]int, cfg.Groups)
	for i := range site.Pages {
		g := i % cfg.Groups
		p := &site.Pages[i]
		p.Group = g
		p.Size = sizeDraw(rng, cfg.MeanPageKB, cfg.MaxPageKB)
		if rng.Float64() < cfg.DynamicFraction {
			p.Dynamic = true
			p.Path = fmt.Sprintf("/%s/p%d.cgi", site.Groups[g], i)
		} else {
			p.Path = fmt.Sprintf("/%s/p%d.html", site.Groups[g], i)
		}
		perGroup[g] = append(perGroup[g], i)
	}

	// Embedded objects.
	for i := range site.Pages {
		p := &site.Pages[i]
		n := int(rng.Exp(cfg.MeanEmbedded))
		if n > cfg.MaxEmbedded {
			n = cfg.MaxEmbedded
		}
		for j := 0; j < n; j++ {
			p.Embedded = append(p.Embedded, Object{
				Path: fmt.Sprintf("/%s/p%d_obj%d.gif", site.Groups[p.Group], i, j),
				Size: sizeDraw(rng, cfg.MeanObjectKB, cfg.MaxObjectKB),
			})
		}
	}

	// Hyperlink graph. Targets are drawn Zipf-biased within the page's own
	// group (popular pages accumulate in-links, yielding a Zipf-like
	// request popularity once sessions walk the graph) and occasionally
	// cross-group.
	zipfPerGroup := make([]*randutil.Zipf, cfg.Groups)
	for g := range zipfPerGroup {
		zipfPerGroup[g] = randutil.NewZipf(rng, len(perGroup[g]), cfg.PopTheta)
	}
	allZipf := randutil.NewZipf(rng, cfg.Pages, cfg.PopTheta)
	for i := range site.Pages {
		p := &site.Pages[i]
		seen := map[int]bool{i: true}
		for len(p.Links) < cfg.LinksPerPage {
			var target int
			if rng.Float64() < cfg.IntraGroupProb {
				g := p.Group
				target = perGroup[g][zipfPerGroup[g].Draw()]
			} else {
				target = allZipf.Draw()
			}
			if seen[target] {
				// Fall back to a uniform draw to guarantee progress on
				// tiny sites where the Zipf head keeps colliding.
				target = rng.Intn(cfg.Pages)
				if seen[target] {
					if len(seen) >= cfg.Pages {
						break // site smaller than requested out-degree
					}
					continue
				}
			}
			seen[target] = true
			p.Links = append(p.Links, target)
		}
	}
	return site, nil
}

// FileTable returns the path -> size table for every page and object.
func (s *Site) FileTable() map[string]int64 {
	files := make(map[string]int64)
	for i := range s.Pages {
		p := &s.Pages[i]
		files[p.Path] = p.Size
		for _, o := range p.Embedded {
			files[o.Path] = o.Size
		}
	}
	return files
}

// NumFiles returns the total number of distinct files (pages + objects).
func (s *Site) NumFiles() int {
	n := len(s.Pages)
	for i := range s.Pages {
		n += len(s.Pages[i].Embedded)
	}
	return n
}

// TotalBytes returns the size of the site's full data set.
func (s *Site) TotalBytes() int64 {
	var total int64
	for i := range s.Pages {
		total += s.Pages[i].Size
		for _, o := range s.Pages[i].Embedded {
			total += o.Size
		}
	}
	return total
}

// Bundles returns the ground-truth bundle map: main page path -> embedded
// object paths. Used to score the miner's bundle detection.
func (s *Site) Bundles() map[string][]string {
	m := make(map[string][]string, len(s.Pages))
	for i := range s.Pages {
		p := &s.Pages[i]
		objs := make([]string, len(p.Embedded))
		for j, o := range p.Embedded {
			objs[j] = o.Path
		}
		m[p.Path] = objs
	}
	return m
}

// PageIndex returns a map from page path to index in s.Pages.
func (s *Site) PageIndex() map[string]int {
	m := make(map[string]int, len(s.Pages))
	for i := range s.Pages {
		m[s.Pages[i].Path] = i
	}
	return m
}
