package trace

import (
	"sort"
	"time"
)

// SessionScript is one persistent connection's request sequence in
// arrival order: the unit of closed-loop replay. Reqs holds indices into
// the trace's request slice, so a script stays cheap even for long
// sessions.
type SessionScript struct {
	// ID is the trace's session id.
	ID int
	// Client is the client host carrying the session.
	Client string
	// Start is the session's first request arrival offset.
	Start time.Duration
	// Reqs are indices into Trace.Requests, ordered by arrival time.
	Reqs []int
}

// SessionScripts groups the trace into per-session replay scripts,
// ordered by first arrival (ties by session id). The order is
// deterministic, so replaying the scripts reproduces the same request
// sequence on every run.
func (t *Trace) SessionScripts() []SessionScript {
	byID := t.Sessions()
	scripts := make([]SessionScript, 0, len(byID))
	for id, idxs := range byID {
		first := &t.Requests[idxs[0]]
		scripts = append(scripts, SessionScript{
			ID:     id,
			Client: first.Client,
			Start:  first.Time,
			Reqs:   idxs,
		})
	}
	sort.Slice(scripts, func(i, j int) bool {
		if scripts[i].Start != scripts[j].Start {
			return scripts[i].Start < scripts[j].Start
		}
		return scripts[i].ID < scripts[j].ID
	})
	return scripts
}

// SessionIter iterates a trace's session scripts in replay order. It is
// not safe for concurrent use; closed-loop workers should pull scripts
// from one goroutine or partition the scripts up front.
type SessionIter struct {
	t       *Trace
	scripts []SessionScript
	next    int
}

// SessionIter returns an iterator over the trace's sessions in the
// deterministic SessionScripts order.
func (t *Trace) SessionIter() *SessionIter {
	return &SessionIter{t: t, scripts: t.SessionScripts()}
}

// Len reports the total number of sessions.
func (it *SessionIter) Len() int { return len(it.scripts) }

// Next returns the next session script, reporting false when exhausted.
func (it *SessionIter) Next() (SessionScript, bool) {
	if it.next >= len(it.scripts) {
		return SessionScript{}, false
	}
	s := it.scripts[it.next]
	it.next++
	return s, true
}

// Reset rewinds the iterator to the first session.
func (it *SessionIter) Reset() { it.next = 0 }

// Request resolves a script request index against the iterator's trace.
func (it *SessionIter) Request(idx int) *Request { return &it.t.Requests[idx] }
