package trace

import (
	"testing"
	"time"
)

func sessionTestTrace() *Trace {
	files := map[string]int64{"/a.html": 100, "/b.html": 200, "/c.html": 300}
	tr := &Trace{Name: "s", Files: files}
	add := func(at time.Duration, sess int, path string) {
		tr.Requests = append(tr.Requests, Request{
			Time: at, Session: sess, Client: "c", Path: path, Size: files[path], Group: -1,
		})
	}
	// Session 2 starts first, session 0 and 1 tie on start time.
	add(1*time.Second, 2, "/a.html")
	add(2*time.Second, 0, "/b.html")
	add(2*time.Second, 1, "/c.html")
	add(3*time.Second, 2, "/b.html")
	add(4*time.Second, 0, "/a.html")
	tr.SortByTime()
	return tr
}

func TestSessionScriptsOrder(t *testing.T) {
	tr := sessionTestTrace()
	scripts := tr.SessionScripts()
	if len(scripts) != 3 {
		t.Fatalf("got %d scripts, want 3", len(scripts))
	}
	// Replay order: by first arrival, ties by session id.
	wantIDs := []int{2, 0, 1}
	for i, want := range wantIDs {
		if scripts[i].ID != want {
			t.Fatalf("scripts[%d].ID = %d, want %d (order %v)", i, scripts[i].ID, want, wantIDs)
		}
	}
	s2 := scripts[0]
	if s2.Start != time.Second || len(s2.Reqs) != 2 {
		t.Fatalf("session 2 script = %+v", s2)
	}
	if got := tr.Requests[s2.Reqs[1]].Path; got != "/b.html" {
		t.Fatalf("session 2 second request = %q, want /b.html", got)
	}
}

func TestSessionIter(t *testing.T) {
	tr := sessionTestTrace()
	it := tr.SessionIter()
	if it.Len() != 3 {
		t.Fatalf("Len = %d", it.Len())
	}
	var ids []int
	for {
		s, ok := it.Next()
		if !ok {
			break
		}
		ids = append(ids, s.ID)
		for _, idx := range s.Reqs {
			if it.Request(idx).Session != s.ID {
				t.Fatalf("Request(%d) belongs to session %d, script %d", idx, it.Request(idx).Session, s.ID)
			}
		}
	}
	if len(ids) != 3 || ids[0] != 2 {
		t.Fatalf("iterated ids = %v", ids)
	}
	if _, ok := it.Next(); ok {
		t.Fatal("exhausted iterator should report false")
	}
	it.Reset()
	if s, ok := it.Next(); !ok || s.ID != 2 {
		t.Fatalf("after Reset, first = %+v (%v)", s, ok)
	}
}

func TestSessionScriptsDeterministic(t *testing.T) {
	tr := sessionTestTrace()
	a := tr.SessionScripts()
	b := tr.SessionScripts()
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Start != b[i].Start {
			t.Fatalf("script order differs between calls at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
