// Package randutil provides seeded, reproducible random sources and the
// heavy-tailed distributions used by the workload generators: bounded Zipf
// for page popularity, Pareto for file sizes and exponential for
// inter-arrival and think times.
//
// Everything in this package is deterministic given a seed. Simulation and
// trace-generation code must never use the global math/rand source, so that
// an experiment can be replayed bit-for-bit.
package randutil

import (
	"math"
	"math/rand"
)

// Source is a deterministic random source with the distribution helpers the
// workload generators need. It is NOT safe for concurrent use; each
// goroutine should derive its own Source via Split.
type Source struct {
	rng *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Split derives a new independent Source from s. The derived stream is a
// deterministic function of s's current state, so splitting at the same
// point in two replays yields identical children.
func (s *Source) Split() *Source {
	return New(s.rng.Int63())
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Exp returns an exponentially distributed value with the given mean.
// A mean <= 0 returns 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.rng.ExpFloat64() * mean
}

// Pareto returns a bounded Pareto-distributed value with shape alpha on
// [xmin, xmax]. It is used for file sizes, which are heavy-tailed in real
// web traces. Pareto panics if the bounds are not 0 < xmin <= xmax or if
// alpha <= 0.
func (s *Source) Pareto(alpha, xmin, xmax float64) float64 {
	if xmin <= 0 || xmax < xmin || alpha <= 0 {
		panic("randutil: invalid Pareto parameters")
	}
	if xmin == xmax {
		return xmin
	}
	// Inverse-CDF sampling of the bounded Pareto distribution.
	u := s.rng.Float64()
	la := math.Pow(xmin, alpha)
	ha := math.Pow(xmax, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < xmin {
		x = xmin
	}
	if x > xmax {
		x = xmax
	}
	return x
}

// Zipf draws ranks in [0, n) following a Zipf distribution with exponent
// theta. Rank 0 is the most popular.
type Zipf struct {
	n   int
	cdf []float64 // cumulative probabilities, cdf[n-1] == 1
	rng *rand.Rand
}

// NewZipf builds a bounded Zipf sampler over n items with exponent theta
// (theta ~ 0.6–1.0 matches observed web page popularity). It panics if
// n <= 0 or theta < 0.
func NewZipf(s *Source, n int, theta float64) *Zipf {
	if n <= 0 || theta < 0 {
		panic("randutil: invalid Zipf parameters")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1
	return &Zipf{n: n, cdf: cdf, rng: s.rng}
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return z.n }

// Draw returns a rank in [0, N()); smaller ranks are more likely.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability of drawing rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= z.n {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// WeightedChoice returns an index in [0, len(weights)) drawn proportionally
// to weights. Non-positive weights are treated as zero. It panics if the
// total weight is not positive.
func (s *Source) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("randutil: WeightedChoice requires positive total weight")
	}
	u := s.rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	// Floating-point slack: fall back to the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("randutil: unreachable")
}
