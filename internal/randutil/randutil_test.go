package randutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("sources with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSplitDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	sa, sb := a.Split(), b.Split()
	for i := 0; i < 100; i++ {
		if sa.Int63() != sb.Int63() {
			t.Fatalf("split sources diverged at draw %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	s := New(1)
	child := s.Split()
	// The child stream should not simply mirror the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if s.Int63() == child.Int63() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("parent and child streams coincide on %d/100 draws", same)
	}
}

func TestExpMean(t *testing.T) {
	s := New(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("Exp(5) sample mean = %v, want ~5", mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	s := New(3)
	if got := s.Exp(0); got != 0 {
		t.Fatalf("Exp(0) = %v, want 0", got)
	}
	if got := s.Exp(-1); got != 0 {
		t.Fatalf("Exp(-1) = %v, want 0", got)
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		x := s.Pareto(1.2, 100, 1e6)
		if x < 100 || x > 1e6 {
			t.Fatalf("Pareto sample %v out of [100, 1e6]", x)
		}
	}
}

func TestParetoDegenerate(t *testing.T) {
	s := New(9)
	if got := s.Pareto(1.5, 42, 42); got != 42 {
		t.Fatalf("Pareto with xmin==xmax = %v, want 42", got)
	}
}

func TestParetoPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid Pareto parameters")
		}
	}()
	New(1).Pareto(0, 1, 2)
}

func TestParetoHeavyTail(t *testing.T) {
	// With alpha just above 1 the mean should be well above xmin.
	s := New(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Pareto(1.1, 1000, 1e7)
	}
	mean := sum / n
	if mean < 2000 {
		t.Fatalf("Pareto(1.1) sample mean %v suspiciously close to xmin", mean)
	}
}

func TestZipfRankOrdering(t *testing.T) {
	s := New(5)
	z := NewZipf(s, 100, 0.9)
	counts := make([]int, 100)
	for i := 0; i < 200000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50] || counts[0] <= counts[99] {
		t.Fatalf("rank 0 (%d) should dominate rank 50 (%d) and 99 (%d)",
			counts[0], counts[50], counts[99])
	}
	// Rank 0 of a theta=0.9 Zipf over 100 items has probability ~0.13.
	p0 := float64(counts[0]) / 200000
	if p0 < 0.08 || p0 > 0.25 {
		t.Fatalf("rank-0 empirical probability %v outside sanity band", p0)
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(New(5), 1000, 0.7)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Zipf probabilities sum to %v, want 1", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(z.N()) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

func TestZipfDrawInRange(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		z := NewZipf(s, 37, 0.8)
		for i := 0; i < 100; i++ {
			r := z.Draw()
			if r < 0 || r >= 37 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	s := New(21)
	z := NewZipf(s, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.07 || frac > 0.13 {
			t.Fatalf("theta=0 should be uniform; rank %d frac=%v", i, frac)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	s := New(13)
	w := []float64{0, 1, 3, 0, 6}
	counts := make([]int, len(w))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.WeightedChoice(w)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatal("zero-weight entries must never be chosen")
	}
	if !(counts[4] > counts[2] && counts[2] > counts[1]) {
		t.Fatalf("choice frequency should follow weights, got %v", counts)
	}
}

func TestWeightedChoicePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero total weight")
		}
	}()
	New(1).WeightedChoice([]float64{0, -2})
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		p := New(seed).Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
