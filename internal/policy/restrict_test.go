package policy

import (
	"reflect"
	"testing"
)

func exclude(servers ...int) func(int) bool {
	set := make(map[int]bool, len(servers))
	for _, s := range servers {
		set[s] = true
	}
	return func(i int) bool { return set[i] }
}

func TestRestrictView(t *testing.T) {
	v := newFakeView(4, 1, 7)
	v.serversFor["/a.html"] = []int{0, 1, 2}
	v.prefetched["/b.html"] = []int{1}
	v.inflight["/a.html"] = 1
	v.inflight["/c.html"] = 2
	v.last[9] = 1
	v.last[8] = 2
	r := Restrict(v, exclude(1))

	if r.NumServers() != 3 {
		t.Fatalf("NumServers = %d", r.NumServers())
	}
	if got := r.Load(1); got != unavailableLoad {
		t.Fatalf("excluded Load = %d, want unavailableLoad", got)
	}
	if got := r.Load(2); got != 7 {
		t.Fatalf("included Load = %d, want 7", got)
	}
	if got := r.ServersWith("/a.html"); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("ServersWith = %v, want [0 2]", got)
	}
	if got := r.PrefetchedAt("/b.html"); len(got) != 0 {
		t.Fatalf("PrefetchedAt = %v, want empty", got)
	}
	if _, ok := r.InFlight("/a.html"); ok {
		t.Fatal("InFlight reported an excluded backend")
	}
	if s, ok := r.InFlight("/c.html"); !ok || s != 2 {
		t.Fatalf("InFlight(/c.html) = %d,%v, want 2,true", s, ok)
	}
	if _, ok := r.LastServer(9); ok {
		t.Fatal("LastServer exposed a connection pinned to an excluded backend")
	}
	if s, ok := r.LastServer(8); !ok || s != 2 {
		t.Fatalf("LastServer(8) = %d,%v, want 2,true", s, ok)
	}
}

// TestAllExcluded pins the all-backends-excluded sentinel: a Restrict
// view that excludes everything must be recognizable so the front-end
// 503s immediately instead of retrying into a dead cluster.
func TestAllExcluded(t *testing.T) {
	v := newFakeView(4, 1, 7)
	if AllExcluded(v) {
		t.Fatal("healthy view reported all-excluded")
	}
	if AllExcluded(Restrict(v, exclude(1))) {
		t.Fatal("partially restricted view reported all-excluded")
	}
	if !AllExcluded(Restrict(v, exclude(0, 1, 2))) {
		t.Fatal("fully restricted view not reported all-excluded")
	}
	// Nesting restrictions composes: excluding the remainder of a
	// partially restricted view also reads as all-excluded.
	if !AllExcluded(Restrict(Restrict(v, exclude(0)), exclude(1, 2))) {
		t.Fatal("nested full restriction not reported all-excluded")
	}
}

// TestRestrictSteersLoadAwarePolicies routes with every policy through a
// Restrict view that excludes backend 0; the load-aware family must never
// choose it, and WRR (load-blind by design) is allowed to — the front-end
// re-checks the decision, as the simulator does after a crash.
func TestRestrictSteersLoadAwarePolicies(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p, err := ByName(name, 3, Thresholds{})
			if err != nil {
				t.Fatal(err)
			}
			if p.Name() == "WRR" {
				t.Skip("WRR routes load-blind; the caller re-routes")
			}
			v := newFakeView(0, 5, 5)
			// Make the excluded backend maximally attractive: it holds the
			// file, prefetched it, has it in flight, and owns the session.
			v.serversFor["/a.html"] = []int{0}
			v.prefetched["/a.html"] = []int{0}
			v.inflight["/a.html"] = 0
			v.last[1] = 0
			r := Restrict(v, exclude(0))
			for _, req := range []Request{
				{Conn: 1, Path: "/a.html"},
				{Conn: 2, Path: "/a.html", First: true},
				{Conn: 1, Path: "/a.gif", Embedded: true},
			} {
				if d := p.Route(req, r); d.Server == 0 {
					t.Fatalf("%s routed %+v to the excluded backend", name, req)
				}
			}
		})
	}
}
