package policy

// UnavailableLoad is the load reported for an excluded backend: large
// enough that every load comparison avoids it, with headroom so adding
// real queue depth cannot overflow. The cluster model uses the same
// sentinel for crashed servers, and AllExcluded recognizes a view where
// it is all that remains.
const UnavailableLoad = int(^uint(0) >> 2)

// unavailableLoad is kept as the package-internal spelling.
const unavailableLoad = UnavailableLoad

// AllExcluded reports whether the view has no routable backend at all:
// every server's load reads as the UnavailableLoad sentinel (the whole
// cluster is crashed or breaker-blocked). Policies route load-blind or
// least-bad in that state, so a caller that would otherwise retry into
// a dead cluster should check this first and fail fast instead — the
// live front-end answers 503 immediately.
func AllExcluded(v View) bool {
	n := v.NumServers()
	if n == 0 {
		return true
	}
	for i := 0; i < n; i++ {
		if v.Load(i) < UnavailableLoad {
			return false
		}
	}
	return true
}

// Restrict wraps a View so backends for which excluded returns true are
// invisible to the policy: their load reads as unavailableLoad, they are
// filtered from locality and prefetch server sets, an in-flight request
// on them is not reported, and a connection pinned to one loses its
// LastServer binding (forcing a re-route). Load-blind policies (WRR) can
// still name an excluded backend; callers must re-check the decision and
// re-route, exactly as the simulator's front-end does after a crash.
func Restrict(v View, excluded func(int) bool) View {
	return &restrictedView{inner: v, excluded: excluded}
}

type restrictedView struct {
	inner    View
	excluded func(int) bool
}

func (r *restrictedView) NumServers() int { return r.inner.NumServers() }

func (r *restrictedView) Load(i int) int {
	if r.excluded(i) {
		return unavailableLoad
	}
	return r.inner.Load(i)
}

func (r *restrictedView) ServersWith(file string) []int {
	return r.filter(r.inner.ServersWith(file))
}

func (r *restrictedView) PrefetchedAt(file string) []int {
	return r.filter(r.inner.PrefetchedAt(file))
}

func (r *restrictedView) InFlight(file string) (int, bool) {
	s, ok := r.inner.InFlight(file)
	if !ok || r.excluded(s) {
		return 0, false
	}
	return s, true
}

func (r *restrictedView) LastServer(conn int) (int, bool) {
	s, ok := r.inner.LastServer(conn)
	if !ok || r.excluded(s) {
		return 0, false
	}
	return s, true
}

func (r *restrictedView) filter(servers []int) []int {
	out := servers[:0:0]
	for _, s := range servers {
		if !r.excluded(s) {
			out = append(out, s)
		}
	}
	return out
}
