// Package policy implements the request-distribution policies the paper
// compares: WRR, LARD (connection-granularity under persistent HTTP),
// Ext-LARD-PHTTP (per-request LARD via multiple TCP handoffs), LARD/R
// (replicated server sets), back-end forwarding (Aron et al. [5]) and
// PRORD's proactive front-end flow (Fig. 4).
//
// A policy only decides where a request goes and which overheads the
// decision incurs (dispatcher consultation, TCP handoff); executing the
// decision — queueing, caching, prefetching, replication — is the cluster
// model's job.
// All built-in policies are safe for concurrent Route calls: WRR
// serializes its rotor on a small mutex, and the LARD family keeps its
// file → target assignments in a striped leaf-locked table (stripe.go).
// A custom Policy or ConnCloser used with the dispatch core must be
// equally concurrency-safe, since the core no longer serializes Route.
package policy

import (
	"fmt"
	"sync"
)

// Request is the routing-relevant view of one incoming request.
type Request struct {
	// Conn is the persistent-connection id carrying the request.
	Conn int
	// Path identifies the requested file.
	Path string
	// Size is the response size in bytes.
	Size int64
	// Embedded reports whether the distributor classified this request as
	// an embedded object of the connection's previous main page.
	Embedded bool
	// First reports whether this is the connection's first request.
	First bool
}

// View is the cluster state a policy may consult when routing. A View
// is valid only for the duration of the single Route call it is passed
// to, and any slices it returns (ServersWith, PrefetchedAt) are valid
// only until the next call on the same View — callers reuse the
// backing buffers between calls. Policies must not retain a View or
// its slices past the Route call.
type View interface {
	// NumServers returns the number of backend servers.
	NumServers() int
	// Load returns backend i's current load (queued + active requests),
	// the load metric the LARD family balances on.
	Load(i int) int
	// ServersWith returns the dispatcher's server set for a file: the
	// backends believed to hold it in memory. Consulting it costs a
	// dispatch; policies must set Decision.Dispatch when they use it.
	ServersWith(file string) []int
	// PrefetchedAt returns the backends that proactively prefetched the
	// file. This map lives at the front-end (backends push placement
	// notifications), so consulting it is dispatch-free.
	PrefetchedAt(file string) []int
	// InFlight reports the backend already processing an outstanding
	// request for the file, if any.
	InFlight(file string) (server int, ok bool)
	// LastServer returns the backend that served the connection's
	// previous request, if any.
	LastServer(conn int) (int, bool)
}

// Decision is a routing outcome.
type Decision struct {
	// Server is the backend that serves the response to the client.
	Server int
	// Source, when >= 0, is the backend whose memory supplies the file
	// while Server delivers it (back-end forwarding over the cluster's
	// internal network). -1 means Server fetches locally.
	Source int
	// Dispatch reports that the dispatcher was consulted (Fig. 6 counts
	// these).
	Dispatch bool
	// Handoff reports that serving requires a TCP handoff because the
	// connection moves (or is first bound) to a backend.
	Handoff bool
}

// Policy routes requests to backends. Route must be safe for
// concurrent calls: the dispatch core's lock-free read path invokes it
// from many goroutines without serialization.
type Policy interface {
	// Name identifies the policy in tables ("WRR", "LARD", ...).
	Name() string
	// Route decides where req goes given the current cluster view.
	Route(req Request, view View) Decision
}

// ConnCloser is implemented by policies that keep per-connection
// state. ConnClose must be safe for concurrent use alongside Route.
type ConnCloser interface {
	ConnClose(conn int)
}

// LeastLoaded returns the index of the least-loaded backend (ties go to
// the lowest index, which keeps simulations deterministic).
func LeastLoaded(view View) int {
	best, bestLoad := 0, view.Load(0)
	for i := 1; i < view.NumServers(); i++ {
		if l := view.Load(i); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// LeastLoadedOf returns the least-loaded backend among servers; it panics
// if servers is empty.
func LeastLoadedOf(view View, servers []int) int {
	if len(servers) == 0 {
		panic("policy: LeastLoadedOf with empty server list")
	}
	best, bestLoad := servers[0], view.Load(servers[0])
	for _, s := range servers[1:] {
		if l := view.Load(s); l < bestLoad {
			best, bestLoad = s, l
		}
	}
	return best
}

// Thresholds are the LARD load-balance thresholds (Pai et al. use
// Tlow=25, Thigh=65 outstanding requests).
type Thresholds struct {
	Low  int
	High int
}

// DefaultThresholds returns the LARD paper's values.
func DefaultThresholds() Thresholds { return Thresholds{Low: 25, High: 65} }

func (t Thresholds) orDefault() Thresholds {
	if t.Low <= 0 || t.High <= t.Low {
		return DefaultThresholds()
	}
	return t
}

// anyBelow reports whether some backend's load is below limit.
func anyBelow(view View, limit int) bool {
	for i := 0; i < view.NumServers(); i++ {
		if view.Load(i) < limit {
			return true
		}
	}
	return false
}

// WRR is weighted round-robin: connections are assigned to backends in
// proportion to their weights, content-blind. Good load balance, no
// locality (§2: "it does not affect the performance of the system").
type WRR struct {
	weights []int

	mu     sync.Mutex // leaf: guards the rotor below, nothing else
	cursor int
	credit int
}

// NewWRR builds a WRR policy for n backends with equal weights.
func NewWRR(n int) *WRR {
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	return NewWeightedWRR(w)
}

// NewWeightedWRR builds a WRR policy with explicit per-backend weights
// (non-positive weights are lifted to 1).
func NewWeightedWRR(weights []int) *WRR {
	if len(weights) == 0 {
		panic("policy: WRR needs at least one backend")
	}
	w := make([]int, len(weights))
	for i, x := range weights {
		if x < 1 {
			x = 1
		}
		w[i] = x
	}
	return &WRR{weights: w}
}

// Name implements Policy.
func (p *WRR) Name() string { return "WRR" }

// Route implements Policy: a connection is bound round-robin on its first
// request and stays put for its lifetime (one handoff per connection).
func (p *WRR) Route(req Request, view View) Decision {
	if s, ok := view.LastServer(req.Conn); ok {
		return Decision{Server: s, Source: -1}
	}
	p.mu.Lock()
	server := p.cursor
	p.credit++
	if p.credit >= p.weights[p.cursor] {
		p.credit = 0
		p.cursor = (p.cursor + 1) % len(p.weights)
	}
	p.mu.Unlock()
	return Decision{Server: server, Source: -1, Handoff: true}
}

// ConnLARD is locality-aware request distribution at connection
// granularity: the classic policy designed for HTTP/0.9-1.0 running
// naively under persistent connections (§2.1's problem statement). The
// first request on a connection is routed with the LARD target/rebalance
// rule; subsequent requests cannot move (no per-request handoff support),
// so they are served wherever the connection lives even when locality
// says otherwise. The distributor is still content-aware: it consults the
// dispatcher for every request (counted as dispatches), it just cannot
// act on the answer mid-connection.
type ConnLARD struct {
	T      Thresholds
	target *targetTable // LARD's one-server-per-target assignment
}

// NewConnLARD returns a connection-granularity LARD policy.
func NewConnLARD(t Thresholds) *ConnLARD {
	return &ConnLARD{T: t.orDefault(), target: newTargetTable()}
}

// Name implements Policy.
func (p *ConnLARD) Name() string { return "LARD-conn" }

// lardTarget applies the original LARD assignment rule for a file.
func lardTarget(assign *targetTable, path string, t Thresholds, view View) int {
	target, ok := assign.get(path)
	if !ok {
		target = LeastLoaded(view)
		assign.set(path, target)
		return target
	}
	if (view.Load(target) > t.High && anyBelow(view, t.Low)) ||
		view.Load(target) > 2*t.High {
		target = LeastLoaded(view)
		assign.set(path, target)
	}
	return target
}

// Route implements Policy.
func (p *ConnLARD) Route(req Request, view View) Decision {
	if s, ok := view.LastServer(req.Conn); ok {
		// Content-aware analysis happens (and costs a dispatch), but the
		// connection cannot migrate.
		return Decision{Server: s, Source: -1, Dispatch: true}
	}
	target := lardTarget(p.target, req.Path, p.T, view)
	return Decision{Server: target, Source: -1, Dispatch: true, Handoff: true}
}

// LARD is the paper's LARD baseline: classic locality-aware request
// distribution [2] applied to every request. The distributor consults
// the dispatcher for "the locality of the requested files" (§1) and
// forwards to the least-loaded backend holding the file in memory,
// falling back to the LARD assignment rule for cold files. Under
// persistent HTTP this is the multiple TCP handoff mechanism — the
// connection is handed off whenever the target differs from the backend
// currently holding it. Near-ideal locality, at the price of per-request
// dispatches and frequent handoffs.
type LARD struct {
	T      Thresholds
	target *targetTable
}

// NewLARD returns a per-request LARD policy.
func NewLARD(t Thresholds) *LARD {
	return &LARD{T: t.orDefault(), target: newTargetTable()}
}

// Name implements Policy.
func (p *LARD) Name() string { return "LARD" }

// localityTarget routes to the least-loaded in-memory holder of the file
// with LARD's overload escape, or falls back to the LARD assignment rule
// when no backend has the file cached. Shared by LARD and PRORD's
// dispatcher step.
func localityTarget(assign *targetTable, req Request, t Thresholds, view View) int {
	if holders := view.ServersWith(req.Path); len(holders) > 0 {
		target := LeastLoadedOf(view, holders)
		if (view.Load(target) > t.High && anyBelow(view, t.Low)) ||
			view.Load(target) > 2*t.High {
			target = LeastLoaded(view)
		}
		assign.set(req.Path, target)
		return target
	}
	return lardTarget(assign, req.Path, t, view)
}

// Route implements Policy.
func (p *LARD) Route(req Request, view View) Decision {
	target := localityTarget(p.target, req, p.T, view)
	last, ok := view.LastServer(req.Conn)
	return Decision{
		Server:   target,
		Source:   -1,
		Dispatch: true,
		Handoff:  !ok || last != target,
	}
}

// LARDR is LARD/R, the replicated variant of per-request LARD: each
// target may be served by a set of backends. Under high load the set
// grows by the least-loaded backend; the request goes to the least-loaded
// member of the set.
type LARDR struct {
	T       Thresholds
	targets *targetTable
}

// NewLARDR returns a per-request LARD/R policy.
func NewLARDR(t Thresholds) *LARDR {
	return &LARDR{T: t.orDefault(), targets: newTargetSetTable()}
}

// Name implements Policy.
func (p *LARDR) Name() string { return "LARD/R" }

// Route implements Policy. Replica sets are copy-on-append, so the
// set read here stays immutable while the view consults it.
func (p *LARDR) Route(req Request, view View) Decision {
	set := p.targets.getSet(req.Path)
	var target int
	switch {
	case len(set) == 0:
		target = LeastLoaded(view)
		p.targets.initSet(req.Path, target)
	default:
		target = LeastLoadedOf(view, set)
		if (view.Load(target) > p.T.High && anyBelow(view, p.T.Low)) ||
			view.Load(target) > 2*p.T.High {
			ll := LeastLoaded(view)
			if !containsInt(set, ll) {
				p.targets.addToSet(req.Path, set, ll)
			}
			target = ll
		}
	}
	last, ok := view.LastServer(req.Conn)
	return Decision{
		Server:   target,
		Source:   -1,
		Dispatch: true,
		Handoff:  !ok || last != target,
	}
}

// ExtLARD is "Ext-LARD-PHTTP", the existing algorithm for P-HTTP the
// paper benchmarks (§5.1): LARD extended with back-end request forwarding
// [5]. One handoff binds the connection (LARD rule on the first request);
// afterwards, when locality points elsewhere, the response content is
// pulled from the remote backend's memory over the cluster's internal
// network instead of moving the connection.
type ExtLARD struct {
	T      Thresholds
	target *targetTable
}

// NewExtLARD returns an Ext-LARD-PHTTP (back-end forwarding) policy.
func NewExtLARD(t Thresholds) *ExtLARD {
	return &ExtLARD{T: t.orDefault(), target: newTargetTable()}
}

// Name implements Policy.
func (p *ExtLARD) Name() string { return "Ext-LARD-PHTTP" }

// Route implements Policy.
func (p *ExtLARD) Route(req Request, view View) Decision {
	last, ok := view.LastServer(req.Conn)
	if !ok {
		target := lardTarget(p.target, req.Path, p.T, view)
		return Decision{Server: target, Source: -1, Dispatch: true, Handoff: true}
	}
	// Connection pinned to last; find where the content lives.
	d := Decision{Server: last, Source: -1, Dispatch: true}
	if holders := view.ServersWith(req.Path); len(holders) > 0 && !containsInt(holders, last) {
		d.Source = LeastLoadedOf(view, holders)
	}
	return d
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// PRORD implements the proactive request-distribution flow of Fig. 4:
//
//  1. If the request is an embedded object of the connection's previous
//     request, forward it to the backend that processed that request —
//     no dispatcher contact (the "forward module" inside the dashed box).
//  2. If the file was prefetched somewhere or an identical request is
//     already being processed, forward to that backend — still no
//     dispatcher contact.
//  3. Otherwise consult the dispatcher and pick the least-loaded backend
//     holding the file in memory (with LARD-style overload protection),
//     falling back to the least-loaded backend overall.
type PRORD struct {
	T      Thresholds
	target *targetTable
}

// NewPRORD returns the PRORD routing policy.
func NewPRORD(t Thresholds) *PRORD {
	return &PRORD{T: t.orDefault(), target: newTargetTable()}
}

// Name implements Policy.
func (p *PRORD) Name() string { return "PRORD" }

// Route implements Policy.
func (p *PRORD) Route(req Request, view View) Decision {
	last, haveLast := view.LastServer(req.Conn)

	// Step 1: embedded-object fast path.
	if req.Embedded && haveLast {
		return Decision{Server: last, Source: -1}
	}
	// Step 2: prefetched or in-flight.
	if s, ok := view.InFlight(req.Path); ok {
		return Decision{Server: s, Source: -1, Handoff: !haveLast || last != s}
	}
	if pre := view.PrefetchedAt(req.Path); len(pre) > 0 {
		s := LeastLoadedOf(view, pre)
		return Decision{Server: s, Source: -1, Handoff: !haveLast || last != s}
	}
	// Step 3: dispatcher consultation — the same locality rule as LARD.
	target := localityTarget(p.target, req, p.T, view)
	return Decision{
		Server:   target,
		Source:   -1,
		Dispatch: true,
		Handoff:  !haveLast || last != target,
	}
}

// ByName constructs a fresh policy by its table name. n is the backend
// count (needed by WRR). Unknown names return an error.
func ByName(name string, n int, t Thresholds) (Policy, error) {
	switch name {
	case "WRR":
		return NewWRR(n), nil
	case "LARD":
		return NewLARD(t), nil
	case "LARD-conn":
		return NewConnLARD(t), nil
	case "Ext-LARD-PHTTP":
		return NewExtLARD(t), nil
	case "LARD/R":
		return NewLARDR(t), nil
	case "PRORD":
		return NewPRORD(t), nil
	default:
		return nil, fmt.Errorf("policy: unknown policy %q", name)
	}
}

// Names lists the available policy names in the order tables report them.
func Names() []string {
	return []string{"WRR", "LARD-conn", "LARD", "LARD/R", "Ext-LARD-PHTTP", "PRORD"}
}

var (
	_ Policy = (*WRR)(nil)
	_ Policy = (*ConnLARD)(nil)
	_ Policy = (*LARD)(nil)
	_ Policy = (*ExtLARD)(nil)
	_ Policy = (*LARDR)(nil)
	_ Policy = (*PRORD)(nil)
)
