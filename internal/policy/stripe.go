package policy

import "sync"

// The LARD-family policies keep one piece of mutable state: the
// file → target-server assignment map. Under the dispatch core's
// lock-free read path, Route may be called from many goroutines at
// once, so the map is striped: 16 independently locked shards selected
// by an inline FNV-1a hash of the path. Stripe mutexes are leaves —
// Route acquires exactly one, holds it only for the map operation, and
// never blocks or takes another lock while holding it.
//
// Striping changes no decisions: each get/set is atomic per stripe and
// single-threaded replays see exactly the historical map semantics.
// Under concurrency, two racing Routes for the same cold file may both
// compute a target and the later set wins — the same last-writer-wins
// outcome the serialized path produced for back-to-back requests.

const targetStripes = 16 // power of two, so stripe() can mask

// targetStripe is one leaf-locked shard. The scalar-target policies
// (LARD, ConnLARD, ExtLARD, PRORD) use m; LARD/R uses sets. One struct
// serves both so the lock hierarchy has a single policy stripe class.
type targetStripe struct {
	mu   sync.Mutex
	m    map[string]int
	sets map[string][]int
}

// targetTable is the striped file → target assignment table.
type targetTable struct {
	stripes [targetStripes]targetStripe
}

// newTargetTable returns a table for scalar targets.
func newTargetTable() *targetTable {
	t := &targetTable{}
	for i := range t.stripes {
		t.stripes[i].m = make(map[string]int)
	}
	return t
}

// newTargetSetTable returns a table for replicated target sets.
func newTargetSetTable() *targetTable {
	t := &targetTable{}
	for i := range t.stripes {
		t.stripes[i].sets = make(map[string][]int)
	}
	return t
}

func (t *targetTable) stripe(path string) *targetStripe {
	// Inline FNV-1a (32-bit): no hasher allocation on the Route path.
	h := uint32(2166136261)
	for i := 0; i < len(path); i++ {
		h ^= uint32(path[i])
		h *= 16777619
	}
	return &t.stripes[h&(targetStripes-1)]
}

func (t *targetTable) get(path string) (int, bool) {
	s := t.stripe(path)
	s.mu.Lock()
	v, ok := s.m[path]
	s.mu.Unlock()
	return v, ok
}

func (t *targetTable) set(path string, server int) {
	s := t.stripe(path)
	s.mu.Lock()
	s.m[path] = server
	s.mu.Unlock()
}

// getSet returns the published replica set for path. Sets are
// copy-on-append: once published a slice is never mutated, so the
// caller may read it after the stripe unlocks.
func (t *targetTable) getSet(path string) []int {
	s := t.stripe(path)
	s.mu.Lock()
	v := s.sets[path]
	s.mu.Unlock()
	return v
}

// initSet publishes the initial single-member set for path unless a
// concurrent writer beat this one to it.
func (t *targetTable) initSet(path string, server int) {
	s := t.stripe(path)
	s.mu.Lock()
	if len(s.sets[path]) == 0 {
		s.sets[path] = []int{server}
	}
	s.mu.Unlock()
}

// addToSet publishes set+{server} for path (copy-on-append) unless a
// concurrent writer already added it.
func (t *targetTable) addToSet(path string, set []int, server int) {
	s := t.stripe(path)
	s.mu.Lock()
	cur := s.sets[path]
	if len(cur) == len(set) && !containsInt(cur, server) {
		ns := make([]int, len(cur), len(cur)+1)
		copy(ns, cur)
		s.sets[path] = append(ns, server)
	}
	s.mu.Unlock()
}
