package policy

import (
	"testing"
	"testing/quick"
)

// fakeView is a scriptable View for policy unit tests.
type fakeView struct {
	loads      []int
	serversFor map[string][]int
	prefetched map[string][]int
	inflight   map[string]int
	last       map[int]int
}

func newFakeView(loads ...int) *fakeView {
	return &fakeView{
		loads:      loads,
		serversFor: make(map[string][]int),
		prefetched: make(map[string][]int),
		inflight:   make(map[string]int),
		last:       make(map[int]int),
	}
}

func (v *fakeView) NumServers() int               { return len(v.loads) }
func (v *fakeView) Load(i int) int                { return v.loads[i] }
func (v *fakeView) ServersWith(f string) []int    { return v.serversFor[f] }
func (v *fakeView) PrefetchedAt(f string) []int   { return v.prefetched[f] }
func (v *fakeView) InFlight(f string) (int, bool) { s, ok := v.inflight[f]; return s, ok }
func (v *fakeView) LastServer(c int) (int, bool)  { s, ok := v.last[c]; return s, ok }

func TestLeastLoaded(t *testing.T) {
	v := newFakeView(5, 2, 2, 9)
	if got := LeastLoaded(v); got != 1 {
		t.Fatalf("LeastLoaded = %d, want 1 (lowest index tie-break)", got)
	}
	if got := LeastLoadedOf(v, []int{3, 2}); got != 2 {
		t.Fatalf("LeastLoadedOf = %d, want 2", got)
	}
}

func TestLeastLoadedOfEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LeastLoadedOf(newFakeView(1), nil)
}

func TestWRRRoundRobin(t *testing.T) {
	p := NewWRR(3)
	v := newFakeView(0, 0, 0)
	var got []int
	for conn := 0; conn < 6; conn++ {
		d := p.Route(Request{Conn: conn, Path: "/x", First: true}, v)
		if d.Dispatch {
			t.Fatal("WRR must never dispatch")
		}
		if !d.Handoff {
			t.Fatal("first request on a connection needs a handoff")
		}
		got = append(got, d.Server)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin order = %v, want %v", got, want)
		}
	}
}

func TestWRRWeights(t *testing.T) {
	p := NewWeightedWRR([]int{2, 1})
	v := newFakeView(0, 0)
	var got []int
	for conn := 0; conn < 6; conn++ {
		got = append(got, p.Route(Request{Conn: conn, First: true}, v).Server)
	}
	want := []int{0, 0, 1, 0, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("weighted order = %v, want %v", got, want)
		}
	}
}

func TestWRRConnectionAffinity(t *testing.T) {
	p := NewWRR(3)
	v := newFakeView(0, 0, 0)
	d1 := p.Route(Request{Conn: 7, First: true}, v)
	v.last[7] = d1.Server
	d2 := p.Route(Request{Conn: 7}, v)
	if d2.Server != d1.Server || d2.Handoff {
		t.Fatalf("connection must stay on %d without handoff, got %+v", d1.Server, d2)
	}
}

func TestWRRInvalidWeights(t *testing.T) {
	p := NewWeightedWRR([]int{0, -5})
	v := newFakeView(0, 0)
	a := p.Route(Request{Conn: 0, First: true}, v).Server
	b := p.Route(Request{Conn: 1, First: true}, v).Server
	if a != 0 || b != 1 {
		t.Fatalf("non-positive weights lift to 1: got %d, %d", a, b)
	}
}

func TestLARDFirstRequestAssignsLeastLoaded(t *testing.T) {
	p := NewLARD(Thresholds{})
	v := newFakeView(4, 1, 3)
	d := p.Route(Request{Conn: 1, Path: "/a", First: true}, v)
	if d.Server != 1 || !d.Dispatch || !d.Handoff {
		t.Fatalf("first LARD route = %+v, want server 1 with dispatch+handoff", d)
	}
	// Same target for the same path on a new connection.
	d2 := p.Route(Request{Conn: 2, Path: "/a", First: true}, v)
	if d2.Server != 1 {
		t.Fatalf("LARD target for /a moved to %d", d2.Server)
	}
}

func TestLARDConnConnectionPinned(t *testing.T) {
	p := NewConnLARD(Thresholds{})
	v := newFakeView(0, 0)
	v.last[5] = 1
	d := p.Route(Request{Conn: 5, Path: "/b"}, v)
	if d.Server != 1 || d.Handoff {
		t.Fatalf("pinned connection should stay: %+v", d)
	}
	if !d.Dispatch {
		t.Fatal("LARD is content-aware: it still consults the dispatcher")
	}
}

func TestLARDRebalanceOnOverload(t *testing.T) {
	p := NewLARD(Thresholds{Low: 5, High: 10})
	v := newFakeView(0, 0)
	p.Route(Request{Conn: 1, Path: "/hot", First: true}, v) // assigns server 0
	v.loads[0] = 11                                         // above High, and server 1 below Low
	d := p.Route(Request{Conn: 2, Path: "/hot", First: true}, v)
	if d.Server != 1 {
		t.Fatalf("overloaded target should move to 1, got %+v", d)
	}
}

func TestLARDRebalanceOnExtremeLoadEvenWithoutIdleNode(t *testing.T) {
	p := NewLARD(Thresholds{Low: 5, High: 10})
	v := newFakeView(0, 8) // server 1 not below Low
	p.Route(Request{Conn: 1, Path: "/hot", First: true}, v)
	v.loads[0] = 21 // > 2*High
	d := p.Route(Request{Conn: 2, Path: "/hot", First: true}, v)
	if d.Server != 1 {
		t.Fatalf("2*Thigh rule should trigger, got %+v", d)
	}
}

func TestLARDPerRequestHandoffs(t *testing.T) {
	p := NewLARD(Thresholds{})
	v := newFakeView(0, 5)
	d1 := p.Route(Request{Conn: 1, Path: "/a", First: true}, v)
	if d1.Server != 0 || !d1.Handoff || !d1.Dispatch {
		t.Fatalf("d1 = %+v", d1)
	}
	v.last[1] = d1.Server
	// /b is unassigned; least loaded is still 0 -> no handoff.
	d2 := p.Route(Request{Conn: 1, Path: "/b"}, v)
	if d2.Server != 0 || d2.Handoff {
		t.Fatalf("same-server follow-up should not hand off: %+v", d2)
	}
	// Assign /c to server 1 by loading server 0.
	v.loads[0], v.loads[1] = 9, 0
	d3 := p.Route(Request{Conn: 1, Path: "/c"}, v)
	if d3.Server != 1 || !d3.Handoff {
		t.Fatalf("server change must hand off: %+v", d3)
	}
}

func TestLARDRGrowsReplicaSet(t *testing.T) {
	p := NewLARDR(Thresholds{Low: 2, High: 4})
	v := newFakeView(0, 0, 0)
	d1 := p.Route(Request{Conn: 1, Path: "/hot", First: true}, v)
	if d1.Server != 0 {
		t.Fatalf("d1 = %+v", d1)
	}
	v.loads[0] = 5 // overload; server 1 below Low
	d2 := p.Route(Request{Conn: 2, Path: "/hot", First: true}, v)
	if d2.Server != 1 {
		t.Fatalf("set should grow to include 1, got %+v", d2)
	}
	// Now both 0 and 1 are in the set; request goes to least loaded of them.
	v.loads[0], v.loads[1] = 3, 2
	d3 := p.Route(Request{Conn: 3, Path: "/hot", First: true}, v)
	if d3.Server != 1 {
		t.Fatalf("least-loaded set member should serve, got %+v", d3)
	}
}

func TestExtLARDPullsRemoteContent(t *testing.T) {
	p := NewExtLARD(Thresholds{})
	v := newFakeView(0, 0)
	d1 := p.Route(Request{Conn: 1, Path: "/a", First: true}, v)
	if !d1.Handoff || d1.Source != -1 {
		t.Fatalf("d1 = %+v", d1)
	}
	v.last[1] = d1.Server
	v.serversFor["/b"] = []int{1}
	d2 := p.Route(Request{Conn: 1, Path: "/b"}, v)
	if d2.Server != d1.Server {
		t.Fatalf("connection must not move: %+v", d2)
	}
	if d2.Source != 1 {
		t.Fatalf("content should be pulled from backend 1: %+v", d2)
	}
	if d2.Handoff {
		t.Fatal("backend forwarding avoids handoffs after the first")
	}
	// Local content: no remote pull.
	v.serversFor["/c"] = []int{d1.Server}
	d3 := p.Route(Request{Conn: 1, Path: "/c"}, v)
	if d3.Source != -1 {
		t.Fatalf("local content should not be pulled remotely: %+v", d3)
	}
}

func TestPRORDEmbeddedFastPath(t *testing.T) {
	p := NewPRORD(Thresholds{})
	v := newFakeView(9, 0)
	v.last[1] = 0
	d := p.Route(Request{Conn: 1, Path: "/img.gif", Embedded: true}, v)
	if d.Server != 0 || d.Dispatch || d.Handoff {
		t.Fatalf("embedded object must follow previous request without dispatch: %+v", d)
	}
}

func TestPRORDInFlightFastPath(t *testing.T) {
	p := NewPRORD(Thresholds{})
	v := newFakeView(0, 0)
	v.inflight["/x"] = 1
	d := p.Route(Request{Conn: 1, Path: "/x", First: true}, v)
	if d.Server != 1 || d.Dispatch {
		t.Fatalf("in-flight request should piggyback without dispatch: %+v", d)
	}
}

func TestPRORDPrefetchedFastPath(t *testing.T) {
	p := NewPRORD(Thresholds{})
	v := newFakeView(3, 1, 9)
	v.prefetched["/x"] = []int{0, 2}
	d := p.Route(Request{Conn: 1, Path: "/x", First: true}, v)
	if d.Server != 0 || d.Dispatch {
		t.Fatalf("prefetched file should route to least-loaded prefetcher: %+v", d)
	}
}

func TestPRORDDispatchFallback(t *testing.T) {
	p := NewPRORD(Thresholds{})
	v := newFakeView(2, 1)
	v.serversFor["/y"] = []int{0}
	d := p.Route(Request{Conn: 1, Path: "/y", First: true}, v)
	if d.Server != 0 || !d.Dispatch || !d.Handoff {
		t.Fatalf("memory holder should win with a dispatch: %+v", d)
	}
	// Unknown file: least loaded overall.
	d2 := p.Route(Request{Conn: 2, Path: "/z", First: true}, v)
	if d2.Server != 1 || !d2.Dispatch {
		t.Fatalf("unknown file goes to least loaded: %+v", d2)
	}
}

func TestPRORDOverloadProtection(t *testing.T) {
	p := NewPRORD(Thresholds{Low: 2, High: 4})
	v := newFakeView(9, 0)
	v.serversFor["/y"] = []int{0}
	d := p.Route(Request{Conn: 1, Path: "/y", First: true}, v)
	if d.Server != 0 {
		// Overloaded holder should be bypassed.
		if d.Server != 1 {
			t.Fatalf("unexpected server %d", d.Server)
		}
	} else {
		t.Fatalf("overloaded holder must be bypassed: %+v", d)
	}
}

func TestPRORDNoHandoffWhenStaying(t *testing.T) {
	p := NewPRORD(Thresholds{})
	v := newFakeView(0, 9)
	v.last[1] = 0
	v.serversFor["/y"] = []int{0}
	d := p.Route(Request{Conn: 1, Path: "/y"}, v)
	if d.Server != 0 || d.Handoff {
		t.Fatalf("staying on the same backend needs no handoff: %+v", d)
	}
}

func TestPRORDEmbeddedWithoutHistoryFallsThrough(t *testing.T) {
	p := NewPRORD(Thresholds{})
	v := newFakeView(1, 0)
	// Embedded flagged but no previous server known (e.g. trace import
	// glitch): must fall through to the normal path, not crash.
	d := p.Route(Request{Conn: 99, Path: "/img.gif", Embedded: true, First: true}, v)
	if d.Server != 1 || !d.Dispatch {
		t.Fatalf("fallthrough = %+v", d)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name, 4, Thresholds{})
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("Name() = %q, want %q", p.Name(), name)
		}
	}
	if _, err := ByName("nope", 4, Thresholds{}); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestThresholdDefaults(t *testing.T) {
	p := NewLARD(Thresholds{Low: -1, High: 0})
	if p.T != DefaultThresholds() {
		t.Fatalf("invalid thresholds should fall back to defaults, got %+v", p.T)
	}
	custom := Thresholds{Low: 3, High: 7}
	if NewLARD(custom).T != custom {
		t.Fatal("valid custom thresholds should be kept")
	}
}

// TestPoliciesAlwaysRouteValidProperty drives every policy with randomized
// view states and request streams: Route must always return a valid server
// and a non-negative Source, never panic, and respect the View contract.
func TestPoliciesAlwaysRouteValidProperty(t *testing.T) {
	f := func(ops []uint16, nServers uint8) bool {
		n := int(nServers%7) + 2
		v := newFakeView(make([]int, n)...)
		pols := []Policy{
			NewWRR(n),
			NewConnLARD(Thresholds{}),
			NewLARD(Thresholds{}),
			NewLARDR(Thresholds{}),
			NewExtLARD(Thresholds{}),
			NewPRORD(Thresholds{}),
		}
		for i, op := range ops {
			conn := int(op % 5)
			path := "/p" + string(rune('a'+op%11))
			// Randomize the view.
			v.loads[int(op)%n] = int(op % 97)
			switch op % 4 {
			case 0:
				v.serversFor[path] = []int{int(op) % n}
			case 1:
				v.prefetched[path] = []int{int(op+1) % n}
			case 2:
				v.inflight[path] = int(op+2) % n
			}
			for _, p := range pols {
				d := p.Route(Request{
					Conn:     conn,
					Path:     path,
					Embedded: op%5 == 0,
					First:    i == 0,
				}, v)
				if d.Server < 0 || d.Server >= n {
					t.Errorf("%s routed to invalid server %d of %d", p.Name(), d.Server, n)
					return false
				}
				if d.Source >= n {
					t.Errorf("%s invalid source %d", p.Name(), d.Source)
					return false
				}
				// Emulate the cluster recording the last server.
				v.last[conn] = d.Server
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
