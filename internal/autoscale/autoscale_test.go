package autoscale

import (
	"testing"
	"time"

	"prord/internal/overload"
)

// tick builds monotone timestamps off an arbitrary epoch — the package
// only ever subtracts, so the epoch is irrelevant.
func tick(d time.Duration) time.Time { return time.Time{}.Add(d) }

func newPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"max required", Config{}, false},
		{"minimal", Config{Max: 1}, true},
		{"min above max", Config{Max: 2, Min: 3}, false},
		{"initial above max", Config{Max: 2, Initial: 3}, false},
		{"initial below min", Config{Max: 4, Min: 3, Initial: 2}, false},
		{"full range", Config{Max: 4, Min: 1, Initial: 2}, true},
	}
	for _, tc := range cases {
		_, err := NewPool(tc.cfg)
		if (err == nil) != tc.ok {
			t.Errorf("%s: NewPool err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Max: 3}.WithDefaults()
	if c.Min != 1 || c.Initial != 1 {
		t.Errorf("Min=%d Initial=%d, want 1/1", c.Min, c.Initial)
	}
	if c.UpHold != 2*time.Second || c.DownHold != 10*time.Second || c.Cooldown != 5*time.Second {
		t.Errorf("holds %v/%v/%v, want 2s/10s/5s", c.UpHold, c.DownHold, c.Cooldown)
	}
	if c.WarmTop != 32 || c.WarmRamp != 64 || c.WarmPenalty != 8 {
		t.Errorf("warm %d/%d/%d, want 32/64/8", c.WarmTop, c.WarmRamp, c.WarmPenalty)
	}
	// Initial defaults to Min, not 1.
	if c := (Config{Max: 5, Min: 2}).WithDefaults(); c.Initial != 2 {
		t.Errorf("Initial=%d, want Min=2", c.Initial)
	}
}

func TestPoolLifecycle(t *testing.T) {
	p := newPool(t, Config{Max: 3, Initial: 1, WarmRamp: 2})
	if p.Size() != 1 || p.State(0) != Ready || p.State(1) != Absent {
		t.Fatalf("initial pool wrong: size=%d states=%v/%v", p.Size(), p.State(0), p.State(1))
	}
	if !p.Settled() {
		t.Fatal("fresh pool should be settled")
	}

	// Join picks the lowest Absent slot.
	idx, ok := p.Join(tick(time.Second))
	if !ok || idx != 1 {
		t.Fatalf("Join = %d, %v; want 1, true", idx, ok)
	}
	if p.State(1) != Warming || p.Size() != 2 || p.Settled() {
		t.Fatalf("after join: state=%v size=%d settled=%v", p.State(1), p.Size(), p.Settled())
	}
	if !p.AcceptingNew(1) || !p.Present(1) {
		t.Fatal("warming backend must accept new sessions and be present")
	}

	// Warm penalty ramps linearly to zero over WarmRamp serves.
	if pen := p.Penalty(1); pen != p.Config().WarmPenalty {
		t.Fatalf("fresh penalty = %d, want %d", pen, p.Config().WarmPenalty)
	}
	p.NoteServed(1)
	if pen := p.Penalty(1); pen <= 0 || pen >= p.Config().WarmPenalty {
		t.Fatalf("mid-ramp penalty = %d, want in (0, %d)", pen, p.Config().WarmPenalty)
	}
	p.NoteServed(1)
	if pen := p.Penalty(1); pen != 0 {
		t.Fatalf("post-ramp penalty = %d, want 0", pen)
	}
	// Ready backends never carry a penalty.
	if pen := p.Penalty(0); pen != 0 {
		t.Fatalf("ready penalty = %d, want 0", pen)
	}

	// Settle promotes the completed ramp.
	if got := p.Settle(tick(2 * time.Second)); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Settle = %v, want [1]", got)
	}
	if p.State(1) != Ready || !p.Settled() {
		t.Fatalf("after settle: state=%v settled=%v", p.State(1), p.Settled())
	}

	// Drain picks the highest-index Ready backend.
	idx, ok = p.Drain(tick(3 * time.Second))
	if !ok || idx != 1 {
		t.Fatalf("Drain = %d, %v; want 1, true", idx, ok)
	}
	if p.AcceptingNew(1) {
		t.Fatal("draining backend must not accept new sessions")
	}
	if !p.Present(1) {
		t.Fatal("draining backend must stay present for bound sessions")
	}
	if !p.HasDraining() || p.Settled() {
		t.Fatalf("HasDraining=%v Settled=%v, want true/false", p.HasDraining(), p.Settled())
	}
	if got := p.DrainingSet(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DrainingSet = %v, want [1]", got)
	}

	// Drain refuses to shrink below Min.
	if idx, ok := p.Drain(tick(4 * time.Second)); ok {
		t.Fatalf("Drain below Min succeeded with %d", idx)
	}

	// Remove completes the drain.
	countRebooks, ok := p.Remove(1, tick(5*time.Second))
	if !ok || !countRebooks {
		t.Fatalf("Remove = %v, %v; want true, true", countRebooks, ok)
	}
	if p.State(1) != Absent || p.Size() != 1 || !p.Settled() {
		t.Fatalf("after remove: state=%v size=%d settled=%v", p.State(1), p.Size(), p.Settled())
	}
	// Double remove is a no-op.
	if _, ok := p.Remove(1, tick(6*time.Second)); ok {
		t.Fatal("second Remove succeeded")
	}

	p.NoteRebooked(3)
	joins, drains, rebooked := p.Counters()
	if joins != 1 || drains != 1 || rebooked != 3 {
		t.Fatalf("counters = %d/%d/%d, want 1/1/3", joins, drains, rebooked)
	}

	// The event log recorded every transition in order.
	want := []Event{
		{At: tick(time.Second), Server: 1, From: Absent, To: Warming},
		{At: tick(2 * time.Second), Server: 1, From: Warming, To: Ready},
		{At: tick(3 * time.Second), Server: 1, From: Ready, To: Draining},
		{At: tick(5 * time.Second), Server: 1, From: Draining, To: Absent},
	}
	got := p.Events()
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPoolJoinAtMax(t *testing.T) {
	p := newPool(t, Config{Max: 2, Initial: 2})
	if idx, ok := p.Join(tick(0)); ok {
		t.Fatalf("Join at Max succeeded with %d", idx)
	}
}

func TestPoolDrainFallsBackToWarming(t *testing.T) {
	p := newPool(t, Config{Max: 2, Initial: 1})
	if _, ok := p.Join(tick(0)); !ok {
		t.Fatal("Join failed")
	}
	idx, ok := p.Drain(tick(time.Second))
	if !ok || idx != 1 {
		t.Fatalf("Drain = %d, %v; want warming slot 1, true", idx, ok)
	}
}

func TestPoolRejoinResetsRamp(t *testing.T) {
	p := newPool(t, Config{Max: 2, Initial: 1, WarmRamp: 4})
	idx, _ := p.Join(tick(0))
	for i := 0; i < 4; i++ {
		p.NoteServed(idx)
	}
	p.Settle(tick(time.Second))
	p.Drain(tick(2 * time.Second))
	p.Remove(idx, tick(3*time.Second))
	// Rejoining the same slot starts a fresh ramp.
	idx2, ok := p.Join(tick(4 * time.Second))
	if !ok || idx2 != idx {
		t.Fatalf("rejoin = %d, %v; want %d, true", idx2, ok, idx)
	}
	if pen := p.Penalty(idx2); pen != p.Config().WarmPenalty {
		t.Fatalf("rejoin penalty = %d, want full %d", pen, p.Config().WarmPenalty)
	}
}

// TestPoolCrashWhileDraining is the satellite regression: a backend
// invalidated (breaker trip / crash) while Draining must not have its
// detach unpins counted as drain rebooks — the invalidation already
// unpinned every session.
func TestPoolCrashWhileDraining(t *testing.T) {
	p := newPool(t, Config{Max: 2, Initial: 2})
	idx, ok := p.Drain(tick(0))
	if !ok {
		t.Fatal("Drain failed")
	}
	p.NoteInvalidated(idx)
	countRebooks, ok := p.Remove(idx, tick(time.Second))
	if !ok {
		t.Fatal("Remove failed")
	}
	if countRebooks {
		t.Fatal("Remove after mid-drain invalidation said to count rebooks")
	}
	// The crash flag clears on removal: a later clean drain counts again.
	if _, ok := p.Join(tick(2 * time.Second)); !ok {
		t.Fatal("rejoin failed")
	}
	p.Settle(tick(3 * time.Second)) // not ramped; stays Warming
	idx2, ok := p.Drain(tick(4 * time.Second))
	if !ok {
		t.Fatal("second Drain failed")
	}
	countRebooks, ok = p.Remove(idx2, tick(5*time.Second))
	if !ok || !countRebooks {
		t.Fatalf("clean Remove = %v, %v; want true, true", countRebooks, ok)
	}
}

func TestPoolInvalidatedWhileWarmingRestartsRamp(t *testing.T) {
	p := newPool(t, Config{Max: 2, Initial: 1, WarmRamp: 4})
	idx, _ := p.Join(tick(0))
	p.NoteServed(idx)
	p.NoteServed(idx)
	if pen := p.Penalty(idx); pen >= p.Config().WarmPenalty {
		t.Fatalf("pre-crash penalty = %d, want decayed", pen)
	}
	p.NoteInvalidated(idx)
	if pen := p.Penalty(idx); pen != p.Config().WarmPenalty {
		t.Fatalf("post-crash penalty = %d, want full %d (ramp restarted)", pen, p.Config().WarmPenalty)
	}
}

func TestControllerHysteresis(t *testing.T) {
	p := newPool(t, Config{Max: 3, Initial: 1, UpHold: 2 * time.Second,
		DownHold: 10 * time.Second, Cooldown: 5 * time.Second, WarmRamp: 1})
	c := NewController(p)

	// Saturated must persist UpHold before a join fires.
	if _, ok := c.Observe(tick(0), overload.Saturated); ok {
		t.Fatal("joined immediately")
	}
	if _, ok := c.Observe(tick(time.Second), overload.Saturated); ok {
		t.Fatal("joined before UpHold elapsed")
	}
	act, ok := c.Observe(tick(2*time.Second), overload.Saturated)
	if !ok || act.Kind != ActionJoin || act.Server != 1 {
		t.Fatalf("Observe = %+v, %v; want join of 1", act, ok)
	}
	if act.Latency != 2*time.Second {
		t.Fatalf("join latency = %v, want 2s", act.Latency)
	}
	if got := c.ScaleUpLatencies(); len(got) != 1 || got[0] != 2*time.Second {
		t.Fatalf("ScaleUpLatencies = %v, want [2s]", got)
	}

	// Unsettled pool (slot 1 Warming) suppresses further decisions even
	// after the cooldown — promote it first.
	if _, ok := c.Observe(tick(10*time.Second), overload.Saturated); ok {
		t.Fatal("decision fired while pool unsettled")
	}
	p.NoteServed(1)
	p.Settle(tick(10 * time.Second))

	// Critical also counts as "above": the hold restarted at 10s (the
	// first settled Saturated+ observation after the join cleared it).
	if _, ok := c.Observe(tick(11*time.Second), overload.Critical); ok {
		t.Fatal("joined before second UpHold elapsed")
	}
	act, ok = c.Observe(tick(12*time.Second), overload.Critical)
	if !ok || act.Kind != ActionJoin || act.Server != 2 {
		t.Fatalf("second join = %+v, %v; want join of 2", act, ok)
	}
	p.NoteServed(2)
	p.Settle(tick(12 * time.Second))

	// Normal must persist DownHold before a drain fires; cooldown gates
	// too. Drain picks the highest-index Ready backend (2).
	if _, ok := c.Observe(tick(13*time.Second), overload.Normal); ok {
		t.Fatal("drained immediately")
	}
	if _, ok := c.Observe(tick(22*time.Second), overload.Normal); ok {
		t.Fatal("drained before DownHold elapsed")
	}
	act, ok = c.Observe(tick(23*time.Second), overload.Normal)
	if !ok || act.Kind != ActionDrain || act.Server != 2 {
		t.Fatalf("drain = %+v, %v; want drain of 2", act, ok)
	}
	if act.Latency != 0 {
		t.Fatalf("drain latency = %v, want 0", act.Latency)
	}
}

func TestControllerElevatedDeadZone(t *testing.T) {
	p := newPool(t, Config{Max: 2, Initial: 1, UpHold: 2 * time.Second, Cooldown: time.Second})
	c := NewController(p)

	// Saturated for 1.5s, then an Elevated blip resets the hold timer:
	// the later Saturated observations must wait a full UpHold again.
	c.Observe(tick(0), overload.Saturated)
	c.Observe(tick(1500*time.Millisecond), overload.Elevated)
	if _, ok := c.Observe(tick(2*time.Second), overload.Saturated); ok {
		t.Fatal("joined off a stale hold timer after an Elevated reset")
	}
	if _, ok := c.Observe(tick(3900*time.Millisecond), overload.Saturated); ok {
		t.Fatal("joined before the restarted UpHold elapsed")
	}
	if act, ok := c.Observe(tick(4*time.Second), overload.Saturated); !ok || act.Kind != ActionJoin {
		t.Fatalf("Observe = %+v, %v; want join", act, ok)
	}
}

func TestControllerCooldown(t *testing.T) {
	p := newPool(t, Config{Max: 3, Initial: 1, UpHold: time.Second,
		Cooldown: 10 * time.Second, WarmRamp: 1})
	c := NewController(p)

	c.Observe(tick(0), overload.Saturated)
	act, ok := c.Observe(tick(time.Second), overload.Saturated)
	if !ok || act.Kind != ActionJoin {
		t.Fatalf("first join = %+v, %v", act, ok)
	}
	p.NoteServed(act.Server)
	p.Settle(tick(time.Second))

	// Settled and held well past UpHold — but inside the cooldown.
	c.Observe(tick(2*time.Second), overload.Saturated)
	if _, ok := c.Observe(tick(10*time.Second), overload.Saturated); ok {
		t.Fatal("joined inside cooldown")
	}
	if act, ok := c.Observe(tick(11*time.Second), overload.Saturated); !ok || act.Kind != ActionJoin {
		t.Fatalf("post-cooldown join = %+v, %v", act, ok)
	}
}

func TestControllerRespectsPoolBounds(t *testing.T) {
	p := newPool(t, Config{Max: 1, Initial: 1, UpHold: time.Second, DownHold: time.Second, Cooldown: time.Second})
	c := NewController(p)
	// At Max: the join attempt fails and no action is reported.
	c.Observe(tick(0), overload.Saturated)
	if act, ok := c.Observe(tick(time.Second), overload.Saturated); ok {
		t.Fatalf("joined past Max: %+v", act)
	}
	// At Min: the drain attempt fails likewise.
	c.Observe(tick(2*time.Second), overload.Normal)
	if act, ok := c.Observe(tick(3*time.Second), overload.Normal); ok {
		t.Fatalf("drained past Min: %+v", act)
	}
}

func TestStateJSON(t *testing.T) {
	for s, want := range map[State]string{
		Absent: `"absent"`, Warming: `"warming"`, Ready: `"ready"`, Draining: `"draining"`,
	} {
		b, err := s.MarshalJSON()
		if err != nil || string(b) != want {
			t.Errorf("State(%d).MarshalJSON = %s, %v; want %s", s, b, err, want)
		}
	}
}
