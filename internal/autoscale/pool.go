package autoscale

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pool tracks elastic membership for a provisioned index space of Max
// backends. Reads used on the routing hot path — Present, AcceptingNew,
// Penalty, NoteServed — are lock-free atomics, so the dispatch core can
// consult the pool while holding its own locks without adding an edge
// to the lock hierarchy. Transitions and accounting are serialized by
// mu, a leaf lock: nothing else is ever acquired under it.
type Pool struct {
	cfg Config

	state    []atomic.Int32 // State per slot
	served   []atomic.Int64 // requests served since last join (warm ramp)
	size     atomic.Int64   // present (non-Absent) slots
	draining atomic.Int64   // Draining slots, for cheap reap gating
	unsett   atomic.Int64   // Warming + Draining slots

	mu       sync.Mutex
	crashed  []bool // invalidated while Draining: skip rebook accounting
	events   []Event
	joins    int64
	drains   int64
	rebooked int64 // sessions unpinned across completed drains
}

// NewPool builds a pool over cfg.Max slots with slots [0, cfg.Initial)
// Ready. The config is defaulted and validated.
func NewPool(cfg Config) (*Pool, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pool{
		cfg:     cfg,
		state:   make([]atomic.Int32, cfg.Max),
		served:  make([]atomic.Int64, cfg.Max),
		crashed: make([]bool, cfg.Max),
	}
	for i := 0; i < cfg.Initial; i++ {
		p.state[i].Store(int32(Ready))
	}
	p.size.Store(int64(cfg.Initial))
	return p, nil
}

// Config returns the defaulted configuration the pool was built with.
func (p *Pool) Config() Config { return p.cfg }

// Max returns the provisioned index space.
func (p *Pool) Max() int { return p.cfg.Max }

// Size returns the number of present (non-Absent) backends.
func (p *Pool) Size() int { return int(p.size.Load()) }

// State returns slot i's current lifecycle state.
func (p *Pool) State(i int) State {
	if i < 0 || i >= len(p.state) {
		return Absent
	}
	return State(p.state[i].Load())
}

// Present reports whether slot i is part of the pool (any non-Absent
// state). Draining backends are present: bound sessions still route to
// them.
func (p *Pool) Present(i int) bool { return p.State(i) != Absent }

// AcceptingNew reports whether slot i may receive new-session
// placements (Warming or Ready). Draining backends are excluded the
// same way breaker-open backends are.
func (p *Pool) AcceptingNew(i int) bool {
	s := p.State(i)
	return s == Warming || s == Ready
}

// Penalty returns the load inflation a Warming backend carries, ramping
// linearly from WarmPenalty down to zero as it serves WarmRamp
// requests. Ready and Draining backends carry no penalty.
func (p *Pool) Penalty(i int) int {
	if p.State(i) != Warming {
		return 0
	}
	rem := p.cfg.WarmRamp - p.served[i].Load()
	if rem <= 0 {
		return 0
	}
	pen := (int64(p.cfg.WarmPenalty)*rem + p.cfg.WarmRamp - 1) / p.cfg.WarmRamp
	return int(pen)
}

// NoteServed credits slot i with one served request, advancing its warm
// ramp. Lock-free; safe to call from the dispatch core's completion
// path.
func (p *Pool) NoteServed(i int) {
	if i >= 0 && i < len(p.served) {
		p.served[i].Add(1)
	}
}

// Settled reports whether no backend is Warming or Draining; the
// controller holds further scale decisions until the pool settles so
// consecutive actions cannot pipeline faster than their effects land.
func (p *Pool) Settled() bool { return p.unsett.Load() == 0 }

// HasDraining reports whether any backend is Draining; adapters use it
// to gate the (cheap) reap check on their completion paths.
func (p *Pool) HasDraining() bool { return p.draining.Load() > 0 }

// transition flips slot i and maintains the derived counters and event
// log. Caller holds mu.
func (p *Pool) transition(i int, from, to State, now time.Time) {
	p.state[i].Store(int32(to))
	if from == Absent && to != Absent {
		p.size.Add(1)
	}
	if from != Absent && to == Absent {
		p.size.Add(-1)
	}
	if from == Draining {
		p.draining.Add(-1)
	}
	if to == Draining {
		p.draining.Add(1)
	}
	if from == Warming || from == Draining {
		p.unsett.Add(-1)
	}
	if to == Warming || to == Draining {
		p.unsett.Add(1)
	}
	p.events = append(p.events, Event{At: now, Server: i, From: from, To: to})
}

// Join brings the lowest Absent slot into the pool as Warming and
// returns its index. It fails when the pool is already at Max.
func (p *Pool) Join(now time.Time) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.state {
		if State(p.state[i].Load()) != Absent {
			continue
		}
		p.served[i].Store(0)
		p.crashed[i] = false
		p.transition(i, Absent, Warming, now)
		p.joins++
		return i, true
	}
	return -1, false
}

// Drain moves the highest-index Ready or Warming backend — the most
// recently joined, whose cache investment is smallest — to Draining and
// returns its index. It refuses to shrink the pool's serving capacity
// (present minus already-Draining) below Min.
func (p *Pool) Drain(now time.Time) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(p.size.Load()-p.draining.Load()) <= p.cfg.Min {
		return -1, false
	}
	for i := len(p.state) - 1; i >= 0; i-- {
		if from := State(p.state[i].Load()); from == Ready || from == Warming {
			p.transition(i, from, Draining, now)
			p.drains++
			return i, true
		}
	}
	return -1, false
}

// Settle promotes Warming backends whose ramp completed (served >=
// WarmRamp) to Ready, returning the promoted indices. Adapters call it
// from their periodic tick.
func (p *Pool) Settle(now time.Time) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var promoted []int
	for i := range p.state {
		if State(p.state[i].Load()) == Warming && p.served[i].Load() >= p.cfg.WarmRamp {
			p.transition(i, Warming, Ready, now)
			promoted = append(promoted, i)
		}
	}
	return promoted
}

// DrainingSet returns the indices currently in the Draining state,
// lowest first.
func (p *Pool) DrainingSet() []int {
	var out []int
	for i := range p.state {
		if State(p.state[i].Load()) == Draining {
			out = append(out, i)
		}
	}
	return out
}

// Remove completes slot i's drain: Draining → Absent. It returns
// countRebooks=false when the backend crashed mid-drain — its sessions
// were already unpinned by the invalidation path, so counting the
// detach's unpins again would double-count (see NoteInvalidated). ok is
// false when i was not Draining (e.g. a concurrent reaper won).
func (p *Pool) Remove(i int, now time.Time) (countRebooks, ok bool) {
	if i < 0 || i >= len(p.state) {
		return false, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if State(p.state[i].Load()) != Draining {
		return false, false
	}
	countRebooks = !p.crashed[i]
	p.crashed[i] = false
	p.transition(i, Draining, Absent, now)
	return countRebooks, true
}

// NoteRebooked adds n to the sessions-rebooked-by-drain counter. The
// adapter calls it with the unpin count from the core's DetachBackend
// when Remove said to count.
func (p *Pool) NoteRebooked(n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	p.rebooked += int64(n)
	p.mu.Unlock()
}

// NoteInvalidated records that slot i's backend was invalidated (crash
// or breaker trip) out from under the pool. A Draining backend is
// flagged so the eventual Remove does not count the detach's unpins as
// drain rebooks — the invalidation already unpinned every session. A
// Warming backend restarts its ramp: the cache it was warming is gone.
func (p *Pool) NoteInvalidated(i int) {
	if i < 0 || i >= len(p.state) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch State(p.state[i].Load()) {
	case Draining:
		p.crashed[i] = true
	case Warming:
		p.served[i].Store(0)
	}
}

// Counters returns the lifetime join count, drain count, and sessions
// rebooked across completed drains.
func (p *Pool) Counters() (joins, drains, rebooked int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.joins, p.drains, p.rebooked
}

// Events returns a copy of the lifecycle transition log.
func (p *Pool) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

// Status is a JSON-friendly snapshot for the cluster stats endpoint.
type Status struct {
	Min              int     `json:"min"`
	Max              int     `json:"max"`
	Size             int     `json:"size"`
	States           []State `json:"states"`
	Joins            int64   `json:"joins"`
	Drains           int64   `json:"drains"`
	SessionsRebooked int64   `json:"sessions_rebooked"`
}

// Snapshot returns the pool's current membership and counters.
func (p *Pool) Snapshot() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Status{
		Min:              p.cfg.Min,
		Max:              p.cfg.Max,
		Size:             int(p.size.Load()),
		States:           make([]State, len(p.state)),
		Joins:            p.joins,
		Drains:           p.drains,
		SessionsRebooked: p.rebooked,
	}
	for i := range p.state {
		st.States[i] = State(p.state[i].Load())
	}
	return st
}
