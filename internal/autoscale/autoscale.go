// Package autoscale closes the loop between the overload degrade
// ladder and the backend pool size: a clock-injected controller watches
// the dispatch core's tier signal and resizes an elastic pool of
// backends — scale up when Saturated persists past a hold window, scale
// down when Normal holds — with hold + cooldown hysteresis mirroring
// the estimator's MinHold/DownMargin design so the two control loops
// cannot fight (the ladder debounces pressure, the autoscaler debounces
// the ladder).
//
// Pool membership is a per-backend lifecycle over a fixed index space
// [0, Max):
//
//	Absent → Warming → Ready → Draining → Absent
//
// A joining backend starts Warming: the adapter preloads the top-N
// files from the replication rank table (Algorithm 3's popularity
// answer to "what should a cold cache hold") and the backend takes
// ramped weight in the policy layer — its load reads inflated until it
// has served WarmRamp requests — before being promoted Ready. A leaving
// backend is Draining: excluded from new-session routing the same way
// breaker-open backends are, while bound sessions finish or rebook
// through the existing paths; once its bookings drain it is removed and
// its remaining idle sessions re-bind on their next request.
//
// Like overload.Estimator and health.Breaker, everything here is a pure
// state machine over an injected clock: every method that records time
// takes now as an argument, so the simulator drives the subsystem with
// virtual time and stays byte-reproducible (the repo's clockflow
// analyzer covers this package). The Pool's read path (Present,
// AcceptingNew, Penalty, NoteServed) is lock-free so the dispatch core
// can consult it per decision without ordering against any mutex.
package autoscale

import (
	"fmt"
	"time"

	"prord/internal/overload"
)

// State is one backend's position in the elastic-pool lifecycle.
type State int32

const (
	// Absent means the slot is not part of the pool: provisioned
	// capacity, currently unused.
	Absent State = iota
	// Warming means the backend joined and is preloading its cache; it
	// accepts new sessions at ramped weight.
	Warming
	// Ready means the backend carries full weight.
	Ready
	// Draining means the backend is leaving: closed to new sessions,
	// still serving bound ones until its bookings drain.
	Draining
)

// String returns the state's lower-case name.
func (s State) String() string {
	switch s {
	case Absent:
		return "absent"
	case Warming:
		return "warming"
	case Ready:
		return "ready"
	case Draining:
		return "draining"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// MarshalJSON encodes the state by name for the cluster stats endpoint.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Event is one pool lifecycle transition.
type Event struct {
	// At is the transition time on the owner's clock (virtual in the
	// simulator, wall in the live front-end).
	At time.Time
	// Server is the backend index.
	Server int
	// From and To are the states around the transition.
	From, To State
}

// Config tunes the pool and the controller. The zero value of each
// field selects the documented default.
type Config struct {
	// Max is the provisioned index space: backends the substrate can
	// bring online. Required, >= 1.
	Max int
	// Min is the floor of present backends; the controller never drains
	// below it. Default 1.
	Min int
	// Initial is the pool size at start (slots [0, Initial) begin
	// Ready). Default Min.
	Initial int
	// UpHold is how long Saturated (or worse) must persist before the
	// controller joins a backend; it mirrors the estimator's MinHold so
	// a tier blip cannot trigger a scale event. Default 2s.
	UpHold time.Duration
	// DownHold is how long Normal must persist before the controller
	// drains a backend. Deliberately longer than UpHold: adding capacity
	// is cheap, removing it re-warms caches. Default 10s.
	DownHold time.Duration
	// Cooldown is the minimum spacing between scale decisions, over and
	// above the hold windows. Default 5s.
	Cooldown time.Duration
	// WarmTop is how many rank-table files a joining backend preloads.
	// Default 32.
	WarmTop int
	// WarmRamp is how many served requests promote Warming to Ready;
	// until then the backend's load reads inflated by the decaying
	// penalty. Default 64.
	WarmRamp int64
	// WarmPenalty is the load penalty a just-joined backend carries; it
	// decays linearly to zero over WarmRamp served requests. Default 8.
	WarmPenalty int
	// ColdJoin disables the warm preload (the bench control arm:
	// joining backends start with empty caches and no rank-table help).
	ColdJoin bool
}

// WithDefaults fills unset fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Initial <= 0 {
		c.Initial = c.Min
	}
	if c.UpHold <= 0 {
		c.UpHold = 2 * time.Second
	}
	if c.DownHold <= 0 {
		c.DownHold = 10 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.WarmTop <= 0 {
		c.WarmTop = 32
	}
	if c.WarmRamp <= 0 {
		c.WarmRamp = 64
	}
	if c.WarmPenalty <= 0 {
		c.WarmPenalty = 8
	}
	return c
}

// Validate checks the configuration after defaults are applied.
func (c Config) Validate() error {
	if c.Max < 1 {
		return fmt.Errorf("autoscale: Max must be >= 1, got %d", c.Max)
	}
	if c.Min > c.Max {
		return fmt.Errorf("autoscale: Min %d exceeds Max %d", c.Min, c.Max)
	}
	if c.Initial < c.Min || c.Initial > c.Max {
		return fmt.Errorf("autoscale: Initial %d outside [Min %d, Max %d]", c.Initial, c.Min, c.Max)
	}
	return nil
}

// Tier aliases the overload ladder for the controller's trigger logic.
type Tier = overload.Tier
