package autoscale

import (
	"sync"
	"time"

	"prord/internal/overload"
)

// ActionKind labels a controller decision.
type ActionKind int

const (
	// ActionJoin adds a backend (scale up).
	ActionJoin ActionKind = iota + 1
	// ActionDrain starts removing a backend (scale down).
	ActionDrain
)

// String returns the action kind's lower-case name.
func (k ActionKind) String() string {
	switch k {
	case ActionJoin:
		return "join"
	case ActionDrain:
		return "drain"
	}
	return "none"
}

// Action is one scale decision the adapter must act on: for a join,
// warm-preload the new backend and grow the core's capacity; for a
// drain, nothing immediate — the backend leaves once its bookings
// drain and the adapter reaps it.
type Action struct {
	Kind   ActionKind
	Server int
	// Latency is the scale-up decision latency: how long the trigger
	// tier persisted before the controller acted (the hold window plus
	// any cooldown or settle suppression). Zero for drains.
	Latency time.Duration
}

// Controller turns the overload tier stream into pool resize decisions
// with hold + cooldown hysteresis:
//
//   - Saturated or worse persisting UpHold → join one backend.
//   - Normal persisting DownHold → drain one backend.
//   - Elevated is the dead zone: both hold timers reset, mirroring the
//     estimator's own DownMargin band so the two ladders cannot
//     oscillate against each other.
//
// Decisions are additionally spaced by Cooldown and suppressed while
// any backend is Warming or Draining, so one decision's effects land
// before the next is taken. The controller is a pure state machine over
// the injected clock: Observe(now, tier) is the only input.
type Controller struct {
	mu   sync.Mutex
	cfg  Config
	pool *Pool

	aboveSince time.Time
	hasAbove   bool
	belowSince time.Time
	hasBelow   bool
	lastAct    time.Time
	hasAct     bool

	upLatencies []time.Duration
}

// NewController builds a controller driving pool. The config is the
// pool's (already defaulted) config.
func NewController(pool *Pool) *Controller {
	return &Controller{cfg: pool.Config(), pool: pool}
}

// Observe feeds one tier observation at now and returns the scale
// action taken, if any. Adapters call it from their periodic tick (the
// simulator on virtual time, the live front-end on a wall-clock
// ticker) and act on the returned decision.
func (c *Controller) Observe(now time.Time, tier Tier) (Action, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()

	switch {
	case tier >= overload.Saturated:
		c.hasBelow = false
		if !c.hasAbove {
			c.hasAbove, c.aboveSince = true, now
		}
	case tier == overload.Normal:
		c.hasAbove = false
		if !c.hasBelow {
			c.hasBelow, c.belowSince = true, now
		}
	default:
		// Elevated: the hysteresis dead zone.
		c.hasAbove, c.hasBelow = false, false
		return Action{}, false
	}

	if c.hasAct && now.Sub(c.lastAct) < c.cfg.Cooldown {
		return Action{}, false
	}
	if !c.pool.Settled() {
		return Action{}, false
	}

	if c.hasAbove && now.Sub(c.aboveSince) >= c.cfg.UpHold {
		idx, ok := c.pool.Join(now)
		if !ok {
			return Action{}, false
		}
		lat := now.Sub(c.aboveSince)
		c.upLatencies = append(c.upLatencies, lat)
		c.hasAbove = false
		c.hasAct, c.lastAct = true, now
		return Action{Kind: ActionJoin, Server: idx, Latency: lat}, true
	}
	if c.hasBelow && now.Sub(c.belowSince) >= c.cfg.DownHold {
		idx, ok := c.pool.Drain(now)
		if !ok {
			return Action{}, false
		}
		c.hasBelow = false
		c.hasAct, c.lastAct = true, now
		return Action{Kind: ActionDrain, Server: idx}, true
	}
	return Action{}, false
}

// ScaleUpLatencies returns the decision latency of every join the
// controller has taken, in order.
func (c *Controller) ScaleUpLatencies() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.upLatencies))
	copy(out, c.upLatencies)
	return out
}
