package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	samples := []time.Duration{
		time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond,
	}
	var sum time.Duration
	for _, s := range samples {
		h.Observe(s)
		sum += s
	}
	if h.Count() != int64(len(samples)) {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != sum/time.Duration(len(samples)) {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 10*time.Millisecond || h.Min() != time.Microsecond {
		t.Fatalf("Max/Min = %v/%v", h.Max(), h.Min())
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %v, want %v", h.Sum(), sum)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative sample should clamp to zero")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		var h Histogram
		for _, r := range raw {
			h.Observe(time.Duration(r) * time.Microsecond)
		}
		q50 := h.Quantile(0.5)
		q90 := h.Quantile(0.9)
		q99 := h.Quantile(0.99)
		return q50 <= q90 && q90 <= q99 && q99 <= h.Max() || h.Count() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	q := h.Quantile(0.5)
	// The true median is 500µs; the log-bucket estimate must be within
	// one power of two above it.
	if q < 500*time.Microsecond || q > 1024*time.Microsecond {
		t.Fatalf("Quantile(0.5) = %v, want within [500µs, 1024µs]", q)
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("Quantile(1) = %v, want max %v", h.Quantile(1), h.Max())
	}
	if h.Quantile(-1) > h.Quantile(0.1) {
		t.Fatal("clamped q<0 should be a low quantile")
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	// 512 samples filling one log bucket ([512µs, 1024µs)) uniformly: the
	// known quantiles fall inside the bucket, not on its boundary.
	var h Histogram
	for us := 512; us < 1024; us++ {
		h.Observe(time.Duration(us) * time.Microsecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 768 * time.Microsecond},
		{0.9, 972 * time.Microsecond},
		{0.99, 1018 * time.Microsecond},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if diff := got - c.want; diff < -2*time.Microsecond || diff > 2*time.Microsecond {
			t.Errorf("Quantile(%v) = %v, want %v +/- 2µs", c.q, got, c.want)
		}
	}
	// The pre-interpolation estimator returned the bucket's upper
	// boundary clamped to the max (1023µs) for every quantile above —
	// overstating the median by ~33% here and p99 by up to 2x in general.
	if h.Quantile(0.99) >= h.Max() {
		t.Errorf("Quantile(0.99) = %v, want below the boundary estimate %v", h.Quantile(0.99), h.Max())
	}
}

func TestHistogramQuantileClampsToObserved(t *testing.T) {
	// Identical samples must report the sample value at every quantile
	// (the [Min, Max] clamp collapses the bucket-width uncertainty).
	var h Histogram
	for i := 0; i < 9; i++ {
		h.Observe(700 * time.Microsecond)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 700*time.Microsecond {
			t.Errorf("Quantile(%v) = %v, want 700µs", q, got)
		}
	}
	// Bimodal: the quantiles must land in the correct mode's bucket.
	var b Histogram
	for i := 0; i < 100; i++ {
		b.Observe(100 * time.Microsecond) // bucket [64µs, 128µs)
	}
	for i := 0; i < 100; i++ {
		b.Observe(1000 * time.Microsecond) // bucket [512µs, 1024µs)
	}
	if q := b.Quantile(0.25); q < 100*time.Microsecond || q > 128*time.Microsecond {
		t.Errorf("Quantile(0.25) = %v, want within low mode's bucket", q)
	}
	if q := b.Quantile(0.75); q < 512*time.Microsecond || q > 1000*time.Microsecond {
		t.Errorf("Quantile(0.75) = %v, want within high mode's bucket", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	b.Observe(3 * time.Millisecond)
	b.Observe(time.Microsecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged Count = %d, want 3", a.Count())
	}
	if a.Max() != 3*time.Millisecond || a.Min() != time.Microsecond {
		t.Fatalf("merged Max/Min = %v/%v", a.Max(), a.Min())
	}
}

func TestCollectorRates(t *testing.T) {
	var c Collector
	c.Completed = 200
	c.MemoryHits = 80
	c.MemoryMisses = 20
	c.Dispatches = 50
	c.Prefetches = 10
	c.PrefetchHits = 7
	if c.HitRate() != 0.8 {
		t.Fatalf("HitRate = %v", c.HitRate())
	}
	if c.Throughput(10*time.Second) != 20 {
		t.Fatalf("Throughput = %v", c.Throughput(10*time.Second))
	}
	if c.Throughput(0) != 0 {
		t.Fatal("zero elapsed should yield zero throughput")
	}
	if c.PrefetchAccuracy() != 0.7 {
		t.Fatalf("PrefetchAccuracy = %v", c.PrefetchAccuracy())
	}
	if c.DispatchesPerRequest() != 0.25 {
		t.Fatalf("DispatchesPerRequest = %v", c.DispatchesPerRequest())
	}
	if c.String() == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestCollectorZeroDivisions(t *testing.T) {
	var c Collector
	if c.HitRate() != 0 || c.PrefetchAccuracy() != 0 || c.DispatchesPerRequest() != 0 {
		t.Fatal("zero-sample rates should be 0")
	}
}
