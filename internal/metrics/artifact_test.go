package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for us := 512; us < 1024; us++ {
		h.Observe(time.Duration(us) * time.Microsecond)
	}
	s := h.Summary()
	if s.Count != 512 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.MinUS != 512 || s.MaxUS != 1023 {
		t.Fatalf("Min/Max = %d/%d", s.MinUS, s.MaxUS)
	}
	if s.P50US < 766 || s.P50US > 770 {
		t.Fatalf("P50 = %dµs, want ~768", s.P50US)
	}
	if s.P99US >= s.MaxUS {
		t.Fatalf("P99 = %dµs, want interpolated below max %d", s.P99US, s.MaxUS)
	}
}

func TestBenchArtifactEncodeStable(t *testing.T) {
	build := func() *BenchArtifact {
		var h Histogram
		h.Observe(3 * time.Millisecond)
		h.Observe(5 * time.Millisecond)
		return &BenchArtifact{
			Tool:     "test",
			Config:   map[string]any{"backends": 2, "seed": int64(1)},
			Workload: map[string]any{"requests": 2},
			Runs: []BenchRun{{
				Name:          "PRORD",
				Requests:      2,
				ThroughputRPS: Round(123.4567, 1),
				Latency:       h.Summary(),
				HitRate:       Round(0.98765, 4),
				Backends:      []BackendSample{{Requests: 1}, {Requests: 1}},
				LoadSkew:      Skew([]int64{1, 1}),
				Sim:           &SimComparison{ThroughputRPS: 120, MeanUS: 4000, ThroughputDeltaPct: DeltaPct(123.5, 120)},
			}},
		}
	}
	var a, b bytes.Buffer
	if err := build().Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Encode(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two encodings differ:\n%s\n---\n%s", a.String(), b.String())
	}
	for _, want := range []string{`"schema": "prord-bench/2"`, `"p99_us"`, `"throughput_delta_pct"`, `"load_skew": 1`} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("encoding missing %q:\n%s", want, a.String())
		}
	}
	// GeneratedAt stays out of the encoding until stamped, so the
	// deterministic portion can be diffed directly.
	if strings.Contains(a.String(), "generated_at") {
		t.Error("unstamped artifact should omit generated_at")
	}
	art := build()
	art.Stamp(time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC))
	var c bytes.Buffer
	if err := art.Encode(&c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), `"generated_at": "2026-08-05T12:00:00Z"`) {
		t.Errorf("stamped artifact missing timestamp:\n%s", c.String())
	}
}

func TestRoundAndHelpers(t *testing.T) {
	if Round(1.23456, 2) != 1.23 {
		t.Fatalf("Round = %v", Round(1.23456, 2))
	}
	if Round(-0.0001, 2) != 0 {
		t.Fatalf("Round should fold -0 into 0, got %v", Round(-0.0001, 2))
	}
	if DeltaPct(110, 100) != 10 {
		t.Fatalf("DeltaPct = %v", DeltaPct(110, 100))
	}
	if DeltaPct(1, 0) != 0 {
		t.Fatal("DeltaPct with zero baseline should be 0")
	}
	if Skew([]int64{3, 1}) != 1.5 {
		t.Fatalf("Skew = %v", Skew([]int64{3, 1}))
	}
	if Skew(nil) != 0 || Skew([]int64{0, 0}) != 0 {
		t.Fatal("Skew of empty/zero counts should be 0")
	}
}
