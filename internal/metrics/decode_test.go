package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestDecodeBenchArtifactCurrent(t *testing.T) {
	var h Histogram
	h.Observe(1500 * time.Nanosecond)
	h.Observe(2500 * time.Nanosecond)
	art := BenchArtifact{
		Tool: "dispatch-bench",
		Runs: []BenchRun{{Name: "route-done", Requests: 2, ThroughputRPS: 123.4, Latency: h.Summary()}},
	}
	var buf bytes.Buffer
	if err := art.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBenchArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != BenchSchema {
		t.Errorf("schema = %q, want %q", got.Schema, BenchSchema)
	}
	if got.Runs[0].Latency.MeanNS != art.Runs[0].Latency.MeanNS {
		t.Errorf("mean_ns = %d, want %d", got.Runs[0].Latency.MeanNS, art.Runs[0].Latency.MeanNS)
	}
	if got.Runs[0].ThroughputRPS != 123.4 {
		t.Errorf("throughput = %v, want 123.4", got.Runs[0].ThroughputRPS)
	}
}

func TestDecodeBenchArtifactUpgradesV1(t *testing.T) {
	v1 := `{
  "schema": "prord-bench/1",
  "tool": "dispatch-bench",
  "runs": [{
    "name": "route-done",
    "requests": 10,
    "errors": 0,
    "throughput_rps": 0,
    "latency": {"count": 10, "mean_us": 3, "min_us": 1, "max_us": 9, "p50_us": 2, "p90_us": 7, "p99_us": 9},
    "hit_rate": 0,
    "dispatch_per_request": 1
  }]
}`
	got, err := DecodeBenchArtifact(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != BenchSchema {
		t.Errorf("schema = %q, want upgraded %q", got.Schema, BenchSchema)
	}
	l := got.Runs[0].Latency
	if l.MeanNS != 3000 || l.MinNS != 1000 || l.MaxNS != 9000 || l.P99NS != 9000 {
		t.Errorf("ns fields not reconstructed from us: %+v", l)
	}
	if l.MeanUS != 3 {
		t.Errorf("mean_us = %d, want 3 preserved", l.MeanUS)
	}
}

func TestDecodeBenchArtifactRejectsUnknownSchema(t *testing.T) {
	if _, err := DecodeBenchArtifact(strings.NewReader(`{"schema": "prord-bench/99", "runs": []}`)); err == nil {
		t.Fatal("want error for unknown schema")
	}
}
