// Package metrics collects the measurements the paper's evaluation
// reports: throughput, average response time, frequency of dispatches,
// and cache hit rates (§5.2), plus latency histograms for percentile
// reporting.
package metrics

import (
	"fmt"
	"math"
	"time"
)

// Histogram is a log-scale latency histogram: bucket i covers
// [2^i, 2^(i+1)) microseconds. Exact count, sum and max are kept alongside
// the buckets so means are exact and only percentiles are approximate.
type Histogram struct {
	buckets [40]int64 // 2^40 µs ≈ 13 days: far beyond any simulated latency
	count   int64
	sum     time.Duration
	max     time.Duration
	min     time.Duration
}

// Observe records one latency sample; negative samples count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	idx := 0
	if us > 0 {
		idx = int(math.Log2(float64(us)))
		if idx >= len(h.buckets) {
			idx = len(h.buckets) - 1
		}
	}
	h.buckets[idx]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if h.count == 1 || d < h.min {
		h.min = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the exact mean latency, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() time.Duration { return h.min }

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Quantile estimates the q-quantile (q in [0,1]) by locating the bucket
// holding the requested rank and interpolating linearly within it,
// assuming samples spread uniformly across the bucket. The estimate is
// clamped to the observed [Min, Max], so single-bucket distributions and
// the extreme quantiles stay exact at the edges.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Fractional rank of the requested quantile among the sorted samples.
	rank := q * float64(h.count-1)
	var before float64 // samples in earlier buckets
	for i, b := range h.buckets {
		if b == 0 {
			continue
		}
		n := float64(b)
		if rank >= before+n {
			before += n
			continue
		}
		// Bucket i covers [2^i, 2^(i+1)) µs, except bucket 0 which also
		// holds the sub-microsecond samples and so starts at 0.
		lower := time.Duration(0)
		if i > 0 {
			lower = time.Duration(1<<uint(i)) * time.Microsecond
		}
		upper := time.Duration(1<<(uint(i)+1)) * time.Microsecond
		// Place the bucket's samples at the centers of n equal sub-ranges.
		f := (rank - before + 0.5) / n
		est := lower + time.Duration(f*float64(upper-lower))
		if est < h.min {
			est = h.min
		}
		if est > h.max {
			est = h.max
		}
		return est
	}
	return h.max
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	if other.count > 0 {
		if h.count == 0 || other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.count += other.count
	h.sum += other.sum
}

// Collector accumulates every counter the experiments report.
type Collector struct {
	// Completed counts requests fully serviced (response delivered).
	Completed int64
	// MemoryHits counts requests served from a backend's memory.
	MemoryHits int64
	// MemoryMisses counts requests that had to read the disk.
	MemoryMisses int64
	// Dispatches counts distributor->dispatcher consultations (Fig. 6's
	// "frequency of dispatches").
	Dispatches int64
	// Handoffs counts TCP handoffs performed.
	Handoffs int64
	// DirectForwards counts requests forwarded without a dispatch (the
	// PRORD fast path for embedded objects / prefetched pages).
	DirectForwards int64
	// Prefetches counts pages pulled into memory ahead of a request.
	Prefetches int64
	// PrefetchHits counts requests answered out of a prefetched copy,
	// including requests that piggybacked on an in-flight prefetch read.
	// One prefetch may serve several requests, so PrefetchAccuracy can
	// exceed 1 (uses per prefetch).
	PrefetchHits int64
	// Replications counts file copies pushed by the replication manager.
	Replications int64
	// RemoteFetches counts responses supplied from another backend's
	// memory over the internal network (back-end forwarding).
	RemoteFetches int64
	// Failovers counts requests retried on another backend after their
	// assigned backend crashed mid-service.
	Failovers int64
	// Failed counts requests dropped because no backend was alive.
	Failed int64
	// Shed counts demand requests refused by Critical-tier admission
	// control (the overload degrade ladder's last rung).
	Shed int64
	// PrefetchShed counts proactive prefetch passes suppressed while the
	// cluster sat at Elevated tier or above.
	PrefetchShed int64
	// ReplicationsShed counts replication refresh rounds skipped at
	// Elevated tier or above.
	ReplicationsShed int64
	// FleetForwards counts requests that arrived at a distributor replica
	// that does not own the session and were forwarded one hop to the
	// ring owner (multi-distributor fleet mode).
	FleetForwards int64
	// BytesServed totals response bytes delivered to clients.
	BytesServed int64
	// DynamicServed counts requests for generated (uncacheable) content;
	// they are neither memory hits nor misses.
	DynamicServed int64
	// Response holds per-request latency samples.
	Response Histogram
}

// HitRate returns the memory hit fraction over all cache lookups.
func (c *Collector) HitRate() float64 {
	total := c.MemoryHits + c.MemoryMisses
	if total == 0 {
		return 0
	}
	return float64(c.MemoryHits) / float64(total)
}

// Throughput returns completed requests per second over elapsed.
func (c *Collector) Throughput(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Completed) / elapsed.Seconds()
}

// PrefetchAccuracy returns prefetch uses per prefetch issued (may exceed
// 1 when one prefetched copy serves several requests).
func (c *Collector) PrefetchAccuracy() float64 {
	if c.Prefetches == 0 {
		return 0
	}
	return float64(c.PrefetchHits) / float64(c.Prefetches)
}

// DispatchesPerRequest returns the dispatcher-consultation rate.
func (c *Collector) DispatchesPerRequest() float64 {
	if c.Completed == 0 {
		return 0
	}
	return float64(c.Dispatches) / float64(c.Completed)
}

// String summarizes the collector for logs and CLI output.
func (c *Collector) String() string {
	return fmt.Sprintf(
		"completed=%d hit-rate=%.3f dispatches=%d handoffs=%d forwards=%d prefetches=%d (acc %.2f) repl=%d mean-resp=%v",
		c.Completed, c.HitRate(), c.Dispatches, c.Handoffs, c.DirectForwards,
		c.Prefetches, c.PrefetchAccuracy(), c.Replications, c.Response.Mean())
}
