package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// BenchSchema versions the benchmark artifact layout shared by
// prord-bench and prord-loadgen (BENCH_*.json). Bump it whenever a field
// is renamed, removed or changes meaning; adding fields is
// backward-compatible and keeps the version.
//
// prord-bench/2 switched the latency summaries to nanosecond
// resolution: the dispatch core's sub-microsecond decision latencies
// truncated to zero in the v1 microsecond fields, flattening the
// bench trendline. The *_us fields remain as derived aliases, and
// DecodeBenchArtifact upgrades v1 artifacts on read.
const BenchSchema = "prord-bench/2"

// benchSchemaV1 is the superseded microsecond-resolution layout.
const benchSchemaV1 = "prord-bench/1"

// LatencySummary is a latency histogram reduced to the quantities the
// artifacts report. All durations are integers so the JSON encoding is
// stable across platforms and runs; nanoseconds are authoritative and
// the microsecond fields are truncated aliases kept for v1 consumers.
type LatencySummary struct {
	Count  int64 `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	MinNS  int64 `json:"min_ns"`
	MaxNS  int64 `json:"max_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
	MeanUS int64 `json:"mean_us"`
	MinUS  int64 `json:"min_us"`
	MaxUS  int64 `json:"max_us"`
	P50US  int64 `json:"p50_us"`
	P90US  int64 `json:"p90_us"`
	P99US  int64 `json:"p99_us"`
	P999US int64 `json:"p999_us"`
}

// Summary reduces the histogram to its artifact form.
func (h *Histogram) Summary() LatencySummary {
	s := LatencySummary{
		Count:  h.Count(),
		MeanNS: h.Mean().Nanoseconds(),
		MinNS:  h.Min().Nanoseconds(),
		MaxNS:  h.Max().Nanoseconds(),
		P50NS:  h.Quantile(0.5).Nanoseconds(),
		P90NS:  h.Quantile(0.9).Nanoseconds(),
		P99NS:  h.Quantile(0.99).Nanoseconds(),
		P999NS: h.Quantile(0.999).Nanoseconds(),
	}
	s.fillUS()
	return s
}

// fillUS derives the microsecond aliases from the nanosecond fields.
func (s *LatencySummary) fillUS() {
	s.MeanUS = s.MeanNS / 1000
	s.MinUS = s.MinNS / 1000
	s.MaxUS = s.MaxNS / 1000
	s.P50US = s.P50NS / 1000
	s.P90US = s.P90NS / 1000
	s.P99US = s.P99NS / 1000
	s.P999US = s.P999NS / 1000
}

// upgradeV1 reconstructs the nanosecond fields of a v1 summary from
// its microsecond values (the best available resolution). v1 never
// recorded a p999, so that field stays zero rather than inventing one.
func (s *LatencySummary) upgradeV1() {
	s.MeanNS = s.MeanUS * 1000
	s.MinNS = s.MinUS * 1000
	s.MaxNS = s.MaxUS * 1000
	s.P50NS = s.P50US * 1000
	s.P90NS = s.P90US * 1000
	s.P99NS = s.P99US * 1000
	s.P999NS = s.P999US * 1000
}

// BackendSample is one backend's share of a benchmark run.
type BackendSample struct {
	// Requests counts demand requests routed to the backend.
	Requests int64 `json:"requests"`
	// Prefetches counts prefetch hints the backend received.
	Prefetches int64 `json:"prefetches"`
	// HitRate is the backend's memory hit fraction over demand requests.
	HitRate float64 `json:"hit_rate"`
	// BreakerTrips counts the front-end circuit breaker's trips for this
	// backend (0 on fault-free runs and for tools without breakers).
	BreakerTrips int64 `json:"breaker_trips"`
}

// TierTransition is one overload degrade-ladder move in artifact form:
// a millisecond offset from the first request plus the tier names. Sim
// transitions are deterministic (virtual time) and covered by the
// byte-stability guarantee; live transitions are measured wall-clock
// quantities and are not.
type TierTransition struct {
	AtMS int64  `json:"at_ms"`
	From string `json:"from"`
	To   string `json:"to"`
}

// SimComparison is the live-vs-simulated delta block of a run: the same
// trace and policy executed on the discrete-event cluster model, and the
// relative differences of the headline metrics.
type SimComparison struct {
	ThroughputRPS float64 `json:"throughput_rps"`
	MeanUS        int64   `json:"mean_us"`
	HitRate       float64 `json:"hit_rate"`
	// ThroughputDeltaPct is 100*(live-sim)/sim for throughput.
	ThroughputDeltaPct float64 `json:"throughput_delta_pct"`
	// MeanLatencyDeltaPct is 100*(live-sim)/sim for mean latency.
	MeanLatencyDeltaPct float64 `json:"mean_latency_delta_pct"`
	// Failovers counts the simulator's crash-interrupted requests
	// retried on another backend. The simulator only fails over work
	// caught mid-service by a crash (later requests route around the
	// dead backend instantly), so this is expected to undercount the
	// live front-end's figure, which masks every failed attempt.
	Failovers int64 `json:"failovers"`
	// Shed counts simulated demand requests refused by Critical-tier
	// admission control. Both sides run the decision core's bounded
	// accept queue, but service times differ (simulated Table-1 costs vs
	// a real shared-machine scheduler), so queue occupancy — and with it
	// the shed count — still drifts. The residual is surfaced as
	// ShedDeltaPct rather than documented prose.
	Shed int64 `json:"shed,omitempty"`
	// ShedDeltaPct is 100*(live-sim)/sim for the shed counts, the
	// explicit live-vs-sim admission-control delta. 0 when the simulator
	// shed nothing.
	ShedDeltaPct float64 `json:"shed_delta_pct,omitempty"`
	// PrefetchShed counts simulated proactive passes suppressed at
	// Elevated tier or above.
	PrefetchShed int64 `json:"prefetch_shed,omitempty"`
	// ReplicationsShed counts simulated replication rounds skipped at
	// Elevated tier or above.
	ReplicationsShed int64 `json:"replications_shed,omitempty"`
	// TierTransitions is the simulator's degrade-ladder history; it is
	// deterministic and part of the byte-stability guarantee.
	TierTransitions []TierTransition `json:"tier_transitions,omitempty"`
	// FleetForwards counts simulated requests forwarded from their
	// hash-pinned ingress distributor to the session's ring owner
	// (fleet runs only). The live counterpart is BenchRun.Fleet.
	FleetForwards int64 `json:"fleet_forwards,omitempty"`
}

// AutoscaleSummary is the elastic-pool block of a benchmark run:
// membership churn, drain accounting and the warm-join payoff.
type AutoscaleSummary struct {
	// Joins and Drains count pool membership changes over the run.
	Joins  int64 `json:"joins"`
	Drains int64 `json:"drains"`
	// SessionsRebooked counts sessions unpinned by completed drains and
	// re-bound through the normal routing path.
	SessionsRebooked int64 `json:"sessions_rebooked"`
	// FinalSize is the pool size when the run ended.
	FinalSize int `json:"final_size"`
	// ScaleUpLatencyMS are the organic controller's join decision
	// latencies — how long the tier sat at Saturated before each join —
	// in milliseconds. Empty for scripted schedules.
	ScaleUpLatencyMS []int64 `json:"scale_up_latency_ms,omitempty"`
	// WarmHitRate and ColdHitRate are the joined backend's first-minute
	// memory hit rates with and without the rank-table warm preload, on
	// the same seed and scale schedule. WarmColdDelta is their
	// difference (positive = warming paid off).
	WarmHitRate   float64 `json:"warm_hit_rate,omitempty"`
	ColdHitRate   float64 `json:"cold_hit_rate,omitempty"`
	WarmColdDelta float64 `json:"warm_cold_delta,omitempty"`
}

// GraySummary is the gray-failure resilience block of a benchmark run:
// what the latency-outlier detector did and how the hedging layer's
// backup requests fared.
type GraySummary struct {
	// Ejections and Recoveries count detector transitions into and out
	// of the Degraded state over the run.
	Ejections  int64 `json:"ejections"`
	Recoveries int64 `json:"recoveries"`
	// GrayRebinds counts sessions moved off a degraded backend by the
	// progressive rebind path (distinct from crash-driven failovers).
	GrayRebinds int64 `json:"gray_rebinds"`
	// HedgesFired counts backup requests launched after the hedge delay;
	// HedgeWins counts backups that answered before their primary, and
	// HedgeCancels counts backups canceled because the primary won.
	HedgesFired  int64 `json:"hedges_fired"`
	HedgeWins    int64 `json:"hedge_wins"`
	HedgeCancels int64 `json:"hedge_cancels"`
}

// FleetSummary is the multi-distributor block of a benchmark run:
// session-ownership partitioning outcomes aggregated across the
// front-end fleet.
type FleetSummary struct {
	// Replicas is the fleet size (front-end distributor count).
	Replicas int `json:"replicas"`
	// RingEpoch counts ownership-ring membership publishes (1 for a
	// fleet whose membership never changed).
	RingEpoch uint64 `json:"ring_epoch"`
	// Forwards counts requests that entered through a replica that does
	// not own their session and were handed to the ring owner.
	Forwards int64 `json:"forwards"`
	// ForwardRate is Forwards per demand request the fleet accepted
	// (warmup included — forwarding runs the whole run). With ingress
	// sprayed uniformly it converges to (k-1)/k for k replicas.
	ForwardRate float64 `json:"forward_rate"`
	// OwnershipRebinds counts stale local session bindings released when
	// a foreign touch revealed the ring had moved the session elsewhere.
	OwnershipRebinds int64 `json:"ownership_rebinds"`
	// AffinityBreaches counts replayed sessions that saw responses from
	// more than one replica over a single connection — the session-
	// affinity invariant the load generator asserts. Expected 0.
	AffinityBreaches int64 `json:"affinity_breaches"`
}

// BenchRun is one measured cell of a benchmark artifact (one policy on
// one workload).
type BenchRun struct {
	// Name identifies the cell, conventionally the policy name.
	Name string `json:"name"`
	// Requests counts completed demand requests in the measurement
	// window (warmup excluded).
	Requests int64 `json:"requests"`
	// WarmupRequests counts completions excluded as warmup.
	WarmupRequests int64 `json:"warmup_requests,omitempty"`
	// Errors counts transport failures and 5xx responses.
	Errors int64 `json:"errors"`
	// ThroughputRPS is completed requests per second of measurement.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency summarizes client-visible response times (measurement
	// window only).
	Latency LatencySummary `json:"latency"`
	// FrontLatency summarizes the front-end's own service time per
	// request (routing + proxied backend round-trip, whole run) when the
	// producing tool observes it.
	FrontLatency *LatencySummary `json:"front_latency,omitempty"`
	// HitRate is the aggregate backend memory hit fraction.
	HitRate float64 `json:"hit_rate"`
	// DispatchPerRequest is dispatcher consultations per demand request
	// (Fig. 6's metric).
	DispatchPerRequest float64 `json:"dispatch_per_request"`
	// Handoffs counts connection handoffs at the front-end.
	Handoffs int64 `json:"handoffs"`
	// Failovers counts requests transparently re-routed to a healthy
	// backend after a failed attempt (the client saw a success).
	Failovers int64 `json:"failovers"`
	// Retries counts retry attempts the front-end issued while failing
	// over; at most one per request.
	Retries int64 `json:"retries"`
	// Prefetches counts prefetch hints issued by the front-end.
	Prefetches int64 `json:"prefetches,omitempty"`
	// GoodputRPS is successfully answered demand requests per second of
	// measurement. Only set on runs with overload control enabled, where
	// the offered load (goodput + shed) exceeds it; without shedding it
	// would duplicate ThroughputRPS.
	GoodputRPS float64 `json:"goodput_rps,omitempty"`
	// Shed counts demand requests refused with 503 by Critical-tier
	// admission control (clients saw Retry-After, not an error).
	Shed int64 `json:"shed,omitempty"`
	// PrefetchShed counts proactive prefetch passes the front-end
	// suppressed at Elevated tier or above.
	PrefetchShed int64 `json:"prefetch_shed,omitempty"`
	// PrefetchHintsDropped counts prefetch hints lost to a full hint
	// queue (distinct from PrefetchShed, which never generated the hint).
	PrefetchHintsDropped int64 `json:"prefetch_hints_dropped,omitempty"`
	// TierTransitions is the live front-end's degrade-ladder history.
	// Offsets are measured wall-clock quantities, excluded from the
	// byte-stability guarantee (the simulator's deterministic ladder is
	// under Sim).
	TierTransitions []TierTransition `json:"tier_transitions,omitempty"`
	// Autoscale holds the elastic-pool outcome when the run scaled.
	Autoscale *AutoscaleSummary `json:"autoscale,omitempty"`
	// Gray holds the gray-failure resilience outcome when the detection
	// or hedging layer was enabled.
	Gray *GraySummary `json:"gray,omitempty"`
	// Fleet holds the multi-distributor outcome when the run sprayed
	// load across a fleet of front-end replicas.
	Fleet *FleetSummary `json:"fleet,omitempty"`
	// Backends holds per-backend request counts and hit rates in backend
	// order.
	Backends []BackendSample `json:"backends,omitempty"`
	// LoadSkew is max/mean of per-backend demand request counts (1.0 =
	// perfectly balanced).
	LoadSkew float64 `json:"load_skew,omitempty"`
	// Sim holds the live-vs-sim comparison when the simulator was run.
	Sim *SimComparison `json:"sim,omitempty"`
}

// BenchArtifact is the versioned machine-readable result of a benchmark
// campaign. Two runs with the same seed and configuration encode
// byte-identically except for GeneratedAt (and any genuinely measured
// wall-clock quantities the producing tool documents).
type BenchArtifact struct {
	Schema string `json:"schema"`
	// Tool names the producing command ("prord-bench", "prord-loadgen").
	Tool string `json:"tool"`
	// GeneratedAt is the single wall-clock timestamp of the artifact
	// (RFC 3339). It is the only field two identically-seeded runs are
	// expected to differ in besides measured timings.
	GeneratedAt string `json:"generated_at,omitempty"`
	// Config echoes the producing tool's effective configuration.
	Config any `json:"config,omitempty"`
	// Workload describes the deterministic request schedule (counts,
	// digest) so artifacts from different machines can be compared.
	Workload any        `json:"workload,omitempty"`
	Runs     []BenchRun `json:"runs"`
}

// Stamp sets GeneratedAt from t in the artifact's canonical format.
func (a *BenchArtifact) Stamp(t time.Time) {
	a.GeneratedAt = t.UTC().Format(time.RFC3339)
}

// Encode writes the artifact as stable indented JSON: struct field order
// is fixed by declaration, map keys are sorted by encoding/json, and all
// durations are integer microseconds. Callers should round free-form
// floats with Round before setting them.
func (a *BenchArtifact) Encode(w io.Writer) error {
	if a.Schema == "" {
		a.Schema = BenchSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("metrics: encoding bench artifact: %w", err)
	}
	return nil
}

// DecodeBenchArtifact reads a benchmark artifact, upgrading
// prord-bench/1 layouts in place: the v1 microsecond latency fields
// populate the v2 nanosecond ones (at microsecond resolution — the
// best v1 recorded) and the schema is rewritten to the current
// version. Unknown schemas are an error so consumers fail loudly
// instead of misreading fields.
func DecodeBenchArtifact(r io.Reader) (*BenchArtifact, error) {
	var a BenchArtifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return nil, fmt.Errorf("metrics: decoding bench artifact: %w", err)
	}
	switch a.Schema {
	case BenchSchema:
	case benchSchemaV1:
		for i := range a.Runs {
			a.Runs[i].Latency.upgradeV1()
			if fl := a.Runs[i].FrontLatency; fl != nil {
				fl.upgradeV1()
			}
		}
		a.Schema = BenchSchema
	default:
		return nil, fmt.Errorf("metrics: unknown bench artifact schema %q", a.Schema)
	}
	return &a, nil
}

// Round rounds x to the given number of decimal digits, normalizing the
// negative-zero representation so encodings stay byte-stable.
func Round(x float64, digits int) float64 {
	p := math.Pow(10, float64(digits))
	r := math.Round(x*p) / p
	if r == 0 {
		return 0 // fold -0 into 0
	}
	return r
}

// DeltaPct returns the relative difference 100*(live-sim)/sim rounded to
// one decimal, or 0 when the baseline is not positive.
func DeltaPct(live, sim float64) float64 {
	if sim <= 0 {
		return 0
	}
	return Round(100*(live-sim)/sim, 1)
}

// Skew returns max/mean over per-backend counts (1.0 = perfectly
// balanced, 0 with no traffic), rounded to three decimals.
func Skew(counts []int64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var total, max int64
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(counts))
	return Round(float64(max)/mean, 3)
}
