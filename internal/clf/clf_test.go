package clf

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

const sample = `127.0.0.1 - frank [10/Oct/2000:13:55:36 -0700] "GET /apache_pb.gif HTTP/1.0" 200 2326`

func TestParseSample(t *testing.T) {
	e, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if e.Host != "127.0.0.1" || e.Ident != "-" || e.AuthUser != "frank" {
		t.Fatalf("identity fields wrong: %+v", e)
	}
	if e.Method != "GET" || e.Path != "/apache_pb.gif" || e.Proto != "HTTP/1.0" {
		t.Fatalf("request fields wrong: %+v", e)
	}
	if e.Status != 200 || e.Bytes != 2326 {
		t.Fatalf("status/size wrong: %+v", e)
	}
	want := time.Date(2000, 10, 10, 13, 55, 36, 0, time.FixedZone("", -7*3600))
	if !e.Time.Equal(want) {
		t.Fatalf("time = %v, want %v", e.Time, want)
	}
}

func TestParseDashSize(t *testing.T) {
	e, err := Parse(`h - - [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.1" 304 -`)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bytes != -1 {
		t.Fatalf("Bytes = %d, want -1 for dash size", e.Bytes)
	}
}

func TestParseHTTP09(t *testing.T) {
	e, err := Parse(`h - - [10/Oct/2000:13:55:36 -0700] "GET /x" 200 10`)
	if err != nil {
		t.Fatal(err)
	}
	if e.Proto != "HTTP/0.9" {
		t.Fatalf("Proto = %q, want HTTP/0.9", e.Proto)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"onlyhost",
		`h - - "GET / HTTP/1.1" 200 5`, // no timestamp
		`h - - [bad time] "GET / HTTP/1.1" 200 5`,                    // bad timestamp
		`h - - [10/Oct/2000:13:55:36 -0700] GET / 200 5`,             // unquoted request
		`h - - [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.1" abc 5`,  // bad status
		`h - - [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.1" 200 xx`, // bad size
		`h - - [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.1"`,        // missing status
		`h - - [10/Oct/2000:13:55:36 -0700] "G E T / HTTP/1.1" 200 5`,
	}
	for _, line := range bad {
		if _, err := Parse(line); !errors.Is(err, ErrMalformed) {
			t.Errorf("Parse(%q) error = %v, want ErrMalformed", line, err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	e, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(e.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", e.String(), err)
	}
	if again.String() != e.String() {
		t.Fatalf("round trip mismatch:\n%s\n%s", e.String(), again.String())
	}
}

func TestRoundTripProperty(t *testing.T) {
	zone := time.FixedZone("", 3600)
	f := func(host uint16, path uint16, status uint8, size uint32, sec int32) bool {
		e := Entry{
			Host:   "h" + strings.Repeat("x", int(host%5)),
			Ident:  "-",
			Method: "GET",
			Path:   "/p" + strings.Repeat("a", int(path%7)),
			Proto:  "HTTP/1.1",
			Status: 100 + int(status)%500,
			Bytes:  int64(size),
			Time:   time.Unix(int64(sec), 0).In(zone),
		}
		got, err := Parse(e.String())
		if err != nil {
			return false
		}
		return got.Host == e.Host && got.Path == e.Path &&
			got.Status == e.Status && got.Bytes == e.Bytes &&
			got.Time.Equal(e.Time)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReaderSkipsMalformed(t *testing.T) {
	log := sample + "\n" +
		"garbage line\n" +
		"# comment\n" +
		"\n" +
		sample + "\n"
	r := NewReader(strings.NewReader(log))
	entries, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	if r.Skipped() != 1 {
		t.Fatalf("Skipped = %d, want 1", r.Skipped())
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next on empty input = %v, want io.EOF", err)
	}
}

func TestWriterReaderPipeline(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	e, _ := Parse(sample)
	for i := 0; i < 10; i++ {
		e.Status = 200 + i
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 10 {
		t.Fatalf("Count = %d, want 10", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("read back %d entries, want 10", len(entries))
	}
	for i, got := range entries {
		if got.Status != 200+i {
			t.Fatalf("entry %d status = %d, want %d", i, got.Status, 200+i)
		}
	}
}

func TestEmptyIdentFormatsAsDash(t *testing.T) {
	e := Entry{Host: "h", Method: "GET", Path: "/", Proto: "HTTP/1.1",
		Status: 200, Bytes: 1, Time: time.Unix(0, 0).UTC()}
	s := e.String()
	if !strings.HasPrefix(s, "h - - [") {
		t.Fatalf("empty ident/user should format as dashes: %q", s)
	}
}
