// Package clf reads and writes web server access logs in the NCSA Common
// Log Format (CLF), the input format the PRORD paper's simulator consumes
// ("the simulation code takes any log file in common log format").
//
// A CLF line looks like:
//
//	host ident authuser [02/Jan/2006:15:04:05 -0700] "GET /path HTTP/1.1" 200 2326
//
// The package is deliberately forgiving on input (real-world logs are
// messy) and strict on output.
package clf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Entry is one parsed access-log record.
type Entry struct {
	Host     string    // client host or IP
	Ident    string    // RFC 1413 identity, usually "-"
	AuthUser string    // authenticated user, usually "-"
	Time     time.Time // request completion time
	Method   string    // "GET", "POST", ...
	Path     string    // request URL path
	Proto    string    // "HTTP/1.0", "HTTP/1.1"
	Status   int       // HTTP status code
	Bytes    int64     // response size in bytes; -1 when logged as "-"
}

// TimeLayout is the strftime-style timestamp layout CLF uses.
const TimeLayout = "02/Jan/2006:15:04:05 -0700"

// ErrMalformed is wrapped by all parse errors so callers can detect bad
// lines with errors.Is.
var ErrMalformed = errors.New("clf: malformed line")

// String formats e as one CLF line (without trailing newline).
func (e Entry) String() string {
	ident, user := e.Ident, e.AuthUser
	if ident == "" {
		ident = "-"
	}
	if user == "" {
		user = "-"
	}
	size := "-"
	if e.Bytes >= 0 {
		size = strconv.FormatInt(e.Bytes, 10)
	}
	return fmt.Sprintf("%s %s %s [%s] \"%s %s %s\" %d %s",
		e.Host, ident, user, e.Time.Format(TimeLayout),
		e.Method, e.Path, e.Proto, e.Status, size)
}

// Parse parses one CLF line.
func Parse(line string) (Entry, error) {
	var e Entry
	rest := strings.TrimSpace(line)
	if rest == "" {
		return e, fmt.Errorf("%w: empty", ErrMalformed)
	}

	var ok bool
	if e.Host, rest, ok = cutField(rest); !ok {
		return e, fmt.Errorf("%w: missing host", ErrMalformed)
	}
	if e.Ident, rest, ok = cutField(rest); !ok {
		return e, fmt.Errorf("%w: missing ident", ErrMalformed)
	}
	if e.AuthUser, rest, ok = cutField(rest); !ok {
		return e, fmt.Errorf("%w: missing authuser", ErrMalformed)
	}

	if !strings.HasPrefix(rest, "[") {
		return e, fmt.Errorf("%w: missing timestamp", ErrMalformed)
	}
	end := strings.IndexByte(rest, ']')
	if end < 0 {
		return e, fmt.Errorf("%w: unterminated timestamp", ErrMalformed)
	}
	ts, err := time.Parse(TimeLayout, rest[1:end])
	if err != nil {
		return e, fmt.Errorf("%w: bad timestamp %q: %v", ErrMalformed, rest[1:end], err)
	}
	e.Time = ts
	rest = strings.TrimSpace(rest[end+1:])

	if !strings.HasPrefix(rest, `"`) {
		return e, fmt.Errorf("%w: missing request line", ErrMalformed)
	}
	end = strings.IndexByte(rest[1:], '"')
	if end < 0 {
		return e, fmt.Errorf("%w: unterminated request line", ErrMalformed)
	}
	reqLine := rest[1 : 1+end]
	rest = strings.TrimSpace(rest[end+2:])

	parts := strings.Fields(reqLine)
	switch len(parts) {
	case 3:
		e.Method, e.Path, e.Proto = parts[0], parts[1], parts[2]
	case 2:
		// HTTP/0.9 simple requests have no protocol field.
		e.Method, e.Path, e.Proto = parts[0], parts[1], "HTTP/0.9"
	default:
		return e, fmt.Errorf("%w: bad request line %q", ErrMalformed, reqLine)
	}

	var statusStr string
	if statusStr, rest, ok = cutField(rest); !ok {
		return e, fmt.Errorf("%w: missing status", ErrMalformed)
	}
	if e.Status, err = strconv.Atoi(statusStr); err != nil {
		return e, fmt.Errorf("%w: bad status %q", ErrMalformed, statusStr)
	}

	sizeStr, _, _ := cutField(rest)
	if sizeStr == "" || sizeStr == "-" {
		e.Bytes = -1
	} else if e.Bytes, err = strconv.ParseInt(sizeStr, 10, 64); err != nil {
		return e, fmt.Errorf("%w: bad size %q", ErrMalformed, sizeStr)
	}
	return e, nil
}

// cutField splits off the first whitespace-delimited field.
func cutField(s string) (field, rest string, ok bool) {
	s = strings.TrimLeft(s, " \t")
	if s == "" {
		return "", "", false
	}
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, "", true
	}
	return s[:i], strings.TrimLeft(s[i:], " \t"), true
}

// Reader streams entries from an access log. Malformed lines are counted
// and skipped rather than aborting the whole read, matching how log miners
// treat dirty logs.
type Reader struct {
	sc      *bufio.Scanner
	skipped int
	line    int
}

// NewReader returns a Reader over r. Lines longer than 1 MiB are rejected.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Reader{sc: sc}
}

// Next returns the next well-formed entry, or io.EOF when the log is
// exhausted. I/O errors are returned as-is.
func (r *Reader) Next() (Entry, error) {
	for r.sc.Scan() {
		r.line++
		text := strings.TrimSpace(r.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		e, err := Parse(text)
		if err != nil {
			r.skipped++
			continue
		}
		return e, nil
	}
	if err := r.sc.Err(); err != nil {
		return Entry{}, err
	}
	return Entry{}, io.EOF
}

// ReadAll consumes the remaining entries.
func (r *Reader) ReadAll() ([]Entry, error) {
	var out []Entry
	for {
		e, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// Skipped reports how many malformed lines were dropped so far.
func (r *Reader) Skipped() int { return r.skipped }

// Writer emits entries as CLF lines.
type Writer struct {
	w  *bufio.Writer
	nw int
}

// NewWriter returns a Writer on w. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write emits one entry.
func (w *Writer) Write(e Entry) error {
	if _, err := w.w.WriteString(e.String()); err != nil {
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return err
	}
	w.nw++
	return nil
}

// Count reports the number of entries written.
func (w *Writer) Count() int { return w.nw }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }
