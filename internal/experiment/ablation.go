package experiment

import (
	"fmt"

	"prord/internal/cluster"
	"prord/internal/mining"
	"prord/internal/policy"
	"prord/internal/randutil"
	"prord/internal/trace"
)

// AblationOrder sweeps the dependency-graph order (§4.1.1's trade-off:
// higher order predicts better but stores more contexts).
func (r *Runner) AblationOrder() (*Table, error) {
	t := &Table{
		ID:     "ablation-order",
		Title:  "Dependency-graph order vs prefetch quality (Synthetic, PRORD)",
		Header: []string{"Order", "Contexts", "Prefetch accuracy", "Hit rate", "Throughput"},
	}
	for _, order := range []int{1, 2, 3} {
		opt := r.opt
		opt.Mining.Order = order
		rr := NewRunner(opt)
		eval, miner, err := rr.workload(trace.PresetSynthetic)
		if err != nil {
			return nil, err
		}
		res, err := rr.Execute(Run{Preset: trace.PresetSynthetic, Policy: "PRORD", Features: cluster.AllFeatures()})
		if err != nil {
			return nil, err
		}
		_ = eval
		label := fmt.Sprintf("%d", order)
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%d", miner.Model.Contexts()),
			fmt.Sprintf("%.3f", res.Metrics.PrefetchAccuracy()),
			fmt.Sprintf("%.3f", res.HitRate),
			fmt.Sprintf("%.0f", res.Throughput),
		})
		t.set(label, "contexts", float64(miner.Model.Contexts()))
		t.set(label, "accuracy", res.Metrics.PrefetchAccuracy())
		t.set(label, "hitrate", res.HitRate)
		t.set(label, "throughput", res.Throughput)
	}
	return t, nil
}

// AblationThreshold sweeps Algorithm 2's prefetch confidence threshold.
func (r *Runner) AblationThreshold() (*Table, error) {
	t := &Table{
		ID:     "ablation-threshold",
		Title:  "Prefetch confidence threshold (Synthetic, PRORD)",
		Header: []string{"Threshold", "Prefetches", "Accuracy", "Hit rate", "Throughput"},
	}
	for _, th := range []float64{0.2, 0.4, 0.6, 0.8} {
		opt := r.opt
		opt.Mining.PrefetchThreshold = th
		rr := NewRunner(opt)
		res, err := rr.Execute(Run{Preset: trace.PresetSynthetic, Policy: "PRORD", Features: cluster.AllFeatures()})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%.1f", th)
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%d", res.Metrics.Prefetches),
			fmt.Sprintf("%.3f", res.Metrics.PrefetchAccuracy()),
			fmt.Sprintf("%.3f", res.HitRate),
			fmt.Sprintf("%.0f", res.Throughput),
		})
		t.set(label, "prefetches", float64(res.Metrics.Prefetches))
		t.set(label, "accuracy", res.Metrics.PrefetchAccuracy())
		t.set(label, "throughput", res.Throughput)
	}
	t.Notes = append(t.Notes, "low thresholds prefetch aggressively (more disk churn); high thresholds prefetch rarely")
	return t, nil
}

// AblationCache compares LRU against GDSF / GDSF-split demand caches
// (§2.2.3 and [20]'s extension).
func (r *Runner) AblationCache() (*Table, error) {
	t := &Table{
		ID:     "ablation-cache",
		Title:  "Demand-cache policy (Synthetic)",
		Header: []string{"Cache", "Policy", "Hit rate", "Throughput"},
	}
	type variant struct {
		label   string
		useGDSF bool
		policy  string
		feats   cluster.Features
	}
	variants := []variant{
		{"LRU", false, "LARD", cluster.Features{}},
		{"GDSF", true, "LARD", cluster.Features{}},
		{"LRU", false, "PRORD", cluster.AllFeatures()},
		{"GDSF-split", true, "PRORD", cluster.AllFeatures()},
	}
	for _, v := range variants {
		opt := r.opt
		opt.UseGDSF = v.useGDSF
		rr := NewRunner(opt)
		res, err := rr.Execute(Run{Preset: trace.PresetSynthetic, Policy: v.policy, Features: v.feats})
		if err != nil {
			return nil, err
		}
		label := v.label + "/" + v.policy
		t.Rows = append(t.Rows, []string{
			v.label, v.policy,
			fmt.Sprintf("%.3f", res.HitRate),
			fmt.Sprintf("%.0f", res.Throughput),
		})
		t.set(label, "hitrate", res.HitRate)
		t.set(label, "throughput", res.Throughput)
	}
	return t, nil
}

// AblationPredictor swaps the navigation predictor driving Algorithm 2's
// prefetching (in the full PRORD system) and measures the end-to-end
// impact — connecting the offline accuracy comparison to the cluster.
func (r *Runner) AblationPredictor() (*Table, error) {
	t := &Table{
		ID:     "ablation-predictor",
		Title:  "Prefetch predictor in the full PRORD system (Synthetic)",
		Header: []string{"Predictor", "Prefetches", "Uses/prefetch", "Hit rate", "Throughput"},
	}
	for _, pred := range []string{"model", "ppm", "seqrules", "dg"} {
		opt := r.opt
		opt.Mining.Predictor = pred
		rr := NewRunner(opt)
		res, err := rr.Execute(Run{Preset: trace.PresetSynthetic, Policy: "PRORD", Features: cluster.AllFeatures()})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			pred,
			fmt.Sprintf("%d", res.Metrics.Prefetches),
			fmt.Sprintf("%.2f", res.Metrics.PrefetchAccuracy()),
			fmt.Sprintf("%.3f", res.HitRate),
			fmt.Sprintf("%.0f", res.Throughput),
		})
		t.set(pred, "prefetches", float64(res.Metrics.Prefetches))
		t.set(pred, "accuracy", res.Metrics.PrefetchAccuracy())
		t.set(pred, "hitrate", res.HitRate)
		t.set(pred, "throughput", res.Throughput)
	}
	return t, nil
}

// Dynamic regenerates the paper's §6 future-work direction: how the
// PRORD advantage evolves as the fraction of dynamically generated
// (uncacheable) pages grows. Locality-driven gains dilute with dynamic
// content; the experiment quantifies by how much.
func (r *Runner) Dynamic() (*Table, error) {
	t := &Table{
		ID:     "dynamic",
		Title:  "Dynamic-content sweep (Synthetic site, LARD vs PRORD)",
		Header: []string{"Dynamic pages", "LARD", "PRORD", "PRORD/LARD", "Dynamic reqs"},
	}
	for _, frac := range []float64{0, 0.1, 0.3, 0.5} {
		sc, tc, err := trace.PresetConfigs(trace.PresetSynthetic, r.opt.Scale)
		if err != nil {
			return nil, err
		}
		sc.DynamicFraction = frac
		var results [2]*cluster.Result
		for i, polName := range []string{"LARD", "PRORD"} {
			rng := randutil.New(r.opt.Seed)
			site, err := trace.GenerateSite(sc, rng)
			if err != nil {
				return nil, err
			}
			full, err := trace.Generate("dyn", site, tc, rng)
			if err != nil {
				return nil, err
			}
			compress(full, r.opt.LoadFactor*presetLoadScale(trace.PresetSynthetic))
			train, eval := full.Split(r.opt.TrainFraction)
			miner := mining.Mine(train, r.opt.Mining)
			pol, err := policy.ByName(polName, r.opt.Backends, policy.Thresholds{})
			if err != nil {
				return nil, err
			}
			feats := cluster.Features{}
			if polName == "PRORD" {
				feats = cluster.AllFeatures()
			}
			cl, err := cluster.New(cluster.Config{
				Params:   r.params(eval.TotalFileBytes(), r.opt.Backends, r.opt.MemoryFraction),
				Policy:   pol,
				Features: feats,
				Miner:    miner,
			})
			if err != nil {
				return nil, err
			}
			res, err := cl.Run(eval)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		lard, prord := results[0], results[1]
		label := fmt.Sprintf("%.0f%%", 100*frac)
		ratio := 0.0
		if lard.Throughput > 0 {
			ratio = prord.Throughput / lard.Throughput
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.0f", lard.Throughput),
			fmt.Sprintf("%.0f", prord.Throughput),
			fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%d", prord.Metrics.DynamicServed),
		})
		t.set(label, "LARD", lard.Throughput)
		t.set(label, "PRORD", prord.Throughput)
		t.set(label, "ratio", ratio)
		t.set(label, "dynamic", float64(prord.Metrics.DynamicServed))
	}
	t.Notes = append(t.Notes, "dynamic pages are uncacheable and cost per-request CPU; locality gains dilute as their share grows")
	return t, nil
}

// PredictorComparison scores the paper's n-order model against the DG
// baseline [19] on next-page prediction accuracy (offline, no cluster).
func (r *Runner) PredictorComparison() (*Table, error) {
	t := &Table{
		ID:     "predictors",
		Title:  "Next-page prediction accuracy (offline)",
		Header: []string{"Trace", "DG[19] (w=2)", "Assoc[23]", "SeqRules[28]", "PPM-2[26]", "Order-1", "Order-2", "Order-3"},
	}
	for _, p := range presets() {
		_, full, err := trace.GeneratePreset(p, r.opt.Scale, r.opt.Seed)
		if err != nil {
			return nil, err
		}
		train, eval := full.Split(r.opt.TrainFraction)
		row := []string{p.String()}
		preds := []mining.Predictor{
			mining.NewDG(2),
			mining.NewAssoc(3),
			mining.NewSeqRules(3),
			mining.NewPPM(2),
			mining.NewModel(1),
			mining.NewModel(2),
			mining.NewModel(3),
		}
		for i, pred := range preds {
			pred.Train(train)
			acc := predictorAccuracy(pred, eval)
			row = append(row, fmt.Sprintf("%.3f", acc))
			t.set(p.String(), t.Header[i+1], acc)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// predictorAccuracy measures top-1 next-page accuracy over a trace's
// sessions.
func predictorAccuracy(pred mining.Predictor, tr *trace.Trace) float64 {
	var total, correct int
	for _, idxs := range tr.Sessions() {
		var pages []string
		for _, i := range idxs {
			if r := &tr.Requests[i]; !r.Embedded {
				pages = append(pages, r.Path)
			}
		}
		for i := 1; i < len(pages); i++ {
			lo := i - 3
			if lo < 0 {
				lo = 0
			}
			p, ok := pred.Predict(pages[lo:i])
			if !ok {
				continue
			}
			total++
			if p.Page == pages[i] {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
