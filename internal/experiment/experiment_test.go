package experiment

import (
	"strings"
	"testing"

	"prord/internal/trace"
)

// testRunner is small and fast: every experiment stays deterministic, so
// the shape assertions below are stable.
func testRunner() *Runner {
	opt := DefaultOptions()
	opt.Scale = 0.15
	return NewRunner(opt)
}

func TestOptionsDefaulting(t *testing.T) {
	r := NewRunner(Options{})
	if r.Options().Scale != DefaultOptions().Scale {
		t.Fatalf("zero options should default: %+v", r.Options())
	}
	if r.Options().LoadFactor != 30 {
		t.Fatalf("default LoadFactor = %v, want 30", r.Options().LoadFactor)
	}
}

func TestTable1(t *testing.T) {
	tab, err := testRunner().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 8 {
		t.Fatalf("Table 1 has %d rows", len(tab.Rows))
	}
	s := tab.String()
	for _, want := range []string{"150µs", "200µs", "80µs", "128 MB", "72 MB"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestFig6DispatchShape(t *testing.T) {
	tab, err := testRunner().Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range presets() {
		lard := tab.MustGet(p.String(), "LARD")
		prord := tab.MustGet(p.String(), "PRORD")
		if prord >= 0.7*lard {
			t.Errorf("%s: PRORD dispatches %v should be well under LARD's %v", p, prord, lard)
		}
	}
}

func TestFig7ThroughputShape(t *testing.T) {
	tab, err := testRunner().Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range presets() {
		wrr := tab.MustGet(p.String(), "WRR")
		lard := tab.MustGet(p.String(), "LARD")
		prord := tab.MustGet(p.String(), "PRORD")
		if prord <= lard {
			t.Errorf("%s: PRORD %v should beat LARD %v (paper: +10-45%%)", p, prord, lard)
		}
		if lard <= wrr {
			t.Errorf("%s: LARD %v should beat WRR %v", p, lard, wrr)
		}
	}
}

func TestFig8LocalityPreservation(t *testing.T) {
	// Fig. 8 needs a trace long enough for the miner to matter at 10%
	// memory relative to the dataset size.
	opt := DefaultOptions()
	opt.Scale = 0.3
	tab, err := NewRunner(opt).Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// PRORD's advantage should be largest when memory is scarce.
	ratioAt := func(label string) float64 {
		return tab.MustGet(label, "PRORD") / tab.MustGet(label, "LARD")
	}
	low, high := ratioAt("10%"), ratioAt("75%")
	if low <= 1 {
		t.Errorf("PRORD should beat LARD at 10%% memory, ratio %v", low)
	}
	if low <= high-0.02 {
		t.Errorf("PRORD's edge should grow as memory shrinks: 10%%=%.2f vs 75%%=%.2f", low, high)
	}
}

func TestFig9EnhancementShape(t *testing.T) {
	tab, err := testRunner().Fig9()
	if err != nil {
		t.Fatal(err)
	}
	lard := tab.MustGet("LARD", "throughput")
	prord := tab.MustGet("PRORD", "throughput")
	bundle := tab.MustGet("LARD-bundle", "throughput")
	if prord <= lard {
		t.Errorf("PRORD %v should beat plain LARD %v", prord, lard)
	}
	if bundle <= lard {
		t.Errorf("LARD-bundle %v should beat plain LARD %v", bundle, lard)
	}
	// No enhancement should cripple the system.
	for _, v := range fig9Variants() {
		if thr := tab.MustGet(v.Label, "throughput"); thr < 0.85*lard {
			t.Errorf("%s throughput %v collapsed below 85%% of LARD %v", v.Label, thr, lard)
		}
	}
}

func TestScaleConsistency(t *testing.T) {
	tab, err := testRunner().Scale()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"6", "8", "12", "16"} {
		ratio := tab.MustGet(n, "ratio")
		if ratio < 0.9 {
			t.Errorf("%s backends: PRORD/LARD ratio %v fell below 0.9", n, ratio)
		}
	}
}

func TestResponseTimeShape(t *testing.T) {
	tab, err := testRunner().ResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range presets() {
		wrr := tab.MustGet(p.String(), "WRR")
		prord := tab.MustGet(p.String(), "PRORD")
		if prord >= wrr {
			t.Errorf("%s: PRORD response %vms should beat WRR %vms", p, prord, wrr)
		}
	}
}

func TestHitRateShape(t *testing.T) {
	tab, err := testRunner().HitRate()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range presets() {
		wrr := tab.MustGet(p.String(), "WRR")
		lard := tab.MustGet(p.String(), "LARD")
		if lard <= wrr {
			t.Errorf("%s: LARD hit rate %v should beat WRR %v", p, lard, wrr)
		}
	}
	// The §5.2 hit-rate boost claim, on the CS trace.
	if prord, lard := tab.MustGet("CS-Trace", "PRORD"), tab.MustGet("CS-Trace", "LARD"); prord <= lard {
		t.Errorf("CS: PRORD hit rate %v should exceed LARD %v", prord, lard)
	}
}

func TestAblationOrderContextsGrow(t *testing.T) {
	tab, err := testRunner().AblationOrder()
	if err != nil {
		t.Fatal(err)
	}
	c1 := tab.MustGet("1", "contexts")
	c2 := tab.MustGet("2", "contexts")
	c3 := tab.MustGet("3", "contexts")
	if !(c1 < c2 && c2 < c3) {
		t.Errorf("contexts should grow with order: %v, %v, %v", c1, c2, c3)
	}
}

func TestAblationThreshold(t *testing.T) {
	tab, err := testRunner().AblationThreshold()
	if err != nil {
		t.Fatal(err)
	}
	// Lower thresholds must prefetch at least as much as higher ones.
	p2 := tab.MustGet("0.2", "prefetches")
	p8 := tab.MustGet("0.8", "prefetches")
	if p2 < p8 {
		t.Errorf("threshold 0.2 prefetches %v < threshold 0.8 %v", p2, p8)
	}
}

func TestAblationCache(t *testing.T) {
	tab, err := testRunner().AblationCache()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("cache ablation rows = %d, want 4", len(tab.Rows))
	}
}

func TestPredictorComparison(t *testing.T) {
	tab, err := testRunner().PredictorComparison()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range presets() {
		o1 := tab.MustGet(p.String(), "Order-1")
		o2 := tab.MustGet(p.String(), "Order-2")
		assoc := tab.MustGet(p.String(), "Assoc[23]")
		if o2 < 0.2 {
			t.Errorf("%s: order-2 accuracy %v too low", p, o2)
		}
		// Navigation is path-dependent (Fig. 3), so longer contexts must
		// not hurt...
		if o2 < o1-0.02 {
			t.Errorf("%s: order-2 (%v) should not trail order-1 (%v)", p, o2, o1)
		}
		// ...and sequence models must beat unordered association rules [21].
		if o2 <= assoc {
			t.Errorf("%s: order-2 (%v) should beat association rules (%v)", p, o2, assoc)
		}
	}
}

func TestDynamicSweep(t *testing.T) {
	tab, err := testRunner().Dynamic()
	if err != nil {
		t.Fatal(err)
	}
	if v := tab.MustGet("0%", "dynamic"); v != 0 {
		t.Errorf("static row served %v dynamic requests", v)
	}
	if v := tab.MustGet("30%", "dynamic"); v == 0 {
		t.Error("30%% row should serve dynamic requests")
	}
	// PRORD should not lose to LARD at any dynamic fraction, and its
	// relative edge should not grow as content becomes uncacheable.
	r0 := tab.MustGet("0%", "ratio")
	r5 := tab.MustGet("50%", "ratio")
	if r0 < 1 {
		t.Errorf("static-site ratio %v should favor PRORD", r0)
	}
	if r5 > r0+0.05 {
		t.Errorf("dynamic content should dilute PRORD's edge: 0%%=%.2f 50%%=%.2f", r0, r5)
	}
}

func TestPowerExperiment(t *testing.T) {
	tab, err := testRunner().Power()
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"WRR", "LARD", "PRORD"} {
		plain := tab.MustGet(pol, "power")
		managed := tab.MustGet(pol+"+power", "power")
		if plain != 1 {
			t.Errorf("%s unmanaged power = %v, want 1", pol, plain)
		}
		if managed >= plain {
			t.Errorf("%s+power should draw less than %v, got %v", pol, plain, managed)
		}
		// Energy savings must not collapse throughput.
		if thr, base := tab.MustGet(pol+"+power", "throughput"), tab.MustGet(pol, "throughput"); thr < 0.7*base {
			t.Errorf("%s+power throughput %v collapsed from %v", pol, thr, base)
		}
	}
}

func TestFailoverExperiment(t *testing.T) {
	tab, err := testRunner().Failover()
	if err != nil {
		t.Fatal(err)
	}
	healthy := tab.MustGet("healthy", "completed")
	for _, sc := range []string{"healthy", "crash", "crash+recover"} {
		if tab.MustGet(sc, "completed") != healthy {
			t.Errorf("%s completed %v, want %v (no lost requests)", sc, tab.MustGet(sc, "completed"), healthy)
		}
	}
	if tab.MustGet("healthy", "failovers") != 0 {
		t.Error("healthy run should have no failovers")
	}
	// The crash should cost locality (memory lost on one backend).
	if tab.MustGet("crash", "hitrate") >= tab.MustGet("healthy", "hitrate") {
		t.Errorf("crash hit rate %v should trail healthy %v",
			tab.MustGet("crash", "hitrate"), tab.MustGet("healthy", "hitrate"))
	}
}

func TestFrontEndsExperiment(t *testing.T) {
	opt := DefaultOptions()
	opt.Scale = 0.04
	tab, err := NewRunner(opt).FrontEnds()
	if err != nil {
		t.Fatal(err)
	}
	// More distributors must reduce the per-distributor utilization.
	u1 := tab.MustGet("LARD/1", "frontutil")
	u4 := tab.MustGet("LARD/4", "frontutil")
	if u4 >= u1 {
		t.Errorf("4 distributors should unload each front-end: 1->%v 4->%v", u1, u4)
	}
	// PRORD needs the front-end far less than LARD at any width.
	if p1 := tab.MustGet("PRORD/1", "frontutil"); p1 >= u1 {
		t.Errorf("PRORD single-front utilization %v should be below LARD's %v", p1, u1)
	}
}

func TestByIDAndIDs(t *testing.T) {
	r := testRunner()
	if _, err := r.ByID("nope"); err == nil {
		t.Fatal("unknown id should error")
	}
	// Spot-check one cheap id through ByID.
	tab, err := r.ByID("table1")
	if err != nil || tab.ID != "table1" {
		t.Fatalf("ByID(table1) = %v, %v", tab, err)
	}
	if len(IDs()) < 10 {
		t.Fatalf("IDs() too short: %v", IDs())
	}
}

func TestExecuteErrors(t *testing.T) {
	r := testRunner()
	if _, err := r.Execute(Run{Preset: trace.Preset(99), Policy: "LARD"}); err == nil {
		t.Fatal("bad preset should error")
	}
	if _, err := r.Execute(Run{Preset: trace.PresetCS, Policy: "nope"}); err == nil {
		t.Fatal("bad policy should error")
	}
}

func TestTableHelpers(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Header: []string{"a", "b"}}
	tab.Rows = append(tab.Rows, []string{"r1", "v1"})
	tab.set("r1", "b", 42)
	if v, ok := tab.Get("r1", "b"); !ok || v != 42 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if _, ok := tab.Get("r1", "missing"); ok {
		t.Fatal("missing column should not exist")
	}
	if _, ok := tab.Get("missing", "b"); ok {
		t.Fatal("missing row should not exist")
	}
	if tab.MustGet("r1", "b") != 42 {
		t.Fatal("MustGet mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on absent cell should panic")
		}
	}()
	tab.MustGet("zz", "zz")
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "demo",
		Title:  "Demo",
		Header: []string{"col1", "column-two"},
		Rows:   [][]string{{"a", "b"}, {"long-cell-value", "c"}},
		Notes:  []string{"a note"},
	}
	s := tab.String()
	if !strings.Contains(s, "== demo: Demo ==") {
		t.Fatalf("missing title: %s", s)
	}
	if !strings.Contains(s, "note: a note") {
		t.Fatalf("missing note: %s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines, want 6:\n%s", len(lines), s)
	}
}

func TestAblationPredictor(t *testing.T) {
	tab, err := testRunner().AblationPredictor()
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"model", "ppm", "seqrules", "dg"} {
		if tab.MustGet(pred, "throughput") <= 0 {
			t.Errorf("%s: degenerate throughput", pred)
		}
		if tab.MustGet(pred, "prefetches") == 0 {
			t.Errorf("%s: never prefetched", pred)
		}
	}
}
