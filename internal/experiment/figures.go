package experiment

import (
	"fmt"
	"time"

	"prord/internal/cluster"
	"prord/internal/trace"
)

// Table1 renders the system parameters actually used (the paper's
// Table 1), including the documented substitution for the garbled disk
// row.
func (r *Runner) Table1() (*Table, error) {
	p := cluster.DefaultParams()
	t := &Table{
		ID:     "table1",
		Title:  "System parameters",
		Header: []string{"Parameter", "Value"},
	}
	row := func(name, value string) {
		t.Rows = append(t.Rows, []string{name, value})
	}
	row("Backend servers", fmt.Sprintf("%d (experiments sweep 6-16)", r.opt.Backends))
	row("Application memory", fmt.Sprintf("%d MB", p.AppMemory>>20))
	row("Pinned memory", fmt.Sprintf("%d MB (variable)", p.PinnedMemory>>20))
	row("Connection latency", p.ConnectionLatency.String())
	row("TCP handoff latency", p.HandoffLatency.String()+" per request")
	row("Data transmission (migration)", p.NetPerKB.String()+" per KB")
	row("Disk latency", fmt.Sprintf("%v fixed + %v per KB (substituted; Table 1 row garbled)", p.DiskFixed, p.DiskPerKB))
	row("Backend CPU", fmt.Sprintf("%v per request + %v per KB", p.CPUPerRequest, p.CPUPerKB))
	row("Distributor", fmt.Sprintf("%v per request + %v per dispatch", p.FrontPerRequest, p.DispatchLatency))
	t.Notes = append(t.Notes, "power parameters (Table 1's ON/OFF/hibernation row) belong to PARD and are outside PRORD's evaluation")
	return t, nil
}

// Fig6 regenerates "Frequency of Dispatches": dispatcher consultations of
// LARD vs PRORD on each trace.
func (r *Runner) Fig6() (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "Frequency of dispatches (LARD vs PRORD)",
		Header: []string{"Trace", "Requests", "LARD", "PRORD", "Reduction"},
	}
	for _, p := range presets() {
		lard, err := r.Execute(Run{Preset: p, Policy: "LARD"})
		if err != nil {
			return nil, err
		}
		prord, err := r.Execute(Run{Preset: p, Policy: "PRORD", Features: cluster.AllFeatures()})
		if err != nil {
			return nil, err
		}
		reduction := 0.0
		if lard.Metrics.Dispatches > 0 {
			reduction = 1 - float64(prord.Metrics.Dispatches)/float64(lard.Metrics.Dispatches)
		}
		t.Rows = append(t.Rows, []string{
			p.String(),
			fmt.Sprintf("%d", lard.Metrics.Completed),
			fmt.Sprintf("%d", lard.Metrics.Dispatches),
			fmt.Sprintf("%d", prord.Metrics.Dispatches),
			fmt.Sprintf("%.1f%%", 100*reduction),
		})
		t.set(p.String(), "LARD", float64(lard.Metrics.Dispatches))
		t.set(p.String(), "PRORD", float64(prord.Metrics.Dispatches))
	}
	return t, nil
}

// fig7Policies is the comparison set of Fig. 7.
func fig7Policies() []string {
	return []string{"WRR", "LARD", "Ext-LARD-PHTTP", "PRORD"}
}

// Fig7 regenerates "Throughput Comparison" across WRR, LARD,
// Ext-LARD-PHTTP and PRORD on each trace.
func (r *Runner) Fig7() (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "Throughput comparison (requests/second)",
		Header: append([]string{"Trace"}, fig7Policies()...),
	}
	t.Header = append(t.Header, "PRORD vs LARD")
	for _, p := range presets() {
		row := []string{p.String()}
		var lardThr, prordThr float64
		for _, polName := range fig7Policies() {
			res, err := r.Execute(Run{Preset: p, Policy: polName, Features: featuresFor(polName)})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", res.Throughput))
			t.set(p.String(), polName, res.Throughput)
			switch polName {
			case "LARD":
				lardThr = res.Throughput
			case "PRORD":
				prordThr = res.Throughput
			}
		}
		gain := 0.0
		if lardThr > 0 {
			gain = 100 * (prordThr - lardThr) / lardThr
		}
		row = append(row, fmt.Sprintf("%+.1f%%", gain))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper reports PRORD 10-45% over LARD; shapes, not absolute req/s, are comparable")
	return t, nil
}

// Fig8MemoryPoints are the memory fractions Fig. 8 sweeps.
var Fig8MemoryPoints = []float64{0.10, 0.20, 0.30, 0.50, 0.75, 1.0}

// Fig8 regenerates "Throughput varying data amount in memory": LARD vs
// PRORD as the fraction of the site fitting in cluster memory grows.
func (r *Runner) Fig8() (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "Throughput vs fraction of site data in backend memory (Synthetic)",
		Header: []string{"Memory fraction", "LARD", "PRORD", "PRORD/LARD"},
	}
	for _, frac := range Fig8MemoryPoints {
		lard, err := r.Execute(Run{Preset: trace.PresetSynthetic, Policy: "LARD", MemoryFraction: frac})
		if err != nil {
			return nil, err
		}
		prord, err := r.Execute(Run{Preset: trace.PresetSynthetic, Policy: "PRORD",
			Features: cluster.AllFeatures(), MemoryFraction: frac})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%.0f%%", 100*frac)
		ratio := 0.0
		if lard.Throughput > 0 {
			ratio = prord.Throughput / lard.Throughput
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.0f", lard.Throughput),
			fmt.Sprintf("%.0f", prord.Throughput),
			fmt.Sprintf("%.2fx", ratio),
		})
		t.set(label, "LARD", lard.Throughput)
		t.set(label, "PRORD", prord.Throughput)
	}
	t.Notes = append(t.Notes, "the paper's claim: PRORD preserves locality better than LARD as memory shrinks")
	return t, nil
}

// fig9Variants maps the Fig. 9 row labels to policy + feature selections.
// The enhancements layer onto the LARD baseline exactly as §5.2 describes;
// PRORD is the combination (with its proactive routing policy).
func fig9Variants() []struct {
	Label    string
	Policy   string
	Features cluster.Features
} {
	return []struct {
		Label    string
		Policy   string
		Features cluster.Features
	}{
		{"LARD", "LARD", cluster.Features{}},
		{"LARD-bundle", "LARD", cluster.Features{Bundle: true}},
		{"LARD-distribution", "LARD", cluster.Features{Replication: true}},
		{"LARD-prefetch-nav", "LARD", cluster.Features{NavPrefetch: true}},
		{"LARD-prefetch-group*", "LARD", cluster.Features{GroupPrefetch: true}},
		{"PRORD", "PRORD", cluster.AllFeatures()},
	}
}

// Fig9 regenerates "Throughput Comparison for Individual Enhancements
// with CS-Trace".
func (r *Runner) Fig9() (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  "Individual enhancements on CS-Trace (throughput, hit rate)",
		Header: []string{"Variant", "Throughput", "Hit rate", "vs LARD"},
	}
	var base float64
	for _, v := range fig9Variants() {
		res, err := r.Execute(Run{Preset: trace.PresetCS, Policy: v.Policy, Features: v.Features})
		if err != nil {
			return nil, err
		}
		if v.Label == "LARD" {
			base = res.Throughput
		}
		gain := 0.0
		if base > 0 {
			gain = 100 * (res.Throughput - base) / base
		}
		t.Rows = append(t.Rows, []string{
			v.Label,
			fmt.Sprintf("%.0f", res.Throughput),
			fmt.Sprintf("%.3f", res.HitRate),
			fmt.Sprintf("%+.1f%%", gain),
		})
		t.set(v.Label, "throughput", res.Throughput)
		t.set(v.Label, "hitrate", res.HitRate)
	}
	t.Notes = append(t.Notes, "* LARD-prefetch-group is this reproduction's extension (§4.1's category-driven prefetching), not a paper row")
	return t, nil
}

// ScaleBackendCounts is the backend sweep of the §5.1 consistency claim.
var ScaleBackendCounts = []int{6, 8, 12, 16}

// Scale regenerates the §5.1 claim that results are consistent with 6-16
// backends: the PRORD/LARD throughput ratio at each cluster size.
func (r *Runner) Scale() (*Table, error) {
	t := &Table{
		ID:     "scale",
		Title:  "PRORD vs LARD across cluster sizes (Synthetic)",
		Header: []string{"Backends", "LARD", "PRORD", "PRORD/LARD"},
	}
	for _, n := range ScaleBackendCounts {
		lard, err := r.Execute(Run{Preset: trace.PresetSynthetic, Policy: "LARD", Backends: n})
		if err != nil {
			return nil, err
		}
		prord, err := r.Execute(Run{Preset: trace.PresetSynthetic, Policy: "PRORD",
			Features: cluster.AllFeatures(), Backends: n})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d", n)
		ratio := 0.0
		if lard.Throughput > 0 {
			ratio = prord.Throughput / lard.Throughput
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.0f", lard.Throughput),
			fmt.Sprintf("%.0f", prord.Throughput),
			fmt.Sprintf("%.2fx", ratio),
		})
		t.set(label, "LARD", lard.Throughput)
		t.set(label, "PRORD", prord.Throughput)
		t.set(label, "ratio", ratio)
	}
	return t, nil
}

// ResponseTime regenerates §5.2's average response time comparison.
func (r *Runner) ResponseTime() (*Table, error) {
	t := &Table{
		ID:     "response",
		Title:  "Average response time (ms)",
		Header: append([]string{"Trace"}, fig7Policies()...),
	}
	for _, p := range presets() {
		row := []string{p.String()}
		for _, polName := range fig7Policies() {
			res, err := r.Execute(Run{Preset: p, Policy: polName, Features: featuresFor(polName)})
			if err != nil {
				return nil, err
			}
			ms := float64(res.MeanResponse) / float64(time.Millisecond)
			row = append(row, fmt.Sprintf("%.2f", ms))
			t.set(p.String(), polName, ms)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// HitRate regenerates §5.2's claim: ~30% of the site in memory yields
// ~85% hit rate under LARD and ~10% more under PRORD.
func (r *Runner) HitRate() (*Table, error) {
	t := &Table{
		ID:     "hitrate",
		Title:  "Memory hit rates at 30% of site data in memory",
		Header: []string{"Trace", "WRR", "LARD", "PRORD"},
	}
	for _, p := range presets() {
		row := []string{p.String()}
		for _, polName := range []string{"WRR", "LARD", "PRORD"} {
			res, err := r.Execute(Run{Preset: p, Policy: polName,
				Features: featuresFor(polName), MemoryFraction: 0.3})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", res.HitRate))
			t.set(p.String(), polName, res.HitRate)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// All runs every experiment in paper order.
func (r *Runner) All() ([]*Table, error) {
	type fn struct {
		name string
		f    func() (*Table, error)
	}
	fns := []fn{
		{"table1", r.Table1},
		{"fig6", r.Fig6},
		{"fig7", r.Fig7},
		{"fig8", r.Fig8},
		{"fig9", r.Fig9},
		{"scale", r.Scale},
		{"response", r.ResponseTime},
		{"hitrate", r.HitRate},
	}
	var out []*Table
	for _, x := range fns {
		t, err := x.f()
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", x.name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// ByID runs one experiment by its table id.
func (r *Runner) ByID(id string) (*Table, error) {
	switch id {
	case "table1":
		return r.Table1()
	case "fig6":
		return r.Fig6()
	case "fig7":
		return r.Fig7()
	case "fig8":
		return r.Fig8()
	case "fig9":
		return r.Fig9()
	case "scale":
		return r.Scale()
	case "response":
		return r.ResponseTime()
	case "hitrate":
		return r.HitRate()
	case "ablation-order":
		return r.AblationOrder()
	case "ablation-threshold":
		return r.AblationThreshold()
	case "ablation-cache":
		return r.AblationCache()
	case "ablation-predictor":
		return r.AblationPredictor()
	case "dynamic":
		return r.Dynamic()
	case "predictors":
		return r.PredictorComparison()
	case "power":
		return r.Power()
	case "frontends":
		return r.FrontEnds()
	case "failover":
		return r.Failover()
	default:
		return nil, fmt.Errorf("experiment: unknown id %q", id)
	}
}

// IDs lists the runnable experiment ids.
func IDs() []string {
	return []string{"table1", "fig6", "fig7", "fig8", "fig9", "scale",
		"response", "hitrate", "dynamic", "predictors", "power", "failover", "frontends",
		"ablation-order", "ablation-threshold", "ablation-cache", "ablation-predictor"}
}
