package experiment

import (
	"fmt"
	"time"

	"prord/internal/cluster"
	"prord/internal/policy"
	"prord/internal/trace"
)

// Power regenerates the PARD angle embedded in Table 1 (power rows: 100%
// active / 5% hibernation): what power-aware operation costs and saves
// under each distribution policy, at a load where the cluster is
// over-provisioned.
func (r *Runner) Power() (*Table, error) {
	t := &Table{
		ID:     "power",
		Title:  "Power-managed operation (Synthetic, Table 1 power parameters)",
		Header: []string{"Policy", "Throughput", "Mean resp (ms)", "Avg power", "Wakes", "Sleeps"},
	}
	for _, polName := range []string{"WRR", "LARD", "PRORD"} {
		for _, managed := range []bool{false, true} {
			eval, miner, err := r.workload(trace.PresetSynthetic)
			if err != nil {
				return nil, err
			}
			pol, err := policy.ByName(polName, r.opt.Backends, policy.Thresholds{})
			if err != nil {
				return nil, err
			}
			feats := cluster.Features{}
			if polName == "PRORD" {
				feats = cluster.AllFeatures()
			}
			cfg := cluster.Config{
				Params:   r.params(eval.TotalFileBytes(), r.opt.Backends, r.opt.MemoryFraction),
				Policy:   pol,
				Features: feats,
				Miner:    miner,
			}
			if managed {
				cfg.Power = cluster.PowerParams{
					Enabled:  true,
					Interval: time.Duration(float64(time.Second) / r.opt.LoadFactor * 10),
				}
			}
			cl, err := cluster.New(cfg)
			if err != nil {
				return nil, err
			}
			res, err := cl.Run(eval)
			if err != nil {
				return nil, err
			}
			label := polName
			if managed {
				label += "+power"
			}
			t.Rows = append(t.Rows, []string{
				label,
				fmt.Sprintf("%.0f", res.Throughput),
				fmt.Sprintf("%.2f", float64(res.MeanResponse)/float64(time.Millisecond)),
				fmt.Sprintf("%.3f", res.AvgPower),
				fmt.Sprintf("%d", res.Wakes),
				fmt.Sprintf("%d", res.Sleeps),
			})
			t.set(label, "throughput", res.Throughput)
			t.set(label, "power", res.AvgPower)
			t.set(label, "respms", float64(res.MeanResponse)/float64(time.Millisecond))
		}
	}
	t.Notes = append(t.Notes, "power rows use Table 1's 100%/5% active/hibernation draws; savings depend on offered load vs capacity")
	return t, nil
}

// FrontEnds regenerates §2.1's scalability discussion (Aron et al. [4]):
// the front-end distributor becomes the bottleneck under per-request
// handoff traffic, and decentralizing it (2-4 distributors behind an L4
// switch) relieves it — at no dispatch-count savings, which is PRORD's
// complementary angle.
func (r *Runner) FrontEnds() (*Table, error) {
	t := &Table{
		ID:     "frontends",
		Title:  "Decentralized front-end (WorldCup98, elevated load)",
		Header: []string{"Policy", "Distributors", "Throughput", "Hit rate", "Max front util", "Mean resp (ms)"},
	}
	// Elevate offered load so a single distributor saturates under LARD's
	// per-request handoffs.
	opt := r.opt
	opt.LoadFactor = r.opt.LoadFactor * 3
	rr := NewRunner(opt)
	for _, polName := range []string{"LARD", "PRORD"} {
		for _, nd := range []int{1, 2, 4} {
			eval, miner, err := rr.workload(trace.PresetWorldCup)
			if err != nil {
				return nil, err
			}
			pol, err := policy.ByName(polName, rr.opt.Backends, policy.Thresholds{})
			if err != nil {
				return nil, err
			}
			feats := cluster.Features{}
			if polName == "PRORD" {
				feats = cluster.AllFeatures()
			}
			cl, err := cluster.New(cluster.Config{
				Params:       rr.params(eval.TotalFileBytes(), rr.opt.Backends, rr.opt.MemoryFraction),
				Policy:       pol,
				Features:     feats,
				Miner:        miner,
				Distributors: nd,
			})
			if err != nil {
				return nil, err
			}
			res, err := cl.Run(eval)
			if err != nil {
				return nil, err
			}
			maxUtil := 0.0
			for _, u := range res.FrontUtilization {
				if u > maxUtil {
					maxUtil = u
				}
			}
			label := fmt.Sprintf("%s/%d", polName, nd)
			t.Rows = append(t.Rows, []string{
				polName,
				fmt.Sprintf("%d", nd),
				fmt.Sprintf("%.0f", res.Throughput),
				fmt.Sprintf("%.3f", res.HitRate),
				fmt.Sprintf("%.2f", maxUtil),
				fmt.Sprintf("%.2f", float64(res.MeanResponse)/float64(time.Millisecond)),
			})
			t.set(label, "throughput", res.Throughput)
			t.set(label, "frontutil", maxUtil)
		}
	}
	t.Notes = append(t.Notes,
		"decentralizing removes the front-end bottleneck (util drops) but floods the backends with a wider concurrent working set, collapsing locality",
		"the result supports §2.1's skepticism about [4]: parallel distributors are not a free win; PRORD attacks the same bottleneck by eliminating dispatches instead")
	return t, nil
}

// Failover measures PRORD's behaviour through a backend crash and
// recovery mid-run: completion, failovers, and the response-time cost.
func (r *Runner) Failover() (*Table, error) {
	t := &Table{
		ID:     "failover",
		Title:  "Backend crash at mid-run, recovery at 75% (Synthetic, PRORD)",
		Header: []string{"Scenario", "Completed", "Failovers", "Hit rate", "Mean resp (ms)"},
	}
	for _, scenario := range []string{"healthy", "crash", "crash+recover"} {
		eval, miner, err := r.workload(trace.PresetSynthetic)
		if err != nil {
			return nil, err
		}
		cfg := cluster.Config{
			Params:   r.params(eval.TotalFileBytes(), r.opt.Backends, r.opt.MemoryFraction),
			Policy:   policy.NewPRORD(policy.Thresholds{}),
			Features: cluster.AllFeatures(),
			Miner:    miner,
		}
		mid := eval.Requests[len(eval.Requests)/2].Time
		late := eval.Requests[3*len(eval.Requests)/4].Time
		switch scenario {
		case "crash":
			cfg.Failures = []cluster.Failure{{Server: 0, At: mid}}
		case "crash+recover":
			cfg.Failures = []cluster.Failure{{Server: 0, At: mid, RecoverAt: late}}
		}
		cl, err := cluster.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := cl.Run(eval)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			scenario,
			fmt.Sprintf("%d/%d", res.Metrics.Completed, len(eval.Requests)),
			fmt.Sprintf("%d", res.Metrics.Failovers),
			fmt.Sprintf("%.3f", res.HitRate),
			fmt.Sprintf("%.2f", float64(res.MeanResponse)/float64(time.Millisecond)),
		})
		t.set(scenario, "completed", float64(res.Metrics.Completed))
		t.set(scenario, "failovers", float64(res.Metrics.Failovers))
		t.set(scenario, "hitrate", res.HitRate)
		t.set(scenario, "respms", float64(res.MeanResponse)/float64(time.Millisecond))
	}
	t.Notes = append(t.Notes, "the crashed backend's memory is lost; requests caught in flight retry elsewhere")
	return t, nil
}
