package experiment

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"prord/internal/cluster"
	"prord/internal/trace"
)

// TestSimulationIsDeterministic is the reproducibility regression gate:
// the same Params and seed must yield byte-identical serialized Results.
// Every figure and table in this repo rests on that property; a stray
// wall-clock read, global rand draw or map-ordered aggregation breaks it
// (which is what prordlint's analyzers guard statically — this test is
// the dynamic check).
func TestSimulationIsDeterministic(t *testing.T) {
	opt := DefaultOptions()
	opt.Scale = 0.05
	run := Run{Preset: trace.PresetCS, Policy: "PRORD", Features: cluster.AllFeatures()}

	execute := func() ([]byte, *cluster.Result) {
		res, err := NewRunner(opt).Execute(run)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return data, res
	}

	data1, res1 := execute()
	data2, res2 := execute()
	if !bytes.Equal(data1, data2) {
		t.Errorf("serialized Results differ between identical seeded runs:\nrun1: %.200s\nrun2: %.200s", data1, data2)
	}
	// JSON misses unexported state (e.g. histogram buckets); DeepEqual
	// inspects everything.
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("Results differ structurally: %+v vs %+v", res1, res2)
	}
	if res1.Metrics.Completed == 0 {
		t.Fatal("degenerate run: no requests completed")
	}
}
