// Package experiment regenerates every table and figure of the paper's
// evaluation (§5): Table 1's parameters, Fig. 6's dispatch frequencies,
// Fig. 7's throughput comparison, Fig. 8's memory sweep, Fig. 9's
// per-enhancement ablation, the 6-16 backend scalability claim, the
// response-time comparison and the 30%-memory hit-rate claim — plus
// ablations over the design choices DESIGN.md calls out.
package experiment

import (
	"fmt"
	"time"

	"prord/internal/cluster"
	"prord/internal/mining"
	"prord/internal/policy"
	"prord/internal/replicate"
	"prord/internal/trace"
)

// Options configures an experiment campaign. The zero value is NOT usable;
// call DefaultOptions and override.
type Options struct {
	// Scale multiplies each preset's published request count (1.0 = the
	// paper's full trace sizes). Default 0.2 for quick runs.
	Scale float64
	// Seed drives all workload generation.
	Seed int64
	// Backends is the cluster size. Default 8.
	Backends int
	// MemoryFraction is the cluster's aggregate backend memory as a
	// fraction of the site's total data set ("generally, about 30% of
	// the website's data can be accommodated in the backend servers'
	// memory"). Default 0.3.
	MemoryFraction float64
	// LoadFactor compresses trace inter-arrival times to raise offered
	// load; the paper's throughput comparisons presuppose a loaded,
	// disk-bound system. Default 30.
	LoadFactor float64
	// TrainFraction is the prefix of each trace mined offline. Default 0.4.
	TrainFraction float64
	// Mining configures the log miner.
	Mining mining.Options
	// UseGDSF switches the demand caches from LRU to GDSF.
	UseGDSF bool
}

// DefaultOptions returns the defaults described on Options.
func DefaultOptions() Options {
	m := mining.DefaultOptions()
	// Trace times are compressed by LoadFactor, so the rank table must
	// decay gently per (shortened) replication interval.
	m.RankDecay = 0.9
	return Options{
		Scale:          0.2,
		Seed:           42,
		Backends:       8,
		MemoryFraction: 0.3,
		LoadFactor:     30,
		TrainFraction:  0.4,
		Mining:         m,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Scale <= 0 {
		o.Scale = d.Scale
	}
	if o.Backends <= 0 {
		o.Backends = d.Backends
	}
	if o.MemoryFraction <= 0 || o.MemoryFraction > 4 {
		o.MemoryFraction = d.MemoryFraction
	}
	if o.LoadFactor <= 0 {
		o.LoadFactor = d.LoadFactor
	}
	if o.TrainFraction <= 0 || o.TrainFraction >= 1 {
		o.TrainFraction = d.TrainFraction
	}
	return o
}

// Runner executes experiments.
type Runner struct {
	opt Options
}

// NewRunner returns a Runner with opt (unset fields defaulted).
func NewRunner(opt Options) *Runner {
	return &Runner{opt: opt.withDefaults()}
}

// Options returns the effective options.
func (r *Runner) Options() Options { return r.opt }

// compress divides all request times by factor, raising the offered load.
func compress(tr *trace.Trace, factor float64) {
	if factor <= 1 {
		return
	}
	for i := range tr.Requests {
		tr.Requests[i].Time = time.Duration(float64(tr.Requests[i].Time) / factor)
	}
}

// presetLoadScale normalizes offered load across presets: the WorldCup
// preset's base session rate is already ~6x the others (flash crowd), so
// a uniform compression factor would overload it while leaving the
// department traces unsaturated.
func presetLoadScale(p trace.Preset) float64 {
	switch p {
	case trace.PresetWorldCup:
		return 0.15
	case trace.PresetSynthetic:
		return 1.3
	default:
		return 1.0
	}
}

// workload builds the evaluation trace and the miner for a preset. Every
// call regenerates from the seed, so runs never share mutable state (the
// PRORD tracker learns online and would otherwise leak across runs).
func (r *Runner) workload(p trace.Preset) (*trace.Trace, *mining.Miner, error) {
	_, full, err := trace.GeneratePreset(p, r.opt.Scale, r.opt.Seed)
	if err != nil {
		return nil, nil, err
	}
	compress(full, r.opt.LoadFactor*presetLoadScale(p))
	train, eval := full.Split(r.opt.TrainFraction)
	miner := mining.Mine(train, r.opt.Mining)
	return eval, miner, nil
}

// params builds cluster parameters for a memory fraction: total memory =
// frac * dataset, split 64/36 between demand and pinned partitions
// (Table 1's 128 MB / 72 MB ratio). Baseline runs (no features) merge the
// two, so every policy sees the same total memory.
func (r *Runner) params(datasetBytes int64, backends int, memFraction float64) cluster.Params {
	p := cluster.DefaultParams()
	p.Backends = backends
	total := memFraction * float64(datasetBytes) / float64(backends)
	app := int64(total * 0.64)
	pin := int64(total * 0.36)
	const floor = 64 << 10
	if app < floor {
		app = floor
	}
	if pin < floor {
		pin = floor
	}
	p.AppMemory = app
	p.PinnedMemory = pin
	return p
}

// Run describes one simulation cell.
type Run struct {
	Preset   trace.Preset
	Policy   string
	Features cluster.Features
	// Backends and MemoryFraction override the campaign options when > 0.
	Backends       int
	MemoryFraction float64
}

// Execute runs one cell and returns the cluster result.
func (r *Runner) Execute(run Run) (*cluster.Result, error) {
	eval, miner, err := r.workload(run.Preset)
	if err != nil {
		return nil, err
	}
	backends := run.Backends
	if backends <= 0 {
		backends = r.opt.Backends
	}
	memFrac := run.MemoryFraction
	if memFrac <= 0 {
		memFrac = r.opt.MemoryFraction
	}
	pol, err := policy.ByName(run.Policy, backends, policy.Thresholds{})
	if err != nil {
		return nil, err
	}
	// Algorithm 3's period t shrinks with the trace's compressed
	// timescale so replication still runs several rounds per experiment.
	replInterval := time.Duration(float64(5*time.Second) / r.opt.LoadFactor)
	if replInterval < 100*time.Millisecond {
		replInterval = 100 * time.Millisecond
	}
	cl, err := cluster.New(cluster.Config{
		Params:   r.params(eval.TotalFileBytes(), backends, memFrac),
		Policy:   pol,
		Features: run.Features,
		Miner:    miner,
		UseGDSF:  r.opt.UseGDSF,
		// Replicate the hot head only: wide replication of the long tail
		// evicts demand-cached files for no hit-rate return.
		ReplicateConfig:     replicate.Config{T1Fraction: 0.05, MaxFiles: 64},
		ReplicationInterval: replInterval,
	})
	if err != nil {
		return nil, err
	}
	res, err := cl.Run(eval)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s on %s: %w", run.Policy, run.Preset, err)
	}
	return res, nil
}

// featuresFor returns the feature set a named comparison row uses: PRORD
// gets all three enhancements, baselines get none.
func featuresFor(policyName string) cluster.Features {
	if policyName == "PRORD" {
		return cluster.AllFeatures()
	}
	return cluster.Features{}
}

// presets are the three workloads of §5.1 in table order.
func presets() []trace.Preset {
	return []trace.Preset{trace.PresetCS, trace.PresetWorldCup, trace.PresetSynthetic}
}
