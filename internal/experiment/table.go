package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment outcome: one paper table or figure
// re-expressed as rows of text cells, plus the raw values for programmatic
// checks.
type Table struct {
	// ID is the paper artifact this regenerates ("fig6", "table1", ...).
	ID string
	// Title is the caption shown above the table.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the formatted cells.
	Rows [][]string
	// Values holds the raw numbers keyed [row label][column label] for
	// assertions in tests and benches.
	Values map[string]map[string]float64
	// Notes are free-form caveats printed under the table.
	Notes []string
}

// set records a raw value and is the canonical way figure builders fill
// Values.
func (t *Table) set(row, col string, v float64) {
	if t.Values == nil {
		t.Values = make(map[string]map[string]float64)
	}
	m, ok := t.Values[row]
	if !ok {
		m = make(map[string]float64)
		t.Values[row] = m
	}
	m[col] = v
}

// Get returns the raw value at (row, col) and whether it exists.
func (t *Table) Get(row, col string) (float64, bool) {
	m, ok := t.Values[row]
	if !ok {
		return 0, false
	}
	v, ok := m[col]
	return v, ok
}

// MustGet returns the raw value at (row, col), panicking if absent; it is
// for benches and examples where absence is a programming error.
func (t *Table) MustGet(row, col string) float64 {
	v, ok := t.Get(row, col)
	if !ok {
		panic(fmt.Sprintf("experiment: table %s has no value at (%q, %q)", t.ID, row, col))
	}
	return v
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table as text.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}
