// Package overload classifies cluster load into degrade-ladder tiers
// and bounds admitted work under the highest tier. It is the second
// half of the fault-tolerance story: internal/health handles dead
// backends, this package handles live-but-drowning ones.
//
// The paper only evaluates PRORD below saturation; its proactive
// machinery (prefetch hints, replication refresh) spends spare capacity
// that does not exist under overload. The degrade ladder sheds that
// speculative work first and user traffic last:
//
//	Normal     full PRORD (prefetch, replication, bundle bypass)
//	Elevated   prefetch hints and replication refresh are shed
//	Saturated  routing degrades to locality-only LARD; the bundle-aware
//	           dispatcher bypass stops
//	Critical   admission control: bounded in-flight plus a small bounded
//	           accept queue; the rest is refused fast (503 + Retry-After),
//	           never for in-progress sessions' embedded-object requests
//
// Like health.Breaker, the estimator is a pure state machine: every
// transition takes the current time as an argument, so the live
// front-end drives it with the wall clock while the simulator and tests
// drive it with a virtual one. The repo's nowallclock analyzer enforces
// the split. Neither type is goroutine-safe; the owner serializes
// access (the front-end holds its routing mutex).
package overload

import (
	"fmt"
	"time"
)

// Tier is a rung of the degrade ladder. Higher tiers shed more work;
// the ordering is significant (comparisons like tier >= Saturated gate
// behavior).
type Tier int

const (
	// Normal runs the full PRORD feature set.
	Normal Tier = iota
	// Elevated sheds speculative work: prefetch hints and replication
	// refresh.
	Elevated
	// Saturated additionally degrades routing to locality-only LARD and
	// stops the bundle-aware dispatcher bypass.
	Saturated
	// Critical additionally applies admission control to demand traffic.
	Critical
)

// String returns the tier's lower-case name.
func (t Tier) String() string {
	switch t {
	case Normal:
		return "normal"
	case Elevated:
		return "elevated"
	case Saturated:
		return "saturated"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// Config tunes the estimator and the admission gate. The zero value of
// each field selects the documented default.
type Config struct {
	// CapacityPerBackend is how many concurrent in-flight demand
	// requests one backend is assumed to absorb before saturating; the
	// cluster capacity is CapacityPerBackend times the backend count,
	// and the in-flight pressure signal reads 1.0 at that point.
	// Default 64.
	CapacityPerBackend int
	// TargetLatency is the front-end service time at which the latency
	// pressure signal reads 1.0. Default 250ms.
	TargetLatency time.Duration
	// LatencyAlpha is the EWMA smoothing factor for the latency signal,
	// in (0,1]. Default 0.2.
	LatencyAlpha float64
	// ElevatedAt, SaturatedAt and CriticalAt are the pressure thresholds
	// at which the ladder steps up. They must be positive and strictly
	// increasing. Defaults 0.5, 0.75, 1.0.
	ElevatedAt  float64
	SaturatedAt float64
	CriticalAt  float64
	// DownMargin is the hysteresis band: stepping down a tier requires
	// pressure below the entering threshold times (1 - DownMargin), in
	// [0,1). Default 0.1.
	DownMargin float64
	// MinHold is the minimum time spent in a tier before a step down;
	// steps up are immediate. Default 1s.
	MinHold time.Duration
	// QueueLimit bounds the Critical-tier accept queue: requests beyond
	// the in-flight capacity wait there for a freed slot; past it they
	// are shed. 0 selects the default of 16; negative disables the
	// queue entirely.
	QueueLimit int
	// QueueTimeout bounds how long a queued request waits for a slot
	// before being shed (used by the live front-end; the simulator
	// models the queue as in-flight headroom). Default 500ms.
	QueueTimeout time.Duration
	// RetryAfter is the Retry-After value (whole seconds) advertised on
	// shed responses. Default 1.
	RetryAfter int
}

// WithDefaults fills unset fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.CapacityPerBackend <= 0 {
		c.CapacityPerBackend = 64
	}
	if c.TargetLatency <= 0 {
		c.TargetLatency = 250 * time.Millisecond
	}
	if c.LatencyAlpha <= 0 {
		c.LatencyAlpha = 0.2
	}
	if c.ElevatedAt <= 0 {
		c.ElevatedAt = 0.5
	}
	if c.SaturatedAt <= 0 {
		c.SaturatedAt = 0.75
	}
	if c.CriticalAt <= 0 {
		c.CriticalAt = 1.0
	}
	if c.DownMargin <= 0 {
		c.DownMargin = 0.1
	}
	if c.MinHold <= 0 {
		c.MinHold = time.Second
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 16
	} else if c.QueueLimit < 0 {
		c.QueueLimit = 0
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 500 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	return c
}

// Validate checks the configuration after defaults are applied.
func (c Config) Validate() error {
	if c.LatencyAlpha > 1 {
		return fmt.Errorf("overload: latency alpha must be in (0,1], got %v", c.LatencyAlpha)
	}
	if !(c.ElevatedAt < c.SaturatedAt && c.SaturatedAt < c.CriticalAt) {
		return fmt.Errorf("overload: tier thresholds must increase, got %v/%v/%v",
			c.ElevatedAt, c.SaturatedAt, c.CriticalAt)
	}
	if c.DownMargin >= 1 {
		return fmt.Errorf("overload: down margin must be below 1, got %v", c.DownMargin)
	}
	return nil
}

// MarshalJSON encodes the tier by name, so JSON consumers (the cluster
// stats endpoint) see "saturated" rather than a bare ladder index.
func (t Tier) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// Transition records one ladder move, as an offset from the first
// request the estimator saw.
type Transition struct {
	At   time.Duration `json:"at"`
	From Tier          `json:"from"`
	To   Tier          `json:"to"`
}

// Estimator classifies cluster load into tiers from two signals:
// demand requests in flight versus the configured capacity, and an EWMA
// of front-end service latency versus the target. Pressure is the
// maximum of the two, so either a full pipeline or slow responses can
// escalate the ladder. Not goroutine-safe; the owner serializes access.
type Estimator struct {
	cfg      Config
	capacity int

	inflight int
	ewma     time.Duration
	hasEWMA  bool

	tier    Tier
	started bool
	start   time.Time
	since   time.Time

	transitions []Transition
}

// NewEstimator builds an estimator for a cluster of the given backend
// count, applying config defaults.
func NewEstimator(cfg Config, backends int) *Estimator {
	cfg = cfg.WithDefaults()
	if backends < 1 {
		backends = 1
	}
	return &Estimator{cfg: cfg, capacity: cfg.CapacityPerBackend * backends}
}

// SetBackends recomputes the cluster capacity for a resized backend
// pool and re-tiers against it. Without this, an estimator built for
// the startup pool keeps judging pressure against stale capacity as
// the pool elastically grows or shrinks (or as breakers exclude
// backends), making the tier ladder meaningless. Re-tiering waits for
// the first request, which anchors the transition log's time origin.
func (e *Estimator) SetBackends(n int, now time.Time) {
	if n < 1 {
		n = 1
	}
	e.capacity = e.cfg.CapacityPerBackend * n
	if e.started {
		e.retier(now)
	}
}

// Begin records one demand request entering the cluster and re-tiers.
// The first call anchors the transition log's time origin.
func (e *Estimator) Begin(now time.Time) {
	if !e.started {
		e.started = true
		e.start = now
		e.since = now
	}
	e.inflight++
	e.retier(now)
}

// End records one demand request leaving the cluster with the observed
// front-end service latency, updates the EWMA and re-tiers.
func (e *Estimator) End(now time.Time, latency time.Duration) {
	if !e.started {
		e.started = true
		e.start = now
		e.since = now
	}
	if e.inflight > 0 {
		e.inflight--
	}
	if latency > 0 {
		if !e.hasEWMA {
			e.ewma = latency
			e.hasEWMA = true
		} else {
			a := e.cfg.LatencyAlpha
			e.ewma = time.Duration(a*float64(latency) + (1-a)*float64(e.ewma))
		}
	}
	e.retier(now)
}

// Tier returns the current ladder position.
func (e *Estimator) Tier() Tier { return e.tier }

// InFlight returns the current demand requests in flight.
func (e *Estimator) InFlight() int { return e.inflight }

// Capacity returns the cluster-wide in-flight capacity.
func (e *Estimator) Capacity() int { return e.capacity }

// Pressure returns the current load estimate: the maximum of the
// in-flight and latency signals, each normalized so 1.0 means "at
// capacity".
func (e *Estimator) Pressure() float64 {
	p := float64(e.inflight) / float64(e.capacity)
	if e.hasEWMA && e.cfg.TargetLatency > 0 {
		if l := float64(e.ewma) / float64(e.cfg.TargetLatency); l > p {
			p = l
		}
	}
	return p
}

// Transitions returns a copy of the ladder moves so far, in order.
func (e *Estimator) Transitions() []Transition {
	return append([]Transition(nil), e.transitions...)
}

// retier moves the ladder. Steps up are immediate (possibly skipping
// tiers); steps down go one tier at a time and require both the
// hysteresis margin below the entering threshold and MinHold elapsed,
// so the ladder cannot flap on a noisy signal.
func (e *Estimator) retier(now time.Time) {
	p := e.Pressure()
	want := e.tierFor(p)
	switch {
	case want > e.tier:
		e.setTier(want, now)
	case want < e.tier:
		if now.Sub(e.since) >= e.cfg.MinHold && p < e.upThreshold(e.tier)*(1-e.cfg.DownMargin) {
			e.setTier(e.tier-1, now)
		}
	}
}

// tierFor maps a pressure reading to the tier it calls for.
func (e *Estimator) tierFor(p float64) Tier {
	switch {
	case p >= e.cfg.CriticalAt:
		return Critical
	case p >= e.cfg.SaturatedAt:
		return Saturated
	case p >= e.cfg.ElevatedAt:
		return Elevated
	}
	return Normal
}

// upThreshold returns the pressure that steps the ladder up into t.
func (e *Estimator) upThreshold(t Tier) float64 {
	switch t {
	case Critical:
		return e.cfg.CriticalAt
	case Saturated:
		return e.cfg.SaturatedAt
	default:
		return e.cfg.ElevatedAt
	}
}

func (e *Estimator) setTier(t Tier, now time.Time) {
	e.transitions = append(e.transitions, Transition{At: now.Sub(e.start), From: e.tier, To: t})
	e.tier = t
	e.since = now
}
