package overload

import (
	"testing"
	"time"
)

// TestEstimatorSetBackends is the capacity-resize regression: the
// estimator used to bake CapacityPerBackend×backends at construction,
// so an elastic pool's joins and drains never moved the pressure
// denominator. A resize must change Capacity and re-tier immediately.
func TestEstimatorSetBackends(t *testing.T) {
	clk := newClock()
	e := NewEstimator(Config{CapacityPerBackend: 4, MinHold: time.Millisecond}, 1)
	for i := 0; i < 4; i++ {
		e.Begin(clk.advance(time.Millisecond))
	}
	if e.Tier() != Critical {
		t.Fatalf("tier = %v, want critical at 4/4", e.Tier())
	}

	// Doubling the pool halves the pressure: 4/8 = 0.5. The resize
	// re-tiers on the spot, stepping down one rung per MinHold like any
	// other descent.
	e.SetBackends(2, clk.advance(50*time.Millisecond))
	if e.Capacity() != 8 {
		t.Fatalf("capacity = %d, want 8", e.Capacity())
	}
	if e.Tier() != Saturated {
		t.Fatalf("tier = %v, want saturated (one step down) after grow", e.Tier())
	}
	e.End(clk.advance(50*time.Millisecond), 0) // 3/8, re-tier steps again
	if e.Tier() != Elevated {
		t.Fatalf("tier = %v, want elevated", e.Tier())
	}

	// Shrinking re-raises pressure: 3/4 = 0.75 jumps straight back up.
	e.SetBackends(1, clk.advance(50*time.Millisecond))
	if e.Capacity() != 4 {
		t.Fatalf("capacity = %d, want 4", e.Capacity())
	}
	if e.Tier() != Saturated {
		t.Fatalf("tier = %v, want saturated after shrink", e.Tier())
	}

	// n is clamped to at least one backend.
	e.SetBackends(0, clk.advance(time.Millisecond))
	if e.Capacity() != 4 {
		t.Fatalf("capacity = %d, want 4 (clamped to one backend)", e.Capacity())
	}
}

// TestEstimatorSetBackendsBeforeStart checks a resize before the first
// Begin doesn't fabricate a transition at a bogus offset.
func TestEstimatorSetBackendsBeforeStart(t *testing.T) {
	e := NewEstimator(Config{CapacityPerBackend: 4}, 1)
	e.SetBackends(3, time.Time{}.Add(time.Hour))
	if e.Capacity() != 12 {
		t.Fatalf("capacity = %d, want 12", e.Capacity())
	}
	if tr := e.Transitions(); len(tr) != 0 {
		t.Fatalf("transitions before start = %v, want none", tr)
	}
}

// TestGateSetLimit checks growing the admission limit promotes queued
// waiters (their grants run outside the lock, like Leave's) and
// shrinking strands no one.
func TestGateSetLimit(t *testing.T) {
	g := NewGate(1, 4)
	if _, ok := g.Enter(true, nil); !ok {
		t.Fatal("first request refused")
	}
	var granted []int
	for i := 0; i < 3; i++ {
		i := i
		if w, ok := g.Enter(true, func() { granted = append(granted, i) }); !ok || w == nil {
			t.Fatalf("request %d not queued", i)
		}
	}

	// Growing to 3 promotes the first two waiters in FIFO order.
	grants := g.SetLimit(3)
	if len(grants) != 2 {
		t.Fatalf("grow grants = %d, want 2", len(grants))
	}
	for _, grant := range grants {
		grant()
	}
	if len(granted) != 2 || granted[0] != 0 || granted[1] != 1 {
		t.Fatalf("granted order = %v, want [0 1]", granted)
	}
	if g.InFlight() != 3 || g.Queued() != 1 {
		t.Fatalf("after grow: inflight=%d queued=%d, want 3/1", g.InFlight(), g.Queued())
	}

	// Shrinking below the in-flight count promotes no one and strands no
	// one: in-flight requests finish normally and Leaves hand slots to
	// the queue only once under the new limit.
	if grants := g.SetLimit(1); len(grants) != 0 {
		t.Fatalf("shrink grants = %d, want 0", len(grants))
	}
	if grant := g.Leave(); grant != nil {
		t.Fatal("Leave above the shrunken limit handed out a slot")
	}
	if grant := g.Leave(); grant != nil {
		t.Fatal("Leave at the shrunken limit handed out a slot")
	}
	// Now in-flight (1) == limit (1); the next Leave frees a slot for
	// the remaining waiter.
	if grant := g.Leave(); grant == nil {
		t.Fatal("Leave under the shrunken limit stranded the waiter")
	} else {
		grant()
	}
	if len(granted) != 3 || granted[2] != 2 {
		t.Fatalf("granted = %v, want final waiter promoted", granted)
	}
	if g.InFlight() != 1 || g.Queued() != 0 {
		t.Fatalf("end state: inflight=%d queued=%d, want 1/0", g.InFlight(), g.Queued())
	}

	// The limit clamps to at least one.
	g.SetLimit(0)
	g.Leave()
	if _, ok := g.Enter(true, nil); !ok {
		t.Fatal("request refused at clamped limit 1")
	}
}
