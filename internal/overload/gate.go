package overload

// Waiter is one request parked in the Gate's accept queue. It carries
// the grant callback the owner supplied at Enter time; the Gate hands
// the callback back from Leave so the owner can run it outside its own
// mutex (the live front-end closes a channel, the simulator resumes the
// request at the current virtual time).
type Waiter struct {
	grant func()
}

// Gate is the Critical-tier admission control: a bounded in-flight
// count plus a small bounded FIFO accept queue. It is clockless — the
// caller owns queue-wait timeouts — and, like the estimator, not
// goroutine-safe: the owner serializes every method behind its own
// mutex. Queue grants are delivered through the callback registered at
// Enter time, returned by Leave for the owner to invoke after releasing
// that mutex.
type Gate struct {
	limit      int
	queueLimit int
	inflight   int
	queue      []*Waiter
}

// NewGate builds a gate admitting up to limit concurrent requests with
// up to queueLimit more waiting.
func NewGate(limit, queueLimit int) *Gate {
	if limit < 1 {
		limit = 1
	}
	if queueLimit < 0 {
		queueLimit = 0
	}
	return &Gate{limit: limit, queueLimit: queueLimit}
}

// Enter asks to admit one request. With enforce false (tiers below
// Critical, or a bypassed embedded-object request) the request is
// always admitted and only counted. With enforce true the request is
// admitted while under the in-flight limit, queued while the accept
// queue has room — grant runs when a slot frees, via the callback Leave
// returns to its caller — and otherwise refused (nil, false). Every
// admitted or granted request must be paired with exactly one Leave.
func (g *Gate) Enter(enforce bool, grant func()) (wait *Waiter, ok bool) {
	if !enforce || g.inflight < g.limit {
		g.inflight++
		return nil, true
	}
	if len(g.queue) < g.queueLimit {
		w := &Waiter{grant: grant}
		g.queue = append(g.queue, w)
		return w, true
	}
	return nil, false
}

// Leave releases one admitted request's slot. If the queue is
// non-empty the slot passes straight to its head (the in-flight count
// is unchanged) and the head's grant callback is returned for the owner
// to run outside its mutex; otherwise the count drops and Leave returns
// nil. After SetLimit shrank the gate, slots are reclaimed — not handed
// on — until the in-flight count is back under the limit.
func (g *Gate) Leave() (grant func()) {
	if g.inflight <= g.limit && len(g.queue) > 0 {
		w := g.queue[0]
		g.queue = g.queue[1:]
		return w.grant
	}
	if g.inflight > 0 {
		g.inflight--
	}
	return nil
}

// SetLimit resizes the in-flight bound for an elastically resized
// pool. Growing the limit promotes queued waiters into the freed
// headroom; their grant callbacks are returned for the owner to run
// outside its mutex, exactly like Leave's. Shrinking never evicts
// admitted requests — the in-flight count drains down naturally as
// requests Leave.
func (g *Gate) SetLimit(limit int) (grants []func()) {
	if limit < 1 {
		limit = 1
	}
	g.limit = limit
	for g.inflight < g.limit && len(g.queue) > 0 {
		w := g.queue[0]
		g.queue = g.queue[1:]
		g.inflight++
		grants = append(grants, w.grant)
	}
	return grants
}

// Abandon withdraws a queued request after its wait timed out. It
// reports whether the request was still queued: false means the slot
// was already granted — the caller owns it and must Leave as usual.
func (g *Gate) Abandon(wait *Waiter) bool {
	for i, w := range g.queue {
		if w == wait {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			return true
		}
	}
	return false
}

// InFlight returns the admitted requests currently in flight.
func (g *Gate) InFlight() int { return g.inflight }

// Queued returns the requests waiting in the accept queue.
func (g *Gate) Queued() int { return len(g.queue) }
