package overload

// Gate is the Critical-tier admission control: a bounded in-flight
// count plus a small bounded FIFO accept queue. It is clockless — the
// caller owns queue-wait timeouts — and, like the estimator, not
// goroutine-safe: the owner serializes every method behind its own
// mutex. Queue grants are delivered by closing the channel Enter
// returned, which the caller waits on outside that mutex.
type Gate struct {
	limit      int
	queueLimit int
	inflight   int
	queue      []chan struct{}
}

// NewGate builds a gate admitting up to limit concurrent requests with
// up to queueLimit more waiting.
func NewGate(limit, queueLimit int) *Gate {
	if limit < 1 {
		limit = 1
	}
	if queueLimit < 0 {
		queueLimit = 0
	}
	return &Gate{limit: limit, queueLimit: queueLimit}
}

// Enter asks to admit one request. With enforce false (tiers below
// Critical, or a bypassed embedded-object request) the request is
// always admitted and only counted. With enforce true the request is
// admitted while under the in-flight limit, queued while the accept
// queue has room — the returned channel is closed when a slot frees —
// and otherwise refused (nil, false). Every admitted or granted request
// must be paired with exactly one Leave.
func (g *Gate) Enter(enforce bool) (wait chan struct{}, ok bool) {
	if !enforce || g.inflight < g.limit {
		g.inflight++
		return nil, true
	}
	if len(g.queue) < g.queueLimit {
		ch := make(chan struct{})
		g.queue = append(g.queue, ch)
		return ch, true
	}
	return nil, false
}

// Leave releases one admitted request's slot. If the queue is
// non-empty the slot passes straight to its head (the in-flight count
// is unchanged); otherwise the count drops.
func (g *Gate) Leave() {
	if len(g.queue) > 0 {
		ch := g.queue[0]
		g.queue = g.queue[1:]
		close(ch)
		return
	}
	if g.inflight > 0 {
		g.inflight--
	}
}

// Abandon withdraws a queued request after its wait timed out. It
// reports whether the request was still queued: false means the slot
// was already granted — the caller owns it and must Leave as usual.
func (g *Gate) Abandon(wait chan struct{}) bool {
	for i, ch := range g.queue {
		if ch == wait {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			return true
		}
	}
	return false
}

// InFlight returns the admitted requests currently in flight.
func (g *Gate) InFlight() int { return g.inflight }

// Queued returns the requests waiting in the accept queue.
func (g *Gate) Queued() int { return len(g.queue) }
