package overload

import (
	"testing"
	"time"
)

// clock is a tiny synthetic wall clock for driving the estimator.
type clock struct{ t time.Time }

func (c *clock) now() time.Time { return c.t }

func (c *clock) advance(d time.Duration) time.Time {
	c.t = c.t.Add(d)
	return c.t
}

func newClock() *clock { return &clock{t: time.Time{}.Add(time.Hour)} }

func TestConfigDefaultsAndValidate(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.CapacityPerBackend != 64 || c.QueueLimit != 16 || c.RetryAfter != 1 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if !(c.ElevatedAt < c.SaturatedAt && c.SaturatedAt < c.CriticalAt) {
		t.Fatalf("default thresholds not increasing: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("defaults should validate: %v", err)
	}
	if got := (Config{QueueLimit: -1}).WithDefaults().QueueLimit; got != 0 {
		t.Errorf("negative QueueLimit should disable the queue, got %d", got)
	}
	bad := []Config{
		Config{ElevatedAt: 0.9, SaturatedAt: 0.8}.WithDefaults(),
		Config{SaturatedAt: 1.5}.WithDefaults(),
		Config{LatencyAlpha: 1.5}.WithDefaults(),
		Config{DownMargin: 1.5}.WithDefaults(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should not validate: %+v", i, c)
		}
	}
}

func TestTierString(t *testing.T) {
	want := map[Tier]string{Normal: "normal", Elevated: "elevated", Saturated: "saturated", Critical: "critical"}
	for tier, s := range want {
		if tier.String() != s {
			t.Errorf("Tier(%d).String() = %q, want %q", int(tier), tier.String(), s)
		}
	}
}

// TestEstimatorClimbsWithInFlight walks the in-flight count up through
// every tier and checks the transition log records each move with the
// right offsets.
func TestEstimatorClimbsWithInFlight(t *testing.T) {
	clk := newClock()
	e := NewEstimator(Config{CapacityPerBackend: 4, MinHold: time.Hour}, 1)
	if e.Capacity() != 4 {
		t.Fatalf("capacity = %d, want 4", e.Capacity())
	}
	// 1 in flight: 0.25 pressure, Normal. 2: 0.5, Elevated. 3: 0.75,
	// Saturated. 4: 1.0, Critical.
	wantTiers := []Tier{Normal, Elevated, Saturated, Critical}
	for i, want := range wantTiers {
		e.Begin(clk.advance(10 * time.Millisecond))
		if e.InFlight() != i+1 {
			t.Fatalf("in flight = %d, want %d", e.InFlight(), i+1)
		}
		if e.Tier() != want {
			t.Fatalf("after %d Begins tier = %v, want %v", i+1, e.Tier(), want)
		}
	}
	tr := e.Transitions()
	if len(tr) != 3 {
		t.Fatalf("transitions = %v, want 3 moves", tr)
	}
	for i, mv := range tr {
		if mv.From != Tier(i) || mv.To != Tier(i+1) {
			t.Errorf("transition %d = %v→%v, want %v→%v", i, mv.From, mv.To, Tier(i), Tier(i+1))
		}
		if mv.At <= 0 {
			t.Errorf("transition %d offset %v not positive", i, mv.At)
		}
		if i > 0 && mv.At < tr[i-1].At {
			t.Errorf("transition offsets not monotone: %v", tr)
		}
	}
}

// TestEstimatorHysteresis checks steps down are held by MinHold, happen
// one tier at a time, and require the margin below the entering
// threshold.
func TestEstimatorHysteresis(t *testing.T) {
	clk := newClock()
	e := NewEstimator(Config{CapacityPerBackend: 4, MinHold: 100 * time.Millisecond, DownMargin: 0.1}, 1)
	for i := 0; i < 4; i++ {
		e.Begin(clk.advance(time.Millisecond))
	}
	if e.Tier() != Critical {
		t.Fatalf("tier = %v, want critical", e.Tier())
	}
	// Pressure drops to zero immediately, but MinHold pins the tier.
	for i := 0; i < 4; i++ {
		e.End(clk.advance(time.Millisecond), 0)
	}
	if e.Tier() != Critical {
		t.Fatalf("tier dropped before MinHold: %v", e.Tier())
	}
	// After MinHold each re-tier steps down exactly one rung.
	e.End(clk.advance(150*time.Millisecond), 0)
	if e.Tier() != Saturated {
		t.Fatalf("tier = %v, want saturated (one step down)", e.Tier())
	}
	e.End(clk.advance(150*time.Millisecond), 0)
	e.End(clk.advance(150*time.Millisecond), 0)
	if e.Tier() != Normal {
		t.Fatalf("tier = %v, want normal after full descent", e.Tier())
	}
	// 3 in flight = 0.75 = Saturated; dropping to 2 (0.5) is NOT below
	// 0.75*(1-0.1), so the ladder must hold Saturated... 0.5 < 0.675, so
	// it does step. Use the margin band instead: hold at pressure just
	// under the threshold.
	e2 := NewEstimator(Config{CapacityPerBackend: 10, MinHold: time.Millisecond, DownMargin: 0.4}, 1)
	clk2 := newClock()
	for i := 0; i < 5; i++ {
		e2.Begin(clk2.advance(time.Millisecond))
	}
	if e2.Tier() != Elevated {
		t.Fatalf("tier = %v, want elevated", e2.Tier())
	}
	// 4 in flight = 0.4 pressure: below ElevatedAt (0.5) but not below
	// 0.5*(1-0.4)=0.3, so the tier holds despite MinHold having passed.
	e2.End(clk2.advance(50*time.Millisecond), 0)
	if e2.Tier() != Elevated {
		t.Fatalf("tier = %v, want elevated held by margin", e2.Tier())
	}
	// 2 in flight = 0.2 < 0.3: now it steps down.
	e2.End(clk2.advance(50*time.Millisecond), 0)
	e2.End(clk2.advance(50*time.Millisecond), 0)
	if e2.Tier() != Normal {
		t.Fatalf("tier = %v, want normal below margin", e2.Tier())
	}
}

// TestEstimatorLatencySignal checks slow responses alone escalate the
// ladder even with a near-empty pipeline.
func TestEstimatorLatencySignal(t *testing.T) {
	clk := newClock()
	e := NewEstimator(Config{CapacityPerBackend: 1000, TargetLatency: 100 * time.Millisecond, LatencyAlpha: 1}, 4)
	e.Begin(clk.advance(time.Millisecond))
	e.End(clk.advance(time.Millisecond), 120*time.Millisecond)
	if e.Tier() != Critical {
		t.Fatalf("tier = %v, want critical from latency signal (pressure %v)", e.Tier(), e.Pressure())
	}
	if p := e.Pressure(); p < 1.0 {
		t.Errorf("pressure = %v, want >= 1.0", p)
	}
}

// TestEstimatorUpSkipsTiers checks a pressure spike jumps straight to
// the tier it calls for rather than climbing one rung per event.
func TestEstimatorUpSkipsTiers(t *testing.T) {
	clk := newClock()
	e := NewEstimator(Config{CapacityPerBackend: 1000, TargetLatency: 10 * time.Millisecond, LatencyAlpha: 1}, 1)
	e.Begin(clk.advance(time.Millisecond))
	e.End(clk.advance(time.Millisecond), 8*time.Millisecond) // 0.8 → Saturated directly
	if e.Tier() != Saturated {
		t.Fatalf("tier = %v, want saturated", e.Tier())
	}
	tr := e.Transitions()
	if len(tr) != 1 || tr[0].From != Normal || tr[0].To != Saturated {
		t.Fatalf("transitions = %v, want one normal→saturated move", tr)
	}
}

func TestGateAdmitQueueRefuse(t *testing.T) {
	g := NewGate(2, 1)
	if _, ok := g.Enter(true, nil); !ok {
		t.Fatal("first request refused")
	}
	if _, ok := g.Enter(true, nil); !ok {
		t.Fatal("second request refused under limit")
	}
	if g.InFlight() != 2 {
		t.Fatalf("in flight = %d, want 2", g.InFlight())
	}
	// Third queues, fourth is refused.
	granted := false
	wait, ok := g.Enter(true, func() { granted = true })
	if !ok || wait == nil {
		t.Fatalf("third request: wait=%v ok=%v, want queued", wait, ok)
	}
	if g.Queued() != 1 {
		t.Fatalf("queued = %d, want 1", g.Queued())
	}
	if w, ok := g.Enter(true, nil); ok || w != nil {
		t.Fatal("fourth request admitted past the queue limit")
	}
	// A Leave hands the slot to the queue head without dropping the
	// in-flight count; the head's grant callback comes back to run
	// outside the owner's mutex.
	if grant := g.Leave(); grant == nil {
		t.Fatal("Leave with a queued waiter returned no grant")
	} else {
		grant()
	}
	if !granted {
		t.Fatal("queued request not granted after Leave")
	}
	if g.InFlight() != 2 || g.Queued() != 0 {
		t.Fatalf("after grant: inflight=%d queued=%d, want 2/0", g.InFlight(), g.Queued())
	}
	if grant := g.Leave(); grant != nil {
		t.Fatal("Leave with an empty queue returned a grant")
	}
	g.Leave()
	if g.InFlight() != 0 {
		t.Fatalf("in flight = %d, want 0 after draining", g.InFlight())
	}
}

func TestGateBypassNotEnforced(t *testing.T) {
	g := NewGate(1, 0)
	if _, ok := g.Enter(true, nil); !ok {
		t.Fatal("first request refused")
	}
	// Non-enforced entries (embedded-object bypass, lower tiers) are
	// always admitted, even past the limit — but still counted so Leave
	// stays balanced.
	if _, ok := g.Enter(false, nil); !ok {
		t.Fatal("bypass request refused")
	}
	if g.InFlight() != 2 {
		t.Fatalf("in flight = %d, want 2", g.InFlight())
	}
	if _, ok := g.Enter(true, nil); ok {
		t.Fatal("enforced request admitted with no queue and full gate")
	}
	g.Leave()
	g.Leave()
	if g.InFlight() != 0 {
		t.Fatalf("in flight = %d, want 0", g.InFlight())
	}
}

func TestGateAbandon(t *testing.T) {
	g := NewGate(1, 2)
	g.Enter(true, nil)
	w2granted := false
	w1, _ := g.Enter(true, func() { t.Fatal("abandoned waiter granted") })
	w2, _ := g.Enter(true, func() { w2granted = true })
	if g.Queued() != 2 {
		t.Fatalf("queued = %d, want 2", g.Queued())
	}
	// Abandoning a queued request removes it; the later entry keeps its
	// FIFO position.
	if !g.Abandon(w1) {
		t.Fatal("abandon of a queued request reported already-granted")
	}
	if grant := g.Leave(); grant != nil {
		grant()
	}
	if !w2granted {
		t.Fatal("remaining queued request not granted")
	}
	// w2's slot was granted, so abandoning it now must report false and
	// the caller keeps the slot.
	if g.Abandon(w2) {
		t.Fatal("abandon of a granted request reported queued")
	}
	g.Leave()
	if g.InFlight() != 0 || g.Queued() != 0 {
		t.Fatalf("gate not drained: inflight=%d queued=%d", g.InFlight(), g.Queued())
	}
}
