//go:build race

package dispatch_test

const raceEnabled = true
