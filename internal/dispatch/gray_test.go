package dispatch_test

// Gray-failure wiring tests for the decision core: the Degraded hook's
// soft exclusion and progressive rebinding, the shared holder-
// preferring target helper behind Rebook and HedgeTarget, and the
// hedge booking lifecycle.

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prord/internal/dispatch"
	"prord/internal/policy"
	"prord/internal/randutil"
)

// grayMask is a lock-free Degraded hook for tests.
type grayMask struct{ bits []atomic.Bool }

func newGrayMask(n int) *grayMask       { return &grayMask{bits: make([]atomic.Bool, n)} }
func (g *grayMask) set(s int, v bool)   { g.bits[s].Store(v) }
func (g *grayMask) degraded(s int) bool { return g.bits[s].Load() }

func newGrayCore(t *testing.T, backends int, g *grayMask) *dispatch.Core {
	t.Helper()
	cfg := dispatch.Config{
		Backends: backends,
		Policy:   policy.NewPRORD(policy.Thresholds{}),
	}
	if g != nil {
		cfg.Degraded = g.degraded
	}
	c, err := dispatch.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDegradedExcludedFromNewBindings(t *testing.T) {
	g := newGrayMask(4)
	c := newGrayCore(t, 4, g)
	now := time.Unix(0, 0)
	g.set(1, true)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("10.0.0.%d:1", i)
		path := fmt.Sprintf("/g0/p%d.html", i)
		out := c.Route(key, path, 1024, now)
		if !out.OK {
			t.Fatal("unroutable with three healthy backends")
		}
		if out.Server == 1 {
			t.Fatalf("new binding %d placed on degraded backend 1", i)
		}
		c.Done(key, out.Server, path, false, false)
	}
}

func TestDegradedSessionRebindsProgressively(t *testing.T) {
	g := newGrayMask(4)
	c := newGrayCore(t, 4, g)
	now := time.Unix(0, 0)
	// Bind a batch of sessions while healthy — distinct paths so the
	// locality-first policy spreads them — and note where each landed.
	keys := make([]string, 32)
	bound := make([]int, len(keys))
	perBackend := make([]int, 4)
	for i := range keys {
		keys[i] = fmt.Sprintf("10.1.0.%d:1", i)
		path := fmt.Sprintf("/g1/s%d.html", i)
		out := c.Route(keys[i], path, 1024, now)
		c.Done(keys[i], out.Server, path, false, false)
		bound[i] = out.Server
		perBackend[out.Server]++
	}
	victim := 0
	for s, n := range perBackend {
		if n > perBackend[victim] {
			victim = s
		}
	}
	if perBackend[victim] == 0 {
		t.Fatal("no sessions bound anywhere")
	}
	// Degrade the victim: each bound session must move on its next
	// request — and the move is counted as a gray rebind.
	g.set(victim, true)
	for i, key := range keys {
		path := fmt.Sprintf("/g1/t%d.html", i)
		out := c.Route(key, path, 1024, now)
		if out.Server == victim {
			t.Fatal("session stayed pinned to degraded backend")
		}
		c.Done(key, out.Server, path, false, false)
	}
	if got := c.Stats().GrayRebinds; got != int64(perBackend[victim]) {
		t.Errorf("GrayRebinds = %d, want %d (sessions that were on backend %d)",
			got, perBackend[victim], victim)
	}
	g.set(victim, false)
	// Recovery: clearing the flag restores normal routing with no
	// lingering exclusion.
	landed := false
	for i := 0; i < 64 && !landed; i++ {
		key := fmt.Sprintf("10.1.1.%d:1", i)
		out := c.Route(key, fmt.Sprintf("/g1/q%d.html", i), 1024, now)
		landed = landed || out.Server == victim
		c.Done(key, out.Server, fmt.Sprintf("/g1/q%d.html", i), false, false)
	}
	if !landed {
		t.Error("recovered backend never took a new binding")
	}
}

func TestDegradedAllFallsBackToAvail(t *testing.T) {
	// Degrading is bounded by the caller (the detector never ejects a
	// majority), but the core must stay safe if every backend reads
	// degraded: the accept mask falls back to availability.
	g := newGrayMask(2)
	c := newGrayCore(t, 2, g)
	now := time.Unix(0, 0)
	g.set(0, true)
	g.set(1, true)
	out := c.Route("10.2.0.1:1", "/g0/p0.html", 1024, now)
	if !out.OK {
		t.Fatal("unroutable with all backends degraded — accept mask must fall back to avail")
	}
	c.Done("10.2.0.1:1", out.Server, "/g0/p0.html", false, false)
}

func TestRebookPrefersFileHolder(t *testing.T) {
	c := newGrayCore(t, 4, nil)
	now := time.Unix(0, 0)
	const path = "/g0/hot.html"
	// Teach the optimistic locality map that some backend holds the
	// file, then keep that booking open so the holder carries load 1
	// while the others sit idle — plain least-loaded would avoid it.
	holderKey := ""
	holder := -1
	for i := 0; holder < 0; i++ {
		key := fmt.Sprintf("10.3.1.%d:1", i)
		out := c.Route(key, path, 1024, now)
		if !out.OK {
			t.Fatal("unroutable")
		}
		if i >= 8 || out.Server == 3 {
			holderKey, holder = key, out.Server
			break
		}
		// Not the designated victim: fail the attempt so the optimistic
		// locality claim is dropped again, and release the booking.
		c.Done(key, out.Server, path, true, false)
	}
	srv, ok := c.Rebook("10.3.9.9:1", path, (holder+1)%4, now)
	if !ok {
		t.Fatal("Rebook found no target")
	}
	if srv != holder {
		t.Errorf("Rebook picked %d, want holder %d despite its higher load", srv, holder)
	}
	c.Done("10.3.9.9:1", srv, path, false, true)
	c.Done(holderKey, holder, path, false, false)
}

func TestHedgeTargetAvoidsPrimaryAndDegraded(t *testing.T) {
	g := newGrayMask(3)
	c := newGrayCore(t, 3, g)
	now := time.Unix(0, 0)
	g.set(1, true)
	for i := 0; i < 32; i++ {
		s, ok := c.HedgeTarget("/g0/p0.html", 0, now)
		if !ok {
			t.Fatal("no hedge target with backend 2 healthy")
		}
		if s == 0 || s == 1 {
			t.Fatalf("HedgeTarget picked %d (primary 0, degraded 1)", s)
		}
	}
	// With every alternative degraded there is nothing worth hedging to.
	g.set(2, true)
	if s, ok := c.HedgeTarget("/g0/p0.html", 0, now); ok {
		t.Fatalf("HedgeTarget returned %d with all alternatives degraded", s)
	}
}

func TestHedgeBookingLifecycleAndCap(t *testing.T) {
	c := newGrayCore(t, 2, nil)
	const path = "/g0/p0.html"
	if !c.TryBeginHedge(1, path, 2) || !c.TryBeginHedge(1, path, 2) {
		t.Fatal("hedge bookings under the cap refused")
	}
	if c.TryBeginHedge(1, path, 2) {
		t.Fatal("hedge booking over the cap accepted")
	}
	if got := c.HedgeLoad(1); got != 2 {
		t.Fatalf("HedgeLoad = %d, want 2", got)
	}
	c.FinishHedge(1, path, false, true) // hedge won
	c.FinishHedge(1, path, true, false) // hedge canceled/failed
	if got := c.HedgeLoad(1); got != 0 {
		t.Fatalf("HedgeLoad = %d after release, want 0", got)
	}
	if got := c.Loads()[1]; got != 0 {
		t.Fatalf("Loads[1] = %d after hedges released, want 0", got)
	}
	st := c.Stats()
	if st.HedgesFired != 2 || st.HedgeWins != 1 {
		t.Fatalf("HedgesFired=%d HedgeWins=%d, want 2/1", st.HedgesFired, st.HedgeWins)
	}
	if n := c.InFlightFiles(); n != 0 {
		t.Fatalf("%d files in flight after hedges released", n)
	}
}

// TestDegradedHookNoopKeepsDecisionStream pins the narrowed accept-mask
// plumbing to the historical behavior: a core with an always-false
// Degraded hook must emit byte-identical decision records to one with
// no hook at all.
func TestDegradedHookNoopKeepsDecisionStream(t *testing.T) {
	run := func(withHook bool) []dispatch.Record {
		var recs []dispatch.Record
		cfg := dispatch.Config{
			Backends: 4,
			Policy:   policy.NewPRORD(policy.Thresholds{}),
			Recorder: func(r dispatch.Record) { recs = append(recs, r) },
		}
		if withHook {
			cfg.Degraded = func(int) bool { return false }
		}
		c, err := dispatch.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		now := time.Unix(0, 0)
		rng := randutil.New(99)
		for i := 0; i < 2000; i++ {
			key := fmt.Sprintf("10.9.%d.%d:1", rng.Intn(8), rng.Intn(32))
			path := fmt.Sprintf("/g%d/p%d.html", rng.Intn(4), rng.Intn(64))
			out := c.Route(key, path, 1024, now)
			if out.OK {
				c.Done(key, out.Server, path, false, false)
			}
		}
		return recs
	}
	plain, hooked := run(false), run(true)
	if !reflect.DeepEqual(plain, hooked) {
		t.Fatal("always-false Degraded hook changed the decision stream")
	}
}

// TestCoreGrayDegradedChurn is the concurrency storm for the gray
// wiring, aimed at the race detector (`make race-grayfault`): workers
// drive the full booking lifecycle — Route, failed attempts, Rebook,
// hedge bookings, Done — while a flipper goroutine keeps toggling the
// Degraded mask, rewriting the accept set mid-flight. After the storm
// every book must balance exactly.
func TestCoreGrayDegradedChurn(t *testing.T) {
	const backends = 4
	g := newGrayMask(backends)
	c, err := dispatch.New(dispatch.Config{
		Backends:        backends,
		Policy:          policy.NewPRORD(policy.Thresholds{}),
		Degraded:        g.degraded,
		LocalityEntries: 512,
		MaxSessions:     256,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)

	const workers = 8
	const iters = 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randutil.New(int64(2000 + w))
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("10.2.%d.%d:99", w, rng.Intn(64))
				path := fmt.Sprintf("/g%d/p%d.html", rng.Intn(4), rng.Intn(128))
				out := c.Route(key, path, 2048, now)
				if !out.OK {
					t.Errorf("worker %d: no backend available with none down", w)
					continue
				}
				switch rng.Intn(10) {
				case 0:
					// Failed attempt masked by a failover retry.
					c.Done(key, out.Server, path, true, false)
					if srv, ok := c.Rebook(key, path, out.Server, now); ok {
						c.Done(key, srv, path, false, true)
					}
				case 1, 2:
					// Hedged attempt: book a backup, settle both legs.
					if target, ok := c.HedgeTarget(path, out.Server, now); ok &&
						c.TryBeginHedge(target, path, 2) {
						c.FinishHedge(target, path, false, rng.Intn(2) == 0)
					}
					c.Done(key, out.Server, path, false, false)
				default:
					c.Done(key, out.Server, path, false, false)
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var flip sync.WaitGroup
	flip.Add(1)
	go func() {
		defer flip.Done()
		rng := randutil.New(11)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// At most one backend degraded at a time, so a route target
			// always exists even while every stripe rewrites.
			s := rng.Intn(backends)
			g.set(s, true)
			runtime.Gosched()
			g.set(s, false)
		}
	}()

	wg.Wait()
	close(stop)
	flip.Wait()

	for s, l := range c.Loads() {
		if l != 0 {
			t.Errorf("backend %d still has %d booked requests after drain", s, l)
		}
		if n := c.HedgeLoad(s); n != 0 {
			t.Errorf("backend %d still has %d hedge bookings after drain", s, n)
		}
	}
	if n := c.InFlightFiles(); n != 0 {
		t.Errorf("%d files still marked in flight after drain", n)
	}
	total, busy, problem := c.SessionCheck()
	if problem != "" {
		t.Errorf("session table corrupt: %s", problem)
	}
	if busy != 0 {
		t.Errorf("%d sessions still busy after drain", busy)
	}
	if total > 256 {
		t.Errorf("session table grew to %d entries despite bound 256", total)
	}
	st := c.Stats()
	if want := int64(workers * iters); st.Requests != want {
		t.Errorf("Stats.Requests = %d, want %d", st.Requests, want)
	}
	if st.HedgeWins+st.HedgesFired == 0 {
		t.Error("storm never exercised the hedge path")
	}
}
