// Package dispatch is the PRORD decision core: one clock-injected,
// transport-agnostic implementation of the paper's request-distribution
// logic shared by the discrete-event simulator (internal/cluster) and
// the live HTTP front-end (internal/httpfront). It owns everything that
// decides where a request goes — per-backend locality tracking, policy
// selection with the locality-only fallback, bundle-aware embedded-
// object forwarding, backend exclusion, the overload degrade ladder
// with its Critical-tier admission gate, and the proactive prefetch
// planning of Algorithms 1–2 — while the adapters own the substrate:
// modeled CPUs/disks and virtual time on one side, reverse proxies,
// circuit breakers and the wall clock on the other.
//
// Every method that consults or advances a clock takes the current time
// as an argument, so the simulator drives the core with virtual time
// and stays bit-reproducible (the repo's nowallclock analyzer enforces
// this). The core is goroutine-safe and its decision read path is
// contention-free: the read-mostly policy inputs (policies, bundle
// index, navigation model, rank table) live in an immutable
// decisionSnapshot published through an atomic pointer — readers
// pointer-load it once per decision, writers copy-update-publish under
// a narrow writer mutex (RCU) — while the mutable hot-path state
// (locality maps, prefetch marks, in-flight counters, session
// bindings) is striped into per-shard leaf locks keyed by file-path
// and connection hashes. A steady-state Route+Done pair takes no
// global lock and performs no heap allocation, so the live front-end
// scales across cores instead of serializing every request on one
// dispatcher mutex. Under the single-threaded simulator the same
// locks are uncontended and the core stays deterministic.
package dispatch

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"prord/internal/autoscale"
	"prord/internal/cache"
	"prord/internal/fleet"
	"prord/internal/mining"
	"prord/internal/overload"
	"prord/internal/policy"
)

// Features toggles PRORD's proactive enhancements inside the core —
// the ablation switches both adapters expose. Replication is not here:
// executing Algorithm 3's copies is substrate work (disk and network),
// owned by the adapters; the core only sheds its refresh ticks via
// ShedReplication.
type Features struct {
	// Bundle enables embedded-object classification against mined
	// bundles (the Fig. 4 forward module) and bundle prefetch planning.
	Bundle bool
	// NavPrefetch enables Algorithm 2's navigation prefetch planning.
	NavPrefetch bool
	// GroupPrefetch enables §4.1's user-category prefetch planning
	// (needs Miner.Categorizer; no-ops otherwise).
	GroupPrefetch bool
}

// any reports whether any proactive planning feature is on.
func (f Features) any() bool { return f.Bundle || f.NavPrefetch || f.GroupPrefetch }

// Config assembles a Core.
type Config struct {
	// Backends is the backend server count. Required.
	Backends int
	// Policy is the distribution policy under test. Required.
	Policy policy.Policy
	// Fallback, when non-nil, replaces Policy from the Saturated tier up
	// (conventionally locality-only LARD).
	Fallback policy.Policy
	// Miner supplies bundles, the navigation predictor and the
	// categorizer. Required when any Feature is enabled.
	Miner *mining.Miner
	// Features selects the proactive enhancements the core plans for.
	Features Features
	// Exact selects the locality mode. True (the simulator): the adapter
	// owns ground-truth residency and reports it through NoteResident/
	// NoteGone; the core never guesses. False (the live front-end): the
	// core tracks locality optimistically — a backend is assumed to hold
	// a file after being routed it — in bounded per-backend LRU maps.
	Exact bool
	// LocalityEntries bounds the optimistic per-backend locality map.
	// Ignored in Exact mode. Default 4096.
	LocalityEntries int64
	// MaxSessions bounds tracked sessions; past it, idle sessions are
	// evicted. Default 65536.
	MaxSessions int
	// Shards is the lock-stripe count for session and file state.
	// Default 16. A small LocalityEntries or MaxSessions bound collapses
	// the stripe count so the bound splits exactly across stripes
	// instead of rounding up per stripe.
	Shards int
	// LoadOf, when non-nil, overrides the per-backend load signal (the
	// simulator reports modeled queue lengths). Nil uses the core's own
	// outstanding-request counters. Only consulted for available
	// backends.
	LoadOf func(server int) int
	// Available, when non-nil, reports whether a backend can take new
	// work at now (breaker closed, not crashed, not hibernating).
	// Unavailable backends are invisible to the policy. Nil means always
	// available.
	Available func(server int, now time.Time) bool
	// WakeFallback, when non-nil, is consulted when no backend is
	// available: it may bring one back (the simulator's wake-on-demand
	// power path) and return its index.
	WakeFallback func(now time.Time) (int, bool)
	// NavBudget, when non-nil, gates navigation/group prefetch planning
	// per backend (the simulator skips prefetching into a disk already
	// loaded with demand work). Nil means always.
	NavBudget func(server int) bool
	// Prefetchable, when non-nil, filters prefetch candidates (the
	// simulator rejects files with unknown sizes). Dynamic paths are
	// always rejected regardless.
	Prefetchable func(file string) bool
	// Overload enables the degrade ladder: estimator, tiered shedding
	// and Critical-tier admission. Nil disables the layer.
	Overload *overload.Config
	// Degraded, when non-nil, reports whether a backend is gray-failing
	// (the health detector's ejection verdict: alive, but serving
	// latencies far above the pool). Degraded backends stay available —
	// requests in flight finish and hard failures still go through the
	// breaker — but they are soft-excluded from new placements via the
	// accept mask, and a session pinned to one loses its pin on its next
	// request, re-binding through the normal routing path (progressive
	// rebinding rather than a mass detach). The hook is consulted on the
	// routing hot path, sometimes under shard leaf locks: it must be
	// lock-free and non-blocking (health.Detector.Degraded is). Nil
	// means no backend is ever degraded — bit-identical to the
	// pre-detector behavior.
	Degraded func(server int) bool
	// Pool, when non-nil, makes the backend set elastic: Backends becomes
	// the provisioned maximum (Pool.Max must equal it) and membership is
	// read per decision — Absent slots are invisible, Draining backends
	// serve bound sessions but take no new placements, and Warming
	// backends carry a decaying load penalty until their cache ramp
	// completes. The pool's read path is lock-free, so consulting it
	// under the core's locks adds no edge to the lock hierarchy. Nil
	// keeps the fixed-pool behavior bit-for-bit.
	Pool *autoscale.Pool
	// MiningRefreshEvery batches online navigation learning: instead of
	// folding every observation into the mined model in place, the core
	// buffers observations in an incremental updater and publishes a
	// copy-on-write fold as a fresh decision snapshot after this many
	// observations (and on every explicit RefreshMining call). 0 (the
	// default) keeps the immediate in-place fold — byte-identical to
	// the historical behavior. 1 is semantically identical to 0 but
	// pays one fold per observation; larger values trade prediction
	// freshness for fold amortization on hot front-ends.
	MiningRefreshEvery int
	// Recorder, when non-nil, receives one Record per decision the core
	// makes, in decision order. It runs on the deciding goroutine and
	// must be fast; it exists for differential testing and diagnostics.
	Recorder func(Record)
	// Ring, when non-nil, makes session ownership explicit for a fleet
	// of front-end replicas: the consistent-hash ring assigns every
	// session key an owning replica, Owner reports the verdict for this
	// core (identified by ReplicaID), and the adapter forwards foreign
	// sessions to their owner (one hop, bounded). A single-member ring
	// is bit-identical to no ring: every key is owned here and no core
	// decision changes. Nil keeps the single-distributor behavior.
	Ring *fleet.Ring
	// ReplicaID is this core's replica id on the Ring (ignored without
	// one). It must be a ring member.
	ReplicaID int
}

// Verdict is the admission outcome for one request.
type Verdict int

const (
	// Admitted means the request may route now.
	Admitted Verdict = iota
	// Queued means the request holds a place in the bounded accept
	// queue; its grant callback runs when a slot frees, unless the
	// caller abandons the wait first.
	Queued
	// Shed means the request was refused (counted, never routed).
	Shed
)

// String returns the verdict's lower-case name.
func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case Queued:
		return "queued"
	case Shed:
		return "shed"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Record is one decision as the core made it, for differential testing
// between the simulator and live adapters: same trace in, identical
// record sequence out.
type Record struct {
	// Seq is the decision's position in the core's global order.
	Seq int64
	// Conn is the core-assigned connection id.
	Conn int
	// Path is the requested file.
	Path string
	// Tier is the degrade-ladder position the decision saw.
	Tier overload.Tier
	// Verdict is Admitted for routed decisions, Shed for refused ones.
	Verdict Verdict
	// Server is the chosen backend (-1 when shed or unroutable).
	Server int
	// Embedded reports bundle classification: the request followed its
	// main page directly.
	Embedded bool
	// Dispatch reports a dispatcher consultation (policy-level).
	Dispatch bool
	// Handoff reports a policy-level handoff, including a connection's
	// first binding (the simulator's metric).
	Handoff bool
	// Switched reports a genuine server change for an already-bound
	// connection (the live front-end's metric).
	Switched bool
	// Routed is false when no backend was available (the request failed
	// rather than shed).
	Routed bool
}

// Outcome is the result of one Route call.
type Outcome struct {
	// Conn is the core-assigned connection id for the session.
	Conn int
	// Server is the chosen backend.
	Server int
	// Source is a backend to pull the file's bytes from (back-end
	// forwarding), or -1.
	Source int
	// Dispatch reports a dispatcher consultation.
	Dispatch bool
	// Handoff reports a policy-level handoff including first bindings.
	Handoff bool
	// Switched reports a genuine move of an already-bound connection.
	Switched bool
	// Embedded reports that bundle classification matched.
	Embedded bool
	// HadServer reports that the connection was bound before this
	// request.
	HadServer bool
	// Tier is the ladder position the decision saw.
	Tier overload.Tier
	// OK is false when no backend was available; the request was counted
	// and released but not booked anywhere.
	OK bool
}

// Plan is the proactive work PlanProactive admitted and marked: lists
// of files to pull into the serving backend's memory, split by trigger
// so the simulator can model one batched disk read per trigger. Every
// listed file has already been marked prefetched at the target backend.
type Plan struct {
	// Server is the backend the plan targets.
	Server int
	// Bundle holds the served page's missing embedded objects (§4.1).
	Bundle []string
	// Nav holds Algorithm 2's predicted next page group.
	Nav []string
	// Group holds §4.1's category pages.
	Group []string
}

// Files returns the plan's targets in one slice, bundle first.
func (p Plan) Files() []string {
	out := make([]string, 0, len(p.Bundle)+len(p.Nav)+len(p.Group))
	out = append(out, p.Bundle...)
	out = append(out, p.Nav...)
	out = append(out, p.Group...)
	return out
}

// Stats are the core's decision counters. PerBackend is indexed by
// backend.
type Stats struct {
	// Requests counts every admission-considered request: routed,
	// unroutable and shed.
	Requests int64
	// Dispatches counts dispatcher consultations (Fig. 6's metric).
	Dispatches int64
	// DirectForwards counts non-dispatch forwards of bound connections.
	DirectForwards int64
	// Handoffs counts policy-level handoffs including first bindings
	// (the simulator's metric).
	Handoffs int64
	// Switches counts genuine server moves of bound connections (the
	// live front-end's handoff metric).
	Switches int64
	// Prefetches counts prefetch placements admitted by PlanProactive
	// and Rebook bookkeeping.
	Prefetches int64
	// PrefetchShed counts proactive passes suppressed at Elevated tier
	// or above.
	PrefetchShed int64
	// ReplicationsShed counts replication refreshes suppressed at
	// Elevated tier or above.
	ReplicationsShed int64
	// Shed counts demand requests refused by Critical-tier admission.
	Shed int64
	// Unroutable counts requests that found no available backend.
	Unroutable int64
	// Errors counts failed attempts reported through Done.
	Errors int64
	// Failovers counts requests that completed on a retry attempt.
	Failovers int64
	// Retries counts Rebook re-routes.
	Retries int64
	// GrayRebinds counts sessions that moved off a degraded backend:
	// bindings the detector's soft exclusion progressively re-routed.
	GrayRebinds int64
	// HedgesFired counts hedged backup attempts booked.
	HedgesFired int64
	// HedgeWins counts hedged attempts that delivered the response
	// (the primary was canceled).
	HedgeWins int64
	// FleetForwards counts requests that arrived at this replica for a
	// session the ring assigns elsewhere and were handed to their owner
	// (one hop).
	FleetForwards int64
	// OwnershipRebinds counts sessions the ring reassigned away from
	// this replica whose stale local state was released on a later
	// foreign touch.
	OwnershipRebinds int64
	// PerBackend counts demand bookings per backend, including retries.
	PerBackend []int64
}

// Core is the shared decision engine. Build one with New; all methods
// are safe for concurrent use.
//
// Lock hierarchy (machine-checked by prordlint's lockorder analyzer —
// see lockHierarchy in internal/lint/lockset.go): locks nest only in
// ascending rank, and the leaf mutexes — the shard locks, the record
// emitter, the policy stripes and the mining updater — admit no nested
// acquisition and no blocking operation while held.
//
//	wrMu (10) → trackMu (20) → ovMu (30) → sessionShard.mu / fileShard.mu / leaves
//
// The routing read path takes none of the ranked locks: Route loads
// the decision snapshot with one atomic pointer read and touches only
// leaf locks. wrMu serializes the rare writers — snapshot publishes
// (RefreshMining) and backend detach sweeps — against each other, not
// against readers.
type Core struct {
	cfg     Config
	nshards int
	ssh     []sessionShard
	fsh     []fileShard

	sessionsPerShard int

	loads      []atomic.Int64 // outstanding bookings per backend
	perBackend []atomic.Int64 // total bookings per backend
	hedges     []atomic.Int64 // outstanding hedged attempts per backend

	wrMu sync.Mutex // serializes snapshot writers and detach sweeps
	snap atomic.Pointer[decisionSnapshot]

	updater *mining.Updater // buffered observations for the next fold
	emitter *recordEmitter  // nil without a Recorder

	trackMu sync.Mutex // serializes the navigation tracker's windows
	tracker *mining.Tracker

	ovMu  sync.Mutex // serializes estimator and gate
	ovcfg overload.Config
	est   *overload.Estimator
	gate  *overload.Gate
	tierC atomic.Int32 // cached ladder position for lock-free reads

	seq   atomic.Int64 // decision sequence for Records
	stats coreStats
}

type coreStats struct {
	requests, dispatches, directForwards, handoffs, switches atomic.Int64
	prefetches, prefetchShed, replicationsShed               atomic.Int64
	shed, unroutable, errors, failovers, retries             atomic.Int64
	grayRebinds, hedgesFired, hedgeWins                      atomic.Int64
	fleetForwards, ownershipRebinds                          atomic.Int64
}

// New builds a Core from cfg.
func New(cfg Config) (*Core, error) {
	if cfg.Backends < 1 {
		return nil, fmt.Errorf("dispatch: Backends must be >= 1, got %d", cfg.Backends)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("dispatch: Config.Policy is required")
	}
	if cfg.Features.any() && cfg.Miner == nil {
		return nil, fmt.Errorf("dispatch: features %+v need a Miner", cfg.Features)
	}
	if cfg.Pool != nil && cfg.Pool.Max() != cfg.Backends {
		return nil, fmt.Errorf("dispatch: Pool.Max %d must equal Backends %d",
			cfg.Pool.Max(), cfg.Backends)
	}
	if cfg.Ring != nil {
		member := false
		for _, m := range cfg.Ring.Members() {
			if m == cfg.ReplicaID {
				member = true
				break
			}
		}
		if !member {
			return nil, fmt.Errorf("dispatch: ReplicaID %d is not a ring member %v",
				cfg.ReplicaID, cfg.Ring.Members())
		}
	}
	if cfg.LocalityEntries <= 0 {
		cfg.LocalityEntries = 4096
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 65536
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if !cfg.Exact {
		// A stripe is only worth its lock when it carries a meaningful
		// slice of the locality budget; with a tiny bound, extra stripes
		// would each round up to at least one entry and overshoot it.
		if maxUseful := int((cfg.LocalityEntries + 255) / 256); maxUseful < cfg.Shards {
			cfg.Shards = maxUseful
		}
	}
	// Same for the session valve: MaxSessions splits evenly across
	// stripes, and each stripe's share must stay large enough that the
	// global bound holds to within a stripe's rounding.
	if maxUseful := (cfg.MaxSessions + 255) / 256; maxUseful < cfg.Shards {
		cfg.Shards = maxUseful
	}
	c := &Core{
		cfg:        cfg,
		nshards:    cfg.Shards,
		updater:    mining.NewUpdater(),
		loads:      make([]atomic.Int64, cfg.Backends),
		perBackend: make([]atomic.Int64, cfg.Backends),
		hedges:     make([]atomic.Int64, cfg.Backends),
	}
	if cfg.Recorder != nil {
		c.emitter = newRecordEmitter(cfg.Recorder)
	}
	c.sessionsPerShard = cfg.MaxSessions / c.nshards
	if c.sessionsPerShard < 1 {
		c.sessionsPerShard = 1
	}
	c.ssh = make([]sessionShard, c.nshards)
	for i := range c.ssh {
		c.ssh[i].byKey = make(map[string]*session)
		c.ssh[i].byID = make(map[int]*session)
	}
	c.fsh = make([]fileShard, c.nshards)
	for i := range c.fsh {
		f := &c.fsh[i]
		f.memory = make(map[string]map[int]bool)
		f.prefetched = make(map[string]map[int]bool)
		f.inflight = make(map[string]map[int]int)
		if !cfg.Exact {
			f.locality = make([]*cache.LRU, cfg.Backends)
			for s := range f.locality {
				f.locality[s] = newShardLRU(cfg.LocalityEntries, c.nshards)
			}
		}
	}
	if cfg.Miner != nil && cfg.Miner.Bundles != nil {
		// Force the lazy bundle materialization now: afterwards Parent and
		// Objects are read-only and safe without a lock on the hot path.
		cfg.Miner.Bundles.Pages()
	}
	snap, err := buildSnapshot(cfg)
	if err != nil {
		return nil, err
	}
	c.snap.Store(snap)
	if cfg.Features.NavPrefetch && cfg.Miner != nil {
		// Immediate mode trains the model in place per observation; in
		// batched mode the tracker only slides windows and learning goes
		// through the updater's copy-on-write folds.
		c.tracker = mining.NewTracker(snap.nav, cfg.MiningRefreshEvery == 0)
	}
	if cfg.Overload != nil {
		oc := cfg.Overload.WithDefaults()
		if err := oc.Validate(); err != nil {
			return nil, fmt.Errorf("dispatch: %w", err)
		}
		c.ovcfg = oc
		// With an elastic pool the capacity tracks the *present* backend
		// count, not the provisioned maximum; SetPoolSize keeps it current.
		nb := cfg.Backends
		if cfg.Pool != nil {
			nb = cfg.Pool.Size()
		}
		c.est = overload.NewEstimator(oc, nb)
		c.gate = overload.NewGate(oc.CapacityPerBackend*nb, oc.QueueLimit)
	}
	return c, nil
}

// SetPoolSize re-sizes the overload layer for an elastically resized
// pool: the estimator's capacity recomputes (and the ladder re-tiers
// against it), and the admission gate's in-flight bound follows. Queued
// requests granted by freed headroom have their grant callbacks run
// before SetPoolSize returns. No-op when the overload layer is
// disabled.
func (c *Core) SetPoolSize(n int, now time.Time) {
	if c.est == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	c.ovMu.Lock()
	c.est.SetBackends(n, now)
	c.tierC.Store(int32(c.est.Tier()))
	grants := c.gate.SetLimit(c.ovcfg.CapacityPerBackend * n)
	c.ovMu.Unlock()
	for _, g := range grants {
		g()
	}
}

// Tier returns the degrade ladder's current position (Normal when the
// overload layer is disabled). Lock-free.
func (c *Core) Tier() overload.Tier {
	return overload.Tier(c.tierC.Load())
}

// QueueTimeout returns the configured Critical-tier queue wait bound
// (zero when the overload layer is disabled).
func (c *Core) QueueTimeout() time.Duration {
	if c.est == nil {
		return 0
	}
	return c.ovcfg.QueueTimeout
}

// RetryAfter returns the advertised shed-response backoff in whole
// seconds (the package default when the overload layer is disabled).
func (c *Core) RetryAfter() int {
	if c.est == nil {
		return 1
	}
	return c.ovcfg.RetryAfter
}

// ShedReplication reports whether the degrade ladder currently sheds
// replication refresh (Elevated tier or above) and counts the skipped
// round when it does.
func (c *Core) ShedReplication() bool {
	if c.Tier() < overload.Elevated {
		return false
	}
	c.stats.replicationsShed.Add(1)
	return true
}

// OverloadSnapshot is the overload layer's observable state.
type OverloadSnapshot struct {
	Tier        overload.Tier
	Pressure    float64
	InFlight    int
	Queued      int
	Transitions []overload.Transition
}

// Overload returns the overload layer's snapshot; ok is false when the
// layer is disabled.
func (c *Core) Overload() (snap OverloadSnapshot, ok bool) {
	if c.est == nil {
		return OverloadSnapshot{}, false
	}
	c.ovMu.Lock()
	defer c.ovMu.Unlock()
	return OverloadSnapshot{
		Tier:        c.est.Tier(),
		Pressure:    c.est.Pressure(),
		InFlight:    c.gate.InFlight(),
		Queued:      c.gate.Queued(),
		Transitions: c.est.Transitions(),
	}, true
}

// TierTransitions returns the ladder history (nil when the overload
// layer is disabled).
func (c *Core) TierTransitions() []overload.Transition {
	if c.est == nil {
		return nil
	}
	c.ovMu.Lock()
	defer c.ovMu.Unlock()
	return c.est.Transitions()
}

// Stats returns a snapshot of the decision counters.
func (c *Core) Stats() Stats {
	s := Stats{
		Requests:         c.stats.requests.Load(),
		Dispatches:       c.stats.dispatches.Load(),
		DirectForwards:   c.stats.directForwards.Load(),
		Handoffs:         c.stats.handoffs.Load(),
		Switches:         c.stats.switches.Load(),
		Prefetches:       c.stats.prefetches.Load(),
		PrefetchShed:     c.stats.prefetchShed.Load(),
		ReplicationsShed: c.stats.replicationsShed.Load(),
		Shed:             c.stats.shed.Load(),
		Unroutable:       c.stats.unroutable.Load(),
		Errors:           c.stats.errors.Load(),
		Failovers:        c.stats.failovers.Load(),
		Retries:          c.stats.retries.Load(),
		GrayRebinds:      c.stats.grayRebinds.Load(),
		HedgesFired:      c.stats.hedgesFired.Load(),
		HedgeWins:        c.stats.hedgeWins.Load(),
		FleetForwards:    c.stats.fleetForwards.Load(),
		OwnershipRebinds: c.stats.ownershipRebinds.Load(),
		PerBackend:       make([]int64, len(c.perBackend)),
	}
	for i := range c.perBackend {
		s.PerBackend[i] = c.perBackend[i].Load()
	}
	return s
}
