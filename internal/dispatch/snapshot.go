package dispatch

import (
	"fmt"

	"prord/internal/mining"
	"prord/internal/policy"
)

// decisionSnapshot is the immutable bundle of read-mostly policy
// inputs one routing decision consults. Readers obtain it with a
// single atomic pointer load and never see it change: writers copy the
// current snapshot, update the copy, and publish it (RCU). Everything
// reachable from a published snapshot is immutable — the mining folds
// are copy-on-write (mining/incremental.go), the bundle index is
// materialized once at New, and the policies carry their own internal
// striped locking rather than mutating snapshot state.
type decisionSnapshot struct {
	// epoch counts publishes, starting at 1 for the snapshot New
	// builds. Strictly increasing; SnapshotEpoch exposes it.
	epoch uint64
	// pol and fallback are the distribution policies. The pointers are
	// fixed for the core's lifetime today, but they live here so a
	// future policy hot-swap is one more copy-update-publish.
	pol      policy.Policy
	fallback policy.Policy
	// bundles is the mined embedded-object index (nil without a Miner).
	// Its lazy materialization is forced at New; afterwards Parent and
	// Objects are read-only.
	bundles *mining.Bundles
	// nav is the navigation predictor the batched mining mode predicts
	// against. In immediate mode (MiningRefreshEvery 0) the tracker
	// learns into the same object in place under trackMu and this
	// reference is not consulted on the prediction path.
	nav mining.OnlinePredictor
	// ranker is the popularity rank table replication and warm joins
	// read (nil without a Miner).
	ranker *mining.Ranker
}

// snapshot returns the current decision snapshot. Lock-free; the
// result is immutable and safe to use for the rest of the decision.
func (c *Core) snapshot() *decisionSnapshot { return c.snap.Load() }

// SnapshotEpoch returns the published snapshot's epoch: 1 after New,
// +1 per RefreshMining publish. Lock-free.
func (c *Core) SnapshotEpoch() uint64 { return c.snap.Load().epoch }

// Ranker returns the popularity rank table of the current snapshot —
// the one replication refresh and warm-join preloads should read, so
// they observe folded online popularity rather than only the offline
// mine. Nil when the core was built without a Miner. The returned
// table is immutable; a later RefreshMining publishes a new one.
func (c *Core) Ranker() *mining.Ranker { return c.snap.Load().ranker }

// ObserveRank buffers one served request for the popularity rank
// table's next incremental fold. No-op when the core has no rank
// table. Lock-free apart from the updater's leaf mutex.
func (c *Core) ObserveRank(path string) {
	if c.snap.Load().ranker == nil {
		return
	}
	c.updater.ObserveRank(path)
}

// MiningPending returns the observations buffered for the next
// RefreshMining fold (navigation + rank).
func (c *Core) MiningPending() int { return c.updater.Pending() }

// RefreshMining drains the incremental updater and publishes a fresh
// decision snapshot with the buffered navigation observations folded
// into a copy-on-write navigation model and the buffered rank
// observations folded into a copy-on-write rank table. In-progress
// decisions keep the snapshot they loaded; no reader blocks. No-op
// when nothing is buffered. It reports whether a new snapshot was
// published.
//
// In batched mode (MiningRefreshEvery > 0) the core calls this itself
// every MiningRefreshEvery navigation observations; adapters call it
// on their refresh tick (the paper's interval t) so rank folds — and
// any observation dribble below the batch size — land on a bounded
// schedule.
func (c *Core) RefreshMining() bool {
	if c.updater.Pending() == 0 {
		return false
	}
	c.wrMu.Lock()
	defer c.wrMu.Unlock()
	// Take under wrMu: a concurrent refresher's fold is fully published
	// before this one drains, so folds always chain off the latest copy.
	nav, rank := c.updater.Take()
	if len(nav) == 0 && len(rank) == 0 {
		return false
	}
	cur := c.snap.Load()
	ns := *cur
	ns.epoch++
	if len(nav) > 0 {
		if f, ok := ns.nav.(mining.Folder); ok {
			ns.nav = f.FoldObs(nav)
		}
	}
	if len(rank) > 0 && ns.ranker != nil {
		ns.ranker = ns.ranker.Fold(rank)
	}
	c.snap.Store(&ns)
	return true
}

// buildSnapshot assembles the epoch-1 snapshot New publishes.
func buildSnapshot(cfg Config) (*decisionSnapshot, error) {
	s := &decisionSnapshot{
		epoch:    1,
		pol:      cfg.Policy,
		fallback: cfg.Fallback,
	}
	if cfg.Miner != nil {
		s.bundles = cfg.Miner.Bundles
		s.ranker = cfg.Miner.Ranker
		s.nav = cfg.Miner.Nav
		if s.nav == nil {
			s.nav = cfg.Miner.Model
		}
	}
	if cfg.MiningRefreshEvery < 0 {
		return nil, fmt.Errorf("dispatch: MiningRefreshEvery must be >= 0, got %d", cfg.MiningRefreshEvery)
	}
	if cfg.MiningRefreshEvery > 0 && cfg.Features.NavPrefetch {
		if _, ok := s.nav.(mining.Folder); !ok {
			return nil, fmt.Errorf("dispatch: MiningRefreshEvery needs a navigation predictor supporting copy-on-write folds (the n-order model); %T does not", s.nav)
		}
	}
	return s, nil
}
