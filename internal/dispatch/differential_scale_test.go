package dispatch_test

// Differential test for the elastic pool: the same seeded trace is
// replayed through the simulator and the live front-end while an
// identical scripted scale schedule fires at identical points in the
// request sequence — the simulator via virtual-time ScaleEvents placed
// between requests, the live side via ScaleUp/ScaleDown calls between
// the same requests. Every decision record must match step for step:
// joins, warm-ramp penalties, drain exclusion and post-drain session
// rebooks all flow through the one shared core.
//
// Both sides join cold (ColdJoin): warm preloads move real bytes whose
// arrival timing is substrate-owned — modeled disk on one side, async
// HTTP hints on the other — so residency timing is not part of the
// decision-stream contract. Warm-join behavior is covered by the
// cluster-level warm-vs-cold comparison instead. The policy is WRR:
// its load-blind rotation keeps landing on every pool slot, so joined
// slots take traffic directly and drained slots force re-routes — in
// the sequential replay loads are zero at every decision point, which
// would let a locality policy park all placements on backend 0 and
// leave the membership machinery untested.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"prord/internal/autoscale"
	"prord/internal/cluster"
	"prord/internal/dispatch"
	"prord/internal/httpfront"
	"prord/internal/policy"
	"prord/internal/trace"
)

// scaleStep schedules one resize after the request at index `after`
// completes (and before the next one issues).
type scaleStep struct {
	after int
	delta int
}

func scaleConfig() autoscale.Config {
	return autoscale.Config{
		Max:         4,
		Min:         1,
		Initial:     2,
		WarmRamp:    16,
		WarmPenalty: 8,
		ColdJoin:    true,
	}
}

// runSimScale replays the trace through the simulator with the scale
// schedule converted to virtual-time events: requests are re-spaced one
// second apart, so firing at after×1s + 500ms lands between the target
// request's completion and the next arrival.
func runSimScale(t *testing.T, tr *trace.Trace, steps []scaleStep) []dispatch.Record {
	t.Helper()
	sink := &recordSink{}
	var events []cluster.ScaleEvent
	for _, s := range steps {
		events = append(events, cluster.ScaleEvent{
			Delta: s.delta,
			At:    time.Duration(s.after)*time.Second + 500*time.Millisecond,
		})
	}
	ac := scaleConfig()
	cl, err := cluster.New(cluster.Config{
		Params:      simParams(ac.Max),
		Policy:      policy.NewWRR(ac.Max),
		Recorder:    sink.record,
		Autoscale:   &ac,
		ScaleEvents: events,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(tr); err != nil {
		t.Fatal(err)
	}
	return sink.snapshot()
}

// runLiveScale replays the trace through the live front-end, applying
// each scale step after its request's observation arrives — the same
// sequence point the simulator's virtual-time event lands on. The
// background scale ticker is parked at a huge interval so every pool
// transition happens at these deterministic points.
func runLiveScale(t *testing.T, tr *trace.Trace, steps []scaleStep) []dispatch.Record {
	t.Helper()
	sink := &recordSink{}
	observed := make(chan struct{}, 1)
	ac := scaleConfig()
	cfg := httpfront.Config{
		Policy:        policy.NewWRR(ac.Max),
		Recorder:      sink.record,
		Observe:       func(httpfront.Observation) { observed <- struct{}{} },
		Autoscale:     &ac,
		ScaleInterval: time.Hour,
	}
	for i := 0; i < ac.Max; i++ {
		b := httpfront.NewDemoBackend("b", tr.Files, 1<<30, 0)
		srv := httptest.NewServer(b)
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Backends = append(cfg.Backends, u)
	}
	d, err := httpfront.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	front := httptest.NewServer(d)
	t.Cleanup(front.Close)

	pending := make(map[int][]int)
	for _, s := range steps {
		pending[s.after] = append(pending[s.after], s.delta)
	}

	clients := make(map[int]*http.Client)
	for i, r := range tr.Requests {
		c := clients[r.Session]
		if c == nil {
			transport := &http.Transport{}
			t.Cleanup(transport.CloseIdleConnections)
			c = &http.Client{Transport: transport}
			clients[r.Session] = c
		}
		resp, err := c.Get(front.URL + r.Path)
		if err != nil {
			t.Fatalf("GET %s: %v", r.Path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		select {
		case <-observed:
		case <-time.After(5 * time.Second):
			t.Fatalf("GET %s: no observation", r.Path)
		}
		for _, delta := range pending[i] {
			for ; delta > 0; delta-- {
				if _, ok := d.ScaleUp(); !ok {
					t.Fatalf("ScaleUp after request %d refused", i)
				}
			}
			for ; delta < 0; delta++ {
				if _, ok := d.ScaleDown(); !ok {
					t.Fatalf("ScaleDown after request %d refused", i)
				}
			}
		}
	}
	return sink.snapshot()
}

// TestDifferentialScriptedScale replays one trace through both adapters
// under an identical grow-grow-shrink schedule and requires
// byte-identical decision records.
func TestDifferentialScriptedScale(t *testing.T) {
	tr, _ := diffWorkload(t, 700, 233)
	n := len(tr.Requests)
	if n < 40 {
		t.Fatalf("workload too small for a scale schedule: %d requests", n)
	}
	// Join early — WRR binds each session on its first request, so the
	// joined slots must be present while sessions are still arriving —
	// and drain late, so sessions bound to the drained slot rebook.
	steps := []scaleStep{
		{after: 5, delta: 1},
		{after: 10, delta: 1},
		{after: 3 * n / 4, delta: -1},
	}
	sim := runSimScale(t, tr, steps)
	live := runLiveScale(t, tr, steps)
	if len(sim) != n {
		t.Fatalf("sim recorded %d decisions for %d requests", len(sim), n)
	}
	diffRecords(t, sim, live)

	// The comparison must not be vacuous: the joined slots (indices past
	// Initial) must actually have served decisions.
	joined := 0
	for _, r := range sim {
		if r.Server >= scaleConfig().Initial {
			joined++
		}
	}
	if joined == 0 {
		t.Fatal("no decision ever used a joined backend; the scale schedule did nothing")
	}
}
