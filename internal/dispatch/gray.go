package dispatch

import (
	"time"

	"prord/internal/trace"
)

// pickTarget picks the best alternative backend for path, excluding
// backend exclude: least-routeLoad among accepting backends the
// locality state says hold the file (replication and prefetch make a
// holder likely), then least-loaded accepting, then — unless
// acceptOnly — least-loaded merely-available (Draining or degraded;
// a hard failover must land somewhere). Shared by Rebook's failover
// retry and HedgeTarget so both prefer a warm replica over a cold
// least-loaded backend.
func (c *Core) pickTarget(path string, exclude int, acceptOnly bool, now time.Time) (int, bool) {
	avail, navail := c.availMask(nil, now)
	if navail == 0 {
		return -1, false
	}
	holder := make([]bool, len(avail))
	f := c.fileShardFor(path)
	f.mu.Lock()
	for i := range holder {
		if avail[i] && (f.residentHere(c.cfg.Exact, i, path) || f.prefetched[path][i]) {
			holder[i] = true
		}
	}
	f.mu.Unlock()
	accepts := func(i int) bool {
		if c.cfg.Pool != nil && !c.cfg.Pool.AcceptingNew(i) {
			return false
		}
		return !c.degraded(i)
	}
	pick := func(needHolder, needAccept bool) (int, bool) {
		best, found := -1, false
		for i := range avail {
			if i == exclude || !avail[i] {
				continue
			}
			if needHolder && !holder[i] {
				continue
			}
			if needAccept && !accepts(i) {
				continue
			}
			if !found || c.routeLoad(i) < c.routeLoad(best) {
				best, found = i, true
			}
		}
		return best, found
	}
	if s, ok := pick(true, true); ok {
		return s, true
	}
	if s, ok := pick(false, true); ok {
		return s, true
	}
	if acceptOnly {
		return -1, false
	}
	return pick(false, false)
}

// HedgeTarget picks the backend for a hedged backup request on path:
// the best accepting, non-degraded backend other than the primary,
// preferring one that already holds the file. ok is false when no
// backend is worth hedging to and the caller should skip the hedge.
// The choice does not book anything — pair it with TryBeginHedge.
func (c *Core) HedgeTarget(path string, primary int, now time.Time) (int, bool) {
	s, ok := c.pickTarget(path, primary, true, now)
	if !ok {
		return -1, false
	}
	return s, true
}

// TryBeginHedge books a hedged backup attempt for path on server,
// respecting limit outstanding hedges per backend (limit <= 0:
// uncapped). The booking mirrors a Route booking's load and in-flight
// state but binds no session and emits no decision record, so hedging
// never perturbs the decision stream differential tests compare. A
// false return means the backend is at its hedge cap and nothing was
// booked. Every true return must be paired with exactly one
// FinishHedge.
func (c *Core) TryBeginHedge(server int, path string, limit int) bool {
	if server < 0 || server >= c.cfg.Backends {
		return false
	}
	if limit > 0 {
		if n := c.hedges[server].Add(1); n > int64(limit) {
			c.hedges[server].Add(-1)
			return false
		}
	} else {
		c.hedges[server].Add(1)
	}
	c.loads[server].Add(1)
	c.stats.hedgesFired.Add(1)
	f := c.fileShardFor(path)
	f.mu.Lock()
	incFlight(f.inflight, path, server)
	if !c.cfg.Exact && !trace.IsDynamicPath(path) {
		// The backend will have the file hot after serving the hedge,
		// exactly like a Route booking.
		f.locality[server].Insert(path, 1)
		delSet(f.prefetched, path, server)
	}
	f.mu.Unlock()
	return true
}

// FinishHedge releases a hedged attempt's booking. failed marks a
// backend error or cancellation before headers — the optimistic
// locality claim drops, as in Done. won marks that the hedge delivered
// the response and the primary was canceled; it counts toward
// Stats.HedgeWins.
func (c *Core) FinishHedge(server int, path string, failed, won bool) {
	if server < 0 || server >= c.cfg.Backends {
		return
	}
	c.hedges[server].Add(-1)
	c.loads[server].Add(-1)
	f := c.fileShardFor(path)
	f.mu.Lock()
	decFlight(f.inflight, path, server)
	if failed && !c.cfg.Exact {
		f.locality[server].Remove(path)
		delSet(f.prefetched, path, server)
	}
	f.mu.Unlock()
	if won {
		c.stats.hedgeWins.Add(1)
	}
}

// HedgeLoad returns a backend's outstanding hedged attempts (tests and
// stats endpoints).
func (c *Core) HedgeLoad(server int) int {
	if server < 0 || server >= len(c.hedges) {
		return 0
	}
	return int(c.hedges[server].Load())
}
