package dispatch_test

// TestFleetBenchArtifact writes BENCH_fleet.json: the decision-path
// cost of the fleet topology at k ∈ {1, 2, 4} replicas, on the shared
// prord-bench/2 schema. Each cell builds k cores over one consistent-
// hash ring and replays the same request mix through the full ingress
// path a fleet front-end pays per request: an Owner() lookup at the
// ingress replica, then — for the ~(k-1)/k of keys the ring assigns
// elsewhere — NoteFleetForward at the ingress plus Route/Done at the
// owning core. The k=1 cell is the single-distributor control: zero
// forwards, and its throughput is directly comparable to the
// BENCH_dispatch route-done trendline.
//
// Gated on BENCH_FLEET_OUT (the `make bench-smoke` path) so plain
// `go test ./...` stays free of file side effects. benchgate prints
// the k>1 rows ungated — forwarded decisions measure a different
// code path than the gated single-core trendline.

import (
	"fmt"
	"os"
	"testing"
	"time"

	"prord/internal/dispatch"
	"prord/internal/fleet"
	"prord/internal/metrics"
	"prord/internal/policy"
)

func TestFleetBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_FLEET_OUT")
	if out == "" {
		t.Skip("BENCH_FLEET_OUT not set")
	}
	const samples = 200000
	paths := benchPaths(512)
	keys := benchKeys(256)
	now := time.Unix(0, 0)

	art := metrics.BenchArtifact{
		Tool: "fleet-bench",
		Config: map[string]any{
			"backends": 8,
			"policy":   "PRORD",
			"samples":  samples,
			"fleet_ks": []int{1, 2, 4},
		},
	}
	for _, k := range []int{1, 2, 4} {
		members := make([]int, k)
		for i := range members {
			members[i] = i
		}
		ring, err := fleet.NewRing(members)
		if err != nil {
			t.Fatal(err)
		}
		cores := make([]*dispatch.Core, k)
		for i := range cores {
			cores[i], err = dispatch.New(dispatch.Config{
				Backends:  8,
				Policy:    policy.NewPRORD(policy.Thresholds{}),
				Ring:      ring,
				ReplicaID: i,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		var hist metrics.Histogram
		var forwards int64
		start := time.Now()
		for i := 0; i < samples; i++ {
			key, path := keys[i%len(keys)], paths[i%len(paths)]
			ingress := cores[i%k]
			reqStart := time.Now()
			owner, owned := ingress.Owner(key)
			if !owned {
				// The in-process analogue of httpfront's one-hop
				// forward: account the handoff at the ingress, decide
				// at the owner.
				ingress.NoteFleetForward(key)
				forwards++
			}
			o := cores[owner].Route(key, path, 4096, now)
			cores[owner].Done(key, o.Server, path, false, false)
			hist.Observe(time.Since(reqStart))
		}
		elapsed := time.Since(start)

		var requests int64
		rebinds := int64(0)
		for _, c := range cores {
			st := c.Stats()
			requests += st.Requests
			rebinds += st.OwnershipRebinds
		}
		if requests != samples {
			t.Fatalf("k=%d: cores served %d requests, want %d", k, requests, samples)
		}
		art.Runs = append(art.Runs, metrics.BenchRun{
			Name:          fmt.Sprintf("fleet-k%d", k),
			Requests:      requests,
			ThroughputRPS: metrics.Round(float64(samples)/elapsed.Seconds(), 1),
			Latency:       hist.Summary(),
			Fleet: &metrics.FleetSummary{
				Replicas:         k,
				RingEpoch:        ring.Epoch(),
				Forwards:         forwards,
				ForwardRate:      metrics.Round(float64(forwards)/float64(samples), 3),
				OwnershipRebinds: rebinds,
			},
		})
	}
	// The k=1 control must never forward: a single-member ring owns
	// every key, keeping the cell comparable to the dispatch trendline.
	if f := art.Runs[0].Fleet; f.Forwards != 0 {
		t.Fatalf("k=1 cell forwarded %d requests, want 0", f.Forwards)
	}

	art.Stamp(time.Now())
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := art.Encode(f); err != nil {
		t.Fatal(err)
	}
	for _, r := range art.Runs {
		t.Logf("%s: %.0f decisions/s p99=%dns forward_rate=%.3f",
			r.Name, r.ThroughputRPS, r.Latency.P99NS, r.Fleet.ForwardRate)
	}
}
