package dispatch

import (
	"fmt"
	"time"

	"prord/internal/overload"
	"prord/internal/policy"
	"prord/internal/trace"
)

// Admit runs Critical-tier admission control for one demand request.
// Below Critical — or for an embedded-object request of a session that
// already has a backend (its page was admitted; refusing its images
// only breaks a response already promised) — the request is admitted
// unconditionally. At Critical it takes a gate slot; when the gate is
// full but the bounded accept queue has room the verdict is Queued and
// grant runs (on the goroutine of whichever FinishRequest frees the
// slot) when the request may proceed, unless AbandonWait withdraws it
// first. Shed means refused: counted, recorded, never routed. With the
// overload layer disabled every request is Admitted.
func (c *Core) Admit(key, path string, now time.Time, grant func()) (Verdict, *overload.Waiter) {
	if c.gate == nil {
		return Admitted, nil
	}
	bypass := false
	if trace.IsEmbeddedPath(path) {
		sh := c.sessionShardFor(key)
		sh.mu.Lock()
		if st, ok := sh.byKey[key]; ok && st.hasSrv {
			bypass = true
		}
		sh.mu.Unlock()
	}
	c.ovMu.Lock()
	tier := c.est.Tier()
	enforce := tier == overload.Critical && !bypass
	w, ok := c.gate.Enter(enforce, grant)
	c.ovMu.Unlock()
	if !ok {
		c.shed(path, tier)
		return Shed, nil
	}
	if w != nil {
		return Queued, w
	}
	return Admitted, nil
}

// AbandonWait withdraws a queued request whose wait timed out, counting
// it as shed. It reports whether the request was still queued: false
// means the slot was granted concurrently — the caller owns it and
// proceeds as admitted.
func (c *Core) AbandonWait(w *overload.Waiter, path string, now time.Time) bool {
	c.ovMu.Lock()
	ok := c.gate.Abandon(w)
	tier := c.est.Tier()
	c.ovMu.Unlock()
	if ok {
		c.shed(path, tier)
	}
	return ok
}

// shed counts one refused demand request and records the decision.
func (c *Core) shed(path string, tier overload.Tier) {
	c.stats.requests.Add(1)
	c.stats.shed.Add(1)
	if c.emitter != nil {
		c.emitter.emit(Record{
			Seq:     c.seq.Add(1),
			Conn:    -1,
			Path:    path,
			Tier:    tier,
			Verdict: Shed,
			Server:  -1,
		})
	}
}

// GateLeave releases an admission slot for a request that never routed
// (the no-backend-available path). Any queued request granted the slot
// has its grant callback run before GateLeave returns.
func (c *Core) GateLeave() {
	if c.gate == nil {
		return
	}
	c.ovMu.Lock()
	grant := c.gate.Leave()
	c.ovMu.Unlock()
	if grant != nil {
		grant()
	}
}

// FinishRequest feeds one completed demand request back to the overload
// layer: the estimator's latency signal and the gate's freed slot. Any
// queued request granted the slot has its grant callback run before
// FinishRequest returns. No-op when the layer is disabled.
func (c *Core) FinishRequest(now time.Time, latency time.Duration) {
	if c.est == nil {
		return
	}
	c.ovMu.Lock()
	c.est.End(now, latency)
	c.tierC.Store(int32(c.est.Tier()))
	grant := c.gate.Leave()
	c.ovMu.Unlock()
	if grant != nil {
		grant()
	}
}

// Route runs the Fig. 4 front-end flow for one admitted request and
// books the outcome: the session binds (or re-binds) to the chosen
// backend, loads and in-flight state update, and in optimistic mode the
// backend's locality map learns the file. Every Route with OK true must
// be paired with exactly one Done; OK false means no backend was
// available (the request was counted and released, not booked).
//
// Route takes no ranked lock: the policy inputs come from one atomic
// snapshot load, the tier from its lock-free cache, and every mutable
// touch goes through leaf locks (session/file shards, policy stripes)
// or atomics. The per-decision masks and policy view come from a
// pooled scratch, so the steady-state path does not allocate.
func (c *Core) Route(key, path string, size int64, now time.Time) Outcome {
	st, evicted := c.lookupSession(key)
	c.closeIDs(evicted)
	c.stats.requests.Add(1)

	// Session snapshot for classification; the shard lock is released
	// before routing so view methods can take shard locks as leaves.
	sh := c.sessionShardFor(key)
	sh.mu.Lock()
	lastPage := st.lastPage
	sh.mu.Unlock()

	snap := c.snapshot()
	tier := c.Tier()

	// From Saturated up the ladder stops the bundle-aware dispatcher
	// bypass: requests route as plain (non-embedded) traffic.
	embedded := false
	if tier < overload.Saturated && c.cfg.Features.Bundle && snap.bundles != nil &&
		lastPage != "" && trace.IsEmbeddedPath(path) {
		if parent, ok := snap.bundles.Parent(path); ok && parent == lastPage {
			embedded = true
		}
	}

	sc := c.getScratch()
	avail, navail := c.availMask(sc.avail, now)
	sc.avail = avail
	if navail == 0 && c.cfg.WakeFallback != nil {
		// Wake-on-demand: no backend is awake (e.g. the last active one
		// crashed) — the adapter may bring one back.
		if s, ok := c.cfg.WakeFallback(now); ok && s >= 0 && s < len(avail) {
			avail[s] = true
			navail = 1
		}
	}
	if navail == 0 {
		sc.put()
		// Undo the session reservation: the request was never booked.
		sh.mu.Lock()
		if st.active > 0 {
			st.active--
		}
		sh.mu.Unlock()
		c.stats.unroutable.Add(1)
		if c.emitter != nil {
			c.emitter.emit(Record{
				Seq:     c.seq.Add(1),
				Conn:    st.id,
				Path:    path,
				Tier:    tier,
				Verdict: Admitted,
				Server:  -1,
			})
		}
		return Outcome{Conn: st.id, Server: -1, Source: -1, Tier: tier}
	}

	// From Saturated up, routing degrades to the locality-only fallback:
	// cheap, cache-friendly placement with none of PRORD's machinery.
	pol := snap.pol
	if tier >= overload.Saturated && snap.fallback != nil {
		pol = snap.fallback
	}

	accept := avail
	if c.narrowsAccept() {
		sc.accept = boolBuf(sc.accept, len(avail))
		accept = c.fillAccept(sc.accept, avail)
	}
	view := &sc.view
	view.avail, view.accept = avail, accept
	last, haveLast := view.LastServer(st.id)

	var dec policy.Decision
	if embedded && haveLast {
		// The forward module (Fig. 4's dashed box) lives in the front-end
		// flow, outside the policy: embedded objects follow the previous
		// request directly, whatever the distribution policy.
		dec = policy.Decision{Server: last, Source: -1}
	} else {
		dec = pol.Route(policy.Request{
			Conn:     st.id,
			Path:     path,
			Size:     size,
			Embedded: embedded,
			First:    !haveLast,
		}, view)
	}
	if dec.Server < 0 || dec.Server >= c.cfg.Backends {
		panic(fmt.Sprintf("dispatch: policy %s routed to invalid server %d", pol.Name(), dec.Server))
	}
	// Load-blind policies (WRR) may still pick an unavailable backend;
	// re-route to the least-loaded accepting one. Likewise a fresh
	// placement on a Draining backend moves to an accepting one — only a
	// session already pinned there may keep following its binding.
	if !avail[dec.Server] || (!accept[dec.Server] && !(haveLast && last == dec.Server)) {
		best, found := -1, false
		for i := range accept {
			if !accept[i] {
				continue
			}
			if !found || c.routeLoad(i) < c.routeLoad(best) {
				best, found = i, true
			}
		}
		dec.Server = best
		dec.Handoff = true
	}
	if dec.Source >= 0 && !avail[dec.Source] {
		dec.Source = -1
	}

	// Book the decision.
	sh.mu.Lock()
	hadServer := st.hasSrv
	prevServer := st.server
	switched := hadServer && st.server != dec.Server
	st.server = dec.Server
	st.hasSrv = true
	if !trace.IsEmbeddedPath(path) {
		st.lastPage = path
	}
	sh.mu.Unlock()
	if switched && c.degraded(prevServer) {
		// The move was the detector's doing: the old pin is gray-failing
		// and LastServer stopped honoring it.
		c.stats.grayRebinds.Add(1)
	}

	if dec.Dispatch {
		c.stats.dispatches.Add(1)
	} else if hadServer {
		c.stats.directForwards.Add(1)
	}
	if dec.Handoff {
		c.stats.handoffs.Add(1)
	}
	if switched {
		c.stats.switches.Add(1)
	}
	c.loads[dec.Server].Add(1)
	c.perBackend[dec.Server].Add(1)

	f := c.fileShardFor(path)
	f.mu.Lock()
	incFlight(f.inflight, path, dec.Server)
	if !c.cfg.Exact && !trace.IsDynamicPath(path) {
		// Optimistic locality: the backend will have the file hot after
		// serving it, and any prefetch mark there is consumed by this
		// demand request. Dynamic responses are uncacheable, so they
		// never enter the locality view — matching exact mode, where
		// residency only ever reports cached static files.
		f.locality[dec.Server].Insert(path, 1)
		delSet(f.prefetched, path, dec.Server)
	}
	f.mu.Unlock()

	if c.est != nil {
		c.ovMu.Lock()
		c.est.Begin(now)
		c.tierC.Store(int32(c.est.Tier()))
		c.ovMu.Unlock()
	}

	out := Outcome{
		Conn:      st.id,
		Server:    dec.Server,
		Source:    dec.Source,
		Dispatch:  dec.Dispatch,
		Handoff:   dec.Handoff,
		Switched:  switched,
		Embedded:  embedded,
		HadServer: hadServer,
		Tier:      tier,
		OK:        true,
	}
	sc.put()
	if c.emitter != nil {
		// Emitted with no lock held: the ordered emitter preserves Seq
		// order even when decisions finish out of order, and a slow
		// Recorder delays delivery, not routing.
		c.emitter.emit(Record{
			Seq:      c.seq.Add(1),
			Conn:     st.id,
			Path:     path,
			Tier:     tier,
			Verdict:  Admitted,
			Server:   dec.Server,
			Embedded: embedded,
			Dispatch: dec.Dispatch,
			Handoff:  dec.Handoff,
			Switched: switched,
			Routed:   true,
		})
	}
	return out
}

// Done releases one attempt's booking after it completes. failed marks
// a backend 5xx, transport error or crash: in optimistic mode the
// backend's locality claim for the file is dropped (the process behind
// it may have lost its memory). retried marks a failover retry; a
// successful retry counts as one completed failover.
func (c *Core) Done(key string, server int, path string, failed, retried bool) {
	c.loads[server].Add(-1)

	sh := c.sessionShardFor(key)
	sh.mu.Lock()
	if st, ok := sh.byKey[key]; ok && st.active > 0 {
		st.active--
	}
	sh.mu.Unlock()

	f := c.fileShardFor(path)
	f.mu.Lock()
	decFlight(f.inflight, path, server)
	if failed && !c.cfg.Exact {
		f.locality[server].Remove(path)
		delSet(f.prefetched, path, server)
	}
	f.mu.Unlock()

	if failed {
		c.stats.errors.Add(1)
		return
	}
	if c.cfg.Pool != nil {
		// Advance the backend's warm ramp: each served request shrinks the
		// penalty a Warming backend carries toward promotion.
		c.cfg.Pool.NoteServed(server)
	}
	if retried {
		c.stats.failovers.Add(1)
	}
}

// Rebook re-routes a request whose attempt on the excluded backend
// failed: it picks the best alternative via the shared target helper —
// a backend the locality state says holds the file first (replication
// placed warm copies for exactly this moment), then the least-loaded
// backend open to new placements, falling back to Draining or degraded
// ones only when nothing else is up — re-pins the session, and
// registers the retry in the routing state. ok is false when no
// alternative backend exists.
func (c *Core) Rebook(key, path string, exclude int, now time.Time) (server int, ok bool) {
	best, found := c.pickTarget(path, exclude, false, now)
	if !found {
		return 0, false
	}
	sh := c.sessionShardFor(key)
	sh.mu.Lock()
	if st, okSt := sh.byKey[key]; okSt {
		st.server = best
		st.hasSrv = true
		st.active++
	}
	sh.mu.Unlock()
	c.loads[best].Add(1)
	c.perBackend[best].Add(1)
	c.stats.retries.Add(1)
	f := c.fileShardFor(path)
	f.mu.Lock()
	incFlight(f.inflight, path, best)
	if !c.cfg.Exact {
		f.locality[best].Insert(path, 1)
		delSet(f.prefetched, path, best)
	}
	f.mu.Unlock()
	return best, true
}

// InvalidateBackend forgets everything the core believes about a
// backend that crashed or whose breaker tripped: its locality state
// (exact residency or the optimistic map — the process behind it
// likely lost its memory), its prefetch marks, and every session
// pinned to it, which must re-bind on its next request. An elastic
// pool is notified so a backend invalidated *while Draining* is not
// also credited drain rebooks when it is later reaped — the sessions
// were already unpinned here, and counting the reaper's (empty) detach
// again would double-count.
func (c *Core) InvalidateBackend(server int) {
	c.detach(server)
	if c.cfg.Pool != nil {
		c.cfg.Pool.NoteInvalidated(server)
	}
}

// DetachBackend is the drain-completion counterpart of
// InvalidateBackend: same state teardown, but it returns how many
// sessions were unpinned so the adapter can account them as rebooked
// by the drain (each re-binds through the normal path on its next
// request).
func (c *Core) DetachBackend(server int) (unpinned int) {
	return c.detach(server)
}

// detach clears a backend's locality state, prefetch marks and session
// pins, returning the number of sessions unpinned. The writer mutex
// serializes detach sweeps against each other (and against snapshot
// publishes) so concurrent InvalidateBackend/DetachBackend calls for
// the same backend cannot double-count unpinned sessions; routing
// reads proceed under the shard leaves throughout.
func (c *Core) detach(server int) (unpinned int) {
	c.wrMu.Lock()
	defer c.wrMu.Unlock()
	for i := range c.fsh {
		f := &c.fsh[i]
		f.mu.Lock()
		if c.cfg.Exact {
			for file := range f.memory {
				delSet(f.memory, file, server)
			}
		} else {
			f.locality[server] = newShardLRU(c.cfg.LocalityEntries, c.nshards)
		}
		for file := range f.prefetched {
			delSet(f.prefetched, file, server)
		}
		f.mu.Unlock()
	}
	for i := range c.ssh {
		sh := &c.ssh[i]
		sh.mu.Lock()
		for _, st := range sh.byKey {
			if st.hasSrv && st.server == server {
				st.hasSrv = false
				unpinned++
			}
		}
		sh.mu.Unlock()
	}
	return unpinned
}
