package dispatch_test

// Decision-core tests for the elastic pool: Draining exclusion from new
// placements (while bound sessions keep their pin), warm-ramp load
// steering, drain-completion detach accounting, and the
// crash-while-draining double-count regression.

import (
	"fmt"
	"testing"
	"time"

	"prord/internal/autoscale"
	"prord/internal/dispatch"
	"prord/internal/overload"
	"prord/internal/policy"
)

// stickyPolicy routes a bound connection to its last server and every
// new connection to a fixed first choice, making placement fully
// predictable for the tests below.
type stickyPolicy struct{ first int }

func (p *stickyPolicy) Name() string { return "sticky" }

func (p *stickyPolicy) Route(req policy.Request, view policy.View) policy.Decision {
	if last, ok := view.LastServer(req.Conn); ok {
		return policy.Decision{Server: last, Source: -1}
	}
	return policy.Decision{Server: p.first, Source: -1, Handoff: true}
}

// leastPolicy routes purely by the view's load signal, exposing the
// warm-ramp penalty to the test.
type leastPolicy struct{}

func (leastPolicy) Name() string { return "least" }

func (leastPolicy) Route(req policy.Request, view policy.View) policy.Decision {
	return policy.Decision{Server: policy.LeastLoaded(view), Source: -1, Handoff: true}
}

func newElasticCore(t *testing.T, pol policy.Policy, cfg autoscale.Config) (*dispatch.Core, *autoscale.Pool) {
	t.Helper()
	pool, err := autoscale.NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dispatch.New(dispatch.Config{
		Backends: cfg.Max,
		Policy:   pol,
		Pool:     pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, pool
}

func TestCorePoolMaxMustMatchBackends(t *testing.T) {
	pool, err := autoscale.NewPool(autoscale.Config{Max: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dispatch.New(dispatch.Config{
		Backends: 2,
		Policy:   &stickyPolicy{},
		Pool:     pool,
	}); err == nil {
		t.Fatal("New accepted Pool.Max != Backends")
	}
}

// TestCoreDrainExcludesNewPlacements: a Draining backend takes no new
// sessions — breaker-style exclusion — while an already-bound session
// keeps routing to it until the drain completes, then rebooks.
func TestCoreDrainExcludesNewPlacements(t *testing.T) {
	c, pool := newElasticCore(t, &stickyPolicy{first: 1}, autoscale.Config{Max: 2, Initial: 2})
	now := time.Unix(0, 0)

	out := c.Route("bound", "/a.html", 100, now)
	if !out.OK || out.Server != 1 {
		t.Fatalf("bound session routed to %d, want 1", out.Server)
	}
	c.Done("bound", out.Server, "/a.html", false, false)

	if idx, ok := pool.Drain(now); !ok || idx != 1 {
		t.Fatalf("Drain = %d, %v; want 1, true", idx, ok)
	}

	// A fresh session asking for backend 1 is re-routed to the accepting
	// backend, counted as a handoff.
	out = c.Route("fresh", "/b.html", 100, now)
	if !out.OK || out.Server != 0 || !out.Handoff {
		t.Fatalf("fresh session on draining pool: server=%d handoff=%v, want 0/true", out.Server, out.Handoff)
	}
	c.Done("fresh", out.Server, "/b.html", false, false)

	// The bound session still follows its pin to the draining backend.
	out = c.Route("bound", "/a2.html", 100, now)
	if !out.OK || out.Server != 1 || out.Switched {
		t.Fatalf("bound session on draining backend: server=%d switched=%v, want 1/false", out.Server, out.Switched)
	}
	c.Done("bound", out.Server, "/a2.html", false, false)

	// Complete the drain: Remove + DetachBackend. The bound session's
	// pin is gone, so its next request rebooks onto backend 0.
	if _, ok := pool.Remove(1, now); !ok {
		t.Fatal("Remove failed")
	}
	if unpinned := c.DetachBackend(1); unpinned != 1 {
		t.Fatalf("DetachBackend unpinned %d sessions, want 1", unpinned)
	}
	out = c.Route("bound", "/a3.html", 100, now)
	if !out.OK || out.Server != 0 {
		t.Fatalf("rebooked session routed to %d, want 0", out.Server)
	}
	c.Done("bound", out.Server, "/a3.html", false, false)
}

// TestCoreRebookPrefersAccepting: a failover re-route lands on an
// accepting backend, falling back to a Draining one only when nothing
// else is up.
func TestCoreRebookPrefersAccepting(t *testing.T) {
	c, pool := newElasticCore(t, &stickyPolicy{first: 0}, autoscale.Config{Max: 3, Initial: 3})
	now := time.Unix(0, 0)

	out := c.Route("s", "/a.html", 100, now)
	if out.Server != 0 {
		t.Fatalf("routed to %d, want 0", out.Server)
	}
	pool.Drain(now) // backend 2 drains

	// The attempt on 0 fails; the rebook must pick 1 (accepting), not 2.
	c.Done("s", 0, "/a.html", true, false)
	srv, ok := c.Rebook("s", "/a.html", 0, now)
	if !ok || srv != 1 {
		t.Fatalf("Rebook = %d, %v; want 1, true", srv, ok)
	}
	c.Done("s", srv, "/a.html", false, true)

	// With backend 1 also draining, only the Draining fallback remains
	// (0 is excluded as the failed backend).
	pool.Drain(now)
	out = c.Route("s", "/b.html", 100, now)
	c.Done("s", out.Server, "/b.html", true, false)
	srv, ok = c.Rebook("s", "/b.html", 0, now)
	if !ok || srv == 0 {
		t.Fatalf("Rebook fallback = %d, %v; want a draining backend, true", srv, ok)
	}
	c.Done("s", srv, "/b.html", false, true)
}

// TestCoreWarmPenaltySteering: a Warming backend's load reads inflated
// by the decaying ramp penalty, so a load-aware policy ramps traffic
// onto it instead of dogpiling the empty cache.
func TestCoreWarmPenaltySteering(t *testing.T) {
	c, pool := newElasticCore(t, leastPolicy{},
		autoscale.Config{Max: 2, Initial: 1, WarmRamp: 4, WarmPenalty: 4})
	now := time.Unix(0, 0)

	if idx, ok := pool.Join(now); !ok || idx != 1 {
		t.Fatalf("Join = %d, %v; want 1, true", idx, ok)
	}

	// With the penalty of 4 on the warming backend, the first five
	// concurrent requests pile on backend 0 (loads 0..4 vs penalty 4,
	// ties to the lower index) before the sixth spills onto 1.
	for i := 0; i < 5; i++ {
		out := c.Route(fmt.Sprintf("s%d", i), fmt.Sprintf("/f%d.html", i), 100, now)
		if out.Server != 0 {
			t.Fatalf("request %d routed to %d, want 0 while the ramp penalty holds", i, out.Server)
		}
	}
	out := c.Route("s5", "/f5.html", 100, now)
	if out.Server != 1 {
		t.Fatalf("spill request routed to %d, want warming backend 1", out.Server)
	}

	// Serving requests decays the penalty: after the ramp completes the
	// warming backend competes on real load alone.
	c.Done("s5", 1, "/f5.html", false, false)
	for i := 0; i < 3; i++ {
		pool.NoteServed(1)
	}
	if pen := pool.Penalty(1); pen != 0 {
		t.Fatalf("penalty after ramp = %d, want 0", pen)
	}
	out = c.Route("s6", "/f6.html", 100, now)
	if out.Server != 1 {
		t.Fatalf("post-ramp request routed to %d, want 1 (load 0 vs 5)", out.Server)
	}
	c.Done("s6", 1, "/f6.html", false, false)
	for i := 0; i < 5; i++ {
		c.Done(fmt.Sprintf("s%d", i), 0, fmt.Sprintf("/f%d.html", i), false, false)
	}
}

// TestCoreCrashWhileDraining is the satellite regression at the core
// level: a backend invalidated mid-drain already unpinned its sessions,
// so the later reap must not count the (empty) detach as drain rebooks
// — while a clean drain on the same slot afterwards counts normally.
func TestCoreCrashWhileDraining(t *testing.T) {
	c, pool := newElasticCore(t, &stickyPolicy{first: 1}, autoscale.Config{Max: 2, Initial: 2})
	now := time.Unix(0, 0)

	reap := func(i int) {
		t.Helper()
		countRebooks, ok := pool.Remove(i, now)
		if !ok {
			t.Fatalf("Remove(%d) failed", i)
		}
		unpinned := c.DetachBackend(i)
		if countRebooks {
			pool.NoteRebooked(unpinned)
		}
	}

	for i := 0; i < 2; i++ {
		key := fmt.Sprintf("s%d", i)
		out := c.Route(key, "/a.html", 100, now)
		if out.Server != 1 {
			t.Fatalf("session %d routed to %d, want 1", i, out.Server)
		}
		c.Done(key, out.Server, "/a.html", false, false)
	}

	// Crash mid-drain: InvalidateBackend unpins both sessions and flags
	// the slot; the reap's detach finds nothing and counts nothing.
	pool.Drain(now)
	c.InvalidateBackend(1)
	reap(1)
	if _, _, rebooked := pool.Counters(); rebooked != 0 {
		t.Fatalf("rebooked = %d after crash-while-draining, want 0 (double-count regression)", rebooked)
	}

	// Clean drain of the same slot: rejoin, re-pin two sessions, drain
	// and reap — now the two unpins are counted.
	if _, ok := pool.Join(now); !ok {
		t.Fatal("rejoin failed")
	}
	for i := 0; i < 2; i++ {
		key := fmt.Sprintf("s%d", i)
		out := c.Route(key, "/b.html", 100, now)
		if out.Server != 1 {
			t.Fatalf("session %d re-routed to %d, want 1", i, out.Server)
		}
		c.Done(key, out.Server, "/b.html", false, false)
	}
	pool.Drain(now)
	reap(1)
	if _, _, rebooked := pool.Counters(); rebooked != 2 {
		t.Fatalf("rebooked = %d after clean drain, want 2", rebooked)
	}
}

// TestCoreSetPoolSizeMovesTier: growing the pool recomputes the
// estimator capacity and re-tiers; the admission gate's bound follows.
func TestCoreSetPoolSizeMovesTier(t *testing.T) {
	pool, err := autoscale.NewPool(autoscale.Config{Max: 2, Initial: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dispatch.New(dispatch.Config{
		Backends: 2,
		Policy:   &stickyPolicy{first: 0},
		Pool:     pool,
		Overload: &overload.Config{CapacityPerBackend: 4, MinHold: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)

	// Four in-flight requests against one backend of capacity 4 put the
	// ladder at Critical.
	for i := 0; i < 4; i++ {
		now = now.Add(time.Millisecond)
		c.Route(fmt.Sprintf("s%d", i), "/a.html", 100, now)
	}
	if c.Tier().String() != "critical" {
		t.Fatalf("tier = %v, want critical at 4/4", c.Tier())
	}

	// Joining the second backend doubles capacity; the ladder starts
	// stepping down immediately (one rung, MinHold-paced like any other
	// descent).
	pool.Join(now)
	c.SetPoolSize(pool.Size(), now.Add(time.Second))
	if c.Tier().String() != "saturated" {
		t.Fatalf("tier = %v, want saturated after grow", c.Tier())
	}
	for i := 0; i < 4; i++ {
		c.Done(fmt.Sprintf("s%d", i), 0, "/a.html", false, false)
		c.FinishRequest(now.Add(2*time.Second), time.Millisecond)
	}
}
