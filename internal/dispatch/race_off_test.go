//go:build !race

package dispatch_test

// raceEnabled reports whether the race detector instruments this test
// binary; allocation-count assertions skip under it because the
// instrumentation allocates on paths the production build does not.
const raceEnabled = false
