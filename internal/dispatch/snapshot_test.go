package dispatch_test

// Tests for the lock-free decision read path beyond the golden
// differential (differential_snapshot_test.go): the steady-state
// allocation budget, the ordered record emitter's independence from a
// blocked Recorder, and a race-detector storm of snapshot publishes
// against routing traffic (`make race-snapshot`).

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"prord/internal/dispatch"
	"prord/internal/mining"
	"prord/internal/policy"
	"prord/internal/randutil"
	"prord/internal/trace"
)

// TestRouteDoneAllocs pins the steady-state allocation budget of the
// Route/Done pair at zero: policy inputs come from an atomic snapshot
// load, masks and the policy view come from pooled scratch, shard
// hashing is inline FNV-1a, and booking reuses retained per-path maps.
// Warm-up pays the one-time costs (sessions, locality sets, scratch).
func TestRouteDoneAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on paths the production build does not")
	}
	c, err := dispatch.New(dispatch.Config{
		Backends: 8,
		Policy:   policy.NewPRORD(policy.Thresholds{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, 64)
	for i := range paths {
		paths[i] = fmt.Sprintf("/g%d/p%d.html", i%4, i)
	}
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("10.9.0.%d:1234", i)
	}
	now := time.Unix(0, 0)
	step := func(i int) {
		key, path := keys[i%len(keys)], paths[i%len(paths)]
		out := c.Route(key, path, 4096, now)
		c.Done(key, out.Server, path, false, false)
	}
	for i := 0; i < 4*len(paths); i++ {
		step(i)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		step(i)
		i++
	})
	// A GC can empty the scratch pool mid-run and cost one stray
	// allocation; averaged over 2000 runs that is ~0.0005, so a small
	// tolerance separates it from a real per-decision allocation.
	if allocs > 0.1 {
		t.Errorf("Route+Done allocates %.3f objects per pair in steady state, want 0", allocs)
	}
}

// TestRecorderBlockingDoesNotStallRoutes is the regression test for
// the lock-held Recorder bug: the sink used to run under polMu on the
// routed path, so a slow Recorder serialized every decision. With the
// ordered emitter, exactly one goroutine (the drainer) waits on the
// sink while every other Route enqueues its record and returns. After
// the sink unblocks, delivery must be complete and in Seq order.
func TestRecorderBlockingDoesNotStallRoutes(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	var enteredOnce sync.Once
	var mu sync.Mutex
	var seqs []int64
	c, err := dispatch.New(dispatch.Config{
		Backends: 4,
		Policy:   policy.NewPRORD(policy.Thresholds{}),
		Recorder: func(r dispatch.Record) {
			enteredOnce.Do(func() { close(entered) })
			<-release
			mu.Lock()
			seqs = append(seqs, r.Seq)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)

	// The first decision's goroutine becomes the drainer and parks
	// inside the sink (its Route call blocks in emit → drain).
	var drainer sync.WaitGroup
	drainer.Add(1)
	go func() {
		defer drainer.Done()
		out := c.Route("blocked:1", "/g0/p0.html", 2048, now)
		c.Done("blocked:1", out.Server, "/g0/p0.html", false, false)
	}()
	<-entered

	// With the drainer wedged, concurrent Routes must still complete:
	// their records pile up in the emitter's pending map.
	const workers, iters = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("10.8.%d.%d:99", w, i%16)
				path := fmt.Sprintf("/g%d/p%d.html", i%4, i%64)
				out := c.Route(key, path, 2048, now)
				c.Done(key, out.Server, path, false, false)
			}
		}(w)
	}
	routed := make(chan struct{})
	go func() { wg.Wait(); close(routed) }()
	select {
	case <-routed:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent Routes stalled behind a blocked Recorder")
	}

	close(release)
	drainer.Wait()

	mu.Lock()
	defer mu.Unlock()
	want := int64(1 + workers*iters)
	if int64(len(seqs)) != want {
		t.Fatalf("sink received %d records, want %d", len(seqs), want)
	}
	for i, s := range seqs {
		if s != int64(i+1) {
			t.Fatalf("delivery out of order: position %d got Seq %d, want %d", i, s, i+1)
		}
	}
}

// TestSnapshotPublishChurn storms the epoch-snapshot machinery under
// the race detector: routing workers drive Route/PlanProactive/Rebook/
// Done (the batched observeNav path publishes snapshots on its own as
// batches fill) while a publisher goroutine folds rank observations
// and forces extra RefreshMining publishes and a crasher invalidates
// backends. Afterward the books must balance and the epoch must have
// advanced past the boot snapshot.
func TestSnapshotPublishChurn(t *testing.T) {
	_, full, err := trace.GeneratePreset(trace.PresetSynthetic, 800.0/30000.0, 7777)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := full.Split(0.5)
	const backends = 4
	c, err := dispatch.New(dispatch.Config{
		Backends:           backends,
		Policy:             policy.NewPRORD(policy.Thresholds{}),
		Miner:              mining.Mine(train, mining.Options{}),
		Features:           dispatch.Features{Bundle: true, NavPrefetch: true, GroupPrefetch: true},
		MiningRefreshEvery: 8,
		LocalityEntries:    512,
		MaxSessions:        256,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randutil.New(int64(3000 + w))
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("10.3.%d.%d:99", w, rng.Intn(64))
				path := fmt.Sprintf("/g%d/p%d.html", rng.Intn(4), rng.Intn(128))
				out := c.Route(key, path, 2048, now)
				if !out.OK {
					t.Errorf("worker %d: no backend available with none down", w)
					continue
				}
				if rng.Intn(4) == 0 {
					c.PlanProactive(key, out.Server, path, now)
				}
				if rng.Intn(10) == 0 {
					c.Done(key, out.Server, path, true, false)
					if srv, ok := c.Rebook(key, path, out.Server, now); ok {
						c.Done(key, srv, path, false, true)
					}
					continue
				}
				c.Done(key, out.Server, path, false, false)
			}
		}(w)
	}

	stop := make(chan struct{})
	var storm sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		rng := randutil.New(17)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.ObserveRank(fmt.Sprintf("/g%d/p%d.html", rng.Intn(4), rng.Intn(128)))
			if i%4 == 0 {
				c.RefreshMining()
			}
		}
	}()
	storm.Add(1)
	go func() {
		defer storm.Done()
		rng := randutil.New(19)
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.InvalidateBackend(rng.Intn(backends))
		}
	}()

	wg.Wait()
	close(stop)
	storm.Wait()
	c.RefreshMining()

	if epoch := c.SnapshotEpoch(); epoch <= 1 {
		t.Errorf("snapshot epoch = %d after publish storm, want > 1", epoch)
	}
	if pending := c.MiningPending(); pending != 0 {
		t.Errorf("%d mining observations still pending after final refresh", pending)
	}
	for s, l := range c.Loads() {
		if l != 0 {
			t.Errorf("backend %d still has %d booked requests after drain", s, l)
		}
	}
	total, busy, problem := c.SessionCheck()
	if problem != "" {
		t.Errorf("session table corrupt: %s", problem)
	}
	if busy != 0 {
		t.Errorf("%d sessions still busy after drain", busy)
	}
	if total > 256 {
		t.Errorf("session table grew to %d entries despite bound 256", total)
	}
}
