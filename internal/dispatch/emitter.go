package dispatch

import "sync"

// recordEmitter delivers Records to the configured Recorder in Seq
// order without ever invoking it under a lock. Decisions finish out of
// order under concurrency, so completed records park in a pending map
// keyed by Seq; whichever goroutine finds the delivery frontier
// contiguous becomes the drainer and feeds the sink record by record,
// while everyone else enqueues and returns immediately. One drainer at
// a time preserves order; a sink that blocks therefore stalls only
// record *delivery* (records pile up in pending), never the routing
// goroutines that produced them.
type recordEmitter struct {
	sink func(Record)

	mu       sync.Mutex // leaf: guards the three fields below only
	pending  map[int64]Record
	next     int64 // the Seq the sink receives next
	draining bool  // a goroutine is currently feeding the sink
}

func newRecordEmitter(sink func(Record)) *recordEmitter {
	return &recordEmitter{sink: sink, pending: make(map[int64]Record), next: 1}
}

// emit hands one record to the emitter. The caller must hold no core
// locks: emit may drain, and draining calls the sink.
func (e *recordEmitter) emit(r Record) {
	if e.enqueue(r) {
		e.drain()
	}
}

// enqueue parks the record and reports whether the caller must become
// the drainer.
func (e *recordEmitter) enqueue(r Record) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pending[r.Seq] = r
	if e.draining {
		return false
	}
	e.draining = true
	return true
}

// takeNext pops the frontier record, or clears the draining flag and
// reports false when the frontier record has not arrived yet.
func (e *recordEmitter) takeNext() (Record, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.pending[e.next]
	if !ok {
		e.draining = false
		return Record{}, false
	}
	delete(e.pending, e.next)
	e.next++
	return r, true
}

// drain feeds the sink until the frontier runs dry. The sink runs with
// no locks held.
func (e *recordEmitter) drain() {
	for {
		r, ok := e.takeNext()
		if !ok {
			return
		}
		e.sink(r)
	}
}
