package dispatch_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"prord/internal/dispatch"
	"prord/internal/fleet"
	"prord/internal/policy"
)

// fleetCore builds an optimistic-mode core on a ring, as a live fleet
// replica would run it.
func fleetCore(t *testing.T, ring *fleet.Ring, replica int) *dispatch.Core {
	t.Helper()
	c, err := dispatch.New(dispatch.Config{
		Backends:  4,
		Policy:    policy.NewLARD(policy.Thresholds{}),
		Ring:      ring,
		ReplicaID: replica,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOwnerWithoutRing(t *testing.T) {
	c, err := dispatch.New(dispatch.Config{Backends: 2, Policy: policy.NewWRR(2)})
	if err != nil {
		t.Fatal(err)
	}
	if owner, owned := c.Owner("any"); !owned || owner != 0 {
		t.Fatalf("ringless core: Owner = (%d,%t), want (0,true)", owner, owned)
	}
	if c.RingEpoch() != 0 {
		t.Fatalf("ringless core: RingEpoch = %d, want 0", c.RingEpoch())
	}
}

func TestNewRejectsNonMemberReplica(t *testing.T) {
	ring, _ := fleet.NewRing([]int{0, 1})
	_, err := dispatch.New(dispatch.Config{
		Backends:  2,
		Policy:    policy.NewWRR(2),
		Ring:      ring,
		ReplicaID: 7,
	})
	if err == nil {
		t.Fatal("New accepted a ReplicaID outside the ring membership")
	}
}

// TestOwnershipPartition checks that two replicas on one ring partition
// the key space: every key is owned by exactly one of them.
func TestOwnershipPartition(t *testing.T) {
	ring, _ := fleet.NewRing([]int{0, 1})
	c0 := fleetCore(t, ring, 0)
	c1 := fleetCore(t, ring, 1)
	owned0, owned1 := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("client-%d", i)
		o0, own0 := c0.Owner(key)
		o1, own1 := c1.Owner(key)
		if o0 != o1 {
			t.Fatalf("replicas disagree on %q's owner: %d vs %d", key, o0, o1)
		}
		if own0 == own1 {
			t.Fatalf("key %q owned by both or neither replica (owner %d)", key, o0)
		}
		if own0 {
			owned0++
		} else {
			owned1++
		}
	}
	if owned0 == 0 || owned1 == 0 {
		t.Fatalf("degenerate partition: %d/%d", owned0, owned1)
	}
}

// TestNoteFleetForwardReleasesStalePin checks the rebind path: after a
// membership change moves a session away, the old owner's next foreign
// touch drops the stale binding and counts an ownership rebind.
func TestNoteFleetForwardReleasesStalePin(t *testing.T) {
	ring, _ := fleet.NewRing([]int{0})
	c := fleetCore(t, ring, 0)
	now := time.Unix(0, 0)

	// Bind a batch of sessions while this replica owns everything.
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("client-%d", i)
		out := c.Route(keys[i], "/g0/p0.html", 1024, now)
		if !out.OK {
			t.Fatalf("route failed for %s", keys[i])
		}
		c.Done(keys[i], out.Server, "/g0/p0.html", false, false)
	}

	// Grow the fleet; some keys now belong to replica 1.
	if err := ring.SetMembers([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	foreign, rebinds := 0, 0
	for _, key := range keys {
		if _, owned := c.Owner(key); owned {
			continue
		}
		foreign++
		if c.NoteFleetForward(key) {
			rebinds++
		}
	}
	if foreign == 0 {
		t.Fatal("membership change moved no keys; ring too coarse for the test")
	}
	if rebinds != foreign {
		t.Fatalf("rebinds = %d, want one per foreign idle bound session (%d)", rebinds, foreign)
	}
	st := c.Stats()
	if st.FleetForwards != int64(foreign) || st.OwnershipRebinds != int64(rebinds) {
		t.Fatalf("stats FleetForwards=%d OwnershipRebinds=%d, want %d/%d",
			st.FleetForwards, st.OwnershipRebinds, foreign, rebinds)
	}
	// The released sessions are gone; the owned ones remain.
	if got, want := c.SessionCount(), len(keys)-foreign; got != want {
		t.Fatalf("SessionCount = %d, want %d after releasing %d foreign sessions",
			got, want, foreign)
	}
	if got := c.OwnedSessions(); got != c.SessionCount() {
		t.Fatalf("OwnedSessions = %d, want every remaining session (%d)", got, c.SessionCount())
	}
	// A second foreign touch finds nothing to release.
	for _, key := range keys {
		if _, owned := c.Owner(key); !owned {
			if c.NoteFleetForward(key) {
				t.Fatalf("NoteFleetForward(%s) rebound twice", key)
			}
		}
	}
}

// TestNoteFleetForwardKeepsBusySessions checks that a session with a
// request in flight survives a foreign touch: state is only released
// once idle.
func TestNoteFleetForwardKeepsBusySessions(t *testing.T) {
	ring, _ := fleet.NewRing([]int{0})
	c := fleetCore(t, ring, 0)
	now := time.Unix(0, 0)
	out := c.Route("client-busy", "/g0/p0.html", 1024, now)
	if !out.OK {
		t.Fatal("route failed")
	}
	// In flight: the foreign touch must not release it.
	if c.NoteFleetForward("client-busy") {
		t.Fatal("NoteFleetForward released a busy session")
	}
	if c.SessionCount() != 1 {
		t.Fatal("busy session vanished")
	}
	c.Done("client-busy", out.Server, "/g0/p0.html", false, false)
	if !c.NoteFleetForward("client-busy") {
		t.Fatal("idle bound session not released on foreign touch")
	}
}

// TestNoteRemoteLocality checks the gossip fold: a peer's locality
// delta becomes visible to this replica's policies.
func TestNoteRemoteLocality(t *testing.T) {
	c, err := dispatch.New(dispatch.Config{Backends: 4, Policy: policy.NewLARD(policy.Thresholds{})})
	if err != nil {
		t.Fatal(err)
	}
	c.NoteRemoteLocality(2, "/g0/p9.html")
	if !c.LocalityContains(2, "/g0/p9.html") {
		t.Fatal("gossiped locality delta not visible")
	}
	// Dynamic paths and out-of-range backends are ignored.
	c.NoteRemoteLocality(1, "/search.cgi")
	if c.LocalityContains(1, "/search.cgi") {
		t.Fatal("dynamic path entered the locality map via gossip")
	}
	c.NoteRemoteLocality(99, "/g0/p9.html")
	c.NoteRemoteLocality(-1, "/g0/p9.html")
}

// TestFleetOwnershipStormRace is the `make race-fleet` handoff storm:
// Route/Done/Rebook traffic races ring membership changes, foreign
// touches (NoteFleetForward) and gossip folds (NoteRemoteLocality),
// and the session table must come out consistent.
func TestFleetOwnershipStormRace(t *testing.T) {
	ring, err := fleet.NewRing([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dispatch.New(dispatch.Config{
		Backends:    4,
		Policy:      policy.NewLARD(policy.Thresholds{}),
		Ring:        ring,
		ReplicaID:   0,
		MaxSessions: 256,
		Shards:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Traffic: route-done cycles with occasional rebooks, owner checks
	// and foreign-touch releases — the front-end's fleet loop.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			now := time.Unix(int64(g), 0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("client-%d", (g*131+i)%512)
				path := fmt.Sprintf("/g%d/p%d.html", i%4, i%16)
				if _, owned := c.Owner(key); !owned {
					c.NoteFleetForward(key)
					continue
				}
				out := c.Route(key, path, 2048, now)
				if !out.OK {
					continue
				}
				if i%17 == 0 {
					if srv, ok := c.Rebook(key, path, out.Server, now); ok {
						c.Done(key, srv, path, false, true)
					}
				}
				c.Done(key, out.Server, path, i%13 == 0, false)
				now = now.Add(time.Millisecond)
			}
		}(g)
	}

	// Gossip folds racing the traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.NoteRemoteLocality(i%4, fmt.Sprintf("/g%d/p%d.html", i%4, i%16))
			c.OwnedSessions()
		}
	}()

	// Ring churn: membership flaps while everything above runs. The
	// churn alone can finish before the traffic goroutines are even
	// scheduled, so keep flapping until routing has made progress —
	// the assertion below must race real traffic, not an empty core.
	sets := [][]int{{0, 1, 2}, {0, 1}, {0, 2}, {0, 1, 2, 3}, {0}}
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < 300 || (c.Stats().Requests == 0 && time.Now().Before(deadline)); i++ {
		if err := ring.SetMembers(sets[i%len(sets)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if _, _, problem := c.SessionCheck(); problem != "" {
		t.Fatalf("session table inconsistent after ownership storm: %s", problem)
	}
	st := c.Stats()
	if st.Requests == 0 {
		t.Fatal("storm routed nothing")
	}
}
