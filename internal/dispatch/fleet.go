package dispatch

import "prord/internal/trace"

// This file is the core's fleet face: explicit session ownership over
// a consistent-hash ring (internal/fleet) plus the entry points gossip
// uses to fold peers' shared state into this replica. The core itself
// stays transport-free — forwarding a foreign session to its owner is
// the adapter's job (in-process handler call in httpfront, a modeled
// hop in the simulator); the core only answers "whose session is
// this?" and keeps the accounting honest.

// Owner reports the ring's owning replica for a session key and
// whether that is this core. Without a ring every key is owned here —
// and so is every key on a single-member ring, making the k=1 fleet
// bit-identical to the single-distributor path. Lock-free.
func (c *Core) Owner(key string) (owner int, owned bool) {
	if c.cfg.Ring == nil {
		return c.cfg.ReplicaID, true
	}
	owner = c.cfg.Ring.Owner(key)
	return owner, owner == c.cfg.ReplicaID
}

// RingEpoch returns the ownership ring's epoch (0 without a ring).
// Lock-free.
func (c *Core) RingEpoch() uint64 {
	if c.cfg.Ring == nil {
		return 0
	}
	return c.cfg.Ring.Epoch()
}

// ReplicaID returns this core's fleet replica id (0 without a ring).
func (c *Core) ReplicaID() int { return c.cfg.ReplicaID }

// NoteFleetForward accounts one request handed to its owning replica,
// and releases any stale local session state the ring reassigned away:
// if this replica still tracks the key — it owned the session before a
// membership change — and the session is idle, the binding is dropped
// and counted as an ownership rebind (the owner re-binds it through
// its own routing path). A busy session keeps its state until its
// in-flight requests drain; idle eviction collects it later.
func (c *Core) NoteFleetForward(key string) (rebound bool) {
	c.stats.fleetForwards.Add(1)
	sh := c.sessionShardFor(key)
	sh.mu.Lock()
	st, ok := sh.byKey[key]
	if ok && st.active == 0 {
		delete(sh.byKey, key)
		delete(sh.byID, st.id)
	} else {
		ok = false
	}
	sh.mu.Unlock()
	if ok {
		c.closeIDs([]int{st.id})
		if st.hasSrv {
			c.stats.ownershipRebinds.Add(1)
			return true
		}
	}
	return false
}

// NoteRemoteLocality folds one gossiped locality delta into the
// optimistic locality map: a peer replica routed path to the backend,
// so its cache holds the file hot — this replica's policies should see
// that without paying a cold miss first. Prefetch marks are left alone
// (the peer's demand serve already consumed its own); exact mode
// ignores the hint because residency there is adapter ground truth.
// Takes only the file-shard leaf lock, like the Route booking path.
func (c *Core) NoteRemoteLocality(server int, path string) {
	if c.cfg.Exact || server < 0 || server >= c.cfg.Backends {
		return
	}
	if trace.IsDynamicPath(path) {
		return
	}
	f := c.fileShardFor(path)
	f.mu.Lock()
	f.locality[server].Insert(path, 1)
	f.mu.Unlock()
}

// OwnedSessions counts the tracked sessions the ring assigns to this
// replica (all of them without a ring). It locks every session shard
// in turn; observability only, not for hot paths.
func (c *Core) OwnedSessions() int {
	n := 0
	for i := range c.ssh {
		sh := &c.ssh[i]
		sh.mu.Lock()
		for key := range sh.byKey {
			if _, owned := c.Owner(key); owned {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}
