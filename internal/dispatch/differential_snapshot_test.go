package dispatch_test

// Differential test for the lock-free decision read path: one seeded
// trace is replayed through the core and the complete decision stream —
// every Record field, every proactive plan — is reduced to an FNV-1a
// digest and compared against a constant captured from the
// polMu-serialized implementation (the pre-snapshot semantics). The
// epoch-snapshot refactor must not change a single decision: same
// policy state evolution, same bundle classification, same navigation
// predictions, same tier reads, same Seq numbering.
//
// The batched variant replays the identical trace with the incremental
// mining updater folding every observation immediately
// (MiningRefreshEvery: 1) and requires the same digest — proving the
// copy-on-write fold is observation-for-observation equivalent to the
// in-place online learning it replaces.

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"prord/internal/dispatch"
	"prord/internal/fleet"
	"prord/internal/mining"
	"prord/internal/overload"
	"prord/internal/policy"
	"prord/internal/trace"
)

// goldenDigests were produced by the polMu-serialized Route path (the
// code as of the commit introducing this test) over the seeded replays
// below. They change only when decision semantics change — which this
// PR promises not to do.
const (
	goldenPlainDigest    uint64 = 0x37f86f2c042ad7d5
	goldenOverloadDigest uint64 = 0x8e57878b7380d7df
)

// replayConfig parameterizes one digest replay.
type replayConfig struct {
	refreshEvery int
	overload     *overload.Config
	// fleet replays through a single-member ownership ring with the
	// adapter's per-request Owner check, as a k=1 fleet front-end
	// would — the differential proving the fleet path changes nothing.
	fleet bool
}

// replayDigest replays a seeded synthetic trace through a PRORD core
// with every proactive feature enabled and digests the full decision
// stream: admission verdicts, routing records and proactive plans.
func replayDigest(t *testing.T, rc replayConfig) uint64 {
	t.Helper()
	_, full, err := trace.GeneratePreset(trace.PresetSynthetic, 800.0/30000.0, 4242)
	if err != nil {
		t.Fatal(err)
	}
	train, eval := full.Split(0.4)
	m := mining.Mine(train, mining.Options{})

	// The fleet replay owns every session on a one-member ring (an
	// arbitrary nonzero replica id, proving the id itself never leaks
	// into decisions).
	var ring *fleet.Ring
	replica := 0
	if rc.fleet {
		ring, err = fleet.NewRing([]int{5})
		if err != nil {
			t.Fatal(err)
		}
		replica = 5
	}

	h := fnv.New64a()
	c, err := dispatch.New(dispatch.Config{
		Backends:           4,
		Policy:             policy.NewPRORD(policy.Thresholds{}),
		Fallback:           policy.NewLARD(policy.Thresholds{}),
		Miner:              m,
		Features:           dispatch.Features{Bundle: true, NavPrefetch: true, GroupPrefetch: true},
		Overload:           rc.overload,
		MiningRefreshEvery: rc.refreshEvery,
		Ring:               ring,
		ReplicaID:          replica,
		Recorder: func(r dispatch.Record) {
			fmt.Fprintf(h, "R|%d|%d|%s|%d|%d|%d|%t|%t|%t|%t|%t\n",
				r.Seq, r.Conn, r.Path, r.Tier, r.Verdict, r.Server,
				r.Embedded, r.Dispatch, r.Handoff, r.Switched, r.Routed)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	now := time.Unix(0, 0)
	for i := range eval.Requests {
		r := &eval.Requests[i]
		key := fmt.Sprintf("sess-%d", r.Session)
		if rc.fleet {
			// The adapter's ownership check: on a k=1 ring it must never
			// ask for a forward.
			if owner, owned := c.Owner(key); !owned {
				t.Fatalf("k=1 ring disowned %q to replica %d", key, owner)
			}
		}
		if rc.overload != nil {
			v, _ := c.Admit(key, r.Path, now, nil)
			if v == dispatch.Shed {
				now = now.Add(50 * time.Millisecond)
				continue
			}
		}
		out := c.Route(key, r.Path, r.Size, now)
		if !out.OK {
			if rc.overload != nil {
				c.GateLeave()
			}
			continue
		}
		if !trace.IsEmbeddedPath(r.Path) {
			if plan, ok := c.PlanProactive(key, out.Server, r.Path, now); ok {
				fmt.Fprintf(h, "P|%d|%v|%v|%v\n", plan.Server, plan.Bundle, plan.Nav, plan.Group)
			}
		}
		c.Done(key, out.Server, r.Path, false, false)
		if rc.overload != nil {
			c.FinishRequest(now, 3*time.Millisecond)
		}
		now = now.Add(50 * time.Millisecond)
	}
	return h.Sum64()
}

// hairTriggerOverload lifts the ladder to Elevated on the first routed
// request and holds it there, so tier reads and the tier-driven
// proactive suppression are part of the digested stream.
func hairTriggerOverload() *overload.Config {
	return &overload.Config{
		CapacityPerBackend: 100,
		ElevatedAt:         0.0001,
		SaturatedAt:        0.8,
		CriticalAt:         0.9,
		MinHold:            time.Hour,
	}
}

// TestSnapshotDecisionStreamGolden pins the snapshot read path to the
// decision stream the polMu-serialized path produced.
func TestSnapshotDecisionStreamGolden(t *testing.T) {
	if got := replayDigest(t, replayConfig{}); got != goldenPlainDigest {
		t.Errorf("plain replay digest = %#x, want %#x (decision stream diverged from the polMu-path golden)", got, goldenPlainDigest)
	}
	if got := replayDigest(t, replayConfig{overload: hairTriggerOverload()}); got != goldenOverloadDigest {
		t.Errorf("overload replay digest = %#x, want %#x (tiered decision stream diverged from the polMu-path golden)", got, goldenOverloadDigest)
	}
}

// TestSnapshotBatchedMiningEquivalence replays with the incremental
// updater at refresh-every-1: the copy-on-write fold must reproduce
// the in-place online learning decision for decision.
func TestSnapshotBatchedMiningEquivalence(t *testing.T) {
	if got := replayDigest(t, replayConfig{refreshEvery: 1}); got != goldenPlainDigest {
		t.Errorf("batched (refresh-every-1) digest = %#x, want %#x (incremental fold diverged from in-place learning)", got, goldenPlainDigest)
	}
	if got := replayDigest(t, replayConfig{refreshEvery: 1, overload: hairTriggerOverload()}); got != goldenOverloadDigest {
		t.Errorf("batched overload digest = %#x, want %#x", got, goldenOverloadDigest)
	}
}
