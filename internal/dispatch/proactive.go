package dispatch

import (
	"time"

	"prord/internal/mining"
	"prord/internal/overload"
	"prord/internal/trace"
)

// PlanProactive runs PRORD's proactive pass after a main page was
// served by a backend: bundle prefetch of the page's embedded objects
// (§4.1), navigation prefetch of the predicted next page group
// (Algorithm 2), and the one-shot category prefetch once a session's
// access path identifies the user's group (§4.1). Every admitted file
// is marked prefetched at the target backend before the plan is
// returned; the adapter executes the transfers (one batched disk read
// per trigger in the simulator, HTTP hints in the live front-end) and
// reports failures back through UnmarkPrefetch.
//
// From the Elevated tier up the whole pass is shed (counted in
// PrefetchShed) — speculative work goes first under pressure. ok is
// false when nothing was planned.
func (c *Core) PlanProactive(key string, server int, page string, now time.Time) (Plan, bool) {
	if !c.cfg.Features.any() || c.cfg.Miner == nil || trace.IsEmbeddedPath(page) {
		return Plan{}, false
	}
	if c.cfg.Pool != nil && !c.cfg.Pool.AcceptingNew(server) {
		// A Draining (or just-removed) backend gets no speculative work:
		// its cache is on the way out.
		return Plan{}, false
	}
	if c.est != nil && c.Tier() >= overload.Elevated {
		c.stats.prefetchShed.Add(1)
		return Plan{}, false
	}
	sh := c.sessionShardFor(key)
	sh.mu.Lock()
	st, ok := sh.byKey[key]
	var id int
	if ok {
		id = st.id
	}
	sh.mu.Unlock()
	if !ok {
		return Plan{}, false
	}

	plan := Plan{Server: server}
	if c.cfg.Features.Bundle {
		// Bundle prefetch is neither budgeted nor cold-filtered: the
		// page's objects are requested by the browser within milliseconds.
		for _, obj := range c.cfg.Miner.Bundles.Objects(page) {
			if c.admitPrefetch(server, obj) {
				plan.Bundle = append(plan.Bundle, obj)
			}
		}
	}
	if c.cfg.Features.NavPrefetch && c.tracker != nil {
		pred, predicted := c.observeNav(id, page)
		if predicted && c.cfg.Miner.ShouldPrefetch(pred) {
			// §4.1: the backend prefetches "a specific group of data
			// containing currently requested pages" — the predicted page
			// together with its embedded objects.
			group := append([]string{pred.Page}, c.cfg.Miner.Bundles.Objects(pred.Page)...)
			plan.Nav = c.admitGroup(server, group)
		}
	}
	if c.cfg.Features.GroupPrefetch && c.cfg.Miner.Categorizer != nil {
		plan.Group = c.groupPrefetch(sh, st, server, page)
	}
	return plan, len(plan.Bundle)+len(plan.Nav)+len(plan.Group) > 0
}

// observeNav advances a connection's navigation window with the new
// page and predicts its next page. In immediate mode
// (MiningRefreshEvery 0) the tracker also trains the model in place,
// exactly the historical behavior. In batched mode the window slides
// under trackMu but learning is deferred: the observation buffers in
// the incremental updater, a refresh fires once the batch size is
// reached (folding the buffer into a fresh snapshot), and the
// prediction runs against the current snapshot's immutable model —
// with batch size 1 that sequence is train-then-predict, decision-
// for-decision identical to immediate mode.
func (c *Core) observeNav(id int, page string) (mining.Prediction, bool) {
	if c.cfg.MiningRefreshEvery == 0 {
		c.trackMu.Lock()
		pred, predicted := c.tracker.Observe(id, page)
		c.trackMu.Unlock()
		return pred, predicted
	}
	c.trackMu.Lock()
	prev, window := c.tracker.Advance(id, page)
	c.trackMu.Unlock()
	if c.updater.ObserveNav(prev, page) >= c.cfg.MiningRefreshEvery {
		c.RefreshMining()
	}
	return c.snapshot().nav.Predict(window)
}

// groupPrefetch implements §4.1's category-driven prefetching: once a
// connection's access path identifies the user's group with confidence
// ("the longer the comparison paths are, the better the confidence of
// the predicted category"), the group's characteristic pages are pulled
// into the serving backend's memory. Fires at most once per connection.
func (c *Core) groupPrefetch(sh *sessionShard, st *session, server int, page string) []string {
	cat := c.cfg.Miner.Categorizer
	sh.mu.Lock()
	if st.classified {
		sh.mu.Unlock()
		return nil
	}
	pages := append(st.pages, page)
	if len(pages) > 8 {
		pages = pages[len(pages)-8:]
	}
	st.pages = pages
	pages = append([]string(nil), pages...)
	sh.mu.Unlock()
	if len(pages) < 2 {
		return nil
	}
	group, conf := cat.Classify(pages)
	if conf < 0.8 {
		return nil
	}
	sh.mu.Lock()
	st.classified = true
	sh.mu.Unlock()
	return c.admitGroup(server, cat.TopPages(group, 4))
}

// admitGroup applies the navigation-prefetch admission chain to a page
// group: the adapter's per-backend budget (the simulator skips
// prefetching into a disk loaded with demand work), a cold filter
// (files resident — or already marked prefetched — anywhere are
// skipped: the dispatcher routes requests to existing holders, so a
// duplicate copy would only churn the disk), then per-file admission.
func (c *Core) admitGroup(server int, group []string) []string {
	if c.cfg.NavBudget != nil && !c.cfg.NavBudget(server) {
		return nil
	}
	var out []string
	for _, file := range group {
		if !c.cold(file) {
			continue
		}
		if c.admitPrefetch(server, file) {
			out = append(out, file)
		}
	}
	return out
}

// cold reports whether no backend holds file and no prefetch of it is
// marked anywhere.
func (c *Core) cold(file string) bool {
	f := c.fileShardFor(file)
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.prefetched[file]) > 0 {
		return false
	}
	if c.cfg.Exact {
		return len(f.memory[file]) == 0
	}
	for s := range f.locality {
		if f.locality[s].Contains(file) {
			return false
		}
	}
	return true
}

// MarkPrefetched registers one warm-join preload placement: the
// adapter is about to pull a rank-table file into a joining backend's
// cache, and the mark makes the placement visible to routing (and to
// the piggyback path in the simulator) exactly like a PlanProactive
// admission. Same admission chain as prefetch planning; it reports
// whether the adapter should fetch the file.
func (c *Core) MarkPrefetched(server int, file string) bool {
	return c.admitPrefetch(server, file)
}

// admitPrefetch registers one prefetch placement if the file is
// eligible (cacheable, passes the adapter filter), absent from the
// target backend, and not already marked there. It reports whether the
// adapter should fetch it.
func (c *Core) admitPrefetch(server int, file string) bool {
	if trace.IsDynamicPath(file) {
		return false // generated content cannot be prefetched
	}
	if c.cfg.Prefetchable != nil && !c.cfg.Prefetchable(file) {
		return false
	}
	f := c.fileShardFor(file)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.residentHere(c.cfg.Exact, server, file) {
		return false
	}
	if f.prefetched[file][server] {
		return false // already being prefetched here
	}
	addSet(f.prefetched, file, server)
	c.stats.prefetches.Add(1)
	return true
}
