package dispatch_test

// Differential regression for the fleet refactor: a fleet of size one
// must be invisible. The replay harness from the snapshot differential
// runs with a single-member ownership ring and the adapter's
// per-request Owner check, and the resulting decision stream must
// digest to the same golden FNV constants the pre-fleet path produced —
// same Seq numbering, same routing, same plans, same tier reads.

import (
	"testing"
)

// TestFleetSingleReplicaDecisionStreamGolden pins the k=1 fleet path to
// the pre-fleet decision stream, plain and under the overload ladder.
func TestFleetSingleReplicaDecisionStreamGolden(t *testing.T) {
	if got := replayDigest(t, replayConfig{fleet: true}); got != goldenPlainDigest {
		t.Errorf("k=1 fleet digest = %#x, want %#x (ownership ring changed the decision stream)",
			got, goldenPlainDigest)
	}
	if got := replayDigest(t, replayConfig{fleet: true, overload: hairTriggerOverload()}); got != goldenOverloadDigest {
		t.Errorf("k=1 fleet overload digest = %#x, want %#x (ownership ring changed the tiered decision stream)",
			got, goldenOverloadDigest)
	}
	if got := replayDigest(t, replayConfig{fleet: true, refreshEvery: 1}); got != goldenPlainDigest {
		t.Errorf("k=1 fleet batched-mining digest = %#x, want %#x", got, goldenPlainDigest)
	}
}
