package dispatch

import (
	"sort"
	"sync"
	"time"

	"prord/internal/cache"
	"prord/internal/policy"
)

// session is one tracked client connection. Guarded by its shard's
// mutex.
type session struct {
	id       int
	key      string
	server   int
	hasSrv   bool
	active   int // requests currently in flight for this session
	lastPage string
	// pages is the recent main-page path used by group prefetch;
	// classified marks that the one-shot category prefetch already fired.
	pages      []string
	classified bool
}

// sessionShard is one stripe of the session table.
type sessionShard struct {
	mu    sync.Mutex
	seq   int
	byKey map[string]*session
	byID  map[int]*session
}

// fileShard is one stripe of the per-file routing state. In optimistic
// mode it also carries this stripe's slice of every backend's locality
// LRU (each bounded to LocalityEntries/Shards entries).
type fileShard struct {
	mu         sync.Mutex
	memory     map[string]map[int]bool // exact mode: file -> resident backends
	prefetched map[string]map[int]bool // file -> backends with a prefetch mark
	inflight   map[string]map[int]int  // file -> backend -> outstanding count
	locality   []*cache.LRU            // optimistic mode: per backend
}

// shardOf hashes a string onto a stripe index. The FNV-1a loop is
// inlined rather than using hash/fnv: the hasher interface costs two
// heap allocations per call, and shardOf runs on every Route, Done and
// Admit. Same polynomial, same constants — the stripe assignment (and
// the session-id formula built on it) is bit-identical to fnv.New32a.
func (c *Core) shardOf(s string) int {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return int(h % uint32(c.nshards))
}

func (c *Core) sessionShardFor(key string) *sessionShard { return &c.ssh[c.shardOf(key)] }
func (c *Core) fileShardFor(file string) *fileShard      { return &c.fsh[c.shardOf(file)] }

// lookupSession returns the session for key, creating it if needed. A
// found-or-created session has active incremented as a reservation so a
// concurrent eviction pass cannot drop it before the caller books the
// request; every lookupSession is paired with a Done (or an explicit
// release on the unroutable path). evicted lists the idle sessions the
// MaxSessions valve dropped; the caller must pass them to closeIDs
// after releasing every lock.
func (c *Core) lookupSession(key string) (st *session, evicted []int) {
	sh := c.sessionShardFor(key)
	sh.mu.Lock()
	st, ok := sh.byKey[key]
	if !ok {
		if len(sh.byKey) >= c.sessionsPerShard {
			evicted = sh.evictIdle()
		}
		sh.seq++
		st = &session{id: (sh.seq-1)*c.nshards + c.shardOf(key), key: key}
		sh.byKey[key] = st
		sh.byID[st.id] = st
	}
	st.active++
	sh.mu.Unlock()
	return st, evicted
}

// evictIdle drops every session in the shard with no request in flight.
// Sessions mid-request keep their binding; if every session is busy the
// shard temporarily grows past its bound instead of yanking state out
// from under in-flight requests. Callers hold the shard mutex and must
// closeIDs the returned ids after releasing it.
func (sh *sessionShard) evictIdle() (evicted []int) {
	for key, st := range sh.byKey {
		if st.active > 0 {
			continue
		}
		delete(sh.byKey, key)
		delete(sh.byID, st.id)
		evicted = append(evicted, st.id)
	}
	sort.Ints(evicted)
	return evicted
}

// closeIDs releases the tracker's and the policies' per-connection
// state for evicted or closed session ids. Callers hold no locks.
// ConnClose implementations must be concurrency-safe (the policy
// package's contract), so no core lock wraps them.
func (c *Core) closeIDs(ids []int) {
	if len(ids) == 0 {
		return
	}
	if c.tracker != nil {
		c.trackMu.Lock()
		for _, id := range ids {
			c.tracker.Close(id)
		}
		c.trackMu.Unlock()
	}
	snap := c.snapshot()
	cc, closes := snap.pol.(policy.ConnCloser)
	fc, fcloses := snap.fallback.(policy.ConnCloser)
	for _, id := range ids {
		if closes {
			cc.ConnClose(id)
		}
		if fcloses {
			fc.ConnClose(id)
		}
	}
}

// CloseConn drops a finished connection's session state (the simulator
// calls it when a replayed session's script ends; the live front-end
// relies on idle eviction instead).
func (c *Core) CloseConn(key string) {
	sh := c.sessionShardFor(key)
	sh.mu.Lock()
	st, ok := sh.byKey[key]
	if ok {
		delete(sh.byKey, key)
		delete(sh.byID, st.id)
	}
	sh.mu.Unlock()
	if ok {
		c.closeIDs([]int{st.id})
	}
}

// available reports whether a backend can take new work at now. With an
// elastic pool, Absent slots are never available; Draining backends are
// (bound sessions still route to them) — the accept mask handles their
// exclusion from new placements.
func (c *Core) available(server int, now time.Time) bool {
	if c.cfg.Pool != nil && !c.cfg.Pool.Present(server) {
		return false
	}
	if c.cfg.Available == nil {
		return true
	}
	return c.cfg.Available(server, now)
}

// availMask evaluates every backend's availability once per decision,
// filling the caller's buffer (grown if needed) to keep the routing
// path allocation-free.
func (c *Core) availMask(buf []bool, now time.Time) (mask []bool, n int) {
	mask = boolBuf(buf, c.cfg.Backends)
	for i := range mask {
		if c.available(i, now) {
			mask[i] = true
			n++
		}
	}
	return mask, n
}

// boolBuf returns a length-n false-filled slice backed by buf when it
// has the capacity.
func boolBuf(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// loadOf returns the routable-load signal for an available backend.
func (c *Core) loadOf(server int) int {
	if c.cfg.LoadOf != nil {
		return c.cfg.LoadOf(server)
	}
	return int(c.loads[server].Load())
}

// routeLoad is the placement signal for new work: the load signal plus
// the warm-ramp penalty a just-joined backend carries, so load-aware
// policies ramp traffic onto it instead of dogpiling the empty cache.
func (c *Core) routeLoad(server int) int {
	l := c.loadOf(server)
	if c.cfg.Pool != nil {
		l += c.cfg.Pool.Penalty(server)
	}
	return l
}

// degraded reports the gray-failure detector's verdict for a backend
// (never degraded without a Degraded hook). Lock-free per the Config
// contract, so it is safe under shard leaf locks.
func (c *Core) degraded(server int) bool {
	return c.cfg.Degraded != nil && c.cfg.Degraded(server)
}

// narrowsAccept reports whether any configured layer can make the
// accept mask narrower than the availability mask. When false, Route
// uses the availability mask directly — the historical behavior.
func (c *Core) narrowsAccept() bool {
	return c.cfg.Pool != nil || c.cfg.Degraded != nil
}

// fillAccept narrows an availability mask to backends open to new
// placements — not Draining, not gray-degraded — filling accept
// (pre-sized to match avail). When nothing accepts — every present
// backend is draining or degraded — it falls back to the availability
// mask so traffic still routes. Callers without a pool or detector use
// the availability mask directly.
func (c *Core) fillAccept(accept, avail []bool) []bool {
	n := 0
	for i := range avail {
		if !avail[i] {
			continue
		}
		if c.cfg.Pool != nil && !c.cfg.Pool.AcceptingNew(i) {
			continue
		}
		if c.degraded(i) {
			continue
		}
		accept[i] = true
		n++
	}
	if n == 0 {
		return avail
	}
	return accept
}

// scratch is the per-decision working set Route borrows from a
// sync.Pool: the availability and accept masks, the policy view, and
// the view's reusable server-list buffer. Pooling keeps the
// steady-state routing path at zero heap allocations.
type scratch struct {
	avail  []bool
	accept []bool
	view   coreView
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// getScratch borrows a scratch and wires its view to the core.
func (c *Core) getScratch() *scratch {
	sc := scratchPool.Get().(*scratch)
	sc.view.c = c
	return sc
}

// putScratch returns a scratch to the pool, dropping references that
// would pin core state.
func (sc *scratch) put() {
	sc.view.c = nil
	sc.view.avail = nil
	sc.view.accept = nil
	scratchPool.Put(sc)
}

// residentHere reports whether the core believes a backend holds file:
// ground truth in exact mode, the bounded locality LRU otherwise.
// Callers hold the file's shard mutex.
func (f *fileShard) residentHere(exact bool, server int, file string) bool {
	if exact {
		return f.memory[file][server]
	}
	return f.locality[server].Contains(file)
}

// coreView implements policy.View for one routing decision, filtering
// unavailable backends exactly as both adapters used to: their load
// reads as the UnavailableLoad sentinel, they vanish from server sets,
// and a connection pinned to one loses its binding. With an elastic
// pool the accept mask additionally hides Draining backends from new
// placements (the breaker-style exclusion, applied one lifecycle state
// earlier) while LastServer still honors a session's pin to one, and
// Warming backends report their load inflated by the decaying ramp
// penalty. The view lives in the per-decision scratch, takes shard
// mutexes strictly as leaves (an ordering the lockorder analyzer
// verifies interprocedurally on every lint run) and serves
// server-set results from one reusable buffer — per the policy.View
// contract those slices are valid only until the next view call.
type coreView struct {
	c      *Core
	avail  []bool // present and healthy: bound sessions may stay
	accept []bool // additionally open to new placements
	buf    []int  // reusable result buffer for ServersWith/PrefetchedAt
}

func (v *coreView) NumServers() int { return v.c.cfg.Backends }

func (v *coreView) Load(i int) int {
	if !v.accept[i] {
		return policy.UnavailableLoad
	}
	return v.c.routeLoad(i)
}

func (v *coreView) ServersWith(file string) []int {
	f := v.c.fileShardFor(file)
	f.mu.Lock()
	defer f.mu.Unlock()
	if v.c.cfg.Exact {
		return v.filter(f.memory[file])
	}
	out := v.buf[:0]
	for s := range v.accept {
		if v.accept[s] && f.locality[s].Contains(file) {
			out = append(out, s)
		}
	}
	v.buf = out
	if len(out) == 0 {
		return nil
	}
	return out
}

func (v *coreView) PrefetchedAt(file string) []int {
	f := v.c.fileShardFor(file)
	f.mu.Lock()
	defer f.mu.Unlock()
	return v.filter(f.prefetched[file])
}

// filter returns the available members of a server set in ascending
// order, so policies that pick the first candidate behave the same on
// every run instead of following map iteration order. The result
// shares the view's buffer.
func (v *coreView) filter(set map[int]bool) []int {
	if len(set) == 0 {
		return nil
	}
	out := v.buf[:0]
	for s := range set {
		if v.accept[s] {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	v.buf = out
	if len(out) == 0 {
		return nil
	}
	return out
}

func (v *coreView) InFlight(file string) (int, bool) {
	f := v.c.fileShardFor(file)
	f.mu.Lock()
	defer f.mu.Unlock()
	best, found := 0, false
	for s, n := range f.inflight[file] {
		if n <= 0 || !v.accept[s] {
			continue
		}
		if !found || s < best {
			best, found = s, true
		}
	}
	return best, found
}

func (v *coreView) LastServer(conn int) (int, bool) {
	sh := &v.c.ssh[conn%v.c.nshards]
	sh.mu.Lock()
	st, ok := sh.byID[conn]
	server, has := 0, false
	if ok && st.hasSrv {
		server, has = st.server, true
	}
	sh.mu.Unlock()
	if !has || !v.avail[server] {
		return 0, false
	}
	if v.c.degraded(server) {
		// A pin to a gray-failing backend is not honored: the session
		// re-binds through the normal path — this request, this session.
		// (A Draining pin, by contrast, stays honored: the backend is
		// healthy and its cache is warm until the drain completes.)
		return 0, false
	}
	return server, true
}

var _ policy.View = (*coreView)(nil)

// --- exact-locality adapter hooks (no-ops in optimistic mode) ---

// NoteResident records ground-truth residency: the adapter's backend
// now holds file in memory. Exact mode only.
func (c *Core) NoteResident(server int, file string) {
	if !c.cfg.Exact {
		return
	}
	f := c.fileShardFor(file)
	f.mu.Lock()
	addSet(f.memory, file, server)
	f.mu.Unlock()
}

// NoteGone records that a backend no longer holds file (eviction or
// crash); any prefetch mark there falls with it. Exact mode only.
func (c *Core) NoteGone(server int, file string) {
	if !c.cfg.Exact {
		return
	}
	f := c.fileShardFor(file)
	f.mu.Lock()
	delSet(f.memory, file, server)
	delSet(f.prefetched, file, server)
	f.mu.Unlock()
}

// PrefetchedHere reports whether file carries a prefetch mark at the
// backend (the simulator's piggyback check: a prefetch disk read is in
// progress or completed there).
func (c *Core) PrefetchedHere(server int, file string) bool {
	f := c.fileShardFor(file)
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.prefetched[file][server]
}

// ConsumePrefetch clears file's prefetch mark at the backend and
// reports whether one was present — a prefetch hit.
func (c *Core) ConsumePrefetch(server int, file string) bool {
	f := c.fileShardFor(file)
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.prefetched[file][server] {
		return false
	}
	delSet(f.prefetched, file, server)
	return true
}

// UnmarkPrefetch drops file's prefetch mark at the backend without
// counting a hit (the placement failed or was invalidated).
func (c *Core) UnmarkPrefetch(server int, file string) {
	f := c.fileShardFor(file)
	f.mu.Lock()
	delSet(f.prefetched, file, server)
	f.mu.Unlock()
}

// --- observability accessors (tests, stats endpoints) ---

// Loads returns the core's outstanding-booking count per backend. When
// the adapter supplies LoadOf the policies route on that signal
// instead, but the core still maintains these counters.
func (c *Core) Loads() []int {
	out := make([]int, len(c.loads))
	for i := range c.loads {
		out[i] = int(c.loads[i].Load())
	}
	return out
}

// SessionCount returns the number of tracked sessions.
func (c *Core) SessionCount() int {
	n := 0
	for i := range c.ssh {
		sh := &c.ssh[i]
		sh.mu.Lock()
		n += len(sh.byKey)
		sh.mu.Unlock()
	}
	return n
}

// SessionBinding reports a session's backend pin, or ok=false when the
// session is unknown or unbound.
func (c *Core) SessionBinding(key string) (server int, ok bool) {
	sh := c.sessionShardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st, found := sh.byKey[key]; found && st.hasSrv {
		return st.server, true
	}
	return 0, false
}

// LocalityLen returns the optimistic locality map's entry count for a
// backend (0 in exact mode, where residency is adapter ground truth).
func (c *Core) LocalityLen(server int) int {
	if c.cfg.Exact {
		return 0
	}
	n := 0
	for i := range c.fsh {
		f := &c.fsh[i]
		f.mu.Lock()
		n += f.locality[server].Len()
		f.mu.Unlock()
	}
	return n
}

// LocalityContains reports whether the core believes a backend holds
// file (either locality mode).
func (c *Core) LocalityContains(server int, file string) bool {
	f := c.fileShardFor(file)
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.residentHere(c.cfg.Exact, server, file)
}

// ResidencySnapshot returns the exact-mode residency map: file ->
// holding backends, ascending. Nil in optimistic mode.
func (c *Core) ResidencySnapshot() map[string][]int {
	if !c.cfg.Exact {
		return nil
	}
	out := make(map[string][]int)
	for i := range c.fsh {
		f := &c.fsh[i]
		f.mu.Lock()
		for file, set := range f.memory {
			// A file lives in exactly one shard, so this is the only
			// write to its entry.
			out[file] = sortedKeys(set)
		}
		f.mu.Unlock()
	}
	return out
}

// PrefetchMarks returns the current prefetch placements: file ->
// marked backends, ascending.
func (c *Core) PrefetchMarks() map[string][]int {
	out := make(map[string][]int)
	for i := range c.fsh {
		f := &c.fsh[i]
		f.mu.Lock()
		for file, set := range f.prefetched {
			if len(set) > 0 {
				out[file] = sortedKeys(set)
			}
		}
		f.mu.Unlock()
	}
	return out
}

// SessionCheck audits the session table for tests: total tracked
// sessions, how many have requests in flight, and the first invariant
// violation found ("" when clean) — a negative in-flight count or an
// id-index entry out of sync with the key table. (A busy session may
// legitimately be observed unbound for an instant: admission reserves
// the session before the routing lock books its backend.) It locks
// every shard in turn; not for hot paths.
func (c *Core) SessionCheck() (total, busy int, problem string) {
	for i := range c.ssh {
		sh := &c.ssh[i]
		sh.mu.Lock()
		total += len(sh.byKey)
		if len(sh.byID) != len(sh.byKey) && problem == "" {
			problem = "byID/byKey size mismatch"
		}
		for _, st := range sh.byKey {
			if st.active > 0 {
				busy++
			}
			switch {
			case problem != "":
			case st.active < 0:
				problem = "negative session in-flight count"
			case sh.byID[st.id] != st:
				problem = "byID entry out of sync with byKey"
			}
		}
		sh.mu.Unlock()
	}
	return total, busy, problem
}

// InFlightFiles returns the number of files with outstanding requests.
// Drained entries linger in the table as empty inner maps (see
// decFlight), so only non-empty sets count.
func (c *Core) InFlightFiles() int {
	n := 0
	for i := range c.fsh {
		f := &c.fsh[i]
		f.mu.Lock()
		for _, set := range f.inflight {
			if len(set) > 0 {
				n++
			}
		}
		f.mu.Unlock()
	}
	return n
}

// --- small helpers ---

// newShardLRU builds one stripe's share of a backend's optimistic
// locality map: the configured entry bound is split evenly across the
// stripes. The map counts entries, not bytes: every file weighs 1.
func newShardLRU(entries int64, shards int) *cache.LRU {
	per := entries / int64(shards)
	if per < 1 {
		per = 1
	}
	return cache.NewLRU(per)
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func addSet(m map[string]map[int]bool, file string, server int) {
	set, ok := m[file]
	if !ok {
		set = make(map[int]bool)
		m[file] = set
	}
	set[server] = true
}

func delSet(m map[string]map[int]bool, file string, server int) {
	if set, ok := m[file]; ok {
		delete(set, server)
		if len(set) == 0 {
			delete(m, file)
		}
	}
}

func incFlight(m map[string]map[int]int, file string, server int) {
	set, ok := m[file]
	if !ok {
		set = make(map[int]int)
		m[file] = set
	}
	set[server]++
}

func decFlight(m map[string]map[int]int, file string, server int) {
	if set, ok := m[file]; ok {
		set[server]--
		if set[server] <= 0 {
			delete(set, server)
		}
		// The drained inner map is deliberately retained: a hot file
		// cycles between one and zero outstanding requests constantly,
		// and re-making the map on every cycle is the routing path's
		// only steady-state allocation. Per-path retention is bounded
		// by the same request universe as the policies' target tables.
	}
}
