package dispatch_test

// Differential test for the shared decision core: the same seeded trace
// is replayed through the discrete-event simulator and through an
// in-process live cluster (real HTTP through httpfront), and every
// routing decision the core records — backend choice, embedded
// classification, dispatch/handoff accounting, degrade-ladder tier,
// admission verdict — must be identical step for step. This is the
// contract the extraction of internal/dispatch exists to enforce:
// simulator results transfer to the live front-end because both are
// thin adapters over one decision engine.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"prord/internal/cluster"
	"prord/internal/dispatch"
	"prord/internal/httpfront"
	"prord/internal/mining"
	"prord/internal/overload"
	"prord/internal/policy"
	"prord/internal/trace"
)

// diffWorkload builds a seeded synthetic workload re-spaced to one
// request per virtual second, so at most one request is ever in flight
// on either side: the sequential schedule removes all timing freedom,
// leaving the decision sequence as the only thing compared.
//
// The miner comes back as a factory, not an instance: the navigation
// tracker learns online, mutating the mined model as the replay runs,
// so sharing one miner between the two adapters would leak the first
// run's learning into the second. Mining is deterministic, so two
// calls yield independent but identical models.
func diffWorkload(t *testing.T, requests int, seed int64) (*trace.Trace, func() *mining.Miner) {
	t.Helper()
	_, full, err := trace.GeneratePreset(trace.PresetSynthetic, float64(requests)/30000.0, seed)
	if err != nil {
		t.Fatal(err)
	}
	train, eval := full.Split(0.4)
	for i := range eval.Requests {
		eval.Requests[i].Time = time.Duration(i) * time.Second
	}
	return eval, func() *mining.Miner { return mining.Mine(train, mining.Options{}) }
}

// simParams sizes backend memory so nothing is ever evicted: the
// simulator's exact residency then equals the live core's optimistic
// locality (every file served stays hot), and the two views cannot
// drift for cache-pressure reasons.
func simParams(backends int) cluster.Params {
	p := cluster.DefaultParams()
	p.Backends = backends
	p.AppMemory = 1 << 30
	p.PinnedMemory = 1 << 28
	return p
}

// recordSink collects core decision records; live requests run one at a
// time, but the goroutine handing off between client and server still
// needs the lock for safe publication.
type recordSink struct {
	mu   sync.Mutex
	recs []dispatch.Record
}

func (s *recordSink) record(r dispatch.Record) {
	s.mu.Lock()
	s.recs = append(s.recs, r)
	s.mu.Unlock()
}

func (s *recordSink) snapshot() []dispatch.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]dispatch.Record(nil), s.recs...)
}

// normalizeConns rewrites connection ids to first-appearance order. The
// two adapters number sessions differently (the simulator runs one
// lock stripe, the live front-end sixteen), so raw ids differ while the
// session structure is identical. -1 (shed before a session was looked
// up) is preserved.
func normalizeConns(recs []dispatch.Record) []dispatch.Record {
	seen := make(map[int]int)
	out := make([]dispatch.Record, len(recs))
	for i, r := range recs {
		if r.Conn >= 0 {
			id, ok := seen[r.Conn]
			if !ok {
				id = len(seen)
				seen[r.Conn] = id
			}
			r.Conn = id
		}
		out[i] = r
	}
	return out
}

// runSim replays the trace through the simulator adapter.
func runSim(t *testing.T, tr *trace.Trace, m *mining.Miner, pol policy.Policy,
	feats cluster.Features, ov *overload.Config, backends int) []dispatch.Record {
	t.Helper()
	sink := &recordSink{}
	cl, err := cluster.New(cluster.Config{
		Params:   simParams(backends),
		Policy:   pol,
		Features: feats,
		Miner:    m,
		Overload: ov,
		Recorder: sink.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(tr); err != nil {
		t.Fatal(err)
	}
	return sink.snapshot()
}

// runLive replays the trace through the live adapter: real DemoBackends
// behind httptest servers, one keep-alive client per trace session (the
// front-end keys sessions on RemoteAddr), strictly sequential. Each
// request waits for the Observe callback, which httpfront invokes only
// after the core has recorded the completion and the proactive pass —
// so the next request cannot race the previous one's decision state.
func runLive(t *testing.T, tr *trace.Trace, m *mining.Miner, pol policy.Policy,
	prefetch bool, ov *overload.Config, backends int) []dispatch.Record {
	t.Helper()
	sink := &recordSink{}
	observed := make(chan struct{}, 1)
	cfg := httpfront.Config{
		Policy:   pol,
		Miner:    m,
		Prefetch: prefetch,
		Overload: ov,
		Recorder: sink.record,
		Observe:  func(httpfront.Observation) { observed <- struct{}{} },
	}
	for i := 0; i < backends; i++ {
		b := httpfront.NewDemoBackend("b", tr.Files, 1<<30, 0)
		srv := httptest.NewServer(b)
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Backends = append(cfg.Backends, u)
	}
	d, err := httpfront.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	front := httptest.NewServer(d)
	t.Cleanup(front.Close)

	clients := make(map[int]*http.Client)
	for _, r := range tr.Requests {
		c := clients[r.Session]
		if c == nil {
			transport := &http.Transport{}
			t.Cleanup(transport.CloseIdleConnections)
			c = &http.Client{Transport: transport}
			clients[r.Session] = c
		}
		resp, err := c.Get(front.URL + r.Path)
		if err != nil {
			t.Fatalf("GET %s: %v", r.Path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		select {
		case <-observed:
		case <-time.After(5 * time.Second):
			t.Fatalf("GET %s: no observation", r.Path)
		}
	}
	return sink.snapshot()
}

// diffRecords asserts two normalized decision streams are identical.
func diffRecords(t *testing.T, sim, live []dispatch.Record) {
	t.Helper()
	if len(sim) != len(live) {
		t.Fatalf("decision counts differ: sim %d, live %d", len(sim), len(live))
	}
	sim, live = normalizeConns(sim), normalizeConns(live)
	mismatches := 0
	for i := range sim {
		if sim[i] != live[i] {
			t.Errorf("decision %d diverged:\n  sim:  %+v\n  live: %+v", i, sim[i], live[i])
			if mismatches++; mismatches >= 5 {
				t.Fatalf("stopping after %d divergent decisions", mismatches)
			}
		}
	}
}

// TestDifferentialPRORD replays one trace through both adapters with
// the full PRORD stack (bundle forwarding, navigation and group
// prefetch) and requires byte-identical decision records.
func TestDifferentialPRORD(t *testing.T) {
	tr, mine := diffWorkload(t, 700, 211)
	if mine().Categorizer == nil {
		t.Fatal("synthetic workload should train a categorizer")
	}
	feats := cluster.Features{Bundle: true, NavPrefetch: true, GroupPrefetch: true}
	sim := runSim(t, tr, mine(), policy.NewPRORD(policy.Thresholds{}), feats, nil, 4)
	live := runLive(t, tr, mine(), policy.NewPRORD(policy.Thresholds{}), true, nil, 4)
	if len(sim) != len(tr.Requests) {
		t.Fatalf("sim recorded %d decisions for %d requests", len(sim), len(tr.Requests))
	}
	diffRecords(t, sim, live)
}

// TestDifferentialWRR is the content-blind control: no miner, no
// proactive features, pure round-robin state in the policy.
func TestDifferentialWRR(t *testing.T) {
	tr, _ := diffWorkload(t, 500, 223)
	sim := runSim(t, tr, nil, policy.NewWRR(3), cluster.Features{}, nil, 3)
	live := runLive(t, tr, nil, policy.NewWRR(3), false, nil, 3)
	diffRecords(t, sim, live)
}

// TestDifferentialOverloadTier pins the degrade ladder above Normal on
// both sides: a hair-trigger Elevated threshold with a long MinHold
// means the first routed request lifts the tier and it never drops, so
// the recorded tier sequence (Normal once, Elevated after) and the
// tier-driven suppression of the proactive pass must match exactly.
func TestDifferentialOverloadTier(t *testing.T) {
	tr, mine := diffWorkload(t, 400, 227)
	feats := cluster.Features{Bundle: true, NavPrefetch: true, GroupPrefetch: true}
	ov := func() *overload.Config {
		return &overload.Config{
			CapacityPerBackend: 100,
			ElevatedAt:         0.0001,
			SaturatedAt:        0.8,
			CriticalAt:         0.9,
			MinHold:            time.Hour,
		}
	}
	sim := runSim(t, tr, mine(), policy.NewPRORD(policy.Thresholds{}), feats, ov(), 3)
	live := runLive(t, tr, mine(), policy.NewPRORD(policy.Thresholds{}), true, ov(), 3)
	diffRecords(t, sim, live)
	elevated := 0
	for _, r := range sim {
		if r.Tier >= overload.Elevated {
			elevated++
		}
	}
	if elevated == 0 {
		t.Fatal("overload variant never left Normal; the tier comparison is vacuous")
	}
}
