package dispatch_test

// Decision-path microbenchmarks for the shared PRORD core, plus the
// BENCH_dispatch.json artifact writer `make bench-smoke` invokes. The
// benchmarks measure the Route/Done pair — the work both adapters pay
// per demand request — with no transport, policy-visible I/O, or
// overload layer attached.
//
// BenchmarkDispatch is single-goroutine decision latency.
// BenchmarkDispatchParallel drives the same mix from all cores: the
// routing read path takes no global lock — policy inputs come from an
// atomic snapshot load, policy state is striped, and booking runs on
// striped shard locks — so decisions per second scale with
// GOMAXPROCS, and the steady-state pair allocates nothing (asserted
// by TestRouteDoneAllocs).

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prord/internal/dispatch"
	"prord/internal/metrics"
	"prord/internal/policy"
)

// benchCore builds an optimistic-mode core the way the live front-end
// does: PRORD policy, default locality/session bounds, no overload
// layer (Admit would dominate Route in the gateless common case).
func benchCore(b *testing.B, backends int) *dispatch.Core {
	b.Helper()
	c, err := dispatch.New(dispatch.Config{
		Backends: backends,
		Policy:   policy.NewPRORD(policy.Thresholds{}),
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// benchPaths is a static working set large enough to spread across
// every file shard and small enough to stay resident in the locality
// maps, so steady-state Route decisions hit the LARD fast paths.
func benchPaths(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("/g%d/p%d.html", i%4, i)
	}
	return out
}

func benchKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.%d.%d:1234", i/256, i%256)
	}
	return out
}

func BenchmarkDispatch(b *testing.B) {
	c := benchCore(b, 8)
	paths := benchPaths(512)
	keys := benchKeys(64)
	now := time.Unix(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key, path := keys[i%len(keys)], paths[i%len(paths)]
		out := c.Route(key, path, 4096, now)
		c.Done(key, out.Server, path, false, false)
	}
}

func BenchmarkDispatchParallel(b *testing.B) {
	c := benchCore(b, 8)
	paths := benchPaths(512)
	keys := benchKeys(256)
	now := time.Unix(0, 0)
	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine replays its own client population so session
		// state spreads across the lock stripes like real traffic does.
		g := int(gid.Add(1))
		i := 0
		for pb.Next() {
			key := keys[(g*31+i)%len(keys)]
			path := paths[(g*17+i)%len(paths)]
			out := c.Route(key, path, 4096, now)
			c.Done(key, out.Server, path, false, false)
			i++
		}
	})
}

// TestDispatchBenchArtifact writes the decision-latency figures as a
// BENCH artifact in the shared schema when BENCH_DISPATCH_OUT names a
// destination (the `make bench-smoke` path). Without the variable it
// is a no-op, keeping `go test ./...` free of file side effects.
func TestDispatchBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_DISPATCH_OUT")
	if out == "" {
		t.Skip("BENCH_DISPATCH_OUT not set")
	}
	c, err := dispatch.New(dispatch.Config{
		Backends: 8,
		Policy:   policy.NewPRORD(policy.Thresholds{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	paths := benchPaths(512)
	keys := benchKeys(64)
	now := time.Unix(0, 0)
	const samples = 200000
	var hist metrics.Histogram
	seqStart := time.Now()
	for i := 0; i < samples; i++ {
		key, path := keys[i%len(keys)], paths[i%len(paths)]
		start := time.Now()
		o := c.Route(key, path, 4096, now)
		c.Done(key, o.Server, path, false, false)
		hist.Observe(time.Since(start))
	}
	seqElapsed := time.Since(seqStart)
	st := c.Stats()

	// The parallel cell is the bench gate's decisions-per-second
	// trendline: the same mix from GOMAXPROCS goroutines against one
	// fresh core, throughput measured over the whole phase.
	pc := benchArtifactCore(t)
	workers := runtime.GOMAXPROCS(0)
	per := samples / workers
	durs := make([][]time.Duration, workers)
	pkeys := benchKeys(256)
	var wg sync.WaitGroup
	parStart := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, per)
			for i := 0; i < per; i++ {
				key := pkeys[(g*31+i)%len(pkeys)]
				path := paths[(g*17+i)%len(paths)]
				start := time.Now()
				o := pc.Route(key, path, 4096, now)
				pc.Done(key, o.Server, path, false, false)
				mine = append(mine, time.Since(start))
			}
			durs[g] = mine
		}(g)
	}
	wg.Wait()
	parElapsed := time.Since(parStart)
	var phist metrics.Histogram
	for _, ds := range durs {
		for _, d := range ds {
			phist.Observe(d)
		}
	}
	pst := pc.Stats()

	art := metrics.BenchArtifact{
		Tool: "dispatch-bench",
		Config: map[string]any{
			"backends":   8,
			"policy":     "PRORD",
			"samples":    samples,
			"gomaxprocs": workers,
		},
		Runs: []metrics.BenchRun{{
			Name:          "route-done",
			Requests:      st.Requests,
			ThroughputRPS: metrics.Round(float64(samples)/seqElapsed.Seconds(), 1),
			Latency:       hist.Summary(),
			DispatchPerRequest: metrics.Round(
				float64(st.Dispatches)/float64(st.Requests), 3),
			Handoffs: st.Handoffs,
		}, {
			Name:          "route-done-parallel",
			Requests:      pst.Requests,
			ThroughputRPS: metrics.Round(float64(workers*per)/parElapsed.Seconds(), 1),
			Latency:       phist.Summary(),
			DispatchPerRequest: metrics.Round(
				float64(pst.Dispatches)/float64(pst.Requests), 3),
			Handoffs: pst.Handoffs,
		}},
	}
	art.Stamp(time.Now())
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := art.Encode(f); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: seq %d rps p50=%dns, parallel(%d) %d rps p50=%dns over %d samples",
		out, int(float64(samples)/seqElapsed.Seconds()), hist.Summary().P50NS,
		workers, int(float64(workers*per)/parElapsed.Seconds()), phist.Summary().P50NS, samples)
}

// benchArtifactCore builds the same core shape as benchCore for tests.
func benchArtifactCore(t *testing.T) *dispatch.Core {
	t.Helper()
	c, err := dispatch.New(dispatch.Config{
		Backends: 8,
		Policy:   policy.NewPRORD(policy.Thresholds{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}
