package dispatch_test

// Decision-path microbenchmarks for the shared PRORD core, plus the
// BENCH_dispatch.json artifact writer `make bench-smoke` invokes. The
// benchmarks measure the Route/Done pair — the work both adapters pay
// per demand request — with no transport, policy-visible I/O, or
// overload layer attached.
//
// BenchmarkDispatch is single-goroutine decision latency.
// BenchmarkDispatchParallel drives the same mix from all cores: Route
// still serializes policy selection on one mutex, but session booking,
// locality updates and completion accounting run on striped shard
// locks, so the pair is expected to scale well past 1/(single-thread
// throughput).

import (
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"prord/internal/dispatch"
	"prord/internal/metrics"
	"prord/internal/policy"
)

// benchCore builds an optimistic-mode core the way the live front-end
// does: PRORD policy, default locality/session bounds, no overload
// layer (Admit would dominate Route in the gateless common case).
func benchCore(b *testing.B, backends int) *dispatch.Core {
	b.Helper()
	c, err := dispatch.New(dispatch.Config{
		Backends: backends,
		Policy:   policy.NewPRORD(policy.Thresholds{}),
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// benchPaths is a static working set large enough to spread across
// every file shard and small enough to stay resident in the locality
// maps, so steady-state Route decisions hit the LARD fast paths.
func benchPaths(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("/g%d/p%d.html", i%4, i)
	}
	return out
}

func benchKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.%d.%d:1234", i/256, i%256)
	}
	return out
}

func BenchmarkDispatch(b *testing.B) {
	c := benchCore(b, 8)
	paths := benchPaths(512)
	keys := benchKeys(64)
	now := time.Unix(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key, path := keys[i%len(keys)], paths[i%len(paths)]
		out := c.Route(key, path, 4096, now)
		c.Done(key, out.Server, path, false, false)
	}
}

func BenchmarkDispatchParallel(b *testing.B) {
	c := benchCore(b, 8)
	paths := benchPaths(512)
	keys := benchKeys(256)
	now := time.Unix(0, 0)
	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine replays its own client population so session
		// state spreads across the lock stripes like real traffic does.
		g := int(gid.Add(1))
		i := 0
		for pb.Next() {
			key := keys[(g*31+i)%len(keys)]
			path := paths[(g*17+i)%len(paths)]
			out := c.Route(key, path, 4096, now)
			c.Done(key, out.Server, path, false, false)
			i++
		}
	})
}

// TestDispatchBenchArtifact writes the decision-latency figures as a
// BENCH artifact in the shared schema when BENCH_DISPATCH_OUT names a
// destination (the `make bench-smoke` path). Without the variable it
// is a no-op, keeping `go test ./...` free of file side effects.
func TestDispatchBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_DISPATCH_OUT")
	if out == "" {
		t.Skip("BENCH_DISPATCH_OUT not set")
	}
	c, err := dispatch.New(dispatch.Config{
		Backends: 8,
		Policy:   policy.NewPRORD(policy.Thresholds{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	paths := benchPaths(512)
	keys := benchKeys(64)
	now := time.Unix(0, 0)
	const samples = 200000
	var hist metrics.Histogram
	for i := 0; i < samples; i++ {
		key, path := keys[i%len(keys)], paths[i%len(paths)]
		start := time.Now()
		o := c.Route(key, path, 4096, now)
		c.Done(key, o.Server, path, false, false)
		hist.Observe(time.Since(start))
	}
	st := c.Stats()
	art := metrics.BenchArtifact{
		Tool: "dispatch-bench",
		Config: map[string]any{
			"backends": 8,
			"policy":   "PRORD",
			"samples":  samples,
		},
		Runs: []metrics.BenchRun{{
			Name:          "route-done",
			Requests:      st.Requests,
			Latency:       hist.Summary(),
			DispatchPerRequest: metrics.Round(
				float64(st.Dispatches)/float64(st.Requests), 3),
			Handoffs: st.Handoffs,
		}},
	}
	art.Stamp(time.Now())
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := art.Encode(f); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: p50=%dus p99=%dus over %d samples",
		out, hist.Summary().P50US, hist.Summary().P99US, samples)
}
