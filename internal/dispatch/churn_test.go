package dispatch_test

// Concurrency churn test for the decision core, aimed at the race
// detector (`make race-dispatch`): many goroutines drive the full
// booking lifecycle — Route, failed attempts, Rebook retries, Done —
// while another goroutine keeps invalidating backends, which rewrites
// every lock stripe's locality and session state mid-flight. After the
// storm the core's books must balance exactly.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"prord/internal/autoscale"
	"prord/internal/dispatch"
	"prord/internal/overload"
	"prord/internal/policy"
	"prord/internal/randutil"
)

func TestCoreConcurrentChurn(t *testing.T) {
	const backends = 4
	c, err := dispatch.New(dispatch.Config{
		Backends: backends,
		Policy:   policy.NewPRORD(policy.Thresholds{}),
		// Small bounds so locality eviction and session eviction both
		// fire under load instead of only growing the tables.
		LocalityEntries: 512,
		MaxSessions:     256,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)

	const workers = 8
	const iters = 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randutil.New(int64(1000 + w))
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("10.1.%d.%d:99", w, rng.Intn(64))
				path := fmt.Sprintf("/g%d/p%d.html", rng.Intn(4), rng.Intn(128))
				out := c.Route(key, path, 2048, now)
				if !out.OK {
					t.Errorf("worker %d: no backend available with none down", w)
					continue
				}
				switch rng.Intn(10) {
				case 0:
					// Failed attempt masked by a failover retry.
					c.Done(key, out.Server, path, true, false)
					if srv, ok := c.Rebook(key, path, out.Server, now); ok {
						c.Done(key, srv, path, false, true)
					}
				case 1:
					// Failed attempt with no retry.
					c.Done(key, out.Server, path, true, false)
				default:
					c.Done(key, out.Server, path, false, false)
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var inv sync.WaitGroup
	inv.Add(1)
	go func() {
		defer inv.Done()
		rng := randutil.New(7)
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.InvalidateBackend(rng.Intn(backends))
			runtime.Gosched()
		}
	}()

	wg.Wait()
	close(stop)
	inv.Wait()

	for s, l := range c.Loads() {
		if l != 0 {
			t.Errorf("backend %d still has %d booked requests after drain", s, l)
		}
	}
	if n := c.InFlightFiles(); n != 0 {
		t.Errorf("%d files still marked in flight after drain", n)
	}
	total, busy, problem := c.SessionCheck()
	if problem != "" {
		t.Errorf("session table corrupt: %s", problem)
	}
	if busy != 0 {
		t.Errorf("%d sessions still busy after drain", busy)
	}
	if total > 256 {
		t.Errorf("session table grew to %d entries despite bound 256", total)
	}
	st := c.Stats()
	if want := int64(workers * iters); st.Requests != want {
		t.Errorf("Stats.Requests = %d, want %d", st.Requests, want)
	}
}

// TestCoreConcurrentChurnElastic repeats the churn storm over an
// elastic pool while a scaler goroutine runs the full Join → Settle →
// Drain → Remove/Detach lifecycle and a crasher invalidates backends —
// including mid-drain, exercising the rebook-accounting handshake under
// the race detector. The pool floor guarantees a route target always
// exists, so after the storm the books must still balance exactly.
func TestCoreConcurrentChurnElastic(t *testing.T) {
	const backends = 8
	pool, err := autoscale.NewPool(autoscale.Config{
		Max:      backends,
		Min:      2,
		Initial:  4,
		WarmRamp: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dispatch.New(dispatch.Config{
		Backends:        backends,
		Policy:          policy.NewPRORD(policy.Thresholds{}),
		LocalityEntries: 512,
		MaxSessions:     256,
		Pool:            pool,
		Overload:        &overload.Config{CapacityPerBackend: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)

	const workers = 8
	const iters = 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randutil.New(int64(2000 + w))
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("10.2.%d.%d:99", w, rng.Intn(64))
				path := fmt.Sprintf("/g%d/p%d.html", rng.Intn(4), rng.Intn(128))
				out := c.Route(key, path, 2048, now)
				if !out.OK {
					t.Errorf("worker %d: no backend available with the pool floor at 2", w)
					continue
				}
				switch rng.Intn(10) {
				case 0:
					c.Done(key, out.Server, path, true, false)
					if srv, ok := c.Rebook(key, path, out.Server, now); ok {
						c.Done(key, srv, path, false, true)
					}
				default:
					c.Done(key, out.Server, path, false, false)
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var storm sync.WaitGroup

	// The scaler churns the pool through every lifecycle edge. Removes
	// ignore the loads==0 reap contract on purpose: the core must keep
	// its books balanced even when a backend vanishes mid-flight.
	storm.Add(1)
	go func() {
		defer storm.Done()
		rng := randutil.New(11)
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch rng.Intn(4) {
			case 0:
				if idx, ok := pool.Join(now); ok {
					c.SetPoolSize(pool.Size(), now)
					_ = idx
				}
			case 1:
				pool.Drain(now)
			case 2:
				pool.Settle(now)
			case 3:
				for _, i := range pool.DrainingSet() {
					countRebooks, ok := pool.Remove(i, now)
					if !ok {
						continue
					}
					unpinned := c.DetachBackend(i)
					if countRebooks {
						pool.NoteRebooked(unpinned)
					}
					c.SetPoolSize(pool.Size(), now)
				}
			}
			runtime.Gosched()
		}
	}()

	// The crasher invalidates random slots — sometimes Draining ones,
	// which is exactly the double-count hazard the pool's crashed flag
	// guards.
	storm.Add(1)
	go func() {
		defer storm.Done()
		rng := randutil.New(13)
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.InvalidateBackend(rng.Intn(backends))
			runtime.Gosched()
		}
	}()

	wg.Wait()
	close(stop)
	storm.Wait()

	for s, l := range c.Loads() {
		if l != 0 {
			t.Errorf("backend %d still has %d booked requests after drain", s, l)
		}
	}
	if n := c.InFlightFiles(); n != 0 {
		t.Errorf("%d files still marked in flight after drain", n)
	}
	total, busy, problem := c.SessionCheck()
	if problem != "" {
		t.Errorf("session table corrupt: %s", problem)
	}
	if busy != 0 {
		t.Errorf("%d sessions still busy after drain", busy)
	}
	if total > 256 {
		t.Errorf("session table grew to %d entries despite bound 256", total)
	}
	st := c.Stats()
	if want := int64(workers * iters); st.Requests != want {
		t.Errorf("Stats.Requests = %d, want %d", st.Requests, want)
	}
	if size := pool.Size(); size < 2 || size > backends {
		t.Errorf("pool size %d escaped [2, %d]", size, backends)
	}
}
