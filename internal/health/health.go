// Package health implements per-backend failure detection for the live
// front-end: consecutive-failure tracking and a circuit breaker with
// exponential backoff and half-open trial requests.
//
// The breaker is a pure state machine: every transition takes the
// current time as an argument, so production code drives it with the
// wall clock while tests drive it with a synthetic one. The repo's
// nowallclock analyzer enforces the split — only the prober (prober.go)
// may touch real timers, because waiting between probes is the one job
// that genuinely needs them.
package health

import "time"

// State is a circuit breaker's position.
type State int

const (
	// Closed means healthy: all traffic is allowed.
	Closed State = iota
	// Open means tripped: no traffic until the backoff expires.
	Open
	// HalfOpen means one trial request is probing recovery.
	HalfOpen
)

// String returns the conventional lower-case breaker state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Config tunes a Breaker. The zero value selects the defaults.
type Config struct {
	// Threshold is how many consecutive failures trip the breaker.
	// Default 3.
	Threshold int
	// Backoff is the first open interval; every failed trial doubles
	// it. Default 500ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. Default 30s.
	MaxBackoff time.Duration
}

// WithDefaults fills unset fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 500 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	return c
}

// Breaker is a circuit breaker for one backend. It is not goroutine-safe;
// the owner serializes access (the front-end holds its routing mutex).
type Breaker struct {
	cfg         Config
	state       State
	consecutive int
	backoff     time.Duration
	openUntil   time.Time

	successes int64
	failures  int64
	trips     int64
}

// Snapshot is a breaker's observable state for stats endpoints.
type Snapshot struct {
	State               State
	ConsecutiveFailures int
	Successes           int64
	Failures            int64
	Trips               int64
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg Config) *Breaker {
	cfg = cfg.WithDefaults()
	return &Breaker{cfg: cfg, backoff: cfg.Backoff}
}

// State returns the breaker's current position. An Open breaker whose
// backoff has expired still reports Open until Begin claims the trial.
func (b *Breaker) State() State { return b.state }

// Snapshot returns the breaker's counters and state.
func (b *Breaker) Snapshot() Snapshot {
	return Snapshot{
		State:               b.state,
		ConsecutiveFailures: b.consecutive,
		Successes:           b.successes,
		Failures:            b.failures,
		Trips:               b.trips,
	}
}

// Ready reports whether the backend may receive a request at time now:
// true when closed, or when open with the backoff expired (the caller
// should then Begin the half-open trial). False during a trial — only
// the single trial request probes a recovering backend.
func (b *Breaker) Ready(now time.Time) bool {
	switch b.state {
	case Closed:
		return true
	case Open:
		return !now.Before(b.openUntil)
	}
	return false
}

// Begin claims the half-open trial: an open breaker whose backoff has
// expired moves to HalfOpen. Any other state is left alone, so callers
// can invoke it unconditionally after choosing a backend.
func (b *Breaker) Begin(now time.Time) {
	if b.state == Open && !now.Before(b.openUntil) {
		b.state = HalfOpen
	}
}

// OnSuccess records a successful request or probe. It closes the breaker
// from any state and resets the failure streak and backoff.
func (b *Breaker) OnSuccess(now time.Time) {
	b.successes++
	b.consecutive = 0
	b.state = Closed
	b.backoff = b.cfg.Backoff
}

// OnFailure records a failed request or probe and reports whether this
// failure tripped the breaker (Closed reaching the threshold, or a
// failed half-open trial re-opening it). Failures while already open
// only update the counters.
func (b *Breaker) OnFailure(now time.Time) (tripped bool) {
	b.failures++
	b.consecutive++
	switch b.state {
	case Closed:
		if b.consecutive < b.cfg.Threshold {
			return false
		}
	case Open:
		return false
	case HalfOpen:
		// The trial failed: re-open and double the backoff.
		b.backoff *= 2
		if b.backoff > b.cfg.MaxBackoff {
			b.backoff = b.cfg.MaxBackoff
		}
	}
	b.state = Open
	b.openUntil = now.Add(b.backoff)
	b.trips++
	return true
}
