package health

import (
	"testing"
	"time"
)

// feed pushes n samples of latency lat for backend s, advancing the
// clock by step per sample, and returns the advanced clock.
func feed(d *Detector, s int, n int, lat time.Duration, now time.Time, step time.Duration) time.Time {
	for i := 0; i < n; i++ {
		now = now.Add(step)
		d.Observe(s, lat, now)
	}
	return now
}

// feedPool pushes one round of samples to every backend: fast latency
// everywhere except slowSrv which gets slow.
func feedPool(d *Detector, backends int, slowSrv int, fast, slow time.Duration, now time.Time, step time.Duration) time.Time {
	for s := 0; s < backends; s++ {
		lat := fast
		if s == slowSrv {
			lat = slow
		}
		now = feed(d, s, 1, lat, now, step)
	}
	return now
}

func testDetector(n int) (*Detector, DetectorConfig) {
	cfg := DetectorConfig{
		Window:       16,
		MinSamples:   8,
		Multiplier:   3,
		Hold:         time.Second,
		Eject:        5 * time.Second,
		MaxEject:     20 * time.Second,
		RecoverHold:  4 * time.Second,
		EvalInterval: 10 * time.Millisecond,
	}
	return NewDetector(n, cfg), cfg.WithDefaults()
}

// ejectLoop feeds slow traffic to slowSrv (fast everywhere else) until
// it ejects, failing the test if it never does. Stops at ejection so
// the assertion cannot race the dwell readmission.
func ejectLoop(t *testing.T, d *Detector, backends, slowSrv int, now time.Time) time.Time {
	t.Helper()
	for i := 0; i < 500; i++ {
		if d.Degraded(slowSrv) {
			return now
		}
		now = feedPool(d, backends, slowSrv, 2*time.Millisecond, 20*time.Millisecond, now, 20*time.Millisecond)
	}
	t.Fatalf("slow backend %d never ejected", slowSrv)
	return now
}

func TestDetectorEjectsRelativeOutlier(t *testing.T) {
	d, _ := testDetector(4)
	now := time.Unix(0, 0)
	// Everyone healthy: no ejection no matter how long.
	for i := 0; i < 40; i++ {
		now = feedPool(d, 4, -1, 2*time.Millisecond, 0, now, 20*time.Millisecond)
	}
	if d.DegradedCount() != 0 {
		t.Fatalf("healthy pool ejected %d backends", d.DegradedCount())
	}
	// Backend 2 turns 10x slow: must eject after Hold, and only it.
	now = ejectLoop(t, d, 4, 2, now)
	for s := 0; s < 4; s++ {
		if s != 2 && d.Degraded(s) {
			t.Fatalf("healthy backend %d ejected", s)
		}
	}
	if got := d.Ejections(); got != 1 {
		t.Fatalf("Ejections = %d, want 1", got)
	}
}

func TestDetectorHoldDelaysEjection(t *testing.T) {
	d, cfg := testDetector(4)
	now := time.Unix(0, 0)
	// Fill windows healthy first.
	for i := 0; i < 20; i++ {
		now = feedPool(d, 4, -1, 2*time.Millisecond, 0, now, 20*time.Millisecond)
	}
	// Slow samples for less than Hold: no ejection yet.
	start := now
	for now.Sub(start) < cfg.Hold/2 {
		now = feedPool(d, 4, 1, 2*time.Millisecond, 20*time.Millisecond, now, 20*time.Millisecond)
	}
	if d.Degraded(1) {
		t.Fatal("ejected before Hold elapsed")
	}
	for now.Sub(start) < 2*cfg.Hold {
		now = feedPool(d, 4, 1, 2*time.Millisecond, 20*time.Millisecond, now, 20*time.Millisecond)
	}
	if !d.Degraded(1) {
		t.Fatal("not ejected after Hold elapsed")
	}
}

func TestDetectorDwellReadmitsAndRecovers(t *testing.T) {
	d, cfg := testDetector(4)
	now := time.Unix(0, 0)
	now = ejectLoop(t, d, 4, 3, now)
	// While ejected it gets no traffic; other backends' samples drive
	// the clock. After Eject the dwell expires and it is readmitted.
	for i := 0; i < 200 && d.Degraded(3); i++ {
		now = feedPool(d, 3, -1, 2*time.Millisecond, 0, now, 20*time.Millisecond)
	}
	if d.Degraded(3) {
		t.Fatal("dwell never expired")
	}
	// Now converged: healthy samples through probation confirm recovery.
	start := now
	for now.Sub(start) < 2*cfg.RecoverHold {
		now = feedPool(d, 4, -1, 2*time.Millisecond, 0, now, 20*time.Millisecond)
	}
	if got := d.Recoveries(); got != 1 {
		t.Fatalf("Recoveries = %d, want 1", got)
	}
	snap := d.Snapshot()
	if snap[3].Degraded || snap[3].Probation {
		t.Fatalf("backend 3 still degraded/probation after recovery: %+v", snap[3])
	}
}

func TestDetectorFlappingDoublesDwell(t *testing.T) {
	d, _ := testDetector(4)
	now := time.Unix(0, 0)
	eject := func() {
		for i := 0; i < 200 && !d.Degraded(1); i++ {
			now = feedPool(d, 4, 1, 2*time.Millisecond, 20*time.Millisecond, now, 20*time.Millisecond)
		}
		if !d.Degraded(1) {
			t.Fatal("backend 1 did not eject")
		}
	}
	readmit := func() time.Duration {
		start := now
		for i := 0; i < 5000 && d.Degraded(1); i++ {
			now = feedPool(d, 3, -1, 2*time.Millisecond, 0, now, 5*time.Millisecond)
		}
		if d.Degraded(1) {
			t.Fatal("backend 1 never readmitted")
		}
		return now.Sub(start)
	}
	eject()
	first := readmit()
	// Still slow during probation: re-ejects, and the second dwell must
	// be materially longer than the first.
	eject()
	second := readmit()
	if second < first*3/2 {
		t.Fatalf("flapping dwell did not grow: first %v, second %v", first, second)
	}
}

func TestDetectorNeverEjectsMajority(t *testing.T) {
	d, _ := testDetector(4)
	now := time.Unix(0, 0)
	// Two of four backends slow: at most (4-1)/2 = 1 may eject.
	for i := 0; i < 300; i++ {
		for s := 0; s < 4; s++ {
			lat := 2 * time.Millisecond
			if s >= 2 {
				lat = 30 * time.Millisecond
			}
			now = feed(d, s, 1, lat, now, 5*time.Millisecond)
		}
	}
	if got := d.DegradedCount(); got > 1 {
		t.Fatalf("ejected %d of 4 backends, cap is 1", got)
	}
}

func TestDetectorResetClearsState(t *testing.T) {
	d, _ := testDetector(4)
	now := time.Unix(0, 0)
	now = ejectLoop(t, d, 4, 0, now)
	d.Reset(0)
	if d.Degraded(0) {
		t.Fatal("Reset left backend 0 degraded")
	}
	if d.DegradedCount() != 0 {
		t.Fatalf("DegradedCount = %d after Reset", d.DegradedCount())
	}
	snap := d.Snapshot()
	if snap[0].Samples != 0 || snap[0].P90 != 0 {
		t.Fatalf("Reset left samples: %+v", snap[0])
	}
}

func TestDetectorHedgeDelayTracksHealthyTail(t *testing.T) {
	d, _ := testDetector(4)
	now := time.Unix(0, 0)
	if d.HedgeDelay() != 0 {
		t.Fatal("HedgeDelay non-zero before samples")
	}
	now = ejectLoop(t, d, 4, 3, now)
	// Push another evaluation so the pooled tail excludes the ejected
	// backend's window.
	for i := 0; i < 10; i++ {
		now = feedPool(d, 3, -1, 2*time.Millisecond, 0, now, 20*time.Millisecond)
	}
	hd := d.HedgeDelay()
	if hd <= 0 || hd > 10*time.Millisecond {
		t.Fatalf("HedgeDelay = %v, want healthy-tail (~2ms)", hd)
	}
}

func TestDetectorSingleBackendNeverEjects(t *testing.T) {
	d, _ := testDetector(1)
	now := time.Unix(0, 0)
	now = feed(d, 0, 500, 100*time.Millisecond, now, 20*time.Millisecond)
	if d.Degraded(0) {
		t.Fatal("single-backend pool ejected its only backend")
	}
	_ = now
}

func TestDetectorTickAdvancesDwell(t *testing.T) {
	d, cfg := testDetector(4)
	now := time.Unix(0, 0)
	now = ejectLoop(t, d, 4, 1, now)
	// No traffic at all: Tick alone must readmit once the dwell expires.
	d.Tick(now.Add(cfg.Eject * 2))
	if d.Degraded(1) {
		t.Fatal("Tick did not readmit after dwell")
	}
}
