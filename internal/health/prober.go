// Wall-clock allowance: this file is the one place in internal/health
// permitted to use real timers (see internal/lint/nowallclock.go). The
// prober must wait real time between probes, but its jitter comes from a
// seeded randutil.Source so the probe schedule is reproducible.

package health

import (
	"time"

	"prord/internal/randutil"
)

// Probe invokes fn on a jittered interval until stop closes. Each wait
// is drawn uniformly from [interval/2, 3*interval/2) using src, which
// spreads probe bursts without wall-clock randomness; a nil src disables
// the jitter. A non-positive interval returns immediately.
func Probe(interval time.Duration, src *randutil.Source, stop <-chan struct{}, fn func()) {
	if interval <= 0 {
		return
	}
	// The prober is the clock *driver*, not a clock consumer: it turns
	// real elapsed time into fn() ticks, so it is the one function under
	// clockflow's reach that must touch a real timer. Determinism is
	// preserved because the jitter sequence comes from the seeded src.
	//lint:ignore clockflow the prober converts real time into probe ticks; only its jitter must be (and is) deterministic
	t := time.NewTimer(jitter(interval, src))
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			fn()
			t.Reset(jitter(interval, src))
		}
	}
}

// jitter draws one wait from [interval/2, 3*interval/2).
func jitter(interval time.Duration, src *randutil.Source) time.Duration {
	if src == nil {
		return interval
	}
	return interval/2 + time.Duration(src.Float64()*float64(interval))
}
