package health

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DetectorConfig tunes the gray-failure Detector. The zero value
// selects the defaults.
type DetectorConfig struct {
	// Window is the per-backend latency sample ring size. Default 64.
	Window int
	// MinSamples is how many samples a backend needs in its window
	// before it participates in outlier evaluation. Default 16.
	MinSamples int
	// Multiplier is the relative outlier threshold k: a backend is over
	// threshold while its p90 (and EWMA) exceed k x the pool median of
	// the same statistic. Default 3.
	Multiplier float64
	// Hold is how long a backend must stay over threshold before it is
	// ejected (enters Degraded). Default 2s.
	Hold time.Duration
	// Eject is the base ejection dwell: how long a first ejection keeps
	// the backend Degraded before the probation readmission. Every
	// re-ejection during probation doubles the dwell. Default 5s.
	Eject time.Duration
	// MaxEject caps the exponential dwell growth. Default 60s.
	MaxEject time.Duration
	// RecoverHold is the probation length: a readmitted backend that
	// stays converged this long is confirmed recovered and its dwell
	// backoff resets. Default 10s.
	RecoverHold time.Duration
	// EvalInterval throttles outlier evaluation: the detector re-ranks
	// the pool at most once per interval regardless of sample arrival
	// rate. Default 100ms.
	EvalInterval time.Duration
	// HedgeQuantile is the pooled healthy-latency quantile HedgeDelay
	// reports. Default 0.95.
	HedgeQuantile float64
	// EWMAAlpha is the per-backend latency EWMA smoothing factor.
	// Default 0.2.
	EWMAAlpha float64
}

// WithDefaults fills unset fields with the package defaults.
func (c DetectorConfig) WithDefaults() DetectorConfig {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.Multiplier <= 1 {
		c.Multiplier = 3
	}
	if c.Hold <= 0 {
		c.Hold = 2 * time.Second
	}
	if c.Eject <= 0 {
		c.Eject = 5 * time.Second
	}
	if c.MaxEject <= 0 {
		c.MaxEject = 60 * time.Second
	}
	if c.RecoverHold <= 0 {
		c.RecoverHold = 10 * time.Second
	}
	if c.EvalInterval <= 0 {
		c.EvalInterval = 100 * time.Millisecond
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.2
	}
	return c
}

// phase is one backend's position in the gray-failure state machine.
type phase int

const (
	// healthy: normal service, over-threshold time being tracked.
	healthy phase = iota
	// degraded: ejected; soft-excluded from new bindings until the
	// dwell expires.
	degraded
	// probation: readmitted on a fresh window; a re-ejection before
	// RecoverHold elapses doubles the dwell, surviving it confirms
	// recovery.
	probation
)

// lat tracks one backend's latency statistics and detector state.
type lat struct {
	ring    []time.Duration // fixed-size sample ring
	n       int             // samples in ring (<= len(ring))
	next    int             // ring write cursor
	ewma    float64         // smoothed latency, ns
	haveEwm bool

	phase       phase
	overSince   time.Time // healthy/probation: first over-threshold instant (zero: not over)
	ejectedAt   time.Time // degraded: when the ejection happened
	readmitAt   time.Time // probation: when the dwell expired
	dwell       time.Duration
	ejections   int64
	lastP90     time.Duration // from the most recent evaluation
}

// Detector is the pool-relative gray-failure detector: it ingests
// per-backend request latencies and ejects a backend whose p90 and EWMA
// both exceed Multiplier x the pool median of the same statistics for
// Hold. Ejection is bounded dwell + probation: after Eject (doubling on
// every re-ejection, capped at MaxEject) the backend is readmitted on a
// fresh sample window; surviving RecoverHold converged confirms
// recovery and resets the dwell backoff, so flapping backends spend
// exponentially longer ejected instead of thrashing session bindings.
//
// Like the Breaker it is a pure state machine on caller-supplied time:
// the simulator drives it with virtual time, the live front-end with
// the wall clock. Observe/Reset/Snapshot serialize on an internal leaf
// mutex; Degraded and HedgeDelay are lock-free and safe on routing hot
// paths.
type Detector struct {
	cfg DetectorConfig

	mu       sync.Mutex
	backends []lat
	lastEval time.Time
	scratch  []time.Duration // evaluation buffer, reused across calls

	mask       []atomic.Bool // lock-free Degraded() view
	degradedN  atomic.Int32
	hedgeNS    atomic.Int64 // pooled healthy HedgeQuantile latency, ns
	ejections  atomic.Int64
	recoveries atomic.Int64
}

// BackendLatency is one backend's detector view for stats endpoints.
type BackendLatency struct {
	Degraded  bool
	Probation bool
	P90       time.Duration
	EWMA      time.Duration
	Samples   int
	Ejections int64
}

// NewDetector builds a detector for n backends.
func NewDetector(n int, cfg DetectorConfig) *Detector {
	cfg = cfg.WithDefaults()
	d := &Detector{
		cfg:      cfg,
		backends: make([]lat, n),
		mask:     make([]atomic.Bool, n),
	}
	for i := range d.backends {
		d.backends[i].ring = make([]time.Duration, cfg.Window)
		d.backends[i].dwell = cfg.Eject
	}
	return d
}

// Degraded reports whether backend server is currently ejected.
// Lock-free; safe on routing hot paths. Out-of-range servers are never
// degraded.
func (d *Detector) Degraded(server int) bool {
	if server < 0 || server >= len(d.mask) {
		return false
	}
	return d.mask[server].Load()
}

// DegradedCount returns how many backends are currently ejected.
func (d *Detector) DegradedCount() int { return int(d.degradedN.Load()) }

// HedgeDelay returns the pooled HedgeQuantile latency across
// non-degraded backends from the most recent evaluation — the delay
// after which a hedged backup request is worth firing. Zero until
// enough samples exist. Lock-free.
func (d *Detector) HedgeDelay() time.Duration {
	return time.Duration(d.hedgeNS.Load())
}

// Ejections returns the total ejection count.
func (d *Detector) Ejections() int64 { return d.ejections.Load() }

// Recoveries returns the count of confirmed recoveries (probations
// survived).
func (d *Detector) Recoveries() int64 { return d.recoveries.Load() }

// Observe records one request latency for backend server at time now
// and, at most once per EvalInterval, re-evaluates the pool.
func (d *Detector) Observe(server int, latency time.Duration, now time.Time) {
	if server < 0 || server >= len(d.mask) {
		return
	}
	if latency < 0 {
		latency = 0
	}
	d.mu.Lock()
	b := &d.backends[server]
	b.ring[b.next] = latency
	b.next = (b.next + 1) % len(b.ring)
	if b.n < len(b.ring) {
		b.n++
	}
	if !b.haveEwm {
		b.ewma = float64(latency)
		b.haveEwm = true
	} else {
		b.ewma += d.cfg.EWMAAlpha * (float64(latency) - b.ewma)
	}
	if d.lastEval.IsZero() || !now.Before(d.lastEval.Add(d.cfg.EvalInterval)) {
		d.lastEval = now
		d.evaluate(now)
	}
	d.mu.Unlock()
}

// Tick advances dwell/probation clocks without a new sample — callers
// with sparse traffic (the simulator between completions, the live
// scale loop) use it so ejected backends still readmit on schedule.
func (d *Detector) Tick(now time.Time) {
	d.mu.Lock()
	if d.lastEval.IsZero() || !now.Before(d.lastEval.Add(d.cfg.EvalInterval)) {
		d.lastEval = now
		d.evaluate(now)
	}
	d.mu.Unlock()
}

// Reset clears backend server's window and detector state — call when
// the backend hard-crashes, leaves the pool, or rejoins, so stale
// latencies from a previous life never drive an ejection.
func (d *Detector) Reset(server int) {
	if server < 0 || server >= len(d.mask) {
		return
	}
	d.mu.Lock()
	b := &d.backends[server]
	wasDegraded := b.phase == degraded
	b.n, b.next = 0, 0
	b.ewma, b.haveEwm = 0, false
	b.phase = healthy
	b.overSince = time.Time{}
	b.ejectedAt = time.Time{}
	b.readmitAt = time.Time{}
	b.dwell = d.cfg.Eject
	b.lastP90 = 0
	if wasDegraded {
		d.mask[server].Store(false)
		d.degradedN.Add(-1)
	}
	d.mu.Unlock()
}

// Snapshot returns every backend's detector view.
func (d *Detector) Snapshot() []BackendLatency {
	d.mu.Lock()
	out := make([]BackendLatency, len(d.backends))
	for i := range d.backends {
		b := &d.backends[i]
		out[i] = BackendLatency{
			Degraded:  b.phase == degraded,
			Probation: b.phase == probation,
			P90:       b.lastP90,
			EWMA:      time.Duration(b.ewma),
			Samples:   b.n,
			Ejections: b.ejections,
		}
	}
	d.mu.Unlock()
	return out
}

// evaluate re-ranks the pool and advances every backend's state
// machine. Called under mu.
func (d *Detector) evaluate(now time.Time) {
	// Per-backend p90s, then pool medians over backends with enough
	// samples. Degraded backends keep contributing their (inflated)
	// statistics; the median is robust to a minority of outliers and a
	// backend can never clear its own 3x bar, so self-exclusion is
	// unnecessary.
	p90s := make([]time.Duration, len(d.backends))
	var ranked []time.Duration
	var ewmas []float64
	for i := range d.backends {
		b := &d.backends[i]
		if b.n < d.cfg.MinSamples {
			b.lastP90 = 0
			continue
		}
		p90s[i] = d.quantile(b, 0.90)
		b.lastP90 = p90s[i]
		ranked = append(ranked, p90s[i])
		ewmas = append(ewmas, b.ewma)
	}
	d.publishHedgeDelay()
	if len(ranked) < 2 {
		// With fewer than two ranked backends there is no pool to be an
		// outlier of; still advance dwell clocks below.
		d.advanceDwells(now)
		return
	}
	medP90 := medianDur(ranked)
	medEwm := medianF(ewmas)
	// Structural cap: the median bounds outliers to a minority, but
	// staggered ejections across window resets could creep past it.
	maxDegraded := (len(d.backends) - 1) / 2

	for i := range d.backends {
		b := &d.backends[i]
		switch b.phase {
		case healthy, probation:
			if b.n < d.cfg.MinSamples || medP90 <= 0 {
				b.overSince = time.Time{}
				continue
			}
			over := float64(p90s[i]) > d.cfg.Multiplier*float64(medP90) &&
				b.ewma > d.cfg.Multiplier*medEwm
			if !over {
				b.overSince = time.Time{}
				if b.phase == probation && !now.Before(b.readmitAt.Add(d.cfg.RecoverHold)) {
					// Survived probation converged: confirmed recovery.
					b.phase = healthy
					b.dwell = d.cfg.Eject
					d.recoveries.Add(1)
				}
				continue
			}
			if b.overSince.IsZero() {
				b.overSince = now
				continue
			}
			if now.Sub(b.overSince) < d.cfg.Hold {
				continue
			}
			if int(d.degradedN.Load()) >= maxDegraded {
				continue // never eject a majority of the pool
			}
			if b.phase == probation {
				// Re-ejection during probation: flapping — double the dwell.
				b.dwell *= 2
				if b.dwell > d.cfg.MaxEject {
					b.dwell = d.cfg.MaxEject
				}
			}
			b.phase = degraded
			b.ejectedAt = now
			b.overSince = time.Time{}
			b.ejections++
			d.ejections.Add(1)
			d.mask[i].Store(true)
			d.degradedN.Add(1)
		}
	}
	d.advanceDwells(now)
}

// advanceDwells readmits ejected backends whose dwell expired. Called
// under mu.
func (d *Detector) advanceDwells(now time.Time) {
	for i := range d.backends {
		b := &d.backends[i]
		if b.phase != degraded || now.Before(b.ejectedAt.Add(b.dwell)) {
			continue
		}
		// Probation readmission on a fresh window: the backend needs
		// MinSamples new samples before it can re-trip, a fair trial.
		b.phase = probation
		b.readmitAt = now
		b.overSince = time.Time{}
		b.n, b.next = 0, 0
		b.ewma, b.haveEwm = 0, false
		d.mask[i].Store(false)
		d.degradedN.Add(-1)
	}
}

// publishHedgeDelay pools non-degraded backends' windows and caches the
// HedgeQuantile latency for lock-free HedgeDelay reads. Called under mu.
func (d *Detector) publishHedgeDelay() {
	d.scratch = d.scratch[:0]
	for i := range d.backends {
		b := &d.backends[i]
		if b.phase == degraded || b.n == 0 {
			continue
		}
		d.scratch = append(d.scratch, b.ring[:b.n]...)
	}
	if len(d.scratch) < d.cfg.MinSamples {
		d.hedgeNS.Store(0)
		return
	}
	sort.Slice(d.scratch, func(a, b int) bool { return d.scratch[a] < d.scratch[b] })
	idx := int(d.cfg.HedgeQuantile * float64(len(d.scratch)-1))
	d.hedgeNS.Store(int64(d.scratch[idx]))
}

// quantile computes one backend's window quantile. Called under mu;
// reuses the shared scratch buffer.
func (d *Detector) quantile(b *lat, q float64) time.Duration {
	d.scratch = append(d.scratch[:0], b.ring[:b.n]...)
	sort.Slice(d.scratch, func(a, b int) bool { return d.scratch[a] < d.scratch[b] })
	idx := int(q * float64(len(d.scratch)-1))
	return d.scratch[idx]
}

// medianDur returns the median of a duration slice (sorted in place).
func medianDur(v []time.Duration) time.Duration {
	sort.Slice(v, func(a, b int) bool { return v[a] < v[b] })
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// medianF returns the median of a float slice (sorted in place).
func medianF(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}
