package health

import (
	"testing"
	"time"

	"prord/internal/randutil"
)

// clock is a synthetic clock for driving the breaker in tests.
type clock struct{ now time.Time }

func (c *clock) advance(d time.Duration) time.Time {
	c.now = c.now.Add(d)
	return c.now
}

func newClock() *clock {
	return &clock{now: time.Unix(1_000_000, 0)}
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	ck := newClock()
	b := NewBreaker(Config{Threshold: 3, Backoff: time.Second})
	for i := 0; i < 2; i++ {
		if tripped := b.OnFailure(ck.now); tripped {
			t.Fatalf("failure %d tripped before threshold", i+1)
		}
		if b.State() != Closed {
			t.Fatalf("failure %d: state = %v, want Closed", i+1, b.State())
		}
	}
	if !b.OnFailure(ck.now) {
		t.Fatal("third failure did not trip")
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want Open", b.State())
	}
	if b.Ready(ck.now) {
		t.Fatal("freshly-opened breaker reports Ready")
	}
	if b.Ready(ck.advance(999 * time.Millisecond)) {
		t.Fatal("Ready before backoff expired")
	}
	if !b.Ready(ck.advance(time.Millisecond)) {
		t.Fatal("not Ready after backoff expired")
	}
}

func TestBreakerHalfOpenTrial(t *testing.T) {
	ck := newClock()
	b := NewBreaker(Config{Threshold: 1, Backoff: time.Second, MaxBackoff: 3 * time.Second})
	b.OnFailure(ck.now) // trip
	ck.advance(time.Second)
	b.Begin(ck.now)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", b.State())
	}
	if b.Ready(ck.now) {
		t.Fatal("breaker Ready during half-open trial")
	}
	// Failed trial re-opens with doubled backoff.
	if !b.OnFailure(ck.now) {
		t.Fatal("failed trial did not re-open the breaker")
	}
	if b.Ready(ck.advance(1999 * time.Millisecond)) {
		t.Fatal("Ready before doubled backoff expired")
	}
	if !b.Ready(ck.advance(time.Millisecond)) {
		t.Fatal("not Ready after doubled backoff")
	}
	// Another failed trial hits the MaxBackoff cap (4s would exceed 3s).
	b.Begin(ck.now)
	b.OnFailure(ck.now)
	if b.Ready(ck.advance(2999 * time.Millisecond)) {
		t.Fatal("Ready before capped backoff expired")
	}
	if !b.Ready(ck.advance(time.Millisecond)) {
		t.Fatal("not Ready after capped backoff")
	}
	// Successful trial closes and resets the backoff to the base.
	b.Begin(ck.now)
	b.OnSuccess(ck.now)
	if b.State() != Closed {
		t.Fatalf("state after successful trial = %v, want Closed", b.State())
	}
	b.OnFailure(ck.now) // threshold 1: trips again
	if !b.Ready(ck.advance(time.Second)) {
		t.Fatal("backoff was not reset to the base interval after recovery")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	ck := newClock()
	b := NewBreaker(Config{Threshold: 3})
	b.OnFailure(ck.now)
	b.OnFailure(ck.now)
	b.OnSuccess(ck.now)
	if b.OnFailure(ck.now) || b.OnFailure(ck.now) {
		t.Fatal("streak not reset by intervening success")
	}
	if !b.OnFailure(ck.now) {
		t.Fatal("third post-reset failure did not trip")
	}
	s := b.Snapshot()
	if s.Failures != 5 || s.Successes != 1 || s.Trips != 1 || s.State != Open {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestBreakerOpenFailuresOnlyCount(t *testing.T) {
	ck := newClock()
	b := NewBreaker(Config{Threshold: 1, Backoff: time.Second})
	b.OnFailure(ck.now)
	// A probe failing while the breaker is already open must not extend
	// the deadline or count as a second trip.
	b.OnFailure(ck.advance(500 * time.Millisecond))
	if got := b.Snapshot().Trips; got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	if !b.Ready(ck.advance(500 * time.Millisecond)) {
		t.Fatal("open-state failure extended the original deadline")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Threshold != 3 || c.Backoff != 500*time.Millisecond || c.MaxBackoff != 30*time.Second {
		t.Fatalf("defaults = %+v", c)
	}
	keep := Config{Threshold: 7, Backoff: time.Minute, MaxBackoff: time.Hour}
	if got := keep.WithDefaults(); got != keep {
		t.Fatalf("WithDefaults overwrote explicit values: %+v", got)
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	const interval = 100 * time.Millisecond
	a, b := randutil.New(42), randutil.New(42)
	for i := 0; i < 1000; i++ {
		da := jitter(interval, a)
		if da < interval/2 || da >= interval*3/2 {
			t.Fatalf("jitter %v outside [interval/2, 3*interval/2)", da)
		}
		if db := jitter(interval, b); db != da {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, da, db)
		}
	}
	if got := jitter(interval, nil); got != interval {
		t.Fatalf("nil source jitter = %v, want %v", got, interval)
	}
}

func TestProbeStops(t *testing.T) {
	stop := make(chan struct{})
	fired := make(chan struct{}, 64)
	done := make(chan struct{})
	go func() {
		Probe(time.Millisecond, randutil.New(1), stop, func() {
			select {
			case fired <- struct{}{}:
			default:
			}
		})
		close(done)
	}()
	<-fired // at least one probe fired
	close(stop)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Probe did not stop")
	}
	// A non-positive interval must return immediately, not hang.
	Probe(0, nil, nil, nil)
}
