package loadgen

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"prord/internal/metrics"
	"prord/internal/overload"
	"prord/internal/trace"
)

// rampConfig is a rate-ramp campaign that pushes a deliberately tiny
// cluster to roughly twice its admission capacity: 2 backends at 2
// in-flight each (plus a 2-slot queue) against 12 workers ramping from
// well under capacity to far over it. MinHold of an hour pins the
// ladder so transitions are provably monotone.
func rampConfig() Config {
	return Config{
		Mode:        OpenLoop,
		Policies:    []string{"PRORD"},
		Backends:    2,
		Rate:        80,
		RampTo:      800,
		Workers:     12,
		Duration:    1500 * time.Millisecond,
		Warmup:      200 * time.Millisecond,
		Seed:        1,
		Preset:      trace.PresetSynthetic,
		Scale:       0.05,
		CacheBytes:  32 << 10,
		MissLatency: 10 * time.Millisecond,
		Overload: &overload.Config{
			CapacityPerBackend: 2,
			QueueLimit:         2,
			QueueTimeout:       5 * time.Millisecond,
			MinHold:            time.Hour,
		},
		CompareSim: true,
	}
}

func TestRampValidation(t *testing.T) {
	cfg := rampConfig().withDefaults()
	cfg.RampTo = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative ramp-to accepted")
	}
	cfg = rampConfig().withDefaults()
	cfg.Mode = ClosedLoop
	if err := cfg.Validate(); err == nil {
		t.Error("closed-loop ramp accepted")
	}
	cfg = rampConfig().withDefaults()
	cfg.Overload = &overload.Config{ElevatedAt: 0.9, SaturatedAt: 0.5}
	if err := cfg.Validate(); err == nil {
		t.Error("non-increasing overload thresholds accepted")
	}
	if err := rampConfig().withDefaults().Validate(); err != nil {
		t.Fatalf("valid ramp config rejected: %v", err)
	}
}

// TestRampScheduleDeterministic is the seeded-rate-ramp reproducibility
// contract: same seed, same schedule (digest and all); different seed or
// different ramp target, different schedule. The kept arrivals must also
// actually ramp — the second half of the window carries several times
// the first half's load.
func TestRampScheduleDeterministic(t *testing.T) {
	a, err := New(rampConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(rampConfig())
	if err != nil {
		t.Fatal(err)
	}
	if wa, wb := a.Workload(), b.Workload(); wa != wb {
		t.Errorf("same seed, different ramp workloads:\n%+v\n%+v", wa, wb)
	}
	reseeded := rampConfig()
	reseeded.Seed = 2
	c, err := New(reseeded)
	if err != nil {
		t.Fatal(err)
	}
	if c.Workload().Digest == a.Workload().Digest {
		t.Error("different seeds produced equal ramp digests")
	}
	flat := rampConfig()
	flat.RampTo = 0
	flat.Rate = 440 // same average load, no ramp
	d, err := New(flat)
	if err != nil {
		t.Fatal(err)
	}
	if d.Workload().Digest == a.Workload().Digest {
		t.Error("flat and ramped schedules produced equal digests")
	}

	var early, late int
	for _, sched := range a.open {
		for _, arr := range sched {
			if arr.at < a.cfg.Duration/2 {
				early++
			} else {
				late++
			}
		}
	}
	if late < 2*early {
		t.Errorf("schedule does not ramp: %d arrivals in first half, %d in second", early, late)
	}
}

// TestOverloadRampAcceptance is the issue's headline scenario: an
// open-loop ramp to ~2x the admission capacity. The run must stay
// error-free (sheds are not errors), shed demand via 503s, shed
// proactive work no later than the first 503 (Elevated precedes
// Critical on a monotone ladder), and the simulator run must agree
// that substantial shedding occurred (within an order of magnitude,
// not equality — the residual is the artifact's shed_delta_pct field).
func TestOverloadRampAcceptance(t *testing.T) {
	h, err := New(rampConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	run := &res.Runs[0]
	if run.Errors != 0 {
		t.Errorf("Errors = %d, want 0 (sheds must not be classified as errors)", run.Errors)
	}
	if run.Shed == 0 {
		t.Fatal("no requests shed at 2x capacity")
	}
	// Shed requests still partition the schedule: nothing is silently lost.
	if got := run.Requests + run.WarmupRequests + run.Errors + run.Shed; got != int64(res.Workload.Scheduled) {
		t.Errorf("completions+errors+shed = %d, scheduled %d", got, res.Workload.Scheduled)
	}
	if run.PrefetchShed == 0 {
		t.Error("no prefetch hints shed before admission control kicked in")
	}
	if run.GoodputRPS <= 0 {
		t.Errorf("GoodputRPS = %v, want positive", run.GoodputRPS)
	}

	checkMonotone := func(name string, ts []metrics.TierTransition) {
		if len(ts) == 0 {
			t.Errorf("%s: no tier transitions recorded", name)
			return
		}
		rank := map[string]int{"normal": 0, "elevated": 1, "saturated": 2, "critical": 3}
		for i, tr := range ts {
			if rank[tr.To] <= rank[tr.From] {
				t.Errorf("%s: transition %d (%s→%s) descends despite MinHold", name, i, tr.From, tr.To)
			}
			if i > 0 && tr.AtMS < ts[i-1].AtMS {
				t.Errorf("%s: transition offsets not monotone: %v", name, ts)
			}
		}
		if last := ts[len(ts)-1].To; last != "critical" {
			t.Errorf("%s: ladder topped out at %q, want critical", name, last)
		}
	}
	checkMonotone("live", run.TierTransitions)

	if run.Sim == nil {
		t.Fatal("no sim comparison attached")
	}
	checkMonotone("sim", run.Sim.TierTransitions)
	if run.Sim.Shed == 0 {
		t.Fatal("simulator shed nothing on the same ramp")
	}
	if run.Sim.PrefetchShed == 0 {
		t.Error("simulator shed no proactive work")
	}
	// Both sides run the decision core's bounded accept queue, but the
	// service-time models differ, so the contract is order-of-magnitude
	// agreement, not equality; the residual is an explicit artifact field.
	ratio := float64(run.Shed) / float64(run.Sim.Shed)
	if ratio < 1.0/12 || ratio > 12 {
		t.Errorf("live shed %d vs sim shed %d outside the documented 12x tolerance",
			run.Shed, run.Sim.Shed)
	}
	if want := metrics.DeltaPct(float64(run.Shed), float64(run.Sim.Shed)); run.Sim.ShedDeltaPct != want {
		t.Errorf("shed_delta_pct = %v, want %v (live %d vs sim %d)",
			run.Sim.ShedDeltaPct, want, run.Shed, run.Sim.Shed)
	}

	var table bytes.Buffer
	if err := res.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "shed=") {
		t.Errorf("table missing overload row:\n%s", table.String())
	}
}

// TestOverloadRampEmbeddedNeverShed replays the ramp schedule with a
// session-aware client loop: once a worker's session has been admitted
// (any successful response), its embedded-object requests must never be
// shed — the paper's in-progress pages finish even under admission
// control.
func TestOverloadRampEmbeddedNeverShed(t *testing.T) {
	h, err := New(rampConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := h.startCluster("PRORD")
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()

	var mu sync.Mutex
	var shedTotal, embViolations int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := range h.open {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := sessionClient()
			defer client.CloseIdleConnections()
			admitted := false
			var localShed, localViol int64
			for _, a := range h.open[w] {
				if d := time.Until(start.Add(a.at)); d > 0 {
					time.Sleep(d)
				}
				req := &h.eval.Requests[a.idx]
				_, shed, _, err := fetch(client, c.front.URL+req.Path)
				if err != nil {
					continue
				}
				if shed {
					localShed++
					if admitted && req.Embedded {
						localViol++
					}
					continue
				}
				admitted = true
			}
			mu.Lock()
			shedTotal += localShed
			embViolations += localViol
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	if shedTotal == 0 {
		t.Fatal("ramp produced no sheds; scenario did not reach overload")
	}
	if embViolations != 0 {
		t.Errorf("%d embedded-object requests of admitted sessions were shed, want 0", embViolations)
	}
}

// TestRampArtifactStableSections extends the artifact determinism
// contract to ramped, overload-controlled campaigns: config, workload
// and sim blocks stay byte-identical across runs. Live tier transitions
// are measured wall-clock quantities and are deliberately outside this
// contract; the sim's transitions are inside it.
func TestRampArtifactStableSections(t *testing.T) {
	encode := func() []byte {
		h, err := New(rampConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		art := res.Artifact()
		sim := *res.Runs[0].Sim
		sim.ThroughputDeltaPct = 0
		sim.MeanLatencyDeltaPct = 0
		sim.ShedDeltaPct = 0
		sections, err := json.Marshal(struct {
			Config   any
			Workload any
			Sim      any
		}{art.Config, art.Workload, sim})
		if err != nil {
			t.Fatal(err)
		}
		return sections
	}
	s1 := encode()
	s2 := encode()
	if !bytes.Equal(s1, s2) {
		t.Errorf("deterministic sections differ under ramp+overload:\n%s\n%s", s1, s2)
	}
	for _, want := range []string{`"ramp_to_rps":800`, `"overload":`, `"capacity_per_backend":2`} {
		if !strings.Contains(string(s1), want) {
			t.Errorf("config echo missing %s in:\n%s", want, s1)
		}
	}
}
