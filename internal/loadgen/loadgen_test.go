package loadgen

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"prord/internal/trace"
)

// smallConfig is a campaign small enough to run live under -race in CI.
func smallConfig(mode Mode) Config {
	return Config{
		Mode:        mode,
		Policies:    []string{"PRORD"},
		Backends:    2,
		Rate:        400,
		Workers:     4,
		Sessions:    30,
		Concurrency: 8,
		Think:       time.Millisecond,
		Duration:    700 * time.Millisecond,
		Warmup:      200 * time.Millisecond,
		Seed:        1,
		Preset:      trace.PresetSynthetic,
		Scale:       0.05,
		CacheBytes:  1 << 20,
		MissLatency: 2 * time.Millisecond,
		CompareSim:  true,
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{"open": OpenLoop, "Closed": ClosedLoop, " OPEN ": OpenLoop} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("loop"); err == nil {
		t.Error("ParseMode(loop) should fail")
	}
	if _, err := ParsePreset("nope"); err == nil {
		t.Error("ParsePreset(nope) should fail")
	}
	if p, err := ParsePreset("WorldCup"); err != nil || p != trace.PresetWorldCup {
		t.Errorf("ParsePreset(WorldCup) = %v, %v", p, err)
	}
}

func TestCanonicalPolicy(t *testing.T) {
	for in, want := range map[string]string{"prord": "PRORD", "wrr": "WRR", "lard/r": "LARD/R"} {
		got, err := CanonicalPolicy(in)
		if err != nil || got != want {
			t.Errorf("CanonicalPolicy(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := CanonicalPolicy("round-robin"); err == nil ||
		!strings.Contains(err.Error(), "PRORD") {
		t.Errorf("CanonicalPolicy(round-robin) = %v; want error listing valid names", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Policies = nil },
		func(c *Config) { c.Policies = []string{"bogus"} },
		func(c *Config) { c.Backends = -1 },
		func(c *Config) { c.Rate = 0; c.Mode = OpenLoop },
		func(c *Config) { c.Warmup = c.Duration },
		func(c *Config) { c.Warmup = 2 * c.Duration },
		func(c *Config) { c.Mode = ClosedLoop; c.Sessions = -5 },
		func(c *Config) { c.Mode = Mode(99) },
		func(c *Config) { c.Scale = -1 },
		func(c *Config) { c.TrainFraction = 1.5 },
		func(c *Config) { c.CacheBytes = -1 },
	}
	for i, mutate := range bad {
		cfg := smallConfig(OpenLoop).withDefaults()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
	if err := smallConfig(OpenLoop).withDefaults().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// New must reject without touching the network.
	if _, err := New(Config{Mode: OpenLoop, Policies: []string{"PRORD"}}); err == nil {
		t.Error("New should reject open-loop config without a rate")
	}
}

func TestScheduleDeterminism(t *testing.T) {
	for _, mode := range []Mode{OpenLoop, ClosedLoop} {
		a, err := New(smallConfig(mode))
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(smallConfig(mode))
		if err != nil {
			t.Fatal(err)
		}
		wa, wb := a.Workload(), b.Workload()
		if wa != wb {
			t.Errorf("%v: workloads differ:\n%+v\n%+v", mode, wa, wb)
		}
		if wa.Scheduled == 0 || wa.Digest == "" {
			t.Errorf("%v: empty schedule: %+v", mode, wa)
		}
		other := smallConfig(mode)
		other.Seed = 2
		c, err := New(other)
		if err != nil {
			t.Fatal(err)
		}
		if c.Workload().Digest == wa.Digest {
			t.Errorf("%v: different seeds produced equal digest %s", mode, wa.Digest)
		}
	}
}

func TestOpenScheduleShape(t *testing.T) {
	h, err := New(smallConfig(OpenLoop))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.open) != 4 {
		t.Fatalf("got %d worker schedules, want 4", len(h.open))
	}
	total := 0
	for w, sched := range h.open {
		var last time.Duration = -1
		for _, a := range sched {
			if a.at < last {
				t.Fatalf("worker %d schedule not sorted: %v after %v", w, a.at, last)
			}
			if a.at >= h.cfg.Duration {
				t.Fatalf("worker %d arrival %v beyond duration %v", w, a.at, h.cfg.Duration)
			}
			if a.idx < 0 || a.idx >= len(h.eval.Requests) {
				t.Fatalf("worker %d arrival index %d out of range", w, a.idx)
			}
			last = a.at
		}
		total += len(sched)
	}
	// Poisson at 400 req/s over 0.7s: expect ~280 arrivals; allow wide
	// slack but catch gross rate errors.
	if total < 140 || total > 560 {
		t.Fatalf("scheduled %d requests for rate 400 over 700ms", total)
	}
}

func TestSimTraceValid(t *testing.T) {
	for _, mode := range []Mode{OpenLoop, ClosedLoop} {
		h, err := New(smallConfig(mode))
		if err != nil {
			t.Fatal(err)
		}
		tr := h.simTrace()
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: sim trace invalid: %v", mode, err)
		}
		if len(tr.Requests) != h.Workload().Scheduled {
			t.Fatalf("%v: sim trace has %d requests, schedule %d", mode, len(tr.Requests), h.Workload().Scheduled)
		}
	}
}

func checkRun(t *testing.T, h *Harness, res *Result) {
	t.Helper()
	if len(res.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(res.Runs))
	}
	run := &res.Runs[0]
	if run.Name != "PRORD" {
		t.Errorf("run name = %q", run.Name)
	}
	if run.Errors != 0 {
		t.Errorf("run had %d errors", run.Errors)
	}
	if run.Requests == 0 {
		t.Fatal("no measured requests")
	}
	if run.Latency.Count != run.Requests {
		t.Errorf("latency count %d != requests %d", run.Latency.Count, run.Requests)
	}
	if run.ThroughputRPS <= 0 {
		t.Errorf("throughput = %v", run.ThroughputRPS)
	}
	if run.Latency.P50US <= 0 || run.Latency.P99US < run.Latency.P50US {
		t.Errorf("latency summary inconsistent: %+v", run.Latency)
	}
	if run.FrontLatency == nil || run.FrontLatency.Count == 0 {
		t.Error("front latency missing")
	}
	if len(run.Backends) != h.cfg.Backends {
		t.Fatalf("got %d backend samples, want %d", len(run.Backends), h.cfg.Backends)
	}
	var perBackend int64
	for _, b := range run.Backends {
		perBackend += b.Requests
	}
	if want := run.Requests + run.WarmupRequests; perBackend != want {
		t.Errorf("per-backend demand total %d != completions %d", perBackend, want)
	}
	if run.LoadSkew < 1 {
		t.Errorf("load skew %v < 1", run.LoadSkew)
	}
	if run.Sim == nil {
		t.Fatal("sim comparison missing")
	}
	if run.Sim.ThroughputRPS <= 0 || run.Sim.MeanUS <= 0 {
		t.Errorf("sim block empty: %+v", run.Sim)
	}
}

func TestOpenLoopLive(t *testing.T) {
	h, err := New(smallConfig(OpenLoop))
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, h, res)
	run := &res.Runs[0]
	// Open loop: completions partition the deterministic schedule.
	if got := run.Requests + run.WarmupRequests + run.Errors; got != int64(res.Workload.Scheduled) {
		t.Errorf("completions+errors = %d, scheduled %d", got, res.Workload.Scheduled)
	}
	var table bytes.Buffer
	if err := res.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PRORD", "mode=open", "vs sim"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("table missing %q:\n%s", want, table.String())
		}
	}
}

func TestClosedLoopLive(t *testing.T) {
	h, err := New(smallConfig(ClosedLoop))
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	checkRun(t, h, res)
	run := &res.Runs[0]
	if got := run.Requests + run.WarmupRequests; got > int64(res.Workload.Scheduled) {
		t.Errorf("completed %d > scheduled %d", got, res.Workload.Scheduled)
	}
}

// TestArtifactStableSections runs the same campaign twice and checks the
// documented determinism contract: config, workload and sim blocks are
// byte-identical; only measured live quantities may move.
func TestArtifactStableSections(t *testing.T) {
	encode := func() (*Result, []byte) {
		h, err := New(smallConfig(OpenLoop))
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		art := res.Artifact()
		// The delta fields compare against live measurements, so only
		// the sim's own metrics are covered by the contract.
		sim := *res.Runs[0].Sim
		sim.ThroughputDeltaPct = 0
		sim.MeanLatencyDeltaPct = 0
		sections, err := json.Marshal(struct {
			Config   any
			Workload any
			Sim      any
		}{art.Config, art.Workload, sim})
		if err != nil {
			t.Fatal(err)
		}
		return res, sections
	}
	res1, s1 := encode()
	_, s2 := encode()
	if !bytes.Equal(s1, s2) {
		t.Errorf("deterministic sections differ:\n%s\n%s", s1, s2)
	}

	art := res1.Artifact()
	var buf bytes.Buffer
	if err := art.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"schema": "prord-bench/2"`, `"tool": "prord-loadgen"`,
		`"schedule_digest": "fnv64a:`, `"front_latency"`, `"sim"`} {
		if !strings.Contains(out, want) {
			t.Errorf("artifact missing %q", want)
		}
	}
	if strings.Contains(out, "generated_at") {
		t.Error("unstamped artifact should omit generated_at")
	}
	art.Stamp(time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC))
	buf.Reset()
	if err := art.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"generated_at": "2026-08-05T12:00:00Z"`) {
		t.Error("stamped artifact missing generated_at")
	}
}
