package loadgen

import (
	"testing"
	"time"

	"prord/internal/trace"
)

// benchPolicy drives one live cluster per iteration; the reported req/s
// metric is the interesting number, the ns/op mostly reflects the
// configured run duration.
func benchPolicy(b *testing.B, mode Mode, pol string) {
	cfg := Config{
		Mode:        mode,
		Policies:    []string{pol},
		Backends:    2,
		Rate:        600,
		Workers:     8,
		Sessions:    60,
		Concurrency: 12,
		Think:       time.Millisecond,
		Duration:    time.Second,
		Warmup:      200 * time.Millisecond,
		Seed:        1,
		Preset:      trace.PresetSynthetic,
		Scale:       0.05,
		CacheBytes:  1 << 20,
		MissLatency: 2 * time.Millisecond,
	}
	h, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := h.Run(pol)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(run.ThroughputRPS, "req/s")
	}
}

func BenchmarkOpenLoopWRR(b *testing.B)     { benchPolicy(b, OpenLoop, "WRR") }
func BenchmarkOpenLoopPRORD(b *testing.B)   { benchPolicy(b, OpenLoop, "PRORD") }
func BenchmarkClosedLoopPRORD(b *testing.B) { benchPolicy(b, ClosedLoop, "PRORD") }
