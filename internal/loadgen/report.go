package loadgen

import (
	"fmt"
	"io"
	"time"

	"prord/internal/metrics"
)

// Result is one campaign's outcome: the effective configuration, the
// deterministic workload description and one BenchRun per policy.
type Result struct {
	Config   Config
	Workload Workload
	Runs     []metrics.BenchRun
}

// configJSON is the artifact's stable echo of the configuration: fixed
// field order, durations as integer milliseconds.
type configJSON struct {
	Mode          string   `json:"mode"`
	Policies      []string `json:"policies"`
	Backends      int      `json:"backends"`
	RateRPS       float64  `json:"rate_rps,omitempty"`
	RampToRPS     float64  `json:"ramp_to_rps,omitempty"`
	Workers       int      `json:"workers,omitempty"`
	Sessions      int      `json:"sessions,omitempty"`
	Concurrency   int      `json:"concurrency,omitempty"`
	ThinkMS       int64    `json:"think_ms,omitempty"`
	DurationMS    int64    `json:"duration_ms"`
	WarmupMS      int64    `json:"warmup_ms"`
	Seed          int64    `json:"seed"`
	Preset        string   `json:"preset"`
	Scale         float64  `json:"scale"`
	TrainFraction float64  `json:"train_fraction"`
	CacheBytes    int64    `json:"cache_bytes"`
	MissLatencyMS int64    `json:"miss_latency_ms"`
	// Fault-tolerance knobs are omitted when unused so pre-existing
	// fault-free artifacts stay byte-identical.
	Faults          []faultJSON `json:"faults,omitempty"`
	ProbeIntervalMS int64       `json:"probe_interval_ms,omitempty"`
	FrontRetries    int         `json:"front_retries,omitempty"`
	// Overload echoes the effective (defaulted) overload configuration;
	// omitted when overload control is off so older artifacts are
	// unchanged.
	Overload *overloadJSON `json:"overload,omitempty"`
	// Autoscale echoes the effective elastic-pool configuration and
	// ScaleEvents the scripted resize schedule; both are omitted when
	// the pool is static so older artifacts are unchanged.
	Autoscale   *autoscaleJSON `json:"autoscale,omitempty"`
	ScaleEvents []scaleJSON    `json:"scale_events,omitempty"`
	// Gray echoes the effective (defaulted) gray-failure resilience
	// configuration; omitted when the layer is off so older artifacts
	// are unchanged.
	Gray *grayJSON `json:"gray,omitempty"`
	// Fleet echoes the multi-distributor topology; omitted for the
	// single-distributor default so older artifacts are unchanged.
	Fleet      *fleetJSON `json:"fleet,omitempty"`
	CompareSim bool       `json:"compare_sim"`
}

// overloadJSON is the stable echo of the overload configuration.
type overloadJSON struct {
	CapacityPerBackend int     `json:"capacity_per_backend"`
	QueueLimit         int     `json:"queue_limit"`
	ElevatedAt         float64 `json:"elevated_at"`
	SaturatedAt        float64 `json:"saturated_at"`
	CriticalAt         float64 `json:"critical_at"`
	MinHoldMS          int64   `json:"min_hold_ms"`
}

// autoscaleJSON is the stable echo of the effective (defaulted)
// elastic-pool configuration.
type autoscaleJSON struct {
	Max         int   `json:"max"`
	Min         int   `json:"min"`
	Initial     int   `json:"initial"`
	UpHoldMS    int64 `json:"up_hold_ms"`
	DownHoldMS  int64 `json:"down_hold_ms"`
	CooldownMS  int64 `json:"cooldown_ms"`
	WarmTop     int   `json:"warm_top"`
	WarmRamp    int64 `json:"warm_ramp"`
	WarmPenalty int   `json:"warm_penalty"`
	ColdJoin    bool  `json:"cold_join,omitempty"`
}

// grayJSON is the stable echo of the effective (defaulted)
// gray-failure resilience configuration.
type grayJSON struct {
	Window        int     `json:"window"`
	MinSamples    int     `json:"min_samples"`
	Multiplier    float64 `json:"multiplier"`
	HoldMS        int64   `json:"hold_ms"`
	EjectMS       int64   `json:"eject_ms"`
	MaxEjectMS    int64   `json:"max_eject_ms"`
	RecoverHoldMS int64   `json:"recover_hold_ms"`
	Hedge         bool    `json:"hedge"`
	HedgeCap      int     `json:"hedge_cap,omitempty"`
	DeadlineMS    int64   `json:"deadline_ms,omitempty"`
}

// fleetJSON is the stable echo of the multi-distributor topology.
type fleetJSON struct {
	Replicas int `json:"replicas"`
}

// scaleJSON is the stable echo of one scripted pool resize.
type scaleJSON struct {
	Delta int   `json:"delta"`
	AtMS  int64 `json:"at_ms"`
}

// faultJSON is the stable echo of one scheduled backend fault. The
// gray-mode fields are omitted for fail-stop faults so pre-existing
// artifacts stay byte-identical.
type faultJSON struct {
	Backend   int     `json:"backend"`
	AtMS      int64   `json:"at_ms"`
	RecoverMS int64   `json:"recover_ms,omitempty"`
	Mode      string  `json:"mode,omitempty"`
	SlowdownX float64 `json:"slowdown_x,omitempty"`
	ErrRate   float64 `json:"err_rate,omitempty"`
	FlapMS    int64   `json:"flap_ms,omitempty"`
}

// Artifact assembles the versioned machine-readable artifact. Stamp and
// Encode it to produce BENCH_loadgen.json. With the same seed and
// configuration, every field except generated_at and the genuinely
// measured live quantities (latency summaries, hit rates, prefetch and
// handoff counts) is byte-identical across runs; the config, workload
// and sim blocks are always byte-identical.
func (r *Result) Artifact() *metrics.BenchArtifact {
	cfg := configJSON{
		Mode:            r.Config.Mode.String(),
		Policies:        r.Config.Policies,
		Backends:        r.Config.Backends,
		DurationMS:      r.Config.Duration.Milliseconds(),
		WarmupMS:        r.Config.Warmup.Milliseconds(),
		Seed:            r.Config.Seed,
		Preset:          r.Config.Preset.String(),
		Scale:           r.Config.Scale,
		TrainFraction:   r.Config.TrainFraction,
		CacheBytes:      r.Config.CacheBytes,
		MissLatencyMS:   r.Config.MissLatency.Milliseconds(),
		ProbeIntervalMS: r.Config.ProbeInterval.Milliseconds(),
		FrontRetries:    r.Config.FrontRetries,
		CompareSim:      r.Config.CompareSim,
	}
	for _, f := range r.Config.Faults {
		cfg.Faults = append(cfg.Faults, faultJSON{
			Backend: f.Backend, AtMS: f.At.Milliseconds(), RecoverMS: f.RecoverAt.Milliseconds(),
			Mode: f.Mode.String(), SlowdownX: f.Slowdown, ErrRate: f.ErrRate,
			FlapMS: f.FlapPeriod.Milliseconds(),
		})
	}
	if oc := r.Config.Overload; oc != nil {
		eff := oc.WithDefaults()
		cfg.Overload = &overloadJSON{
			CapacityPerBackend: eff.CapacityPerBackend,
			QueueLimit:         eff.QueueLimit,
			ElevatedAt:         eff.ElevatedAt,
			SaturatedAt:        eff.SaturatedAt,
			CriticalAt:         eff.CriticalAt,
			MinHoldMS:          eff.MinHold.Milliseconds(),
		}
	}
	if ac := r.Config.Autoscale; ac != nil {
		eff := *ac
		if eff.Max == 0 {
			eff.Max = r.Config.Backends
		}
		eff = eff.WithDefaults()
		cfg.Autoscale = &autoscaleJSON{
			Max:         eff.Max,
			Min:         eff.Min,
			Initial:     eff.Initial,
			UpHoldMS:    eff.UpHold.Milliseconds(),
			DownHoldMS:  eff.DownHold.Milliseconds(),
			CooldownMS:  eff.Cooldown.Milliseconds(),
			WarmTop:     eff.WarmTop,
			WarmRamp:    eff.WarmRamp,
			WarmPenalty: eff.WarmPenalty,
			ColdJoin:    eff.ColdJoin,
		}
	}
	for _, e := range r.Config.ScaleEvents {
		cfg.ScaleEvents = append(cfg.ScaleEvents, scaleJSON{Delta: e.Delta, AtMS: e.At.Milliseconds()})
	}
	if gc := r.Config.Gray; gc != nil {
		det := gc.Detector.WithDefaults()
		cap := gc.HedgeCap
		if gc.Hedge && cap == 0 {
			cap = 2
		}
		cfg.Gray = &grayJSON{
			Window:        det.Window,
			MinSamples:    det.MinSamples,
			Multiplier:    det.Multiplier,
			HoldMS:        det.Hold.Milliseconds(),
			EjectMS:       det.Eject.Milliseconds(),
			MaxEjectMS:    det.MaxEject.Milliseconds(),
			RecoverHoldMS: det.RecoverHold.Milliseconds(),
			Hedge:         gc.Hedge,
			HedgeCap:      cap,
			DeadlineMS:    gc.Deadline.Milliseconds(),
		}
	}
	if r.Config.FleetReplicas > 0 {
		cfg.Fleet = &fleetJSON{Replicas: r.Config.FleetReplicas}
	}
	switch r.Config.Mode {
	case OpenLoop:
		cfg.RateRPS = r.Config.Rate
		cfg.RampToRPS = r.Config.RampTo
		cfg.Workers = r.Config.Workers
	case ClosedLoop:
		cfg.Sessions = r.Config.Sessions
		cfg.Concurrency = r.Config.Concurrency
		cfg.ThinkMS = r.Config.Think.Milliseconds()
	}
	return &metrics.BenchArtifact{
		Schema:   metrics.BenchSchema,
		Tool:     "prord-loadgen",
		Config:   cfg,
		Workload: r.Workload,
		Runs:     r.Runs,
	}
}

// WriteTable renders the campaign as a human-readable table.
func (r *Result) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"prord-loadgen: mode=%s %d backends, %d scheduled requests (%s), warmup %v of %v\n\n",
		r.Config.Mode, r.Config.Backends, r.Workload.Scheduled, r.Workload.Preset,
		r.Config.Warmup, r.Config.Duration); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-16s %9s %9s %9s %9s %7s %6s %9s %7s\n",
		"policy", "req/s", "p50", "p90", "p99", "hit", "skew", "disp/req", "errors"); err != nil {
		return err
	}
	for i := range r.Runs {
		run := &r.Runs[i]
		if _, err := fmt.Fprintf(w, "%-16s %9.1f %9v %9v %9v %7.3f %6.2f %9.3f %7d\n",
			run.Name, run.ThroughputRPS,
			us(run.Latency.P50US), us(run.Latency.P90US), us(run.Latency.P99US),
			run.HitRate, run.LoadSkew, run.DispatchPerRequest, run.Errors); err != nil {
			return err
		}
		if run.Failovers > 0 || run.Retries > 0 {
			if _, err := fmt.Fprintf(w, "%-16s failovers=%d retries=%d\n",
				"  fault-tolerance", run.Failovers, run.Retries); err != nil {
				return err
			}
		}
		if run.Shed > 0 || run.PrefetchShed > 0 {
			if _, err := fmt.Fprintf(w, "%-16s shed=%d prefetch_shed=%d goodput=%.1f req/s tiers=%d\n",
				"  overload", run.Shed, run.PrefetchShed, run.GoodputRPS,
				len(run.TierTransitions)); err != nil {
				return err
			}
		}
		if as := run.Autoscale; as != nil && (as.Joins > 0 || as.Drains > 0) {
			if _, err := fmt.Fprintf(w, "%-16s joins=%d drains=%d rebooked=%d final_size=%d\n",
				"  autoscale", as.Joins, as.Drains, as.SessionsRebooked, as.FinalSize); err != nil {
				return err
			}
		}
		if g := run.Gray; g != nil && (g.Ejections > 0 || g.HedgesFired > 0) {
			if _, err := fmt.Fprintf(w,
				"%-16s ejections=%d recoveries=%d rebinds=%d hedges=%d/%d won cancels=%d\n",
				"  gray", g.Ejections, g.Recoveries, g.GrayRebinds,
				g.HedgeWins, g.HedgesFired, g.HedgeCancels); err != nil {
				return err
			}
		}
		if f := run.Fleet; f != nil {
			if _, err := fmt.Fprintf(w,
				"%-16s replicas=%d forwards=%d (rate %.3f) rebinds=%d affinity_breaches=%d\n",
				"  fleet", f.Replicas, f.Forwards, f.ForwardRate,
				f.OwnershipRebinds, f.AffinityBreaches); err != nil {
				return err
			}
		}
		if run.Sim != nil {
			if _, err := fmt.Fprintf(w, "%-16s %9.1f %27s mean Δ %+.1f%%  thr Δ %+.1f%%  hit %.3f\n",
				"  vs sim", run.Sim.ThroughputRPS, "",
				run.Sim.MeanLatencyDeltaPct, run.Sim.ThroughputDeltaPct, run.Sim.HitRate); err != nil {
				return err
			}
		}
	}
	return nil
}

// us renders integer microseconds as a rounded duration for the table.
func us(v int64) time.Duration {
	return (time.Duration(v) * time.Microsecond).Round(100 * time.Microsecond)
}
