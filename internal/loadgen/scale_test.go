package loadgen

import (
	"reflect"
	"testing"
	"time"

	"prord/internal/autoscale"
	"prord/internal/metrics"
	"prord/internal/overload"
)

func TestParseScaleEvents(t *testing.T) {
	got, err := ParseScaleEvents(" +1@5s, -1@300ms ,2@1m")
	if err != nil {
		t.Fatal(err)
	}
	want := []ScaleEvent{
		{Delta: 1, At: 5 * time.Second},
		{Delta: -1, At: 300 * time.Millisecond},
		{Delta: 2, At: time.Minute},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseScaleEvents = %+v, want %+v", got, want)
	}
	if got, err := ParseScaleEvents(""); err != nil || got != nil {
		t.Fatalf("ParseScaleEvents(\"\") = %+v, %v", got, err)
	}
	for _, bad := range []string{"+1", "x@3s", "+1@", "+1@3x", "@3s"} {
		if _, err := ParseScaleEvents(bad); err == nil {
			t.Errorf("ParseScaleEvents(%q) accepted", bad)
		}
	}
}

func TestValidateScaleEvents(t *testing.T) {
	// Events without an autoscale configuration are rejected.
	cfg := smallConfig(OpenLoop)
	cfg.ScaleEvents = []ScaleEvent{{Delta: 1, At: time.Second}}
	if err := cfg.withDefaults().Validate(); err == nil {
		t.Error("Validate accepted scale events without Autoscale")
	}
	cfg.Autoscale = &autoscale.Config{Initial: 1, Min: 1}
	if err := cfg.withDefaults().Validate(); err != nil {
		t.Fatalf("valid scale schedule rejected: %v", err)
	}
	bad := [][]ScaleEvent{
		{{Delta: 0, At: time.Second}},  // zero delta
		{{Delta: 1, At: -time.Second}}, // negative time
	}
	for i, events := range bad {
		c := cfg
		c.ScaleEvents = events
		if err := c.withDefaults().Validate(); err == nil {
			t.Errorf("case %d: Validate accepted events %+v", i, events)
		}
	}
	// An explicit Max that disagrees with the backend count is rejected:
	// the provisioned index space is the booted demo backends.
	c := cfg
	c.Autoscale = &autoscale.Config{Max: 7, Initial: 1, Min: 1}
	if err := c.withDefaults().Validate(); err == nil {
		t.Error("Validate accepted autoscale Max != backends")
	}
}

// TestRunWithScaleSchedule is the live acceptance check for the scale
// layer: an open-loop run on an elastic pool of two-of-three backends
// joins the third mid-run and drains one near the end. The pool
// snapshot must land in the artifact cell, the sim comparison must run
// the same schedule, and the scaling must stay invisible to clients.
func TestRunWithScaleSchedule(t *testing.T) {
	cfg := smallConfig(OpenLoop)
	cfg.Backends = 3
	cfg.Autoscale = &autoscale.Config{
		Initial:  2,
		Min:      1,
		WarmRamp: 8,
		ColdJoin: true, // keep the live/sim hit rates comparable
	}
	cfg.ScaleEvents = []ScaleEvent{
		{Delta: 1, At: 250 * time.Millisecond},
		{Delta: -1, At: 600 * time.Millisecond},
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := h.Run("PRORD")
	if err != nil {
		t.Fatal(err)
	}
	if run.Errors != 0 {
		t.Errorf("scaling leaked to clients: %d errors", run.Errors)
	}
	as := run.Autoscale
	if as == nil {
		t.Fatal("run missing the autoscale block with an elastic pool configured")
	}
	if as.Joins != 1 || as.Drains != 1 {
		t.Errorf("joins=%d drains=%d, want 1 and 1", as.Joins, as.Drains)
	}
	if as.FinalSize != 2 {
		t.Errorf("final pool size = %d, want 2", as.FinalSize)
	}
	if run.Sim == nil {
		t.Fatal("sim comparison missing")
	}

	// The config echo carries the pool and the schedule.
	res := &Result{Config: h.cfg, Workload: h.Workload(), Runs: []metrics.BenchRun{*run}}
	art := res.Artifact()
	echo, ok := art.Config.(configJSON)
	if !ok {
		t.Fatalf("artifact config has type %T", art.Config)
	}
	if echo.Autoscale == nil || echo.Autoscale.Initial != 2 || echo.Autoscale.Max != 3 {
		t.Errorf("config echo autoscale block = %+v, want initial 2 of max 3", echo.Autoscale)
	}
	if len(echo.ScaleEvents) != 2 || echo.ScaleEvents[0].AtMS != 250 || echo.ScaleEvents[1].Delta != -1 {
		t.Errorf("config echo scale events = %+v", echo.ScaleEvents)
	}
}

// TestRunWithOrganicAutoscale wires a ramp scenario with overload
// control and an elastic pool but no scripted events: the organic
// controller owns resizing. Whether it actually scales depends on
// wall-clock service times, so only the wiring is asserted — the run
// completes cleanly, the pool block is present, and the final size
// stays within [Min, Backends].
func TestRunWithOrganicAutoscale(t *testing.T) {
	cfg := smallConfig(OpenLoop)
	cfg.Backends = 3
	cfg.Rate = 200
	cfg.RampTo = 1200
	cfg.Overload = &overload.Config{CapacityPerBackend: 2, MinHold: 20 * time.Millisecond}
	cfg.Autoscale = &autoscale.Config{
		Initial:  1,
		Min:      1,
		UpHold:   30 * time.Millisecond,
		Cooldown: 50 * time.Millisecond,
		ColdJoin: true,
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := h.Run("PRORD")
	if err != nil {
		t.Fatal(err)
	}
	as := run.Autoscale
	if as == nil {
		t.Fatal("run missing the autoscale block with an elastic pool configured")
	}
	if as.FinalSize < 1 || as.FinalSize > cfg.Backends {
		t.Errorf("final pool size %d outside [1, %d]", as.FinalSize, cfg.Backends)
	}
	if run.Sim == nil {
		t.Fatal("sim comparison missing")
	}
}
