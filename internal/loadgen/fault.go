package loadgen

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// FaultMode selects what kind of failure a Fault injects. The zero
// value is the original fail-stop crash; the other modes are gray
// failures — the backend keeps answering, just badly — which is what
// the slow-backend detector and hedging layer exist to catch.
type FaultMode int

const (
	// FailStop kills the backend outright: every request (demand,
	// probe, prefetch) answers 503 until recovery, like a crashed
	// process behind a still-listening proxy. The health breaker
	// catches this mode on its own.
	FailStop FaultMode = iota
	// Slow dilates the backend's service time without returning a
	// single error — the canonical gray failure. Probes succeed
	// (slowly), so the breaker never opens; only latency-relative
	// detection sees it.
	Slow
	// ErrRate fails a seeded fraction of demand requests with 503
	// while probes and prefetch hints keep succeeding, so the breaker
	// sees a healthy backend while clients see intermittent errors.
	ErrRate
	// Flap toggles the backend between up and fail-stop-down every
	// FlapPeriod — fast enough that breaker state chases it.
	Flap
)

// String returns the mode's grammar keyword ("" for fail-stop).
func (m FaultMode) String() string {
	switch m {
	case Slow:
		return "slow"
	case ErrRate:
		return "errrate"
	case Flap:
		return "flap"
	default:
		return ""
	}
}

// Fault schedules one backend failure during a live run, mirroring the
// simulator's cluster.Failure: backend Backend misbehaves per Mode
// from offset At and, when RecoverAt is nonzero, returns to normal at
// RecoverAt. Offsets are measured from the run start — the same clock
// the open-loop arrival schedule uses, so "kill backend 1 at 5s" lines
// up with the offered workload. Closed-loop replay is completion-paced
// and its sim comparison compresses session times onto the measurement
// window, so fault offsets there are approximate in the simulator.
type Fault struct {
	// Backend is the index of the backend to degrade.
	Backend int
	// At is the fault start, as an offset from run start.
	At time.Duration
	// RecoverAt is the recovery time; zero means the fault lasts for
	// the rest of the run. Must exceed At when set, and must be set
	// for Flap (the toggle schedule needs a finite horizon).
	RecoverAt time.Duration
	// Mode is the failure kind; the zero value is FailStop.
	Mode FaultMode
	// Slowdown is Slow's service-time multiplier (> 1).
	Slowdown float64
	// ErrRate is ErrRate's per-request failure probability in (0, 1).
	// 1 is rejected — a backend that fails everything is FailStop, and
	// retrying against a 100%-erroring-but-available backend would
	// never terminate.
	ErrRate float64
	// FlapPeriod is Flap's half-cycle: down for one period, up for the
	// next, starting down at At.
	FlapPeriod time.Duration
}

// ParseFaults parses a -faults flag value: comma-separated
// "backend@at[:recoverAt][/mode]" items with Go duration syntax.
// Without a mode suffix the fault is the original fail-stop crash:
// "1@5s:8s,0@3s" kills backend 1 from 5s to 8s and backend 0 from 3s
// onward. The mode suffix selects a gray failure:
//
//	1@5s:20s/slow=x10     service time dilated 10x, no errors
//	1@5s:20s/errrate=0.3  30% of demand requests answer 503
//	1@5s:20s/flap=500ms   down/up toggles every 500ms
//
// An empty string is no faults.
func ParseFaults(s string) ([]Fault, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Fault
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		backendStr, rest, ok := strings.Cut(item, "@")
		if !ok {
			return nil, fmt.Errorf("loadgen: fault %q: want backend@at[:recoverAt][/mode]", item)
		}
		backend, err := strconv.Atoi(backendStr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: fault %q: bad backend index: %v", item, err)
		}
		times, modeStr, hasMode := strings.Cut(rest, "/")
		atStr, recStr, hasRec := strings.Cut(times, ":")
		at, err := time.ParseDuration(atStr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: fault %q: bad outage time: %v", item, err)
		}
		f := Fault{Backend: backend, At: at}
		if hasRec {
			rec, err := time.ParseDuration(recStr)
			if err != nil {
				return nil, fmt.Errorf("loadgen: fault %q: bad recovery time: %v", item, err)
			}
			f.RecoverAt = rec
		}
		if hasMode {
			if err := parseMode(&f, modeStr); err != nil {
				return nil, fmt.Errorf("loadgen: fault %q: %v", item, err)
			}
		}
		out = append(out, f)
	}
	return out, nil
}

// parseMode parses the "/mode" suffix into f.
func parseMode(f *Fault, s string) error {
	key, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("bad mode %q: want slow=xN, errrate=p or flap=period", s)
	}
	switch key {
	case "slow":
		x, found := strings.CutPrefix(val, "x")
		if !found {
			return fmt.Errorf("bad slowdown %q: want xN (e.g. slow=x10)", val)
		}
		factor, err := strconv.ParseFloat(x, 64)
		if err != nil {
			return fmt.Errorf("bad slowdown %q: %v", val, err)
		}
		f.Mode, f.Slowdown = Slow, factor
	case "errrate":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad error rate %q: %v", val, err)
		}
		f.Mode, f.ErrRate = ErrRate, p
	case "flap":
		period, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("bad flap period %q: %v", val, err)
		}
		f.Mode, f.FlapPeriod = Flap, period
	default:
		return fmt.Errorf("unknown mode %q: want slow, errrate or flap", key)
	}
	return nil
}

// validateFaults applies the same rules cluster.New enforces for
// Failures, so a schedule that passes here also passes the sim
// comparison's mapping.
func validateFaults(faults []Fault, backends int) error {
	for _, f := range faults {
		if f.Backend < 0 || f.Backend >= backends {
			return fmt.Errorf("loadgen: fault backend %d out of range [0,%d)", f.Backend, backends)
		}
		if f.At < 0 {
			return fmt.Errorf("loadgen: fault time %v must not be negative", f.At)
		}
		if f.RecoverAt != 0 && f.RecoverAt <= f.At {
			return fmt.Errorf("loadgen: fault recovery %v must follow outage %v", f.RecoverAt, f.At)
		}
		switch f.Mode {
		case Slow:
			if f.Slowdown <= 1 {
				return fmt.Errorf("loadgen: slow fault needs a slowdown > 1, got x%g", f.Slowdown)
			}
		case ErrRate:
			if f.ErrRate <= 0 || f.ErrRate >= 1 {
				return fmt.Errorf("loadgen: errrate fault needs a rate in (0,1), got %g (use fail-stop for a full outage)", f.ErrRate)
			}
		case Flap:
			if f.FlapPeriod <= 0 {
				return fmt.Errorf("loadgen: flap fault needs a positive period, got %v", f.FlapPeriod)
			}
			if f.RecoverAt == 0 {
				return fmt.Errorf("loadgen: flap fault needs a recovery time to bound its toggle schedule")
			}
		}
	}
	return nil
}
