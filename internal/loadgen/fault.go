package loadgen

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Fault schedules one fail-stop backend outage during a live run,
// mirroring the simulator's cluster.Failure: backend Backend stops
// answering at offset At (every request gets 503 until recovery) and,
// when RecoverAt is nonzero, comes back with a cold cache at RecoverAt.
// Offsets are measured from the run start — the same clock the
// open-loop arrival schedule uses, so "kill backend 1 at 5s" lines up
// with the offered workload. Closed-loop replay is completion-paced and
// its sim comparison compresses session times onto the measurement
// window, so fault offsets there are approximate in the simulator.
type Fault struct {
	// Backend is the index of the backend to kill.
	Backend int
	// At is the outage start, as an offset from run start.
	At time.Duration
	// RecoverAt is the recovery time; zero means the backend stays down
	// for the rest of the run. Must exceed At when set.
	RecoverAt time.Duration
}

// ParseFaults parses a -faults flag value: comma-separated
// "backend@at[:recoverAt]" items with Go duration syntax, e.g.
// "1@5s:8s,0@3s" kills backend 1 from 5s to 8s and backend 0 from 3s
// onward. An empty string is no faults.
func ParseFaults(s string) ([]Fault, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Fault
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		backendStr, times, ok := strings.Cut(item, "@")
		if !ok {
			return nil, fmt.Errorf("loadgen: fault %q: want backend@at[:recoverAt]", item)
		}
		backend, err := strconv.Atoi(backendStr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: fault %q: bad backend index: %v", item, err)
		}
		atStr, recStr, hasRec := strings.Cut(times, ":")
		at, err := time.ParseDuration(atStr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: fault %q: bad outage time: %v", item, err)
		}
		f := Fault{Backend: backend, At: at}
		if hasRec {
			rec, err := time.ParseDuration(recStr)
			if err != nil {
				return nil, fmt.Errorf("loadgen: fault %q: bad recovery time: %v", item, err)
			}
			f.RecoverAt = rec
		}
		out = append(out, f)
	}
	return out, nil
}

// validateFaults applies the same rules cluster.New enforces for
// Failures, so a schedule that passes here also passes the sim
// comparison's mapping.
func validateFaults(faults []Fault, backends int) error {
	for _, f := range faults {
		if f.Backend < 0 || f.Backend >= backends {
			return fmt.Errorf("loadgen: fault backend %d out of range [0,%d)", f.Backend, backends)
		}
		if f.At < 0 {
			return fmt.Errorf("loadgen: fault time %v must not be negative", f.At)
		}
		if f.RecoverAt != 0 && f.RecoverAt <= f.At {
			return fmt.Errorf("loadgen: fault recovery %v must follow outage %v", f.RecoverAt, f.At)
		}
	}
	return nil
}
