package loadgen

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"prord/internal/mining"
	"prord/internal/randutil"
	"prord/internal/trace"
)

// arrival is one scheduled open-loop request: an offset from the run
// start and an index into the eval trace's request slice (which supplies
// the path, size and embedded/parent structure).
type arrival struct {
	at  time.Duration
	idx int
}

// Harness owns one campaign's deterministic workload: the generated
// site, the mined navigation model and the precomputed replay schedule.
// Build it once with New, then Run each policy against it.
type Harness struct {
	cfg   Config
	files map[string]int64
	train *trace.Trace
	eval  *trace.Trace

	// open holds per-worker arrival schedules (open mode only).
	open [][]arrival
	// scripts are the replayed sessions in deterministic order (closed
	// mode only).
	scripts []trace.SessionScript

	scheduled int
	digest    string
}

// Workload describes the deterministic request schedule a harness
// replays; it is embedded in the artifact so runs can be compared across
// machines. Every field is a pure function of the configuration.
type Workload struct {
	Preset        string  `json:"preset"`
	Scale         float64 `json:"scale"`
	Seed          int64   `json:"seed"`
	TraceRequests int     `json:"trace_requests"`
	TrainRequests int     `json:"train_requests"`
	EvalRequests  int     `json:"eval_requests"`
	Files         int     `json:"files"`
	// Scheduled counts the requests the generator will issue: the full
	// open-loop schedule, or the replayed sessions' request total
	// (closed-loop replay may issue fewer if the deadline cuts it off).
	Scheduled int `json:"scheduled_requests"`
	// Sessions is the number of replayed sessions (closed mode) or
	// open-loop worker connections.
	Sessions int `json:"sessions"`
	// Digest fingerprints the schedule (FNV-64a over arrival times and
	// paths); equal digests mean byte-identical offered workloads.
	Digest string `json:"schedule_digest"`
}

// New builds a harness: applies defaults, validates, generates the
// preset workload, mines the training prefix and precomputes the replay
// schedule. Everything here is deterministic given cfg.Seed.
func New(cfg Config) (*Harness, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for i, p := range cfg.Policies {
		canon, err := CanonicalPolicy(p)
		if err != nil {
			return nil, err
		}
		cfg.Policies[i] = canon
	}

	site, tr, err := trace.GeneratePreset(cfg.Preset, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	train, eval := tr.Split(cfg.TrainFraction)
	if len(eval.Requests) == 0 {
		return nil, fmt.Errorf("loadgen: eval split is empty (trace %d requests, train fraction %v)",
			len(tr.Requests), cfg.TrainFraction)
	}
	h := &Harness{
		cfg:   cfg,
		files: site.FileTable(),
		train: train,
		eval:  eval,
	}
	switch cfg.Mode {
	case OpenLoop:
		h.open = openSchedule(cfg, len(eval.Requests))
		for _, s := range h.open {
			h.scheduled += len(s)
		}
	case ClosedLoop:
		h.scripts = eval.SessionScripts()
		if len(h.scripts) > cfg.Sessions {
			h.scripts = h.scripts[:cfg.Sessions]
		}
		for _, s := range h.scripts {
			h.scheduled += len(s.Reqs)
		}
	}
	h.digest = h.computeDigest()
	return h, nil
}

// Config returns the effective (defaulted, canonicalized) configuration.
func (h *Harness) Config() Config { return h.cfg }

// freshMiner mines the training prefix anew. Mining is deterministic,
// but the front-end's and the simulator's navigation trackers learn
// online and mutate their model, so every consumer gets its own pristine
// copy — otherwise one run's (timing-dependent) updates would leak into
// the next run's supposedly deterministic simulation.
func (h *Harness) freshMiner() *mining.Miner {
	return mining.Mine(h.train, mining.DefaultOptions())
}

// Workload describes the harness's deterministic schedule.
func (h *Harness) Workload() Workload {
	w := Workload{
		Preset:        h.cfg.Preset.String(),
		Scale:         h.cfg.Scale,
		Seed:          h.cfg.Seed,
		TraceRequests: len(h.train.Requests) + len(h.eval.Requests),
		TrainRequests: len(h.train.Requests),
		EvalRequests:  len(h.eval.Requests),
		Files:         len(h.files),
		Scheduled:     h.scheduled,
		Digest:        h.digest,
	}
	if h.cfg.Mode == OpenLoop {
		w.Sessions = len(h.open)
	} else {
		w.Sessions = len(h.scripts)
	}
	return w
}

// openSchedule precomputes per-worker Poisson arrival schedules spanning
// cfg.Duration. The root source splits once per worker in index order,
// so worker k's stream — and therefore the whole offered workload — is a
// deterministic function of the seed alone. Request paths are drawn by
// sampling eval request indices uniformly, which reproduces the trace's
// empirical popularity distribution.
//
// With RampTo set the schedule becomes an inhomogeneous Poisson process
// via thinning: candidates are drawn at the peak rate and each is kept
// with probability rate(t)/peak, where rate(t) ramps linearly from Rate
// to RampTo across Duration. The RampTo == 0 path draws exactly the
// random sequence older versions drew, so flat schedules stay
// byte-identical across versions for a given seed.
func openSchedule(cfg Config, evalLen int) [][]arrival {
	root := randutil.New(cfg.Seed)
	srcs := make([]*randutil.Source, cfg.Workers)
	for i := range srcs {
		srcs[i] = root.Split()
	}
	peak := cfg.Rate
	if cfg.RampTo > peak {
		peak = cfg.RampTo
	}
	// Each worker carries 1/Workers of the aggregate (peak) rate.
	meanGap := float64(time.Second) * float64(cfg.Workers) / peak
	scheds := make([][]arrival, cfg.Workers)
	for w, src := range srcs {
		at := time.Duration(src.Exp(meanGap))
		for at < cfg.Duration {
			if cfg.RampTo <= 0 || src.Float64()*peak < rampRate(cfg, at) {
				scheds[w] = append(scheds[w], arrival{at: at, idx: src.Intn(evalLen)})
			}
			at += time.Duration(src.Exp(meanGap))
		}
	}
	return scheds
}

// rampRate is the target aggregate arrival rate at offset t into a
// ramped run: linear interpolation from Rate at t=0 to RampTo at
// t=Duration.
func rampRate(cfg Config, t time.Duration) float64 {
	frac := float64(t) / float64(cfg.Duration)
	return cfg.Rate + (cfg.RampTo-cfg.Rate)*frac
}

// computeDigest fingerprints the offered workload with FNV-64a: mode,
// then every scheduled request's timing and path in issue order. Two
// harnesses with equal digests offer byte-identical request streams.
func (h *Harness) computeDigest() string {
	fn := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		fn.Write(buf[:])
	}
	io.WriteString(fn, h.cfg.Mode.String())
	switch h.cfg.Mode {
	case OpenLoop:
		for w, sched := range h.open {
			writeInt(int64(w))
			for _, a := range sched {
				writeInt(int64(a.at))
				io.WriteString(fn, h.eval.Requests[a.idx].Path)
			}
		}
	case ClosedLoop:
		for _, s := range h.scripts {
			writeInt(int64(s.ID))
			writeInt(int64(s.Start))
			for _, idx := range s.Reqs {
				io.WriteString(fn, h.eval.Requests[idx].Path)
			}
		}
	}
	return fmt.Sprintf("fnv64a:%016x", fn.Sum64())
}
