package loadgen

import (
	"fmt"
	"time"

	"prord/internal/cluster"
	"prord/internal/metrics"
	"prord/internal/mining"
	"prord/internal/policy"
	"prord/internal/trace"
)

// simCompare plays the harness's workload through the discrete-event
// cluster model with parameters mapped from the live demo cluster, and
// returns the simulated headline metrics plus live-vs-sim deltas. The
// simulation is fully deterministic: its block of the artifact is
// byte-identical across runs with the same seed and configuration.
//
// The comparison is a sanity check, not an identity: the simulator
// models dedicated hardware (Table 1 CPU/network costs) while the live
// cluster shares one machine's scheduler, so moderate deltas are
// expected. Large ones flag a regression in either implementation.
func (h *Harness) simCompare(polName string, live *metrics.BenchRun) (*metrics.SimComparison, error) {
	pol, err := policy.ByName(polName, h.cfg.Backends, policy.Thresholds{})
	if err != nil {
		return nil, err
	}
	params := cluster.DefaultParams()
	params.Backends = h.cfg.Backends
	// Mirror the demo backends: one flat cache of CacheBytes (split
	// 64/36 demand/pinned like Table 1's 128/72 MB proportions) and a
	// fixed miss cost with no per-KB disk transfer component.
	params.AppMemory = h.cfg.CacheBytes * 64 / 100
	params.PinnedMemory = h.cfg.CacheBytes - params.AppMemory
	params.DiskFixed = h.cfg.MissLatency
	params.DiskPerKB = 0

	var feats cluster.Features
	var miner *mining.Miner
	if polName == "PRORD" {
		// The live front-end's PRORD wiring: bundle classification plus
		// navigation prefetch. No replication — the demo backends
		// cannot copy files between themselves.
		feats = cluster.Features{Bundle: true, NavPrefetch: true}
		miner = h.freshMiner()
	}
	// The fault schedule maps one-to-one onto the simulator's failure
	// model, gray modes included. Open mode lines up exactly (sim times
	// are the live arrival offsets); closed mode is approximate because
	// simTrace compresses session times onto the measurement window.
	var fails []cluster.Failure
	for _, f := range h.cfg.Faults {
		fails = append(fails, cluster.Failure{
			Server: f.Backend, At: f.At, RecoverAt: f.RecoverAt,
			Mode:     cluster.FailureMode(f.Mode),
			Slowdown: f.Slowdown, ErrRate: f.ErrRate, FlapPeriod: f.FlapPeriod,
		})
	}
	// The scale schedule maps the same way: the simulator's pool joins
	// and drains at the live schedule's offsets (with the same closed-
	// mode time-compression caveat as faults).
	var scales []cluster.ScaleEvent
	for _, e := range h.cfg.ScaleEvents {
		scales = append(scales, cluster.ScaleEvent{Delta: e.Delta, At: e.At})
	}
	// The gray layer maps detector and hedging one-to-one; deadline
	// budgets are a live-transport concern the simulator does not model.
	var gray *cluster.GrayConfig
	if g := h.cfg.Gray; g != nil {
		gray = &cluster.GrayConfig{
			Detector: g.Detector,
			Hedge:    g.Hedge,
			HedgeCap: g.HedgeCap,
		}
	}
	// Fleet mode maps replica-for-replica: the simulator runs the same
	// distributor count with ownership partitioned over the same ring
	// construction, as the zero-staleness limit of the gossip layer.
	ccfg := cluster.Config{
		Params:      params,
		Policy:      pol,
		Features:    feats,
		Miner:       miner,
		Failures:    fails,
		Overload:    h.cfg.Overload,
		Autoscale:   h.cfg.Autoscale,
		ScaleEvents: scales,
		Gray:        gray,
	}
	if h.cfg.FleetReplicas > 0 {
		ccfg.Distributors = h.cfg.FleetReplicas
		ccfg.Fleet = true
	}
	cl, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	res, err := cl.Run(h.simTrace())
	if err != nil {
		return nil, err
	}
	sim := &metrics.SimComparison{
		ThroughputRPS:    metrics.Round(res.Throughput, 1),
		MeanUS:           res.MeanResponse.Microseconds(),
		HitRate:          metrics.Round(res.HitRate, 3),
		Failovers:        res.Metrics.Failovers,
		Shed:             res.Metrics.Shed,
		PrefetchShed:     res.Metrics.PrefetchShed,
		ReplicationsShed: res.Metrics.ReplicationsShed,
		TierTransitions:  tierTransitions(res.TierTransitions),
	}
	if res.Fleet != nil {
		sim.FleetForwards = res.Fleet.Forwards
	}
	sim.ThroughputDeltaPct = metrics.DeltaPct(live.ThroughputRPS, sim.ThroughputRPS)
	sim.MeanLatencyDeltaPct = metrics.DeltaPct(float64(live.Latency.MeanUS), float64(sim.MeanUS))
	sim.ShedDeltaPct = metrics.DeltaPct(float64(live.Shed), float64(sim.Shed))
	return sim, nil
}

// simTrace rebuilds the harness's offered workload as a simulator
// trace. Open mode is faithful: the simulator replays the exact arrival
// schedule the live workers issue, one session per worker connection.
// Closed mode is approximate — live pacing is completion-driven — so the
// replayed sessions keep their trace arrival times, compressed to span
// the live measurement window.
func (h *Harness) simTrace() *trace.Trace {
	out := &trace.Trace{Name: "loadgen/" + h.cfg.Mode.String(), Files: h.eval.Files}
	switch h.cfg.Mode {
	case OpenLoop:
		for w, sched := range h.open {
			for _, a := range sched {
				r := h.eval.Requests[a.idx]
				r.Time = a.at
				r.Session = w
				r.Client = fmt.Sprintf("worker-%d", w)
				out.Requests = append(out.Requests, r)
			}
		}
	case ClosedLoop:
		var first, last time.Duration = -1, 0
		for _, s := range h.scripts {
			for _, idx := range s.Reqs {
				t := h.eval.Requests[idx].Time
				if first < 0 || t < first {
					first = t
				}
				if t > last {
					last = t
				}
			}
		}
		span := last - first
		window := h.cfg.Duration - h.cfg.Warmup
		for _, s := range h.scripts {
			for _, idx := range s.Reqs {
				r := h.eval.Requests[idx]
				if span > 0 {
					r.Time = time.Duration(float64(r.Time-first) * float64(window) / float64(span))
				} else {
					r.Time = 0
				}
				out.Requests = append(out.Requests, r)
			}
		}
	}
	out.SortByTime()
	return out
}
