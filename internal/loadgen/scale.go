package loadgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"prord/internal/autoscale"
)

// ScaleEvent schedules one scripted elastic-pool resize during a live
// run, mirroring the simulator's cluster.ScaleEvent: Delta backends
// join (positive) or drain (negative) at offset At from run start —
// the same clock the fault schedule and the open-loop arrival schedule
// use, so "join a backend at 5s" lines up with the offered workload.
// Closed-loop replay is completion-paced and its sim comparison
// compresses session times onto the measurement window, so scale
// offsets there are approximate in the simulator.
type ScaleEvent struct {
	// Delta is the signed resize: +n joins n backends, -n drains n.
	Delta int
	// At is the resize time, as an offset from run start.
	At time.Duration
}

// ParseScaleEvents parses a -scale-events flag value: comma-separated
// "delta@at" items with Go duration syntax, e.g. "+1@5s,-1@20s" joins
// one backend at 5s and drains one at 20s. An empty string is no scale
// events.
func ParseScaleEvents(s string) ([]ScaleEvent, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []ScaleEvent
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		deltaStr, atStr, ok := strings.Cut(item, "@")
		if !ok {
			return nil, fmt.Errorf("loadgen: scale event %q: want delta@at", item)
		}
		delta, err := strconv.Atoi(deltaStr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: scale event %q: bad delta: %v", item, err)
		}
		at, err := time.ParseDuration(atStr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: scale event %q: bad time: %v", item, err)
		}
		out = append(out, ScaleEvent{Delta: delta, At: at})
	}
	return out, nil
}

// validateScaleEvents applies the same rules cluster.New enforces for
// ScaleEvents, so a schedule that passes here also passes the sim
// comparison's mapping.
func validateScaleEvents(events []ScaleEvent, ac *autoscale.Config) error {
	if len(events) > 0 && ac == nil {
		return fmt.Errorf("loadgen: scale events require an Autoscale configuration")
	}
	for _, e := range events {
		if e.Delta == 0 {
			return fmt.Errorf("loadgen: scale event at %v has zero delta", e.At)
		}
		if e.At < 0 {
			return fmt.Errorf("loadgen: scale event time %v must not be negative", e.At)
		}
	}
	return nil
}

// startScaleEvents launches the scripted scale schedule against the
// cluster's front-end, anchored at start like the fault runner. Each
// event applies its delta as that many ScaleUp or ScaleDown calls; a
// refused resize (pool already at Max or Min) is skipped rather than
// fatal, so a schedule keeps its remaining events meaningful. The
// returned stop function cancels pending events and waits for the
// runner to exit; with no events configured it is a no-op.
func (h *Harness) startScaleEvents(c *liveCluster, start time.Time) (stop func()) {
	if len(h.cfg.ScaleEvents) == 0 {
		return func() {}
	}
	events := append([]ScaleEvent(nil), h.cfg.ScaleEvents...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTimer(time.Hour)
		defer t.Stop()
		for _, e := range events {
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
			t.Reset(time.Until(start.Add(e.At)))
			select {
			case <-quit:
				return
			case <-t.C:
			}
			for d := e.Delta; d > 0; d-- {
				c.dist.ScaleUp()
			}
			for d := e.Delta; d < 0; d++ {
				c.dist.ScaleDown()
			}
		}
	}()
	return func() { close(quit); <-done }
}
