package loadgen

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"prord/internal/autoscale"
)

func TestFleetConfigValidation(t *testing.T) {
	cfg := smallConfig(OpenLoop)
	cfg.FleetReplicas = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative fleet replicas should fail validation")
	}
	cfg = smallConfig(OpenLoop)
	cfg.FleetReplicas = 2
	cfg.Autoscale = &autoscale.Config{Initial: 1}
	if _, err := New(cfg); err == nil {
		t.Error("fleet mode with autoscale should fail validation")
	}
}

// TestFleetSprayAffinity is the acceptance invariant for multi-replica
// spray mode: with k=2 replicas and sessions sprayed across both
// fronts, every session is answered by exactly one ring owner
// (AffinityBreaches == 0), no replica tracks a session it does not
// own, and the handoffs are explicitly accounted and bounded by the
// number of requests.
func TestFleetSprayAffinity(t *testing.T) {
	cfg := smallConfig(ClosedLoop)
	cfg.FleetReplicas = 2
	cfg.Duration = 2 * time.Second
	cfg.CompareSim = false
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Replicate Run's sequence by hand so the fleet's distributors stay
	// inspectable after the replay.
	c, err := h.startCluster("PRORD")
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	if len(c.dists) != 2 || len(c.fronts) != 2 {
		t.Fatalf("fleet booted %d dists / %d fronts, want 2/2", len(c.dists), len(c.fronts))
	}
	live := h.runClosed(c, time.Now())
	run := h.reduce("PRORD", c, live)

	if run.Errors != 0 {
		t.Fatalf("fleet replay errored: %d errors", run.Errors)
	}
	fs := run.Fleet
	if fs == nil {
		t.Fatal("no fleet block on a fleet run")
	}
	if fs.Replicas != 2 || fs.RingEpoch != 1 {
		t.Errorf("fleet block = %+v, want 2 replicas at ring epoch 1", fs)
	}
	if fs.AffinityBreaches != 0 {
		t.Errorf("session-affinity invariant violated: %d sessions saw two replicas", fs.AffinityBreaches)
	}
	if fs.Forwards == 0 {
		t.Error("no forwards on a 2-replica spray; the ownership path never ran")
	}
	total := run.Requests + run.WarmupRequests + run.Shed
	if fs.Forwards > total {
		t.Errorf("forwards %d exceed the %d requests issued: handoffs not bounded", fs.Forwards, total)
	}
	if fs.ForwardRate <= 0 || fs.ForwardRate >= 1 {
		t.Errorf("forward rate %v outside (0,1)", fs.ForwardRate)
	}
	// Exclusive ownership: a replica must never track a session the
	// ring assigns elsewhere (forwarded first-touches release any local
	// binding).
	for i, d := range c.dists {
		if own, tracked := d.Core().OwnedSessions(), d.Core().SessionCount(); own != tracked {
			t.Errorf("replica %d tracks %d sessions but owns only %d", i, tracked, own)
		}
	}
	// The summed per-backend counts cover every proxied demand request
	// exactly once, so the fleet's load-skew metric stays meaningful.
	var perBackend int64
	for _, b := range run.Backends {
		perBackend += b.Requests
	}
	if perBackend < run.Requests+run.WarmupRequests {
		t.Errorf("per-backend sum %d lost requests (served %d)", perBackend, run.Requests+run.WarmupRequests)
	}
}

// TestFleetSingleReplicaIdentity: FleetReplicas=1 runs the fleet layer
// with a single-member ring — no forwards, no breaches, and the fleet
// block present with the degenerate values.
func TestFleetSingleReplicaIdentity(t *testing.T) {
	cfg := smallConfig(OpenLoop)
	cfg.FleetReplicas = 1
	cfg.CompareSim = false
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := h.Run("PRORD")
	if err != nil {
		t.Fatal(err)
	}
	fs := run.Fleet
	if fs == nil {
		t.Fatal("no fleet block with FleetReplicas=1")
	}
	if fs.Replicas != 1 || fs.Forwards != 0 || fs.OwnershipRebinds != 0 || fs.AffinityBreaches != 0 {
		t.Errorf("single-member fleet not degenerate: %+v", fs)
	}
}

// TestFleetArtifactStableSections is the byte-stability acceptance
// check for multi-replica runs: the config, workload and sim sections
// of a k=2 fleet artifact are byte-identical across repeats, and the
// config echo carries the fleet block.
func TestFleetArtifactStableSections(t *testing.T) {
	encode := func() []byte {
		cfg := smallConfig(OpenLoop)
		cfg.FleetReplicas = 2
		h, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		art := res.Artifact()
		sim := *res.Runs[0].Sim
		sim.ThroughputDeltaPct = 0
		sim.MeanLatencyDeltaPct = 0
		sim.ShedDeltaPct = 0
		sections, err := json.Marshal(struct {
			Config   any
			Workload any
			Sim      any
		}{art.Config, art.Workload, sim})
		if err != nil {
			t.Fatal(err)
		}
		return sections
	}
	s1 := encode()
	s2 := encode()
	if !bytes.Equal(s1, s2) {
		t.Errorf("deterministic fleet sections differ:\n%s\n%s", s1, s2)
	}
	if !bytes.Contains(s1, []byte(`"fleet":{"replicas":2}`)) {
		t.Errorf("config echo missing fleet block: %s", s1)
	}
	if !bytes.Contains(s1, []byte(`"fleet_forwards":`)) {
		t.Errorf("sim section missing fleet forwards: %s", s1)
	}
}
