// Package loadgen is a concurrent trace-replay load generator for the
// live HTTP cluster: it boots demo backends behind the httpfront
// distributor, replays a generated workload against the front-end over
// real sockets, and measures what the paper's evaluation measures —
// throughput, response-time percentiles, dispatch frequency, backend
// cache hit rates and per-backend load skew (§5.1, §5.2).
//
// Two replay modes are supported:
//
//   - Open loop: requests arrive on a Poisson schedule at a configured
//     aggregate rate, issued regardless of completions. The arrival
//     schedule is precomputed from seeded randutil sources, so the
//     offered workload (arrival times, request paths, counts) is
//     byte-identical across runs with the same seed.
//   - Closed loop: K concurrent clients replay per-session request
//     scripts from the trace (trace.SessionScripts), each session on its
//     own keep-alive connection with think time between pages — the
//     paper's browsing model, where new requests wait for completions.
//
// Completions inside the warmup window are recorded separately so cold
// caches do not pollute the measurement, and an optional Compare step
// runs the discrete-event simulator on the same workload and policy and
// reports live-vs-sim deltas for the headline metrics.
package loadgen

import (
	"fmt"
	"strings"
	"time"

	"prord/internal/autoscale"
	"prord/internal/health"
	"prord/internal/httpfront"
	"prord/internal/overload"
	"prord/internal/policy"
	"prord/internal/trace"
)

// Mode selects how the generator paces requests.
type Mode int

const (
	// OpenLoop issues requests on a precomputed Poisson arrival
	// schedule, independent of completions.
	OpenLoop Mode = iota
	// ClosedLoop replays per-session scripts with a bounded number of
	// concurrent clients; a session's next request waits for the
	// previous response (plus think time between pages).
	ClosedLoop
)

// String returns the mode's flag spelling.
func (m Mode) String() string {
	switch m {
	case OpenLoop:
		return "open"
	case ClosedLoop:
		return "closed"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a -mode flag value ("open" or "closed").
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "open":
		return OpenLoop, nil
	case "closed":
		return ClosedLoop, nil
	default:
		return 0, fmt.Errorf("loadgen: unknown mode %q (want open or closed)", s)
	}
}

// ParsePreset parses a workload preset name ("cs", "worldcup",
// "synthetic").
func ParsePreset(s string) (trace.Preset, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "cs":
		return trace.PresetCS, nil
	case "worldcup":
		return trace.PresetWorldCup, nil
	case "synthetic":
		return trace.PresetSynthetic, nil
	default:
		return 0, fmt.Errorf("loadgen: unknown preset %q (want cs, worldcup or synthetic)", s)
	}
}

// CanonicalPolicy resolves a case-insensitive policy name ("prord",
// "lard/r") to its canonical spelling from policy.Names.
func CanonicalPolicy(name string) (string, error) {
	want := strings.TrimSpace(name)
	for _, n := range policy.Names() {
		if strings.EqualFold(n, want) {
			return n, nil
		}
	}
	return "", fmt.Errorf("loadgen: unknown policy %q (want one of %s)",
		name, strings.Join(policy.Names(), ", "))
}

// Config parameterizes a load-generation campaign. The zero value is not
// usable; fill at least Mode, Policies and the mode's pacing knobs, then
// Validate (New validates for you).
type Config struct {
	// Mode selects open- or closed-loop pacing.
	Mode Mode
	// Policies are the distribution policies to benchmark, one run per
	// policy. Names are canonicalized case-insensitively against
	// policy.Names.
	Policies []string
	// Backends is the number of demo backend servers. Default 4.
	Backends int

	// Rate is the aggregate open-loop arrival rate in requests/second.
	// Required (positive) in open mode, ignored in closed mode.
	Rate float64
	// RampTo, when positive, turns the open-loop schedule into a linear
	// rate ramp: the aggregate arrival rate starts at Rate and reaches
	// RampTo at the end of Duration. Zero keeps the flat Poisson
	// schedule (and the byte-identical arrival streams of older seeds).
	// Open mode only.
	RampTo float64
	// Workers is the number of open-loop client connections the schedule
	// is partitioned over. Default 8.
	Workers int

	// Sessions is how many trace sessions closed-loop replay uses.
	// Default 200 (clamped to the trace's session count).
	Sessions int
	// Concurrency is the number of concurrent closed-loop clients.
	// Default 16.
	Concurrency int
	// Think is the closed-loop pause before each page request (embedded
	// objects follow immediately). Default 25ms; set negative for none.
	Think time.Duration

	// Duration bounds the run; the open-loop schedule spans exactly this
	// window, closed-loop replay stops issuing at the deadline. Default
	// 10s.
	Duration time.Duration
	// Warmup is the initial window excluded from measurement. Must be
	// shorter than Duration. Default 1s.
	Warmup time.Duration

	// Seed derives every random stream (site, trace, schedules).
	Seed int64
	// Preset selects the generated workload (default PresetCS's zero
	// value; commands default to synthetic explicitly).
	Preset trace.Preset
	// Scale scales the preset's request count. Default 0.2.
	Scale float64
	// TrainFraction is the trace prefix mined for the navigation model;
	// the remainder is replayed. Default 0.5.
	TrainFraction float64

	// CacheBytes is each demo backend's memory cache. Default 4 MiB.
	CacheBytes int64
	// MissLatency is the simulated disk latency per backend cache miss.
	// Default 8ms; set negative for none.
	MissLatency time.Duration

	// Faults schedules fail-stop backend outages during each live run;
	// with CompareSim they are also mapped to cluster.Failures so the
	// simulator crashes the same backends at the same offsets. Empty
	// means a fault-free run.
	Faults []Fault
	// Health tunes the front-end's per-backend circuit breakers
	// (httpfront.Config.Health); the zero value uses that package's
	// defaults.
	Health health.Config
	// ProbeInterval enables the front-end's active health probes of
	// tripped backends. Default 0 (disabled); probes never touch
	// healthy backends, so fault-free runs are unaffected either way.
	ProbeInterval time.Duration
	// FrontRetries sets the front-end's failover retry budget per
	// request (httpfront.Config.Retries): 0 means the front-end default
	// of one retry, negative disables retries.
	FrontRetries int

	// Overload enables the front-end's load estimator, degrade ladder and
	// admission control (httpfront.Config.Overload); with CompareSim the
	// same configuration drives the decision core's ladder in the
	// simulator run so shed counts and tier transitions can be compared.
	// Nil disables both.
	Overload *overload.Config

	// Gray enables the front-end's gray-failure resilience layer
	// (httpfront.Config.Gray): the relative latency-outlier detector
	// with progressive session rebinding, plus optional hedged backup
	// requests and per-request deadline budgets. With CompareSim the
	// detector and hedging also drive the simulator's gray layer;
	// deadlines are a live-transport concern with no sim counterpart.
	// Nil disables the layer.
	Gray *httpfront.GrayConfig

	// Autoscale enables the front-end's elastic backend pool
	// (httpfront.Config.Autoscale): Backends becomes the provisioned
	// maximum (Max defaults to Backends and must equal it when set) and
	// the pool starts at Autoscale.Initial members. With CompareSim the
	// same configuration drives the simulator's pool. Nil keeps the
	// pool static.
	Autoscale *autoscale.Config
	// ScaleEvents schedules scripted pool resizes during each live run
	// (requires Autoscale); with CompareSim they map onto
	// cluster.ScaleEvents so the simulator scales at the same offsets.
	ScaleEvents []ScaleEvent

	// FleetReplicas enables multi-distributor fleet mode: the seeded
	// trace is sprayed across this many front-end replicas over one
	// shared backend pool, session ownership is partitioned over a
	// consistent-hash ring, and a request entering through a non-owner
	// is forwarded one hop to the owning replica. 0 keeps the
	// single-distributor topology (no fleet layer); 1 runs the fleet
	// layer with a single-member ring — same routing decisions, plus
	// the fleet block in stats and artifacts. With CompareSim the
	// simulator runs the same replica count with Fleet mode on.
	FleetReplicas int

	// CompareSim runs the discrete-event simulator on the same workload
	// and policy after each live run and attaches live-vs-sim deltas.
	CompareSim bool
}

// withDefaults fills unset fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.Backends == 0 {
		c.Backends = 4
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Sessions == 0 {
		c.Sessions = 200
	}
	if c.Concurrency == 0 {
		c.Concurrency = 16
	}
	if c.Think == 0 {
		c.Think = 25 * time.Millisecond
	} else if c.Think < 0 {
		c.Think = 0
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.Warmup == 0 {
		c.Warmup = time.Second
	}
	if c.Scale == 0 {
		c.Scale = 0.2
	}
	if c.TrainFraction == 0 {
		c.TrainFraction = 0.5
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 4 << 20
	}
	if c.MissLatency < 0 {
		c.MissLatency = 0
	}
	return c
}

// Validate checks the configuration, returning the first problem found.
// It expects defaults to be applied already (New does both).
func (c Config) Validate() error {
	if len(c.Policies) == 0 {
		return fmt.Errorf("loadgen: at least one policy required")
	}
	for _, p := range c.Policies {
		if _, err := CanonicalPolicy(p); err != nil {
			return err
		}
	}
	if c.Backends <= 0 {
		return fmt.Errorf("loadgen: backends must be positive, got %d", c.Backends)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: duration must be positive, got %v", c.Duration)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("loadgen: warmup must not be negative, got %v", c.Warmup)
	}
	if c.Duration <= c.Warmup {
		return fmt.Errorf("loadgen: duration (%v) must exceed warmup (%v)", c.Duration, c.Warmup)
	}
	if c.RampTo < 0 {
		return fmt.Errorf("loadgen: ramp-to rate must not be negative, got %v", c.RampTo)
	}
	switch c.Mode {
	case OpenLoop:
		if c.Rate <= 0 {
			return fmt.Errorf("loadgen: open-loop rate must be positive, got %v", c.Rate)
		}
		if c.Workers <= 0 {
			return fmt.Errorf("loadgen: workers must be positive, got %d", c.Workers)
		}
	case ClosedLoop:
		if c.RampTo > 0 {
			return fmt.Errorf("loadgen: rate ramp requires open mode")
		}
		if c.Sessions <= 0 {
			return fmt.Errorf("loadgen: sessions must be positive, got %d", c.Sessions)
		}
		if c.Concurrency <= 0 {
			return fmt.Errorf("loadgen: concurrency must be positive, got %d", c.Concurrency)
		}
	default:
		return fmt.Errorf("loadgen: unknown mode %d", int(c.Mode))
	}
	if c.Scale <= 0 {
		return fmt.Errorf("loadgen: scale must be positive, got %v", c.Scale)
	}
	if c.TrainFraction <= 0 || c.TrainFraction >= 1 {
		return fmt.Errorf("loadgen: train fraction must be in (0,1), got %v", c.TrainFraction)
	}
	if c.CacheBytes <= 0 {
		return fmt.Errorf("loadgen: cache size must be positive, got %d", c.CacheBytes)
	}
	if c.MissLatency < 0 {
		return fmt.Errorf("loadgen: miss latency must not be negative, got %v", c.MissLatency)
	}
	if c.ProbeInterval < 0 {
		return fmt.Errorf("loadgen: probe interval must not be negative, got %v", c.ProbeInterval)
	}
	if c.Overload != nil {
		if err := c.Overload.WithDefaults().Validate(); err != nil {
			return err
		}
	}
	if c.Autoscale != nil {
		ac := *c.Autoscale
		if ac.Max == 0 {
			ac.Max = c.Backends
		}
		if ac.Max != c.Backends {
			return fmt.Errorf("loadgen: autoscale Max %d must equal backends %d", ac.Max, c.Backends)
		}
		if err := ac.WithDefaults().Validate(); err != nil {
			return err
		}
	}
	if c.FleetReplicas < 0 {
		return fmt.Errorf("loadgen: fleet replicas must not be negative, got %d", c.FleetReplicas)
	}
	if c.FleetReplicas > 1 && c.Autoscale != nil {
		return fmt.Errorf("loadgen: fleet mode is incompatible with autoscale (each replica would resize the shared pool independently)")
	}
	if err := validateScaleEvents(c.ScaleEvents, c.Autoscale); err != nil {
		return err
	}
	return validateFaults(c.Faults, c.Backends)
}
