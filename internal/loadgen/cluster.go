package loadgen

import (
	"fmt"
	"net/http/httptest"
	"net/url"
	"sync"
	"time"

	"prord/internal/httpfront"
	"prord/internal/metrics"
	"prord/internal/policy"
)

// observer aggregates the distributor's per-request observations: the
// front-end's own service time for every demand request, including
// warmup (the callback has no way to know the measurement window).
type observer struct {
	mu    sync.Mutex
	front metrics.Histogram
}

func (o *observer) observe(obs httpfront.Observation) {
	o.mu.Lock()
	o.front.Observe(obs.Latency)
	o.mu.Unlock()
}

func (o *observer) summary() metrics.LatencySummary {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.front.Summary()
}

// liveCluster is one booted policy-under-test: demo backends on real
// listeners behind the distributor, plus the front-end test server the
// workers talk to.
type liveCluster struct {
	demos   []*httpfront.DemoBackend
	servers []*httptest.Server
	dist    *httpfront.Distributor
	front   *httptest.Server
	obs     *observer
}

// startCluster boots backends and the front-end for one policy. The
// mined model (and prefetching) is wired in only for PRORD, mirroring
// the simulator's feature gating: baselines route on policy state alone.
func (h *Harness) startCluster(polName string) (*liveCluster, error) {
	c := &liveCluster{obs: &observer{}}
	ok := false
	defer func() {
		if !ok {
			c.close()
		}
	}()
	var urls []*url.URL
	for i := 0; i < h.cfg.Backends; i++ {
		b := httpfront.NewDemoBackend(fmt.Sprintf("b%d", i), h.files, h.cfg.CacheBytes, h.cfg.MissLatency)
		c.demos = append(c.demos, b)
		srv := httptest.NewServer(b)
		c.servers = append(c.servers, srv)
		u, err := url.Parse(srv.URL)
		if err != nil {
			return nil, err
		}
		urls = append(urls, u)
	}
	pol, err := policy.ByName(polName, h.cfg.Backends, policy.Thresholds{})
	if err != nil {
		return nil, err
	}
	cfg := httpfront.Config{
		Backends: urls,
		Policy:   pol,
		Observe:  c.obs.observe,
	}
	if polName == "PRORD" {
		cfg.Miner = h.freshMiner()
		cfg.Prefetch = true
	}
	c.dist, err = httpfront.New(cfg)
	if err != nil {
		return nil, err
	}
	c.front = httptest.NewServer(c.dist)
	ok = true
	return c, nil
}

// drainPrefetches waits for the background prefetcher to go quiet: the
// backends' received-prefetch total must hold steady for one settle
// interval (or the deadline expires). Called before snapshotting stats
// so in-flight hints do not skew the cache numbers.
func (c *liveCluster) drainPrefetches(timeout time.Duration) {
	const settle = 50 * time.Millisecond
	deadline := time.Now().Add(timeout)
	last := c.prefetchCount()
	for time.Now().Before(deadline) {
		time.Sleep(settle)
		cur := c.prefetchCount()
		if cur == last {
			return
		}
		last = cur
	}
}

func (c *liveCluster) prefetchCount() int64 {
	var n int64
	for _, b := range c.demos {
		n += b.Stats().Prefetches
	}
	return n
}

// close tears the cluster down in reverse boot order. Safe on a
// partially built cluster.
func (c *liveCluster) close() {
	if c.front != nil {
		c.front.Close()
	}
	if c.dist != nil {
		c.dist.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
}
