package loadgen

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prord/internal/fleet"
	"prord/internal/httpfront"
	"prord/internal/metrics"
	"prord/internal/policy"
	"prord/internal/randutil"
)

// observer aggregates the distributor's per-request observations: the
// front-end's own service time for every demand request, including
// warmup (the callback has no way to know the measurement window).
type observer struct {
	mu    sync.Mutex
	front metrics.Histogram
}

func (o *observer) observe(obs httpfront.Observation) {
	o.mu.Lock()
	o.front.Observe(obs.Latency)
	o.mu.Unlock()
}

func (o *observer) summary() metrics.LatencySummary {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.front.Summary()
}

// gate sits between a backend's listener and the demo handler as the
// fault schedule's failure injector. Fail-stop (and the down half of a
// flap cycle) answers 503 to everything, like a crashed process behind
// a still-listening proxy; it counts demand requests that arrive while
// down — probes and prefetch hints are excluded, because the front-end
// is allowed (and expected) to probe a dead backend; it must not send
// it client traffic. The gray modes keep the process "up": slow delays
// every request — probes included, so the breaker keeps seeing
// successes and only latency-relative detection can catch it — and
// errrate fails a seeded fraction of demand requests while probes and
// prefetches sail through.
type gate struct {
	inner      http.Handler
	down       atomic.Bool
	slowNS     atomic.Int64  // extra per-request delay while a slow fault is active
	errBits    atomic.Uint64 // float64 bits of the active demand error rate
	downDemand atomic.Int64

	errMu  sync.Mutex
	errRng *randutil.Source
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	demand := r.Header.Get(httpfront.ProbeHeader) == "" && r.Header.Get(httpfront.PrefetchHeader) == ""
	if d := g.slowNS.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if g.down.Load() {
		if demand {
			g.downDemand.Add(1)
		}
		http.Error(w, "backend killed by fault schedule", http.StatusServiceUnavailable)
		return
	}
	if p := math.Float64frombits(g.errBits.Load()); p > 0 && demand {
		g.errMu.Lock()
		roll := g.errRng.Float64()
		g.errMu.Unlock()
		if roll < p {
			g.downDemand.Add(1)
			http.Error(w, "backend error injected by fault schedule", http.StatusServiceUnavailable)
			return
		}
	}
	g.inner.ServeHTTP(w, r)
}

// liveCluster is one booted policy-under-test: demo backends on real
// listeners behind one or more distributor replicas, plus the
// front-end test servers the workers talk to. Each backend sits behind
// a gate so the fault schedule can kill and revive it mid-run. In
// fleet mode every replica shares the ownership ring and gossip
// exchanger; dist/front alias replica 0 so single-front code paths
// (scale events, overload snapshots) keep working.
type liveCluster struct {
	demos   []*httpfront.DemoBackend
	gates   []*gate
	servers []*httptest.Server
	dists   []*httpfront.Distributor
	fronts  []*httptest.Server
	dist    *httpfront.Distributor
	front   *httptest.Server
	obs     *observer
}

// startCluster boots backends and the front-end replicas for one
// policy. The mined model (and prefetching) is wired in only for
// PRORD, matching the sim comparison's feature gating: baselines route
// on policy state alone. Every replica gets its own policy instance
// and miner — policy state is per-replica in a fleet, which is exactly
// what the gossip layer exists to reconcile.
func (h *Harness) startCluster(polName string) (*liveCluster, error) {
	c := &liveCluster{obs: &observer{}}
	ok := false
	defer func() {
		if !ok {
			c.close()
		}
	}()
	var urls []*url.URL
	for i := 0; i < h.cfg.Backends; i++ {
		b := httpfront.NewDemoBackend(fmt.Sprintf("b%d", i), h.files, h.cfg.CacheBytes, h.cfg.MissLatency)
		c.demos = append(c.demos, b)
		// Each gate gets its own seeded stream for errrate rolls, so a
		// fault schedule replays the same per-backend error pattern for
		// every policy under the same -seed.
		g := &gate{inner: b, errRng: randutil.New(h.cfg.Seed + 0x677261 + int64(i))}
		c.gates = append(c.gates, g)
		srv := httptest.NewServer(g)
		c.servers = append(c.servers, srv)
		u, err := url.Parse(srv.URL)
		if err != nil {
			return nil, err
		}
		urls = append(urls, u)
	}
	replicas := h.cfg.FleetReplicas
	var ring *fleet.Ring
	var ex *fleet.Exchanger
	if replicas > 0 {
		members := make([]int, replicas)
		for i := range members {
			members[i] = i
		}
		var err error
		if ring, err = fleet.NewRing(members); err != nil {
			return nil, err
		}
		ex = fleet.NewExchanger()
	} else {
		replicas = 1
	}
	for i := 0; i < replicas; i++ {
		pol, err := policy.ByName(polName, h.cfg.Backends, policy.Thresholds{})
		if err != nil {
			return nil, err
		}
		cfg := httpfront.Config{
			Backends:      urls,
			Policy:        pol,
			Observe:       c.obs.observe,
			Health:        h.cfg.Health,
			Retries:       h.cfg.FrontRetries,
			ProbeInterval: h.cfg.ProbeInterval,
			ProbeSeed:     h.cfg.Seed,
			Overload:      h.cfg.Overload,
			Autoscale:     h.cfg.Autoscale,
			Gray:          h.cfg.Gray,
		}
		if ring != nil {
			cfg.Fleet = &httpfront.FleetConfig{ReplicaID: i, Ring: ring, Exchanger: ex}
		}
		if polName == "PRORD" {
			cfg.Miner = h.freshMiner()
			cfg.Prefetch = true
		}
		d, err := httpfront.New(cfg)
		if err != nil {
			return nil, err
		}
		c.dists = append(c.dists, d)
		c.fronts = append(c.fronts, httptest.NewServer(d))
	}
	if ring != nil {
		handlers := make([]http.Handler, len(c.dists))
		for i, d := range c.dists {
			handlers[i] = d
		}
		for _, d := range c.dists {
			d.SetPeers(handlers)
		}
	}
	c.dist, c.front = c.dists[0], c.fronts[0]
	ok = true
	return c, nil
}

// fleetStats sums the distributor counters across all replicas
// (element-wise for PerBackend); with one replica it is that replica's
// snapshot unchanged. A forwarded request is counted only at the owning
// replica — the ingress hands it over before any accounting — so the
// sums count each demand request once.
func (c *liveCluster) fleetStats() httpfront.Stats {
	st := c.dists[0].Stats()
	for _, d := range c.dists[1:] {
		s := d.Stats()
		st.Requests += s.Requests
		st.Dispatches += s.Dispatches
		st.DirectForwards += s.DirectForwards
		st.Handoffs += s.Handoffs
		st.Prefetches += s.Prefetches
		st.Errors += s.Errors
		st.Failovers += s.Failovers
		st.Retries += s.Retries
		st.Shed += s.Shed
		st.PrefetchShed += s.PrefetchShed
		st.PrefetchHintsDropped += s.PrefetchHintsDropped
		st.Unavailable += s.Unavailable
		for i, n := range s.PerBackend {
			if i < len(st.PerBackend) {
				st.PerBackend[i] += n
			}
		}
	}
	return st
}

// startFaults launches the fault schedule against the cluster's gates,
// anchored at start — the same instant the replay workers measure
// their schedules from. The returned stop function cancels pending
// events and waits for the runner to exit; with no faults configured
// it is a no-op.
func (h *Harness) startFaults(c *liveCluster, start time.Time) (stop func()) {
	if len(h.cfg.Faults) == 0 {
		return func() {}
	}
	type event struct {
		at    time.Duration
		apply func()
	}
	var events []event
	for _, f := range h.cfg.Faults {
		g := c.gates[f.Backend]
		switch f.Mode {
		case Slow:
			// The live gate cannot stretch the demo handler's internal
			// sleeps, so it models an xN dilation as a flat (N-1)x-miss
			// pre-delay on every request, probes included.
			unit := h.cfg.MissLatency
			if unit <= 0 {
				unit = time.Millisecond
			}
			delay := int64(float64(unit) * (f.Slowdown - 1))
			events = append(events, event{at: f.At, apply: func() { g.slowNS.Store(delay) }})
			if f.RecoverAt > 0 {
				events = append(events, event{at: f.RecoverAt, apply: func() { g.slowNS.Store(0) }})
			}
		case ErrRate:
			bits := math.Float64bits(f.ErrRate)
			events = append(events, event{at: f.At, apply: func() { g.errBits.Store(bits) }})
			if f.RecoverAt > 0 {
				events = append(events, event{at: f.RecoverAt, apply: func() { g.errBits.Store(0) }})
			}
		case Flap:
			// Down at At, toggling every period; validateFaults guarantees
			// RecoverAt bounds the schedule, and recovery always ends up.
			down := true
			for t := f.At; t < f.RecoverAt; t += f.FlapPeriod {
				d := down
				events = append(events, event{at: t, apply: func() { g.down.Store(d) }})
				down = !down
			}
			events = append(events, event{at: f.RecoverAt, apply: func() { g.down.Store(false) }})
		default: // fail-stop
			events = append(events, event{at: f.At, apply: func() { g.down.Store(true) }})
			if f.RecoverAt > 0 {
				events = append(events, event{at: f.RecoverAt, apply: func() { g.down.Store(false) }})
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTimer(time.Hour)
		defer t.Stop()
		for _, e := range events {
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
			t.Reset(time.Until(start.Add(e.at)))
			select {
			case <-quit:
				return
			case <-t.C:
			}
			e.apply()
		}
	}()
	return func() { close(quit); <-done }
}

// drainPrefetches waits for the background prefetcher to go quiet: the
// backends' received-prefetch total must hold steady for one settle
// interval (or the deadline expires). Called before snapshotting stats
// so in-flight hints do not skew the cache numbers.
func (c *liveCluster) drainPrefetches(timeout time.Duration) {
	const settle = 50 * time.Millisecond
	deadline := time.Now().Add(timeout)
	last := c.prefetchCount()
	for time.Now().Before(deadline) {
		time.Sleep(settle)
		cur := c.prefetchCount()
		if cur == last {
			return
		}
		last = cur
	}
}

func (c *liveCluster) prefetchCount() int64 {
	var n int64
	for _, b := range c.demos {
		n += b.Stats().Prefetches
	}
	return n
}

// close tears the cluster down in reverse boot order. Safe on a
// partially built cluster.
func (c *liveCluster) close() {
	for _, f := range c.fronts {
		f.Close()
	}
	for _, d := range c.dists {
		d.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
}
