package loadgen

import (
	"reflect"
	"testing"
	"time"

	"prord/internal/health"
)

func TestParseFaults(t *testing.T) {
	got, err := ParseFaults(" 1@5s:8s, 0@300ms ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Backend: 1, At: 5 * time.Second, RecoverAt: 8 * time.Second},
		{Backend: 0, At: 300 * time.Millisecond},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseFaults = %+v, want %+v", got, want)
	}
	if got, err := ParseFaults(""); err != nil || got != nil {
		t.Fatalf("ParseFaults(\"\") = %+v, %v", got, err)
	}
	for _, bad := range []string{"1", "x@3s", "1@", "1@3s:", "1@3x", "1@3s:4x", "@3s"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted", bad)
		}
	}
}

func TestParseFaultModes(t *testing.T) {
	got, err := ParseFaults("1@5s:20s/slow=x10,0@2s/errrate=0.3,1@1s:9s/flap=500ms,0@3s/slow=x2.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Backend: 1, At: 5 * time.Second, RecoverAt: 20 * time.Second, Mode: Slow, Slowdown: 10},
		{Backend: 0, At: 2 * time.Second, Mode: ErrRate, ErrRate: 0.3},
		{Backend: 1, At: time.Second, RecoverAt: 9 * time.Second, Mode: Flap, FlapPeriod: 500 * time.Millisecond},
		{Backend: 0, At: 3 * time.Second, Mode: Slow, Slowdown: 2.5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseFaults = %+v, want %+v", got, want)
	}
	bad := []string{
		"1@5s/slow=10",     // missing x prefix
		"1@5s/slow=x",      // empty factor
		"1@5s/slow",        // no value
		"1@5s/errrate=abc", // not a number
		"1@5s/flap=zz",     // not a duration
		"1@5s/wobble=3",    // unknown mode
	}
	for _, s := range bad {
		if _, err := ParseFaults(s); err == nil {
			t.Errorf("ParseFaults(%q) accepted", s)
		}
	}
}

func TestValidateFaultModes(t *testing.T) {
	bad := [][]Fault{
		{{Backend: 0, At: time.Second, Mode: Slow, Slowdown: 1}},   // no dilation
		{{Backend: 0, At: time.Second, Mode: Slow, Slowdown: 0.5}}, // speedup
		{{Backend: 0, At: time.Second, Mode: ErrRate, ErrRate: 0}},
		{{Backend: 0, At: time.Second, Mode: ErrRate, ErrRate: 1}},                      // full outage is fail-stop's job
		{{Backend: 0, At: time.Second, RecoverAt: 2 * time.Second, Mode: Flap}},         // no period
		{{Backend: 0, At: time.Second, Mode: Flap, FlapPeriod: 100 * time.Millisecond}}, // unbounded toggle schedule
	}
	for i, faults := range bad {
		cfg := smallConfig(OpenLoop)
		cfg.Faults = faults
		if err := cfg.withDefaults().Validate(); err == nil {
			t.Errorf("case %d: Validate accepted faults %+v", i, faults)
		}
	}
	cfg := smallConfig(OpenLoop)
	cfg.Faults = []Fault{
		{Backend: 1, At: 0, RecoverAt: time.Second, Mode: Slow, Slowdown: 10},
		{Backend: 0, At: 0, Mode: ErrRate, ErrRate: 0.25},
		{Backend: 1, At: 0, RecoverAt: time.Second, Mode: Flap, FlapPeriod: 100 * time.Millisecond},
	}
	if err := cfg.withDefaults().Validate(); err != nil {
		t.Fatalf("valid gray fault schedule rejected: %v", err)
	}
}

func TestValidateFaults(t *testing.T) {
	bad := [][]Fault{
		{{Backend: 2, At: time.Second}},                                 // out of range
		{{Backend: -1, At: time.Second}},                                // out of range
		{{Backend: 0, At: -time.Second}},                                // negative time
		{{Backend: 0, At: 2 * time.Second, RecoverAt: time.Second}},     // recovery before outage
		{{Backend: 0, At: 2 * time.Second, RecoverAt: 2 * time.Second}}, // recovery == outage
	}
	for i, faults := range bad {
		cfg := smallConfig(OpenLoop)
		cfg.Faults = faults
		if err := cfg.withDefaults().Validate(); err == nil {
			t.Errorf("case %d: Validate accepted faults %+v", i, faults)
		}
	}
	cfg := smallConfig(OpenLoop)
	cfg.Faults = []Fault{{Backend: 1, At: 0, RecoverAt: time.Second}}
	if err := cfg.withDefaults().Validate(); err != nil {
		t.Fatalf("valid fault schedule rejected: %v", err)
	}
	cfg.ProbeInterval = -time.Second
	if err := cfg.withDefaults().Validate(); err == nil {
		t.Error("Validate accepted a negative probe interval")
	}
}

// TestFaultScheduleFailover is the live acceptance check for the fault
// layer: kill one of three backends mid-run and require that the
// front-end masks the crash completely — zero client-visible errors,
// failovers counted, the breaker open, and (the real point of the
// gate's demand counter) essentially no demand reaching the corpse
// while the schedule keeps offering hundreds of requests.
func TestFaultScheduleFailover(t *testing.T) {
	cfg := smallConfig(OpenLoop)
	cfg.Backends = 3
	cfg.Health = health.Config{Threshold: 2, Backoff: time.Hour}
	cfg.ProbeInterval = 5 * time.Millisecond
	cfg.Faults = []Fault{{Backend: 1, At: 300 * time.Millisecond}}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Replicate Run's sequence by hand so the cluster (and its gates)
	// stays inspectable.
	c, err := h.startCluster("PRORD")
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	start := time.Now()
	stop := h.startFaults(c, start)
	live := h.runOpen(c, start)
	stop()
	c.drainPrefetches(time.Second)
	run := h.reduce("PRORD", c, live)

	if run.Errors != 0 {
		t.Errorf("crash leaked to clients: %d errors", run.Errors)
	}
	if run.Failovers == 0 {
		t.Error("no failovers recorded across a mid-run crash")
	}
	if run.Retries < run.Failovers {
		t.Errorf("retries %d < failovers %d", run.Retries, run.Failovers)
	}
	if run.Backends[1].BreakerTrips == 0 {
		t.Error("killed backend's breaker never tripped")
	}
	bh := c.dist.Health()
	if bh[1].State != "open" {
		t.Errorf("killed backend breaker state %q, want open", bh[1].State)
	}
	// Demand on the corpse is bounded by the trip threshold plus
	// requests already past routing when the gate slammed — not by the
	// ~half of the schedule that postdates the kill.
	leaked := c.gates[1].downDemand.Load()
	if limit := int64(cfg.Health.Threshold + cfg.Workers + 4); leaked > limit {
		t.Errorf("dead backend received %d demand requests, want <= %d", leaked, limit)
	}

	sim, err := h.simCompare("PRORD", run)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Failovers == 0 {
		t.Error("sim comparison saw no failovers for the same fault schedule")
	}
}

// TestRunWithFaultsClosedLoop drives the public Run path with a fault
// schedule in closed mode. Completion-paced replay can drain before or
// after the outage lands, so only the hard guarantee is asserted: the
// crash never surfaces to clients.
func TestRunWithFaultsClosedLoop(t *testing.T) {
	cfg := smallConfig(ClosedLoop)
	cfg.Backends = 3
	cfg.Health = health.Config{Threshold: 2, Backoff: time.Hour}
	cfg.Faults = []Fault{{Backend: 0, At: 100 * time.Millisecond}}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := h.Run("PRORD")
	if err != nil {
		t.Fatal(err)
	}
	if run.Errors != 0 {
		t.Errorf("crash leaked to clients: %d errors", run.Errors)
	}
	if run.Sim == nil {
		t.Fatal("sim comparison missing")
	}
}
