package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"prord/internal/httpfront"
	"prord/internal/metrics"
	"prord/internal/overload"
)

// sessionClient builds one replayed session's HTTP client. Each session
// gets its own transport: the distributor tracks sessions by keep-alive
// connection, and the shared http.DefaultTransport caps idle connections
// per host at two, so concurrent workers sharing it would evict each
// other's connections and fragment every session into many short ones —
// breaking both locality routing and the admission controller's
// in-progress-session bypass.
func sessionClient() *http.Client {
	return &http.Client{Transport: &http.Transport{}}
}

// tierTransitions converts the estimator's ladder history to the
// artifact's stable representation (integer milliseconds, tier names).
func tierTransitions(ts []overload.Transition) []metrics.TierTransition {
	var out []metrics.TierTransition
	for _, t := range ts {
		out = append(out, metrics.TierTransition{
			AtMS: t.At.Milliseconds(),
			From: t.From.String(),
			To:   t.To.String(),
		})
	}
	return out
}

// liveStats is what the client workers measure: latency histograms
// split by warmup vs measurement window, plus error, shed and timing
// totals.
type liveStats struct {
	warm             metrics.Histogram
	meas             metrics.Histogram
	errors           int64
	shed             int64
	affinityBreaches int64
	elapsed          time.Duration
}

// workerLocal is one worker's lock-free accumulator, merged after the
// run so the hot path never contends.
type workerLocal struct {
	warm             metrics.Histogram
	meas             metrics.Histogram
	errors           int64
	shed             int64
	affinityBreaches int64
}

// merge folds per-worker accumulators into campaign totals.
func merge(locals []workerLocal, elapsed time.Duration) *liveStats {
	out := &liveStats{elapsed: elapsed}
	for i := range locals {
		out.warm.Merge(&locals[i].warm)
		out.meas.Merge(&locals[i].meas)
		out.errors += locals[i].errors
		out.shed += locals[i].shed
		out.affinityBreaches += locals[i].affinityBreaches
	}
	return out
}

// affinityTracker asserts the fleet's session-affinity invariant over
// one replayed session: every response on the session's connection
// must carry the same replica id (the ring owner answers, wherever the
// request entered). A session that saw two replicas is one breach.
type affinityTracker struct {
	seen     string
	breached bool
}

func (a *affinityTracker) observe(replica string) {
	if replica == "" || a.breached {
		return // not a fleet response, or already counted
	}
	if a.seen == "" {
		a.seen = replica
		return
	}
	if replica != a.seen {
		a.breached = true
	}
}

// breaches reports 1 if the session broke affinity, else 0.
func (a *affinityTracker) breaches() int64 {
	if a.breached {
		return 1
	}
	return 0
}

// reset forgets the pinned replica but keeps any recorded breach.
// Called after a transport error: the client may have re-dialed, and a
// fresh connection is legitimately a fresh session with a new owner.
func (a *affinityTracker) reset() {
	a.seen = ""
}

// fetch issues one GET and fully consumes the response. Transport
// failures and non-2xx statuses count as errors — except a 503 carrying
// the front-end's shed marker, which is the admission controller doing
// its job under overload: those are reported as shed, not errored, and
// contribute no latency sample. replica is the answering fleet
// replica's id header ("" outside fleet mode), feeding the
// session-affinity assertion.
func fetch(client *http.Client, url string) (lat time.Duration, shed bool, replica string, err error) {
	t0 := time.Now()
	resp, err := client.Get(url)
	if err != nil {
		return 0, false, "", err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	shedResp := resp.StatusCode == http.StatusServiceUnavailable &&
		resp.Header.Get(httpfront.ShedHeader) != ""
	replica = resp.Header.Get(httpfront.ReplicaHeader)
	resp.Body.Close()
	d := time.Since(t0)
	if err != nil {
		return 0, false, "", err
	}
	if shedResp {
		return 0, true, replica, nil
	}
	if resp.StatusCode >= 300 {
		return 0, false, replica, fmt.Errorf("loadgen: GET %s: status %d", url, resp.StatusCode)
	}
	return d, false, replica, nil
}

// runOpen replays the precomputed open-loop schedule: each worker walks
// its own arrival list, sleeping until each request's absolute due time
// and issuing it regardless of earlier completions (catching up without
// skipping when it falls behind, so the issued count stays
// deterministic). Warmup classification uses the scheduled arrival
// offset, not the wall clock, so the warm/measured split is identical
// across runs. start anchors the schedule and is shared with the fault
// runner so outage offsets line up with arrival offsets. In fleet mode
// workers spray round-robin over the replicas' fronts (worker w →
// front w mod k) — a worker's keep-alive connection is one session, so
// the spray is the deterministic stand-in for an L4 switch pinning
// connections to distributors.
func (h *Harness) runOpen(c *liveCluster, start time.Time) *liveStats {
	locals := make([]workerLocal, len(h.open))
	var wg sync.WaitGroup
	for w := range h.open {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			frontURL := c.fronts[w%len(c.fronts)].URL
			client := sessionClient()
			defer client.CloseIdleConnections()
			l := &locals[w]
			var aff affinityTracker
			for _, a := range h.open[w] {
				if d := time.Until(start.Add(a.at)); d > 0 {
					time.Sleep(d)
				}
				lat, shed, replica, err := fetch(client, frontURL+h.eval.Requests[a.idx].Path)
				if err != nil {
					l.errors++
					aff.reset()
					continue
				}
				aff.observe(replica)
				if shed {
					l.shed++
					continue
				}
				if a.at < h.cfg.Warmup {
					l.warm.Observe(lat)
				} else {
					l.meas.Observe(lat)
				}
			}
			l.affinityBreaches += aff.breaches()
		}(w)
	}
	wg.Wait()
	return merge(locals, time.Since(start))
}

// runClosed replays session scripts with cfg.Concurrency clients.
// Scripts are assigned round-robin by index so the partition is
// deterministic; each session runs on its own keep-alive connection
// (sessions are what the distributor tracks by connection), pausing
// Think before each page request. Issuing stops at the Duration
// deadline; in-flight requests are allowed to finish. In fleet mode
// sessions spray round-robin over the replicas' fronts (session s →
// front s mod k), so roughly (k-1)/k of sessions enter through a
// non-owner and exercise the forwarding path.
func (h *Harness) runClosed(c *liveCluster, start time.Time) *liveStats {
	locals := make([]workerLocal, h.cfg.Concurrency)
	var wg sync.WaitGroup
	deadline := start.Add(h.cfg.Duration)
	warmEnd := start.Add(h.cfg.Warmup)
	for w := 0; w < h.cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := &locals[w]
			for s := w; s < len(h.scripts); s += h.cfg.Concurrency {
				if !time.Now().Before(deadline) {
					return
				}
				frontURL := c.fronts[s%len(c.fronts)].URL
				client := sessionClient()
				var aff affinityTracker
				for i, idx := range h.scripts[s].Reqs {
					req := &h.eval.Requests[idx]
					// Users pause before following a link; embedded
					// objects are fetched immediately with the page.
					if i > 0 && !req.Embedded && h.cfg.Think > 0 {
						time.Sleep(h.cfg.Think)
					}
					if !time.Now().Before(deadline) {
						break
					}
					t0 := time.Now()
					lat, shed, replica, err := fetch(client, frontURL+req.Path)
					if err != nil {
						l.errors++
						aff.reset()
						continue
					}
					aff.observe(replica)
					if shed {
						l.shed++
						continue
					}
					if t0.Before(warmEnd) {
						l.warm.Observe(lat)
					} else {
						l.meas.Observe(lat)
					}
				}
				l.affinityBreaches += aff.breaches()
				client.CloseIdleConnections()
			}
		}(w)
	}
	wg.Wait()
	return merge(locals, time.Since(start))
}

// Run benchmarks one policy: boots a fresh live cluster, replays the
// harness's schedule against it, and reduces the measurements to a
// BenchRun. When cfg.CompareSim is set the same workload is also played
// through the discrete-event simulator and the deltas attached.
func (h *Harness) Run(polName string) (*metrics.BenchRun, error) {
	polName, err := CanonicalPolicy(polName)
	if err != nil {
		return nil, err
	}
	c, err := h.startCluster(polName)
	if err != nil {
		return nil, err
	}
	defer c.close()

	start := time.Now()
	stopFaults := h.startFaults(c, start)
	stopScale := h.startScaleEvents(c, start)
	var live *liveStats
	switch h.cfg.Mode {
	case OpenLoop:
		live = h.runOpen(c, start)
	case ClosedLoop:
		live = h.runClosed(c, start)
	default:
		stopScale()
		stopFaults()
		return nil, fmt.Errorf("loadgen: unknown mode %d", int(h.cfg.Mode))
	}
	stopScale()
	stopFaults()
	c.drainPrefetches(time.Second)

	run := h.reduce(polName, c, live)
	if h.cfg.CompareSim {
		sim, err := h.simCompare(polName, run)
		if err != nil {
			return nil, err
		}
		run.Sim = sim
	}
	return run, nil
}

// reduce folds the live cluster's counters and the workers' histograms
// into one artifact cell.
func (h *Harness) reduce(polName string, c *liveCluster, live *liveStats) *metrics.BenchRun {
	run := &metrics.BenchRun{
		Name:           polName,
		Requests:       live.meas.Count(),
		WarmupRequests: live.warm.Count(),
		Errors:         live.errors,
		Shed:           live.shed,
		Latency:        live.meas.Summary(),
	}
	front := c.obs.summary()
	run.FrontLatency = &front

	// Open loop offers a schedule spanning exactly Duration, so the
	// nominal measurement window keeps throughput deterministic for
	// error-free runs; closed loop finishes when its sessions do.
	window := h.cfg.Duration - h.cfg.Warmup
	if h.cfg.Mode == ClosedLoop {
		window = live.elapsed - h.cfg.Warmup
	}
	if window > 0 {
		run.ThroughputRPS = metrics.Round(float64(run.Requests)/window.Seconds(), 1)
	}

	st := c.fleetStats()
	run.Handoffs = st.Handoffs
	run.Prefetches = st.Prefetches
	run.Failovers = st.Failovers
	run.Retries = st.Retries
	run.PrefetchShed = st.PrefetchShed
	run.PrefetchHintsDropped = st.PrefetchHintsDropped
	if h.cfg.Overload != nil {
		// With admission control on, throughput of successfully served
		// requests is the run's goodput — the headline overload metric.
		run.GoodputRPS = run.ThroughputRPS
		if ov := c.dist.Overload(); ov != nil {
			run.TierTransitions = tierTransitions(ov.Transitions)
		}
	}
	if st.Requests > 0 {
		run.DispatchPerRequest = metrics.Round(float64(st.Dispatches)/float64(st.Requests), 3)
	}
	run.LoadSkew = metrics.Skew(st.PerBackend)
	if ps := c.dist.Pool(); ps != nil {
		run.Autoscale = &metrics.AutoscaleSummary{
			Joins:            ps.Joins,
			Drains:           ps.Drains,
			SessionsRebooked: ps.SessionsRebooked,
			FinalSize:        ps.Size,
		}
	}
	if g := c.dist.Gray(); g != nil {
		run.Gray = &metrics.GraySummary{
			Ejections:    g.Ejections,
			Recoveries:   g.Recoveries,
			GrayRebinds:  g.GrayRebinds,
			HedgesFired:  g.HedgesFired,
			HedgeWins:    g.HedgeWins,
			HedgeCancels: g.HedgeCancels,
		}
	}
	if fst := c.dist.Fleet(); fst != nil {
		fs := &metrics.FleetSummary{
			Replicas:         fst.Replicas,
			RingEpoch:        fst.RingEpoch,
			AffinityBreaches: live.affinityBreaches,
		}
		for _, d := range c.dists {
			cs := d.Core().Stats()
			fs.Forwards += cs.FleetForwards
			fs.OwnershipRebinds += cs.OwnershipRebinds
		}
		if st.Requests > 0 {
			fs.ForwardRate = metrics.Round(float64(fs.Forwards)/float64(st.Requests), 3)
		}
		run.Fleet = fs
	}

	// Breaker trips are summed across replicas: each front-end runs its
	// own breakers over the shared backends.
	trips := make([]int64, h.cfg.Backends)
	for _, d := range c.dists {
		for i, b := range d.Health() {
			if i < len(trips) {
				trips[i] += b.Trips
			}
		}
	}
	var hits, misses int64
	for i, b := range c.demos {
		bs := b.Stats()
		hits += bs.Hits
		misses += bs.Misses
		sample := metrics.BackendSample{Prefetches: bs.Prefetches}
		if i < len(st.PerBackend) {
			sample.Requests = st.PerBackend[i]
		}
		if i < len(trips) {
			sample.BreakerTrips = trips[i]
		}
		if lookups := bs.Hits + bs.Misses; lookups > 0 {
			sample.HitRate = metrics.Round(float64(bs.Hits)/float64(lookups), 3)
		}
		run.Backends = append(run.Backends, sample)
	}
	if lookups := hits + misses; lookups > 0 {
		run.HitRate = metrics.Round(float64(hits)/float64(lookups), 3)
	}
	return run
}

// RunAll benchmarks every configured policy in order and assembles the
// campaign result.
func (h *Harness) RunAll() (*Result, error) {
	res := &Result{Config: h.cfg, Workload: h.Workload()}
	for _, pol := range h.cfg.Policies {
		run, err := h.Run(pol)
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, *run)
	}
	return res, nil
}
