// Package replicate implements PRORD's popularity-driven replication
// (Algorithm 3, §4.1.2): every t seconds the rank table built from
// dynamic log mining is sorted and each file's replication degree across
// the backend servers' memories is set by the T1 threshold ladder —
// hotter files are replicated more widely.
package replicate

import (
	"hash/fnv"
	"sort"

	"prord/internal/mining"
)

// Placer is the cluster-side executor of replication decisions. The
// manager decides degrees; the Placer moves bytes and updates the
// dispatcher's locality maps.
type Placer interface {
	// NumServers returns the backend count.
	NumServers() int
	// Holders returns the backends currently holding a replica of file
	// placed by the replication manager.
	Holders(file string) []int
	// Replicate pushes a copy of file to server.
	Replicate(file string, server int)
	// Drop removes the replica of file from server.
	Drop(file string, server int)
}

// Config tunes Algorithm 3.
type Config struct {
	// T1Fraction positions the top threshold T1 as a fraction of the
	// rank table's total (decayed) request count. Files whose count
	// exceeds T1 replicate to all servers. Default 0.02.
	T1Fraction float64
	// MaxFiles caps how many rank-table rows are examined per step (the
	// table is sorted, so these are the hottest files). 0 means all.
	MaxFiles int
}

// DefaultConfig returns the default Algorithm 3 tuning.
func DefaultConfig() Config { return Config{T1Fraction: 0.02, MaxFiles: 512} }

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.T1Fraction <= 0 || c.T1Fraction > 1 {
		c.T1Fraction = d.T1Fraction
	}
	if c.MaxFiles < 0 {
		c.MaxFiles = d.MaxFiles
	}
	return c
}

// Manager runs the periodic replication algorithm against a popularity
// ranker.
type Manager struct {
	cfg    Config
	ranker *mining.Ranker
	steps  int
	placed map[string]bool // files with manager-placed replicas
}

// NewManager returns a manager reading popularity from ranker.
func NewManager(ranker *mining.Ranker, cfg Config) *Manager {
	if ranker == nil {
		panic("replicate: nil ranker")
	}
	return &Manager{cfg: cfg.withDefaults(), ranker: ranker, placed: make(map[string]bool)}
}

// Ranker exposes the underlying rank table (Observe feeds it per request).
func (m *Manager) Ranker() *mining.Ranker { return m.ranker }

// Steps reports how many replication rounds have run.
func (m *Manager) Steps() int { return m.steps }

// Degree returns the desired number of replicas for a file with the given
// (decayed) request count under threshold t1 and n servers. A degree of
// -1 means "no change" (the T1/8..T1/4 band); 0 means "drop extra
// replicas".
func Degree(count, t1 float64, n int) int {
	switch {
	case count > t1:
		return n
	case count > t1/2:
		return ceilFrac(n, 3, 4)
	case count > t1/4:
		return ceilFrac(n, 1, 2)
	case count > t1/8:
		return -1 // NO_CHANGE
	default:
		return 0 // NONE
	}
}

func ceilFrac(n, num, den int) int {
	v := (n*num + den - 1) / den
	if v < 1 {
		v = 1
	}
	return v
}

// Step runs one round of Algorithm 3: sort the rank table, compute each
// hot file's desired degree, and converge the Placer to it. It returns
// the number of replicas pushed.
func (m *Manager) Step(p Placer) int {
	m.steps++
	table := m.ranker.Table() // (i) Sort(rank_table)
	var total float64
	for _, e := range table {
		total += e.Count
	}
	t1 := m.cfg.T1Fraction * total
	limit := len(table)
	if m.cfg.MaxFiles > 0 && limit > m.cfg.MaxFiles {
		limit = m.cfg.MaxFiles
	}
	pushed := 0
	examined := make(map[string]bool, limit)
	if t1 > 0 {
		for _, e := range table[:limit] { // (ii) for every element
			examined[e.Path] = true
			degree := Degree(e.Count, t1, p.NumServers())
			if degree < 0 {
				continue // NO_CHANGE
			}
			pushed += converge(p, e.Path, degree)
			if degree > 0 {
				m.placed[e.Path] = true
			} else {
				delete(m.placed, e.Path)
			}
		}
	}
	// Files whose counts decayed off the hot window fall in the "NONE"
	// band by definition: reclaim their pinned replicas.
	for file := range m.placed {
		if !examined[file] {
			converge(p, file, 0)
			delete(m.placed, file)
		}
	}
	m.ranker.Age()
	return pushed
}

// converge adds or drops replicas of file until exactly degree are
// placed. Server choice is deterministic: existing holders are kept
// (lowest index first), new replicas fill round-robin from a hash of the
// file name so hot files spread across different starting servers.
func converge(p Placer, file string, degree int) int {
	holders := append([]int(nil), p.Holders(file)...)
	sort.Ints(holders)
	if len(holders) > degree {
		for _, s := range holders[degree:] {
			p.Drop(file, s)
		}
		return 0
	}
	have := make(map[int]bool, len(holders))
	for _, s := range holders {
		have[s] = true
	}
	pushed := 0
	start := int(hashString(file) % uint32(p.NumServers()))
	for i := 0; len(have) < degree && i < p.NumServers(); i++ {
		s := (start + i) % p.NumServers()
		if have[s] {
			continue
		}
		p.Replicate(file, s)
		have[s] = true
		pushed++
	}
	return pushed
}

func hashString(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}
