package replicate

import (
	"fmt"
	"sort"
	"testing"

	"prord/internal/mining"
)

// fakePlacer records replica placement in memory.
type fakePlacer struct {
	n        int
	replicas map[string]map[int]bool
	pushes   int
	drops    int
}

func newFakePlacer(n int) *fakePlacer {
	return &fakePlacer{n: n, replicas: make(map[string]map[int]bool)}
}

func (p *fakePlacer) NumServers() int { return p.n }

func (p *fakePlacer) Holders(file string) []int {
	var out []int
	for s := range p.replicas[file] {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func (p *fakePlacer) Replicate(file string, server int) {
	m, ok := p.replicas[file]
	if !ok {
		m = make(map[int]bool)
		p.replicas[file] = m
	}
	m[server] = true
	p.pushes++
}

func (p *fakePlacer) Drop(file string, server int) {
	delete(p.replicas[file], server)
	p.drops++
}

func TestDegreeLadder(t *testing.T) {
	const t1 = 100.0
	const n = 8
	cases := []struct {
		count float64
		want  int
	}{
		{150, 8},  // > T1: all
		{101, 8},  // just above T1
		{100, 6},  // == T1 falls into the 3/4 band
		{60, 6},   // (T1/2, T1]: ceil(3/4 * 8) = 6
		{51, 6},   //
		{50, 4},   // (T1/4, T1/2]: half
		{26, 4},   //
		{25, -1},  // (T1/8, T1/4]: no change
		{13, -1},  //
		{12.5, 0}, // <= T1/8: none
		{0, 0},
	}
	for _, c := range cases {
		if got := Degree(c.count, t1, n); got != c.want {
			t.Errorf("Degree(%v) = %d, want %d", c.count, got, c.want)
		}
	}
}

func TestDegreeSmallCluster(t *testing.T) {
	// Fractional degrees must stay >= 1 for non-empty bands.
	if got := Degree(60, 100, 1); got != 1 {
		t.Fatalf("Degree on 1-server cluster = %d, want 1", got)
	}
}

func TestStepReplicatesHotFile(t *testing.T) {
	r := mining.NewRanker(1) // no decay within the test
	for i := 0; i < 96; i++ {
		r.Observe("/hot")
	}
	for i := 0; i < 4; i++ {
		r.Observe("/cold")
	}
	m := NewManager(r, Config{T1Fraction: 0.5}) // T1 = 50
	p := newFakePlacer(4)
	pushed := m.Step(p)
	if got := p.Holders("/hot"); len(got) != 4 {
		t.Fatalf("/hot holders = %v, want all 4", got)
	}
	if pushed < 4 {
		t.Fatalf("pushed = %d, want >= 4", pushed)
	}
	// /cold count (4) <= T1/8 (6.25): no replicas.
	if got := p.Holders("/cold"); len(got) != 0 {
		t.Fatalf("/cold holders = %v, want none", got)
	}
	if m.Steps() != 1 {
		t.Fatalf("Steps = %d", m.Steps())
	}
}

func TestStepShrinksCooledFile(t *testing.T) {
	r := mining.NewRanker(0.5)
	observeRound := func() {
		for i := 0; i < 100; i++ {
			r.Observe("/stays-hot")
		}
	}
	observeRound()
	for i := 0; i < 100; i++ {
		r.Observe("/was-hot")
	}
	m := NewManager(r, Config{T1Fraction: 0.25})
	p := newFakePlacer(4)
	m.Step(p)
	if len(p.Holders("/was-hot")) != 4 {
		t.Fatalf("setup: file should be fully replicated, got %v", p.Holders("/was-hot"))
	}
	// /was-hot stops being requested while /stays-hot keeps its traffic.
	// Decay sinks /was-hot through the bands until its replicas vanish.
	for i := 0; i < 8; i++ {
		observeRound()
		m.Step(p)
	}
	if got := p.Holders("/was-hot"); len(got) != 0 {
		t.Fatalf("cooled file still has replicas: %v", got)
	}
	if got := p.Holders("/stays-hot"); len(got) != 4 {
		t.Fatalf("hot file should stay replicated: %v", got)
	}
	if p.drops == 0 {
		t.Fatal("drops should have happened")
	}
}

func TestFileFallingOffTableLosesReplicas(t *testing.T) {
	r := mining.NewRanker(0.5)
	for i := 0; i < 100; i++ {
		r.Observe("/gone")
	}
	m := NewManager(r, Config{T1Fraction: 0.25})
	p := newFakePlacer(4)
	m.Step(p)
	if len(p.Holders("/gone")) == 0 {
		t.Fatal("setup: /gone should have replicas")
	}
	// Decay /gone out of the rank table entirely (counts < 0.01 are
	// dropped); the manager must reclaim its replicas.
	for i := 0; i < 20; i++ {
		m.Step(p)
	}
	if got := p.Holders("/gone"); len(got) != 0 {
		t.Fatalf("table-absent file keeps replicas: %v", got)
	}
}

func TestStepNoChangeBandPreservesReplicas(t *testing.T) {
	r := mining.NewRanker(1)
	for i := 0; i < 20; i++ {
		r.Observe("/mid")
	}
	for i := 0; i < 80; i++ {
		r.Observe("/hot")
	}
	m := NewManager(r, Config{T1Fraction: 0.5}) // T1 = 50
	p := newFakePlacer(4)
	// Pre-place replicas for /mid beyond what its band would assign.
	p.Replicate("/mid", 0)
	p.Replicate("/mid", 1)
	p.Replicate("/mid", 2)
	p.pushes = 0
	m.Step(p)
	// /mid count 20 is in (T1/8=6.25, T1/4=12.5]? No: 20 > 12.5, so it is
	// in the (T1/4, T1/2] half band -> degree 2: one replica dropped.
	if got := p.Holders("/mid"); len(got) != 2 {
		t.Fatalf("/mid holders = %v, want trimmed to 2", got)
	}
}

func TestStepNoChangeExactBand(t *testing.T) {
	r := mining.NewRanker(1)
	for i := 0; i < 10; i++ {
		r.Observe("/nc")
	}
	for i := 0; i < 90; i++ {
		r.Observe("/hot")
	}
	// T1 = 50; /nc count 10 in (6.25, 12.5] -> NO_CHANGE.
	m := NewManager(r, Config{T1Fraction: 0.5})
	p := newFakePlacer(4)
	p.Replicate("/nc", 3)
	p.pushes = 0
	m.Step(p)
	if got := p.Holders("/nc"); len(got) != 1 || got[0] != 3 {
		t.Fatalf("NO_CHANGE band must not touch /nc: %v", got)
	}
}

func TestStepEmptyTable(t *testing.T) {
	m := NewManager(mining.NewRanker(0.5), Config{})
	if got := m.Step(newFakePlacer(4)); got != 0 {
		t.Fatalf("empty table pushed %d", got)
	}
}

func TestConvergeDeterministicSpread(t *testing.T) {
	// Different files starting from different hash offsets should not all
	// pile their first replica on server 0.
	r := mining.NewRanker(1)
	for f := 0; f < 16; f++ {
		for i := 0; i < 100; i++ {
			r.Observe(fmt.Sprintf("/f%d", f))
		}
	}
	m := NewManager(r, Config{T1Fraction: 0.001}) // everything replicates to half+
	p := newFakePlacer(8)
	m.Step(p)
	// All files exceed T1 -> full replication; fine. Now check the
	// deterministic repeatability instead: a second placer gets the same
	// placement.
	r2 := mining.NewRanker(1)
	for f := 0; f < 16; f++ {
		for i := 0; i < 100; i++ {
			r2.Observe(fmt.Sprintf("/f%d", f))
		}
	}
	p2 := newFakePlacer(8)
	NewManager(r2, Config{T1Fraction: 0.001}).Step(p2)
	for f := 0; f < 16; f++ {
		key := fmt.Sprintf("/f%d", f)
		a, b := p.Holders(key), p2.Holders(key)
		if len(a) != len(b) {
			t.Fatalf("placements differ for %s: %v vs %v", key, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("placements differ for %s: %v vs %v", key, a, b)
			}
		}
	}
}

func TestMaxFilesCap(t *testing.T) {
	r := mining.NewRanker(1)
	for f := 0; f < 100; f++ {
		r.Observe(fmt.Sprintf("/f%02d", f))
	}
	m := NewManager(r, Config{T1Fraction: 0.0001, MaxFiles: 10})
	p := newFakePlacer(2)
	m.Step(p)
	count := 0
	for f := 0; f < 100; f++ {
		if len(p.Holders(fmt.Sprintf("/f%02d", f))) > 0 {
			count++
		}
	}
	if count > 10 {
		t.Fatalf("MaxFiles cap ignored: %d files replicated", count)
	}
}

func TestNilRankerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewManager(nil, Config{})
}
