package httpfront

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flakyBackend wraps a DemoBackend behind an availability switch so the
// stress test can take backends down and bring them back ("leave"/"join")
// while traffic is in flight, without tearing down listeners.
type flakyBackend struct {
	inner *DemoBackend
	up    atomic.Bool
}

func (f *flakyBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !f.up.Load() {
		http.Error(w, "backend down", http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// TestStressConcurrentTrafficWithChurn hammers the distributor from many
// goroutines while backends flap and Stats is polled concurrently. Run
// under -race it proves the routing state, locality maps, prefetch
// channel and counters are properly synchronized; the count assertions
// prove no request is dropped or double-counted under churn.
func TestStressConcurrentTrafficWithChurn(t *testing.T) {
	const (
		nBackends = 4
		nClients  = 8
		nRequests = 60
	)
	var flaky []*flakyBackend
	var cfg Config
	for i := 0; i < nBackends; i++ {
		f := &flakyBackend{inner: NewDemoBackend("b"+strconv.Itoa(i), testFiles, 1<<20, 0)}
		f.up.Store(true)
		flaky = append(flaky, f)
		srv := httptest.NewServer(f)
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Backends = append(cfg.Backends, u)
	}
	cfg.Miner = testMiner()
	cfg.Prefetch = true
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(d)
	t.Cleanup(front.Close)

	stop := make(chan struct{})
	var churners sync.WaitGroup

	// Churn: one goroutine repeatedly takes each backend down and up.
	churners.Add(1)
	go func() {
		defer churners.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b := flaky[i%len(flaky)]
			b.up.Store(false)
			time.Sleep(200 * time.Microsecond)
			b.up.Store(true)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Observer: poll Stats concurrently with routing updates.
	churners.Add(1)
	go func() {
		defer churners.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = d.Stats()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	paths := []string{"/a.html", "/a.gif", "/b.html", "/b.gif"}
	var issued atomic.Int64
	var clients sync.WaitGroup
	for c := 0; c < nClients; c++ {
		clients.Add(1)
		go func(id int) {
			defer clients.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			for i := 0; i < nRequests; i++ {
				resp, err := client.Get(front.URL + paths[(id+i)%len(paths)])
				if err != nil {
					t.Errorf("client %d: %v", id, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				issued.Add(1)
			}
		}(c)
	}
	clients.Wait()
	close(stop)
	churners.Wait()

	// Close while the prefetch loop may still be draining: the
	// channel handoff is lock-guarded, so this must be race-free too.
	d.Close()

	s := d.Stats()
	if issued.Load() != int64(nClients*nRequests) {
		t.Fatalf("issued = %d, want %d (a client aborted)", issued.Load(), nClients*nRequests)
	}
	if s.Requests != int64(nClients*nRequests) {
		t.Errorf("requests = %d, want %d (dropped or double-counted under churn)", s.Requests, nClients*nRequests)
	}
	if s.Dispatches == 0 {
		t.Error("no dispatches recorded")
	}
}
