package httpfront

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flakyBackend wraps a DemoBackend behind an availability switch so the
// stress test can take backends down and bring them back ("leave"/"join")
// while traffic is in flight, without tearing down listeners.
type flakyBackend struct {
	inner *DemoBackend
	up    atomic.Bool
}

func (f *flakyBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !f.up.Load() {
		http.Error(w, "backend down", http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// TestStressConcurrentTrafficWithChurn hammers the distributor from many
// goroutines while backends flap and Stats is polled concurrently. Run
// under -race it proves the routing state, locality maps, prefetch
// channel and counters are properly synchronized; the count assertions
// prove no request is dropped or double-counted under churn.
func TestStressConcurrentTrafficWithChurn(t *testing.T) {
	const (
		nBackends = 4
		nClients  = 8
		nRequests = 60
	)
	var flaky []*flakyBackend
	var cfg Config
	for i := 0; i < nBackends; i++ {
		f := &flakyBackend{inner: NewDemoBackend("b"+strconv.Itoa(i), testFiles, 1<<20, 0)}
		f.up.Store(true)
		flaky = append(flaky, f)
		srv := httptest.NewServer(f)
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Backends = append(cfg.Backends, u)
	}
	cfg.Miner = testMiner()
	cfg.Prefetch = true
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(d)
	t.Cleanup(front.Close)

	stop := make(chan struct{})
	var churners sync.WaitGroup

	// Churn: one goroutine repeatedly takes each backend down and up.
	churners.Add(1)
	go func() {
		defer churners.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b := flaky[i%len(flaky)]
			b.up.Store(false)
			time.Sleep(200 * time.Microsecond)
			b.up.Store(true)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Observer: poll Stats concurrently with routing updates.
	churners.Add(1)
	go func() {
		defer churners.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = d.Stats()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	paths := []string{"/a.html", "/a.gif", "/b.html", "/b.gif"}
	var issued atomic.Int64
	var clients sync.WaitGroup
	for c := 0; c < nClients; c++ {
		clients.Add(1)
		go func(id int) {
			defer clients.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			for i := 0; i < nRequests; i++ {
				resp, err := client.Get(front.URL + paths[(id+i)%len(paths)])
				if err != nil {
					t.Errorf("client %d: %v", id, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				issued.Add(1)
			}
		}(c)
	}
	clients.Wait()
	close(stop)
	churners.Wait()

	// Close while the prefetch loop may still be draining: the
	// channel handoff is lock-guarded, so this must be race-free too.
	d.Close()

	s := d.Stats()
	if issued.Load() != int64(nClients*nRequests) {
		t.Fatalf("issued = %d, want %d (a client aborted)", issued.Load(), nClients*nRequests)
	}
	if s.Requests != int64(nClients*nRequests) {
		t.Errorf("requests = %d, want %d (dropped or double-counted under churn)", s.Requests, nClients*nRequests)
	}
	if s.Dispatches == 0 {
		t.Error("no dispatches recorded")
	}
}

// recordingBackend wraps a DemoBackend and tallies what actually arrives
// on the wire, separating prefetch hints from demand traffic and
// checking the hint responses are 204 with no body.
type recordingBackend struct {
	inner       *DemoBackend
	demand      atomic.Int64
	prefetches  atomic.Int64
	badPrefetch atomic.Int64 // hint responses that had a status != 204 or a body
}

// bodyCounter counts bytes written through a ResponseWriter.
type bodyCounter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (b *bodyCounter) WriteHeader(code int) {
	b.status = code
	b.ResponseWriter.WriteHeader(code)
}

func (b *bodyCounter) Write(p []byte) (int, error) {
	n, err := b.ResponseWriter.Write(p)
	b.bytes += int64(n)
	return n, err
}

func (r *recordingBackend) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Header.Get(PrefetchHeader) == "" {
		r.demand.Add(1)
		r.inner.ServeHTTP(w, req)
		return
	}
	r.prefetches.Add(1)
	bc := &bodyCounter{ResponseWriter: w, status: http.StatusOK}
	r.inner.ServeHTTP(bc, req)
	if bc.status != http.StatusNoContent || bc.bytes != 0 {
		r.badPrefetch.Add(1)
	}
}

// TestStressPrefetchHintDelivery floods a PRORD front-end with
// concurrent sessions and verifies the prefetch-hint path end to end:
// every hint that reaches a backend was admitted by the front-end
// exactly once, hints answer 204 without a body, and hinted traffic
// never leaks into the demand-side accounting (distributor per-backend
// counts, backend Served counters, Observe callbacks, client latencies).
func TestStressPrefetchHintDelivery(t *testing.T) {
	const (
		nBackends = 3
		nClients  = 8
		nLoops    = 40
	)
	var recs []*recordingBackend
	var cfg Config
	for i := 0; i < nBackends; i++ {
		r := &recordingBackend{inner: NewDemoBackend("b"+strconv.Itoa(i), testFiles, 1<<20, 0)}
		recs = append(recs, r)
		srv := httptest.NewServer(r)
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Backends = append(cfg.Backends, u)
	}
	cfg.Miner = testMiner()
	cfg.Prefetch = true
	var observations atomic.Int64
	cfg.Observe = func(o Observation) {
		observations.Add(1)
		if o.Backend < 0 || o.Backend >= nBackends {
			t.Errorf("observation for backend %d", o.Backend)
		}
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(d)
	t.Cleanup(front.Close)

	// Browsing clients: each session walks pages (triggering navigation
	// and bundle hints) and their embedded objects.
	paths := []string{"/a.html", "/a.gif", "/b.html", "/b.gif"}
	var clients sync.WaitGroup
	for c := 0; c < nClients; c++ {
		clients.Add(1)
		go func(id int) {
			defer clients.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			for i := 0; i < nLoops; i++ {
				for _, p := range paths {
					resp, err := client.Get(front.URL + p)
					if err != nil {
						t.Errorf("client %d: %v", id, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.Header.Get(PrefetchHeader) != "" {
						t.Errorf("client %d saw a prefetch-marked response", id)
					}
				}
			}
		}(c)
	}
	clients.Wait()

	// The prefetcher runs behind a queue; wait until the receipt count
	// holds still before snapshotting, then close the distributor.
	received := func() int64 {
		var n int64
		for _, r := range recs {
			n += r.prefetches.Load()
		}
		return n
	}
	last := received()
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		time.Sleep(20 * time.Millisecond)
		cur := received()
		if cur == last {
			break
		}
		last = cur
	}
	d.Close()

	wantDemand := int64(nClients * nLoops * len(paths))
	st := d.Stats()
	if st.Requests != wantDemand {
		t.Errorf("distributor demand requests = %d, want %d", st.Requests, wantDemand)
	}
	if got := observations.Load(); got != wantDemand {
		t.Errorf("observe callbacks = %d, want %d (prefetches must not trigger them)", got, wantDemand)
	}

	var demandWire, perBackendSum, served, backendPrefetches int64
	for i, r := range recs {
		demandWire += r.demand.Load()
		if bad := r.badPrefetch.Load(); bad != 0 {
			t.Errorf("backend %d: %d prefetch responses were not bodyless 204s", i, bad)
		}
		// The wire-level view must agree with both sides' accounting:
		// distributor per-backend routing vs what actually arrived, and
		// the backend's own receipt counter.
		if i < len(st.PerBackend) && r.demand.Load() != st.PerBackend[i] {
			t.Errorf("backend %d: wire demand %d != distributor per-backend %d",
				i, r.demand.Load(), st.PerBackend[i])
		}
		bs := recs[i].inner.Stats()
		served += bs.Served
		backendPrefetches += bs.Prefetches
		if bs.Prefetches != r.prefetches.Load() {
			t.Errorf("backend %d: counted %d prefetches, wire saw %d", i, bs.Prefetches, r.prefetches.Load())
		}
	}
	for _, n := range st.PerBackend {
		perBackendSum += n
	}
	if demandWire != wantDemand || perBackendSum != wantDemand {
		t.Errorf("demand on the wire = %d, per-backend sum = %d, want %d", demandWire, perBackendSum, wantDemand)
	}
	if served != wantDemand {
		t.Errorf("backend Served total = %d, want %d (prefetches leaked into demand serving)", served, wantDemand)
	}
	// Each admitted hint targets exactly one backend and the queue only
	// drops (never duplicates): receipts can't exceed admissions.
	if backendPrefetches == 0 {
		t.Error("no prefetch hints delivered")
	}
	if backendPrefetches > st.Prefetches {
		t.Errorf("backends received %d prefetches, front-end admitted only %d (duplicated hints)",
			backendPrefetches, st.Prefetches)
	}
	// Queue drops are counted, never silent: delivered + dropped can't
	// exceed admissions either (hints in flight at Close account for any
	// remainder).
	if backendPrefetches+st.PrefetchHintsDropped > st.Prefetches {
		t.Errorf("delivered %d + dropped %d exceeds admitted %d hints",
			backendPrefetches, st.PrefetchHintsDropped, st.Prefetches)
	}
}
