package httpfront

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"

	"prord/internal/health"
	"prord/internal/overload"
	"prord/internal/trace"
)

// GrayConfig enables the gray-failure resilience layer on the live
// front-end: a relative latency-outlier detector that soft-excludes
// degraded backends (ejection plus progressive session rebinding),
// hedged backup requests for idempotent static content, and
// tier-derived per-request deadline budgets. The detection and hedging
// machinery is the same code the simulator runs (cluster.GrayConfig);
// this layer adds the live substrate: wall-clock ticking, cancelable
// proxy legs and the winner-takes-the-writer race.
type GrayConfig struct {
	// Detector tunes the relative latency-outlier detector; zero fields
	// take the health package defaults.
	Detector health.DetectorConfig
	// Hedge enables hedged backup requests: when an idempotent (GET or
	// HEAD) static request is still unanswered after the detector's
	// pooled-p95 hedge delay, one backup goes to the best non-degraded
	// backend holding the file and the first committed response wins;
	// the loser's transfer is canceled. Hedging stands down at
	// Saturated tier and above — duplicating work under overload makes
	// the overload worse.
	Hedge bool
	// HedgeCap bounds outstanding hedged requests per backend; 0
	// defaults to 2.
	HedgeCap int
	// Deadline is the per-request deadline budget at Normal and
	// Elevated tiers; it halves at Saturated and quarters at Critical,
	// spending less of the cluster on any one request exactly when
	// capacity is scarce. One budget covers the whole request — every
	// failover attempt and any hedged backup. 0 disables deadlines.
	Deadline time.Duration
}

// withDefaults fills zero fields.
func (g GrayConfig) withDefaults() GrayConfig {
	g.Detector = g.Detector.WithDefaults()
	if g.HedgeCap == 0 {
		g.HedgeCap = 2
	}
	return g
}

// GrayStats are the resilience layer's live counters, mirroring the
// simulator's GrayResult for the cluster stats endpoint.
type GrayStats struct {
	Ejections    int64 `json:"ejections"`
	Recoveries   int64 `json:"recoveries"`
	GrayRebinds  int64 `json:"gray_rebinds"`
	HedgesFired  int64 `json:"hedges_fired"`
	HedgeWins    int64 `json:"hedge_wins"`
	HedgeCancels int64 `json:"hedge_cancels"`
	// Degraded lists the currently ejected backends.
	Degraded []int `json:"degraded,omitempty"`
}

// Gray returns the resilience layer's counters, or nil when the layer
// is disabled.
func (d *Distributor) Gray() *GrayStats {
	if d.detector == nil {
		return nil
	}
	cs := d.core.Stats()
	g := &GrayStats{
		Ejections:    d.detector.Ejections(),
		Recoveries:   d.detector.Recoveries(),
		GrayRebinds:  cs.GrayRebinds,
		HedgesFired:  cs.HedgesFired,
		HedgeWins:    cs.HedgeWins,
		HedgeCancels: d.hedgeCancels.Load(),
	}
	for i, b := range d.detector.Snapshot() {
		if b.Degraded {
			g.Degraded = append(g.Degraded, i)
		}
	}
	return g
}

// observeLatency feeds the detector one completed proxied attempt.
func (d *Distributor) observeLatency(server int, lat time.Duration) {
	if d.detector != nil {
		d.detector.Observe(server, lat, time.Now())
	}
}

// grayTickLoop advances the detector's dwell and probation clocks while
// traffic is sparse, so ejected backends still readmit on schedule.
func (d *Distributor) grayTickLoop(stop <-chan struct{}, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			d.detector.Tick(time.Now())
		}
	}
}

// scaledDeadline derives the effective per-request budget from the
// overload tier: full at Normal and Elevated, half at Saturated, a
// quarter at Critical.
func scaledDeadline(base time.Duration, tier overload.Tier) time.Duration {
	switch {
	case base <= 0:
		return 0
	case tier >= overload.Critical:
		return base / 4
	case tier >= overload.Saturated:
		return base / 2
	}
	return base
}

// deadlineBudget returns the current request deadline budget (0 when
// deadlines are disabled).
func (d *Distributor) deadlineBudget() time.Duration {
	return scaledDeadline(d.gray.Deadline, d.core.Tier())
}

// hedgeable reports whether a path is worth arming a hedge for right
// now: the layer is on, the content is static (idempotent to duplicate)
// and the detector has published a hedge delay.
func (d *Distributor) hedgeable(path string) bool {
	if d.detector == nil || !d.gray.Hedge {
		return false
	}
	if trace.IsDynamicPath(path) {
		return false
	}
	return d.detector.HedgeDelay() > 0
}

// proxyTo runs one reverse-proxy attempt, absorbing the ErrAbortHandler
// panic net/http's ReverseProxy raises when a response copy is cut off
// mid-stream (deadline-budget expiry, hedge-race cancellation, client
// disconnect). The request's bookings must be released by the caller no
// matter how the copy ended, so the abort cannot be allowed to unwind
// ServeHTTP.
func (d *Distributor) proxyTo(server int, w http.ResponseWriter, r *http.Request) {
	defer func() {
		if e := recover(); e != nil && e != http.ErrAbortHandler {
			panic(e)
		}
	}()
	d.proxies[server].ServeHTTP(w, r)
}

// raceWriter arbitrates a hedged pair racing to answer one client:
// exactly one leg claims the underlying writer, the other discards.
// Leaf lock (lock class raceWriter.mu): nothing is called while it is
// held.
type raceWriter struct {
	dst http.ResponseWriter

	mu    sync.Mutex
	owner int // 0 unclaimed; else the winning leg's id
}

// claim takes ownership for leg id, reporting whether it won.
func (rw *raceWriter) claim(id int) bool {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.owner == 0 {
		rw.owner = id
	}
	return rw.owner == id
}

// leg is one racer's http.ResponseWriter: it buffers headers until its
// first success commit, claims the client writer on commit, and
// discards everything once the other leg has claimed or its own
// response failed. A leg is only ever used from its own goroutine; the
// raceWriter is the sole shared state.
type leg struct {
	race        *raceWriter
	id          int
	ctx         context.Context
	cancelSelf  context.CancelFunc
	cancelOther func()
	header      http.Header
	status      int
	failed      bool // genuine backend failure (5xx with a live context)
	won         bool // this leg owns the client writer
	lost        bool // the other leg owns it (or our transfer was canceled)
}

func newLeg(race *raceWriter, id int, ctx context.Context, cancelSelf context.CancelFunc, cancelOther func()) *leg {
	return &leg{
		race: race, id: id, ctx: ctx,
		cancelSelf: cancelSelf, cancelOther: cancelOther,
		header: make(http.Header), status: http.StatusOK,
	}
}

func (l *leg) Header() http.Header {
	if l.won {
		return l.race.dst.Header()
	}
	return l.header
}

// tryClaim commits this leg's response head to the client writer if the
// race is still open; on loss the leg's context is canceled so the
// proxy stops copying a body nobody will read.
func (l *leg) tryClaim(code int) {
	if !l.race.claim(l.id) {
		l.lost = true
		l.cancelSelf()
		return
	}
	dst := l.race.dst.Header()
	for k, vv := range l.header {
		dst[k] = vv
	}
	l.won = true
	l.status = code
	l.race.dst.WriteHeader(code)
	l.cancelOther()
}

func (l *leg) WriteHeader(code int) {
	if l.won || l.lost || l.failed {
		return
	}
	if code >= http.StatusInternalServerError {
		if l.ctx.Err() == context.Canceled {
			// Not a backend failure: our transfer was canceled because
			// the other leg already delivered (a deadline expiry reports
			// DeadlineExceeded and still counts as failed).
			l.lost = true
			return
		}
		// A failed leg never claims the client: the race stays open for
		// the other leg, and the caller replays the failure through the
		// ordinary retry path if both legs lose.
		l.status = code
		l.failed = true
		l.cancelSelf()
		return
	}
	l.tryClaim(code)
}

func (l *leg) Write(p []byte) (int, error) {
	if l.failed || l.lost {
		return len(p), nil
	}
	if !l.won {
		l.tryClaim(http.StatusOK)
		if !l.won {
			return len(p), nil
		}
	}
	return l.race.dst.Write(p)
}

// Flush implements http.Flusher for the winning leg so streamed
// responses keep flowing through the race.
func (l *leg) Flush() {
	if !l.won {
		return
	}
	if f, ok := l.race.dst.(http.Flusher); ok {
		f.Flush()
	}
}

// hedgedAttempt is the bookkeeping for one primary attempt with an
// armed hedge timer. Its mutex is a leaf lock (lock class
// hedgedAttempt.mu) guarding the primary-returned / backup-launched
// handshake; the proxy work itself runs outside it.
type hedgedAttempt struct {
	race raceWriter

	mu          sync.Mutex
	primaryDone bool
	launched    bool
	cancelP     context.CancelFunc
	cancelB     context.CancelFunc

	// done closes when the backup goroutine finishes (only ever closed
	// after launched is set; the primary waits on it in that case).
	done chan struct{}

	// Written by the backup goroutine before close(done); read by the
	// primary goroutine after <-done.
	fired     bool
	target    int
	backupWon bool
}

func (h *hedgedAttempt) cancelBackup() {
	h.mu.Lock()
	f := h.cancelB
	h.mu.Unlock()
	if f != nil {
		f()
	}
}

func (h *hedgedAttempt) cancelPrimary() {
	h.mu.Lock()
	f := h.cancelP
	h.mu.Unlock()
	if f != nil {
		f()
	}
}

// proxyHedged runs the first attempt of an idempotent request with a
// hedged backup armed: if the primary has not answered after the
// detector's pooled-p95 hedge delay, one backup goes to the best
// non-degraded holder of the file and the first committed response
// wins; the loser's transfer is canceled without goroutine or
// connection leaks (both legs are context-bound and the caller waits
// for both to return). It returns the primary leg's status plus
// whether (and where) a backup delivered instead. When neither leg
// delivered, the recorder is untouched and the caller replays the
// failure into the ordinary retry machinery.
func (d *Distributor) proxyHedged(rec *statusRecorder, r *http.Request, path string, primary int) (status int, hedgeWon bool, winner int) {
	h := &hedgedAttempt{done: make(chan struct{})}
	h.race.dst = rec
	ctxP, cancelP := context.WithCancel(r.Context())
	defer cancelP()
	h.cancelP = cancelP
	prim := newLeg(&h.race, 1, ctxP, cancelP, h.cancelBackup)
	prim.header.Set(BackendHeader, strconv.Itoa(primary))
	timer := time.AfterFunc(d.detector.HedgeDelay(), func() { d.fireHedge(h, r, path, primary) })
	d.proxyTo(primary, prim, r.WithContext(ctxP))
	h.mu.Lock()
	h.primaryDone = true
	launched := h.launched
	h.mu.Unlock()
	timer.Stop()
	if launched {
		<-h.done
	}
	status = prim.status
	if h.fired {
		if h.backupWon {
			return status, true, h.target
		}
		if !prim.failed {
			// The primary answered first: the backup was moot.
			d.hedgeCancels.Add(1)
		}
	}
	return status, false, primary
}

// fireHedge is the hedge timer's callback: book and run the backup leg.
// It runs on the timer goroutine; once it marks itself launched, the
// primary goroutine waits for h.done, so the backup can never outlive
// the request.
func (d *Distributor) fireHedge(h *hedgedAttempt, r *http.Request, path string, primary int) {
	h.mu.Lock()
	if h.primaryDone {
		h.mu.Unlock()
		return
	}
	h.launched = true
	h.mu.Unlock()
	defer close(h.done)
	// Mirror the simulator's stand-down checks at fire time.
	if d.core.Tier() >= overload.Saturated {
		return
	}
	target, ok := d.core.HedgeTarget(path, primary, time.Now())
	if !ok {
		return
	}
	if !d.core.TryBeginHedge(target, path, d.gray.HedgeCap) {
		return
	}
	h.fired, h.target = true, target
	ctxB, cancelB := context.WithCancel(r.Context())
	h.mu.Lock()
	h.cancelB = cancelB
	h.mu.Unlock()
	defer cancelB()
	backup := newLeg(&h.race, 2, ctxB, cancelB, h.cancelPrimary)
	backup.header.Set(BackendHeader, strconv.Itoa(target))
	d.beginAttempt(target)
	start := time.Now()
	d.proxyTo(target, backup, r.Clone(ctxB))
	d.endAttempt(target, backup.failed)
	d.core.FinishHedge(target, path, backup.failed, backup.won)
	if backup.won {
		d.observeLatency(target, time.Since(start))
		h.backupWon = true
	}
}
