package httpfront

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"
	"time"

	"prord/internal/mining"
	"prord/internal/policy"
	"prord/internal/trace"
)

// testFiles is a tiny site: two pages with one embedded object each.
var testFiles = map[string]int64{
	"/a.html": 400,
	"/a.gif":  100,
	"/b.html": 300,
	"/b.gif":  120,
}

// testMiner trains a miner that knows a.html -> b.html navigation and the
// page->object bundles.
func testMiner() *mining.Miner {
	tr := &trace.Trace{Name: "t", Files: testFiles}
	add := func(sess int, path, parent string) {
		tr.Requests = append(tr.Requests, trace.Request{
			Session: sess, Client: "c", Path: path, Size: testFiles[path],
			Embedded: parent != "", Parent: parent, Group: -1,
		})
	}
	for s := 0; s < 5; s++ {
		add(s, "/a.html", "")
		add(s, "/a.gif", "/a.html")
		add(s, "/b.html", "")
		add(s, "/b.gif", "/b.html")
	}
	return mining.Mine(tr, mining.Options{})
}

// testCluster spins up n demo backends plus a distributor in front.
func testCluster(t *testing.T, n int, cfg Config) (*Distributor, *httptest.Server, []*DemoBackend) {
	t.Helper()
	var backends []*DemoBackend
	for i := 0; i < n; i++ {
		b := NewDemoBackend("b"+strconv.Itoa(i), testFiles, 1<<20, 0)
		backends = append(backends, b)
		srv := httptest.NewServer(b)
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Backends = append(cfg.Backends, u)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	front := httptest.NewServer(d)
	t.Cleanup(front.Close)
	return d, front, backends
}

// get issues a GET over a shared client (keep-alive => same session).
func get(t *testing.T, client *http.Client, base, path string) *http.Response {
	t.Helper()
	resp, err := client.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no backends should fail")
	}
	u, _ := url.Parse("http://localhost:1")
	if _, err := New(Config{Backends: []*url.URL{u}, Prefetch: true}); err == nil {
		t.Fatal("Prefetch without Miner should fail")
	}
}

func TestProxyServesContent(t *testing.T) {
	_, front, _ := testCluster(t, 2, Config{Miner: testMiner()})
	client := front.Client()
	resp := get(t, client, front.URL, "/a.html")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.ContentLength != 400 {
		t.Fatalf("ContentLength = %d, want 400", resp.ContentLength)
	}
	if resp.Header.Get(BackendHeader) == "" {
		t.Fatal("missing backend header")
	}
	resp404 := get(t, client, front.URL, "/nope.html")
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("missing file status = %d", resp404.StatusCode)
	}
}

func TestEmbeddedObjectFollowsPage(t *testing.T) {
	d, front, _ := testCluster(t, 3, Config{Miner: testMiner()})
	client := front.Client()
	page := get(t, client, front.URL, "/a.html")
	obj := get(t, client, front.URL, "/a.gif")
	if page.Header.Get(BackendHeader) != obj.Header.Get(BackendHeader) {
		t.Fatalf("embedded object served by %s, page by %s",
			obj.Header.Get(BackendHeader), page.Header.Get(BackendHeader))
	}
	s := d.Stats()
	if s.DirectForwards == 0 {
		t.Fatalf("embedded object should be a direct forward: %+v", s)
	}
}

func TestLocalityRouting(t *testing.T) {
	// Two different keep-alive clients requesting the same page should
	// land on the same backend under PRORD (locality via dispatcher map).
	_, front, _ := testCluster(t, 4, Config{Miner: testMiner()})
	c1 := &http.Client{}
	c2 := &http.Client{}
	defer c1.CloseIdleConnections()
	defer c2.CloseIdleConnections()
	r1 := get(t, c1, front.URL, "/b.html")
	r2 := get(t, c2, front.URL, "/b.html")
	if r1.Header.Get(BackendHeader) != r2.Header.Get(BackendHeader) {
		t.Fatalf("same file routed to %s and %s",
			r1.Header.Get(BackendHeader), r2.Header.Get(BackendHeader))
	}
}

func TestWRRRoundRobinOverClients(t *testing.T) {
	_, front, _ := testCluster(t, 3, Config{Policy: policy.NewWRR(3)})
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		c := &http.Client{}
		r := get(t, c, front.URL, "/a.html")
		seen[r.Header.Get(BackendHeader)] = true
		c.CloseIdleConnections()
	}
	if len(seen) != 3 {
		t.Fatalf("3 fresh connections should hit 3 backends, got %v", seen)
	}
}

func TestPrefetchHintReachesBackend(t *testing.T) {
	d, front, backends := testCluster(t, 2, Config{Miner: testMiner(), Prefetch: true})
	client := front.Client()
	// Visiting a.html should predict b.html (trained 5x) and hint it.
	get(t, client, front.URL, "/a.html")
	deadline := time.Now().Add(2 * time.Second)
	for {
		var prefetches int64
		for _, b := range backends {
			prefetches += b.Stats().Prefetches
		}
		if prefetches > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no backend received a prefetch hint; stats %+v", d.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if d.Stats().Prefetches == 0 {
		t.Fatal("distributor did not count the prefetch")
	}
}

func TestBackendCacheWarming(t *testing.T) {
	b := NewDemoBackend("x", testFiles, 1<<20, 0)
	srv := httptest.NewServer(b)
	defer srv.Close()

	// Prefetch then demand: the demand request must be a hit.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/b.html", nil)
	req.Header.Set(PrefetchHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("prefetch status = %d, want 204", resp.StatusCode)
	}
	resp2, err := http.Get(srv.URL + "/b.html")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get(CacheStateHeader); got != "hit" {
		t.Fatalf("after prefetch, cache state = %q, want hit", got)
	}
	st := b.Stats()
	if st.Prefetches != 1 || st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBackendMissThenHit(t *testing.T) {
	b := NewDemoBackend("x", testFiles, 1<<20, 0)
	srv := httptest.NewServer(b)
	defer srv.Close()
	first, _ := http.Get(srv.URL + "/a.html")
	io.Copy(io.Discard, first.Body)
	first.Body.Close()
	second, _ := http.Get(srv.URL + "/a.html")
	io.Copy(io.Discard, second.Body)
	second.Body.Close()
	if first.Header.Get(CacheStateHeader) != "miss" || second.Header.Get(CacheStateHeader) != "hit" {
		t.Fatalf("cache states = %q, %q, want miss, hit",
			first.Header.Get(CacheStateHeader), second.Header.Get(CacheStateHeader))
	}
}

func TestStatsHandler(t *testing.T) {
	d, front, _ := testCluster(t, 2, Config{Miner: testMiner()})
	client := front.Client()
	get(t, client, front.URL, "/a.html")
	srv := httptest.NewServer(StatsHandler(d))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Requests == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentTraffic(t *testing.T) {
	d, front, _ := testCluster(t, 4, Config{Miner: testMiner(), Prefetch: true})
	done := make(chan error, 8)
	paths := []string{"/a.html", "/a.gif", "/b.html", "/b.gif"}
	for g := 0; g < 8; g++ {
		go func() {
			client := &http.Client{}
			defer client.CloseIdleConnections()
			for i := 0; i < 50; i++ {
				resp, err := client.Get(front.URL + paths[i%len(paths)])
				if err != nil {
					done <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.Requests != 8*50 {
		t.Fatalf("requests = %d, want 400", s.Requests)
	}
	if s.Errors != 0 {
		t.Fatalf("errors = %d", s.Errors)
	}
}

func TestSessionPressureValve(t *testing.T) {
	// With MaxSessions 2, a third distinct client must reset the table
	// rather than grow it without bound.
	d, front, _ := testCluster(t, 2, Config{Miner: testMiner(), MaxSessions: 2})
	for i := 0; i < 5; i++ {
		c := &http.Client{}
		get(t, c, front.URL, "/a.html")
		c.CloseIdleConnections()
	}
	if n := d.Core().SessionCount(); n > 2 {
		t.Fatalf("session table grew to %d despite MaxSessions=2", n)
	}
	if d.Stats().Requests != 5 {
		t.Fatalf("requests = %d, want 5", d.Stats().Requests)
	}
}

func TestBackendErrorCounted(t *testing.T) {
	// One healthy backend and one that always fails with 500.
	healthy := NewDemoBackend("ok", testFiles, 1<<20, 0)
	hSrv := httptest.NewServer(healthy)
	defer hSrv.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	hURL, _ := url.Parse(hSrv.URL)
	bURL, _ := url.Parse(bad.URL)

	d, err := New(Config{
		Backends: []*url.URL{bURL, hURL},
		Policy:   policy.NewWRR(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	front := httptest.NewServer(d)
	defer front.Close()

	// First fresh connection lands on backend 0 (the bad one) under WRR;
	// the failover retry must mask the 500 with backend 1's response.
	c1 := &http.Client{}
	r1 := get(t, c1, front.URL, "/a.html")
	c1.CloseIdleConnections()
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("failover should mask the 500, got %d", r1.StatusCode)
	}
	if got := r1.Header.Get(BackendHeader); got != "1" {
		t.Fatalf("retry served by backend %q, want 1", got)
	}
	st := d.Stats()
	if st.Errors == 0 {
		t.Fatal("the failed attempt should still be counted as an error")
	}
	if st.Failovers != 1 || st.Retries != 1 {
		t.Fatalf("Failovers/Retries = %d/%d, want 1/1", st.Failovers, st.Retries)
	}
	// The failed path must not be remembered as resident on backend 0.
	if d.Core().LocalityContains(0, "/a.html") {
		t.Fatal("failed response left a stale locality entry")
	}

	// With retries disabled the failure reaches the client untouched.
	d2, err := New(Config{
		Backends: []*url.URL{bURL, hURL},
		Policy:   policy.NewWRR(2),
		Retries:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	front2 := httptest.NewServer(d2)
	defer front2.Close()
	c2 := &http.Client{}
	r2 := get(t, c2, front2.URL, "/a.html")
	c2.CloseIdleConnections()
	if r2.StatusCode != http.StatusInternalServerError {
		t.Fatalf("with Retries=-1 expected the raw 500, got %d", r2.StatusCode)
	}
}

func TestLocalityEntriesBound(t *testing.T) {
	d, front, _ := testCluster(t, 1, Config{Miner: testMiner(), LocalityEntries: 2})
	client := front.Client()
	for _, p := range []string{"/a.html", "/a.gif", "/b.html", "/b.gif"} {
		get(t, client, front.URL, p)
	}
	if n := d.Core().LocalityLen(0); n > 2 {
		t.Fatalf("locality map grew to %d entries despite bound 2", n)
	}
}

func TestDistributorDefaultPolicyIsPRORD(t *testing.T) {
	u, _ := url.Parse("http://127.0.0.1:1")
	d, err := New(Config{Backends: []*url.URL{u}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.cfg.Policy.Name() != "PRORD" {
		t.Fatalf("default policy = %s, want PRORD", d.cfg.Policy.Name())
	}
}
