package httpfront

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prord/internal/health"
	"prord/internal/policy"
)

// killableBackend wraps a DemoBackend with a kill switch and a demand
// arrival counter: the live analogue of the simulator's fail-stop crash.
// While down it answers everything with 503. Probes and prefetch hints
// are not counted as demand.
type killableBackend struct {
	inner  *DemoBackend
	up     atomic.Bool
	demand atomic.Int64
}

func newKillableBackend(name string) *killableBackend {
	k := &killableBackend{inner: NewDemoBackend(name, testFiles, 1<<20, 0)}
	k.up.Store(true)
	return k
}

func (k *killableBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(ProbeHeader) == "" && r.Header.Get(PrefetchHeader) == "" {
		k.demand.Add(1)
	}
	if !k.up.Load() {
		http.Error(w, "killed", http.StatusServiceUnavailable)
		return
	}
	k.inner.ServeHTTP(w, r)
}

// killableCluster is testCluster over killable backends.
func killableCluster(t *testing.T, n int, cfg Config) (*Distributor, *httptest.Server, []*killableBackend) {
	t.Helper()
	var ks []*killableBackend
	for i := 0; i < n; i++ {
		k := newKillableBackend("b" + strconv.Itoa(i))
		ks = append(ks, k)
		srv := httptest.NewServer(k)
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Backends = append(cfg.Backends, u)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	front := httptest.NewServer(d)
	t.Cleanup(front.Close)
	return d, front, ks
}

// TestFailoverMasksBackendCrash is the live mirror of the simulator's
// TestBackendCrashCausesFailovers: killing one of three backends mid-run
// must stay invisible to clients (at most one retry per request), count
// failovers, and — once the breaker trips — keep all demand off the
// crashed backend.
func TestFailoverMasksBackendCrash(t *testing.T) {
	d, front, ks := killableCluster(t, 3, Config{
		// A long backoff and no probing keep the breaker open for the
		// whole test, so the no-demand-while-open assertion is exact.
		Health: health.Config{Threshold: 2, Backoff: time.Hour},
	})

	paths := []string{"/a.html", "/a.gif", "/b.html", "/b.gif"}
	browse := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			c := &http.Client{}
			resp := get(t, c, front.URL, paths[i%len(paths)])
			if resp.StatusCode >= http.StatusInternalServerError {
				t.Fatalf("client saw %d for %s after failover", resp.StatusCode, paths[i%len(paths)])
			}
			c.CloseIdleConnections()
		}
	}

	browse(12) // warm: all three backends healthy
	if st := d.Stats(); st.Failovers != 0 || st.Errors != 0 {
		t.Fatalf("healthy phase produced failovers/errors: %+v", st)
	}

	ks[0].up.Store(false) // fail-stop crash of backend 0
	browse(30)

	st := d.Stats()
	if st.Failovers == 0 {
		t.Fatal("no failovers counted after the crash")
	}
	if st.Retries < st.Failovers {
		t.Fatalf("Retries %d < Failovers %d", st.Retries, st.Failovers)
	}
	h := d.Health()
	if h[0].State != "open" {
		t.Fatalf("crashed backend's breaker is %q, want open (health: %+v)", h[0].State, h)
	}
	if h[0].Trips == 0 || h[0].ConsecutiveFailures < 2 {
		t.Fatalf("breaker snapshot not tracking failures: %+v", h[0])
	}
	if localityLen := d.Core().LocalityLen(0); localityLen != 0 {
		t.Fatalf("tripped backend still has %d locality entries; trip must invalidate them", localityLen)
	}

	// While the breaker is open, not a single demand request may reach
	// the crashed backend.
	frozen := ks[0].demand.Load()
	browse(30)
	if got := ks[0].demand.Load(); got != frozen {
		t.Fatalf("crashed backend received %d demand requests while its breaker was open", got-frozen)
	}
	if st := d.Stats(); st.Requests != 72 {
		t.Fatalf("Requests = %d, want 72 (retries must not inflate the request count)", st.Requests)
	}
}

// TestProbeRecoversBackend checks the active-probe path: with a backoff
// far longer than the test, recovery can only come from a probe closing
// the breaker, after which new sessions route to the backend again.
func TestProbeRecoversBackend(t *testing.T) {
	d, front, ks := killableCluster(t, 2, Config{
		Policy:        policy.NewWRR(2),
		Health:        health.Config{Threshold: 1, Backoff: time.Hour},
		ProbeInterval: 5 * time.Millisecond,
	})

	ks[0].up.Store(false)
	c := &http.Client{}
	// WRR sends the first fresh connection to backend 0: this trips its
	// threshold-1 breaker and fails over to backend 1.
	if resp := get(t, c, front.URL, "/a.html"); resp.StatusCode != http.StatusOK {
		t.Fatalf("failover did not mask the crash: %d", resp.StatusCode)
	}
	c.CloseIdleConnections()
	if h := d.Health(); h[0].State != "open" {
		t.Fatalf("breaker state = %q, want open", h[0].State)
	}

	ks[0].up.Store(true) // backend recovers
	deadline := time.Now().Add(5 * time.Second)
	for d.Health()[0].State != "closed" {
		if time.Now().After(deadline) {
			t.Fatalf("probe never closed the breaker: %+v", d.Health())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := d.Health()[0].Probes; got == 0 {
		t.Fatal("recovery without any probe counted")
	}

	// New sessions must reach the recovered backend again.
	before := ks[0].demand.Load()
	for i := 0; i < 10 && ks[0].demand.Load() == before; i++ {
		cc := &http.Client{}
		get(t, cc, front.URL, "/b.html")
		cc.CloseIdleConnections()
	}
	if ks[0].demand.Load() == before {
		t.Fatal("recovered backend never saw demand again")
	}
}

// TestFailoverBookkeepingUnderChurn hammers a flapping cluster with
// concurrent clients (run under -race in CI): loads must never go
// negative, and when the dust settles every load and in-flight entry
// must be fully drained and session active counts zero.
func TestFailoverBookkeepingUnderChurn(t *testing.T) {
	d, front, ks := killableCluster(t, 3, Config{
		Miner:         testMiner(),
		Prefetch:      true,
		Health:        health.Config{Threshold: 2, Backoff: 30 * time.Millisecond},
		ProbeInterval: 5 * time.Millisecond,
	})

	stopInvariant := make(chan struct{})
	var invariantErr atomic.Value
	go func() {
		for {
			select {
			case <-stopInvariant:
				return
			default:
			}
			for i, l := range d.Core().Loads() {
				if l < 0 {
					invariantErr.Store("negative load on backend " + strconv.Itoa(i))
				}
			}
			if _, _, problem := d.Core().SessionCheck(); problem != "" {
				invariantErr.Store(problem)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	stopFlip := make(chan struct{})
	var flip sync.WaitGroup
	flip.Add(1)
	go func() {
		defer flip.Done()
		for i := 0; ; i++ {
			select {
			case <-stopFlip:
				return
			default:
			}
			k := ks[i%len(ks)]
			k.up.Store(false)
			time.Sleep(5 * time.Millisecond)
			k.up.Store(true)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const workers, perWorker = 6, 30
	paths := []string{"/a.html", "/a.gif", "/b.html", "/b.gif"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			for i := 0; i < perWorker; i++ {
				resp, err := client.Get(front.URL + paths[(w+i)%len(paths)])
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(stopFlip)
	flip.Wait()
	for _, k := range ks {
		k.up.Store(true)
	}
	close(stopInvariant)
	if msg := invariantErr.Load(); msg != nil {
		t.Fatal(msg)
	}

	// Every request has returned, so the routing state must be drained.
	deadline := time.Now().Add(2 * time.Second)
	for {
		drained := d.Core().InFlightFiles() == 0
		for _, l := range d.Core().Loads() {
			if l != 0 {
				drained = false
			}
		}
		if _, busy, _ := d.Core().SessionCheck(); busy != 0 {
			drained = false
		}
		if drained {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("routing state not drained: loads=%v inflight=%d",
				d.Core().Loads(), d.Core().InFlightFiles())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := d.Stats(); st.Requests != workers*perWorker {
		t.Fatalf("Requests = %d, want %d", st.Requests, workers*perWorker)
	}
}

// TestHandoffsExcludeFirstAssignment: binding a fresh session to its
// first backend is not a handoff; repeated requests on one connection
// must leave the counter at zero.
func TestHandoffsExcludeFirstAssignment(t *testing.T) {
	d, front, _ := testCluster(t, 2, Config{})
	client := &http.Client{}
	defer client.CloseIdleConnections()
	for i := 0; i < 3; i++ {
		get(t, client, front.URL, "/a.html")
	}
	if st := d.Stats(); st.Handoffs != 0 {
		t.Fatalf("Handoffs = %d, want 0 (first assignment and stable routing)", st.Handoffs)
	}
}

// TestSessionEvictionKeepsActiveSessions: the MaxSessions valve may only
// evict idle sessions — one with a request in flight keeps its server
// binding — and the byID index must stay consistent with the table.
func TestSessionEvictionKeepsActiveSessions(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			<-release
		}
		io.WriteString(w, "ok")
	}))
	defer slow.Close()
	u, err := url.Parse(slow.URL)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Backends: []*url.URL{u}, MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	front := httptest.NewServer(d)
	defer front.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c := &http.Client{}
		defer c.CloseIdleConnections()
		resp, err := c.Get(front.URL + "/slow")
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	// Wait until the slow request is in flight.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if d.Core().Loads()[0] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	// Five more distinct sessions force the valve repeatedly.
	for i := 0; i < 5; i++ {
		c := &http.Client{}
		get(t, c, front.URL, "/fast")
		c.CloseIdleConnections()
	}

	total, busy, problem := d.Core().SessionCheck()
	if busy != 1 {
		t.Fatalf("busy sessions = %d, want 1 (the in-flight session was evicted or lost its binding)", busy)
	}
	if total > 3 {
		t.Fatalf("session table grew to %d; idle eviction should keep it near MaxSessions", total)
	}
	if problem != "" {
		t.Fatalf("session table invariant violated: %s", problem)
	}
	close(release)
	<-done
}

// TestStatusRecorderForwardsFlush: a backend that flushes mid-response
// must have its first chunk reach the client before the response ends,
// which requires the front-end's recorder to forward Flush.
func TestStatusRecorderForwardsFlush(t *testing.T) {
	release := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "first\n")
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-release
		io.WriteString(w, "second\n")
	}))
	defer backend.Close()
	u, err := url.Parse(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Backends: []*url.URL{u}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	front := httptest.NewServer(d)
	defer front.Close()

	resp, err := front.Client().Get(front.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := make(chan string, 1)
	go func() {
		line, _ := bufio.NewReader(resp.Body).ReadString('\n')
		lines <- line
	}()
	select {
	case line := <-lines:
		if line != "first\n" {
			t.Fatalf("first flushed chunk = %q", line)
		}
	case <-time.After(2 * time.Second):
		close(release)
		t.Fatal("flushed chunk never reached the client: Flush is not forwarded")
	}
	close(release)
	io.Copy(io.Discard, resp.Body)
}
