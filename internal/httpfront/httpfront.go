// Package httpfront is a working HTTP/1.1 front-end distributor driven
// by the shared PRORD decision core (internal/dispatch): a reverse proxy
// that routes each request to one of a set of backend servers using WRR,
// LARD or PRORD semantics, classifies embedded objects against mined
// bundles, and issues prefetch hints to backends for predicted next
// pages. The core makes every routing decision — the same code the
// discrete-event simulator runs — while this package owns the live
// substrate: reverse proxies, circuit breakers, health probes, the
// prefetch-hint channel and the wall clock.
//
// TCP handoff needs kernel support the paper assumes; the user-space
// equivalent is reverse proxying, which this package uses. The
// dispatcher's locality knowledge is approximated at the front-end: the
// core runs in optimistic mode, assuming a backend holds a file after
// being routed (or asked to prefetch) it recently.
package httpfront

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prord/internal/autoscale"
	"prord/internal/dispatch"
	"prord/internal/health"
	"prord/internal/mining"
	"prord/internal/overload"
	"prord/internal/policy"
	"prord/internal/randutil"
	"prord/internal/trace"
)

// PrefetchHeader marks a front-end-initiated prefetch request; backends
// should warm their caches and reply without a body when they see it.
const PrefetchHeader = "X-Prord-Prefetch"

// BackendHeader reports which backend served a proxied response.
const BackendHeader = "X-Prord-Backend"

// ProbeHeader marks a front-end health probe; backends should answer
// cheaply and without side effects when they see it.
const ProbeHeader = "X-Prord-Probe"

// ShedHeader marks a 503 as Critical-tier admission control shedding
// the request (as opposed to a genuine failure): the client should back
// off per Retry-After and retry, nothing is wrong with its request.
const ShedHeader = "X-Prord-Shed"

// Config assembles a Distributor.
type Config struct {
	// Backends are the backend server base URLs. At least one.
	Backends []*url.URL
	// Policy routes requests; nil defaults to PRORD.
	Policy policy.Policy
	// Miner supplies bundles and the navigation model; optional. Without
	// it, embedded-object classification falls back to path extensions
	// and prefetching is disabled.
	Miner *mining.Miner
	// Prefetch enables navigation prefetch hints to backends. Needs Miner.
	Prefetch bool
	// MiningRefreshEvery batches online mining: navigation observations
	// buffer in the core's incremental updater and fold into a fresh
	// decision snapshot once this many accumulate (the scale tick also
	// folds whatever is pending, so partial batches are not stranded).
	// 0 trains the navigation model in place on every observation, the
	// historical behavior. Negative is rejected.
	MiningRefreshEvery int
	// LocalityEntries bounds the per-backend locality map (how many
	// recently-served files the dispatcher remembers per backend).
	// Default 4096.
	LocalityEntries int64
	// MaxSessions bounds tracked client sessions. Default 65536.
	MaxSessions int
	// Observe, when non-nil, is called once per proxied demand request
	// after the response completes, with the routing outcome and the
	// front-end's service time for the request. It runs on the request
	// goroutine and so must be fast and safe for concurrent use.
	// Prefetch hints never trigger it: they are not client-visible.
	Observe func(Observation)
	// Health tunes the per-backend circuit breakers. The zero value
	// selects the health package defaults.
	Health health.Config
	// Retries is the per-request failover budget: after a transport
	// error or 5xx, the request is re-proxied to a different healthy
	// backend at most this many times. 0 means the default of 1;
	// negative disables retries. Only idempotent requests (GET, HEAD)
	// are ever retried.
	Retries int
	// ProbeInterval enables active health probes of unhealthy backends
	// on a seeded-jittered interval. 0 disables probing; breakers then
	// recover through half-open trial requests alone.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip. Default 1s.
	ProbeTimeout time.Duration
	// ProbeSeed seeds the probe-interval jitter. Default 1.
	ProbeSeed int64
	// ProbePath is the path probes request. Default "/".
	ProbePath string
	// PrefetchTimeout bounds one prefetch-hint round-trip so a hung
	// backend cannot stall the prefetcher forever. Default 5s.
	PrefetchTimeout time.Duration
	// Overload enables the overload-control layer: a load estimator
	// classifying the cluster into degrade-ladder tiers, tiered shedding
	// of PRORD's proactive work, and Critical-tier admission control.
	// Nil disables the layer entirely (no behavior change).
	Overload *overload.Config
	// Recorder, when non-nil, receives every decision the dispatch core
	// makes, in decision order (differential testing against the
	// simulator).
	Recorder func(dispatch.Record)
	// Gray enables the gray-failure resilience layer: the latency
	// outlier detector ejecting slow backends from new-session routing
	// (with progressive rebinding of bound sessions), hedged backup
	// requests for idempotent static content, and tier-derived
	// per-request deadline budgets. Nil disables the layer entirely (no
	// behavior change).
	Gray *GrayConfig
	// Autoscale enables the elastic backend pool: Backends becomes the
	// provisioned maximum and the pool starts at Autoscale.Initial
	// members. With Overload also enabled, an organic controller watches
	// the tier ladder on the scale tick and resizes the pool; ScaleUp
	// and ScaleDown drive it directly (the load generator's scripted
	// schedules). Warm joins preload rank-table files through the
	// prefetch-hint path, so they need Prefetch and a Miner; otherwise
	// joins are effectively cold. Nil keeps the fixed pool.
	Autoscale *autoscale.Config
	// ScaleInterval is the autoscale housekeeping tick (warm-ramp
	// promotion, organic controller, drain reaping). Default 500ms.
	ScaleInterval time.Duration
	// Fleet wires this distributor into a multi-replica fleet:
	// partitioned session ownership over a shared consistent-hash ring,
	// one-hop forwarding of foreign-owned requests to registered peers
	// (SetPeers), and a gossip loop reconciling locality, popularity and
	// health state with the other replicas. Nil runs the classic
	// single-distributor front-end; a single-member ring behaves
	// identically to nil.
	Fleet *FleetConfig
}

// Observation is one completed demand request as seen by the front-end:
// the input to Config.Observe, and the raw material for load-generator
// and benchmark measurements.
type Observation struct {
	// Backend is the backend index that served the request.
	Backend int
	// Path is the requested URL path.
	Path string
	// Status is the response status code delivered to the client.
	Status int
	// Latency is the front-end's service time: routing decision plus
	// proxied backend round-trip (excludes client network time).
	Latency time.Duration
}

// Stats are the distributor's live counters, named like the
// simulator's metrics because most are read straight off the shared
// dispatch core; the prefetch-hint counters are adapter-side.
type Stats struct {
	Requests       int64 `json:"requests"`
	Dispatches     int64 `json:"dispatches"`
	DirectForwards int64 `json:"direct_forwards"`
	Handoffs       int64 `json:"handoffs"`
	Prefetches     int64 `json:"prefetches"`
	// Errors counts failed proxied attempts (5xx or transport error),
	// including ones later masked by a successful failover retry, plus
	// failed prefetch hints.
	Errors int64 `json:"errors"`
	// Failovers counts requests that completed on a different backend
	// than their first attempt after that attempt failed.
	Failovers int64 `json:"failovers"`
	// Retries counts re-proxied attempts made by the failover path.
	Retries int64 `json:"retries"`
	// Shed counts demand requests refused by Critical-tier admission
	// control (503 + Retry-After + ShedHeader, never proxied). Shed
	// requests are included in Requests but not in PerBackend.
	Shed int64 `json:"shed"`
	// PrefetchShed counts proactive prefetch passes suppressed because
	// the cluster sat at Elevated tier or above (the hints were never
	// generated).
	PrefetchShed int64 `json:"prefetch_shed"`
	// PrefetchHintsDropped counts generated hints lost to a full
	// prefetch queue — the previously silent default-case drop in the
	// enqueue path.
	PrefetchHintsDropped int64 `json:"prefetch_hints_dropped"`
	// Unavailable counts demand requests refused with 503 because every
	// backend's breaker was open (no ShedHeader: the cluster is dead,
	// not overloaded). Included in Requests but not in PerBackend.
	Unavailable int64 `json:"unavailable"`
	// PerBackend counts demand requests routed to each backend
	// (including failover retries), in backend order. Prefetch hints
	// are not included.
	PerBackend []int64 `json:"per_backend"`
}

// BackendHealth is one backend's health snapshot as exposed on the
// cluster stats endpoint.
type BackendHealth struct {
	Backend             int    `json:"backend"`
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Successes           int64  `json:"successes"`
	Failures            int64  `json:"failures"`
	Trips               int64  `json:"trips"`
	Probes              int64  `json:"probes"`
}

// Distributor is the front-end: an http.Handler that proxies each request
// to a backend chosen by the shared dispatch core. It is the optimistic-
// locality adapter: the core tracks residency in bounded per-backend LRU
// maps, and breaker state feeds the core's availability view.
type Distributor struct {
	cfg         Config
	core        *dispatch.Core
	proxies     []*httputil.ReverseProxy
	prefetch    chan prefetchJob
	retries     int
	probeClient *http.Client

	// hmu guards the health substrate (breakers, probe counts) and the
	// adapter-side prefetch counters. It is a leaf lock: the core may
	// call the Available hook (which takes hmu) while holding its own
	// locks, so nothing under hmu may call back into the core.
	hmu           sync.Mutex
	breakers      []*health.Breaker // per-backend circuit breakers
	probes        []int64           // per-backend probe counts
	hintsDropped  int64
	prefetchFails int64
	probeStop     chan struct{}
	scaleStop     chan struct{}
	grayStop      chan struct{}

	// Gray-failure resilience layer (nil/zero when Config.Gray is nil).
	gray         GrayConfig
	detector     *health.Detector
	hedgeCancels atomic.Int64

	pool  *autoscale.Pool
	actrl *autoscale.Controller

	// Fleet machinery (nil unless Config.Fleet is set).
	fleet *fleetState
}

type prefetchJob struct {
	server int
	path   string
}

// New builds a Distributor.
func New(cfg Config) (*Distributor, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("httpfront: at least one backend required")
	}
	if cfg.Policy == nil {
		cfg.Policy = policy.NewPRORD(policy.Thresholds{})
	}
	if cfg.Prefetch && cfg.Miner == nil {
		return nil, fmt.Errorf("httpfront: Prefetch requires a Miner")
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.ProbeSeed == 0 {
		cfg.ProbeSeed = 1
	}
	if cfg.ProbePath == "" {
		cfg.ProbePath = "/"
	}
	if cfg.PrefetchTimeout <= 0 {
		cfg.PrefetchTimeout = 5 * time.Second
	}
	d := &Distributor{
		cfg:     cfg,
		retries: 1,
		probes:  make([]int64, len(cfg.Backends)),
	}
	if cfg.Retries > 0 {
		d.retries = cfg.Retries
	} else if cfg.Retries < 0 {
		d.retries = 0
	}
	for _, u := range cfg.Backends {
		p := httputil.NewSingleHostReverseProxy(u)
		// Surface transport-level failures as a bare 502 so the failover
		// path treats them exactly like a backend 5xx (the default
		// handler also logs, which is noise under fault injection).
		p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			w.WriteHeader(http.StatusBadGateway)
		}
		d.proxies = append(d.proxies, p)
		d.breakers = append(d.breakers, health.NewBreaker(cfg.Health))
	}
	if cfg.Gray != nil {
		d.gray = cfg.Gray.withDefaults()
		d.detector = health.NewDetector(len(cfg.Backends), d.gray.Detector)
	}
	if cfg.Fleet != nil {
		fc := *cfg.Fleet
		if fc.Ring == nil || fc.Exchanger == nil {
			return nil, fmt.Errorf("httpfront: Fleet needs the fleet's shared Ring and Exchanger")
		}
		if fc.GossipInterval <= 0 {
			fc.GossipInterval = 250 * time.Millisecond
		}
		d.fleet = newFleetState(fc)
	}
	if cfg.Autoscale != nil {
		ac := *cfg.Autoscale
		if ac.Max <= 0 {
			ac.Max = len(cfg.Backends)
		}
		if ac.Max != len(cfg.Backends) {
			return nil, fmt.Errorf("httpfront: Autoscale.Max %d must equal backend count %d",
				ac.Max, len(cfg.Backends))
		}
		pool, err := autoscale.NewPool(ac)
		if err != nil {
			return nil, fmt.Errorf("httpfront: %w", err)
		}
		d.pool = pool
		if cfg.Overload != nil {
			d.actrl = autoscale.NewController(pool)
		}
	}
	dcfg := dispatch.Config{
		Backends: len(cfg.Backends),
		Policy:   cfg.Policy,
		Miner:    cfg.Miner,
		Features: dispatch.Features{
			// Bundle classification only needs mined bundles; prefetch
			// planning additionally needs the Prefetch switch (checked at
			// PlanProactive call sites).
			Bundle:        cfg.Miner != nil,
			NavPrefetch:   cfg.Prefetch,
			GroupPrefetch: cfg.Prefetch && cfg.Miner != nil && cfg.Miner.Categorizer != nil,
		},
		Exact:              false,
		LocalityEntries:    cfg.LocalityEntries,
		MaxSessions:        cfg.MaxSessions,
		MiningRefreshEvery: cfg.MiningRefreshEvery,
		Available: func(server int, now time.Time) bool {
			d.hmu.Lock()
			defer d.hmu.Unlock()
			return d.breakers[server].Ready(now)
		},
		Overload: cfg.Overload,
		Recorder: cfg.Recorder,
		Pool:     d.pool,
	}
	if d.fleet != nil {
		dcfg.Ring = d.fleet.cfg.Ring
		dcfg.ReplicaID = d.fleet.cfg.ReplicaID
	}
	// The Degraded view unions the local detector's verdicts with the
	// fleet's gossiped ones: a backend one replica measured as sick is
	// soft-excluded everywhere within the health staleness bound.
	switch {
	case d.detector != nil && d.fleet != nil:
		dcfg.Degraded = func(server int) bool {
			return d.detector.Degraded(server) || d.fleetDegraded(server)
		}
	case d.detector != nil:
		dcfg.Degraded = d.detector.Degraded
	case d.fleet != nil:
		dcfg.Degraded = d.fleetDegraded
	}
	if cfg.Overload != nil {
		// Saturated-tier routing degrades to locality-only LARD.
		dcfg.Fallback = policy.NewLARD(policy.Thresholds{})
	}
	core, err := dispatch.New(dcfg)
	if err != nil {
		return nil, fmt.Errorf("httpfront: %w", err)
	}
	d.core = core
	if cfg.Miner != nil && cfg.Prefetch {
		d.prefetch = make(chan prefetchJob, 256)
		go d.prefetchLoop(d.prefetch)
	}
	if cfg.ProbeInterval > 0 {
		d.probeClient = &http.Client{Timeout: cfg.ProbeTimeout}
		d.probeStop = make(chan struct{})
		go health.Probe(cfg.ProbeInterval, randutil.New(cfg.ProbeSeed), d.probeStop, d.probeOnce)
	}
	if d.pool != nil {
		interval := cfg.ScaleInterval
		if interval <= 0 {
			interval = 500 * time.Millisecond
		}
		d.scaleStop = make(chan struct{})
		go d.scaleLoop(d.scaleStop, interval)
	}
	if d.detector != nil {
		d.grayStop = make(chan struct{})
		go d.grayTickLoop(d.grayStop, d.gray.Detector.EvalInterval)
	}
	if d.fleet != nil {
		d.fleet.stop = make(chan struct{})
		go d.gossipLoop(d.fleet.stop, d.fleet.cfg.GossipInterval)
	}
	return d, nil
}

// Core exposes the shared dispatch core (tests and diagnostics).
func (d *Distributor) Core() *dispatch.Core { return d.core }

// admit runs the core's admission control for one demand request,
// waiting in the bounded accept queue up to QueueTimeout when the
// Critical-tier gate is full. False means the request was shed (counted,
// never proxied).
func (d *Distributor) admit(key, path string) bool {
	granted := make(chan struct{})
	verdict, w := d.core.Admit(key, path, time.Now(), func() { close(granted) })
	switch verdict {
	case dispatch.Shed:
		return false
	case dispatch.Queued:
		t := time.NewTimer(d.core.QueueTimeout())
		defer t.Stop()
		select {
		case <-granted:
			return true
		case <-t.C:
		}
		// The slot may have been granted while the timer fired; if so the
		// abandon fails and we own the slot.
		return !d.core.AbandonWait(w, path, time.Now())
	default:
		return true
	}
}

// reject answers a demand request the front-end refuses to proxy. shed
// marks Critical-tier admission control (the response carries
// ShedHeader so clients and load generators can tell it from a
// failure); without it the refusal is the all-breakers-open fast 503.
func (d *Distributor) reject(w http.ResponseWriter, shed bool) {
	w.Header().Set("Retry-After", strconv.Itoa(d.core.RetryAfter()))
	msg := "no healthy backend available"
	if shed {
		w.Header().Set(ShedHeader, "1")
		msg = "overloaded, request shed"
	}
	http.Error(w, msg, http.StatusServiceUnavailable)
}

// beginAttempt opens one proxied attempt on a backend's breaker.
func (d *Distributor) beginAttempt(server int) {
	d.hmu.Lock()
	d.breakers[server].Begin(time.Now())
	d.hmu.Unlock()
}

// endAttempt feeds one proxied attempt's outcome to the backend's
// breaker; a trip invalidates the core's optimistic knowledge of the
// backend (locality, prefetch marks, session pins) — the same
// InvalidateBackend the simulator's crash handling calls, since sticky
// locality would otherwise keep steering sessions at the corpse.
func (d *Distributor) endAttempt(server int, failed bool) {
	now := time.Now()
	d.hmu.Lock()
	tripped := false
	if failed {
		tripped = d.breakers[server].OnFailure(now)
	} else {
		d.breakers[server].OnSuccess(now)
	}
	d.hmu.Unlock()
	if tripped {
		d.core.InvalidateBackend(server)
		if d.detector != nil {
			// A hard trip supersedes gray detection: clear the latency
			// window so a past life's samples never drive an ejection
			// after the breaker re-admits the backend.
			d.detector.Reset(server)
		}
	}
}

// enqueuePrefetch hands a proactive plan to the background prefetcher.
// The channel is read under the lock so a concurrent Close can never
// race the send.
func (d *Distributor) enqueuePrefetch(plan dispatch.Plan) {
	files := plan.Files()
	if len(files) == 0 {
		return
	}
	d.hmu.Lock()
	defer d.hmu.Unlock()
	if d.prefetch == nil {
		return
	}
	for _, file := range files {
		select {
		case d.prefetch <- prefetchJob{server: plan.Server, path: file}:
		default:
			// The prefetch queue is best-effort; drop under pressure, but
			// visibly — a saturated hint queue is an overload signal.
			d.hintsDropped++
		}
	}
}

// ServeHTTP implements http.Handler. A failed attempt (backend 5xx or
// transport error, surfaced as 502) on an idempotent request is buffered
// rather than delivered, the failed backend's state is invalidated, and
// the request is re-proxied to a healthy backend within the retry
// budget; the client only sees a failure when every attempt failed.
// With overload control enabled the request first passes Critical-tier
// admission; with every breaker open it is refused immediately.
func (d *Distributor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Ownership handoff first: a request whose session another replica
	// owns is forwarded there (one in-process hop) before any local
	// admission or routing state is touched.
	if d.forwardIfForeign(w, r) {
		return
	}
	if d.fleet != nil {
		w.Header().Set(ReplicaHeader, strconv.Itoa(d.fleet.cfg.ReplicaID))
	}
	start := time.Now()
	// RemoteAddr is stable per keep-alive connection, making it the
	// session key.
	key, path := r.RemoteAddr, r.URL.Path
	if !d.admit(key, path) {
		d.reject(w, true)
		return
	}
	if budget := d.deadlineBudget(); budget > 0 {
		// One tier-derived deadline budget covers the whole request —
		// every failover attempt and any hedged backup.
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		r = r.WithContext(ctx)
	}
	out := d.core.Route(key, path, 0, time.Now())
	if !out.OK {
		// Every breaker is open: refuse fast instead of retrying into a
		// dead cluster. Breakers re-admit trial traffic once their
		// backoff expires, so this state clears itself.
		d.core.GateLeave()
		d.reject(w, false)
		return
	}
	server := out.Server
	d.beginAttempt(server)
	idempotent := r.Method == http.MethodGet || r.Method == http.MethodHead
	retries := 0
	if idempotent {
		retries = d.retries
	}
	var rec *statusRecorder
	winner := server
	for attempt := 0; ; attempt++ {
		rec = newStatusRecorder(w, attempt < retries)
		rec.Header().Set(BackendHeader, strconv.Itoa(server))
		attemptStart := time.Now()
		var status int
		var hedgeWon bool
		if attempt == 0 && idempotent && r.ContentLength == 0 && d.hedgeable(path) {
			status, hedgeWon, winner = d.proxyHedged(rec, r, path, server)
			if !hedgeWon && status >= http.StatusInternalServerError {
				// Neither leg delivered: replay the primary's failure
				// into the recorder so the ordinary retry machinery
				// (or the client, with retries exhausted) takes over.
				rec.WriteHeader(status)
				if !rec.discarded {
					io.WriteString(rec, http.StatusText(status)+"\n")
				}
			}
		} else {
			d.proxyTo(server, rec, r)
			status = rec.status
		}
		failed := status >= http.StatusInternalServerError
		d.core.Done(key, server, path, failed, attempt > 0)
		d.endAttempt(server, failed)
		if !failed {
			// Canceled hedge losers record their elapsed-until-cancel
			// time — a lower bound on the true latency, and exactly the
			// evidence that made the hedge fire — so a slow backend
			// whose every request gets rescued still accumulates
			// adverse samples.
			d.observeLatency(server, time.Since(attemptStart))
		}
		if hedgeWon {
			break
		}
		winner = server
		if !failed || !rec.discarded {
			break
		}
		next, ok := d.core.Rebook(key, path, server, time.Now())
		if !ok {
			// No healthy alternative: deliver the buffered failure.
			rec.release()
			break
		}
		server = next
		d.beginAttempt(server)
	}
	latency := time.Since(start)
	d.core.FinishRequest(time.Now(), latency)
	// Reap on the completion path (not just the scale tick) so a drained
	// backend leaves as soon as its last booking clears — the same reap
	// point the simulator uses, which keeps sequential replays
	// deterministic for differential testing.
	d.reapDrains()
	// PRORD's proactive pass (bundle, navigation, category prefetch over
	// HTTP hints) runs after the page is served, like the simulator's
	// backend-side prefetching.
	if d.prefetch != nil && !trace.IsEmbeddedPath(path) {
		if plan, ok := d.core.PlanProactive(key, winner, path, time.Now()); ok {
			d.enqueuePrefetch(plan)
		}
	}
	if rec.status < http.StatusInternalServerError {
		// The winner plausibly holds the file now; queue the delta (and a
		// popularity observation) for the next gossip digest.
		d.noteFleetServe(winner, path)
	}
	if d.cfg.Observe != nil {
		d.cfg.Observe(Observation{
			Backend: winner,
			Path:    path,
			Status:  rec.status,
			Latency: latency,
		})
	}
}

// statusRecorder buffers the response head so a failed backend attempt
// can be discarded and the request retried elsewhere without the client
// seeing the failure. The head commits on the first success status (or
// implicit 200); after that the body streams straight through.
type statusRecorder struct {
	dst       http.ResponseWriter
	header    http.Header
	retryable bool
	status    int
	committed bool
	discarded bool
}

func newStatusRecorder(dst http.ResponseWriter, retryable bool) *statusRecorder {
	return &statusRecorder{dst: dst, header: make(http.Header), status: http.StatusOK, retryable: retryable}
}

func (s *statusRecorder) Header() http.Header {
	if s.committed {
		return s.dst.Header()
	}
	return s.header
}

// commit copies the buffered head to the underlying writer.
func (s *statusRecorder) commit(code int) {
	if s.committed || s.discarded {
		return
	}
	dst := s.dst.Header()
	for k, vv := range s.header {
		dst[k] = vv
	}
	s.status = code
	s.committed = true
	s.dst.WriteHeader(code)
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.committed || s.discarded {
		return
	}
	if s.retryable && code >= http.StatusInternalServerError {
		// Swallow the failure: the distributor will retry elsewhere or
		// release() this recorder if it cannot.
		s.status = code
		s.discarded = true
		return
	}
	s.commit(code)
}

func (s *statusRecorder) Write(p []byte) (int, error) {
	if s.discarded {
		return len(p), nil
	}
	if !s.committed {
		s.commit(http.StatusOK)
	}
	return s.dst.Write(p)
}

// Flush implements http.Flusher so streamed backend responses reach the
// client incrementally instead of buffering at the front-end.
func (s *statusRecorder) Flush() {
	if s.discarded {
		return
	}
	if !s.committed {
		s.commit(http.StatusOK)
	}
	if f, ok := s.dst.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (s *statusRecorder) Unwrap() http.ResponseWriter { return s.dst }

// release delivers a swallowed failure after all retry options ran out.
// The failed body was discarded, so content headers are dropped and a
// minimal diagnostic body stands in.
func (s *statusRecorder) release() {
	if !s.discarded {
		return
	}
	s.discarded = false
	s.header.Del("Content-Length")
	s.header.Set("Content-Type", "text/plain; charset=utf-8")
	code := s.status
	s.commit(code)
	io.WriteString(s.dst, http.StatusText(code)+"\n")
}

// prefetchLoop sends prefetch hints to backends in the background. The
// channel is passed in rather than read off the struct so the loop
// never touches the field Close nils out under the lock.
func (d *Distributor) prefetchLoop(jobs <-chan prefetchJob) {
	// The timeout keeps one hung backend from stalling the single
	// prefetch goroutine — and with it all prefetching — forever; an
	// expired hint is simply dropped.
	client := &http.Client{Timeout: d.cfg.PrefetchTimeout}
	for job := range jobs {
		if d.backendBlocked(job.server) {
			// Speculative work is shed first under degradation: no
			// hints to backends with tripped breakers.
			continue
		}
		u := *d.cfg.Backends[job.server]
		u.Path = job.path
		req, err := http.NewRequest(http.MethodGet, u.String(), nil)
		if err != nil {
			continue
		}
		req.Header.Set(PrefetchHeader, "1")
		resp, err := client.Do(req)
		if err != nil {
			d.hmu.Lock()
			d.prefetchFails++
			d.hmu.Unlock()
			continue
		}
		resp.Body.Close()
	}
}

// backendBlocked reports whether a backend's breaker is not closed.
func (d *Distributor) backendBlocked(server int) bool {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	return d.breakers[server].State() != health.Closed
}

// probeOnce checks every unhealthy backend once and feeds the results to
// the breakers. Healthy (closed) backends are never probed: demand
// traffic already exercises them, and the fault-free path stays
// byte-for-byte identical with probing on or off.
func (d *Distributor) probeOnce() {
	d.hmu.Lock()
	var targets []int
	for i, b := range d.breakers {
		if d.pool != nil && !d.pool.AcceptingNew(i) {
			// Absent and Draining pool members are not probe targets:
			// Absent backends are deprovisioned (probing them only
			// manufactures breaker churn against a machine that is
			// supposed to be off), and Draining ones are leaving
			// regardless of what a probe finds.
			continue
		}
		if b.State() != health.Closed {
			targets = append(targets, i)
		}
	}
	d.hmu.Unlock()
	for _, i := range targets {
		ok := d.probeBackend(i)
		d.hmu.Lock()
		d.probes[i]++
		if ok {
			d.breakers[i].OnSuccess(time.Now())
		} else {
			d.breakers[i].OnFailure(time.Now())
		}
		d.hmu.Unlock()
	}
}

// probeBackend issues one health probe and reports reachability.
func (d *Distributor) probeBackend(i int) bool {
	u := *d.cfg.Backends[i]
	u.Path = d.cfg.ProbePath
	req, err := http.NewRequest(http.MethodGet, u.String(), nil)
	if err != nil {
		return false
	}
	req.Header.Set(ProbeHeader, "1")
	resp, err := d.probeClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode < http.StatusInternalServerError
}

// Stats returns a snapshot of the live counters, read off the dispatch
// core plus the adapter's prefetch-hint counters.
func (d *Distributor) Stats() Stats {
	cs := d.core.Stats()
	d.hmu.Lock()
	dropped, pfails := d.hintsDropped, d.prefetchFails
	d.hmu.Unlock()
	return Stats{
		Requests:       cs.Requests,
		Dispatches:     cs.Dispatches,
		DirectForwards: cs.DirectForwards,
		// The live handoff metric counts genuine server switches of
		// bound connections, not first bindings.
		Handoffs:             cs.Switches,
		Prefetches:           cs.Prefetches,
		Errors:               cs.Errors + pfails,
		Failovers:            cs.Failovers,
		Retries:              cs.Retries,
		Shed:                 cs.Shed,
		PrefetchShed:         cs.PrefetchShed,
		PrefetchHintsDropped: dropped,
		Unavailable:          cs.Unroutable,
		PerBackend:           cs.PerBackend,
	}
}

// OverloadState is the overload layer's observable state as exposed on
// the cluster stats endpoint and consumed by the load generator.
type OverloadState struct {
	// Tier is the current degrade-ladder position.
	Tier string `json:"tier"`
	// Pressure is the load estimate (1.0 = at capacity).
	Pressure float64 `json:"pressure"`
	// InFlight is the admission gate's admitted-request count.
	InFlight int `json:"in_flight"`
	// Queued is the Critical-tier accept queue's occupancy.
	Queued int `json:"queued"`
	// Transitions is the ladder history since the first request.
	Transitions []overload.Transition `json:"transitions"`
}

// Overload returns the overload layer's snapshot, or nil when the layer
// is disabled.
func (d *Distributor) Overload() *OverloadState {
	snap, ok := d.core.Overload()
	if !ok {
		return nil
	}
	return &OverloadState{
		Tier:        snap.Tier.String(),
		Pressure:    snap.Pressure,
		InFlight:    snap.InFlight,
		Queued:      snap.Queued,
		Transitions: snap.Transitions,
	}
}

// Health returns per-backend breaker snapshots in backend order.
func (d *Distributor) Health() []BackendHealth {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	out := make([]BackendHealth, len(d.breakers))
	for i, b := range d.breakers {
		s := b.Snapshot()
		out[i] = BackendHealth{
			Backend:             i,
			State:               s.State.String(),
			ConsecutiveFailures: s.ConsecutiveFailures,
			Successes:           s.Successes,
			Failures:            s.Failures,
			Trips:               s.Trips,
			Probes:              d.probes[i],
		}
	}
	return out
}

// Close stops the background prefetcher and the health prober. Safe to
// call concurrently with in-flight requests: senders check the channel
// under the lock, so the close cannot race an enqueue.
func (d *Distributor) Close() {
	d.hmu.Lock()
	ch := d.prefetch
	d.prefetch = nil
	stop := d.probeStop
	d.probeStop = nil
	scale := d.scaleStop
	d.scaleStop = nil
	gray := d.grayStop
	d.grayStop = nil
	var fstop chan struct{}
	if d.fleet != nil {
		fstop = d.fleet.stop
		d.fleet.stop = nil
	}
	d.hmu.Unlock()
	if ch != nil {
		close(ch)
	}
	if stop != nil {
		close(stop)
	}
	if scale != nil {
		close(scale)
	}
	if gray != nil {
		close(gray)
	}
	if fstop != nil {
		close(fstop)
	}
}
