// Package httpfront is a working HTTP/1.1 front-end distributor driven by
// the same distribution policies as the simulator: a reverse proxy that
// routes each request to one of a set of backend servers using WRR, LARD
// or PRORD semantics, classifies embedded objects against mined bundles,
// and issues prefetch hints to backends for predicted next pages.
//
// TCP handoff needs kernel support the paper assumes; the user-space
// equivalent is reverse proxying, which this package uses. The
// dispatcher's locality knowledge is approximated at the front-end: a
// backend is assumed to hold a file in memory if it served (or was asked
// to prefetch) that file recently.
package httpfront

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"prord/internal/cache"
	"prord/internal/health"
	"prord/internal/mining"
	"prord/internal/overload"
	"prord/internal/policy"
	"prord/internal/randutil"
	"prord/internal/trace"
)

// PrefetchHeader marks a front-end-initiated prefetch request; backends
// should warm their caches and reply without a body when they see it.
const PrefetchHeader = "X-Prord-Prefetch"

// BackendHeader reports which backend served a proxied response.
const BackendHeader = "X-Prord-Backend"

// ProbeHeader marks a front-end health probe; backends should answer
// cheaply and without side effects when they see it.
const ProbeHeader = "X-Prord-Probe"

// ShedHeader marks a 503 as Critical-tier admission control shedding
// the request (as opposed to a genuine failure): the client should back
// off per Retry-After and retry, nothing is wrong with its request.
const ShedHeader = "X-Prord-Shed"

// Config assembles a Distributor.
type Config struct {
	// Backends are the backend server base URLs. At least one.
	Backends []*url.URL
	// Policy routes requests; nil defaults to PRORD.
	Policy policy.Policy
	// Miner supplies bundles and the navigation model; optional. Without
	// it, embedded-object classification falls back to path extensions
	// and prefetching is disabled.
	Miner *mining.Miner
	// Prefetch enables navigation prefetch hints to backends. Needs Miner.
	Prefetch bool
	// LocalityEntries bounds the per-backend locality map (how many
	// recently-served files the dispatcher remembers per backend).
	// Default 4096.
	LocalityEntries int64
	// MaxSessions bounds tracked client sessions. Default 65536.
	MaxSessions int
	// Observe, when non-nil, is called once per proxied demand request
	// after the response completes, with the routing outcome and the
	// front-end's service time for the request. It runs on the request
	// goroutine and so must be fast and safe for concurrent use.
	// Prefetch hints never trigger it: they are not client-visible.
	Observe func(Observation)
	// Health tunes the per-backend circuit breakers. The zero value
	// selects the health package defaults.
	Health health.Config
	// Retries is the per-request failover budget: after a transport
	// error or 5xx, the request is re-proxied to a different healthy
	// backend at most this many times. 0 means the default of 1;
	// negative disables retries. Only idempotent requests (GET, HEAD)
	// are ever retried.
	Retries int
	// ProbeInterval enables active health probes of unhealthy backends
	// on a seeded-jittered interval. 0 disables probing; breakers then
	// recover through half-open trial requests alone.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip. Default 1s.
	ProbeTimeout time.Duration
	// ProbeSeed seeds the probe-interval jitter. Default 1.
	ProbeSeed int64
	// ProbePath is the path probes request. Default "/".
	ProbePath string
	// PrefetchTimeout bounds one prefetch-hint round-trip so a hung
	// backend cannot stall the prefetcher forever. Default 5s.
	PrefetchTimeout time.Duration
	// Overload enables the overload-control layer: a load estimator
	// classifying the cluster into degrade-ladder tiers, tiered shedding
	// of PRORD's proactive work, and Critical-tier admission control.
	// Nil disables the layer entirely (no behavior change).
	Overload *overload.Config
}

// Observation is one completed demand request as seen by the front-end:
// the input to Config.Observe, and the raw material for load-generator
// and benchmark measurements.
type Observation struct {
	// Backend is the backend index that served the request.
	Backend int
	// Path is the requested URL path.
	Path string
	// Status is the response status code delivered to the client.
	Status int
	// Latency is the front-end's service time: routing decision plus
	// proxied backend round-trip (excludes client network time).
	Latency time.Duration
}

// Stats are the distributor's live counters, mirroring the simulator's
// metrics.
type Stats struct {
	Requests       int64 `json:"requests"`
	Dispatches     int64 `json:"dispatches"`
	DirectForwards int64 `json:"direct_forwards"`
	Handoffs       int64 `json:"handoffs"`
	Prefetches     int64 `json:"prefetches"`
	// Errors counts failed proxied attempts (5xx or transport error),
	// including ones later masked by a successful failover retry, plus
	// failed prefetch hints.
	Errors int64 `json:"errors"`
	// Failovers counts requests that completed on a different backend
	// than their first attempt after that attempt failed.
	Failovers int64 `json:"failovers"`
	// Retries counts re-proxied attempts made by the failover path.
	Retries int64 `json:"retries"`
	// Shed counts demand requests refused by Critical-tier admission
	// control (503 + Retry-After + ShedHeader, never proxied). Shed
	// requests are included in Requests but not in PerBackend.
	Shed int64 `json:"shed"`
	// PrefetchShed counts proactive prefetch passes suppressed because
	// the cluster sat at Elevated tier or above (the hints were never
	// generated).
	PrefetchShed int64 `json:"prefetch_shed"`
	// PrefetchHintsDropped counts generated hints lost to a full
	// prefetch queue — the previously silent default-case drop in the
	// enqueue path.
	PrefetchHintsDropped int64 `json:"prefetch_hints_dropped"`
	// Unavailable counts demand requests refused with 503 because every
	// backend's breaker was open (no ShedHeader: the cluster is dead,
	// not overloaded). Included in Requests but not in PerBackend.
	Unavailable int64 `json:"unavailable"`
	// PerBackend counts demand requests routed to each backend
	// (including failover retries), in backend order. Prefetch hints
	// are not included.
	PerBackend []int64 `json:"per_backend"`
}

// BackendHealth is one backend's health snapshot as exposed on the
// cluster stats endpoint.
type BackendHealth struct {
	Backend             int    `json:"backend"`
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Successes           int64  `json:"successes"`
	Failures            int64  `json:"failures"`
	Trips               int64  `json:"trips"`
	Probes              int64  `json:"probes"`
}

// Distributor is the front-end: an http.Handler that proxies each request
// to a backend chosen by the distribution policy.
type Distributor struct {
	cfg         Config
	proxies     []*httputil.ReverseProxy
	pol         policy.Policy
	tracker     *mining.Tracker
	prefetch    chan prefetchJob
	retries     int
	probeClient *http.Client

	mu         sync.Mutex
	loads      []int        // outstanding requests per backend
	locality   []*cache.LRU // per backend: recently-served files
	inflight   map[string]map[int]int
	prefetched map[string]map[int]bool
	sessions   map[string]*sessionState
	byID       map[int]*sessionState
	sessionSeq int
	stats      Stats
	breakers   []*health.Breaker // per-backend circuit breakers
	probes     []int64           // per-backend probe counts
	probeStop  chan struct{}

	// Overload-control state (nil/unused when Config.Overload is nil).
	// The estimator and gate are clock-injected/clockless state machines
	// serialized by d.mu, like the breakers.
	ovcfg    overload.Config
	est      *overload.Estimator
	gate     *overload.Gate
	fallback policy.Policy // locality-only LARD for the Saturated tier
}

type sessionState struct {
	id       int
	server   int
	hasSrv   bool
	active   int // requests currently in flight for this session
	lastPage string
}

type prefetchJob struct {
	server int
	path   string
}

// New builds a Distributor.
func New(cfg Config) (*Distributor, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("httpfront: at least one backend required")
	}
	if cfg.Policy == nil {
		cfg.Policy = policy.NewPRORD(policy.Thresholds{})
	}
	if cfg.LocalityEntries <= 0 {
		cfg.LocalityEntries = 4096
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 65536
	}
	if cfg.Prefetch && cfg.Miner == nil {
		return nil, fmt.Errorf("httpfront: Prefetch requires a Miner")
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.ProbeSeed == 0 {
		cfg.ProbeSeed = 1
	}
	if cfg.ProbePath == "" {
		cfg.ProbePath = "/"
	}
	if cfg.PrefetchTimeout <= 0 {
		cfg.PrefetchTimeout = 5 * time.Second
	}
	d := &Distributor{
		cfg:        cfg,
		pol:        cfg.Policy,
		retries:    1,
		loads:      make([]int, len(cfg.Backends)),
		inflight:   make(map[string]map[int]int),
		prefetched: make(map[string]map[int]bool),
		sessions:   make(map[string]*sessionState),
		byID:       make(map[int]*sessionState),
		probes:     make([]int64, len(cfg.Backends)),
	}
	if cfg.Retries > 0 {
		d.retries = cfg.Retries
	} else if cfg.Retries < 0 {
		d.retries = 0
	}
	d.stats.PerBackend = make([]int64, len(cfg.Backends))
	for _, u := range cfg.Backends {
		p := httputil.NewSingleHostReverseProxy(u)
		// Surface transport-level failures as a bare 502 so the failover
		// path treats them exactly like a backend 5xx (the default
		// handler also logs, which is noise under fault injection).
		p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			w.WriteHeader(http.StatusBadGateway)
		}
		d.proxies = append(d.proxies, p)
		// The locality map counts entries, not bytes: every file weighs 1.
		d.locality = append(d.locality, cache.NewLRU(cfg.LocalityEntries))
		d.breakers = append(d.breakers, health.NewBreaker(cfg.Health))
	}
	if cfg.Overload != nil {
		oc := cfg.Overload.WithDefaults()
		if err := oc.Validate(); err != nil {
			return nil, fmt.Errorf("httpfront: %w", err)
		}
		d.ovcfg = oc
		d.est = overload.NewEstimator(oc, len(cfg.Backends))
		d.gate = overload.NewGate(oc.CapacityPerBackend*len(cfg.Backends), oc.QueueLimit)
		d.fallback = policy.NewLARD(policy.Thresholds{})
	}
	if cfg.Miner != nil && cfg.Prefetch {
		d.tracker = mining.NewTracker(cfg.Miner.Model, true)
		d.prefetch = make(chan prefetchJob, 256)
		go d.prefetchLoop()
	}
	if cfg.ProbeInterval > 0 {
		d.probeClient = &http.Client{Timeout: cfg.ProbeTimeout}
		d.probeStop = make(chan struct{})
		go health.Probe(cfg.ProbeInterval, randutil.New(cfg.ProbeSeed), d.probeStop, d.probeOnce)
	}
	return d, nil
}

// --- policy.View (callers must hold d.mu) ---

type lockedView Distributor

func (v *lockedView) NumServers() int { return len(v.loads) }
func (v *lockedView) Load(i int) int  { return v.loads[i] }

func (v *lockedView) ServersWith(file string) []int {
	var out []int
	for i, l := range v.locality {
		if l.Contains(file) {
			out = append(out, i)
		}
	}
	return out
}

func (v *lockedView) PrefetchedAt(file string) []int {
	var out []int
	for s := range v.prefetched[file] {
		out = append(out, s)
	}
	// Sorted so policies that pick the first candidate behave the same
	// on every run instead of following map iteration order.
	sort.Ints(out)
	return out
}

func (v *lockedView) InFlight(file string) (int, bool) {
	best, found := 0, false
	for s, n := range v.inflight[file] {
		if n > 0 && (!found || s < best) {
			best, found = s, true
		}
	}
	return best, found
}

func (v *lockedView) LastServer(conn int) (int, bool) {
	if st, ok := v.byID[conn]; ok && st.hasSrv {
		return st.server, true
	}
	return 0, false
}

// session returns (creating if needed) the session state for a client,
// keyed by its transport connection (RemoteAddr is stable per keep-alive
// connection).
func (d *Distributor) session(key string) *sessionState {
	st, ok := d.sessions[key]
	if !ok {
		if len(d.sessions) >= d.cfg.MaxSessions {
			d.evictIdleSessions()
		}
		d.sessionSeq++
		st = &sessionState{id: d.sessionSeq}
		d.sessions[key] = st
		d.byID[st.id] = st
	}
	return st
}

// evictIdleSessions is the pressure valve behind MaxSessions: it drops
// every session with no request in flight, releasing the tracker's and
// the policy's per-connection state for each evicted id so neither goes
// stale. Sessions mid-request keep their LastServer binding; if every
// session is busy the table temporarily grows past the bound instead of
// yanking state out from under in-flight requests. Callers hold d.mu.
func (d *Distributor) evictIdleSessions() {
	for key, st := range d.sessions {
		if st.active > 0 {
			continue
		}
		delete(d.sessions, key)
		delete(d.byID, st.id)
		if d.tracker != nil {
			d.tracker.Close(st.id)
		}
		if cc, ok := d.pol.(policy.ConnCloser); ok {
			cc.ConnClose(st.id)
		}
	}
}

// route performs the Fig. 4 front-end flow for one request and returns
// the chosen backend plus the prefetch jobs to enqueue (predicted next
// page and the current page's bundle objects). It mutates the routing
// state under d.mu. routed is false when every backend's breaker is
// open: the request was counted but not booked anywhere, and the caller
// must answer 503 immediately instead of feeding a dead cluster.
func (d *Distributor) route(sessionKey, path string) (server int, jobs []prefetchJob, routed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()

	now := time.Now()
	st := d.session(sessionKey)
	d.stats.Requests++

	tier := overload.Normal
	if d.est != nil {
		tier = d.est.Tier()
	}

	// From Saturated up the ladder stops bundle-aware dispatcher bypass
	// work: requests route as plain (non-embedded) traffic below.
	embedded := false
	if tier < overload.Saturated && d.cfg.Miner != nil && st.lastPage != "" && trace.IsEmbeddedPath(path) {
		if parent, ok := d.cfg.Miner.Bundles.Parent(path); ok && parent == st.lastPage {
			embedded = true
		}
	}

	// Backends whose breakers are blocked are hidden from the policy.
	ready := d.readyCount(now)
	view := policy.View((*lockedView)(d))
	if ready < len(d.loads) {
		view = policy.Restrict(view, func(i int) bool { return !d.breakers[i].Ready(now) })
		if policy.AllExcluded(view) {
			// Every breaker is open: refuse fast instead of retrying into
			// a dead cluster. Breakers re-admit trial traffic once their
			// backoff expires, so this state clears itself.
			d.stats.Unavailable++
			return 0, nil, false
		}
	}

	// From Saturated up, routing degrades to the locality-only LARD
	// fallback: cheap, cache-friendly placement with none of PRORD's
	// proactive machinery.
	pol := d.pol
	if tier >= overload.Saturated && d.fallback != nil {
		pol = d.fallback
	}

	var dec policy.Decision
	if embedded && st.hasSrv && d.breakers[st.server].Ready(now) {
		dec = policy.Decision{Server: st.server, Source: -1}
	} else {
		dec = pol.Route(policy.Request{
			Conn:     st.id,
			Path:     path,
			Embedded: embedded,
			First:    !st.hasSrv,
		}, view)
	}
	if !d.breakers[dec.Server].Ready(now) {
		// A load-blind policy (WRR) named a blocked backend anyway:
		// re-route to the least-loaded healthy one, exactly as the
		// simulator's front-end does after a crash.
		if s, ok := d.leastLoadedReady(dec.Server, now); ok {
			dec.Server = s
		}
	}
	d.breakers[dec.Server].Begin(now)
	if d.est != nil {
		d.est.Begin(now)
	}
	if dec.Dispatch {
		d.stats.Dispatches++
	} else if st.hasSrv {
		d.stats.DirectForwards++
	}
	// Only genuine server switches are handoffs; a session's first
	// assignment binds the connection without moving it.
	if st.hasSrv && st.server != dec.Server {
		d.stats.Handoffs++
	}
	st.server = dec.Server
	st.hasSrv = true
	st.active++
	if !trace.IsEmbeddedPath(path) {
		st.lastPage = path
	}

	d.loads[dec.Server]++
	d.stats.PerBackend[dec.Server]++
	m, ok := d.inflight[path]
	if !ok {
		m = make(map[int]int)
		d.inflight[path] = m
	}
	m[dec.Server]++

	// Record expected locality: the backend will have the file hot after
	// serving it.
	d.locality[dec.Server].Insert(path, 1)
	if set, ok := d.prefetched[path]; ok {
		delete(set, dec.Server)
		if len(set) == 0 {
			delete(d.prefetched, path)
		}
	}

	// Proactive hints (PRORD's backend-side prefetching over HTTP): the
	// current page's bundle objects, plus the predicted next page. The
	// degrade ladder sheds this speculative work first: nothing is
	// generated from Elevated up.
	if d.tracker != nil && !trace.IsEmbeddedPath(path) && tier >= overload.Elevated {
		d.stats.PrefetchShed++
	}
	if d.tracker != nil && !trace.IsEmbeddedPath(path) && tier < overload.Elevated {
		admit := func(file string) {
			if d.locality[dec.Server].Contains(file) || d.prefetched[file][dec.Server] {
				return
			}
			addTo(d.prefetched, file, dec.Server)
			d.stats.Prefetches++
			jobs = append(jobs, prefetchJob{server: dec.Server, path: file})
		}
		for _, obj := range d.cfg.Miner.Bundles.Objects(path) {
			admit(obj)
		}
		if pred, ok := d.tracker.Observe(st.id, path); ok && d.cfg.Miner.ShouldPrefetch(pred) {
			admit(pred.Page)
		}
	}
	return dec.Server, jobs, true
}

func addTo(m map[string]map[int]bool, file string, server int) {
	set, ok := m[file]
	if !ok {
		set = make(map[int]bool)
		m[file] = set
	}
	set[server] = true
}

// readyCount returns how many backends' breakers admit traffic at now.
// Callers hold d.mu.
func (d *Distributor) readyCount(now time.Time) int {
	n := 0
	for _, b := range d.breakers {
		if b.Ready(now) {
			n++
		}
	}
	return n
}

// leastLoadedReady returns the least-loaded backend whose breaker admits
// traffic at now, excluding `not` (pass -1 to exclude none). Callers
// hold d.mu.
func (d *Distributor) leastLoadedReady(not int, now time.Time) (int, bool) {
	best, found := -1, false
	for i := range d.loads {
		if i == not || !d.breakers[i].Ready(now) {
			continue
		}
		if !found || d.loads[i] < d.loads[best] {
			best, found = i, true
		}
	}
	return best, found
}

// done releases routing state after one proxied attempt completes and
// feeds the outcome to the backend's breaker. retried marks a failover
// retry (not the request's first attempt); a successful retry counts as
// one completed failover.
func (d *Distributor) done(sessionKey string, server int, path string, failed, retried bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	d.loads[server]--
	if st, ok := d.sessions[sessionKey]; ok && st.active > 0 {
		st.active--
	}
	if m, ok := d.inflight[path]; ok {
		m[server]--
		if m[server] <= 0 {
			delete(m, server)
		}
		if len(m) == 0 {
			delete(d.inflight, path)
		}
	}
	if failed {
		d.stats.Errors++
		d.locality[server].Remove(path)
		if set, ok := d.prefetched[path]; ok {
			delete(set, server)
			if len(set) == 0 {
				delete(d.prefetched, path)
			}
		}
		if d.breakers[server].OnFailure(now) {
			d.invalidateBackend(server)
		}
		return
	}
	d.breakers[server].OnSuccess(now)
	if retried {
		d.stats.Failovers++
	}
}

// invalidateBackend forgets everything optimistic about a backend whose
// breaker just tripped: its locality map (the process behind it likely
// lost its memory), its prefetched placements, and every session pinned
// to it — mirroring the simulator's crash handling, where sticky
// locality would otherwise keep steering sessions at the corpse.
// Callers hold d.mu.
func (d *Distributor) invalidateBackend(server int) {
	d.locality[server] = cache.NewLRU(d.cfg.LocalityEntries)
	for file, set := range d.prefetched {
		delete(set, server)
		if len(set) == 0 {
			delete(d.prefetched, file)
		}
	}
	for _, st := range d.sessions {
		if st.hasSrv && st.server == server {
			st.hasSrv = false
		}
	}
}

// failover re-books a request whose attempt on `failed` errored: it
// picks the least-loaded backend admitting traffic, re-pins the session,
// and registers the retry in the routing state. It reports false when no
// alternative backend exists (the buffered failure should then be
// delivered to the client).
func (d *Distributor) failover(sessionKey, path string, failed int) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	next, ok := d.leastLoadedReady(failed, now)
	if !ok {
		return 0, false
	}
	d.breakers[next].Begin(now)
	if st, ok := d.sessions[sessionKey]; ok {
		st.server = next
		st.hasSrv = true
		st.active++
	}
	d.loads[next]++
	d.stats.PerBackend[next]++
	d.stats.Retries++
	m, ok := d.inflight[path]
	if !ok {
		m = make(map[int]int)
		d.inflight[path] = m
	}
	m[next]++
	d.locality[next].Insert(path, 1)
	if set, ok := d.prefetched[path]; ok {
		delete(set, next)
		if len(set) == 0 {
			delete(d.prefetched, path)
		}
	}
	return next, true
}

// enqueuePrefetch hands jobs to the background prefetcher. The channel
// is read under the lock so a concurrent Close can never race the send.
func (d *Distributor) enqueuePrefetch(jobs []prefetchJob) {
	if len(jobs) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.prefetch == nil {
		return
	}
	for _, job := range jobs {
		select {
		case d.prefetch <- job:
		default:
			// The prefetch queue is best-effort; drop under pressure, but
			// visibly — a saturated hint queue is an overload signal.
			d.stats.PrefetchHintsDropped++
		}
	}
}

// admit runs Critical-tier admission control for one demand request.
// Below Critical — or for an embedded-object request of a session that
// already has a backend (its page was admitted; refusing its images
// only breaks a response already promised) — the request is admitted
// unconditionally. At Critical it takes a gate slot, waiting in the
// bounded accept queue up to QueueTimeout if the gate is full. False
// means the request was shed (counted, never proxied).
func (d *Distributor) admit(sessionKey, path string) bool {
	d.mu.Lock()
	if d.gate == nil {
		d.mu.Unlock()
		return true
	}
	enforce := d.est.Tier() == overload.Critical
	if enforce {
		if st, ok := d.sessions[sessionKey]; ok && st.hasSrv && trace.IsEmbeddedPath(path) {
			enforce = false
		}
	}
	wait, ok := d.gate.Enter(enforce)
	if !ok {
		d.stats.Requests++
		d.stats.Shed++
		d.mu.Unlock()
		return false
	}
	d.mu.Unlock()
	if wait == nil {
		return true
	}
	// Queued: wait outside the lock for a freed slot, bounded by the
	// configured queue timeout.
	t := time.NewTimer(d.ovcfg.QueueTimeout)
	defer t.Stop()
	select {
	case <-wait:
		return true
	case <-t.C:
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.gate.Abandon(wait) {
		// The slot was granted while the timer fired; keep it.
		return true
	}
	d.stats.Requests++
	d.stats.Shed++
	return false
}

// reject answers a demand request the front-end refuses to proxy. shed
// marks Critical-tier admission control (the response carries
// ShedHeader so clients and load generators can tell it from a
// failure); without it the refusal is the all-breakers-open fast 503.
func (d *Distributor) reject(w http.ResponseWriter, shed bool) {
	retry := 1
	if d.gate != nil {
		retry = d.ovcfg.RetryAfter
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	msg := "no healthy backend available"
	if shed {
		w.Header().Set(ShedHeader, "1")
		msg = "overloaded, request shed"
	}
	http.Error(w, msg, http.StatusServiceUnavailable)
}

// gateLeave releases an admission slot for a request that never routed
// (the all-breakers-open path).
func (d *Distributor) gateLeave() {
	if d.gate == nil {
		return
	}
	d.mu.Lock()
	d.gate.Leave()
	d.mu.Unlock()
}

// overloadDone feeds one completed demand request back to the overload
// layer: the estimator's latency signal and the gate's freed slot.
func (d *Distributor) overloadDone(latency time.Duration) {
	if d.est == nil {
		return
	}
	d.mu.Lock()
	d.est.End(time.Now(), latency)
	d.gate.Leave()
	d.mu.Unlock()
}

// ServeHTTP implements http.Handler. A failed attempt (backend 5xx or
// transport error, surfaced as 502) on an idempotent request is buffered
// rather than delivered, the failed backend's state is invalidated, and
// the request is re-proxied to a healthy backend within the retry
// budget; the client only sees a failure when every attempt failed.
// With overload control enabled the request first passes Critical-tier
// admission; with every breaker open it is refused immediately.
func (d *Distributor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	key, path := r.RemoteAddr, r.URL.Path
	if !d.admit(key, path) {
		d.reject(w, true)
		return
	}
	server, jobs, routed := d.route(key, path)
	if !routed {
		d.gateLeave()
		d.reject(w, false)
		return
	}
	d.enqueuePrefetch(jobs)
	retries := 0
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		retries = d.retries
	}
	var rec *statusRecorder
	for attempt := 0; ; attempt++ {
		rec = newStatusRecorder(w, attempt < retries)
		rec.Header().Set(BackendHeader, strconv.Itoa(server))
		d.proxies[server].ServeHTTP(rec, r)
		failed := rec.status >= http.StatusInternalServerError
		d.done(key, server, path, failed, attempt > 0)
		if !failed || !rec.discarded {
			break
		}
		next, ok := d.failover(key, path, server)
		if !ok {
			// No healthy alternative: deliver the buffered failure.
			rec.release()
			break
		}
		server = next
	}
	latency := time.Since(start)
	d.overloadDone(latency)
	if d.cfg.Observe != nil {
		d.cfg.Observe(Observation{
			Backend: server,
			Path:    path,
			Status:  rec.status,
			Latency: latency,
		})
	}
}

// statusRecorder buffers the response head so a failed backend attempt
// can be discarded and the request retried elsewhere without the client
// seeing the failure. The head commits on the first success status (or
// implicit 200); after that the body streams straight through.
type statusRecorder struct {
	dst       http.ResponseWriter
	header    http.Header
	retryable bool
	status    int
	committed bool
	discarded bool
}

func newStatusRecorder(dst http.ResponseWriter, retryable bool) *statusRecorder {
	return &statusRecorder{dst: dst, header: make(http.Header), status: http.StatusOK, retryable: retryable}
}

func (s *statusRecorder) Header() http.Header {
	if s.committed {
		return s.dst.Header()
	}
	return s.header
}

// commit copies the buffered head to the underlying writer.
func (s *statusRecorder) commit(code int) {
	if s.committed || s.discarded {
		return
	}
	dst := s.dst.Header()
	for k, vv := range s.header {
		dst[k] = vv
	}
	s.status = code
	s.committed = true
	s.dst.WriteHeader(code)
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.committed || s.discarded {
		return
	}
	if s.retryable && code >= http.StatusInternalServerError {
		// Swallow the failure: the distributor will retry elsewhere or
		// release() this recorder if it cannot.
		s.status = code
		s.discarded = true
		return
	}
	s.commit(code)
}

func (s *statusRecorder) Write(p []byte) (int, error) {
	if s.discarded {
		return len(p), nil
	}
	if !s.committed {
		s.commit(http.StatusOK)
	}
	return s.dst.Write(p)
}

// Flush implements http.Flusher so streamed backend responses reach the
// client incrementally instead of buffering at the front-end.
func (s *statusRecorder) Flush() {
	if s.discarded {
		return
	}
	if !s.committed {
		s.commit(http.StatusOK)
	}
	if f, ok := s.dst.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (s *statusRecorder) Unwrap() http.ResponseWriter { return s.dst }

// release delivers a swallowed failure after all retry options ran out.
// The failed body was discarded, so content headers are dropped and a
// minimal diagnostic body stands in.
func (s *statusRecorder) release() {
	if !s.discarded {
		return
	}
	s.discarded = false
	s.header.Del("Content-Length")
	s.header.Set("Content-Type", "text/plain; charset=utf-8")
	code := s.status
	s.commit(code)
	io.WriteString(s.dst, http.StatusText(code)+"\n")
}

// prefetchLoop sends prefetch hints to backends in the background.
func (d *Distributor) prefetchLoop() {
	// The timeout keeps one hung backend from stalling the single
	// prefetch goroutine — and with it all prefetching — forever; an
	// expired hint is simply dropped.
	client := &http.Client{Timeout: d.cfg.PrefetchTimeout}
	for job := range d.prefetch {
		if d.backendBlocked(job.server) {
			// Speculative work is shed first under degradation: no
			// hints to backends with tripped breakers.
			continue
		}
		u := *d.cfg.Backends[job.server]
		u.Path = job.path
		req, err := http.NewRequest(http.MethodGet, u.String(), nil)
		if err != nil {
			continue
		}
		req.Header.Set(PrefetchHeader, "1")
		resp, err := client.Do(req)
		if err != nil {
			d.mu.Lock()
			d.stats.Errors++
			d.mu.Unlock()
			continue
		}
		resp.Body.Close()
	}
}

// backendBlocked reports whether a backend's breaker is not closed.
func (d *Distributor) backendBlocked(server int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.breakers[server].State() != health.Closed
}

// probeOnce checks every unhealthy backend once and feeds the results to
// the breakers. Healthy (closed) backends are never probed: demand
// traffic already exercises them, and the fault-free path stays
// byte-for-byte identical with probing on or off.
func (d *Distributor) probeOnce() {
	d.mu.Lock()
	var targets []int
	for i, b := range d.breakers {
		if b.State() != health.Closed {
			targets = append(targets, i)
		}
	}
	d.mu.Unlock()
	for _, i := range targets {
		ok := d.probeBackend(i)
		d.mu.Lock()
		d.probes[i]++
		if ok {
			d.breakers[i].OnSuccess(time.Now())
		} else {
			d.breakers[i].OnFailure(time.Now())
		}
		d.mu.Unlock()
	}
}

// probeBackend issues one health probe and reports reachability.
func (d *Distributor) probeBackend(i int) bool {
	u := *d.cfg.Backends[i]
	u.Path = d.cfg.ProbePath
	req, err := http.NewRequest(http.MethodGet, u.String(), nil)
	if err != nil {
		return false
	}
	req.Header.Set(ProbeHeader, "1")
	resp, err := d.probeClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode < http.StatusInternalServerError
}

// Stats returns a snapshot of the live counters.
func (d *Distributor) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.PerBackend = append([]int64(nil), d.stats.PerBackend...)
	return s
}

// OverloadState is the overload layer's observable state as exposed on
// the cluster stats endpoint and consumed by the load generator.
type OverloadState struct {
	// Tier is the current degrade-ladder position.
	Tier string `json:"tier"`
	// Pressure is the load estimate (1.0 = at capacity).
	Pressure float64 `json:"pressure"`
	// InFlight is the admission gate's admitted-request count.
	InFlight int `json:"in_flight"`
	// Queued is the Critical-tier accept queue's occupancy.
	Queued int `json:"queued"`
	// Transitions is the ladder history since the first request.
	Transitions []overload.Transition `json:"transitions"`
}

// Overload returns the overload layer's snapshot, or nil when the layer
// is disabled.
func (d *Distributor) Overload() *OverloadState {
	if d.est == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return &OverloadState{
		Tier:        d.est.Tier().String(),
		Pressure:    d.est.Pressure(),
		InFlight:    d.gate.InFlight(),
		Queued:      d.gate.Queued(),
		Transitions: d.est.Transitions(),
	}
}

// Health returns per-backend breaker snapshots in backend order.
func (d *Distributor) Health() []BackendHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]BackendHealth, len(d.breakers))
	for i, b := range d.breakers {
		s := b.Snapshot()
		out[i] = BackendHealth{
			Backend:             i,
			State:               s.State.String(),
			ConsecutiveFailures: s.ConsecutiveFailures,
			Successes:           s.Successes,
			Failures:            s.Failures,
			Trips:               s.Trips,
			Probes:              d.probes[i],
		}
	}
	return out
}

// Close stops the background prefetcher and the health prober. Safe to
// call concurrently with in-flight requests: senders check the channel
// under the lock, so the close cannot race an enqueue.
func (d *Distributor) Close() {
	d.mu.Lock()
	ch := d.prefetch
	d.prefetch = nil
	stop := d.probeStop
	d.probeStop = nil
	d.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	if stop != nil {
		close(stop)
	}
}
