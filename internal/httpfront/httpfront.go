// Package httpfront is a working HTTP/1.1 front-end distributor driven by
// the same distribution policies as the simulator: a reverse proxy that
// routes each request to one of a set of backend servers using WRR, LARD
// or PRORD semantics, classifies embedded objects against mined bundles,
// and issues prefetch hints to backends for predicted next pages.
//
// TCP handoff needs kernel support the paper assumes; the user-space
// equivalent is reverse proxying, which this package uses. The
// dispatcher's locality knowledge is approximated at the front-end: a
// backend is assumed to hold a file in memory if it served (or was asked
// to prefetch) that file recently.
package httpfront

import (
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"sync"
	"time"

	"prord/internal/cache"
	"prord/internal/mining"
	"prord/internal/policy"
	"prord/internal/trace"
)

// PrefetchHeader marks a front-end-initiated prefetch request; backends
// should warm their caches and reply without a body when they see it.
const PrefetchHeader = "X-Prord-Prefetch"

// BackendHeader reports which backend served a proxied response.
const BackendHeader = "X-Prord-Backend"

// Config assembles a Distributor.
type Config struct {
	// Backends are the backend server base URLs. At least one.
	Backends []*url.URL
	// Policy routes requests; nil defaults to PRORD.
	Policy policy.Policy
	// Miner supplies bundles and the navigation model; optional. Without
	// it, embedded-object classification falls back to path extensions
	// and prefetching is disabled.
	Miner *mining.Miner
	// Prefetch enables navigation prefetch hints to backends. Needs Miner.
	Prefetch bool
	// LocalityEntries bounds the per-backend locality map (how many
	// recently-served files the dispatcher remembers per backend).
	// Default 4096.
	LocalityEntries int64
	// MaxSessions bounds tracked client sessions. Default 65536.
	MaxSessions int
	// Observe, when non-nil, is called once per proxied demand request
	// after the response completes, with the routing outcome and the
	// front-end's service time for the request. It runs on the request
	// goroutine and so must be fast and safe for concurrent use.
	// Prefetch hints never trigger it: they are not client-visible.
	Observe func(Observation)
}

// Observation is one completed demand request as seen by the front-end:
// the input to Config.Observe, and the raw material for load-generator
// and benchmark measurements.
type Observation struct {
	// Backend is the backend index that served the request.
	Backend int
	// Path is the requested URL path.
	Path string
	// Status is the response status code delivered to the client.
	Status int
	// Latency is the front-end's service time: routing decision plus
	// proxied backend round-trip (excludes client network time).
	Latency time.Duration
}

// Stats are the distributor's live counters, mirroring the simulator's
// metrics.
type Stats struct {
	Requests       int64 `json:"requests"`
	Dispatches     int64 `json:"dispatches"`
	DirectForwards int64 `json:"direct_forwards"`
	Handoffs       int64 `json:"handoffs"`
	Prefetches     int64 `json:"prefetches"`
	Errors         int64 `json:"errors"`
	// PerBackend counts demand requests routed to each backend, in
	// backend order. Prefetch hints are not included.
	PerBackend []int64 `json:"per_backend"`
}

// Distributor is the front-end: an http.Handler that proxies each request
// to a backend chosen by the distribution policy.
type Distributor struct {
	cfg      Config
	proxies  []*httputil.ReverseProxy
	pol      policy.Policy
	tracker  *mining.Tracker
	prefetch chan prefetchJob

	mu         sync.Mutex
	loads      []int        // outstanding requests per backend
	locality   []*cache.LRU // per backend: recently-served files
	inflight   map[string]map[int]int
	prefetched map[string]map[int]bool
	sessions   map[string]*sessionState
	byID       map[int]*sessionState
	sessionSeq int
	stats      Stats
}

type sessionState struct {
	id       int
	server   int
	hasSrv   bool
	lastPage string
}

type prefetchJob struct {
	server int
	path   string
}

// New builds a Distributor.
func New(cfg Config) (*Distributor, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("httpfront: at least one backend required")
	}
	if cfg.Policy == nil {
		cfg.Policy = policy.NewPRORD(policy.Thresholds{})
	}
	if cfg.LocalityEntries <= 0 {
		cfg.LocalityEntries = 4096
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 65536
	}
	if cfg.Prefetch && cfg.Miner == nil {
		return nil, fmt.Errorf("httpfront: Prefetch requires a Miner")
	}
	d := &Distributor{
		cfg:        cfg,
		pol:        cfg.Policy,
		loads:      make([]int, len(cfg.Backends)),
		inflight:   make(map[string]map[int]int),
		prefetched: make(map[string]map[int]bool),
		sessions:   make(map[string]*sessionState),
		byID:       make(map[int]*sessionState),
	}
	d.stats.PerBackend = make([]int64, len(cfg.Backends))
	for _, u := range cfg.Backends {
		d.proxies = append(d.proxies, httputil.NewSingleHostReverseProxy(u))
		// The locality map counts entries, not bytes: every file weighs 1.
		d.locality = append(d.locality, cache.NewLRU(cfg.LocalityEntries))
	}
	if cfg.Miner != nil && cfg.Prefetch {
		d.tracker = mining.NewTracker(cfg.Miner.Model, true)
		d.prefetch = make(chan prefetchJob, 256)
		go d.prefetchLoop()
	}
	return d, nil
}

// --- policy.View (callers must hold d.mu) ---

type lockedView Distributor

func (v *lockedView) NumServers() int { return len(v.loads) }
func (v *lockedView) Load(i int) int  { return v.loads[i] }

func (v *lockedView) ServersWith(file string) []int {
	var out []int
	for i, l := range v.locality {
		if l.Contains(file) {
			out = append(out, i)
		}
	}
	return out
}

func (v *lockedView) PrefetchedAt(file string) []int {
	var out []int
	for s := range v.prefetched[file] {
		out = append(out, s)
	}
	// Sorted so policies that pick the first candidate behave the same
	// on every run instead of following map iteration order.
	sort.Ints(out)
	return out
}

func (v *lockedView) InFlight(file string) (int, bool) {
	best, found := 0, false
	for s, n := range v.inflight[file] {
		if n > 0 && (!found || s < best) {
			best, found = s, true
		}
	}
	return best, found
}

func (v *lockedView) LastServer(conn int) (int, bool) {
	if st, ok := v.byID[conn]; ok && st.hasSrv {
		return st.server, true
	}
	return 0, false
}

// session returns (creating if needed) the session state for a client,
// keyed by its transport connection (RemoteAddr is stable per keep-alive
// connection).
func (d *Distributor) session(key string) *sessionState {
	st, ok := d.sessions[key]
	if !ok {
		if len(d.sessions) >= d.cfg.MaxSessions {
			// Simple pressure valve: forget everything. Sessions are
			// soft state; the only cost is a few extra dispatches.
			d.sessions = make(map[string]*sessionState)
			d.byID = make(map[int]*sessionState)
		}
		d.sessionSeq++
		st = &sessionState{id: d.sessionSeq}
		d.sessions[key] = st
		d.byID[st.id] = st
	}
	return st
}

// route performs the Fig. 4 front-end flow for one request and returns
// the chosen backend plus the prefetch jobs to enqueue (predicted next
// page and the current page's bundle objects). It mutates the routing
// state under d.mu.
func (d *Distributor) route(sessionKey, path string) (server int, jobs []prefetchJob) {
	d.mu.Lock()
	defer d.mu.Unlock()

	st := d.session(sessionKey)
	d.stats.Requests++

	embedded := false
	if d.cfg.Miner != nil && st.lastPage != "" && trace.IsEmbeddedPath(path) {
		if parent, ok := d.cfg.Miner.Bundles.Parent(path); ok && parent == st.lastPage {
			embedded = true
		}
	}

	var dec policy.Decision
	if embedded && st.hasSrv {
		dec = policy.Decision{Server: st.server, Source: -1}
	} else {
		dec = d.pol.Route(policy.Request{
			Conn:     st.id,
			Path:     path,
			Embedded: embedded,
			First:    !st.hasSrv,
		}, (*lockedView)(d))
	}
	if dec.Dispatch {
		d.stats.Dispatches++
	} else if st.hasSrv {
		d.stats.DirectForwards++
	}
	if st.hasSrv && st.server != dec.Server {
		d.stats.Handoffs++
	} else if !st.hasSrv {
		d.stats.Handoffs++
	}
	st.server = dec.Server
	st.hasSrv = true
	if !trace.IsEmbeddedPath(path) {
		st.lastPage = path
	}

	d.loads[dec.Server]++
	d.stats.PerBackend[dec.Server]++
	m, ok := d.inflight[path]
	if !ok {
		m = make(map[int]int)
		d.inflight[path] = m
	}
	m[dec.Server]++

	// Record expected locality: the backend will have the file hot after
	// serving it.
	d.locality[dec.Server].Insert(path, 1)
	if set, ok := d.prefetched[path]; ok {
		delete(set, dec.Server)
		if len(set) == 0 {
			delete(d.prefetched, path)
		}
	}

	// Proactive hints (PRORD's backend-side prefetching over HTTP): the
	// current page's bundle objects, plus the predicted next page.
	if d.tracker != nil && !trace.IsEmbeddedPath(path) {
		admit := func(file string) {
			if d.locality[dec.Server].Contains(file) || d.prefetched[file][dec.Server] {
				return
			}
			addTo(d.prefetched, file, dec.Server)
			d.stats.Prefetches++
			jobs = append(jobs, prefetchJob{server: dec.Server, path: file})
		}
		for _, obj := range d.cfg.Miner.Bundles.Objects(path) {
			admit(obj)
		}
		if pred, ok := d.tracker.Observe(st.id, path); ok && d.cfg.Miner.ShouldPrefetch(pred) {
			admit(pred.Page)
		}
	}
	return dec.Server, jobs
}

func addTo(m map[string]map[int]bool, file string, server int) {
	set, ok := m[file]
	if !ok {
		set = make(map[int]bool)
		m[file] = set
	}
	set[server] = true
}

// done releases routing state after the proxied response completes.
func (d *Distributor) done(server int, path string, failed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.loads[server]--
	if m, ok := d.inflight[path]; ok {
		m[server]--
		if m[server] <= 0 {
			delete(m, server)
		}
		if len(m) == 0 {
			delete(d.inflight, path)
		}
	}
	if failed {
		d.stats.Errors++
		d.locality[server].Remove(path)
	}
}

// enqueuePrefetch hands jobs to the background prefetcher. The channel
// is read under the lock so a concurrent Close can never race the send.
func (d *Distributor) enqueuePrefetch(jobs []prefetchJob) {
	if len(jobs) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.prefetch == nil {
		return
	}
	for _, job := range jobs {
		select {
		case d.prefetch <- job:
		default:
			// The prefetch queue is best-effort; drop under pressure.
		}
	}
}

// ServeHTTP implements http.Handler.
func (d *Distributor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	server, jobs := d.route(r.RemoteAddr, r.URL.Path)
	d.enqueuePrefetch(jobs)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	rec.Header().Set(BackendHeader, fmt.Sprintf("%d", server))
	d.proxies[server].ServeHTTP(rec, r)
	d.done(server, r.URL.Path, rec.status >= http.StatusInternalServerError)
	if d.cfg.Observe != nil {
		d.cfg.Observe(Observation{
			Backend: server,
			Path:    r.URL.Path,
			Status:  rec.status,
			Latency: time.Since(start),
		})
	}
}

// statusRecorder captures the proxied status code.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

// prefetchLoop sends prefetch hints to backends in the background.
func (d *Distributor) prefetchLoop() {
	client := &http.Client{}
	for job := range d.prefetch {
		u := *d.cfg.Backends[job.server]
		u.Path = job.path
		req, err := http.NewRequest(http.MethodGet, u.String(), nil)
		if err != nil {
			continue
		}
		req.Header.Set(PrefetchHeader, "1")
		resp, err := client.Do(req)
		if err != nil {
			d.mu.Lock()
			d.stats.Errors++
			d.mu.Unlock()
			continue
		}
		resp.Body.Close()
	}
}

// Stats returns a snapshot of the live counters.
func (d *Distributor) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.PerBackend = append([]int64(nil), d.stats.PerBackend...)
	return s
}

// Close stops the background prefetcher. Safe to call concurrently with
// in-flight requests: senders check the channel under the lock, so the
// close cannot race an enqueue.
func (d *Distributor) Close() {
	d.mu.Lock()
	ch := d.prefetch
	d.prefetch = nil
	d.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}
