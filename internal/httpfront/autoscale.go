package httpfront

import (
	"time"

	"prord/internal/autoscale"
	"prord/internal/dispatch"
	"prord/internal/trace"
)

// scaleLoop runs the elastic-pool housekeeping on a wall-clock ticker
// until stop closes. The loop never runs with a nil pool.
func (d *Distributor) scaleLoop(stop <-chan struct{}, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			d.scaleTick()
		}
	}
}

// scaleTick is one housekeeping round: promote backends whose warm ramp
// finished, let the organic controller take a scale decision off the
// current tier, reap drained backends (also done on the completion
// path; the tick covers idle periods), and fold any pending mining
// observations into a fresh decision snapshot so a partial batch never
// strands learning when traffic goes quiet.
func (d *Distributor) scaleTick() {
	now := time.Now()
	d.pool.Settle(now)
	if d.actrl != nil {
		if act, ok := d.actrl.Observe(now, d.core.Tier()); ok && act.Kind == autoscale.ActionJoin {
			d.finishJoin(act.Server)
		}
	}
	d.reapDrains()
	d.core.RefreshMining()
}

// ScaleUp joins one backend into the elastic pool (a scripted scale
// event, the live counterpart of the simulator's ScaleEvents). It
// returns the joined backend's index; ok is false when autoscaling is
// disabled or the pool is already at Max.
func (d *Distributor) ScaleUp() (server int, ok bool) {
	if d.pool == nil {
		return -1, false
	}
	idx, ok := d.pool.Join(time.Now())
	if !ok {
		return -1, false
	}
	d.finishJoin(idx)
	return idx, true
}

// ScaleDown starts draining one backend out of the elastic pool. The
// backend leaves once its bookings clear; ok is false when autoscaling
// is disabled or the pool sits at Min.
func (d *Distributor) ScaleDown() (server int, ok bool) {
	if d.pool == nil {
		return -1, false
	}
	idx, ok := d.pool.Drain(time.Now())
	if ok {
		d.reapDrains()
	}
	return idx, ok
}

// finishJoin completes a join the pool just accepted: the overload
// layer re-sizes to the grown pool and — unless the config asks for
// cold joins — the backend warm-preloads the top rank-table files
// through the prefetch-hint path (marks registered synchronously with
// the core, transfers async like every other hint). The rank table
// comes from the core's current decision snapshot, not the boot-time
// miner, so incrementally folded popularity shifts steer the preload.
func (d *Distributor) finishJoin(server int) {
	if d.detector != nil {
		d.detector.Reset(server)
	}
	d.core.SetPoolSize(d.pool.Size(), time.Now())
	ranker := d.core.Ranker()
	if d.pool.Config().ColdJoin || ranker == nil {
		return
	}
	plan := dispatch.Plan{Server: server}
	for _, file := range ranker.Top(d.pool.Config().WarmTop) {
		if trace.IsDynamicPath(file) {
			continue
		}
		if d.core.MarkPrefetched(server, file) {
			plan.Nav = append(plan.Nav, file)
		}
	}
	d.enqueuePrefetch(plan)
}

// reapDrains removes Draining backends whose bookings hit zero: the
// core detaches them (idle sessions re-bind on their next request) and
// the drain's rebooked sessions are accounted — unless the backend's
// breaker tripped mid-drain, in which case the invalidation already
// unpinned everything and counting again would double-count.
func (d *Distributor) reapDrains() {
	if d.pool == nil || !d.pool.HasDraining() {
		return
	}
	loads := d.core.Loads()
	for _, i := range d.pool.DrainingSet() {
		if i >= len(loads) || loads[i] != 0 {
			continue
		}
		countRebooks, ok := d.pool.Remove(i, time.Now())
		if !ok {
			continue
		}
		unpinned := d.core.DetachBackend(i)
		if countRebooks {
			d.pool.NoteRebooked(unpinned)
		}
		if d.detector != nil {
			// A departed member's latency window must not survive into
			// its next join.
			d.detector.Reset(i)
		}
		d.core.SetPoolSize(d.pool.Size(), time.Now())
	}
}

// Pool returns the elastic pool's snapshot for the cluster stats
// endpoint, or nil when autoscaling is disabled.
func (d *Distributor) Pool() *autoscale.Status {
	if d.pool == nil {
		return nil
	}
	st := d.pool.Snapshot()
	return &st
}
