package httpfront

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"testing"
	"time"

	"prord/internal/fleet"
	"prord/internal/policy"
)

// testFleet builds k in-process fleet replicas sharing one ring, one
// exchanger and one set of demo backends, with peers registered both
// ways. The gossip loop interval is set far out so tests drive
// gossipOnce deterministically by hand.
func testFleet(t *testing.T, k, backends int) ([]*Distributor, *fleet.Ring, *fleet.Exchanger) {
	t.Helper()
	members := make([]int, k)
	for i := range members {
		members[i] = i
	}
	ring, err := fleet.NewRing(members)
	if err != nil {
		t.Fatal(err)
	}
	ex := fleet.NewExchanger()
	var urls []*url.URL
	for i := 0; i < backends; i++ {
		b := NewDemoBackend("b"+strconv.Itoa(i), testFiles, 1<<20, 0)
		srv := httptest.NewServer(b)
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		urls = append(urls, u)
	}
	var ds []*Distributor
	var handlers []http.Handler
	for i := 0; i < k; i++ {
		d, err := New(Config{
			Backends: urls,
			Policy:   policy.NewLARD(policy.Thresholds{}),
			Fleet: &FleetConfig{
				ReplicaID:      i,
				Ring:           ring,
				Exchanger:      ex,
				GossipInterval: time.Hour,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Close)
		ds = append(ds, d)
		handlers = append(handlers, d)
	}
	for _, d := range ds {
		d.SetPeers(handlers)
	}
	return ds, ring, ex
}

// fleetGet sends one request with a fixed client address through a
// replica's handler and returns the recorded response.
func fleetGet(t *testing.T, d *Distributor, addr, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.RemoteAddr = addr
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s via %s: status %d", path, addr, rec.Code)
	}
	return rec
}

func TestFleetConfigValidation(t *testing.T) {
	u, _ := url.Parse("http://localhost:1")
	base := Config{Backends: []*url.URL{u}, Policy: policy.NewWRR(1)}

	cfg := base
	cfg.Fleet = &FleetConfig{ReplicaID: 0}
	if _, err := New(cfg); err == nil {
		t.Fatal("Fleet without Ring/Exchanger should fail")
	}
	ring, _ := fleet.NewRing([]int{0, 1})
	cfg = base
	cfg.Fleet = &FleetConfig{ReplicaID: 7, Ring: ring, Exchanger: fleet.NewExchanger()}
	if _, err := New(cfg); err == nil {
		t.Fatal("ReplicaID outside the ring should fail")
	}
}

// TestFleetOwnershipAffinity is the session-affinity invariant: every
// request of a session is answered by the session's ring owner, no
// session is served by two replicas, and forwards are exactly the
// requests that entered through a non-owner.
func TestFleetOwnershipAffinity(t *testing.T) {
	ds, ring, _ := testFleet(t, 2, 2)
	served := make(map[string]map[string]bool) // session -> replica set
	var wantForwards [2]int64
	for s := 0; s < 40; s++ {
		addr := fmt.Sprintf("10.0.%d.1:4242", s)
		ingress := s % 2
		owner := ring.Owner(addr)
		for _, path := range []string{"/a.html", "/a.gif", "/b.html"} {
			if owner != ingress {
				wantForwards[ingress]++ // every request of a foreign session hops
			}
			rec := fleetGet(t, ds[ingress], addr, path)
			rep := rec.Header().Get(ReplicaHeader)
			if rep != strconv.Itoa(owner) {
				t.Fatalf("session %s (owner %d) answered by replica %s", addr, owner, rep)
			}
			if served[addr] == nil {
				served[addr] = make(map[string]bool)
			}
			served[addr][rep] = true
		}
	}
	for addr, reps := range served {
		if len(reps) != 1 {
			t.Errorf("session %s served by %d replicas: %v", addr, len(reps), reps)
		}
	}
	foreign := 0
	for i, d := range ds {
		cs := d.Core().Stats()
		if cs.FleetForwards != wantForwards[i] {
			t.Errorf("replica %d forwards = %d, want %d", i, cs.FleetForwards, wantForwards[i])
		}
		foreign += int(cs.FleetForwards)
	}
	if foreign == 0 {
		t.Fatal("no session landed on a non-owner; test layout degenerate")
	}
	// A forwarded request must never be tracked as a session at the
	// ingress replica: ownership is exclusive.
	for i, d := range ds {
		if own, total := d.Core().OwnedSessions(), d.Core().SessionCount(); own != total {
			t.Errorf("replica %d tracks %d sessions but owns only %d", i, total, own)
		}
	}
}

// TestFleetGossipLocalityAndRanks drives one anti-entropy round by hand
// and checks a serve at one replica becomes locality knowledge at the
// other.
func TestFleetGossipLocalityAndRanks(t *testing.T) {
	ds, ring, _ := testFleet(t, 2, 2)
	// Find a session replica 0 owns and serve a page through it.
	addr := ""
	for s := 0; ; s++ {
		a := fmt.Sprintf("10.1.%d.1:4242", s)
		if ring.Owner(a) == 0 {
			addr = a
			break
		}
	}
	rec := fleetGet(t, ds[0], addr, "/a.html")
	server, err := strconv.Atoi(rec.Header().Get(BackendHeader))
	if err != nil {
		t.Fatalf("no backend header: %v", err)
	}
	if ds[1].Core().LocalityContains(server, "/a.html") {
		t.Fatal("replica 1 knew the locality before gossip ran")
	}
	now := time.Now()
	ds[0].gossipOnce(now) // publish replica 0's deltas
	ds[1].gossipOnce(now) // merge them at replica 1
	if !ds[1].Core().LocalityContains(server, "/a.html") {
		t.Fatal("gossip did not propagate the locality delta")
	}
	st := ds[1].Fleet()
	if st == nil {
		t.Fatal("fleet state missing")
	}
	if st.Replica != 1 || st.Replicas != 2 || st.RingEpoch != 1 {
		t.Errorf("fleet state = %+v", st)
	}
	if _, ok := st.GossipStaleness["locality"]; !ok {
		t.Errorf("no locality staleness after an applied digest: %v", st.GossipStaleness)
	}
	// Replica 0 drained its buffer into the digest.
	if got := ds[0].Fleet().PendingDeltas; got != 0 {
		t.Errorf("replica 0 still has %d pending deltas after gossip", got)
	}
}

// TestFleetLiveChurnRace races live traffic on both replicas against
// gossip rounds and ring membership flaps — the front-end half of the
// race-fleet ownership-handoff storm. Run under -race.
func TestFleetLiveChurnRace(t *testing.T) {
	ds, ring, _ := testFleet(t, 2, 2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodGet, "/a.html", nil)
				req.RemoteAddr = fmt.Sprintf("10.9.%d.%d:99", g, i%64)
				ds[g%2].ServeHTTP(httptest.NewRecorder(), req)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ds[i%2].gossipOnce(time.Now())
		}
	}()
	sets := [][]int{{0, 1}, {0}, {1}, {1, 0}}
	for i := 0; i < 200; i++ {
		if err := ring.SetMembers(sets[i%len(sets)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	for i, d := range ds {
		if _, _, problem := d.Core().SessionCheck(); problem != "" {
			t.Fatalf("replica %d session table inconsistent after churn: %s", i, problem)
		}
	}
}

// TestFleetHealthGossip checks a peer's health verdict reaches this
// replica's Degraded view and ages out of the staleness window.
func TestFleetHealthGossip(t *testing.T) {
	ds, _, ex := testFleet(t, 2, 3)
	now := time.Now()
	ex.Publish(fleet.Digest{
		Replica:  0,
		Seq:      100,
		Degraded: []bool{false, true, false},
		HealthAt: now,
	})
	ds[1].gossipOnce(now)
	if !ds[1].fleetDegraded(1) {
		t.Fatal("gossiped degraded verdict not visible")
	}
	if ds[1].fleetDegraded(0) || ds[1].fleetDegraded(2) {
		t.Fatal("degraded verdict leaked to healthy backends")
	}
	// The peer recovers: its next digest clears the vote.
	ex.Publish(fleet.Digest{
		Replica:  0,
		Seq:      101,
		Degraded: []bool{false, false, false},
		HealthAt: now.Add(time.Second),
	})
	ds[1].gossipOnce(now.Add(time.Second))
	if ds[1].fleetDegraded(1) {
		t.Fatal("recovered verdict still degraded")
	}
}
