package httpfront

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"prord/internal/autoscale"
	"prord/internal/cache"
)

// CacheStateHeader reports whether a demo backend served from memory
// ("hit") or simulated disk ("miss").
const CacheStateHeader = "X-Prord-Cache"

// DemoBackend is a self-contained backend server for demos and tests: it
// serves deterministic pseudo-content for a fixed file table, keeps an
// in-memory LRU over the files, and sleeps MissLatency when a file is not
// resident (the "disk"). Prefetch-hinted requests (PrefetchHeader) warm
// the cache and return 204 without a body.
type DemoBackend struct {
	name        string
	files       map[string]int64
	missLatency time.Duration

	mu    sync.Mutex
	cache *cache.LRU
	stats DemoStats
}

// DemoStats are a demo backend's counters.
type DemoStats struct {
	Served     int64 `json:"served"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Prefetches int64 `json:"prefetches"`
}

// NewDemoBackend builds a backend named name serving the given file table
// (path -> size) with cacheBytes of memory and the given miss latency.
func NewDemoBackend(name string, files map[string]int64, cacheBytes int64, missLatency time.Duration) *DemoBackend {
	return &DemoBackend{
		name:        name,
		files:       files,
		missLatency: missLatency,
		cache:       cache.NewLRU(cacheBytes),
	}
}

// Stats returns a snapshot of the backend's counters.
func (b *DemoBackend) Stats() DemoStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// ensureResident loads the file into memory, reporting whether it was
// already there. The simulated disk read happens outside the lock.
func (b *DemoBackend) ensureResident(path string, size int64) (hit bool) {
	b.mu.Lock()
	if b.cache.Touch(path) {
		b.mu.Unlock()
		return true
	}
	b.mu.Unlock()
	if b.missLatency > 0 {
		time.Sleep(b.missLatency)
	}
	b.mu.Lock()
	b.cache.Insert(path, size)
	b.mu.Unlock()
	return false
}

// ServeHTTP implements http.Handler.
func (b *DemoBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(ProbeHeader) != "" {
		// Health probes just confirm the process answers; no content,
		// no cache side effects, no stats.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	size, ok := b.files[r.URL.Path]
	if !ok {
		http.NotFound(w, r)
		return
	}
	if r.Header.Get(PrefetchHeader) != "" {
		b.ensureResident(r.URL.Path, size)
		b.mu.Lock()
		b.stats.Prefetches++
		b.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	hit := b.ensureResident(r.URL.Path, size)
	b.mu.Lock()
	b.stats.Served++
	if hit {
		b.stats.Hits++
	} else {
		b.stats.Misses++
	}
	b.mu.Unlock()

	state := "miss"
	if hit {
		state = "hit"
	}
	w.Header().Set(CacheStateHeader, state)
	w.Header().Set("X-Prord-Server", b.name)
	w.Header().Set("Content-Type", contentType(r.URL.Path))
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	// Deterministic pseudo-content: the path repeated to the file size.
	pattern := []byte(fmt.Sprintf("<!-- %s -->\n", r.URL.Path))
	var written int64
	for written < size {
		chunk := pattern
		if rest := size - written; rest < int64(len(chunk)) {
			chunk = chunk[:rest]
		}
		n, err := w.Write(chunk)
		if err != nil {
			return
		}
		written += int64(n)
	}
}

func contentType(path string) string {
	switch {
	case len(path) > 4 && path[len(path)-4:] == ".gif":
		return "image/gif"
	case len(path) > 4 && path[len(path)-4:] == ".css":
		return "text/css"
	default:
		return "text/html; charset=utf-8"
	}
}

// StatsHandler serves a distributor's counters as JSON; mount it on an
// operations endpoint.
func StatsHandler(d *Distributor) http.Handler {
	return jsonHandler(func() any { return d.Stats() })
}

// StatsHandler serves the backend's own counters as JSON; mount it on
// the backend's operations endpoint so the front-end (or a load
// generator) can scrape per-backend cache behaviour.
func (b *DemoBackend) StatsHandler() http.Handler {
	return jsonHandler(func() any { return b.Stats() })
}

// ClusterStatsHandler serves the whole live cluster's state in one
// document: the distributor's counters, per-backend health, the
// overload layer's tier and ladder history (when enabled), the elastic
// pool's membership (when enabled), and each demo backend's counters,
// in backend order.
func ClusterStatsHandler(d *Distributor, backends []*DemoBackend) http.Handler {
	type payload struct {
		Distributor Stats             `json:"distributor"`
		Health      []BackendHealth   `json:"health"`
		Overload    *OverloadState    `json:"overload,omitempty"`
		Pool        *autoscale.Status `json:"pool,omitempty"`
		Gray        *GrayStats        `json:"gray,omitempty"`
		Fleet       *FleetState       `json:"fleet,omitempty"`
		Backends    []DemoStats       `json:"backends"`
	}
	return jsonHandler(func() any {
		p := payload{Distributor: d.Stats(), Health: d.Health(),
			Overload: d.Overload(), Pool: d.Pool(), Gray: d.Gray(), Fleet: d.Fleet()}
		for _, b := range backends {
			p.Backends = append(p.Backends, b.Stats())
		}
		return p
	})
}

// jsonHandler wraps a snapshot function as a JSON GET endpoint.
func jsonHandler(snapshot func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
