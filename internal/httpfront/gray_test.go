package httpfront

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"prord/internal/autoscale"
	"prord/internal/health"
	"prord/internal/overload"
	"prord/internal/policy"
)

// slowable wraps a demo backend with a switchable pre-delay — the live
// tests' stand-in for the load generator's slow=xN gray fault gate.
// The delay aborts early when the request is canceled so a hedged
// loser's connection releases promptly.
type slowable struct {
	h     http.Handler
	delay atomic.Int64
}

func (s *slowable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d := time.Duration(s.delay.Load()); d > 0 && r.Header.Get(ProbeHeader) == "" {
		select {
		case <-time.After(d):
		case <-r.Context().Done():
		}
	}
	s.h.ServeHTTP(w, r)
}

// grayCluster spins up n delayable demo backends plus a distributor.
func grayCluster(t *testing.T, n int, cfg Config) (*Distributor, *httptest.Server, []*slowable) {
	t.Helper()
	var slows []*slowable
	for i := 0; i < n; i++ {
		s := &slowable{h: NewDemoBackend("b"+strconv.Itoa(i), testFiles, 1<<20, 0)}
		slows = append(slows, s)
		srv := httptest.NewServer(s)
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Backends = append(cfg.Backends, u)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	front := httptest.NewServer(d)
	t.Cleanup(front.Close)
	return d, front, slows
}

// liveDetector scales the detector's windows down to test timescales.
func liveDetector() health.DetectorConfig {
	return health.DetectorConfig{
		Window:       32,
		MinSamples:   8,
		Hold:         25 * time.Millisecond,
		Eject:        2 * time.Second,
		RecoverHold:  time.Second,
		EvalInterval: time.Millisecond,
	}
}

// TestSlowBackendEjectedAndSessionsRebound is the live acceptance check
// for the detection layer: one backend turns 40ms-slow mid-run (it
// still answers 200, so breakers never see it), and the detector must
// eject it, keep new sessions off it, and progressively rebind the
// sessions already pinned to it.
func TestSlowBackendEjectedAndSessionsRebound(t *testing.T) {
	d, front, slows := grayCluster(t, 3, Config{
		Policy: policy.NewWRR(3),
		Gray:   &GrayConfig{Detector: liveDetector()},
	})
	// One keep-alive session pinned per backend (WRR hands them out in
	// order); pinned[2] will be stranded on the slow backend.
	pinned := make([]*http.Client, 3)
	for i := range pinned {
		pinned[i] = &http.Client{Transport: &http.Transport{}}
		get(t, pinned[i], front.URL, "/a.html")
	}
	// Fresh-connection traffic spreads across the pool and feeds the
	// detector's windows.
	fresh := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	for i := 0; i < 30; i++ {
		get(t, fresh, front.URL, "/a.html")
	}
	slows[2].delay.Store(int64(40 * time.Millisecond))
	deadline := time.Now().Add(10 * time.Second)
	for d.Gray().Ejections == 0 && time.Now().Before(deadline) {
		get(t, fresh, front.URL, "/a.html")
	}
	g := d.Gray()
	if g.Ejections == 0 {
		t.Fatal("40ms-slow backend never ejected")
	}
	if len(g.Degraded) != 1 || g.Degraded[0] != 2 {
		t.Fatalf("Degraded = %v, want [2]", g.Degraded)
	}
	// Bound sessions rebind off the ejected backend on their next
	// request rather than waiting out the outage.
	for i := range pinned {
		get(t, pinned[i], front.URL, "/a.html")
	}
	if d.Gray().GrayRebinds == 0 {
		t.Fatal("pinned session never rebound off the degraded backend")
	}
	// New sessions avoid it while the ejection holds.
	for i := 0; i < 9; i++ {
		resp := get(t, fresh, front.URL, "/a.html")
		if resp.Header.Get(BackendHeader) == "2" {
			t.Fatal("new session routed to an ejected backend")
		}
	}
}

// TestHedgedRequestsRescueSlowBackend exercises the live hedge race: a
// 75ms-slow backend's requests are rescued by backups that answer from
// a healthy replica, first response wins, and every hedge booking is
// balanced out by the end.
func TestHedgedRequestsRescueSlowBackend(t *testing.T) {
	d, front, slows := grayCluster(t, 3, Config{
		Policy: policy.NewWRR(3),
		Gray:   &GrayConfig{Detector: liveDetector(), Hedge: true},
	})
	// Three keep-alive sessions, one per backend; warm every latency
	// window past MinSamples so the hedge delay publishes.
	clients := make([]*http.Client, 3)
	for i := range clients {
		clients[i] = &http.Client{Transport: &http.Transport{}}
	}
	for i := 0; i < 10; i++ {
		for _, c := range clients {
			get(t, c, front.URL, "/a.html")
		}
	}
	if d.detector.HedgeDelay() <= 0 {
		t.Fatal("hedge delay not published after warmup")
	}
	slows[2].delay.Store(int64(75 * time.Millisecond))
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, c := range clients {
			resp := get(t, c, front.URL, "/a.html")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d under hedging", resp.StatusCode)
			}
		}
		if g := d.Gray(); g.HedgeWins > 0 {
			break
		}
	}
	g := d.Gray()
	if g.HedgesFired == 0 {
		t.Fatal("no hedges fired against a 75ms-slow backend")
	}
	if g.HedgeWins == 0 {
		t.Fatal("no hedge ever beat the slow primary")
	}
	if g.HedgeWins+g.HedgeCancels != g.HedgesFired {
		t.Fatalf("hedge accounting leaks: %+v", g)
	}
	for i := 0; i < 3; i++ {
		if n := d.Core().HedgeLoad(i); n != 0 {
			t.Fatalf("backend %d still holds %d hedge bookings", i, n)
		}
	}
}

// TestDeadlineBudgetCutsLostCause: with a deadline budget configured, a
// request to a backend that will not answer inside the budget fails
// fast instead of holding the client for the backend's full latency.
func TestDeadlineBudgetCutsLostCause(t *testing.T) {
	_, front, slows := grayCluster(t, 1, Config{
		Gray: &GrayConfig{Deadline: 30 * time.Millisecond},
	})
	slows[0].delay.Store(int64(300 * time.Millisecond))
	start := time.Now()
	resp, err := http.Get(front.URL + "/a.html")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if elapsed >= 300*time.Millisecond {
		t.Fatalf("deadline budget did not cut the request short: %v", elapsed)
	}
}

func TestScaledDeadline(t *testing.T) {
	base := 100 * time.Millisecond
	cases := []struct {
		tier overload.Tier
		want time.Duration
	}{
		{overload.Normal, base},
		{overload.Elevated, base},
		{overload.Saturated, base / 2},
		{overload.Critical, base / 4},
	}
	for _, c := range cases {
		if got := scaledDeadline(base, c.tier); got != c.want {
			t.Errorf("scaledDeadline(%v, %v) = %v, want %v", base, c.tier, got, c.want)
		}
	}
	if got := scaledDeadline(0, overload.Critical); got != 0 {
		t.Errorf("scaledDeadline(0, Critical) = %v, want 0 (disabled)", got)
	}
}

// TestProbeSkipsAbsentAndDrainingMembers is the prober regression: the
// active prober must only target pool members that could take new
// traffic — probing an Absent (deprovisioned) or Draining backend just
// manufactures breaker churn.
func TestProbeSkipsAbsentAndDrainingMembers(t *testing.T) {
	d, _, _ := testCluster(t, 3, Config{
		Health:        health.Config{Threshold: 1, Backoff: time.Hour},
		ProbeInterval: time.Hour,
		Autoscale:     &autoscale.Config{Initial: 2, Min: 1},
	})
	// Slots: Initial=2 leaves backend 2 Absent; drain one member so all
	// three non-probe-worthy states are covered.
	if _, ok := d.pool.Drain(time.Now()); !ok {
		t.Fatal("drain refused")
	}
	now := time.Now()
	d.hmu.Lock()
	for _, b := range d.breakers {
		b.OnFailure(now) // Threshold 1: every breaker is now open
	}
	d.hmu.Unlock()
	d.probeOnce()
	d.hmu.Lock()
	defer d.hmu.Unlock()
	for i := range d.probes {
		member := d.pool.AcceptingNew(i)
		if member && d.probes[i] == 0 {
			t.Errorf("pool member %d with an open breaker was not probed", i)
		}
		if !member && d.probes[i] != 0 {
			t.Errorf("absent/draining backend %d was probed", i)
		}
	}
}

// TestHedgeCancellationLeaksNeither drives the live hedge race through
// both finishing orders — backup beats a slow primary (the primary's
// transfer is canceled) and primary beats a slow backup (the backup is
// canceled) — and then checks that nothing leaked: every hedge booking
// released, the accounting exact, and the goroutine count back at its
// baseline. Hold is effectively infinite so ejection never interferes
// and every request keeps racing.
func TestHedgeCancellationLeaksNeither(t *testing.T) {
	det := liveDetector()
	det.Hold = time.Hour // detection off: this test is about the race itself
	d, front, slows := grayCluster(t, 3, Config{
		Policy: policy.NewWRR(3),
		Gray:   &GrayConfig{Detector: det, Hedge: true},
	})
	// Warm every window with fast responses so the hedge delay is tiny
	// and fires on essentially every subsequent request.
	clients := make([]*http.Client, 3)
	for i := range clients {
		clients[i] = &http.Client{Transport: &http.Transport{}}
	}
	for i := 0; i < 10; i++ {
		for _, c := range clients {
			get(t, clients[0], front.URL, "/a.html")
			get(t, c, front.URL, "/a.html")
		}
	}
	if d.detector.HedgeDelay() <= 0 {
		t.Fatal("hedge delay not published after warmup")
	}
	baseline := runtime.NumGoroutine()

	// Order A: primary slow, backup fast — the backup wins, the
	// primary's transfer is canceled mid-copy.
	// Order B: every backend equally moderate — the primary usually
	// commits first and the fired backup is canceled.
	slows[2].delay.Store(int64(50 * time.Millisecond))
	slows[0].delay.Store(int64(3 * time.Millisecond))
	slows[1].delay.Store(int64(3 * time.Millisecond))
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for _, c := range clients {
			resp := get(t, c, front.URL, "/a.html")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d under hedging", resp.StatusCode)
			}
		}
		if g := d.Gray(); g.HedgeWins > 0 && g.HedgeCancels > 0 {
			break
		}
	}

	g := d.Gray()
	if g.HedgeWins == 0 {
		t.Fatal("order A never happened: no backup beat the slow primary")
	}
	if g.HedgeCancels == 0 {
		t.Fatal("order B never happened: no primary beat its backup")
	}
	if g.HedgeWins+g.HedgeCancels != g.HedgesFired {
		t.Fatalf("hedge accounting leaks: %+v", g)
	}
	for i := 0; i < 3; i++ {
		if n := d.Core().HedgeLoad(i); n != 0 {
			t.Fatalf("backend %d still holds %d hedge bookings", i, n)
		}
	}
	// Leak check: once in-flight work settles, the goroutine count must
	// return to the pre-storm baseline (idle keep-alive readers allowed
	// a little slack, hence the tolerance and the settle loop).
	settled := time.Now().Add(5 * time.Second)
	for time.Now().Before(settled) {
		if runtime.NumGoroutine() <= baseline+6 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}
