package httpfront

// Live-front-end tests for the elastic pool: a scripted ScaleUp must
// push warm-preload hints to the joined backend over HTTP, a ScaleDown
// must drain and reap once bookings clear, and the pool's state must
// show up on the cluster stats endpoint.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"prord/internal/autoscale"
	"prord/internal/overload"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestLiveScaleUpWarmsBackend joins a backend into a warm pool and
// checks the rank-table preload hints actually arrive at it as HTTP
// prefetch requests.
func TestLiveScaleUpWarmsBackend(t *testing.T) {
	// No demand traffic: the only prefetch hints in flight are the warm
	// preload's, so the per-backend counts below are unambiguous.
	d, _, backs := testCluster(t, 3, Config{
		Miner:    testMiner(),
		Prefetch: true,
		Autoscale: &autoscale.Config{
			Initial: 2,
			Min:     1,
			WarmTop: 8,
		},
		ScaleInterval: time.Hour, // park the ticker: the test drives every step
	})

	srv, ok := d.ScaleUp()
	if !ok || srv != 2 {
		t.Fatalf("ScaleUp = %d, %v; want 2, true", srv, ok)
	}
	if st := d.Pool(); st.Size != 3 || st.States[2] != autoscale.Warming {
		t.Fatalf("pool after join = %+v, want size 3 with slot 2 warming", st)
	}
	// The warm hints transfer asynchronously through the prefetch worker.
	waitFor(t, "warm hints at the joined backend", func() bool {
		return backs[2].Stats().Prefetches > 0
	})
	if backs[0].Stats().Prefetches+backs[1].Stats().Prefetches > 0 {
		t.Error("warm preload leaked hints to already-ready backends")
	}
	// A second join must fail: the pool is at Max.
	if _, ok := d.ScaleUp(); ok {
		t.Fatal("ScaleUp past Max succeeded")
	}
}

// TestLiveScaleDownDrainsAndReaps drains a backend with no in-flight
// work: the reap is immediate, the pool shrinks, the drained slot's
// sessions rebook, and traffic keeps flowing.
func TestLiveScaleDownDrainsAndReaps(t *testing.T) {
	d, front, _ := testCluster(t, 2, Config{
		Miner: testMiner(),
		Autoscale: &autoscale.Config{
			Initial:  2,
			Min:      1,
			ColdJoin: true,
		},
		ScaleInterval: time.Hour,
	})
	client := front.Client()
	get(t, client, front.URL, "/a.html")

	srv, ok := d.ScaleDown()
	if !ok {
		t.Fatal("ScaleDown refused with the pool above Min")
	}
	if st := d.Pool(); st.Size != 1 || st.States[srv] != autoscale.Absent {
		t.Fatalf("pool after idle drain = %+v, want size 1 with slot %d reaped", st, srv)
	}
	if st := d.Pool(); st.Drains != 1 {
		t.Fatalf("drains = %d, want 1", st.Drains)
	}
	// At Min the pool refuses to shrink further.
	if _, ok := d.ScaleDown(); ok {
		t.Fatal("ScaleDown below Min succeeded")
	}
	// Traffic still flows through the surviving backend.
	resp := get(t, client, front.URL, "/b.html")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain request status = %d", resp.StatusCode)
	}
}

// TestClusterStatsExposePool checks /_prord/cluster carries the pool
// block while autoscaling is on, and omits it when off.
func TestClusterStatsExposePool(t *testing.T) {
	d, front, backs := testCluster(t, 2, Config{
		Miner: testMiner(),
		Autoscale: &autoscale.Config{
			Initial:  2,
			Min:      1,
			ColdJoin: true,
		},
		ScaleInterval: time.Hour,
	})
	get(t, front.Client(), front.URL, "/a.html")
	if _, ok := d.ScaleDown(); !ok {
		t.Fatal("ScaleDown refused")
	}
	srv := httptest.NewServer(ClusterStatsHandler(d, backs))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Pool *struct {
			Min    int      `json:"min"`
			Max    int      `json:"max"`
			Size   int      `json:"size"`
			States []string `json:"states"`
			Drains int64    `json:"drains"`
		} `json:"pool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Pool == nil {
		t.Fatal("cluster stats missing pool block with autoscaling on")
	}
	if payload.Pool.Size != 1 || payload.Pool.Max != 2 || payload.Pool.Drains != 1 {
		t.Fatalf("pool block = %+v, want size 1 of max 2 with one drain", payload.Pool)
	}
	if len(payload.Pool.States) != 2 || payload.Pool.States[1] != "absent" {
		t.Fatalf("pool states = %v, want the drained slot absent", payload.Pool.States)
	}

	// With autoscaling off the block is absent entirely.
	d2, front2, backs2 := testCluster(t, 1, Config{})
	get(t, front2.Client(), front2.URL, "/a.html")
	srv2 := httptest.NewServer(ClusterStatsHandler(d2, backs2))
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatal(err)
	}
	if _, ok := generic["pool"]; ok {
		t.Fatal("pool block present with autoscaling disabled")
	}
}

// TestLiveOrganicControllerWired checks the organic controller comes up
// when Overload and Autoscale are both configured, and that a join it
// decides flows through finishJoin into the pool and the core.
func TestLiveOrganicControllerWired(t *testing.T) {
	d, _, _ := testCluster(t, 2, Config{
		Miner:    testMiner(),
		Overload: &overload.Config{},
		Autoscale: &autoscale.Config{
			Initial:  1,
			Min:      1,
			UpHold:   time.Millisecond,
			Cooldown: time.Millisecond,
			ColdJoin: true,
		},
		ScaleInterval: time.Hour,
	})
	if d.actrl == nil {
		t.Fatal("no organic controller with Overload and Autoscale both configured")
	}
	// Sustained Saturated past UpHold: the second observation joins.
	now := time.Now()
	d.actrl.Observe(now, overload.Saturated)
	act, ok := d.actrl.Observe(now.Add(50*time.Millisecond), overload.Saturated)
	if !ok || act.Kind != autoscale.ActionJoin {
		t.Fatalf("controller under sustained Saturated = %+v, %v; want a join", act, ok)
	}
	d.finishJoin(act.Server)
	if st := d.Pool(); st.Size != 2 || st.Joins != 1 {
		t.Fatalf("pool after organic join = %+v, want size 2 with one join", st)
	}
}
