package httpfront

import (
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prord/internal/fleet"
	"prord/internal/health"
)

// This file is the distributor's fleet face: partitioned session
// ownership over internal/fleet's consistent-hash ring plus the gossip
// loop that reconciles non-partitionable shared state (locality deltas,
// popularity ranks, health verdicts) between replicas. Forwarding is
// one in-process handler call — the user-space stand-in for the
// distributor-to-distributor RPC a kernel deployment would make — and
// is bounded to one hop by ForwardedHeader, so a racing ring change can
// never bounce a request around the fleet.

// ReplicaHeader reports which fleet replica's core made the routing
// decision for a response (only set in fleet mode): the load
// generator's session-affinity assertions read it.
const ReplicaHeader = "X-Prord-Replica"

// ForwardedHeader marks a request already forwarded once by its ingress
// replica; the receiver serves it locally whatever the ring says.
const ForwardedHeader = "X-Prord-Fleet-Forwarded"

// FleetConfig wires one Distributor into a multi-replica fleet. Ring
// and Exchanger are shared by every replica in the fleet; ReplicaID
// must be a ring member.
type FleetConfig struct {
	// ReplicaID is this distributor's ring member id.
	ReplicaID int
	// Ring is the fleet's shared session-ownership ring.
	Ring *fleet.Ring
	// Exchanger is the fleet's shared digest board.
	Exchanger *fleet.Exchanger
	// GossipInterval is the publish+merge period. Default 250ms.
	GossipInterval time.Duration
	// Bounds are the per-field staleness bounds applied when merging
	// peer digests; zero fields take the fleet package defaults.
	Bounds fleet.Bounds
}

// fleetPeers is the registered fleet, indexed by replica id; entries
// may be nil (unknown peer — requests it owns are served locally).
type fleetPeers struct {
	handlers []http.Handler
}

// fleetState is the adapter-side fleet machinery hung off Distributor.
type fleetState struct {
	cfg    FleetConfig
	buf    *fleet.Buffer
	merger *fleet.Merger
	seq    atomic.Uint64
	peers  atomic.Pointer[fleetPeers]
	stop   chan struct{}

	// healthMu guards the per-peer health verdicts; the union mask the
	// core's Degraded hook reads is rebuilt under it and published
	// through degMask, so the hook itself stays lock-free.
	healthMu sync.Mutex
	peerDeg  map[int][]bool
	degMask  atomic.Pointer[[]bool]
}

// newFleetState builds the adapter-side fleet machinery for a
// defaulted FleetConfig.
func newFleetState(cfg FleetConfig) *fleetState {
	return &fleetState{
		cfg:     cfg,
		buf:     fleet.NewBuffer(0),
		merger:  fleet.NewMerger(cfg.ReplicaID, cfg.Bounds),
		peerDeg: make(map[int][]bool),
	}
}

// SetPeers registers the fleet's request handlers, indexed by replica
// id (the entry at this replica's own id is ignored). Handlers are
// typically the other replicas' Distributors, but anything that serves
// the forwarded request works — tests substitute recorders. Safe to
// call concurrently with traffic; until it is called, foreign-owned
// requests are served locally (correct, just colder).
func (d *Distributor) SetPeers(handlers []http.Handler) {
	if d.fleet == nil {
		return
	}
	cp := make([]http.Handler, len(handlers))
	copy(cp, handlers)
	d.fleet.peers.Store(&fleetPeers{handlers: cp})
}

// peerFor returns the registered handler for a replica id, nil when
// none is known.
func (d *Distributor) peerFor(replica int) http.Handler {
	ps := d.fleet.peers.Load()
	if ps == nil || replica < 0 || replica >= len(ps.handlers) {
		return nil
	}
	return ps.handlers[replica]
}

// forwardIfForeign applies the ownership-handoff path: when the session
// key hashes to another replica and that replica's handler is
// registered, the request is handed over (marked so it cannot hop
// twice) and true is returned. The core's forward accounting also
// releases any stale local binding a ring change left behind.
func (d *Distributor) forwardIfForeign(w http.ResponseWriter, r *http.Request) bool {
	if d.fleet == nil || r.Header.Get(ForwardedHeader) != "" {
		return false
	}
	if r.Header.Get(PrefetchHeader) != "" || r.Header.Get(ProbeHeader) != "" {
		return false // internal traffic is never session-routed
	}
	owner, owned := d.core.Owner(r.RemoteAddr)
	if owned {
		return false
	}
	peer := d.peerFor(owner)
	if peer == nil {
		// Unknown peer: serve locally rather than fail. The session
		// stays consistent — the owner would make the same decisions
		// once registered — it just loses locality until then.
		return false
	}
	d.core.NoteFleetForward(r.RemoteAddr)
	fwd := r.Clone(r.Context())
	fwd.Header.Set(ForwardedHeader, strconv.Itoa(d.fleet.cfg.ReplicaID))
	peer.ServeHTTP(w, fwd)
	return true
}

// noteFleetServe buffers one served demand request for the next gossip
// digest: the backend now plausibly holds the file (locality delta) and
// the path earned a popularity observation (rank delta).
func (d *Distributor) noteFleetServe(server int, path string) {
	if d.fleet == nil {
		return
	}
	d.fleet.buf.NoteLocality(server, path)
	d.fleet.buf.NoteRank(path)
}

// fleetDegraded reports whether any peer's gossiped health verdict
// (degraded or breaker-open) covers the backend. Lock-free.
func (d *Distributor) fleetDegraded(server int) bool {
	if d.fleet == nil {
		return false
	}
	mask := d.fleet.degMask.Load()
	if mask == nil || server < 0 || server >= len(*mask) {
		return false
	}
	return (*mask)[server]
}

// gossipLoop publishes this replica's digest and merges peers' on a
// fixed cadence until stopped.
func (d *Distributor) gossipLoop(stop <-chan struct{}, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			d.gossipOnce(time.Now())
		}
	}
}

// gossipOnce runs one anti-entropy round: drain the local delta buffer
// into a digest, publish it, merge every peer digest within the
// staleness bounds, and fold what was applied into the core.
func (d *Distributor) gossipOnce(now time.Time) {
	fs := d.fleet
	loc, ranks := fs.buf.Drain()

	n := len(d.cfg.Backends)
	open := make([]bool, n)
	d.hmu.Lock()
	for i, b := range d.breakers {
		open[i] = b.State() != health.Closed
	}
	d.hmu.Unlock()
	deg := make([]bool, n)
	if d.detector != nil {
		for i := range deg {
			deg[i] = d.detector.Degraded(i)
		}
	}
	fs.cfg.Exchanger.Publish(fleet.Digest{
		Replica:     fs.cfg.ReplicaID,
		Seq:         fs.seq.Add(1),
		Locality:    loc,
		LocalityAt:  now,
		Ranks:       ranks,
		RanksAt:     now,
		Degraded:    deg,
		BreakerOpen: open,
		HealthAt:    now,
	})

	st := fs.merger.Merge(now, fs.cfg.Exchanger.Digests(), fleet.Apply{
		Locality: func(ld fleet.LocalityDelta) {
			d.core.NoteRemoteLocality(ld.Server, ld.Path)
		},
		Ranks: func(path string) {
			d.core.ObserveRank(path)
		},
		Health: d.applyFleetHealth,
	})
	if st.Ranks > 0 {
		// Peer popularity folds into the decision snapshot alongside any
		// buffered local observations.
		d.core.RefreshMining()
	}
}

// applyFleetHealth folds one peer's health verdicts and republishes the
// union mask the Degraded hook reads. A peer that stops reporting a
// backend as bad clears its vote on its next digest.
func (d *Distributor) applyFleetHealth(replica int, degraded, breakerOpen []bool) {
	fs := d.fleet
	n := len(d.cfg.Backends)
	vote := make([]bool, n)
	for i := 0; i < n; i++ {
		if i < len(degraded) && degraded[i] {
			vote[i] = true
		}
		if i < len(breakerOpen) && breakerOpen[i] {
			vote[i] = true
		}
	}
	fs.healthMu.Lock()
	fs.peerDeg[replica] = vote
	mask := make([]bool, n)
	for _, v := range fs.peerDeg {
		for i := 0; i < n && i < len(v); i++ {
			if v[i] {
				mask[i] = true
			}
		}
	}
	fs.healthMu.Unlock()
	fs.degMask.Store(&mask)
}

// FleetState is the fleet block of the cluster stats endpoint.
type FleetState struct {
	// Replica is this distributor's ring member id.
	Replica int `json:"replica"`
	// Replicas is the current ring membership size.
	Replicas int `json:"replicas"`
	// RingEpoch counts membership publishes (1 for a static fleet).
	RingEpoch uint64 `json:"ring_epoch"`
	// OwnedSessions counts tracked sessions the ring assigns here.
	OwnedSessions int `json:"owned_sessions"`
	// Forwards counts requests handed to their owning replica.
	Forwards int64 `json:"forwards"`
	// OwnershipRebinds counts stale local bindings released by foreign
	// touches after ring membership changes.
	OwnershipRebinds int64 `json:"ownership_rebinds"`
	// PendingDeltas counts buffered locality/rank deltas awaiting the
	// next gossip round.
	PendingDeltas int `json:"pending_deltas"`
	// GossipStaleness is the worst applied-peer digest age per field
	// ("locality", "ranks", "health"); a field is absent until a peer
	// digest has been applied for it.
	GossipStaleness map[string]string `json:"gossip_staleness,omitempty"`
}

// Fleet returns the fleet snapshot, or nil when fleet mode is off.
func (d *Distributor) Fleet() *FleetState {
	if d.fleet == nil {
		return nil
	}
	fs := d.fleet
	cs := d.core.Stats()
	locPend, rankPend := fs.buf.Pending()
	st := &FleetState{
		Replica:          fs.cfg.ReplicaID,
		Replicas:         fs.cfg.Ring.Size(),
		RingEpoch:        fs.cfg.Ring.Epoch(),
		OwnedSessions:    d.core.OwnedSessions(),
		Forwards:         cs.FleetForwards,
		OwnershipRebinds: cs.OwnershipRebinds,
		PendingDeltas:    locPend + rankPend,
	}
	if ages := fs.merger.Staleness(time.Now()); len(ages) > 0 {
		st.GossipStaleness = make(map[string]string, len(ages))
		for f, age := range ages {
			st.GossipStaleness[f] = age.String()
		}
	}
	return st
}
