package httpfront

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"prord/internal/dispatch"
	"prord/internal/health"
	"prord/internal/overload"
)

// holdBackend serves testFiles-style 200s but parks requests for paths
// in hold until release is closed, pinning them in flight.
type holdBackend struct {
	mu      sync.Mutex
	hold    map[string]bool
	release chan struct{}
}

func newHoldBackend(hold ...string) *holdBackend {
	b := &holdBackend{hold: make(map[string]bool), release: make(chan struct{})}
	for _, p := range hold {
		b.hold[p] = true
	}
	return b
}

func (b *holdBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b.mu.Lock()
	held := b.hold[r.URL.Path]
	release := b.release
	b.mu.Unlock()
	if held {
		<-release
	}
	io.WriteString(w, "ok")
}

func (b *holdBackend) Release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case <-b.release:
	default:
		close(b.release)
	}
}

// overloadCluster builds a distributor over custom handlers.
func overloadCluster(t *testing.T, cfg Config, handlers ...http.Handler) (*Distributor, *httptest.Server) {
	t.Helper()
	for _, h := range handlers {
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Backends = append(cfg.Backends, u)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	front := httptest.NewServer(d)
	t.Cleanup(front.Close)
	return d, front
}

// freshClient returns a client with its own connection pool, i.e. a new
// front-end session (sessions key on RemoteAddr).
func freshClient(t *testing.T) *http.Client {
	t.Helper()
	tr := &http.Transport{}
	t.Cleanup(tr.CloseIdleConnections)
	return &http.Client{Transport: tr}
}

// waitInFlight polls until the overload layer sees n admitted requests.
func waitInFlight(t *testing.T, d *Distributor, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ov := d.Overload(); ov != nil && ov.InFlight >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("never saw %d requests in flight", n)
}

// TestOverloadAdmissionShedsAtCritical pins one request in a
// single-backend cluster sized for one in-flight request; the next
// demand request must be refused with 503 + Retry-After + ShedHeader
// and counted as shed, and traffic must flow again after the pinned
// request completes.
func TestOverloadAdmissionShedsAtCritical(t *testing.T) {
	back := newHoldBackend("/slow.html")
	d, front := overloadCluster(t, Config{
		Overload: &overload.Config{CapacityPerBackend: 1, QueueLimit: -1, MinHold: time.Minute},
	}, back)

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := freshClient(t).Get(front.URL + "/slow.html")
		if err != nil {
			t.Errorf("held request failed: %v", err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	waitInFlight(t, d, 1)

	resp := get(t, freshClient(t), front.URL, "/a.html")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(ShedHeader) == "" {
		t.Error("shed 503 missing ShedHeader")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed 503 missing Retry-After")
	}

	back.Release()
	<-done
	if resp := get(t, freshClient(t), front.URL, "/a.html"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200 (gate slot not released?)", resp.StatusCode)
	}

	st := d.Stats()
	if st.Shed != 1 {
		t.Errorf("Shed = %d, want 1", st.Shed)
	}
	if st.Requests != 3 {
		t.Errorf("Requests = %d, want 3 (shed requests are received requests)", st.Requests)
	}
	ov := d.Overload()
	if ov == nil || ov.Tier != "critical" {
		t.Errorf("overload state = %+v, want critical tier held by MinHold", ov)
	}
	if len(ov.Transitions) == 0 {
		t.Error("no tier transitions recorded")
	}
}

// TestOverloadQueueGrantsFreedSlot queues a request at Critical and
// checks it completes once the pinned request releases its slot.
func TestOverloadQueueGrantsFreedSlot(t *testing.T) {
	back := newHoldBackend("/slow.html")
	d, front := overloadCluster(t, Config{
		Overload: &overload.Config{
			CapacityPerBackend: 1, QueueLimit: 1,
			QueueTimeout: 5 * time.Second, MinHold: time.Minute,
		},
	}, back)

	held := make(chan struct{})
	go func() {
		defer close(held)
		resp, err := freshClient(t).Get(front.URL + "/slow.html")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitInFlight(t, d, 1)

	queued := make(chan int)
	go func() {
		resp, err := freshClient(t).Get(front.URL + "/a.html")
		if err != nil {
			queued <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		queued <- resp.StatusCode
	}()
	// Give the second request time to reach the accept queue, then free
	// the slot it is waiting for.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ov := d.Overload(); ov != nil && ov.Queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	back.Release()
	if code := <-queued; code != http.StatusOK {
		t.Fatalf("queued request status = %d, want 200", code)
	}
	<-held
	if st := d.Stats(); st.Shed != 0 {
		t.Errorf("Shed = %d, want 0 (queued request was granted, not shed)", st.Shed)
	}
}

// TestOverloadQueueTimeoutSheds bounds the accept-queue wait: a queued
// request whose slot never frees is shed after QueueTimeout.
func TestOverloadQueueTimeoutSheds(t *testing.T) {
	back := newHoldBackend("/slow.html")
	defer func() { back.Release() }()
	d, front := overloadCluster(t, Config{
		Overload: &overload.Config{
			CapacityPerBackend: 1, QueueLimit: 1,
			QueueTimeout: 20 * time.Millisecond, MinHold: time.Minute,
		},
	}, back)

	go func() {
		resp, err := freshClient(t).Get(front.URL + "/slow.html")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitInFlight(t, d, 1)

	resp := get(t, freshClient(t), front.URL, "/a.html")
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get(ShedHeader) == "" {
		t.Fatalf("timed-out queued request: status %d, shed header %q",
			resp.StatusCode, resp.Header.Get(ShedHeader))
	}
	if st := d.Stats(); st.Shed != 1 {
		t.Errorf("Shed = %d, want 1", st.Shed)
	}
}

// TestOverloadEmbeddedBypassNeverShed: an in-progress session's
// embedded-object request is admitted even at Critical with a full
// gate, while a fresh session's page request is shed.
func TestOverloadEmbeddedBypassNeverShed(t *testing.T) {
	back := newHoldBackend("/slow.html")
	d, front := overloadCluster(t, Config{
		Miner: testMiner(),
		Overload: &overload.Config{
			CapacityPerBackend: 1, QueueLimit: -1, MinHold: time.Minute,
		},
	}, back)

	// Establish a session while the cluster is idle.
	session := freshClient(t)
	if resp := get(t, session, front.URL, "/a.html"); resp.StatusCode != http.StatusOK {
		t.Fatalf("page status = %d", resp.StatusCode)
	}

	// Pin the gate full so the tier is Critical with no free slot.
	go func() {
		resp, err := freshClient(t).Get(front.URL + "/slow.html")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitInFlight(t, d, 1)

	// The session's embedded object bypasses admission and completes.
	if resp := get(t, session, front.URL, "/a.gif"); resp.StatusCode != http.StatusOK {
		t.Fatalf("embedded object of admitted session shed: status = %d", resp.StatusCode)
	}
	// A fresh session's page is shed.
	if resp := get(t, freshClient(t), front.URL, "/b.html"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fresh page at Critical: status = %d, want 503", resp.StatusCode)
	}
	back.Release()
	if st := d.Stats(); st.Shed != 1 {
		t.Errorf("Shed = %d, want exactly the fresh page", st.Shed)
	}
}

// TestOverloadElevatedShedsPrefetch: from Elevated up, no prefetch
// hints are generated and the suppression is counted. The proactive
// pass runs after the response completes — the same discipline as the
// simulator — so a request that itself lifts the ladder to Elevated
// has its own pass shed.
func TestOverloadElevatedShedsPrefetch(t *testing.T) {
	d, front, _ := testCluster(t, 2, Config{
		Miner:    testMiner(),
		Prefetch: true,
		Overload: &overload.Config{
			CapacityPerBackend: 100,
			ElevatedAt:         0.004, // one in-flight request crosses it
			SaturatedAt:        0.8,
			CriticalAt:         0.9,
			MinHold:            time.Minute,
		},
	})
	client := front.Client()
	// Each request lifts the tier to Elevated before it completes, and
	// MinHold keeps it there, so every proactive pass is suppressed.
	get(t, client, front.URL, "/a.html")
	get(t, client, front.URL, "/b.html")
	st := d.Stats()
	if st.PrefetchShed != 2 {
		t.Errorf("PrefetchShed = %d, want 2 (one suppressed pass per page)", st.PrefetchShed)
	}
	if st.Prefetches != 0 {
		t.Errorf("Elevated tier still generated hints: %d", st.Prefetches)
	}
	if ov := d.Overload(); ov == nil || ov.Tier != "elevated" {
		t.Errorf("overload state = %+v, want elevated tier held by MinHold", ov)
	}
}

// TestOverloadSaturatedStopsBundleBypass: from Saturated up the
// embedded-object dispatcher bypass stops (requests route through the
// fallback policy instead of following the session's backend).
func TestOverloadSaturatedStopsBundleBypass(t *testing.T) {
	d, front, _ := testCluster(t, 2, Config{
		Miner: testMiner(),
		Overload: &overload.Config{
			CapacityPerBackend: 100,
			ElevatedAt:         0.002,
			SaturatedAt:        0.004, // one in-flight request crosses it
			CriticalAt:         0.9,
			MinHold:            time.Minute,
		},
	})
	client := front.Client()
	get(t, client, front.URL, "/a.html") // lifts the tier to Saturated
	get(t, client, front.URL, "/a.gif")  // would bypass at Normal
	st := d.Stats()
	if st.DirectForwards != 0 {
		t.Errorf("DirectForwards = %d, want 0 (bypass must stop at Saturated)", st.DirectForwards)
	}
	if st.Dispatches != 2 {
		t.Errorf("Dispatches = %d, want 2 (both requests through the dispatcher)", st.Dispatches)
	}
}

// TestOverloadUnavailableFastFail: with every breaker open the
// front-end answers 503 immediately (no ShedHeader — the cluster is
// dead, not overloaded) instead of feeding the dead backend.
func TestOverloadUnavailableFastFail(t *testing.T) {
	bad := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	d, front := overloadCluster(t, Config{
		Health:  health.Config{Threshold: 1, Backoff: time.Hour},
		Retries: -1,
	}, bad)
	client := freshClient(t)
	// First request trips the single breaker (raw 500 reaches the client
	// with retries disabled).
	if resp := get(t, client, front.URL, "/a.html"); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("first status = %d, want 500", resp.StatusCode)
	}
	resp := get(t, client, front.URL, "/a.html")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-breakers-open status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(ShedHeader) != "" {
		t.Error("unavailable 503 must not carry ShedHeader")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("unavailable 503 missing Retry-After")
	}
	st := d.Stats()
	if st.Unavailable != 1 {
		t.Errorf("Unavailable = %d, want 1", st.Unavailable)
	}
	if st.Requests != 2 {
		t.Errorf("Requests = %d, want 2 (refused requests are still received)", st.Requests)
	}
	if sum := st.PerBackend[0]; sum != 1 {
		t.Errorf("PerBackend[0] = %d, want 1 (refusal never proxied)", sum)
	}
}

// TestPrefetchHintsDroppedCounted pins the satellite fix for the
// silent default-case drop: hints past the queue capacity increment
// PrefetchHintsDropped.
func TestPrefetchHintsDroppedCounted(t *testing.T) {
	u, _ := url.Parse("http://localhost:1")
	d, err := New(Config{Backends: []*url.URL{u}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// White-box: install a tiny hint queue with no drainer so the second
	// hint must hit the default case.
	d.hmu.Lock()
	d.prefetch = make(chan prefetchJob, 1)
	d.hmu.Unlock()
	d.enqueuePrefetch(dispatch.Plan{Server: 0, Bundle: []string{"/a.gif", "/b.gif"}})
	if st := d.Stats(); st.PrefetchHintsDropped != 1 {
		t.Fatalf("PrefetchHintsDropped = %d, want 1", st.PrefetchHintsDropped)
	}
}

// TestClusterStatsExposeOverload checks /_prord/cluster carries the
// overload block and the hint-drop counter.
func TestClusterStatsExposeOverload(t *testing.T) {
	d, front, backs := testCluster(t, 2, Config{
		Miner:    testMiner(),
		Overload: &overload.Config{},
	})
	get(t, front.Client(), front.URL, "/a.html")
	srv := httptest.NewServer(ClusterStatsHandler(d, backs))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Distributor map[string]any `json:"distributor"`
		Overload    map[string]any `json:"overload"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := payload.Distributor["prefetch_hints_dropped"]; !ok {
		t.Error("cluster stats missing prefetch_hints_dropped")
	}
	if tier, ok := payload.Overload["tier"]; !ok || tier == "" {
		t.Errorf("cluster stats overload block = %v, want a tier", payload.Overload)
	}
	// And with the layer disabled the block is absent entirely.
	d2, front2, backs2 := testCluster(t, 1, Config{})
	get(t, front2.Client(), front2.URL, "/a.html")
	srv2 := httptest.NewServer(ClusterStatsHandler(d2, backs2))
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, _ := io.ReadAll(resp2.Body)
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["overload"]; ok {
		t.Error("overload block present with the layer disabled")
	}
}
