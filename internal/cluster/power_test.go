package cluster

import (
	"testing"
	"time"

	"prord/internal/policy"
)

func TestPowerManagementSavesEnergyAtLowLoad(t *testing.T) {
	tr, m := testWorkload(t, 3000, 201)
	cl, err := New(Config{
		Params:   smallParams(8, 4, 2),
		Policy:   policy.NewLARD(policy.Thresholds{}),
		Miner:    m,
		Power:    PowerParams{Enabled: true, Interval: 200 * time.Millisecond},
		Features: Features{},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Completed != int64(len(tr.Requests)) {
		t.Fatalf("completed %d of %d", res.Metrics.Completed, len(tr.Requests))
	}
	// The uncompressed test trace is lightly loaded: with 8 backends most
	// should hibernate, cutting average power well below all-active.
	if res.AvgPower >= 0.7 {
		t.Fatalf("AvgPower = %.3f, expected significant savings at low load", res.AvgPower)
	}
	if res.Sleeps == 0 {
		t.Fatal("no backend ever hibernated")
	}
}

func TestPowerDisabledReportsFullDraw(t *testing.T) {
	tr, m := testWorkload(t, 1000, 203)
	res := runPolicy(t, tr, m, policy.NewLARD(policy.Thresholds{}), Features{}, smallParams(4, 4, 2))
	if res.AvgPower != 1 {
		t.Fatalf("AvgPower without power management = %v, want 1", res.AvgPower)
	}
	if res.Wakes != 0 || res.Sleeps != 0 {
		t.Fatal("no transitions expected without power management")
	}
}

func TestPowerWakesUnderLoad(t *testing.T) {
	tr, m := testWorkload(t, 4000, 207)
	// Compress heavily: the controller must scale the active set up.
	for i := range tr.Requests {
		tr.Requests[i].Time /= 400
	}
	cl, err := New(Config{
		Params: smallParams(8, 4, 2),
		Policy: policy.NewLARD(policy.Thresholds{}),
		Miner:  m,
		Power: PowerParams{Enabled: true, Interval: 20 * time.Millisecond,
			TargetLoad: 4, WakeLatency: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Completed != int64(len(tr.Requests)) {
		t.Fatalf("completed %d of %d", res.Metrics.Completed, len(tr.Requests))
	}
	if res.Wakes == 0 {
		t.Fatal("bursty load should trigger wake-ups")
	}
}

func TestPowerNeverRoutesToSleepingBackend(t *testing.T) {
	tr, m := testWorkload(t, 2000, 211)
	cl, err := New(Config{
		Params: smallParams(6, 4, 2),
		Policy: policy.NewWRR(6), // load-blind: relies on the reroute guard
		Miner:  m,
		Power:  PowerParams{Enabled: true, Interval: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Completed != int64(len(tr.Requests)) {
		t.Fatalf("completed %d of %d", res.Metrics.Completed, len(tr.Requests))
	}
	if res.Metrics.Failed != 0 {
		t.Fatalf("%d requests failed under power management", res.Metrics.Failed)
	}
}

func TestPowerParamsDefaults(t *testing.T) {
	p := PowerParams{Enabled: true}.withDefaults()
	if p.Interval != time.Second || p.TargetLoad != 16 ||
		p.WakeLatency != 300*time.Millisecond ||
		p.ActivePower != 1.0 || p.HibernatePower != 0.05 {
		t.Fatalf("defaults wrong: %+v", p)
	}
}

func TestPowerWithFailures(t *testing.T) {
	tr, m := testWorkload(t, 2000, 213)
	mid := tr.Requests[len(tr.Requests)/2].Time
	cl, err := New(Config{
		Params:   smallParams(4, 4, 2),
		Policy:   policy.NewLARD(policy.Thresholds{}),
		Miner:    m,
		Power:    PowerParams{Enabled: true, Interval: 100 * time.Millisecond},
		Failures: []Failure{{Server: 0, At: mid}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Completed != int64(len(tr.Requests)) {
		t.Fatalf("completed %d of %d with crash + power mgmt", res.Metrics.Completed, len(tr.Requests))
	}
}
