package cluster

import (
	"testing"

	"prord/internal/mining"
	"prord/internal/policy"
	"prord/internal/randutil"
	"prord/internal/trace"
)

// dynamicWorkload builds a synthetic trace whose site has the given
// fraction of dynamic (uncacheable) pages.
func dynamicWorkload(t *testing.T, frac float64, seed int64) (*trace.Trace, *mining.Miner) {
	t.Helper()
	sc, tc, err := trace.PresetConfigs(trace.PresetSynthetic, 0.07)
	if err != nil {
		t.Fatal(err)
	}
	sc.DynamicFraction = frac
	rng := randutil.New(seed)
	site, err := trace.GenerateSite(sc, rng)
	if err != nil {
		t.Fatal(err)
	}
	full, err := trace.Generate("dyn", site, tc, rng)
	if err != nil {
		t.Fatal(err)
	}
	train, eval := full.Split(0.4)
	return eval, mining.Mine(train, mining.Options{})
}

func TestDynamicRequestsServed(t *testing.T) {
	tr, m := dynamicWorkload(t, 0.3, 3)
	var dynWant int64
	for i := range tr.Requests {
		if tr.Requests[i].Dynamic {
			dynWant++
		}
	}
	if dynWant == 0 {
		t.Fatal("workload should contain dynamic requests")
	}
	res := runPolicy(t, tr, m, policy.NewPRORD(policy.Thresholds{}), AllFeatures(), smallParams(4, 4, 2))
	if res.Metrics.Completed != int64(len(tr.Requests)) {
		t.Fatalf("completed %d of %d", res.Metrics.Completed, len(tr.Requests))
	}
	if res.Metrics.DynamicServed != dynWant {
		t.Fatalf("DynamicServed = %d, want %d", res.Metrics.DynamicServed, dynWant)
	}
	// Dynamic requests are neither hits nor misses.
	if res.Metrics.MemoryHits+res.Metrics.MemoryMisses+res.Metrics.DynamicServed !=
		res.Metrics.Completed {
		t.Fatalf("hit+miss+dynamic should equal completed: %+v", res.Metrics)
	}
}

func TestDynamicPagesNeverCached(t *testing.T) {
	tr, m := dynamicWorkload(t, 0.5, 5)
	cl, err := New(Config{Params: smallParams(4, 4, 2),
		Policy: policy.NewPRORD(policy.Thresholds{}), Features: AllFeatures(), Miner: m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(tr); err != nil {
		t.Fatal(err)
	}
	for file := range cl.Core().ResidencySnapshot() {
		if trace.IsDynamicPath(file) {
			t.Fatalf("dynamic file %s recorded as memory-resident", file)
		}
	}
	for _, b := range cl.backends {
		for i := range tr.Requests {
			if tr.Requests[i].Dynamic && b.store.Contains(tr.Requests[i].Path) {
				t.Fatalf("dynamic file %s found in backend cache", tr.Requests[i].Path)
			}
		}
	}
}

func TestDynamicPagesNeverPrefetched(t *testing.T) {
	tr, m := dynamicWorkload(t, 0.5, 7)
	cl, err := New(Config{Params: smallParams(4, 4, 2),
		Policy: policy.NewPRORD(policy.Thresholds{}), Features: AllFeatures(), Miner: m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(tr); err != nil {
		t.Fatal(err)
	}
	for file := range cl.Core().PrefetchMarks() {
		if trace.IsDynamicPath(file) {
			t.Fatalf("dynamic file %s was prefetched", file)
		}
	}
}

func TestStaticOnlySiteHasNoDynamicRequests(t *testing.T) {
	tr, m := dynamicWorkload(t, 0, 9)
	res := runPolicy(t, tr, m, policy.NewLARD(policy.Thresholds{}), Features{}, smallParams(4, 4, 2))
	if res.Metrics.DynamicServed != 0 {
		t.Fatalf("static site served %d dynamic requests", res.Metrics.DynamicServed)
	}
}

func TestGroupPrefetch(t *testing.T) {
	tr, m := testWorkload(t, 3000, 301)
	if m.Categorizer == nil {
		t.Fatal("synthetic workload should be labeled")
	}
	cl, err := New(Config{
		Params:   smallParams(4, 4, 2),
		Policy:   policy.NewLARD(policy.Thresholds{}),
		Features: Features{GroupPrefetch: true},
		Miner:    m,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Completed != int64(len(tr.Requests)) {
		t.Fatalf("completed %d of %d", res.Metrics.Completed, len(tr.Requests))
	}
	if res.Metrics.Prefetches == 0 {
		t.Fatal("group prefetch never fired on a labeled workload")
	}
}

func TestGroupPrefetchNoCategorizerNoOps(t *testing.T) {
	// Strip labels so the categorizer cannot be trained.
	tr, _ := testWorkload(t, 1000, 303)
	unlabeled := &trace.Trace{Name: "u", Files: tr.Files}
	for _, r := range tr.Requests {
		r.Group = -1
		unlabeled.Requests = append(unlabeled.Requests, r)
	}
	m := mining.Mine(unlabeled, mining.Options{})
	if m.Categorizer != nil {
		t.Fatal("unlabeled trace should not train a categorizer")
	}
	cl, err := New(Config{
		Params:   smallParams(4, 4, 2),
		Policy:   policy.NewLARD(policy.Thresholds{}),
		Features: Features{GroupPrefetch: true},
		Miner:    m,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(unlabeled)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Prefetches != 0 {
		t.Fatalf("group prefetch fired without a categorizer: %d", res.Metrics.Prefetches)
	}
}
