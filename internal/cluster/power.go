package cluster

import (
	"time"
)

// Power management implements the PARD-style [3] operation whose
// parameters Table 1 carries ("Power Consumption: 100% when ON, 0% when
// OFF and 5% in Hibernation"): a controller concentrates load on a
// minimal set of active backends and hibernates the rest, waking them as
// load grows. Hibernation preserves memory contents (suspend-to-RAM);
// only routing avoids sleeping backends.

// PowerParams tunes the power controller.
type PowerParams struct {
	// Enabled turns power management on.
	Enabled bool
	// Interval is the controller period. Zero defaults to 1s.
	Interval time.Duration
	// TargetLoad is the per-active-backend outstanding-request level the
	// controller sizes the active set for. Zero defaults to 16.
	TargetLoad int
	// WakeLatency is the hibernate->active transition cost; a waking
	// backend is unavailable for this long. Zero defaults to 300ms.
	WakeLatency time.Duration
	// ActivePower and HibernatePower are the relative power draws
	// (Table 1: 1.0 and 0.05). Zeroes default to those values.
	ActivePower    float64
	HibernatePower float64
}

func (p PowerParams) withDefaults() PowerParams {
	if p.Interval <= 0 {
		p.Interval = time.Second
	}
	if p.TargetLoad <= 0 {
		p.TargetLoad = 16
	}
	if p.WakeLatency <= 0 {
		p.WakeLatency = 300 * time.Millisecond
	}
	if p.ActivePower <= 0 {
		p.ActivePower = 1.0
	}
	if p.HibernatePower <= 0 {
		p.HibernatePower = 0.05
	}
	return p
}

// powerTracker accrues per-backend energy over virtual time.
type powerTracker struct {
	params    PowerParams
	asleep    []bool
	energy    float64 // in active-server-seconds equivalents
	lastAccru time.Duration
	wakes     int64
	sleeps    int64
}

func newPowerTracker(params PowerParams, backends int) *powerTracker {
	return &powerTracker{
		params: params.withDefaults(),
		asleep: make([]bool, backends),
	}
}

// accrue integrates power consumption up to now.
func (p *powerTracker) accrue(now time.Duration) {
	dt := (now - p.lastAccru).Seconds()
	if dt <= 0 {
		return
	}
	for _, a := range p.asleep {
		if a {
			p.energy += p.params.HibernatePower * dt
		} else {
			p.energy += p.params.ActivePower * dt
		}
	}
	p.lastAccru = now
}

// avgPower returns mean cluster power draw over [0, now] as a fraction of
// the all-active draw.
func (p *powerTracker) avgPower(now time.Duration) float64 {
	p.accrue(now)
	secs := now.Seconds()
	if secs <= 0 || len(p.asleep) == 0 {
		return 1
	}
	return p.energy / (secs * float64(len(p.asleep)) * p.params.ActivePower)
}

// asleepCount returns the number of hibernating backends.
func (p *powerTracker) asleepCount() int {
	n := 0
	for _, a := range p.asleep {
		if a {
			n++
		}
	}
	return n
}

// powerTick is the controller: size the active set to the current load.
func (c *Cluster) powerTick() {
	p := c.power
	p.accrue(c.eng.Now())

	// Total outstanding work across awake, live backends.
	totalLoad, alive := 0, 0
	for i := range c.backends {
		if c.down[i] {
			continue
		}
		alive++
		if !p.asleep[i] {
			totalLoad += c.backends[i].cpu.QueueLen() + c.backends[i].disk.QueueLen()
		}
	}
	if alive == 0 {
		return
	}
	want := totalLoad/p.params.TargetLoad + 1 // headroom of one server
	if want < 1 {
		want = 1
	}
	if want > alive {
		want = alive
	}
	active := 0
	for i := range c.backends {
		if !c.down[i] && !p.asleep[i] {
			active++
		}
	}
	switch {
	case want > active:
		// Wake lowest-index sleepers; they come online after WakeLatency
		// (modeled as an initial busy period on their CPU).
		for i := 0; i < len(c.backends) && active < want; i++ {
			if c.down[i] || !p.asleep[i] {
				continue
			}
			p.accrue(c.eng.Now())
			p.asleep[i] = false
			p.wakes++
			c.backends[i].cpu.Schedule(p.params.WakeLatency, nil)
			active++
		}
	case want < active:
		// Hibernate idle highest-index backends, never below one active.
		for i := len(c.backends) - 1; i >= 0 && active > want; i-- {
			if c.down[i] || p.asleep[i] {
				continue
			}
			b := c.backends[i]
			if b.cpu.QueueLen() > 0 || b.disk.QueueLen() > 0 || b.net.QueueLen() > 0 {
				continue // drain first
			}
			p.accrue(c.eng.Now())
			p.asleep[i] = true
			p.sleeps++
			active--
		}
	}
}

// sleeping reports whether a backend is hibernating.
func (c *Cluster) sleeping(i int) bool {
	return c.power != nil && c.power.asleep[i]
}

// unavailable reports whether a backend can accept new work. A
// flapping backend's down half-cycles count — the outage is visible —
// while the other gray modes (slow, errrate) deliberately do not: the
// backend looks available, and only the detector's Degraded hook can
// steer work away.
func (c *Cluster) unavailable(i int) bool {
	return c.down[i] || c.gray.softDown[i] || c.sleeping(i) || !c.poolPresent(i)
}
