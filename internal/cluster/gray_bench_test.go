package cluster

import (
	"os"
	"testing"
	"time"

	"prord/internal/metrics"
)

// grayFaultPair runs the acceptance scenario twice on the same seeded
// trace: one backend turns 10x slow an eighth of the way in, once with
// the gray layer off and once with detection + hedging on. The sim is
// virtual-time deterministic, so both results replay byte-identically.
func grayFaultPair(t *testing.T) (off, on *Result) {
	t.Helper()
	run := func(gray *GrayConfig) *Result {
		tr, cfg := compressedWorkload(t, 4000, 211, 200)
		start := tr.Requests[len(tr.Requests)/8].Time
		cfg.Failures = []Failure{{Server: 1, At: start, Mode: Slow, Slowdown: 10}}
		cfg.Gray = gray
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.Completed != int64(len(tr.Requests)) {
			t.Fatalf("completed %d of %d", res.Metrics.Completed, len(tr.Requests))
		}
		return res
	}
	return run(nil), run(&GrayConfig{Detector: fastDetector(), Hedge: true})
}

// TestGrayLayerCutsP99AtLeast2x is the tentpole acceptance criterion:
// with one backend at slow=x10, the detector plus hedging must cut the
// client p99 at least in half against the undefended run.
func TestGrayLayerCutsP99AtLeast2x(t *testing.T) {
	off, on := grayFaultPair(t)
	p99Off := off.Metrics.Response.Quantile(0.99)
	p99On := on.Metrics.Response.Quantile(0.99)
	if 2*p99On > p99Off {
		t.Fatalf("gray layer cut p99 %v -> %v (%.2fx), want >= 2x",
			p99Off, p99On, float64(p99Off)/float64(p99On))
	}
}

// TestGrayFaultBenchArtifact emits BENCH_grayfault.json when
// BENCH_GRAYFAULT_OUT is set (make bench-smoke): the slow=x10 scenario
// measured with the gray layer off and on, so the artifact carries the
// p99 delta the layer is accountable for plus the detector and hedge
// counters behind it.
func TestGrayFaultBenchArtifact(t *testing.T) {
	out := os.Getenv("BENCH_GRAYFAULT_OUT")
	if out == "" {
		t.Skip("BENCH_GRAYFAULT_OUT not set")
	}
	off, on := grayFaultPair(t)

	toRun := func(name string, res *Result) metrics.BenchRun {
		run := metrics.BenchRun{
			Name:          name,
			Requests:      res.Metrics.Completed,
			ThroughputRPS: metrics.Round(res.Throughput, 1),
			Latency:       res.Metrics.Response.Summary(),
			HitRate:       metrics.Round(res.HitRate, 4),
			Failovers:     res.Metrics.Failovers,
		}
		if g := res.Gray; g != nil {
			run.Gray = &metrics.GraySummary{
				Ejections:    g.Ejections,
				Recoveries:   g.Recoveries,
				GrayRebinds:  g.GrayRebinds,
				HedgesFired:  g.HedgesFired,
				HedgeWins:    g.HedgeWins,
				HedgeCancels: g.HedgeCancels,
			}
		}
		return run
	}
	offRun := toRun("slow-x10-undefended", off)
	onRun := toRun("slow-x10-gray-layer", on)

	art := &metrics.BenchArtifact{
		Tool: "prord-sim-grayfault",
		Config: map[string]any{
			"backends":   4,
			"faults":     "1@12.5%/slow=x10",
			"hedge":      true,
			"compressed": 200,
		},
		Workload: map[string]any{
			"requests": off.Metrics.Completed,
			"seed":     211,
		},
		Runs: []metrics.BenchRun{offRun, onRun},
	}
	art.Stamp(time.Now())
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := art.Encode(f); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: p99 %dns -> %dns (%.2fx), p999 %dns -> %dns, ejections=%d hedges fired=%d won=%d",
		out, offRun.Latency.P99NS, onRun.Latency.P99NS,
		float64(offRun.Latency.P99NS)/float64(onRun.Latency.P99NS),
		offRun.Latency.P999NS, onRun.Latency.P999NS,
		onRun.Gray.Ejections, onRun.Gray.HedgesFired, onRun.Gray.HedgeWins)
}
