package cluster

import (
	"time"

	"prord/internal/health"
	"prord/internal/overload"
	"prord/internal/randutil"
	"prord/internal/trace"
)

// FailureMode selects the injected failure kind, mirroring the live
// load generator's fault grammar one-to-one (loadgen.FaultMode). The
// zero value is the original fail-stop crash; the other modes are gray
// failures the breaker alone cannot see.
type FailureMode int

const (
	// FailStop crashes the backend: memory lost, no new work, requests
	// caught on it retried elsewhere; recovery is cold.
	FailStop FailureMode = iota
	// Slow multiplies every service cost at the backend (CPU, disk,
	// internal network) by Failure.Slowdown. Nothing errors, so only
	// latency-relative detection catches it.
	Slow
	// ErrRate fails a seeded fraction of demand requests arriving at
	// the backend; the rest are served normally.
	ErrRate
	// Flap toggles the backend between up and a soft outage every
	// Failure.FlapPeriod. Unlike a crash the cache survives — it
	// models a flapping link, not a dying process.
	Flap
)

// GrayConfig enables the gray-failure resilience layer in the
// simulator: the relative slow-backend detector feeding the core's
// Degraded hook, and (optionally) hedged backup requests for static
// content — the same machinery the live front-end runs, driven by
// virtual time so runs stay byte-deterministic.
type GrayConfig struct {
	// Detector tunes the latency outlier detector; zero fields take
	// health.DetectorConfig defaults.
	Detector health.DetectorConfig
	// Hedge enables hedged backup requests: when a static request is
	// still unanswered after the detector's pooled-p95 hedge delay, one
	// backup is sent to the best non-degraded holder and the first
	// response wins. Hedging is suppressed at Saturated and Critical
	// tiers — duplicating work under overload makes the overload worse.
	Hedge bool
	// HedgeCap bounds outstanding hedges per backend; 0 defaults to 2.
	HedgeCap int
}

// withDefaults fills zero fields.
func (g GrayConfig) withDefaults() GrayConfig {
	g.Detector = g.Detector.WithDefaults()
	if g.HedgeCap == 0 {
		g.HedgeCap = 2
	}
	return g
}

// GrayResult summarizes the gray-failure layer after a run (nil in
// Result unless Config.Gray was set).
type GrayResult struct {
	// Ejections and Recoveries count detector state transitions.
	Ejections, Recoveries int64
	// GrayRebinds counts sessions moved off a degraded backend by the
	// progressive rebinding path.
	GrayRebinds int64
	// HedgesFired, HedgeWins and HedgeCancels count backup requests:
	// fired, finished first, and rendered moot by the primary.
	HedgesFired, HedgeWins, HedgeCancels int64
	// Backends is the detector's final per-backend view.
	Backends []health.BackendLatency
}

// grayState is the cluster's runtime state for injected gray failures
// and the resilience layer.
type grayState struct {
	detector *health.Detector
	cfg      GrayConfig

	slowX    []float64          // per backend: active service-time multiplier (0 = none)
	errRate  []float64          // per backend: active demand error probability
	errRng   []*randutil.Source // per backend: seeded streams for errrate rolls
	softDown []bool             // per backend: flap outage (cache survives)

	hedgeCancels int64
}

func newGrayState(backends int, cfg *GrayConfig) *grayState {
	g := &grayState{
		slowX:    make([]float64, backends),
		errRate:  make([]float64, backends),
		errRng:   make([]*randutil.Source, backends),
		softDown: make([]bool, backends),
	}
	if cfg != nil {
		g.cfg = cfg.withDefaults()
		g.detector = health.NewDetector(backends, g.cfg.Detector)
	}
	return g
}

// errRoll reports whether an errrate fault fails this arrival. Streams
// are lazily seeded per backend so fault-free backends consume no
// randomness and fault-free runs stay byte-identical to historical
// artifacts.
func (c *Cluster) errRoll(server int) bool {
	p := c.gray.errRate[server]
	if p <= 0 {
		return false
	}
	rng := c.gray.errRng[server]
	if rng == nil {
		rng = randutil.New(0x677261 + int64(server))
		c.gray.errRng[server] = rng
	}
	return rng.Float64() < p
}

// dilate applies an active slow fault's multiplier to a service cost.
func (c *Cluster) dilate(server int, d time.Duration) time.Duration {
	if f := c.gray.slowX[server]; f > 1 {
		return time.Duration(float64(d) * f)
	}
	return d
}

// observeServe feeds the detector one completed serve at a backend.
func (c *Cluster) observeServe(server int, issued, end time.Duration) {
	if c.gray.detector != nil {
		c.gray.detector.Observe(server, end-issued, c.vnow())
	}
}

// hedgeRace coordinates a primary serve and its hedged backup; exactly
// one of them delivers the response (continues the session), and each
// releases its own booking when it finishes.
type hedgeRace struct {
	delivered     bool // a response reached the client
	backupOut     bool // a backup is booked and in flight
	primaryFailed bool // the primary finished on a down backend
	primaryServer int
}

// maybeHedge arms a hedged backup for a routed static request: after
// the detector's hedge delay, if the primary has not delivered, send
// one backup to the best non-degraded holder. Returns nil (no race
// bookkeeping) when hedging is off or the request is not hedgeable.
func (c *Cluster) maybeHedge(tr *trace.Trace, s *session, r *trace.Request, primary int, issued time.Duration) *hedgeRace {
	g := c.gray
	if g.detector == nil || !g.cfg.Hedge {
		return nil
	}
	if r.Dynamic || trace.IsDynamicPath(r.Path) {
		return nil // generated content is not idempotent
	}
	delay := g.detector.HedgeDelay()
	if delay <= 0 {
		return nil // not enough healthy samples yet
	}
	race := &hedgeRace{primaryServer: primary}
	c.eng.After(delay, func() {
		if race.delivered || c.remaining <= 0 {
			return
		}
		if c.core.Tier() >= overload.Saturated {
			return
		}
		target, ok := c.core.HedgeTarget(r.Path, primary, c.vnow())
		if !ok || c.unavailable(target) {
			return
		}
		if !c.core.TryBeginHedge(target, r.Path, g.cfg.HedgeCap) {
			return
		}
		race.backupOut = true
		c.hedgeArrive(tr, s, r, target, issued, race)
	})
	return race
}

// hedgeArrive models the backup serve: the same memory/disk resolution
// as a demand arrival, minus the side channels (no remote fetch, no
// prefetch piggyback — the hedge is a plain GET at the target).
func (c *Cluster) hedgeArrive(tr *trace.Trace, s *session, r *trace.Request, server int, issued time.Duration, race *hedgeRace) {
	b := c.backends[server]
	serve := func() {
		b.cpu.Schedule(
			c.dilate(server, c.cfg.Params.CPUPerRequest+perKBCost(r.Size, c.cfg.Params.CPUPerKB)),
			func(_, end time.Duration) { c.hedgeComplete(tr, s, r, server, issued, end, race) },
		)
	}
	if b.store.Touch(r.Path) {
		serve()
		return
	}
	b.disk.Schedule(
		c.dilate(server, c.cfg.Params.DiskFixed+perKBCost(r.Size, c.cfg.Params.DiskPerKB)),
		func(_, _ time.Duration) {
			if !c.down[server] {
				evicted, stored := b.store.Insert(r.Path, r.Size)
				c.noteEvictions(server, evicted)
				if stored {
					c.core.NoteResident(server, r.Path)
				}
			}
			serve()
		},
	)
}

// hedgeComplete finishes a backup serve: if it beat the primary it
// delivers the response and continues the session; otherwise it just
// releases its booking (a canceled hedge).
func (c *Cluster) hedgeComplete(tr *trace.Trace, s *session, r *trace.Request, server int, issued, end time.Duration, race *hedgeRace) {
	race.backupOut = false
	failed := c.down[server] || c.gray.softDown[server]
	if race.delivered || failed {
		c.core.FinishHedge(server, r.Path, failed, false)
		if !race.delivered {
			if race.primaryFailed {
				// Both legs failed: fall back to the ordinary retry path.
				c.met.Failovers++
				c.processRequest(tr, s, r, issued)
			}
			return
		}
		c.gray.hedgeCancels++
		return
	}
	// The backup won the race: deliver, observe, continue the session.
	// The primary's booking is released by its own completion event.
	c.core.FinishHedge(server, r.Path, false, true)
	c.observeServe(server, issued, end)
	race.delivered = true
	c.deliver(tr, s, r, server, issued, end)
}

// deliver records one response reaching the client and advances the
// session — shared by the primary completion path and a winning hedge.
func (c *Cluster) deliver(tr *trace.Trace, s *session, r *trace.Request, server int, issued, end time.Duration) {
	b := c.backends[server]
	b.served++
	c.met.Completed++
	c.met.BytesServed += r.Size
	c.met.Response.Observe(end - issued)
	if end > c.lastDone {
		c.lastDone = end
	}
	c.remaining--

	if !trace.IsEmbeddedPath(r.Path) {
		// PRORD's proactive pass (bundle, navigation, category prefetch):
		// the core plans and marks placements, the simulator models one
		// batched disk read per trigger ([7]'s premise: bundles are
		// stored together, so the objects come off in one near-sequential
		// read).
		if plan, ok := c.core.PlanProactive(s.key, server, r.Path, c.vnow()); ok {
			c.prefetchBatch(plan.Server, plan.Bundle)
			c.prefetchBatch(plan.Server, plan.Nav)
			c.prefetchBatch(plan.Server, plan.Group)
		}
	}
	c.autoscaleTick()
	c.scheduleNext(tr, s)
}
