// Package cluster is the discrete-event model of the distributor-based
// web cluster the paper simulates (Fig. 5): a front-end distributor plus
// dispatcher and n backend servers, each with a CPU, a disk, an internal
// network interface and a partitioned memory cache, serving persistent
// HTTP/1.1 connections replayed from a trace.
package cluster

import (
	"fmt"
	"time"
)

// Params are the system parameters of Table 1. The disk-latency row of the
// published table is garbled ("ms (fixed) µs per KB"); DiskFixed/DiskPerKB
// default to the LARD-paper magnitude (a miss costs ~10 ms plus transfer).
type Params struct {
	// Backends is the number of backend servers (the paper evaluates
	// 6-16).
	Backends int
	// AppMemory is each backend's demand-cache capacity in bytes
	// (Table 1: 128 MB application memory).
	AppMemory int64
	// PinnedMemory is each backend's pinned partition for prefetched and
	// replicated pages (Table 1: 72 MB, variable).
	PinnedMemory int64
	// ConnectionLatency is the client TCP setup cost per persistent
	// connection (Table 1: 150 µs).
	ConnectionLatency time.Duration
	// HandoffLatency is the cost of one TCP handoff (Table 1: 200 µs per
	// request).
	HandoffLatency time.Duration
	// NetPerKB is the internal-network transfer cost for migration,
	// replication and back-end forwarding (Table 1: 80 µs per KB).
	NetPerKB time.Duration
	// DiskFixed is the fixed seek+rotation cost of a disk read.
	DiskFixed time.Duration
	// DiskPerKB is the disk transfer cost per KB.
	DiskPerKB time.Duration
	// CPUPerRequest is the backend's fixed per-request processing cost.
	CPUPerRequest time.Duration
	// CPUPerKB is the backend's per-KB response transmission cost.
	CPUPerKB time.Duration
	// FrontPerRequest is the distributor's per-request analysis cost.
	FrontPerRequest time.Duration
	// DispatchLatency is the distributor-dispatcher consultation cost.
	DispatchLatency time.Duration
	// FleetForwardLatency is the distributor-to-distributor hop paid when
	// fleet mode forwards a request from its L4-pinned ingress replica to
	// the session's ring owner (an internal LAN RPC, cheaper than a full
	// TCP handoff).
	FleetForwardLatency time.Duration
	// PrefetchQueueLimit throttles proactive disk reads: a backend skips
	// a prefetch when its disk queue already holds more than this many
	// jobs, so prefetching consumes idle disk bandwidth instead of
	// competing with demand misses. 0 disables throttling.
	PrefetchQueueLimit int
	// DynamicCPU is the backend CPU cost of generating one dynamic
	// (uncacheable) response, on top of the per-KB transmission cost.
	DynamicCPU time.Duration
}

// DefaultParams returns Table 1's parameters with the documented disk
// defaults.
func DefaultParams() Params {
	return Params{
		Backends:            8,
		AppMemory:           128 << 20,
		PinnedMemory:        72 << 20,
		ConnectionLatency:   150 * time.Microsecond,
		HandoffLatency:      200 * time.Microsecond,
		NetPerKB:            80 * time.Microsecond,
		DiskFixed:           10 * time.Millisecond,
		DiskPerKB:           100 * time.Microsecond,
		CPUPerRequest:       100 * time.Microsecond,
		CPUPerKB:            40 * time.Microsecond,
		FrontPerRequest:     15 * time.Microsecond,
		DispatchLatency:     20 * time.Microsecond,
		FleetForwardLatency: 100 * time.Microsecond,
		PrefetchQueueLimit:  3,
		DynamicCPU:          4 * time.Millisecond,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Backends < 1 {
		return fmt.Errorf("cluster: Backends must be >= 1, got %d", p.Backends)
	}
	if p.AppMemory < 0 || p.PinnedMemory < 0 {
		return fmt.Errorf("cluster: negative memory capacity")
	}
	for _, d := range []time.Duration{
		p.ConnectionLatency, p.HandoffLatency, p.NetPerKB, p.DiskFixed,
		p.DiskPerKB, p.CPUPerRequest, p.CPUPerKB, p.FrontPerRequest,
		p.DispatchLatency, p.FleetForwardLatency,
	} {
		if d < 0 {
			return fmt.Errorf("cluster: negative latency parameter")
		}
	}
	return nil
}

// perKBCost converts a byte size and per-KB rate into a duration.
func perKBCost(size int64, perKB time.Duration) time.Duration {
	if size <= 0 || perKB <= 0 {
		return 0
	}
	return time.Duration(size) * perKB / 1024
}

// Features toggles PRORD's three enhancements independently, enabling the
// Fig. 9 ablation (LARD-bundle, LARD-distribution, LARD-prefetch-nav).
type Features struct {
	// Bundle enables the embedded-object forward module at the front-end
	// and bundle prefetching at the backends (§3.2, §4.2).
	Bundle bool
	// Replication enables Algorithm 3's popularity-driven replication
	// ("LARD-distribution" in Fig. 9).
	Replication bool
	// NavPrefetch enables navigation-pattern prefetching via the n-order
	// dependency graph (Algorithms 1-2, "LARD-prefetch-nav").
	NavPrefetch bool
	// GroupPrefetch enables user-category prefetching (§4.1: once the
	// user's access path identifies their group with confidence, the
	// group's characteristic pages are prefetched). Needs a labeled
	// training trace (Miner.Categorizer != nil); no-ops otherwise.
	GroupPrefetch bool
}

// AllFeatures is the full PRORD feature set as evaluated in the paper
// (bundle forwarding, replication, navigation prefetch). Group prefetch
// is this reproduction's extension and stays opt-in.
func AllFeatures() Features {
	return Features{Bundle: true, Replication: true, NavPrefetch: true}
}

// Any reports whether any proactive feature is enabled; with none, the
// pinned partition is merged into the demand cache so baselines get the
// same total memory.
func (f Features) Any() bool {
	return f.Bundle || f.Replication || f.NavPrefetch || f.GroupPrefetch
}
