package cluster

import (
	"fmt"
	"sort"
	"time"

	"prord/internal/cache"
	"prord/internal/metrics"
	"prord/internal/mining"
	"prord/internal/overload"
	"prord/internal/policy"
	"prord/internal/replicate"
	"prord/internal/sim"
	"prord/internal/trace"
)

// Config assembles a simulated cluster.
type Config struct {
	// Params are the Table 1 system parameters.
	Params Params
	// Policy is the request-distribution policy under test.
	Policy policy.Policy
	// Features selects PRORD's proactive enhancements.
	Features Features
	// Miner supplies the web-log mining products. Required when any
	// feature is enabled.
	Miner *mining.Miner
	// ReplicationInterval is Algorithm 3's period t. Zero defaults to 5s
	// of simulated time.
	ReplicationInterval time.Duration
	// ReplicateConfig tunes Algorithm 3's thresholds.
	ReplicateConfig replicate.Config
	// UseGDSF selects GDSF instead of LRU for the demand caches; when
	// NavPrefetch is on it becomes GDSF-split fed by predicted future
	// frequency (the [20] extension).
	UseGDSF bool
	// Failures injects fail-stop backend crashes. A crashed backend loses
	// its memory, is removed from the dispatcher's maps and receives no
	// new work; requests caught on it are retried elsewhere (counted as
	// failovers). Recovery brings the backend back with a cold cache.
	Failures []Failure
	// Power enables PARD-style [3] power management with Table 1's power
	// parameters.
	Power PowerParams
	// Distributors is the number of front-end distributor nodes behind an
	// L4 switch (Aron et al. [4], §2.1: the scalable content-aware
	// architecture). Connections stick to one distributor; dispatcher
	// state is shared. 0 or 1 = the paper's single-front-end design.
	Distributors int
	// CPUSharing switches the backend CPUs from FCFS to processor
	// sharing (time-sliced web server workers); disks stay FCFS.
	CPUSharing bool
	// Overload mirrors the live front-end's degrade ladder in the
	// simulator, driven by virtual time: Elevated sheds prefetch and
	// replication work, Saturated falls back to locality-only LARD, and
	// Critical sheds demand requests past the admission limit. The live
	// accept queue is modeled as in-flight headroom above the limit
	// (queued live requests wait; simulated ones are admitted or shed),
	// so live-vs-sim shed counts agree only within the tolerance
	// documented in DESIGN.md §5e. Nil disables the layer.
	Overload *overload.Config
}

// Failure is one injected backend crash.
type Failure struct {
	// Server is the backend index to crash.
	Server int
	// At is the virtual time of the crash.
	At time.Duration
	// RecoverAt, when positive and after At, restarts the backend (cold)
	// at that time; zero means it stays down.
	RecoverAt time.Duration
}

// backend is one backend server: CPU, disk, internal NIC and memory.
type backend struct {
	id    int
	cpu   sim.Station
	disk  *sim.FCFS
	net   *sim.FCFS
	store cache.Store
	// served counts requests this backend completed (Fig. 7 sums these).
	served int64
}

// Cluster is a runnable simulated web cluster. Build one with New, run a
// trace with Run; a Cluster is single-use.
type Cluster struct {
	cfg      Config
	eng      *sim.Engine
	backends []*backend
	fronts   []*sim.FCFS

	tracker *mining.Tracker
	replmgr *replicate.Manager

	// Dispatcher and front-end routing state.
	memory     map[string]map[int]bool // file -> backends holding it in memory
	prefetched map[string]map[int]bool // file -> backends that prefetched it
	replicas   map[string]map[int]bool // file -> backends holding Alg.3 replicas
	inflight   map[string]map[int]int  // file -> backend -> outstanding count
	lastServer map[int]int             // conn -> backend of previous request
	lastPage   map[int]string          // conn -> previous main page
	connPages  map[int][]string        // conn -> recent pages (group prefetch)
	classified map[int]bool            // conn -> group prefetch already fired
	// waiters holds demand requests blocked on an in-flight prefetch of
	// the same file at the same backend (keyed "file|server"), so demand
	// traffic piggybacks on the prefetch disk read instead of issuing a
	// duplicate one.
	waiters map[string][]func()

	met       metrics.Collector
	files     map[string]int64
	power     *powerTracker // nil unless Config.Power.Enabled
	down      []bool        // per backend: currently crashed
	remaining int           // requests not yet completed
	firstArr  time.Duration // earliest request issue time
	lastDone  time.Duration // latest completion time
	ran       bool

	// Overload mirror (nil/zero when Config.Overload is nil).
	est        *overload.Estimator
	fallback   policy.Policy // locality-only LARD for the Saturated tier
	admitLimit int           // in-flight capacity + modeled accept queue
}

// New builds a cluster from cfg.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("cluster: Config.Policy is required")
	}
	if cfg.Features.Any() && cfg.Miner == nil {
		return nil, fmt.Errorf("cluster: features %+v need a Miner", cfg.Features)
	}
	if cfg.ReplicationInterval <= 0 {
		cfg.ReplicationInterval = 5 * time.Second
	}
	c := &Cluster{
		cfg:        cfg,
		eng:        &sim.Engine{},
		memory:     make(map[string]map[int]bool),
		prefetched: make(map[string]map[int]bool),
		replicas:   make(map[string]map[int]bool),
		inflight:   make(map[string]map[int]int),
		lastServer: make(map[int]int),
		lastPage:   make(map[int]string),
		connPages:  make(map[int][]string),
		classified: make(map[int]bool),
		waiters:    make(map[string][]func()),
	}
	total := cfg.Params.AppMemory + cfg.Params.PinnedMemory
	maxPinned := cfg.Params.PinnedMemory
	if !cfg.Features.Any() {
		// Baselines never pin, so the whole pool serves demand traffic.
		maxPinned = 0
	}
	if cfg.Distributors < 1 {
		cfg.Distributors = 1
		c.cfg.Distributors = 1
	}
	for i := 0; i < cfg.Distributors; i++ {
		c.fronts = append(c.fronts, sim.NewFCFS(c.eng))
	}
	for i := 0; i < cfg.Params.Backends; i++ {
		var store cache.Store
		if cfg.UseGDSF {
			// GDSF keeps a fixed split: a GDSF demand partition plus an
			// LRU pinned partition.
			demand := total - maxPinned
			var main cache.Cache
			if cfg.Features.NavPrefetch {
				main = cache.NewGDSFSplit(demand, 2)
			} else {
				main = cache.NewGDSF(demand)
			}
			store = cache.NewPartitioned(main, cache.NewLRU(maxPinned))
		} else {
			// LRU mode models Table 1's "pinned memory (variable)": one
			// shared pool whose pinned bytes are capped but whose free
			// pinned space serves demand.
			store = cache.NewPinning(total, maxPinned)
		}
		var cpu sim.Station = sim.NewFCFS(c.eng)
		if cfg.CPUSharing {
			cpu = sim.NewPS(c.eng)
		}
		c.backends = append(c.backends, &backend{
			id:    i,
			cpu:   cpu,
			disk:  sim.NewFCFS(c.eng),
			net:   sim.NewFCFS(c.eng),
			store: store,
		})
	}
	c.down = make([]bool, cfg.Params.Backends)
	for _, f := range cfg.Failures {
		if f.Server < 0 || f.Server >= cfg.Params.Backends {
			return nil, fmt.Errorf("cluster: failure for invalid server %d", f.Server)
		}
		if f.At < 0 || (f.RecoverAt != 0 && f.RecoverAt <= f.At) {
			return nil, fmt.Errorf("cluster: failure times invalid (%v, %v)", f.At, f.RecoverAt)
		}
	}
	if cfg.Features.NavPrefetch {
		nav := cfg.Miner.Nav
		if nav == nil {
			nav = cfg.Miner.Model
		}
		c.tracker = mining.NewTracker(nav, true)
	}
	if cfg.Features.Replication {
		c.replmgr = replicate.NewManager(cfg.Miner.Ranker, cfg.ReplicateConfig)
	}
	if cfg.Power.Enabled {
		c.power = newPowerTracker(cfg.Power, cfg.Params.Backends)
	}
	if cfg.Overload != nil {
		oc := cfg.Overload.WithDefaults()
		if err := oc.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.est = overload.NewEstimator(oc, cfg.Params.Backends)
		c.fallback = policy.NewLARD(policy.Thresholds{})
		c.admitLimit = oc.CapacityPerBackend*cfg.Params.Backends + oc.QueueLimit
	}
	return c, nil
}

// tier returns the overload mirror's current ladder position (Normal
// when the layer is disabled).
func (c *Cluster) tier() overload.Tier {
	if c.est == nil {
		return overload.Normal
	}
	return c.est.Tier()
}

// vnow maps the engine's virtual time onto the time.Time scale the
// estimator's clock-injected API expects.
func (c *Cluster) vnow() time.Time {
	return time.Time{}.Add(c.eng.Now())
}

// crash takes a backend down: its memory is lost and the dispatcher
// forgets everything about it.
func (c *Cluster) crash(server int) {
	c.down[server] = true
	for file := range c.memory {
		delSet(c.memory, file, server)
	}
	for file := range c.prefetched {
		delSet(c.prefetched, file, server)
	}
	for file := range c.replicas {
		delSet(c.replicas, file, server)
	}
	// Drop resident objects (memory contents are lost on restart). The
	// store has no iteration API; rebuild it cold by removing every known
	// file.
	for file := range c.files {
		c.backends[server].store.Remove(file)
	}
	// Connections pinned to the dead backend must re-bind.
	for conn, s := range c.lastServer {
		if s == server {
			delete(c.lastServer, conn)
		}
	}
}

// recover brings a crashed backend back with a cold cache.
func (c *Cluster) recoverServer(server int) {
	c.down[server] = false
}

// anyUp reports whether at least one backend is alive.
func (c *Cluster) anyUp() bool {
	for _, d := range c.down {
		if !d {
			return true
		}
	}
	return false
}

// reroute redirects a decision away from a crashed or hibernating
// backend to the least-loaded available one, reporting whether any
// backend is available.
func (c *Cluster) reroute(d *policy.Decision) bool {
	best, bestLoad, found := 0, 0, false
	for i := range c.backends {
		if c.unavailable(i) {
			continue
		}
		if l := c.Load(i); !found || l < bestLoad {
			best, bestLoad, found = i, l, true
		}
	}
	if !found && c.power != nil {
		// Wake-on-demand: no backend is awake (e.g. the last active one
		// crashed) — wake the lowest-index live sleeper.
		for i := range c.backends {
			if c.down[i] || !c.power.asleep[i] {
				continue
			}
			c.power.accrue(c.eng.Now())
			c.power.asleep[i] = false
			c.power.wakes++
			c.backends[i].cpu.Schedule(c.power.params.WakeLatency, nil)
			best, found = i, true
			break
		}
	}
	if !found {
		return false
	}
	d.Server = best
	d.Handoff = true
	if d.Source >= 0 && c.unavailable(d.Source) {
		d.Source = -1
	}
	return true
}

// --- policy.View ---

// NumServers implements policy.View.
func (c *Cluster) NumServers() int { return len(c.backends) }

// Load implements policy.View: outstanding work at the backend. Crashed
// and hibernating backends report an effectively infinite load so
// load-based policies avoid them.
func (c *Cluster) Load(i int) int {
	if c.unavailable(i) {
		return int(^uint(0) >> 2) // "infinite"
	}
	b := c.backends[i]
	return b.cpu.QueueLen() + b.disk.QueueLen()
}

// ServersWith implements policy.View from the dispatcher's locality map.
// Hibernating backends keep their (suspend-to-RAM) contents but are not
// offered as routing targets.
func (c *Cluster) ServersWith(file string) []int {
	return c.availableSorted(c.memory[file])
}

// PrefetchedAt implements policy.View.
func (c *Cluster) PrefetchedAt(file string) []int {
	return c.availableSorted(c.prefetched[file])
}

// availableSorted returns the available (awake, live) members of a server
// set in ascending order.
func (c *Cluster) availableSorted(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for s := range m {
		if !c.unavailable(s) {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// InFlight implements policy.View.
func (c *Cluster) InFlight(file string) (int, bool) {
	m := c.inflight[file]
	if len(m) == 0 {
		return 0, false
	}
	best, found := 0, false
	for s, n := range m {
		if n <= 0 || c.unavailable(s) {
			continue
		}
		if !found || s < best {
			best, found = s, true
		}
	}
	return best, found
}

// LastServer implements policy.View.
func (c *Cluster) LastServer(conn int) (int, bool) {
	s, ok := c.lastServer[conn]
	return s, ok
}

var _ policy.View = (*Cluster)(nil)

// --- replicate.Placer ---

// Holders implements replicate.Placer.
func (c *Cluster) Holders(file string) []int {
	return sortedKeys(c.replicas[file])
}

// Replicate implements replicate.Placer: copy the file over the internal
// network into the target's pinned memory.
func (c *Cluster) Replicate(file string, server int) {
	size, ok := c.files[file]
	if !ok || trace.IsDynamicPath(file) || c.down[server] {
		return // unknown, uncacheable, or target crashed
	}
	b := c.backends[server]
	addSet(c.replicas, file, server)
	c.met.Replications++
	b.net.Schedule(perKBCost(size, c.cfg.Params.NetPerKB), func(_, _ time.Duration) {
		// The replica may have been dropped — or the backend crashed —
		// while in transit.
		if !c.replicas[file][server] || c.down[server] {
			return
		}
		evicted, stored := b.store.InsertPinned(file, size)
		c.noteEvictions(server, evicted)
		if stored {
			c.noteResident(server, file)
		} else {
			delSet(c.replicas, file, server)
		}
	})
}

// Drop implements replicate.Placer.
func (c *Cluster) Drop(file string, server int) {
	delSet(c.replicas, file, server)
	if c.backends[server].store.RemovePinned(file) {
		c.noteGone(server, file)
	}
}

var _ replicate.Placer = (*Cluster)(nil)

// --- dispatcher bookkeeping ---

// noteResident records that a backend now holds file in memory.
func (c *Cluster) noteResident(server int, file string) {
	addSet(c.memory, file, server)
}

// noteGone records that a backend no longer holds file in memory.
func (c *Cluster) noteGone(server int, file string) {
	delSet(c.memory, file, server)
	delSet(c.prefetched, file, server)
	delSet(c.replicas, file, server)
}

// noteEvictions processes cache eviction lists.
func (c *Cluster) noteEvictions(server int, evicted []cache.Item) {
	for _, it := range evicted {
		c.noteGone(server, it.Key)
	}
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func addSet(m map[string]map[int]bool, file string, server int) {
	set, ok := m[file]
	if !ok {
		set = make(map[int]bool)
		m[file] = set
	}
	set[server] = true
}

func delSet(m map[string]map[int]bool, file string, server int) {
	if set, ok := m[file]; ok {
		delete(set, server)
		if len(set) == 0 {
			delete(m, file)
		}
	}
}
