package cluster

import (
	"fmt"
	"sort"
	"time"

	"prord/internal/autoscale"
	"prord/internal/cache"
	"prord/internal/dispatch"
	"prord/internal/fleet"
	"prord/internal/metrics"
	"prord/internal/mining"
	"prord/internal/overload"
	"prord/internal/policy"
	"prord/internal/replicate"
	"prord/internal/sim"
	"prord/internal/trace"
)

// Config assembles a simulated cluster.
type Config struct {
	// Params are the Table 1 system parameters.
	Params Params
	// Policy is the request-distribution policy under test.
	Policy policy.Policy
	// Features selects PRORD's proactive enhancements.
	Features Features
	// Miner supplies the web-log mining products. Required when any
	// feature is enabled.
	Miner *mining.Miner
	// MiningRefreshEvery batches the core's online mining: navigation
	// observations buffer and fold into a fresh decision snapshot once
	// this many accumulate. 0 trains the navigation model in place per
	// observation (the historical behavior; with batch size 1 the two
	// modes make identical decisions). Negative is rejected.
	MiningRefreshEvery int
	// ReplicationInterval is Algorithm 3's period t. Zero defaults to 5s
	// of simulated time.
	ReplicationInterval time.Duration
	// ReplicateConfig tunes Algorithm 3's thresholds.
	ReplicateConfig replicate.Config
	// UseGDSF selects GDSF instead of LRU for the demand caches; when
	// NavPrefetch is on it becomes GDSF-split fed by predicted future
	// frequency (the [20] extension).
	UseGDSF bool
	// Failures injects backend failures. The default mode is a fail-stop
	// crash: the backend loses its memory, is removed from the
	// dispatcher's maps and receives no new work; requests caught on it
	// are retried elsewhere (counted as failovers), and recovery brings
	// the backend back with a cold cache. The gray modes (Slow, ErrRate,
	// Flap) leave the backend in the pool and degrade it instead — the
	// failure surface Config.Gray's detection and hedging layer exists
	// to absorb.
	Failures []Failure
	// Gray enables the gray-failure resilience layer: the relative
	// slow-backend detector feeding the core's Degraded hook, plus
	// optional hedged backup requests. Nil disables the layer (injected
	// gray failures then hit the cluster with no defense, the baseline
	// the BENCH_grayfault artifact compares against).
	Gray *GrayConfig
	// Power enables PARD-style [3] power management with Table 1's power
	// parameters.
	Power PowerParams
	// Distributors is the number of front-end distributor nodes behind an
	// L4 switch (Aron et al. [4], §2.1: the scalable content-aware
	// architecture). Connections stick to one distributor; dispatcher
	// state is shared. 0 or 1 = the paper's single-front-end design.
	Distributors int
	// Fleet partitions session ownership across the Distributors
	// front-end replicas: a consistent-hash ring over session keys picks
	// each session's owning distributor, and a request whose L4-pinned
	// ingress replica is not the owner pays Params.FleetForwardLatency
	// and is served through the owner's front — the modeled counterpart
	// of the live fleet's in-process ownership handoff. Dispatcher state
	// stays shared: the simulator is the zero-staleness limit of the
	// gossip layer, which is exactly what the live-vs-sim differential
	// wants to compare against. With one distributor the ring has a
	// single member and the run is bit-identical to Fleet=false.
	Fleet bool
	// CPUSharing switches the backend CPUs from FCFS to processor
	// sharing (time-sliced web server workers); disks stay FCFS.
	CPUSharing bool
	// Overload enables the same degrade ladder the live front-end runs,
	// driven by virtual time: Elevated sheds prefetch and replication
	// work, Saturated falls back to locality-only LARD, and Critical runs
	// bounded-queue admission. The shared dispatch core models the live
	// accept queue directly — a queued request waits up to QueueTimeout
	// of virtual time for a slot before it is shed — so simulated and
	// live shed decisions follow the same code path. Nil disables the
	// layer.
	Overload *overload.Config
	// Recorder, when non-nil, receives every decision the dispatch core
	// makes, in decision order (differential testing against the live
	// front-end).
	Recorder func(dispatch.Record)
	// Autoscale enables the elastic backend pool: Params.Backends becomes
	// the provisioned maximum and the pool starts at Autoscale.Initial
	// members. With ScaleEvents empty and Overload enabled, an organic
	// controller watches the tier ladder and resizes the pool itself;
	// scripted ScaleEvents drive the pool directly (deterministic seeded
	// scale schedules) and suppress the controller. Joining backends
	// warm-preload the top rank-table files unless Autoscale.ColdJoin;
	// draining backends finish their bound work and are reaped once their
	// bookings hit zero. Nil keeps the fixed pool.
	Autoscale *autoscale.Config
	// ScaleEvents injects scripted pool resizes at virtual times.
	ScaleEvents []ScaleEvent
}

// ScaleEvent is one scripted pool resize.
type ScaleEvent struct {
	// Delta is the signed membership change: +n joins n backends, -n
	// drains n.
	Delta int
	// At is the virtual time the resize fires.
	At time.Duration
}

// Failure is one injected backend failure.
type Failure struct {
	// Server is the backend index to degrade.
	Server int
	// At is the virtual time the failure starts.
	At time.Duration
	// RecoverAt, when positive and after At, ends the failure at that
	// time; zero means it lasts for the rest of the run. Flap requires
	// it (the toggle schedule needs a finite horizon).
	RecoverAt time.Duration
	// Mode is the failure kind; the zero value is FailStop.
	Mode FailureMode
	// Slowdown is Slow's service-time multiplier (> 1).
	Slowdown float64
	// ErrRate is ErrRate's per-request failure probability in (0, 1).
	ErrRate float64
	// FlapPeriod is Flap's half-cycle: down for one period, up for the
	// next, starting down at At.
	FlapPeriod time.Duration
}

// backend is one backend server: CPU, disk, internal NIC and memory.
type backend struct {
	id    int
	cpu   sim.Station
	disk  *sim.FCFS
	net   *sim.FCFS
	store cache.Store
	// served counts requests this backend completed (Fig. 7 sums these).
	served int64
}

// Cluster is a runnable simulated web cluster: the exact-locality
// adapter around the shared dispatch core. The core makes every routing
// decision; the cluster models the substrate — virtual time, CPUs,
// disks, the internal network, caches and power state — and reports
// ground-truth residency back. Build one with New, run a trace with
// Run; a Cluster is single-use.
type Cluster struct {
	cfg      Config
	eng      *sim.Engine
	backends []*backend
	fronts   []*sim.FCFS
	// ring is the fleet's session-ownership ring over distributor
	// indices (nil unless Config.Fleet).
	ring *fleet.Ring

	core    *dispatch.Core
	replmgr *replicate.Manager
	pool    *autoscale.Pool
	actrl   *autoscale.Controller

	// joinWindows tracks each join's first-minute serve outcomes at the
	// joined backend (the warm-vs-cold bench signal).
	joinWindows []*joinWindow

	// replicas tracks Algorithm 3's placements (file -> backends); the
	// replication manager owns placement, the core only routes to them
	// through the residency it is told about.
	replicas map[string]map[int]bool
	// waiters holds demand requests blocked on an in-flight prefetch of
	// the same file at the same backend (keyed "file|server"), so demand
	// traffic piggybacks on the prefetch disk read instead of issuing a
	// duplicate one.
	waiters map[string][]func()

	met       metrics.Collector
	files     map[string]int64
	power     *powerTracker // nil unless Config.Power.Enabled
	gray      *grayState    // gray-fault injection + detection/hedging layer
	down      []bool        // per backend: currently crashed
	remaining int           // requests not yet completed
	firstArr  time.Duration // earliest request issue time
	lastDone  time.Duration // latest completion time
	ran       bool
}

// New builds a cluster from cfg.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("cluster: Config.Policy is required")
	}
	if cfg.Features.Any() && cfg.Miner == nil {
		return nil, fmt.Errorf("cluster: features %+v need a Miner", cfg.Features)
	}
	if cfg.ReplicationInterval <= 0 {
		cfg.ReplicationInterval = 5 * time.Second
	}
	c := &Cluster{
		cfg:      cfg,
		eng:      &sim.Engine{},
		replicas: make(map[string]map[int]bool),
		waiters:  make(map[string][]func()),
	}
	total := cfg.Params.AppMemory + cfg.Params.PinnedMemory
	maxPinned := cfg.Params.PinnedMemory
	if !cfg.Features.Any() && !(cfg.Autoscale != nil && !cfg.Autoscale.ColdJoin) {
		// Baselines never pin, so the whole pool serves demand traffic.
		// Warm joins are the exception: their rank-table preload lands in
		// pinned memory whatever the policy, or joining backends would
		// silently come up cold.
		maxPinned = 0
	}
	if cfg.Distributors < 1 {
		cfg.Distributors = 1
		c.cfg.Distributors = 1
	}
	for i := 0; i < cfg.Distributors; i++ {
		c.fronts = append(c.fronts, sim.NewFCFS(c.eng))
	}
	if cfg.Fleet {
		members := make([]int, cfg.Distributors)
		for i := range members {
			members[i] = i
		}
		ring, err := fleet.NewRing(members)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.ring = ring
	}
	for i := 0; i < cfg.Params.Backends; i++ {
		var store cache.Store
		if cfg.UseGDSF {
			// GDSF keeps a fixed split: a GDSF demand partition plus an
			// LRU pinned partition.
			demand := total - maxPinned
			var main cache.Cache
			if cfg.Features.NavPrefetch {
				main = cache.NewGDSFSplit(demand, 2)
			} else {
				main = cache.NewGDSF(demand)
			}
			store = cache.NewPartitioned(main, cache.NewLRU(maxPinned))
		} else {
			// LRU mode models Table 1's "pinned memory (variable)": one
			// shared pool whose pinned bytes are capped but whose free
			// pinned space serves demand.
			store = cache.NewPinning(total, maxPinned)
		}
		var cpu sim.Station = sim.NewFCFS(c.eng)
		if cfg.CPUSharing {
			cpu = sim.NewPS(c.eng)
		}
		c.backends = append(c.backends, &backend{
			id:    i,
			cpu:   cpu,
			disk:  sim.NewFCFS(c.eng),
			net:   sim.NewFCFS(c.eng),
			store: store,
		})
	}
	c.down = make([]bool, cfg.Params.Backends)
	c.gray = newGrayState(cfg.Params.Backends, cfg.Gray)
	for _, f := range cfg.Failures {
		if f.Server < 0 || f.Server >= cfg.Params.Backends {
			return nil, fmt.Errorf("cluster: failure for invalid server %d", f.Server)
		}
		if f.At < 0 || (f.RecoverAt != 0 && f.RecoverAt <= f.At) {
			return nil, fmt.Errorf("cluster: failure times invalid (%v, %v)", f.At, f.RecoverAt)
		}
		switch f.Mode {
		case Slow:
			if f.Slowdown <= 1 {
				return nil, fmt.Errorf("cluster: slow failure needs a slowdown > 1, got x%g", f.Slowdown)
			}
		case ErrRate:
			if f.ErrRate <= 0 || f.ErrRate >= 1 {
				return nil, fmt.Errorf("cluster: errrate failure needs a rate in (0,1), got %g", f.ErrRate)
			}
		case Flap:
			if f.FlapPeriod <= 0 || f.RecoverAt == 0 {
				return nil, fmt.Errorf("cluster: flap failure needs a positive period and a recovery time")
			}
		}
	}
	if cfg.Features.Replication {
		c.replmgr = replicate.NewManager(cfg.Miner.Ranker, cfg.ReplicateConfig)
	}
	if cfg.Autoscale != nil {
		ac := *cfg.Autoscale
		if ac.Max <= 0 {
			ac.Max = cfg.Params.Backends
		}
		if ac.Max != cfg.Params.Backends {
			return nil, fmt.Errorf("cluster: Autoscale.Max %d must equal Params.Backends %d",
				ac.Max, cfg.Params.Backends)
		}
		pool, err := autoscale.NewPool(ac)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.pool = pool
		// Scripted schedules drive the pool directly; the organic
		// controller only runs when there is a tier signal to watch and no
		// script to defer to.
		if len(cfg.ScaleEvents) == 0 && cfg.Overload != nil {
			c.actrl = autoscale.NewController(pool)
		}
		for _, ev := range cfg.ScaleEvents {
			if ev.Delta == 0 || ev.At < 0 {
				return nil, fmt.Errorf("cluster: scale event invalid (delta %d at %v)", ev.Delta, ev.At)
			}
		}
	} else if len(cfg.ScaleEvents) > 0 {
		return nil, fmt.Errorf("cluster: ScaleEvents need Config.Autoscale")
	}
	if cfg.Power.Enabled {
		c.power = newPowerTracker(cfg.Power, cfg.Params.Backends)
	}

	dcfg := dispatch.Config{
		Backends: cfg.Params.Backends,
		Policy:   cfg.Policy,
		Miner:    cfg.Miner,
		Features: dispatch.Features{
			Bundle:        cfg.Features.Bundle,
			NavPrefetch:   cfg.Features.NavPrefetch,
			GroupPrefetch: cfg.Features.GroupPrefetch,
		},
		// The simulator reports ground-truth residency from its modeled
		// caches; the core never guesses locality.
		Exact: true,
		// Replayed sessions are closed explicitly when their script ends;
		// the idle-eviction valve must never fire mid-trace.
		MaxSessions:        1 << 30,
		MiningRefreshEvery: cfg.MiningRefreshEvery,
		// Single-threaded replay needs no lock striping, and one stripe
		// keeps connection ids dense.
		Shards: 1,
		LoadOf: func(server int) int {
			b := c.backends[server]
			return b.cpu.QueueLen() + b.disk.QueueLen()
		},
		Available: func(server int, _ time.Time) bool { return !c.unavailable(server) },
		NavBudget: func(server int) bool {
			lim := c.cfg.Params.PrefetchQueueLimit
			return lim <= 0 || c.backends[server].disk.QueueLen() <= lim
		},
		Prefetchable: func(file string) bool {
			_, known := c.files[file]
			return known
		},
		Overload: cfg.Overload,
		Recorder: cfg.Recorder,
		Pool:     c.pool,
	}
	if c.gray.detector != nil {
		// Degraded backends are soft-excluded from new placements and
		// their sessions progressively rebound — same hook the live
		// front-end wires.
		dcfg.Degraded = c.gray.detector.Degraded
	}
	if cfg.Overload != nil {
		// Saturated-tier routing degrades to locality-only LARD.
		dcfg.Fallback = policy.NewLARD(policy.Thresholds{})
	}
	if cfg.Power.Enabled {
		dcfg.WakeFallback = c.wakeFallback
	}
	core, err := dispatch.New(dcfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c.core = core
	return c, nil
}

// Core exposes the shared dispatch core (tests and diagnostics).
func (c *Cluster) Core() *dispatch.Core { return c.core }

// vnow maps the engine's virtual time onto the time.Time scale the
// core's clock-injected API expects.
func (c *Cluster) vnow() time.Time {
	return time.Time{}.Add(c.eng.Now())
}

// wakeFallback is the core's last resort when no backend is available:
// wake the lowest-index live sleeper (wake-on-demand, e.g. after the
// last active backend crashed).
func (c *Cluster) wakeFallback(time.Time) (int, bool) {
	for i := range c.backends {
		if c.down[i] || !c.power.asleep[i] {
			continue
		}
		c.power.accrue(c.eng.Now())
		c.power.asleep[i] = false
		c.power.wakes++
		c.backends[i].cpu.Schedule(c.power.params.WakeLatency, nil)
		return i, true
	}
	return 0, false
}

// crash takes a backend down: its memory is lost and the core forgets
// everything about it (residency, prefetch marks, session pins).
func (c *Cluster) crash(server int) {
	c.down[server] = true
	c.core.InvalidateBackend(server)
	if c.gray.detector != nil {
		// A hard crash supersedes gray detection: clear the latency
		// window so the breaker path owns the outage and recovery starts
		// from a fresh sample set.
		c.gray.detector.Reset(server)
	}
	for file := range c.replicas {
		delSet(c.replicas, file, server)
	}
	// Drop resident objects (memory contents are lost on restart). The
	// store has no iteration API; rebuild it cold by removing every known
	// file.
	for file := range c.files {
		c.backends[server].store.Remove(file)
	}
}

// recover brings a crashed backend back with a cold cache.
func (c *Cluster) recoverServer(server int) {
	c.down[server] = false
}

// poolPresent reports whether a backend is a member of the elastic
// pool (always true with a fixed pool).
func (c *Cluster) poolPresent(i int) bool {
	return c.pool == nil || c.pool.Present(i)
}

// poolAccepting reports whether a backend may take new placements and
// speculative work (not Draining; always true with a fixed pool).
func (c *Cluster) poolAccepting(i int) bool {
	return c.pool == nil || c.pool.AcceptingNew(i)
}

// anyUp reports whether at least one backend is alive.
func (c *Cluster) anyUp() bool {
	for _, d := range c.down {
		if !d {
			return true
		}
	}
	return false
}

// --- replicate.Placer ---

// NumServers implements replicate.Placer.
func (c *Cluster) NumServers() int { return len(c.backends) }

// Holders implements replicate.Placer.
func (c *Cluster) Holders(file string) []int {
	return sortedKeys(c.replicas[file])
}

// Replicate implements replicate.Placer: copy the file over the internal
// network into the target's pinned memory.
func (c *Cluster) Replicate(file string, server int) {
	size, ok := c.files[file]
	if !ok || trace.IsDynamicPath(file) || c.down[server] || !c.poolAccepting(server) {
		return // unknown, uncacheable, target crashed or leaving the pool
	}
	b := c.backends[server]
	addSet(c.replicas, file, server)
	c.met.Replications++
	b.net.Schedule(c.dilate(server, perKBCost(size, c.cfg.Params.NetPerKB)), func(_, _ time.Duration) {
		// The replica may have been dropped — or the backend crashed —
		// while in transit.
		if !c.replicas[file][server] || c.down[server] {
			return
		}
		evicted, stored := b.store.InsertPinned(file, size)
		c.noteEvictions(server, evicted)
		if stored {
			c.core.NoteResident(server, file)
		} else {
			delSet(c.replicas, file, server)
		}
	})
}

// Drop implements replicate.Placer.
func (c *Cluster) Drop(file string, server int) {
	delSet(c.replicas, file, server)
	if c.backends[server].store.RemovePinned(file) {
		c.noteGone(server, file)
	}
}

var _ replicate.Placer = (*Cluster)(nil)

// --- residency bookkeeping (ground truth for the core) ---

// noteGone records that a backend no longer holds file in memory.
func (c *Cluster) noteGone(server int, file string) {
	c.core.NoteGone(server, file)
	delSet(c.replicas, file, server)
}

// noteEvictions processes cache eviction lists.
func (c *Cluster) noteEvictions(server int, evicted []cache.Item) {
	for _, it := range evicted {
		c.noteGone(server, it.Key)
	}
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func addSet(m map[string]map[int]bool, file string, server int) {
	set, ok := m[file]
	if !ok {
		set = make(map[int]bool)
		m[file] = set
	}
	set[server] = true
}

func delSet(m map[string]map[int]bool, file string, server int) {
	if set, ok := m[file]; ok {
		delete(set, server)
		if len(set) == 0 {
			delete(m, file)
		}
	}
}
